module portals3

go 1.22
