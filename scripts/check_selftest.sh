#!/bin/sh
# Self-test for scripts/bench_gate.sh: drives the gate with synthetic
# fixtures and asserts it passes and fails in the right places. A gate
# that silently stops gating is worse than no gate — this is the guard
# against that failure mode, and check.sh runs it on every invocation.
set -e
cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

cat >"$tmp/base.json" <<'JSON'
{
  "benchmarks": {
    "BenchmarkAlpha": { "ns_per_op": 10.0, "allocs_per_op": 0 },
    "BenchmarkBeta": { "ns_per_op": 100.0, "allocs_per_op": 2 },
    "BenchmarkLoose": { "ns_per_op": 500.0, "allocs_per_op": 1000, "allocs_tol_pct": 1 }
  },
  "seed_reference": {
    "comment": "must be ignored by the gate",
    "BenchmarkAlpha": { "ns_per_op": 99.0, "allocs_per_op": 9 }
  }
}
JSON

ok=0
expect() {
    want=$1
    label=$2
    outfile=$3
    baseline=${4:-$tmp/base.json}
    if scripts/bench_gate.sh "$outfile" "$baseline" >"$tmp/gate.out" 2>&1; then
        got=pass
    else
        got=fail
    fi
    if [ "$got" != "$want" ]; then
        echo "SELFTEST FAIL: $label: gate result $got, want $want; gate output:"
        cat "$tmp/gate.out"
        exit 1
    fi
    ok=$((ok + 1))
}

# 1. Matching run: all benchmarks present, allocs exact -> pass. Also
#    proves the seed_reference allocs (9) do not shadow the real baseline,
#    and that custom-metric columns (sim_us, windows) before the -benchmem
#    pair do not shift the allocs/op parse.
cat >"$tmp/good.out" <<'EOF'
BenchmarkAlpha-8   	1000000	        11.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkBeta-8    	 100000	       105.0 ns/op	      16 B/op	       2 allocs/op
BenchmarkLoose-8   	   1000	       510.0 ns/op	     144 sim_us	    6000 windows	      64 B/op	    1000 allocs/op
EOF
expect pass "matching run" "$tmp/good.out"

# 2. A gated benchmark missing from the baseline file -> fail loudly
#    (this was a WARN once; a new benchmark must get a baseline).
cat >"$tmp/extra.out" <<'EOF'
BenchmarkAlpha-8   	1000000	        11.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkBeta-8    	 100000	       105.0 ns/op	      16 B/op	       2 allocs/op
BenchmarkLoose-8   	   1000	       510.0 ns/op	      64 B/op	    1000 allocs/op
BenchmarkGamma-8   	 100000	       105.0 ns/op	      16 B/op	       2 allocs/op
EOF
expect fail "benchmark without baseline" "$tmp/extra.out"

# 3. A baseline key the run never exercised (gate pattern rot) -> fail.
cat >"$tmp/short.out" <<'EOF'
BenchmarkAlpha	1000000	        11.0 ns/op	       0 B/op	       0 allocs/op
EOF
expect fail "baseline not exercised" "$tmp/short.out"

# 4. allocs/op drift on an exact-match baseline -> fail.
cat >"$tmp/alloc.out" <<'EOF'
BenchmarkAlpha-8   	1000000	        11.0 ns/op	       0 B/op	       1 allocs/op
BenchmarkBeta-8    	 100000	       105.0 ns/op	      16 B/op	       2 allocs/op
BenchmarkLoose-8   	   1000	       510.0 ns/op	      64 B/op	    1000 allocs/op
EOF
expect fail "allocs/op regression" "$tmp/alloc.out"

# 5. Empty run output -> fail (the original silent-rot failure mode).
: >"$tmp/empty.out"
expect fail "empty benchmark output" "$tmp/empty.out"

# 6. allocs/op drift inside a declared allocs_tol_pct band -> pass (the
#    multi-lane workload benches drift by a handful of allocations).
cat >"$tmp/tol.out" <<'EOF'
BenchmarkAlpha-8   	1000000	        11.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkBeta-8    	 100000	       105.0 ns/op	      16 B/op	       2 allocs/op
BenchmarkLoose-8   	   1000	       510.0 ns/op	      64 B/op	    1008 allocs/op
EOF
expect pass "allocs drift within tolerance" "$tmp/tol.out"

# 7. allocs/op drift beyond the band -> fail (the tolerance is a band,
#    not an off switch).
cat >"$tmp/tolfail.out" <<'EOF'
BenchmarkAlpha-8   	1000000	        11.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkBeta-8    	 100000	       105.0 ns/op	      16 B/op	       2 allocs/op
BenchmarkLoose-8   	   1000	       510.0 ns/op	      64 B/op	    1020 allocs/op
EOF
expect fail "allocs drift beyond tolerance" "$tmp/tolfail.out"

# 8. A run without -benchmem columns -> fail (nothing to gate).
cat >"$tmp/nomem.out" <<'EOF'
BenchmarkAlpha-8   	1000000	        11.0 ns/op
BenchmarkBeta-8    	 100000	       105.0 ns/op
BenchmarkLoose-8   	   1000	       510.0 ns/op
EOF
expect fail "missing -benchmem columns" "$tmp/nomem.out"

# Cases 9-11 exercise the optional ns_tol_pct hard gate on sec/op against
# a second baseline (adding the key to base.json would change what the
# earlier fixtures test).
cat >"$tmp/base2.json" <<'JSON'
{
  "benchmarks": {
    "BenchmarkTimed": { "ns_per_op": 100.0, "allocs_per_op": 0, "ns_tol_pct": 10 },
    "BenchmarkFree": { "ns_per_op": 100.0, "allocs_per_op": 0 }
  }
}
JSON

# 9. ns/op drift inside the declared ns_tol_pct band -> pass.
cat >"$tmp/nstol.out" <<'EOF'
BenchmarkTimed-8   	 100000	       108.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkFree-8    	 100000	       105.0 ns/op	       0 B/op	       0 allocs/op
EOF
expect pass "ns drift within tolerance" "$tmp/nstol.out" "$tmp/base2.json"

# 10. ns/op drift beyond the band -> fail hard (with the band declared,
#     sec/op is a real gate, not the usual >3x warning).
cat >"$tmp/nstolfail.out" <<'EOF'
BenchmarkTimed-8   	 100000	       120.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkFree-8    	 100000	       105.0 ns/op	       0 B/op	       0 allocs/op
EOF
expect fail "ns drift beyond tolerance" "$tmp/nstolfail.out" "$tmp/base2.json"

# 11. A huge ns/op drift on a benchmark WITHOUT ns_tol_pct still passes
#     (warn-only: wall clock moves with the host machine).
cat >"$tmp/nswarn.out" <<'EOF'
BenchmarkTimed-8   	 100000	       100.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkFree-8    	 100000	       900.0 ns/op	       0 B/op	       0 allocs/op
EOF
expect pass "ns drift without band warns only" "$tmp/nswarn.out" "$tmp/base2.json"

echo "check_selftest: $ok gate scenarios behaved as expected"
