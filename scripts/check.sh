#!/bin/sh
# Pre-commit gate: vet, build, race-enabled tests, then the substrate
# benchmarks checked against the committed baselines in BENCH_substrate.json.
#
# Wall-clock comparisons use a generous tolerance because ns/op moves with
# the host machine; allocations per op are deterministic and enforced
# exactly. Usage: scripts/check.sh [-fast]  (-fast skips the benchmarks).
set -e
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "FAIL: gofmt needed on:"
    echo "$unformatted"
    exit 1
fi

echo "== bench gate self-test =="
scripts/check_selftest.sh

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

if [ "$1" = "-fast" ]; then
    echo "check.sh: fast mode, skipping benchmarks"
    exit 0
fi

echo "== substrate benchmarks vs BENCH_substrate.json =="
if ! bench_raw=$(go test -run xxx \
    -bench 'SimulatorEventThroughput$|SimulatorZeroDelayLane|SimulatorEventThroughputDeep|SimulatedPut|PingPongTelemetry|PingPongFlightRec' \
    -benchtime 200ms -benchmem . 2>&1); then
    echo "FAIL: benchmark run exited non-zero:"
    echo "$bench_raw"
    exit 1
fi
# The machine-scale workload benchmarks run one whole simulated job per op,
# so they get -benchtime 1x; their baselines live in the same "benchmarks"
# object (with an allocs tolerance band — see BENCH_substrate.json), and
# both runs feed one bench_gate call so the reverse check sees every key.
if ! workload_raw=$(go test -run xxx -bench 'TorusCollective$|HotSpot$' \
    -benchtime 1x -benchmem . 2>&1); then
    echo "FAIL: workload benchmark run exited non-zero:"
    echo "$workload_raw"
    exit 1
fi
out=$(printf '%s\n%s\n' "$bench_raw" "$workload_raw" | grep '^Benchmark' || true)
if [ -z "$out" ]; then
    # An empty result here means the bench pattern rotted or the run was
    # silently broken — not that everything passed.
    echo "FAIL: benchmark run produced no Benchmark lines; output was:"
    echo "$bench_raw"
    echo "$workload_raw"
    exit 1
fi
echo "$out"

# Baseline comparison lives in bench_gate.sh (self-tested above). It fails
# on allocs/op drift, on a gated benchmark with no baseline, and on a
# baseline the gate pattern no longer runs.
tmp_bench=$(mktemp)
echo "$out" >"$tmp_bench"
if ! scripts/bench_gate.sh "$tmp_bench" BENCH_substrate.json; then
    rm -f "$tmp_bench"
    echo "check.sh: substrate benchmark regression"
    exit 1
fi
rm -f "$tmp_bench"

echo "== sharded kernel: 512-node torus halo (BenchmarkTorusHalo*) =="
# Three arms of the identical simulated workload: shards=1 (sequential
# reference), shards=4, and shards=4 with every periodic observer armed.
# Simulated results are bit-identical by
# construction (TestTorusDifferential enforces it); here we gate the
# host-side costs: allocs/op of the sharded arm must stay within 5% of
# sequential always, and on a host with >=4 cores the sharded arm must be
# at least 2x faster in wall-clock. On smaller hosts the kernel runs its
# lanes inline (no parallelism exists to win) and the speedup gate is
# meaningless, so it is skipped with a notice.
if ! halo_raw=$(go test -run xxx -bench 'TorusHalo(Seq|Shard4|Shard4SamplerOn)$' \
    -benchtime 1x -benchmem . 2>&1); then
    echo "FAIL: torus halo benchmark run exited non-zero:"
    echo "$halo_raw"
    exit 1
fi
halo=$(echo "$halo_raw" | grep '^BenchmarkTorusHalo' || true)
echo "$halo"
# Names may or may not carry the -GOMAXPROCS suffix (absent at
# GOMAXPROCS=1), and Shard4 is a prefix of Shard4SamplerOn, so each arm
# is matched by exact name with an optional suffix.
seq_ns=$(echo "$halo" | awk '$1 ~ /^BenchmarkTorusHaloSeq(-[0-9]+)?$/ {print $3}')
seq_allocs=$(echo "$halo" | awk '$1 ~ /^BenchmarkTorusHaloSeq(-[0-9]+)?$/ {print $(NF-1)}')
par_ns=$(echo "$halo" | awk '$1 ~ /^BenchmarkTorusHaloShard4(-[0-9]+)?$/ {print $3}')
par_allocs=$(echo "$halo" | awk '$1 ~ /^BenchmarkTorusHaloShard4(-[0-9]+)?$/ {print $(NF-1)}')
obs_ns=$(echo "$halo" | awk '$1 ~ /^BenchmarkTorusHaloShard4SamplerOn(-[0-9]+)?$/ {print $3}')
obs_allocs=$(echo "$halo" | awk '$1 ~ /^BenchmarkTorusHaloShard4SamplerOn(-[0-9]+)?$/ {print $(NF-1)}')
if [ -z "$seq_ns" ] || [ -z "$par_ns" ] || [ -z "$obs_ns" ] ||
    [ -z "$seq_allocs" ] || [ -z "$par_allocs" ] || [ -z "$obs_allocs" ]; then
    echo "FAIL: could not parse torus halo benchmark output; raw output was:"
    echo "$halo_raw"
    exit 1
fi
alloc_ok=$(awk -v a="$par_allocs" -v b="$seq_allocs" \
    'BEGIN { d = a - b; if (d < 0) d = -d; print (d <= 0.05 * b) ? 1 : 0 }')
if [ "$alloc_ok" != "1" ]; then
    echo "FAIL: sharded halo allocs/op = $par_allocs, sequential = $seq_allocs (>5% apart)"
    echo "check.sh: sharded kernel allocation regression"
    exit 1
fi
echo "check.sh: halo allocs/op within 5% (seq $seq_allocs, 4 shards $par_allocs)"
# The observed arm runs the same workload with every periodic observer
# armed (telemetry, RAS sampler, link meters, stall detector, heartbeat
# monitor, flight recorder; tracing excepted — it allocates per record by
# design). The added allocations are instrument registration plus the
# end-of-run merge/export — a fixed cost, not per-event — so the ratio
# against the bare sharded arm is gated: measured ~1.69x, fails above
# 1.8x (a reintroduced per-event allocation blows well past that).
# Wall-clock over 3x only warns; it is machine-dependent.
obs_alloc_ok=$(awk -v o="$obs_allocs" -v b="$par_allocs" \
    'BEGIN { print (o <= 1.8 * b) ? 1 : 0 }')
if [ "$obs_alloc_ok" != "1" ]; then
    echo "FAIL: observed halo allocs/op = $obs_allocs, bare sharded = $par_allocs (>1.8x)"
    echo "check.sh: observer allocation regression"
    exit 1
fi
echo "check.sh: observed halo allocs/op within 1.8x of bare (bare $par_allocs, observed $obs_allocs)"
obs_ns_ok=$(awk -v o="$obs_ns" -v b="$par_ns" 'BEGIN { print (o <= 3.0 * b) ? 1 : 0 }')
if [ "$obs_ns_ok" != "1" ]; then
    echo "WARN: observed halo ns/op = $obs_ns, bare sharded = $par_ns (>3x; machine-dependent, not fatal)"
fi
cpus=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
if [ "$cpus" -ge 4 ]; then
    speedup_ok=$(awk -v s="$seq_ns" -v p="$par_ns" 'BEGIN { print (s >= 2.0 * p) ? 1 : 0 }')
    ratio=$(awk -v s="$seq_ns" -v p="$par_ns" 'BEGIN { printf "%.2f", s / p }')
    if [ "$speedup_ok" != "1" ]; then
        echo "FAIL: 4-shard halo speedup ${ratio}x (seq $seq_ns ns/op, 4 shards $par_ns ns/op); gate is 2.0x"
        echo "check.sh: sharded kernel speedup regression"
        exit 1
    fi
    echo "check.sh: halo 4-shard speedup ${ratio}x (gate 2.0x)"
else
    echo "check.sh: host has $cpus core(s); the 2x speedup gate needs >=4, skipped (alloc gate still enforced)"
fi
echo "check.sh: all green"
