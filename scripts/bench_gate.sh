#!/bin/sh
# Compare `go test -benchmem` output against the "benchmarks" object of a
# baseline JSON, in both directions:
#
#   - every Benchmark line in the output must have a baseline entry (a
#     newly gated benchmark must be added to the baseline file), and
#   - every baseline key must appear in the output (a baseline whose
#     benchmark the gate pattern no longer runs is a rotted gate — the
#     benchmark silently stopped being checked).
#
# allocs/op is deterministic and must match exactly, unless the baseline
# entry carries "allocs_tol_pct": N — the multi-lane workload benchmarks
# drift by a handful of allocations with goroutine scheduling, so they
# declare a small percentage band instead. ns/op over 3x the baseline only
# warns (wall clock moves with the host machine), unless the baseline entry
# carries "ns_tol_pct": N — then sec/op becomes a hard gate within that
# band, for benchmarks whose runtime a maintainer has decided to defend.
#
# Usage: bench_gate.sh <bench-output-file> <baseline-json>
# Covered by scripts/check_selftest.sh.
set -e
out_file=${1:?usage: bench_gate.sh <bench-output-file> <baseline-json>}
json=${2:?usage: bench_gate.sh <bench-output-file> <baseline-json>}

# The "benchmarks" object only — other sections (seed_reference,
# torus_halo) repeat keys with values that are not gates.
benchobj() {
    awk '/"benchmarks"[[:space:]]*:/{f=1;next} f&&/^[[:space:]]*}/{f=0} f' "$json"
}

fail=0
matched=0
# allocs/op is located by its unit label, not by column: benchmarks that
# ReportMetric custom units (sim_us, windows) insert extra columns before
# the -benchmem pair. The output name carries a -GOMAXPROCS suffix
# (BenchmarkSimulatedPut-8) that the baseline keys do not (and no suffix
# at GOMAXPROCS=1).
while read -r line; do
    case "$line" in Benchmark*) ;; *) continue ;; esac
    name=$(printf '%s\n' "$line" | awk '{print $1}')
    name=${name%-*}
    ns=$(printf '%s\n' "$line" | awk '{print $3}')
    allocs=$(printf '%s\n' "$line" | awk '{for (i = 2; i <= NF; i++) if ($i == "allocs/op") { print $(i-1); exit }}')
    if [ -z "$allocs" ]; then
        echo "FAIL: $name has no allocs/op column (was the run missing -benchmem?)"
        fail=1
        continue
    fi
    base=$(benchobj |
        sed -n "s/.*\"$name\"[[:space:]]*:[[:space:]]*{[[:space:]]*\"ns_per_op\"[[:space:]]*:[[:space:]]*\([0-9.]*\)[[:space:]]*,[[:space:]]*\"allocs_per_op\"[[:space:]]*:[[:space:]]*\([0-9][0-9]*\).*/\1 \2/p" |
        head -1)
    if [ -z "$base" ]; then
        echo "FAIL: $name is gated but has no baseline in $json — add it to the \"benchmarks\" object"
        fail=1
        continue
    fi
    matched=$((matched + 1))
    base_ns=${base% *}
    base_allocs=${base#* }
    tol=$(benchobj |
        sed -n "s/.*\"$name\"[[:space:]]*:[[:space:]]*{[^}]*\"allocs_tol_pct\"[[:space:]]*:[[:space:]]*\([0-9.]*\).*/\1/p" |
        head -1)
    [ -n "$tol" ] || tol=0
    alloc_ok=$(awk -v a="$allocs" -v b="$base_allocs" -v t="$tol" \
        'BEGIN { d = a - b; if (d < 0) d = -d; print (d <= t / 100 * b) ? 1 : 0 }')
    if [ "$alloc_ok" != "1" ]; then
        if [ "$tol" = "0" ]; then
            echo "FAIL: $name allocs/op = $allocs, baseline $base_allocs"
        else
            echo "FAIL: $name allocs/op = $allocs, baseline $base_allocs (tolerance ${tol}%)"
        fi
        fail=1
    fi
    ns_tol=$(benchobj |
        sed -n "s/.*\"$name\"[[:space:]]*:[[:space:]]*{[^}]*\"ns_tol_pct\"[[:space:]]*:[[:space:]]*\([0-9.]*\).*/\1/p" |
        head -1)
    if [ -n "$ns_tol" ]; then
        ns_ok=$(awk -v ns="$ns" -v b="$base_ns" -v t="$ns_tol" \
            'BEGIN { d = ns - b; if (d < 0) d = -d; print (d <= t / 100 * b) ? 1 : 0 }')
        if [ "$ns_ok" != "1" ]; then
            echo "FAIL: $name ns/op = $ns, baseline $base_ns (hard tolerance ${ns_tol}%)"
            fail=1
        fi
    else
        over=$(awk -v ns="$ns" -v base="$base_ns" 'BEGIN { print (ns > 3 * base) ? 1 : 0 }')
        if [ "$over" = "1" ]; then
            echo "WARN: $name ns/op = $ns, baseline $base_ns (>3x; machine-dependent, not fatal)"
        fi
    fi
done <"$out_file"

# Reverse direction: baseline keys the run never exercised.
for key in $(benchobj | sed -n 's/^[[:space:]]*"\(Benchmark[^"]*\)".*/\1/p'); do
    if ! grep -q "^$key\(-[0-9][0-9]*\)\{0,1\}[[:space:]]" "$out_file"; then
        echo "FAIL: baseline $key in $json was not exercised by the benchmark run (gate pattern rot?)"
        fail=1
    fi
done

if [ "$matched" = "0" ]; then
    echo "FAIL: no benchmark matched a baseline in $json (key or format drift?)"
    fail=1
fi
[ "$fail" = "0" ] || exit 1
echo "bench_gate: $matched benchmarks checked against baselines"
