// Accelerated: the paper's forward-looking mode (§3.3) side by side with
// generic mode. In generic mode the host matches headers and the data path
// takes interrupts; in accelerated mode "much of the Portals library
// functionality, including matching, will be offloaded to the SeaStar
// firmware ... both interrupts will be eliminated". The example measures
// one-way put latency in both modes across the small-message range and
// reports the interrupt counters.
//
//	go run ./examples/accelerated
package main

import (
	"fmt"

	"portals3/internal/core"
	"portals3/internal/machine"
	"portals3/internal/model"
	"portals3/internal/sim"
)

const (
	ptl   = 4
	bits  = 1
	iters = 50
)

// measure runs a put ping-pong of the given size in the given mode and
// returns the one-way latency plus total data-path interrupts.
func measure(mode machine.Mode, size int) (sim.Time, uint64) {
	m := machine.NewPair(model.Defaults())
	var rtt sim.Time

	setup := func(app *machine.App) (core.EQHandle, core.MDHandle) {
		eq, _ := app.API.EQAlloc(1024)
		me, _ := app.API.MEAttach(ptl, core.ProcessID{Nid: core.NidAny, Pid: core.PidAny},
			bits, 0, core.Retain, core.After)
		app.API.MDAttach(me, core.MDesc{
			Region:    app.Alloc(1 << 16),
			Threshold: core.ThresholdInfinite,
			Options:   core.MDOpPut | core.MDManageRemote | core.MDEventStartDisable,
			EQ:        eq,
		}, core.Retain)
		md, _ := app.API.MDBind(core.MDesc{
			Region:    app.Alloc(1 << 16),
			Threshold: core.ThresholdInfinite,
			Options:   core.MDEventStartDisable,
			EQ:        eq,
		})
		return eq, md
	}
	waitPut := func(app *machine.App, eq core.EQHandle) {
		for {
			ev, err := app.API.EQWait(eq)
			if err != nil {
				panic(err)
			}
			if ev.Type == core.EventPutEnd {
				return
			}
		}
	}

	var a, b *machine.App
	b, _ = m.Spawn(1, "pong", mode, func(app *machine.App) {
		eq, md := setup(app)
		for i := 0; i < iters+1; i++ {
			waitPut(app, eq)
			app.API.PutRegion(md, 0, size, core.NoAck, a.ID(), ptl, bits, 0, 0)
		}
	})
	a, _ = m.Spawn(0, "ping", mode, func(app *machine.App) {
		eq, md := setup(app)
		app.Proc.Sleep(50 * sim.Microsecond)
		app.API.PutRegion(md, 0, size, core.NoAck, b.ID(), ptl, bits, 0, 0)
		waitPut(app, eq)
		t0 := app.Proc.Now()
		for i := 0; i < iters; i++ {
			app.API.PutRegion(md, 0, size, core.NoAck, b.ID(), ptl, bits, 0, 0)
			waitPut(app, eq)
		}
		rtt = (app.Proc.Now() - t0) / iters
	})
	m.Run()
	return rtt / 2, m.Node(0).Kernel.Interrupts + m.Node(1).Kernel.Interrupts
}

func main() {
	fmt.Println("one-way put latency, generic vs accelerated (paper §3.3)")
	fmt.Printf("%8s %12s %12s %10s %14s\n", "size(B)", "generic", "accelerated", "saved", "interrupts g/a")
	for _, size := range []int{0, 8, 12, 16, 64, 256, 1024, 4096, 16384} {
		gen, girq := measure(machine.Generic, size)
		acc, airq := measure(machine.Accelerated, size)
		fmt.Printf("%8d %12v %12v %10v %8d / %d\n", size, gen, acc, gen-acc, girq, airq)
	}
	fmt.Println("\nnote the step past 12 bytes in generic mode (second interrupt, §6)")
	fmt.Println("and that the accelerated data path takes zero interrupts.")
}
