// Redstorm: the full 10,368-node Red Storm machine (§5.1) — 27×16×24,
// torus in Z only. Nodes build lazily, so declaring the whole machine is
// free; the example measures how put latency grows with network distance,
// the effect behind the 2 µs nearest-neighbor / 5 µs worst-case MPI
// requirements of §1, and then runs a small MPI job on nodes scattered
// across the machine.
//
//	go run ./examples/redstorm
package main

import (
	"fmt"

	"portals3/internal/core"
	"portals3/internal/machine"
	"portals3/internal/model"
	"portals3/internal/mpi"
	"portals3/internal/sim"
	"portals3/internal/topo"
)

const (
	ptl   = 4
	bits  = 1
	iters = 20
)

// latencyBetween measures one-way 8-byte put latency between two nodes of
// a fresh Red Storm machine.
func latencyBetween(rs *topo.Topology, na, nb topo.NodeID) sim.Time {
	m := machine.New(model.Defaults(), rs)
	var rtt sim.Time
	setup := func(app *machine.App) (core.EQHandle, core.MDHandle) {
		eq, _ := app.API.EQAlloc(256)
		me, _ := app.API.MEAttach(ptl, core.ProcessID{Nid: core.NidAny, Pid: core.PidAny},
			bits, 0, core.Retain, core.After)
		app.API.MDAttach(me, core.MDesc{Region: app.Alloc(64), Threshold: core.ThresholdInfinite,
			Options: core.MDOpPut | core.MDManageRemote | core.MDEventStartDisable, EQ: eq}, core.Retain)
		md, _ := app.API.MDBind(core.MDesc{Region: app.Alloc(64), Threshold: core.ThresholdInfinite,
			Options: core.MDEventStartDisable, EQ: eq})
		return eq, md
	}
	waitPut := func(app *machine.App, eq core.EQHandle) {
		for {
			ev, _ := app.API.EQWait(eq)
			if ev.Type == core.EventPutEnd {
				return
			}
		}
	}
	var a, b *machine.App
	b, _ = m.Spawn(nb, "pong", machine.Generic, func(app *machine.App) {
		eq, md := setup(app)
		for i := 0; i < iters+1; i++ {
			waitPut(app, eq)
			app.API.PutRegion(md, 0, 8, core.NoAck, a.ID(), ptl, bits, 0, 0)
		}
	})
	a, _ = m.Spawn(na, "ping", machine.Generic, func(app *machine.App) {
		eq, md := setup(app)
		app.Proc.Sleep(100 * sim.Microsecond)
		app.API.PutRegion(md, 0, 8, core.NoAck, b.ID(), ptl, bits, 0, 0)
		waitPut(app, eq)
		t0 := app.Proc.Now()
		for i := 0; i < iters; i++ {
			app.API.PutRegion(md, 0, 8, core.NoAck, b.ID(), ptl, bits, 0, 0)
			waitPut(app, eq)
		}
		rtt = (app.Proc.Now() - t0) / iters
	})
	m.Run()
	return rtt / 2
}

func main() {
	rs := topo.RedStorm()
	nx, ny, nz := rs.Dims()
	fmt.Printf("Red Storm: %dx%dx%d = %d nodes, torus in Z, diameter %d hops\n\n",
		nx, ny, nz, rs.Nodes(), rs.Diameter())

	origin := rs.ID(topo.Coord{X: 0, Y: 0, Z: 0})
	pairs := []struct {
		name string
		dst  topo.Coord
	}{
		{"nearest neighbor (1 hop)", topo.Coord{X: 1, Y: 0, Z: 0}},
		{"across one cabinet row", topo.Coord{X: 13, Y: 0, Z: 0}},
		{"opposite corner of a plane", topo.Coord{X: 26, Y: 15, Z: 0}},
		{"farthest pair (diameter)", topo.Coord{X: 26, Y: 15, Z: 12}},
	}
	fmt.Println("8-byte put latency by distance (paper §1: 2 us near, 5 us far for MPI):")
	for _, p := range pairs {
		dst := rs.ID(p.dst)
		lat := latencyBetween(rs, origin, dst)
		fmt.Printf("  %-28s %2d hops   %v\n", p.name, rs.Hops(origin, dst), lat)
	}

	// An MPI job on eight nodes scattered across the machine: rank i at
	// coordinate (3i, i, 2i) — the job spans dozens of hops yet only the
	// eight touched nodes are ever instantiated.
	fmt.Println("\nscattered 8-rank MPI job, allreduce across the machine:")
	m := machine.New(model.Defaults(), rs)
	var nodes []topo.NodeID
	for i := 0; i < 8; i++ {
		nodes = append(nodes, rs.ID(topo.Coord{X: 3 * i, Y: i, Z: 2 * i}))
	}
	var elapsed sim.Time
	err := mpi.Launch(m, nodes, mpi.MPICH2, machine.Generic, func(r *mpi.Rank) {
		buf := r.Alloc(8)
		one := []byte{1, 0, 0, 0, 0, 0, 0, 0}
		buf.WriteAt(0, one)
		r.Barrier()
		t0 := r.Proc().Now()
		r.Allreduce(mpi.SumUint64, buf, 0, 8)
		if r.Rank() == 0 {
			elapsed = r.Proc().Now() - t0
			got := make([]byte, 8)
			buf.ReadAt(0, got)
			fmt.Printf("  sum over 8 scattered ranks = %d (want 8), allreduce took %v\n", got[0], elapsed)
		}
	})
	if err != nil {
		panic(err)
	}
	m.Run()
	fmt.Printf("  nodes instantiated: %d of %d\n", len(m.Stats().Nodes), rs.Nodes())
}
