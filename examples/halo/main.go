// Halo: the scientific workload the platform was built for — a 3D
// nearest-neighbor halo exchange over MPI on a torus, the communication
// pattern of the stencil codes that motivated Red Storm (§1).
//
// A 4x4x4 job runs several iterations of six-direction ghost-cell
// exchanges with an allreduce-style barrier between steps, and reports the
// per-iteration exchange time.
//
//	go run ./examples/halo
package main

import (
	"encoding/binary"
	"fmt"

	"portals3/internal/machine"
	"portals3/internal/model"
	"portals3/internal/mpi"
	"portals3/internal/sim"
	"portals3/internal/topo"
)

const (
	side      = 4        // 4x4x4 = 64 ranks
	faceBytes = 32 << 10 // one ghost face
	steps     = 5
)

func main() {
	tp, err := topo.New(side, side, side, true, true, true)
	if err != nil {
		panic(err)
	}
	m := machine.New(model.Defaults(), tp)

	nodes := make([]topo.NodeID, tp.Nodes())
	for i := range nodes {
		nodes[i] = topo.NodeID(i)
	}

	// Rank i runs on node i, so MPI rank geometry equals machine geometry:
	// neighbors in the job are neighbors on the torus.
	var perStep [steps]sim.Time
	err = mpi.Launch(m, nodes, mpi.MPICH1, machine.Generic, func(r *mpi.Rank) {
		me := topo.NodeID(r.Rank())
		coord := tp.Coord(me)

		// The six face neighbors on the torus.
		var nbr [6]int
		k := 0
		for _, axis := range []topo.Axis{topo.X, topo.Y, topo.Z} {
			for _, sign := range []int{+1, -1} {
				n, ok := tp.Neighbor(me, topo.Dir{Axis: axis, Sign: sign})
				if !ok {
					panic("torus neighbor missing")
				}
				nbr[k] = int(n)
				k++
			}
		}

		send := r.Alloc(faceBytes)
		recv := r.Alloc(faceBytes)
		residual := r.Alloc(8)
		r.Barrier()
		for step := 0; step < steps; step++ {
			t0 := r.Proc().Now()
			// Exchange along each axis: swap faces with the +/- neighbors.
			// Pairing by direction keeps every rank's send matched with the
			// opposite neighbor's receive.
			for d := 0; d < 6; d += 2 {
				plus, minus := nbr[d], nbr[d+1]
				r.Sendrecv(plus, 100+d, send, 0, faceBytes, minus, 100+d, recv, 0, faceBytes)
				r.Sendrecv(minus, 200+d, send, 0, faceBytes, plus, 200+d, recv, 0, faceBytes)
			}
			// The solver's convergence check: a global residual reduction,
			// as every iterative stencil code does per step.
			local := make([]byte, 8)
			binary.LittleEndian.PutUint64(local, uint64(r.Rank()+step))
			residual.WriteAt(0, local)
			r.Allreduce(mpi.SumUint64, residual, 0, 8)
			if r.Rank() == 0 {
				perStep[step] = r.Proc().Now() - t0
				residual.ReadAt(0, local)
				want := uint64(0)
				for i := 0; i < tp.Nodes(); i++ {
					want += uint64(i + step)
				}
				if binary.LittleEndian.Uint64(local) != want {
					panic("allreduce residual mismatch")
				}
			}
		}
		if r.Rank() == 0 {
			fmt.Printf("rank 0 at %v%v exchanged %d B faces with %v\n",
				me, coord, faceBytes, nbr)
		}
	})
	if err != nil {
		panic(err)
	}
	m.Run()

	fmt.Printf("%d ranks on a %dx%dx%d torus, %d KB faces\n", tp.Nodes(), side, side, side, faceBytes>>10)
	for i, t := range perStep {
		fmt.Printf("step %d: halo exchange + allreduce took %v\n", i, t)
	}
	// A taste of the fabric counters: how busy was a middle node's +X link?
	mid := tp.ID(topo.Coord{X: 1, Y: 1, Z: 1})
	fmt.Printf("link utilization at node %d X+: %.1f%%\n",
		mid, 100*m.Fab.LinkUtilization(mid, topo.Dir{Axis: topo.X, Sign: 1}))
}
