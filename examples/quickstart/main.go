// Quickstart: the smallest complete Portals program.
//
// Two simulated XT3 nodes. The receiver attaches a match entry and a memory
// descriptor to portal index 4 and waits on its event queue; the sender
// binds a descriptor over a message and puts it. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"portals3/internal/core"
	"portals3/internal/machine"
	"portals3/internal/model"
	"portals3/internal/sim"
)

func main() {
	// A two-node XT3: Catamount compute nodes joined by one SeaStar link.
	m := machine.NewPair(model.Defaults())

	const (
		ptl  = 4      // portal table index the receiver serves
		bits = 0xCAFE // match bits the sender must present
	)

	// The receiver: EQ + ME + MD, then block in EQWait.
	receiver, err := m.Spawn(1, "receiver", machine.Generic, func(app *machine.App) {
		eq, _ := app.API.EQAlloc(16)
		me, _ := app.API.MEAttach(ptl,
			core.ProcessID{Nid: core.NidAny, Pid: core.PidAny}, // accept any sender
			bits, 0, core.Retain, core.After)
		buf := app.Alloc(256)
		app.API.MDAttach(me, core.MDesc{
			Region:    buf,
			Threshold: core.ThresholdInfinite,
			Options:   core.MDOpPut,
			EQ:        eq,
		}, core.Retain)

		for {
			ev, err := app.API.EQWait(eq)
			if err != nil {
				fmt.Println("receiver:", err)
				return
			}
			fmt.Printf("[%8v] receiver: %v from %v, %d bytes, hdr_data=%#x\n",
				app.Proc.Now(), ev.Type, ev.Initiator, ev.MLength, ev.HdrData)
			if ev.Type == core.EventPutEnd {
				got := make([]byte, ev.MLength)
				buf.ReadAt(0, got)
				fmt.Printf("[%8v] receiver: payload = %q\n", app.Proc.Now(), got)
				return
			}
		}
	})
	if err != nil {
		panic(err)
	}

	// The sender: bind a descriptor over the message and put it.
	if _, err := m.Spawn(0, "sender", machine.Generic, func(app *machine.App) {
		app.Proc.Sleep(20 * sim.Microsecond) // let the receiver post its ME

		msg := []byte("hello from node 0 over the SeaStar")
		src := app.Alloc(len(msg))
		src.WriteAt(0, msg)

		eq, _ := app.API.EQAlloc(16)
		md, _ := app.API.MDBind(core.MDesc{
			Region:    src,
			Threshold: core.ThresholdInfinite,
			EQ:        eq,
		})
		fmt.Printf("[%8v] sender: putting %d bytes\n", app.Proc.Now(), len(msg))
		if err := app.API.Put(md, core.NoAck, receiver.ID(), ptl, bits, 0, 0xF00D); err != nil {
			fmt.Println("sender:", err)
			return
		}
		for {
			ev, err := app.API.EQWait(eq)
			if err != nil {
				fmt.Println("sender:", err)
				return
			}
			fmt.Printf("[%8v] sender: %v\n", app.Proc.Now(), ev.Type)
			if ev.Type == core.EventSendEnd {
				return // local buffer is reusable; we are done
			}
		}
	}); err != nil {
		panic(err)
	}

	m.Run()
	fmt.Printf("simulation finished at %v; receiver took %d interrupt(s)\n",
		m.S.Now(), m.Node(1).Kernel.Interrupts)
}
