// Fileserver: the Lustre scenario from the paper (§3.1/§3.2) — a Linux
// service node runs a kernel-level object storage service through kbridge
// while a user-level application on the same node uses ukbridge; both
// share one SeaStar cleanly. Catamount compute nodes act as clients.
//
// The RPC pattern is Lustre's over Portals: a client puts a request to the
// service's request portal; for reads, the service puts the object data
// back into a buffer the client exposed; for writes, the service gets the
// data from the client (server-directed data movement).
//
//	go run ./examples/fileserver
package main

import (
	"encoding/binary"
	"fmt"

	"portals3/internal/core"
	"portals3/internal/machine"
	"portals3/internal/model"
	"portals3/internal/oskernel"
	"portals3/internal/sim"
	"portals3/internal/topo"
)

const (
	reqPtl  = 8 // service request portal
	bulkPtl = 9 // client bulk-data portal (exposed for server puts/gets)
	objSize = 64 << 10
)

// Request opcodes.
const (
	opRead  = 1
	opWrite = 2
)

// request is the 16-byte RPC header a client puts to the service.
type request struct {
	Op     uint32
	Object uint32
	Cookie uint64 // match bits of the client's exposed bulk buffer
}

func encodeReq(r request) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint32(b[0:], r.Op)
	binary.LittleEndian.PutUint32(b[4:], r.Object)
	binary.LittleEndian.PutUint64(b[8:], r.Cookie)
	return b
}

func decodeReq(b []byte) request {
	return request{
		Op:     binary.LittleEndian.Uint32(b[0:]),
		Object: binary.LittleEndian.Uint32(b[4:]),
		Cookie: binary.LittleEndian.Uint64(b[8:]),
	}
}

func main() {
	// Node 0 is the Linux service node; nodes 1-2 are Catamount compute
	// nodes, as on a real XT3 partition.
	tp, err := topo.New(3, 1, 1, false, false, false)
	if err != nil {
		panic(err)
	}
	m := machine.New(model.Defaults(), tp)
	m.OSKind = func(n topo.NodeID) oskernel.Kind {
		if n == 0 {
			return oskernel.Linux
		}
		return oskernel.Catamount
	}

	// The kernel-level storage service (kbridge: no syscall per call).
	service, err := m.Spawn(0, "oss", machine.KernelService, func(app *machine.App) {
		eq, _ := app.API.EQAlloc(256)
		me, _ := app.API.MEAttach(reqPtl, core.ProcessID{Nid: core.NidAny, Pid: core.PidAny},
			0, ^uint64(0), core.Retain, core.After)
		reqBuf := app.Alloc(16 << 10)
		app.API.MDAttach(me, core.MDesc{
			Region:    reqBuf,
			Threshold: core.ThresholdInfinite,
			Options:   core.MDOpPut | core.MDEventStartDisable,
			EQ:        eq,
		}, core.Retain)

		objects := map[uint32]core.Region{} // the "object store"
		served := 0
		for served < 2 {
			ev, err := app.API.EQWait(eq)
			if err != nil || ev.Type != core.EventPutEnd {
				continue
			}
			raw := make([]byte, 16)
			reqBuf.ReadAt(ev.Offset, raw)
			rq := decodeReq(raw)
			client := ev.Initiator
			switch rq.Op {
			case opWrite:
				// Server-directed write: pull the data from the client.
				obj := app.Alloc(objSize)
				geq, _ := app.API.EQAlloc(16)
				gmd, _ := app.API.MDBind(core.MDesc{Region: obj, Threshold: core.ThresholdInfinite, EQ: geq})
				app.API.Get(gmd, client, bulkPtl, rq.Cookie, 0)
				for {
					gev, _ := app.API.EQWait(geq)
					if gev.Type == core.EventReplyEnd {
						break
					}
				}
				objects[rq.Object] = obj
				fmt.Printf("[%9v] oss: WRITE obj %d (%d B) from client %v\n",
					app.Proc.Now(), rq.Object, objSize, client)
			case opRead:
				// Read: push the object into the client's exposed buffer.
				obj, ok := objects[rq.Object]
				if !ok {
					fmt.Printf("[%9v] oss: READ of missing object %d\n", app.Proc.Now(), rq.Object)
					break
				}
				peq, _ := app.API.EQAlloc(16)
				pmd, _ := app.API.MDBind(core.MDesc{Region: obj, Threshold: core.ThresholdInfinite, EQ: peq})
				app.API.Put(pmd, core.NoAck, client, bulkPtl, rq.Cookie, 0, 0)
				for {
					pev, _ := app.API.EQWait(peq)
					if pev.Type == core.EventSendEnd {
						break
					}
				}
				fmt.Printf("[%9v] oss: READ  obj %d served to client %v\n",
					app.Proc.Now(), rq.Object, client)
			}
			served++
		}
	})
	if err != nil {
		panic(err)
	}

	// A user-level monitoring app shares the service node via ukbridge.
	if _, err := m.Spawn(0, "monitor", machine.Generic, func(app *machine.App) {
		eq, _ := app.API.EQAlloc(16)
		me, _ := app.API.MEAttach(reqPtl, core.ProcessID{Nid: core.NidAny, Pid: core.PidAny},
			0x6D6F6E, 0, core.Retain, core.After)
		buf := app.Alloc(64)
		app.API.MDAttach(me, core.MDesc{Region: buf, Threshold: core.ThresholdInfinite,
			Options: core.MDOpPut, EQ: eq}, core.Retain)
		ev, _ := app.API.EQWait(eq)
		fmt.Printf("[%9v] monitor (ukbridge, same node as the oss): got %v from %v\n",
			app.Proc.Now(), ev.Type, ev.Initiator)
	}); err != nil {
		panic(err)
	}

	// Client on a Catamount compute node: write an object, read it back,
	// and ping the monitor to show ukbridge+kbridge sharing one NIC.
	if _, err := m.Spawn(1, "client", machine.Generic, func(app *machine.App) {
		app.Proc.Sleep(50 * sim.Microsecond)

		// Expose a bulk buffer for server-directed transfers.
		const cookie = 0xB0B
		data := app.Alloc(objSize)
		fill := make([]byte, objSize)
		for i := range fill {
			fill[i] = byte(i * 3)
		}
		data.WriteAt(0, fill)
		bulkME, _ := app.API.MEAttach(bulkPtl, service.ID(), cookie, 0, core.Retain, core.After)
		app.API.MDAttach(bulkME, core.MDesc{
			Region:    data,
			Threshold: core.ThresholdInfinite,
			Options:   core.MDOpPut | core.MDOpGet | core.MDManageRemote,
		}, core.Retain)

		eq, _ := app.API.EQAlloc(32)
		reqMD, _ := app.API.MDBind(core.MDesc{Region: core.SliceRegion(encodeReq(request{Op: opWrite, Object: 7, Cookie: cookie})),
			Threshold: core.ThresholdInfinite, EQ: eq})
		app.API.Put(reqMD, core.NoAck, service.ID(), reqPtl, 1, 0, 0)
		fmt.Printf("[%9v] client: sent WRITE request for object 7\n", app.Proc.Now())

		// Wipe the local copy, then read the object back into it.
		app.Proc.Sleep(300 * sim.Microsecond)
		data.WriteAt(0, make([]byte, objSize))
		rd, _ := app.API.MDBind(core.MDesc{Region: core.SliceRegion(encodeReq(request{Op: opRead, Object: 7, Cookie: cookie})),
			Threshold: core.ThresholdInfinite, EQ: eq})
		app.API.Put(rd, core.NoAck, service.ID(), reqPtl, 1, 0, 0)
		fmt.Printf("[%9v] client: sent READ request for object 7\n", app.Proc.Now())

		app.Proc.Sleep(400 * sim.Microsecond)
		got := make([]byte, objSize)
		data.ReadAt(0, got)
		intact := true
		for i := range got {
			if got[i] != byte(i*3) {
				intact = false
				break
			}
		}
		fmt.Printf("[%9v] client: read-back intact: %v\n", app.Proc.Now(), intact)

		// Ping the monitoring app (different pid, same node as the oss).
		ping, _ := app.API.MDBind(core.MDesc{Region: core.SliceRegion([]byte("hi")), Threshold: core.ThresholdInfinite, EQ: eq})
		mon := core.ProcessID{Nid: 0, Pid: service.ID().Pid + 1}
		app.API.Put(ping, core.NoAck, mon, reqPtl, 0x6D6F6E, 0, 0)
	}); err != nil {
		panic(err)
	}

	m.RunUntil(5 * sim.Millisecond)
	fmt.Printf("done at %v; service node took %d interrupts\n", m.S.Now(), m.Node(0).Kernel.Interrupts)
}
