// Pingpong: latency measurement against the raw Portals API, showing the
// paper's two headline small-message effects: the ~5.4 µs one-way latency
// and the step past the 12-byte payload-in-header-packet optimization (§6).
//
//	go run ./examples/pingpong
package main

import (
	"fmt"

	"portals3/internal/core"
	"portals3/internal/machine"
	"portals3/internal/model"
	"portals3/internal/sim"
)

const (
	ptl   = 4
	bits  = 1
	iters = 100
)

// setup posts the standard receive side: a remotely-managed descriptor so
// every round lands at offset zero.
func setup(app *machine.App) (core.EQHandle, core.MDHandle) {
	eq, _ := app.API.EQAlloc(1024)
	me, _ := app.API.MEAttach(ptl, core.ProcessID{Nid: core.NidAny, Pid: core.PidAny},
		bits, 0, core.Retain, core.After)
	buf := app.Alloc(1 << 16)
	app.API.MDAttach(me, core.MDesc{
		Region:    buf,
		Threshold: core.ThresholdInfinite,
		Options:   core.MDOpPut | core.MDManageRemote | core.MDEventStartDisable,
		EQ:        eq,
	}, core.Retain)
	src := app.Alloc(1 << 16)
	md, _ := app.API.MDBind(core.MDesc{
		Region:    src,
		Threshold: core.ThresholdInfinite,
		Options:   core.MDEventStartDisable,
		EQ:        eq,
	})
	return eq, md
}

// waitPut blocks until the next incoming put completes.
func waitPut(app *machine.App, eq core.EQHandle) {
	for {
		ev, err := app.API.EQWait(eq)
		if err != nil {
			panic(err)
		}
		if ev.Type == core.EventPutEnd {
			return
		}
	}
}

func main() {
	sizes := []int{0, 1, 4, 8, 12, 13, 16, 64, 256, 1024}
	fmt.Println("size(B)   one-way latency")
	for _, size := range sizes {
		m := machine.NewPair(model.Defaults())
		var rtt sim.Time
		var a, b *machine.App
		b, _ = m.Spawn(1, "pong", machine.Generic, func(app *machine.App) {
			eq, md := setup(app)
			for i := 0; i < iters+1; i++ {
				waitPut(app, eq)
				app.API.PutRegion(md, 0, size, core.NoAck, a.ID(), ptl, bits, 0, 0)
			}
		})
		a, _ = m.Spawn(0, "ping", machine.Generic, func(app *machine.App) {
			eq, md := setup(app)
			app.Proc.Sleep(50 * sim.Microsecond)
			// Warmup round, then the timed loop.
			app.API.PutRegion(md, 0, size, core.NoAck, b.ID(), ptl, bits, 0, 0)
			waitPut(app, eq)
			t0 := app.Proc.Now()
			for i := 0; i < iters; i++ {
				app.API.PutRegion(md, 0, size, core.NoAck, b.ID(), ptl, bits, 0, 0)
				waitPut(app, eq)
			}
			rtt = (app.Proc.Now() - t0) / iters
		})
		m.Run()
		note := ""
		if size == 12 {
			note = "  <- last size that rides the header packet (§6)"
		}
		if size == 13 {
			note = "  <- first size needing the second interrupt"
		}
		fmt.Printf("%7d   %v%s\n", size, rtt/2, note)
	}
}
