package model

import (
	"testing"

	"portals3/internal/sim"
)

func TestParseFaults(t *testing.T) {
	rules, err := ParseFaults("drop:data:0.02, drop:fcack:0.1,dup:any:1,delay:data:0.05:20us")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 4 {
		t.Fatalf("parsed %d rules", len(rules))
	}
	want := []FaultRule{
		NewFault(FaultDrop, FrameData, 0.02),
		NewFault(FaultDrop, FrameFcAck, 0.1),
		NewFault(FaultDup, FrameAny, 1),
		NewFault(FaultDelay, FrameData, 0.05).WithDelay(20 * sim.Microsecond),
	}
	for i, r := range rules {
		if r != want[i] {
			t.Errorf("rule %d = %+v, want %+v", i, r, want[i])
		}
	}
}

func TestParseFaultsAliases(t *testing.T) {
	rules, err := ParseFaults("duplicate:all:0.5,drop:ack:1,reorder:nack:1:5us")
	if err != nil {
		t.Fatal(err)
	}
	if rules[0].Kind != FaultDup || rules[0].Frame != FrameAny {
		t.Errorf("duplicate:all = %+v", rules[0])
	}
	if rules[1].Frame != FrameFcAck || rules[2].Frame != FrameFcNack {
		t.Errorf("ack/nack aliases: %+v %+v", rules[1], rules[2])
	}
	if rules[2].Kind != FaultReorder || rules[2].Delay != 5*sim.Microsecond {
		t.Errorf("reorder delay = %+v", rules[2])
	}
}

func TestParseFaultsEmpty(t *testing.T) {
	for _, spec := range []string{"", "   "} {
		rules, err := ParseFaults(spec)
		if err != nil || rules != nil {
			t.Errorf("ParseFaults(%q) = %v, %v; want nil, nil", spec, rules, err)
		}
	}
}

func TestParseFaultsErrors(t *testing.T) {
	bad := []string{
		"drop:data",            // missing probability
		"melt:data:0.5",        // unknown kind
		"drop:voice:0.5",       // unknown frame class
		"drop:data:0",          // probability out of range
		"drop:data:1.5",        // probability out of range
		"drop:data:x",          // not a number
		"delay:data:0.5",       // delay without a duration
		"delay:data:0.5:-3us",  // negative duration
		"reorder:data:0.5:bad", // unparsable duration
		"drop:data:0.5,???",    // one good rule, one bad
	}
	for _, spec := range bad {
		if _, err := ParseFaults(spec); err == nil {
			t.Errorf("ParseFaults(%q) accepted", spec)
		}
	}
}

func TestFaultRuleModifiers(t *testing.T) {
	r := NewFault(FaultDrop, FrameData, 0.5)
	if r.Src != AnyNode || r.Dst != AnyNode {
		t.Fatalf("NewFault must default to wildcard scope, got %+v", r)
	}
	r = r.From(3).To(0).WithCount(2).Between(sim.Microsecond, 2*sim.Microsecond)
	if r.Src != 3 || r.Dst != 0 || r.Count != 2 ||
		r.After != sim.Microsecond || r.Until != 2*sim.Microsecond {
		t.Errorf("modifiers lost: %+v", r)
	}
}
