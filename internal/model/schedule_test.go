package model

import (
	"strings"
	"testing"

	"portals3/internal/sim"
	"portals3/internal/topo"
)

func torus4(t *testing.T) *topo.Topology {
	t.Helper()
	tp, err := topo.XT3Torus(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestScheduleRoundTrip(t *testing.T) {
	spec := "linkdown:5:X+:200us:300us," +
		"stall:12:1ms:150us," +
		"restart:3:2ms:80us," +
		"burst:drop:data:0.3:500us:120us," +
		"burst:delay:fcack:0.5:700us:90us:20us," +
		"corrupt:9:800us"
	s, err := ParseSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 6 {
		t.Fatalf("parsed %d entries, want 6", len(s))
	}
	if got := s.String(); got != spec {
		t.Errorf("round trip:\n got %s\nwant %s", got, spec)
	}
	// A reparse of the rendering must be identical again.
	s2, err := ParseSchedule(s.String())
	if err != nil {
		t.Fatal(err)
	}
	if s2.String() != spec {
		t.Errorf("second round trip drifted: %s", s2.String())
	}
	if err := s.Validate(torus4(t)); err != nil {
		t.Errorf("validate: %v", err)
	}
}

func TestSchedulePicosecondTimes(t *testing.T) {
	s, err := ParseSchedule("stall:0:1234ps:55ns")
	if err != nil {
		t.Fatal(err)
	}
	if s[0].At != 1234*sim.Picosecond || s[0].Dur != 55*sim.Nanosecond {
		t.Fatalf("got At=%d Dur=%d", s[0].At, s[0].Dur)
	}
	if got := s.String(); got != "stall:0:1234ps:55ns" {
		t.Errorf("render: %s", got)
	}
}

func TestScheduleParseErrors(t *testing.T) {
	bad := []string{
		"linkdown:5:Q+:200us:300us",    // bad direction
		"linkdown:5:X+:200us",          // missing field
		"stall:x:200us:300us",          // bad node
		"burst:drop:data:1.5:1us:2us",  // probability out of range
		"burst:delay:data:0.5:1us:2us", // delay burst without delay
		"corrupt:1:2us:3us",            // too many fields
		"teleport:1:2us",               // unknown kind
	}
	for _, spec := range bad {
		if _, err := ParseSchedule(spec); err == nil {
			t.Errorf("ParseSchedule(%q): expected error", spec)
		}
	}
}

func TestScheduleValidate(t *testing.T) {
	tp := torus4(t)
	line, err := topo.New(4, 1, 1, false, false, false)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		spec string
		tp   *topo.Topology
		ok   bool
	}{
		{"stall:63:1us:2us", tp, true},
		{"stall:64:1us:2us", tp, false}, // node out of range
		{"linkdown:0:Y+:1us:2us", tp, true},
		{"linkdown:0:Y+:1us:2us", line, false}, // no Y links on a line
		{"linkdown:3:X+:1us:2us", line, false}, // mesh edge
		{"linkdown:2:X+:1us:2us", line, true},
	}
	for _, c := range cases {
		s, err := ParseSchedule(c.spec)
		if err != nil {
			t.Fatalf("parse %q: %v", c.spec, err)
		}
		err = s.Validate(c.tp)
		if c.ok && err != nil {
			t.Errorf("Validate(%q): unexpected error %v", c.spec, err)
		}
		if !c.ok && err == nil {
			t.Errorf("Validate(%q): expected error", c.spec)
		}
	}
}

func TestScheduleRulesAndTimed(t *testing.T) {
	s, err := ParseSchedule("burst:drop:data:0.3:500us:120us,stall:1:1ms:50us")
	if err != nil {
		t.Fatal(err)
	}
	rules := s.Rules()
	if len(rules) != 1 {
		t.Fatalf("got %d rules, want 1", len(rules))
	}
	r := rules[0]
	if r.After != 500*sim.Microsecond || r.Until != 620*sim.Microsecond {
		t.Errorf("burst window [%v, %v), want [500us, 620us)", r.After, r.Until)
	}
	timed := s.Timed()
	if len(timed) != 1 || timed[0].Kind != SchedStall {
		t.Errorf("Timed() = %v", timed)
	}
	if s.End() != 1050*sim.Microsecond {
		t.Errorf("End() = %v, want 1.05ms", s.End())
	}
	if s.MaxDur() != 120*sim.Microsecond {
		t.Errorf("MaxDur() = %v, want 120us", s.MaxDur())
	}
}

func TestGenScheduleDeterministicAndValid(t *testing.T) {
	tp := torus4(t)
	span := 2 * sim.Millisecond
	a := GenSchedule(7, tp, 10, span)
	b := GenSchedule(7, tp, 10, span)
	if a.String() != b.String() {
		t.Fatalf("same seed diverged:\n%s\n%s", a.String(), b.String())
	}
	if len(a) != 10 {
		t.Fatalf("generated %d entries, want 10", len(a))
	}
	if err := a.Validate(tp); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	for _, e := range a {
		if e.Kind == SchedCorrupt {
			t.Fatalf("generator emitted a corrupt entry: %s", e)
		}
	}
	if c := GenSchedule(8, tp, 10, span); c.String() == a.String() {
		t.Errorf("different seeds produced identical schedules")
	}
	// Generated schedules round-trip through the grammar.
	re, err := ParseSchedule(a.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if re.String() != a.String() {
		t.Errorf("generated schedule does not round-trip:\n%s\n%s", a.String(), re.String())
	}
	// A line topology only has X links; linkdown entries must respect it.
	line, err := topo.New(6, 1, 1, false, false, false)
	if err != nil {
		t.Fatal(err)
	}
	ls := GenSchedule(3, line, 8, span)
	if err := ls.Validate(line); err != nil {
		t.Fatalf("line schedule invalid: %v", err)
	}
	for _, e := range ls {
		if e.Kind == SchedLinkDown && !strings.HasPrefix(e.Dir.String(), "X") {
			t.Errorf("line schedule downed a %s link", e.Dir)
		}
	}
}
