// Fault-injection configuration: the rule set the fabric's fault plane
// evaluates at every frame injection. Rules live in model (not fabric) so a
// whole faulty-machine scenario — timing, sizing, and failure behavior — is
// one auditable Params value, and so a seed plus a rule list fully determines
// a run (see DESIGN.md §9 for the determinism contract).
package model

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"portals3/internal/sim"
)

// FaultKind selects what a matching rule does to a frame.
type FaultKind int

// Fault kinds.
const (
	// FaultDrop discards the frame. The sender's TX state machine still sees
	// it enter the wire (exactly like a frame corrupted beyond the link CRCs
	// on the real machine); it simply never arrives.
	FaultDrop FaultKind = iota
	// FaultDup delivers the frame twice: the original and an immediately
	// following copy, as a confused link-level retry would.
	FaultDup
	// FaultDelay delivers the frame Rule.Delay late. Frames of other flows
	// injected meanwhile overtake it, so a delay doubles as cross-flow
	// reordering.
	FaultDelay
	// FaultReorder is FaultDelay with a random extra latency drawn uniformly
	// from (0, Rule.Delay] per matched frame.
	FaultReorder
)

func (k FaultKind) String() string {
	return [...]string{"drop", "dup", "delay", "reorder"}[k]
}

// FrameClass selects which frames a rule applies to.
type FrameClass int

// Frame classes.
const (
	// FrameAny matches every frame type.
	FrameAny FrameClass = iota
	// FrameData matches Portals data messages (put, get, ack, reply — every
	// frame that is not NIC-level flow control).
	FrameData
	// FrameFcAck matches go-back-n FC_ACK control frames.
	FrameFcAck
	// FrameFcNack matches go-back-n FC_NACK control frames.
	FrameFcNack
)

func (c FrameClass) String() string {
	return [...]string{"any", "data", "fcack", "fcnack"}[c]
}

// AnyNode is the wildcard for FaultRule.Src/Dst.
const AnyNode = -1

// FaultRule is one fault-injection rule. The plane evaluates rules in order
// at header-injection time and applies the first that matches (a message
// suffers at most one fault; its payload chunks share the header's fate).
// Build rules with NewFault and the With*/From/To/Between modifiers — the
// zero value pins Src/Dst to node 0, which is rarely what a scenario means.
type FaultRule struct {
	Kind  FaultKind
	Frame FrameClass

	// Src and Dst scope the rule to one flow; AnyNode matches every node.
	Src, Dst int

	// Prob is the per-frame probability the rule fires once it matches,
	// drawn from the plane's seeded PRNG. 1 fires on every matching frame.
	Prob float64

	// Delay is the added latency for FaultDelay, and the exclusive upper
	// bound of the random latency for FaultReorder.
	Delay sim.Time

	// Count caps how many times the rule fires; 0 is unlimited.
	Count int

	// After/Until bound the rule's active window in virtual time; an Until
	// of zero means forever.
	After, Until sim.Time
}

// NewFault returns a rule matching every flow, to be narrowed with the
// modifiers below.
func NewFault(kind FaultKind, frame FrameClass, prob float64) FaultRule {
	return FaultRule{Kind: kind, Frame: frame, Prob: prob, Src: AnyNode, Dst: AnyNode}
}

// WithDelay sets the (maximum) added latency for delay/reorder rules.
func (r FaultRule) WithDelay(d sim.Time) FaultRule { r.Delay = d; return r }

// WithCount caps the number of times the rule fires.
func (r FaultRule) WithCount(n int) FaultRule { r.Count = n; return r }

// From scopes the rule to frames sent by one node.
func (r FaultRule) From(node int) FaultRule { r.Src = node; return r }

// To scopes the rule to frames destined to one node.
func (r FaultRule) To(node int) FaultRule { r.Dst = node; return r }

// Between bounds the rule's active window in virtual time.
func (r FaultRule) Between(after, until sim.Time) FaultRule {
	r.After, r.Until = after, until
	return r
}

// ParseFaults parses the CLI fault spec: comma-separated rules of the form
//
//	kind:frame:prob[:delay]
//
// e.g. "drop:data:0.02,drop:fcack:0.1,delay:data:0.05:20us". Kinds are
// drop, dup, delay, reorder; frames are any, data, fcack (ack), fcnack
// (nack); delay/reorder rules require a Go duration as the fourth field.
func ParseFaults(spec string) ([]FaultRule, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []FaultRule
	for _, item := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(item), ":")
		if len(fields) < 3 {
			return nil, fmt.Errorf("fault rule %q: want kind:frame:prob[:delay]", item)
		}
		var kind FaultKind
		switch fields[0] {
		case "drop":
			kind = FaultDrop
		case "dup", "duplicate":
			kind = FaultDup
		case "delay":
			kind = FaultDelay
		case "reorder":
			kind = FaultReorder
		default:
			return nil, fmt.Errorf("fault rule %q: unknown kind %q", item, fields[0])
		}
		var frame FrameClass
		switch fields[1] {
		case "any", "all":
			frame = FrameAny
		case "data":
			frame = FrameData
		case "fcack", "ack":
			frame = FrameFcAck
		case "fcnack", "nack":
			frame = FrameFcNack
		default:
			return nil, fmt.Errorf("fault rule %q: unknown frame class %q", item, fields[1])
		}
		prob, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || prob <= 0 || prob > 1 {
			return nil, fmt.Errorf("fault rule %q: probability must be in (0, 1]", item)
		}
		r := NewFault(kind, frame, prob)
		if kind == FaultDelay || kind == FaultReorder {
			if len(fields) < 4 {
				return nil, fmt.Errorf("fault rule %q: %s needs a duration, e.g. %s:%s:%s:20us",
					item, fields[0], fields[0], fields[1], fields[2])
			}
			d, err := time.ParseDuration(fields[3])
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("fault rule %q: bad duration %q", item, fields[3])
			}
			r.Delay = sim.Time(d.Nanoseconds()) * sim.Nanosecond
		}
		out = append(out, r)
	}
	return out, nil
}
