// Package model holds every timing and sizing parameter of the simulated
// XT3/SeaStar platform in one struct, so the whole calibration is auditable.
//
// Values quoted directly from the paper are cited; the remaining values are
// calibrated so that the end-to-end NetPIPE results reproduce the paper's
// Figures 4–7 (see EXPERIMENTS.md for paper-vs-measured numbers).
package model

import "portals3/internal/sim"

// Params is the complete parameter set for one simulated machine. The zero
// value is not useful; start from Defaults().
type Params struct {
	// ---- Network fabric (paper §2) ----

	// LinkBps is the per-direction data payload rate of one SeaStar link:
	// "The physical links in the 3D topology support up to 2.5 GB/s of data
	// payload in each direction" (§2). Packet and reliability-protocol
	// overhead is already accounted for in this figure.
	LinkBps int64

	// HopLatency is the per-router-hop latency of the cut-through,
	// table-routed network. Calibrated so the Red Storm diameter (53 hops)
	// adds ≈3 µs, matching the 2 µs nearest-neighbor / 5 µs worst-case MPI
	// latency requirements quoted in §1.
	HopLatency sim.Time

	// PacketBytes is the router packet size: "the 64 byte packets used by
	// the router" (§2).
	PacketBytes int

	// InjectLatency covers NIC→router and router→NIC port crossing, once
	// per message direction end.
	InjectLatency sim.Time

	// LinkBitErrorRate is the probability that a packet is corrupted on one
	// link traversal (detected by the 16-bit link CRC and retried). Zero by
	// default; fault-injection tests raise it.
	LinkBitErrorRate float64

	// LinkRetryDelay is the extra delay for one link-level CRC retry.
	LinkRetryDelay sim.Time

	// ---- HyperTransport host interface (paper §2) ----

	// HTReadBps is the practical rate at which the TX DMA engine can pull
	// payload from host memory across HyperTransport. The theoretical peak
	// payload is 2.8 GB/s (§2, "and a practical rate somewhat lower than
	// that"); calibrated to the measured uni-directional put ceiling of
	// 1108.76 MB/s (§6, Figure 5).
	HTReadBps int64

	// HTWriteBps is the practical RX-DMA-to-host-memory write rate. Writes
	// post more efficiently than reads on HT; set above HTReadBps so the
	// read side is the bottleneck, as measured.
	HTWriteBps int64

	// HTReadLatency is the round-trip latency of a host-memory read issued
	// by the SeaStar — the reason the firmware "never reads data from the
	// upper pending structure" (§4.2).
	HTReadLatency sim.Time

	// HTWriteLatency is the one-way posted-write latency host↔NIC, paid by
	// mailbox command writes, upper-pending writes and event posts.
	HTWriteLatency sim.Time

	// DMASegOverhead is the extra per-descriptor cost of a streamed DMA
	// transfer crossing into another physically contiguous segment. Bulk
	// payload DMA pipelines multiple outstanding transactions, so it pays
	// this small descriptor cost rather than the full HT latency per
	// chunk; only control-path reads (header fetches) pay HTReadLatency.
	DMASegOverhead sim.Time

	// ---- Embedded processor and firmware (paper §2, §4) ----

	// PPCHz is the embedded processor clock: "a dual-issue 500 MHz PowerPC
	// 440" (§2).
	PPCHz int64

	// Firmware handler costs, in PowerPC cycles. The firmware is a single
	// threaded run-to-completion loop (§4.3); each handler occupies the
	// PowerPC serially for its cost.
	FwDispatchCycles   int64 // poll-loop dispatch per handler invocation
	FwTxCmdCycles      int64 // transmit command: init lower pending, source lookup, enqueue
	FwTxDoneCycles     int64 // unlink pending, post TX completion event
	FwRxHdrCycles      int64 // new header: source hash, RX pending alloc, header push
	FwRxCmdCycles      int64 // receive command: buffer info into lower pending
	FwRxDoneCycles     int64 // completion event after final deposit
	FwReleaseCycles    int64 // release-pending command
	FwDMAProgramCycles int64 // programming one DMA engine transaction

	// SRAMBytes is the SeaStar local scratch memory: 384 KB (§2).
	SRAMBytes int64

	// RxFIFOBytes bounds payload buffered on the NIC ahead of the RX DMA
	// being programmed; the network backpressures when it fills.
	RxFIFOBytes int64

	// TxFIFOBytes bounds the transmit staging FIFO; the TX state machine
	// yields when a message does not fit (§4.3).
	TxFIFOBytes int64

	// ChunkBytes is the simulation's streaming granularity for payload
	// movement (a modeling knob, not hardware; must divide cleanly into
	// pipeline stages; latency effects are second-order).
	ChunkBytes int

	// InlineDataMax is the small-message optimization: "Because 12 bytes of
	// user data will fit in the 64 byte header packet, these 12 bytes can
	// be copied to the host along with the header", saving an interrupt
	// (§6).
	InlineDataMax int

	// NumSources is the global source-structure pool: "there are 1,024
	// global source structures" (§4.2).
	NumSources int

	// NumGenericPendings is the pending pool of the generic firmware-level
	// process: "1,274 pending structures allocated to the generic process"
	// (§4.2). Half are host-managed (TX), half firmware-managed (RX).
	NumGenericPendings int

	// SourceBytes and PendingBytes size the SRAM-resident structures for
	// the occupancy formula M = S·Ssize + Σ Pi·Psize (§4.2). The paper
	// shows 32-byte structures in Figure 3.
	SourceBytes  int64
	PendingBytes int64

	// FwImageBytes is the firmware code footprint in SRAM: "the resulting
	// firmware image is 22 KB in size" (§4).
	FwImageBytes int64

	// MaxAccelProcs bounds accelerated-mode clients per node: "Limited
	// network interface resources allow only a small number of
	// accelerated-mode clients per node" — one or two per Catamount node
	// (§4.1).
	MaxAccelProcs int

	// GbnTimeout is the go-back-n retransmission timeout: with the
	// recovery protocol enabled, unacknowledged sends retransmit after
	// this much silence from the peer.
	GbnTimeout sim.Time

	// ---- Fault injection (see faults.go and DESIGN.md §9) ----

	// Faults configures the fabric's fault-injection plane; a non-empty
	// list creates the plane at machine construction. Nil (the default)
	// leaves the fabric fault-free and the injection hot path untouched.
	Faults []FaultRule

	// FaultSeed seeds the fault plane's private PRNG. The plane never
	// draws from the simulator's RNG, so fault decisions cannot perturb
	// fault-free event ordering; a given (Faults, FaultSeed) pair replays
	// bit-identically. Zero selects the plane's fixed default seed.
	FaultSeed int64

	// Schedule is the declarative timed-fault plan (see schedule.go): link
	// outages, node stalls, firmware restarts and windowed fault bursts,
	// applied deterministically at machine construction. Unlike the runtime
	// scenario helpers it works on sharded machines too — entries become
	// pre-scheduled lane-local events, never cross-lane calls.
	Schedule FaultSchedule

	// ---- Host processor and operating systems (paper §3.3) ----

	// HostHz is the compute-node processor clock: 2.0 GHz Opteron (§5.1).
	HostHz int64

	// TrapOverhead is a null system call on Catamount: "approximately 75 ns
	// of overhead" (§3.3).
	TrapOverhead sim.Time

	// LinuxSyscallOverhead is the (larger) Linux syscall cost paid by
	// ukbridge clients.
	LinuxSyscallOverhead sim.Time

	// InterruptOverhead is the cost of taking one interrupt on the host:
	// "Interrupts ... are very costly, requiring at least 2 µs of overhead
	// each" (§3.3).
	InterruptOverhead sim.Time

	// Host-side Portals library costs, in host cycles.
	HostAPICycles       int64 // argument marshalling for one API call
	HostTxSetupCycles   int64 // header build + pending alloc + command push
	HostMatchBaseCycles int64 // Portals matching: fixed part
	HostMatchPerME      int64 // per match-entry walked
	HostEventCycles     int64 // posting/delivering one Portals event
	HostRxCmdCycles     int64 // building the receive command after a match
	HostGetReplyCycles  int64 // get target: reply descriptor + command build
	HostPerPageCycles   int64 // Linux: per-page DMA command precomputation
	PageBytes           int64 // Linux page size

	// ---- MPI implementation profiles (paper §5.1, §6) ----

	// The two MPI implementations measured in the paper, as per-side
	// overheads added on top of the Portals path, plus their eager →
	// rendezvous switch points. Calibrated to the 1-byte latencies in §6:
	// put 5.39 µs, get 6.60 µs, MPICH-1.2.6 7.97 µs, MPICH2 8.40 µs.
	MPICH1SendCycles int64
	MPICH1RecvCycles int64
	MPICH1EagerMax   int // bytes; above this, rendezvous
	MPICH2SendCycles int64
	MPICH2RecvCycles int64
	MPICH2EagerMax   int
}

// Defaults returns the calibrated Red Storm parameter set.
func Defaults() Params {
	return Params{
		LinkBps:          2_500_000_000,
		HopLatency:       55 * sim.Nanosecond,
		PacketBytes:      64,
		InjectLatency:    60 * sim.Nanosecond,
		LinkBitErrorRate: 0,
		LinkRetryDelay:   500 * sim.Nanosecond,

		HTReadBps:      1_116_000_000,
		HTWriteBps:     2_200_000_000,
		HTReadLatency:  240 * sim.Nanosecond,
		HTWriteLatency: 140 * sim.Nanosecond,
		DMASegOverhead: 10 * sim.Nanosecond,

		PPCHz:              500_000_000,
		FwDispatchCycles:   40,
		FwTxCmdCycles:      210,
		FwTxDoneCycles:     140,
		FwRxHdrCycles:      220,
		FwRxCmdCycles:      170,
		FwRxDoneCycles:     150,
		FwReleaseCycles:    60,
		FwDMAProgramCycles: 90,

		SRAMBytes:   384 << 10,
		RxFIFOBytes: 16 << 10,
		TxFIFOBytes: 8 << 10,
		ChunkBytes:  2048,

		InlineDataMax:      12,
		NumSources:         1024,
		NumGenericPendings: 1274,
		SourceBytes:        32,
		PendingBytes:       32,
		FwImageBytes:       22 << 10,
		MaxAccelProcs:      2,
		GbnTimeout:         150 * sim.Microsecond,

		HostHz:               2_000_000_000,
		TrapOverhead:         75 * sim.Nanosecond,
		LinuxSyscallOverhead: 300 * sim.Nanosecond,
		InterruptOverhead:    2 * sim.Microsecond,

		HostAPICycles:       240,
		HostTxSetupCycles:   400,
		HostMatchBaseCycles: 640,
		HostMatchPerME:      70,
		HostEventCycles:     220,
		HostRxCmdCycles:     380,
		HostGetReplyCycles:  2150,
		HostPerPageCycles:   120,
		PageBytes:           4096,

		MPICH1SendCycles: 4800,
		MPICH1RecvCycles: 4800,
		MPICH1EagerMax:   128 << 10,
		MPICH2SendCycles: 5660,
		MPICH2RecvCycles: 5660,
		MPICH2EagerMax:   64 << 10,
	}
}

// PPCCycles converts firmware cycles to time.
func (p *Params) PPCCycles(n int64) sim.Time { return sim.Cycles(n, p.PPCHz) }

// HostCycles converts host cycles to time.
func (p *Params) HostCycles(n int64) sim.Time { return sim.Cycles(n, p.HostHz) }

// SRAMOccupancy evaluates the paper's formula M = S·Ssize + Σ Pi·Psize
// (§4.2) for a machine with the given per-process pending pool sizes.
func (p *Params) SRAMOccupancy(pendingsPerProc []int) int64 {
	m := int64(p.NumSources) * p.SourceBytes
	for _, pi := range pendingsPerProc {
		m += int64(pi) * p.PendingBytes
	}
	return m
}

// SRAMFree returns SRAM remaining after the firmware image and the given
// structure pools.
func (p *Params) SRAMFree(pendingsPerProc []int) int64 {
	return p.SRAMBytes - p.FwImageBytes - p.SRAMOccupancy(pendingsPerProc)
}
