package model

import (
	"testing"

	"portals3/internal/sim"
)

func TestDefaultsQuotePaperConstants(t *testing.T) {
	p := Defaults()
	if p.LinkBps != 2_500_000_000 {
		t.Error("link payload must be 2.5 GB/s (paper §2)")
	}
	if p.PacketBytes != 64 {
		t.Error("router packets are 64 bytes (paper §2)")
	}
	if p.PPCHz != 500_000_000 {
		t.Error("PowerPC 440 runs at 500 MHz (paper §2)")
	}
	if p.SRAMBytes != 384<<10 {
		t.Error("SeaStar SRAM is 384 KB (paper §2)")
	}
	if p.TrapOverhead != 75*sim.Nanosecond {
		t.Error("null trap is ~75 ns (paper §3.3)")
	}
	if p.InterruptOverhead < 2*sim.Microsecond {
		t.Error("interrupts cost at least 2 µs (paper §3.3)")
	}
	if p.InlineDataMax != 12 {
		t.Error("12 bytes of user data fit in the header packet (paper §6)")
	}
	if p.NumSources != 1024 || p.NumGenericPendings != 1274 {
		t.Error("pool sizes must match paper §4.2")
	}
	if p.FwImageBytes != 22<<10 {
		t.Error("firmware image is 22 KB (paper §4)")
	}
	if p.HostHz != 2_000_000_000 {
		t.Error("Red Storm Opterons run at 2.0 GHz (paper §5.1)")
	}
}

func TestSRAMOccupancyFormula(t *testing.T) {
	p := Defaults()
	// Paper configuration: 1,024 sources and 1,274 pendings for the single
	// generic process (N=1).
	m := p.SRAMOccupancy([]int{p.NumGenericPendings})
	want := int64(1024*32 + 1274*32)
	if m != want {
		t.Errorf("M = %d, want %d", m, want)
	}
	// The paper: "These structures are small enough that several more
	// similarly sized pending pools can be supported" (§4.2). Check that
	// four more accelerated pools still fit with the firmware image.
	pools := []int{p.NumGenericPendings, 1274, 1274, 1274, 1274}
	if free := p.SRAMFree(pools); free <= 0 {
		t.Errorf("four extra pending pools must still fit in SRAM, free=%d", free)
	}
}

func TestCycleConversions(t *testing.T) {
	p := Defaults()
	if p.PPCCycles(500) != sim.Microsecond {
		t.Errorf("500 PowerPC cycles should be 1 µs, got %v", p.PPCCycles(500))
	}
	if p.HostCycles(2000) != sim.Microsecond {
		t.Errorf("2000 host cycles should be 1 µs, got %v", p.HostCycles(2000))
	}
}

func TestRedStormLatencyTargetsPlausible(t *testing.T) {
	// §1: one-way MPI latency requirement is 2 µs nearest-neighbor and 5 µs
	// between the two furthest nodes; the wire portion of that difference
	// is (diameter-1) extra hops. Check our hop latency puts the wire delta
	// in the right ballpark (2–4 µs over 52 extra hops).
	p := Defaults()
	delta := sim.Time(52) * p.HopLatency
	if delta < 2*sim.Microsecond || delta > 4*sim.Microsecond {
		t.Errorf("52-hop delta = %v, want 2-4 µs to honor the §1 requirements", delta)
	}
}
