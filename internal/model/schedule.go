// The declarative fault schedule: a timed plan of link outages, node
// stalls, rolling firmware restarts and correlated fault bursts, expressed
// as data rather than as runtime calls against the fault plane. Scheduling
// faults declaratively is what lets sharded machines run them — the machine
// turns each entry into pre-scheduled lane-local events at construction
// time, so no cross-lane call ever mutates a plane mid-run — and what lets
// the soak driver's bisector treat a failing campaign as a list to be
// minimized (DESIGN.md §13).
//
// Every entry renders to (and parses from) a canonical spec string, so a
// minimal reproducing schedule is a copy-pasteable command-line argument.
package model

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"portals3/internal/sim"
	"portals3/internal/topo"
)

// ScheduleKind selects what a schedule entry does when its time arrives.
type ScheduleKind int

// Schedule entry kinds.
const (
	// SchedLinkDown takes the directed link leaving Node in direction Dir
	// out of service for Dur; messages whose fixed path crosses it are
	// dropped at injection meanwhile.
	SchedLinkDown ScheduleKind = iota
	// SchedStall holds every injection destined to Node for Dur, releasing
	// the backlog in arrival order — a hung NIC that later resumes.
	SchedStall
	// SchedRestart models a firmware restart of Node: inbound traffic is
	// stalled and every link leaving the node is down for Dur. Traffic
	// routed through the node's router is lost too, as on the real machine.
	SchedRestart
	// SchedBurst arms Rule for the window [At, At+Dur) — a correlated
	// burst of drops, duplicates or delays rather than a steady rate.
	SchedBurst
	// SchedCorrupt opens one fault-ledger entry on Node that nothing ever
	// closes — planted silent data loss. The quiescence audit must report
	// it; the soak driver uses corrupt entries to prove the harness and the
	// bisector actually detect failures.
	SchedCorrupt
)

func (k ScheduleKind) String() string {
	return [...]string{"linkdown", "stall", "restart", "burst", "corrupt"}[k]
}

// ScheduleEntry is one timed fault. Which fields matter depends on Kind:
// linkdown uses Node+Dir, stall/restart/corrupt use Node, burst uses Rule
// (whose After/Until are derived from At/Dur when the entry is compiled).
type ScheduleEntry struct {
	Kind ScheduleKind
	At   sim.Time // activation time
	Dur  sim.Time // window length; unused by corrupt
	Node int      // affected node (linkdown/stall/restart/corrupt)
	Dir  topo.Dir // downed link's direction (linkdown only)
	Rule FaultRule
}

// String renders the entry in the schedule grammar (see ParseSchedule).
func (e ScheduleEntry) String() string {
	switch e.Kind {
	case SchedLinkDown:
		return fmt.Sprintf("linkdown:%d:%s:%s:%s", e.Node, e.Dir, fmtDur(e.At), fmtDur(e.Dur))
	case SchedStall:
		return fmt.Sprintf("stall:%d:%s:%s", e.Node, fmtDur(e.At), fmtDur(e.Dur))
	case SchedRestart:
		return fmt.Sprintf("restart:%d:%s:%s", e.Node, fmtDur(e.At), fmtDur(e.Dur))
	case SchedBurst:
		s := fmt.Sprintf("burst:%s:%s:%s:%s:%s", e.Rule.Kind, e.Rule.Frame,
			strconv.FormatFloat(e.Rule.Prob, 'g', -1, 64), fmtDur(e.At), fmtDur(e.Dur))
		if e.Rule.Kind == FaultDelay || e.Rule.Kind == FaultReorder {
			s += ":" + fmtDur(e.Rule.Delay)
		}
		return s
	case SchedCorrupt:
		return fmt.Sprintf("corrupt:%d:%s", e.Node, fmtDur(e.At))
	}
	panic(fmt.Sprintf("model: unknown schedule kind %d", int(e.Kind)))
}

// FaultSchedule is an ordered timed-fault plan. The order is significant
// only for rendering; activation order is by At.
type FaultSchedule []ScheduleEntry

// String renders the schedule as a parseable comma-separated spec — the
// canonical byte representation bisection results are compared by.
func (s FaultSchedule) String() string {
	parts := make([]string, len(s))
	for i, e := range s {
		parts[i] = e.String()
	}
	return strings.Join(parts, ",")
}

// Rules compiles the schedule's burst entries to fault rules windowed over
// [At, At+Dur); the fabric installs them on its planes at construction.
func (s FaultSchedule) Rules() []FaultRule {
	var out []FaultRule
	for _, e := range s {
		if e.Kind != SchedBurst {
			continue
		}
		r := e.Rule
		r.After, r.Until = e.At, e.At+e.Dur
		out = append(out, r)
	}
	return out
}

// Timed returns the entries the machine must turn into scheduled events
// (everything except bursts, which compile to windowed rules instead).
func (s FaultSchedule) Timed() []ScheduleEntry {
	var out []ScheduleEntry
	for _, e := range s {
		if e.Kind != SchedBurst {
			out = append(out, e)
		}
	}
	return out
}

// End returns the time the last entry's window closes — the earliest
// quiescence horizon a run carrying this schedule can reach.
func (s FaultSchedule) End() sim.Time {
	var end sim.Time
	for _, e := range s {
		if t := e.At + e.Dur; t > end {
			end = t
		}
	}
	return end
}

// MaxDur returns the longest blackout window in the schedule, for sizing
// stall-detector windows above it.
func (s FaultSchedule) MaxDur() sim.Time {
	var d sim.Time
	for _, e := range s {
		if e.Dur > d {
			d = e.Dur
		}
	}
	return d
}

// Validate checks every entry against a topology: node ids in range,
// linkdown directions that exist at their node, positive windows, sane
// burst rules. A schedule that validates applies identically on classic
// and sharded machines.
func (s FaultSchedule) Validate(tp *topo.Topology) error {
	for i, e := range s {
		if e.At < 0 {
			return fmt.Errorf("schedule entry %d (%s): negative activation time", i, e)
		}
		switch e.Kind {
		case SchedLinkDown, SchedStall, SchedRestart, SchedCorrupt:
			if e.Node < 0 || e.Node >= tp.Nodes() {
				return fmt.Errorf("schedule entry %d (%s): node %d outside topology of %d nodes",
					i, e, e.Node, tp.Nodes())
			}
		}
		switch e.Kind {
		case SchedLinkDown:
			if _, ok := tp.Neighbor(topo.NodeID(e.Node), e.Dir); !ok {
				return fmt.Errorf("schedule entry %d (%s): node %d has no %s link",
					i, e, e.Node, e.Dir)
			}
			fallthrough
		case SchedStall, SchedRestart:
			if e.Dur <= 0 {
				return fmt.Errorf("schedule entry %d (%s): window must be positive", i, e)
			}
		case SchedBurst:
			if e.Dur <= 0 {
				return fmt.Errorf("schedule entry %d (%s): window must be positive", i, e)
			}
			if e.Rule.Prob <= 0 || e.Rule.Prob > 1 {
				return fmt.Errorf("schedule entry %d (%s): probability must be in (0, 1]", i, e)
			}
			if (e.Rule.Kind == FaultDelay || e.Rule.Kind == FaultReorder) && e.Rule.Delay <= 0 {
				return fmt.Errorf("schedule entry %d (%s): %s burst needs a duration",
					i, e, e.Rule.Kind)
			}
		}
	}
	return nil
}

// ParseSchedule parses the schedule spec: comma-separated entries of
//
//	linkdown:NODE:DIR:AT:DUR      DIR is X+ X- Y+ Y- Z+ Z-
//	stall:NODE:AT:DUR
//	restart:NODE:AT:DUR
//	burst:KIND:FRAME:PROB:AT:DUR[:DELAY]   (KIND/FRAME as in ParseFaults)
//	corrupt:NODE:AT
//
// Times are Go durations ("200us", "1.5ms") with a "ps" extension for
// picosecond precision. FaultSchedule.String renders this same grammar, so
// schedules round-trip.
func ParseSchedule(spec string) (FaultSchedule, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out FaultSchedule
	for _, item := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(item), ":")
		e, err := parseEntry(item, fields)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

func parseEntry(item string, fields []string) (ScheduleEntry, error) {
	var e ScheduleEntry
	bad := func(format string, args ...interface{}) (ScheduleEntry, error) {
		return ScheduleEntry{}, fmt.Errorf("schedule entry %q: %s", item, fmt.Sprintf(format, args...))
	}
	if len(fields) < 2 {
		return bad("want kind:...")
	}
	switch fields[0] {
	case "linkdown":
		if len(fields) != 5 {
			return bad("want linkdown:NODE:DIR:AT:DUR")
		}
		e.Kind = SchedLinkDown
		var err error
		if e.Node, err = strconv.Atoi(fields[1]); err != nil {
			return bad("bad node %q", fields[1])
		}
		if e.Dir, err = parseDir(fields[2]); err != nil {
			return bad("%v", err)
		}
		if e.At, err = parseDur(fields[3]); err != nil {
			return bad("bad time %q", fields[3])
		}
		if e.Dur, err = parseDur(fields[4]); err != nil {
			return bad("bad duration %q", fields[4])
		}
	case "stall", "restart":
		if len(fields) != 4 {
			return bad("want %s:NODE:AT:DUR", fields[0])
		}
		e.Kind = SchedStall
		if fields[0] == "restart" {
			e.Kind = SchedRestart
		}
		var err error
		if e.Node, err = strconv.Atoi(fields[1]); err != nil {
			return bad("bad node %q", fields[1])
		}
		if e.At, err = parseDur(fields[2]); err != nil {
			return bad("bad time %q", fields[2])
		}
		if e.Dur, err = parseDur(fields[3]); err != nil {
			return bad("bad duration %q", fields[3])
		}
	case "burst":
		if len(fields) < 6 {
			return bad("want burst:KIND:FRAME:PROB:AT:DUR[:DELAY]")
		}
		e.Kind = SchedBurst
		// Reuse the fault-rule grammar for KIND:FRAME:PROB[:DELAY].
		ruleFields := append([]string{}, fields[1:4]...)
		ruleFields = append(ruleFields, fields[6:]...)
		rules, err := ParseFaults(strings.Join(ruleFields, ":"))
		if err != nil {
			return bad("%v", err)
		}
		e.Rule = rules[0]
		if e.At, err = parseDur(fields[4]); err != nil {
			return bad("bad time %q", fields[4])
		}
		if e.Dur, err = parseDur(fields[5]); err != nil {
			return bad("bad duration %q", fields[5])
		}
	case "corrupt":
		if len(fields) != 3 {
			return bad("want corrupt:NODE:AT")
		}
		e.Kind = SchedCorrupt
		var err error
		if e.Node, err = strconv.Atoi(fields[1]); err != nil {
			return bad("bad node %q", fields[1])
		}
		if e.At, err = parseDur(fields[2]); err != nil {
			return bad("bad time %q", fields[2])
		}
	default:
		return bad("unknown kind %q", fields[0])
	}
	return e, nil
}

// parseDir parses a router port name: X+ X- Y+ Y- Z+ Z- (case-insensitive,
// sign-first tolerated).
func parseDir(s string) (topo.Dir, error) {
	t := strings.ToUpper(strings.TrimSpace(s))
	if len(t) == 2 && (t[0] == '+' || t[0] == '-') {
		t = t[1:] + t[:1]
	}
	if len(t) != 2 {
		return topo.Dir{}, fmt.Errorf("bad direction %q (want X+ X- Y+ Y- Z+ Z-)", s)
	}
	var d topo.Dir
	switch t[0] {
	case 'X':
		d.Axis = topo.X
	case 'Y':
		d.Axis = topo.Y
	case 'Z':
		d.Axis = topo.Z
	default:
		return topo.Dir{}, fmt.Errorf("bad direction %q (want X+ X- Y+ Y- Z+ Z-)", s)
	}
	switch t[1] {
	case '+':
		d.Sign = 1
	case '-':
		d.Sign = -1
	default:
		return topo.Dir{}, fmt.Errorf("bad direction %q (want X+ X- Y+ Y- Z+ Z-)", s)
	}
	return d, nil
}

// fmtDur renders a sim.Time exactly: the largest unit that divides it, down
// to raw picoseconds ("ps" is a grammar extension; Go durations stop at ns).
func fmtDur(t sim.Time) string {
	switch {
	case t >= sim.Millisecond && t%sim.Millisecond == 0:
		return fmt.Sprintf("%dms", t/sim.Millisecond)
	case t >= sim.Microsecond && t%sim.Microsecond == 0:
		return fmt.Sprintf("%dus", t/sim.Microsecond)
	case t >= sim.Nanosecond && t%sim.Nanosecond == 0:
		return fmt.Sprintf("%dns", t/sim.Nanosecond)
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// parseDur parses fmtDur's output plus any Go duration string.
func parseDur(s string) (sim.Time, error) {
	if strings.HasSuffix(s, "ps") && !strings.HasSuffix(s, "ns") {
		n, err := strconv.ParseInt(strings.TrimSuffix(s, "ps"), 10, 64)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("bad duration %q", s)
		}
		return sim.Time(n), nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	return sim.Time(d.Nanoseconds()) * sim.Nanosecond, nil
}

// GenSchedule derives a chaos schedule from a campaign seed: n entries of
// mixed kinds over the window [span/8, span], quantized to whole
// microseconds, every (node, dir) drawn valid for the topology and windows
// on the same resource kept disjoint (overlapping stall windows would merge
// — deterministic but confusing to bisect). The generator never emits
// corrupt entries: a generated campaign is expected to pass, and planted
// failures are planted explicitly.
//
// All randomness comes from a private PRNG seeded by seed, so (seed, tp, n,
// span) fully determines the schedule — the soak driver's reproducibility
// contract.
func GenSchedule(seed int64, tp *topo.Topology, n int, span sim.Time) FaultSchedule {
	rng := rand.New(rand.NewSource(seed))
	if span < 100*sim.Microsecond {
		span = 100 * sim.Microsecond
	}
	maxDur := span / 6
	if maxDur > 400*sim.Microsecond {
		maxDur = 400 * sim.Microsecond
	}
	if maxDur < 20*sim.Microsecond {
		maxDur = 20 * sim.Microsecond
	}
	quant := func(t sim.Time) sim.Time {
		q := t / sim.Microsecond * sim.Microsecond
		if q < sim.Microsecond {
			q = sim.Microsecond
		}
		return q
	}
	lo, hi := span/8, span-maxDur
	if hi <= lo {
		hi = lo + sim.Microsecond
	}
	type window struct{ from, to sim.Time }
	busy := make(map[string][]window)
	disjoint := func(key string, from, to sim.Time) bool {
		for _, w := range busy[key] {
			if from < w.to && w.from < to {
				return false
			}
		}
		return true
	}
	var out FaultSchedule
	for tries := 0; len(out) < n && tries < 20*n+100; tries++ {
		e := ScheduleEntry{
			At:  quant(lo + sim.Time(rng.Int63n(int64(hi-lo)))),
			Dur: quant(20*sim.Microsecond + sim.Time(rng.Int63n(int64(maxDur-20*sim.Microsecond+1)))),
		}
		node := rng.Intn(tp.Nodes())
		var key string
		switch k := rng.Intn(100); {
		case k < 30:
			e.Kind = SchedLinkDown
			e.Node = node
			dirs := validDirs(tp, topo.NodeID(node))
			e.Dir = dirs[rng.Intn(len(dirs))]
			key = fmt.Sprintf("link:%d:%s", e.Node, e.Dir)
		case k < 55:
			e.Kind = SchedStall
			e.Node = node
			key = fmt.Sprintf("node:%d", e.Node)
		case k < 70:
			e.Kind = SchedRestart
			e.Node = node
			key = fmt.Sprintf("node:%d", e.Node)
		default:
			e.Kind = SchedBurst
			switch rng.Intn(3) {
			case 0:
				e.Rule = NewFault(FaultDrop, FrameData, 0.25+rng.Float64()/2)
			case 1:
				e.Rule = NewFault(FaultDrop, FrameFcAck, 0.25+rng.Float64()/2)
			case 2:
				e.Rule = NewFault(FaultDelay, FrameData, 0.25+rng.Float64()/2).
					WithDelay(quant(5*sim.Microsecond + sim.Time(rng.Int63n(int64(40*sim.Microsecond)))))
			}
			// Trim the printed probability so the spec stays readable.
			e.Rule.Prob = float64(int(e.Rule.Prob*100)) / 100
			key = "burst"
		}
		if !disjoint(key, e.At, e.At+e.Dur) {
			continue // deterministic redraw
		}
		busy[key] = append(busy[key], window{e.At, e.At + e.Dur})
		out = append(out, e)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// validDirs lists the router ports of node that lead somewhere — all six on
// a full torus, fewer at mesh edges.
func validDirs(tp *topo.Topology, node topo.NodeID) []topo.Dir {
	all := []topo.Dir{
		{Axis: topo.X, Sign: 1}, {Axis: topo.X, Sign: -1},
		{Axis: topo.Y, Sign: 1}, {Axis: topo.Y, Sign: -1},
		{Axis: topo.Z, Sign: 1}, {Axis: topo.Z, Sign: -1},
	}
	var out []topo.Dir
	for _, d := range all {
		if _, ok := tp.Neighbor(node, d); ok {
			out = append(out, d)
		}
	}
	return out
}
