package wire

import (
	"bytes"
	"testing"
)

// FuzzHeaderDecode feeds arbitrary bytes through Decode and re-encodes:
// decode must never panic and decode∘encode∘decode must be a fixed point.
func FuzzHeaderDecode(f *testing.F) {
	f.Add(make([]byte, HeaderBytes))
	var seed Header
	seed = Header{Type: TypePut, PtlIndex: 4, InlineLen: 12, AckReq: 1,
		SrcNid: 1, SrcPid: 2, DstNid: 3, DstPid: 4, MatchBits: ^uint64(0),
		Length: 1 << 23, Offset: 42, MDHandle: 7, UID: 1001, HdrData: 0xDEADBEEF}
	buf := make([]byte, HeaderBytes)
	seed.Encode(buf)
	f.Add(buf)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < HeaderBytes {
			return
		}
		var h Header
		h.Decode(data)
		out := make([]byte, HeaderBytes)
		h.Encode(out)
		var h2 Header
		h2.Decode(out)
		if h != h2 {
			t.Fatalf("decode/encode not a fixed point: %+v vs %+v", h, h2)
		}
	})
}

// FuzzCRC16 checks the link CRC never panics and is deterministic.
func FuzzCRC16(f *testing.F) {
	f.Add([]byte("123456789"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		a := CRC16(data)
		b := CRC16(data)
		if a != b {
			t.Fatalf("CRC16 not deterministic")
		}
		if len(data) > 0 {
			mutated := append([]byte(nil), data...)
			mutated[0] ^= 0x01
			if CRC16(mutated) == a {
				// Single-bit flips in the first byte must always change a
				// CRC with this polynomial.
				t.Fatalf("CRC16 missed a single-bit error")
			}
		}
	})
}
