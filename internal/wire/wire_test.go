package wire

import (
	"testing"
	"testing/quick"
)

func TestHeaderFitsInPacket(t *testing.T) {
	if HeaderBytes+InlineMax != PacketBytes {
		t.Fatalf("header (%d) + inline (%d) must fill one %d-byte packet exactly",
			HeaderBytes, InlineMax, PacketBytes)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	f := func(typ uint8, ptl, inl, ack uint8, snid, spid, dnid, dpid uint32,
		mb uint64, length, off, md, uid uint32, hd uint64) bool {
		h := Header{
			Type: MsgType(typ%4 + 1), PtlIndex: ptl, InlineLen: inl, AckReq: ack,
			SrcNid: snid, SrcPid: spid, DstNid: dnid, DstPid: dpid,
			MatchBits: mb, Length: length, Offset: off, MDHandle: md,
			UID: uid, HdrData: hd,
		}
		var buf [HeaderBytes]byte
		h.Encode(buf[:])
		var g Header
		g.Decode(buf[:])
		return g == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMsgTypeStrings(t *testing.T) {
	cases := map[MsgType]string{TypePut: "PUT", TypeGet: "GET", TypeReply: "REPLY", TypeAck: "ACK", MsgType(9): "MsgType(9)"}
	for typ, want := range cases {
		if typ.String() != want {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), want)
		}
	}
}

func TestHasPayload(t *testing.T) {
	for typ, want := range map[MsgType]bool{TypePut: true, TypeReply: true, TypeGet: false, TypeAck: false} {
		h := Header{Type: typ}
		if h.HasPayload() != want {
			t.Errorf("HasPayload(%v) = %v", typ, !want)
		}
	}
}

func TestCRC32DetectsCorruption(t *testing.T) {
	h := Header{Type: TypePut, SrcNid: 1, DstNid: 2, Length: 8, MatchBits: 0xdead}
	payload := []byte("12345678")
	sum := CRC32(&h, payload)
	// Flip one payload bit.
	payload[3] ^= 0x10
	if CRC32(&h, payload) == sum {
		t.Error("CRC32 failed to detect payload corruption")
	}
	payload[3] ^= 0x10
	// Flip one header field.
	h.MatchBits ^= 1
	if CRC32(&h, payload) == sum {
		t.Error("CRC32 failed to detect header corruption")
	}
}

func TestCRC16KnownVectorAndDetection(t *testing.T) {
	// CCITT-FALSE of "123456789" is the classic 0x29B1 check value.
	if got := CRC16([]byte("123456789")); got != 0x29B1 {
		t.Errorf("CRC16 check value = %#x, want 0x29B1", got)
	}
	f := func(data []byte, i uint16, bit uint8) bool {
		if len(data) == 0 {
			return true
		}
		sum := CRC16(data)
		j := int(i) % len(data)
		data[j] ^= 1 << (bit % 8)
		changed := CRC16(data) != sum
		data[j] ^= 1 << (bit % 8)
		return changed // single-bit errors are always detected by CRC-CCITT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestHeaderStringMentionsEndpoints(t *testing.T) {
	h := Header{Type: TypeGet, SrcNid: 3, SrcPid: 7, DstNid: 9, DstPid: 1}
	s := h.String()
	if len(s) == 0 || s[:3] != "GET" {
		t.Errorf("String() = %q", s)
	}
}
