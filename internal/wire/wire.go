// Package wire defines the on-the-wire format of Portals messages on the
// simulated SeaStar network: the 64-byte header packet layout (52 bytes of
// header plus up to 12 bytes of inline user data — the small-message
// optimization of paper §6), the end-to-end 32-bit CRC and the link-level
// 16-bit CRC (paper §2).
//
// Messages in this repository carry real bytes: headers are genuinely
// encoded and decoded, CRCs are genuinely computed, and payload corruption
// injected by tests is genuinely detected.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// MsgType distinguishes the four Portals wire operations.
type MsgType uint8

// Wire message types. The first four are Portals operations; the Fc types
// are NIC-level flow control frames consumed entirely by the firmware
// (they exist for the go-back-n resource exhaustion recovery protocol the
// paper describes as in-progress work, §4.3).
const (
	TypePut    MsgType = iota + 1 // one-sided put (data follows header)
	TypeGet                       // get request (no payload)
	TypeReply                     // get reply (data follows header)
	TypeAck                       // put acknowledgment (no payload)
	TypeFcAck                     // firmware flow control: cumulative ack
	TypeFcNack                    // firmware flow control: go-back-n nack
)

func (t MsgType) String() string {
	switch t {
	case TypePut:
		return "PUT"
	case TypeGet:
		return "GET"
	case TypeReply:
		return "REPLY"
	case TypeAck:
		return "ACK"
	case TypeFcAck:
		return "FC_ACK"
	case TypeFcNack:
		return "FC_NACK"
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// HeaderBytes is the encoded header size. Together with InlineMax bytes of
// user data it fills exactly one 64-byte router packet.
const HeaderBytes = 52

// InlineMax is the user payload that fits in the header packet: "12 bytes of
// user data will fit in the 64 byte header packet" (paper §6).
const InlineMax = 12

// PacketBytes is the router packet size (paper §2).
const PacketBytes = 64

// Header is the Portals message header carried in the first packet of every
// message. Field names follow the Portals 3.3 specification.
type Header struct {
	Type      MsgType
	PtlIndex  uint8  // destination portal table index
	InlineLen uint8  // bytes of user data carried inline in the header packet
	AckReq    uint8  // nonzero when the initiator wants an ACK (puts only)
	SrcNid    uint32 // initiator node
	SrcPid    uint32 // initiator process
	DstNid    uint32 // target node
	DstPid    uint32 // target process
	MatchBits uint64 // matched against ME match/ignore bits at the target
	Length    uint32 // payload length (bytes requested, for gets)
	Offset    uint32 // remote managed offset (or get source offset)
	MDHandle  uint32 // initiator MD, echoed in replies and acks
	UID       uint32 // user id, checked against the target ACL
	HdrData   uint64 // opaque 64-bit header data delivered in the event
}

// Encode writes the header into buf, which must be at least HeaderBytes.
func (h *Header) Encode(buf []byte) {
	_ = buf[HeaderBytes-1]
	buf[0] = byte(h.Type)
	buf[1] = h.PtlIndex
	buf[2] = h.InlineLen
	buf[3] = h.AckReq
	le := binary.LittleEndian
	le.PutUint32(buf[4:], h.SrcNid)
	le.PutUint32(buf[8:], h.SrcPid)
	le.PutUint32(buf[12:], h.DstNid)
	le.PutUint32(buf[16:], h.DstPid)
	le.PutUint64(buf[20:], h.MatchBits)
	le.PutUint32(buf[28:], h.Length)
	le.PutUint32(buf[32:], h.Offset)
	le.PutUint32(buf[36:], h.MDHandle)
	le.PutUint32(buf[40:], h.UID)
	le.PutUint64(buf[44:], h.HdrData)
}

// Decode reads the header from buf, which must be at least HeaderBytes.
func (h *Header) Decode(buf []byte) {
	_ = buf[HeaderBytes-1]
	h.Type = MsgType(buf[0])
	h.PtlIndex = buf[1]
	h.InlineLen = buf[2]
	h.AckReq = buf[3]
	le := binary.LittleEndian
	h.SrcNid = le.Uint32(buf[4:])
	h.SrcPid = le.Uint32(buf[8:])
	h.DstNid = le.Uint32(buf[12:])
	h.DstPid = le.Uint32(buf[16:])
	h.MatchBits = le.Uint64(buf[20:])
	h.Length = le.Uint32(buf[28:])
	h.Offset = le.Uint32(buf[32:])
	h.MDHandle = le.Uint32(buf[36:])
	h.UID = le.Uint32(buf[40:])
	h.HdrData = le.Uint64(buf[44:])
}

func (h *Header) String() string {
	return fmt.Sprintf("%v %d:%d->%d:%d ptl=%d mb=%#x len=%d off=%d",
		h.Type, h.SrcNid, h.SrcPid, h.DstNid, h.DstPid, h.PtlIndex, h.MatchBits, h.Length, h.Offset)
}

// HasPayload reports whether this message type carries payload beyond the
// header packet.
func (h *Header) HasPayload() bool { return h.Type == TypePut || h.Type == TypeReply }

// CRC32 is the end-to-end checksum the DMA engines compute over the whole
// message (header + payload): "hardware support for an end-to-end 32 bit
// CRC check" (paper §2).
func CRC32(hdr *Header, payload []byte) uint32 {
	var buf [HeaderBytes]byte
	hdr.Encode(buf[:])
	c := crc32.ChecksumIEEE(buf[:])
	return crc32.Update(c, crc32.IEEETable, payload)
}

// crc16Table is the CCITT polynomial table used by the per-link check:
// "a 16 bit CRC check (with retries) that is performed on each of the
// individual links" (paper §2).
var crc16Table [256]uint16

func init() {
	const poly = 0x1021
	for i := 0; i < 256; i++ {
		crc := uint16(i) << 8
		for b := 0; b < 8; b++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ poly
			} else {
				crc <<= 1
			}
		}
		crc16Table[i] = crc
	}
}

// CRC16 computes the CCITT link-level checksum of one packet's bytes.
func CRC16(p []byte) uint16 {
	var crc uint16 = 0xFFFF
	for _, b := range p {
		crc = crc<<8 ^ crc16Table[byte(crc>>8)^b]
	}
	return crc
}
