package machine

import (
	"sort"

	"portals3/internal/fabric"
	"portals3/internal/sim"
	"portals3/internal/telemetry"
	"portals3/internal/topo"
)

// This file is the telemetry half of the RAS loop: where ras.go watches
// heartbeats for liveness, the Sampler periodically snapshots every node's
// counters and utilizations into virtual-time series — the counter-
// gathering path the real Red Storm RAS network provided, feeding the
// machine's telemetry registry for export.
//
// On a sharded machine the sampler is lane-local: ticks fire at the
// kernel's canonical barrier times (sim.Kernel.Every), where every lane's
// clock agrees and the lane workers have joined, so the coordinator may
// read any node's counters race-free. Per-node series land in the owning
// lane's telemetry instance; the fabric aggregates are recorded as
// per-lane partials that telemetry.Merged sums pointwise (samples share
// timestamps across lanes by construction). Either way the merged export
// is byte-identical at every shard count.

// nodeSeries caches one node's series pointers so a tick does no map
// lookups beyond discovering newly built nodes.
type nodeSeries struct {
	heartbeat  *telemetry.Series
	interrupts *telemetry.Series
	coalesced  *telemetry.Series
	headersRx  *telemetry.Series
	msgsTx     *telemetry.Series
	events     *telemetry.Series
	ppcBusy    *telemetry.Series
	htRdBusy   *telemetry.Series
	htWrBusy   *telemetry.Series
	sramUsed   *telemetry.Series
	rxWaits    *telemetry.Series

	// Firmware occupancy: pool frees as series, worst-case watermarks as
	// gauges (a watermark is a single monotone value, not a time series).
	rxPendFree *telemetry.Series
	txPendFree *telemetry.Series
	srcFree    *telemetry.Series
	evqDepth   *telemetry.Series
	rxPendLow  *telemetry.Gauge
	txPendLow  *telemetry.Gauge
	srcLow     *telemetry.Gauge
	evqHigh    *telemetry.Gauge
}

// laneFab caches one lane's fabric-aggregate series (the classic machine
// has exactly one, bound to its single telemetry instance).
type laneFab struct {
	messages  *telemetry.Series
	chunks    *telemetry.Series
	delivered *telemetry.Series
	retries   *telemetry.Series
}

// Sampler is a running virtual-time stats sampler.
type Sampler struct {
	m      *Machine
	period sim.Time
	halted bool
	nodes  map[topo.NodeID]*nodeSeries

	// Fabric aggregates: one entry on a classic machine, one per lane on a
	// sharded one (partials that sum pointwise under telemetry.Merged).
	fabs []laneFab

	// Simulator internals — classic machine only. Per-lane event counts
	// depend on the node partition, so a sharded machine records
	// kernel_windows_total (shard-invariant; see sim.Kernel) instead.
	simFired    *telemetry.Series
	simPending  *telemetry.Series
	kernWindows *telemetry.Series

	// lastAt dedupes the final quiesce-time sample against a tick that
	// already fired at the same instant (series timestamps stay strictly
	// increasing, which tests pin).
	lastAt sim.Time
	took   bool

	// closing marks the final quiesce-time sample: link meters are flushed
	// (window ends when the link went idle) instead of sampled (window
	// diluted across the drain). Set by Machine.Run.
	closing bool

	// Samples counts ticks taken, for tests and reports.
	Samples int
}

// StartSampler begins periodic sampling of every node's firmware, kernel
// and chip counters (plus fabric, link-contention and simulator stats)
// into telemetry time series, every period of simulated time. Telemetry is
// enabled if it was not already.
//
// Unlike the classic heartbeat monitor (StartRAS), the sampler
// self-terminates: a classic tick only reschedules while other work is
// pending on the event heap, and sharded barrier ticks stop at kernel
// quiescence — so Machine.Run still returns, with a final sample taken at
// quiesce time.
func (m *Machine) StartSampler(period sim.Time) *Sampler {
	if m.sampler != nil {
		return m.sampler
	}
	m.EnableTelemetry()
	sp := &Sampler{m: m, period: period, nodes: make(map[topo.NodeID]*nodeSeries)}
	m.sampler = sp
	if m.kern != nil {
		sp.fabs = make([]laneFab, m.kern.Shards())
		for i, tel := range m.tels {
			sp.fabs[i] = bindFab(tel)
		}
		sp.kernWindows = m.tels[0].SeriesFor("kernel_windows_total")
		m.kern.Every(period, func(now sim.Time) {
			if !sp.halted {
				sp.sampleAt(now)
			}
		})
		return sp
	}
	sp.fabs = []laneFab{bindFab(m.tel)}
	sp.simFired = m.tel.SeriesFor("sim_events_fired_total")
	sp.simPending = m.tel.SeriesFor("sim_events_pending")
	var tick func()
	tick = func() {
		if sp.halted {
			return
		}
		sp.sampleAt(m.S.Now())
		if m.S.Pending() > 0 {
			m.S.After(period, tick)
		}
	}
	m.S.After(period, tick)
	return sp
}

// bindFab creates one telemetry instance's fabric-aggregate series.
func bindFab(tel *telemetry.Telemetry) laneFab {
	return laneFab{
		messages:  tel.SeriesFor("fabric_messages_total"),
		chunks:    tel.SeriesFor("fabric_chunks_total"),
		delivered: tel.SeriesFor("fabric_delivered_total"),
		retries:   tel.SeriesFor("fabric_link_retries_total"),
	}
}

// Stop halts the sampler after the current period.
func (sp *Sampler) Stop() { sp.halted = true }

// sampleAt appends one point to every series at the given canonical time
// (a tick time, or the quiesce time for the closing sample).
func (sp *Sampler) sampleAt(now sim.Time) {
	if sp.took && now == sp.lastAt {
		return
	}
	sp.took = true
	sp.lastAt = now
	m := sp.m
	sp.Samples++
	ids := make([]topo.NodeID, 0, len(m.nodes))
	for id := range m.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := m.nodes[id]
		ns := sp.nodes[id]
		if ns == nil {
			ns = sp.bindNode(id)
		}
		ns.heartbeat.Append(now, float64(n.NIC.Heartbeat))
		ns.interrupts.Append(now, float64(n.Kernel.Interrupts))
		ns.coalesced.Append(now, float64(n.Kernel.Coalesced))
		ns.headersRx.Append(now, float64(n.NIC.Stats.HeadersRx))
		ns.msgsTx.Append(now, float64(n.NIC.Stats.MsgsTx))
		ns.events.Append(now, float64(n.NIC.Stats.EventsPosted))
		ns.ppcBusy.Append(now, n.Chip.CPU.Utilization())
		ns.htRdBusy.Append(now, n.Chip.HTRead.Utilization())
		ns.htWrBusy.Append(now, n.Chip.HTWrite.Utilization())
		ns.sramUsed.Append(now, float64(n.Chip.SRAM.Used()))
		ns.rxWaits.Append(now, float64(n.Chip.RxFIFO.Waits))
		occ := n.NIC.Occupancy()
		ns.rxPendFree.Append(now, float64(occ.RxPendFree))
		ns.txPendFree.Append(now, float64(occ.TxPendFree))
		ns.srcFree.Append(now, float64(occ.SourcesFree))
		ns.evqDepth.Append(now, float64(n.Generic.EvQueueDepth()))
		ns.rxPendLow.Set(float64(occ.RxPendLow))
		ns.txPendLow.Set(float64(occ.TxPendLow))
		ns.srcLow.Set(float64(occ.SourcesLow))
		ns.evqHigh.Set(float64(n.Generic.EvQueueHigh()))
	}
	if m.kern != nil {
		for i := range sp.fabs {
			f := m.cl.LaneFabric(i)
			sp.fabs[i].append(now, f.Stats)
			for _, mt := range f.Meters() {
				sp.meterAt(mt, m.tels[i], now)
			}
		}
		sp.kernWindows.Append(now, float64(m.kern.Windows))
		return
	}
	sp.fabs[0].append(now, m.Fab.Stats)
	for _, mt := range m.Fab.Meters() {
		sp.meterAt(mt, m.tel, now)
	}
	sp.simFired.Append(now, float64(m.S.Fired))
	sp.simPending.Append(now, float64(m.S.Pending()))
}

// meterAt advances one link meter: a periodic tick samples the window
// ending now; the closing quiesce sample flushes instead, ending the final
// window at the instant the link went idle.
func (sp *Sampler) meterAt(mt *fabric.LinkMeter, tel *telemetry.Telemetry, now sim.Time) {
	if sp.closing {
		mt.Flush(tel, now)
		return
	}
	mt.Sample(tel, now)
}

// append records one lane's fabric counters at time now.
func (lf *laneFab) append(now sim.Time, st fabric.Stats) {
	lf.messages.Append(now, float64(st.Messages))
	lf.chunks.Append(now, float64(st.Chunks))
	lf.delivered.Append(now, float64(st.Delivered))
	lf.retries.Append(now, float64(st.LinkRetries))
}

// bindNode creates the series set for a newly seen node, in the node's
// lane-local telemetry instance.
func (sp *Sampler) bindNode(id topo.NodeID) *nodeSeries {
	tel := sp.m.nodeTel(id)
	nl := telemetry.NodeLabel(int(id))
	ns := &nodeSeries{
		heartbeat:  tel.SeriesFor("node_fw_heartbeat_total", nl),
		interrupts: tel.SeriesFor("node_host_interrupts_total", nl),
		coalesced:  tel.SeriesFor("node_host_irq_coalesced_total", nl),
		headersRx:  tel.SeriesFor("node_fw_headers_rx_total", nl),
		msgsTx:     tel.SeriesFor("node_fw_msgs_tx_total", nl),
		events:     tel.SeriesFor("node_fw_events_posted_total", nl),
		ppcBusy:    tel.SeriesFor("node_ppc_utilization", nl),
		htRdBusy:   tel.SeriesFor("node_ht_read_utilization", nl),
		htWrBusy:   tel.SeriesFor("node_ht_write_utilization", nl),
		sramUsed:   tel.SeriesFor("node_sram_used_bytes", nl),
		rxWaits:    tel.SeriesFor("node_rx_fifo_waits_total", nl),

		rxPendFree: tel.SeriesFor("node_fw_rx_pendings_free", nl),
		txPendFree: tel.SeriesFor("node_fw_tx_pendings_free", nl),
		srcFree:    tel.SeriesFor("node_fw_sources_free", nl),
		evqDepth:   tel.SeriesFor("node_evq_depth", nl),
		rxPendLow:  tel.Reg.Gauge("node_fw_rx_pendings_low", nl),
		txPendLow:  tel.Reg.Gauge("node_fw_tx_pendings_low", nl),
		srcLow:     tel.Reg.Gauge("node_fw_sources_low", nl),
		evqHigh:    tel.Reg.Gauge("node_evq_high", nl),
	}
	sp.nodes[id] = ns
	return ns
}
