package machine

import (
	"sort"

	"portals3/internal/sim"
	"portals3/internal/telemetry"
	"portals3/internal/topo"
)

// This file is the telemetry half of the RAS loop: where ras.go watches
// heartbeats for liveness, the Sampler periodically snapshots every node's
// counters and utilizations into virtual-time series — the counter-
// gathering path the real Red Storm RAS network provided, feeding the
// machine's telemetry registry for export.

// nodeSeries caches one node's series pointers so a tick does no map
// lookups beyond discovering newly built nodes.
type nodeSeries struct {
	heartbeat  *telemetry.Series
	interrupts *telemetry.Series
	coalesced  *telemetry.Series
	headersRx  *telemetry.Series
	msgsTx     *telemetry.Series
	events     *telemetry.Series
	ppcBusy    *telemetry.Series
	htRdBusy   *telemetry.Series
	htWrBusy   *telemetry.Series
	sramUsed   *telemetry.Series
	rxWaits    *telemetry.Series

	// Firmware occupancy: pool frees as series, worst-case watermarks as
	// gauges (a watermark is a single monotone value, not a time series).
	rxPendFree *telemetry.Series
	txPendFree *telemetry.Series
	srcFree    *telemetry.Series
	evqDepth   *telemetry.Series
	rxPendLow  *telemetry.Gauge
	txPendLow  *telemetry.Gauge
	srcLow     *telemetry.Gauge
	evqHigh    *telemetry.Gauge
}

// Sampler is a running virtual-time stats sampler.
type Sampler struct {
	m      *Machine
	period sim.Time
	halted bool
	nodes  map[topo.NodeID]*nodeSeries

	fabMessages  *telemetry.Series
	fabChunks    *telemetry.Series
	fabDelivered *telemetry.Series
	fabRetries   *telemetry.Series
	simFired     *telemetry.Series
	simPending   *telemetry.Series

	// Samples counts ticks taken, for tests and reports.
	Samples int
}

// StartSampler begins periodic sampling of every node's firmware, kernel
// and chip counters (plus fabric and simulator stats) into telemetry time
// series, every period of simulated time. Telemetry is enabled if it was
// not already.
//
// Unlike the heartbeat monitor (StartRAS), the sampler self-terminates: a
// tick only reschedules while other work is pending on the event heap, so
// Machine.Run still returns — with a final sample taken at quiesce time.
func (m *Machine) StartSampler(period sim.Time) *Sampler {
	m.seqOnly("the RAS sampler")
	if m.sampler != nil {
		return m.sampler
	}
	m.EnableTelemetry()
	sp := &Sampler{m: m, period: period, nodes: make(map[topo.NodeID]*nodeSeries)}
	tel := m.tel
	sp.fabMessages = tel.SeriesFor("fabric_messages_total")
	sp.fabChunks = tel.SeriesFor("fabric_chunks_total")
	sp.fabDelivered = tel.SeriesFor("fabric_delivered_total")
	sp.fabRetries = tel.SeriesFor("fabric_link_retries_total")
	sp.simFired = tel.SeriesFor("sim_events_fired_total")
	sp.simPending = tel.SeriesFor("sim_events_pending")
	m.sampler = sp
	var tick func()
	tick = func() {
		if sp.halted {
			return
		}
		sp.sample()
		if m.S.Pending() > 0 {
			m.S.After(period, tick)
		}
	}
	m.S.After(period, tick)
	return sp
}

// Stop halts the sampler after the current period.
func (sp *Sampler) Stop() { sp.halted = true }

// sample appends one point to every series.
func (sp *Sampler) sample() {
	m := sp.m
	now := m.S.Now()
	sp.Samples++
	ids := make([]topo.NodeID, 0, len(m.nodes))
	for id := range m.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := m.nodes[id]
		ns := sp.nodes[id]
		if ns == nil {
			ns = sp.bindNode(id)
		}
		ns.heartbeat.Append(now, float64(n.NIC.Heartbeat))
		ns.interrupts.Append(now, float64(n.Kernel.Interrupts))
		ns.coalesced.Append(now, float64(n.Kernel.Coalesced))
		ns.headersRx.Append(now, float64(n.NIC.Stats.HeadersRx))
		ns.msgsTx.Append(now, float64(n.NIC.Stats.MsgsTx))
		ns.events.Append(now, float64(n.NIC.Stats.EventsPosted))
		ns.ppcBusy.Append(now, n.Chip.CPU.Utilization())
		ns.htRdBusy.Append(now, n.Chip.HTRead.Utilization())
		ns.htWrBusy.Append(now, n.Chip.HTWrite.Utilization())
		ns.sramUsed.Append(now, float64(n.Chip.SRAM.Used()))
		ns.rxWaits.Append(now, float64(n.Chip.RxFIFO.Waits))
		occ := n.NIC.Occupancy()
		ns.rxPendFree.Append(now, float64(occ.RxPendFree))
		ns.txPendFree.Append(now, float64(occ.TxPendFree))
		ns.srcFree.Append(now, float64(occ.SourcesFree))
		ns.evqDepth.Append(now, float64(n.Generic.EvQueueDepth()))
		ns.rxPendLow.Set(float64(occ.RxPendLow))
		ns.txPendLow.Set(float64(occ.TxPendLow))
		ns.srcLow.Set(float64(occ.SourcesLow))
		ns.evqHigh.Set(float64(n.Generic.EvQueueHigh()))
	}
	sp.fabMessages.Append(now, float64(m.Fab.Stats.Messages))
	sp.fabChunks.Append(now, float64(m.Fab.Stats.Chunks))
	sp.fabDelivered.Append(now, float64(m.Fab.Stats.Delivered))
	sp.fabRetries.Append(now, float64(m.Fab.Stats.LinkRetries))
	sp.simFired.Append(now, float64(m.S.Fired))
	sp.simPending.Append(now, float64(m.S.Pending()))
}

// bindNode creates the series set for a newly seen node.
func (sp *Sampler) bindNode(id topo.NodeID) *nodeSeries {
	tel := sp.m.tel
	nl := telemetry.NodeLabel(int(id))
	ns := &nodeSeries{
		heartbeat:  tel.SeriesFor("node_fw_heartbeat_total", nl),
		interrupts: tel.SeriesFor("node_host_interrupts_total", nl),
		coalesced:  tel.SeriesFor("node_host_irq_coalesced_total", nl),
		headersRx:  tel.SeriesFor("node_fw_headers_rx_total", nl),
		msgsTx:     tel.SeriesFor("node_fw_msgs_tx_total", nl),
		events:     tel.SeriesFor("node_fw_events_posted_total", nl),
		ppcBusy:    tel.SeriesFor("node_ppc_utilization", nl),
		htRdBusy:   tel.SeriesFor("node_ht_read_utilization", nl),
		htWrBusy:   tel.SeriesFor("node_ht_write_utilization", nl),
		sramUsed:   tel.SeriesFor("node_sram_used_bytes", nl),
		rxWaits:    tel.SeriesFor("node_rx_fifo_waits_total", nl),

		rxPendFree: tel.SeriesFor("node_fw_rx_pendings_free", nl),
		txPendFree: tel.SeriesFor("node_fw_tx_pendings_free", nl),
		srcFree:    tel.SeriesFor("node_fw_sources_free", nl),
		evqDepth:   tel.SeriesFor("node_evq_depth", nl),
		rxPendLow:  tel.Reg.Gauge("node_fw_rx_pendings_low", nl),
		txPendLow:  tel.Reg.Gauge("node_fw_tx_pendings_low", nl),
		srcLow:     tel.Reg.Gauge("node_fw_sources_low", nl),
		evqHigh:    tel.Reg.Gauge("node_evq_high", nl),
	}
	sp.nodes[id] = ns
	return ns
}
