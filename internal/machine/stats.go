package machine

import (
	"fmt"
	"sort"
	"strings"

	"portals3/internal/fabric"
	"portals3/internal/fw"
	"portals3/internal/topo"
)

// NodeStats is one node's counter snapshot: what the RAS system would
// gather from the heartbeat/telemetry path on the real machine.
type NodeStats struct {
	Node       topo.NodeID
	OS         string
	Interrupts uint64 // interrupts taken by the host
	Coalesced  uint64 // interrupt raises absorbed by an active handler
	Firmware   fw.Stats
	Heartbeat  uint64
	SRAMUsed   int64
	SRAMFree   int64
	PPCBusy    float64 // utilization of the embedded processor
	HTReadBusy float64
	HTWrBusy   float64
}

// Stats is a whole-machine snapshot.
type Stats struct {
	Nodes  []NodeStats
	Fabric fabric.Stats
}

// Stats snapshots every instantiated node plus the fabric counters.
func (m *Machine) Stats() Stats {
	var out Stats
	ids := make([]topo.NodeID, 0, len(m.nodes))
	for id := range m.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := m.nodes[id]
		out.Nodes = append(out.Nodes, NodeStats{
			Node:       id,
			OS:         n.Kernel.Kind.String(),
			Interrupts: n.Kernel.Interrupts,
			Coalesced:  n.Kernel.Coalesced,
			Firmware:   n.NIC.Stats,
			Heartbeat:  n.NIC.Heartbeat,
			SRAMUsed:   n.Chip.SRAM.Used(),
			SRAMFree:   n.Chip.SRAM.Free(),
			PPCBusy:    n.Chip.CPU.Utilization(),
			HTReadBusy: n.Chip.HTRead.Utilization(),
			HTWrBusy:   n.Chip.HTWrite.Utilization(),
		})
	}
	if m.kern != nil {
		out.Fabric = m.cl.StatsSum()
	} else {
		out.Fabric = m.Fab.Stats
	}
	return out
}

// String renders the snapshot as an aligned table.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%6s %-10s %6s %6s %8s %8s %8s %7s %7s %7s\n",
		"node", "os", "irq", "coal", "hdrs-rx", "msgs-tx", "events", "ppc%", "htrd%", "htwr%")
	for _, n := range s.Nodes {
		fmt.Fprintf(&sb, "%6d %-10s %6d %6d %8d %8d %8d %6.1f%% %6.1f%% %6.1f%%\n",
			n.Node, n.OS, n.Interrupts, n.Coalesced,
			n.Firmware.HeadersRx, n.Firmware.MsgsTx, n.Firmware.EventsPosted,
			100*n.PPCBusy, 100*n.HTReadBusy, 100*n.HTWrBusy)
	}
	fmt.Fprintf(&sb, "fabric: %d messages, %d chunks, %d link retries, %d delivered\n",
		s.Fabric.Messages, s.Fabric.Chunks, s.Fabric.LinkRetries, s.Fabric.Delivered)
	return sb.String()
}
