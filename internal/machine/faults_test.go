package machine

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"portals3/internal/core"
	"portals3/internal/model"
	"portals3/internal/sim"
	"portals3/internal/topo"
)

// onePut runs a single put of payload over machine m and returns the
// receiver's PUT_END event, the received bytes, and the completion time.
func onePut(t *testing.T, m *Machine, payload []byte) (core.Event, []byte, sim.Time) {
	t.Helper()
	var ev core.Event
	var got []byte
	var at sim.Time
	var b *App
	b, _ = m.Spawn(1, "rx", Generic, func(app *App) {
		buf, eq := recvSetup(t, app, len(payload), core.MDOpPut)
		ev = waitFor(t, app, eq, core.EventPutEnd)
		got = make([]byte, ev.MLength)
		buf.ReadAt(0, got)
		at = app.Proc.Now()
	})
	m.Spawn(0, "tx", Generic, func(app *App) {
		app.Proc.Sleep(50 * sim.Microsecond)
		src := app.Alloc(len(payload))
		src.WriteAt(0, payload)
		md, _ := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite})
		app.API.Put(md, core.NoAck, b.ID(), testPtl, 7, 0, 0)
	})
	m.Run()
	return ev, got, at
}

func TestLinkCRCRetriesAreTransparent(t *testing.T) {
	// A lossy link: the 16-bit link CRC detects and retries (§2); the
	// application sees intact data, just later.
	payload := make([]byte, 512<<10)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	clean := model.Defaults()
	dirty := model.Defaults()
	dirty.LinkBitErrorRate = 0.01

	mc := NewPair(clean)
	evC, gotC, atC := onePut(t, mc, payload)
	md := NewPair(dirty)
	evD, gotD, atD := onePut(t, md, payload)

	if evC.NIFail || evD.NIFail {
		t.Error("link-level retries must be invisible to Portals (no NI_FAIL)")
	}
	if !bytes.Equal(gotC, payload) || !bytes.Equal(gotD, payload) {
		t.Fatal("payload corrupted despite link CRC")
	}
	if md.Fab.Stats.LinkRetries == 0 {
		t.Error("lossy link produced no retries")
	}
	if atD <= atC {
		t.Errorf("retries should cost time: %v <= %v", atD, atC)
	}
}

func TestEndToEndCorruptionSurfacesAtAPI(t *testing.T) {
	// Corruption that evades the link CRC is caught by the end-to-end
	// CRC-32 (§2) and surfaces on the application's PUT_END as NIFail.
	m := NewPair(model.Defaults())
	m.Fab.CorruptNext(1)
	payload := make([]byte, 8192)
	ev, got, _ := onePut(t, m, payload)
	if !ev.NIFail {
		t.Error("corrupted delivery not flagged NIFail on the PUT_END event")
	}
	if bytes.Equal(got, payload) {
		t.Error("the payload was supposed to be corrupted")
	}
	// The receiver's status register records the CRC error.
	lib := m.Node(1).Generic.Lib(1)
	if lib.Status(core.SRCrcErrors) != 1 {
		t.Errorf("SRCrcErrors = %d", lib.Status(core.SRCrcErrors))
	}
}

func TestGoBackNMachineUnderLossyLinks(t *testing.T) {
	// Integration: go-back-n enabled machine with lossy links and a small
	// receive pool, a stream of messages — everything must arrive intact
	// and in order.
	p := model.Defaults()
	p.LinkBitErrorRate = 0.005
	p.NumGenericPendings = 32
	tp, _ := topo.New(2, 1, 1, false, false, false)
	m := New(p, tp)
	m.EnableGoBackN()

	const msgs = 30
	var got [][]byte
	var b *App
	b, _ = m.Spawn(1, "rx", Generic, func(app *App) {
		buf, eq := recvSetup(t, app, 4096, core.MDOpPut|core.MDManageRemote)
		for len(got) < msgs {
			ev, err := app.API.EQWait(eq)
			if err != nil {
				return
			}
			if ev.Type != core.EventPutEnd {
				continue
			}
			if ev.NIFail {
				t.Error("NIFail with zero end-to-end corruption configured")
			}
			data := make([]byte, ev.MLength)
			buf.ReadAt(0, data)
			got = append(got, data)
		}
	})
	m.Spawn(0, "tx", Generic, func(app *App) {
		app.Proc.Sleep(50 * sim.Microsecond)
		for i := 0; i < msgs; i++ {
			src := app.Alloc(1024)
			fillb := bytes.Repeat([]byte{byte(i + 1)}, 1024)
			src.WriteAt(0, fillb)
			eq, _ := app.API.EQAlloc(16)
			md, _ := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite, EQ: eq})
			app.API.Put(md, core.NoAck, b.ID(), testPtl, 7, 0, 0)
			waitFor(t, app, eq, core.EventSendEnd)
		}
	})
	m.RunUntil(100 * sim.Millisecond)
	if len(got) != msgs {
		t.Fatalf("received %d of %d over lossy links", len(got), msgs)
	}
	for i, data := range got {
		for _, v := range data {
			if v != byte(i+1) {
				t.Fatalf("message %d corrupted or reordered", i)
			}
		}
	}
	if m.Fab.Stats.LinkRetries == 0 {
		t.Error("no link retries on a lossy run")
	}
}

func TestMessageToDeadPidIsDiscarded(t *testing.T) {
	// A put to a pid with no process must vanish without wedging anything;
	// subsequent traffic flows normally.
	m := NewPair(model.Defaults())
	delivered := false
	var b *App
	b, _ = m.Spawn(1, "rx", Generic, func(app *App) {
		_, eq := recvSetup(t, app, 4096, core.MDOpPut)
		waitFor(t, app, eq, core.EventPutEnd)
		delivered = true
	})
	m.Spawn(0, "tx", Generic, func(app *App) {
		app.Proc.Sleep(50 * sim.Microsecond)
		src := app.Alloc(4096)
		md, _ := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite})
		// First to a dead pid, then to the real receiver.
		app.API.Put(md, core.NoAck, core.ProcessID{Nid: 1, Pid: 9999}, testPtl, 7, 0, 0)
		app.API.Put(md, core.NoAck, b.ID(), testPtl, 7, 0, 0)
	})
	m.Run()
	if !delivered {
		t.Error("traffic wedged after a message to a dead pid")
	}
	if m.Node(1).Generic.Drops == 0 {
		t.Error("dead-pid message not counted as a drop")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	// Two identical machines must produce bit-identical timing.
	run := func() sim.Time {
		m := NewPair(model.Defaults())
		_, _, at := onePut(t, m, make([]byte, 100000))
		return at
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("identical runs diverged: %v vs %v", a, b)
	}
}

func TestRandomTrafficEndToEndProperty(t *testing.T) {
	// Property over the full machine: random puts and gets of random sizes
	// in both directions, every delivery byte-exact, and accounting closed
	// (sends = deliveries, nothing lost, nothing duplicated).
	f := func(seed int64, script []byte) bool {
		if len(script) > 24 {
			script = script[:24]
		}
		rng := rand.New(rand.NewSource(seed))
		m := NewPair(model.Defaults())

		type xfer struct {
			get  bool
			size int
			seed byte
		}
		plan := make([]xfer, 0, len(script))
		for _, b := range script {
			plan = append(plan, xfer{
				get:  b&1 == 1,
				size: 1 + rng.Intn(20000),
				seed: b,
			})
		}
		okAll := true
		var b *App
		b, _ = m.Spawn(1, "peer", Generic, func(app *App) {
			// Expose a get-able pattern buffer and accept puts.
			eq, _ := app.API.EQAlloc(4096)
			// Bits 7: put inbox. Bits 8: a stable pattern exposed for gets.
			meP, _ := app.API.MEAttach(testPtl, core.ProcessID{Nid: core.NidAny, Pid: core.PidAny},
				7, 0, core.Retain, core.After)
			inbox := app.Alloc(32 << 10)
			app.API.MDAttach(meP, core.MDesc{Region: inbox, Threshold: core.ThresholdInfinite,
				Options: core.MDOpPut | core.MDManageRemote | core.MDEventStartDisable,
				EQ:      eq}, core.Retain)
			meG, _ := app.API.MEAttach(testPtl, core.ProcessID{Nid: core.NidAny, Pid: core.PidAny},
				8, 0, core.Retain, core.After)
			exposed := app.Alloc(32 << 10)
			pattern := make([]byte, 32<<10)
			for i := range pattern {
				pattern[i] = byte(i*13 + 7)
			}
			exposed.WriteAt(0, pattern)
			app.API.MDAttach(meG, core.MDesc{Region: exposed, Threshold: core.ThresholdInfinite,
				Options: core.MDOpGet | core.MDManageRemote | core.MDEventStartDisable,
				EQ:      eq}, core.Retain)
			// One END event per operation (START events disabled).
			for i := 0; i < len(plan); i++ {
				if _, err := app.API.EQWait(eq); err != nil {
					return
				}
			}
		})
		m.Spawn(0, "driver", Generic, func(app *App) {
			app.Proc.Sleep(50 * sim.Microsecond)
			eq, _ := app.API.EQAlloc(4096)
			for _, x := range plan {
				if x.get {
					dst := app.Alloc(x.size)
					md, _ := app.API.MDBind(core.MDesc{Region: dst, Threshold: core.ThresholdInfinite,
						Options: core.MDEventStartDisable, EQ: eq})
					if err := app.API.GetRegion(md, 0, x.size, b.ID(), testPtl, 8, 0); err != nil {
						okAll = false
						return
					}
					for {
						ev, err := app.API.EQWait(eq)
						if err != nil {
							okAll = false
							return
						}
						if ev.Type == core.EventReplyEnd {
							break
						}
					}
					got := make([]byte, x.size)
					dst.ReadAt(0, got)
					for i, v := range got {
						if v != byte(i*13+7) {
							okAll = false
							return
						}
					}
					app.API.MDUnlink(md)
				} else {
					src := app.Alloc(x.size)
					data := make([]byte, x.size)
					for i := range data {
						data[i] = x.seed + byte(i)
					}
					src.WriteAt(0, data)
					md, _ := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite,
						Options: core.MDEventStartDisable, EQ: eq})
					if err := app.API.PutRegion(md, 0, x.size, core.NoAck, b.ID(), testPtl, 7, 0, 0); err != nil {
						okAll = false
						return
					}
					for {
						ev, err := app.API.EQWait(eq)
						if err != nil {
							okAll = false
							return
						}
						if ev.Type == core.EventSendEnd {
							break
						}
					}
					app.API.MDUnlink(md)
				}
			}
		})
		m.RunUntil(sim.Second)
		lib := m.Node(1).Generic.Lib(b.Pid)
		sent := uint64(len(plan))
		recvd := lib.Status(core.SRRecvCount) + lib.Status(core.SRDropCount)
		return okAll && recvd == sent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRASDetectsPanickedNode(t *testing.T) {
	// Exhaust a starved receiver (panic policy), and let the heartbeat
	// monitor find the corpse while the rest of the machine keeps working.
	p := model.Defaults()
	p.NumGenericPendings = 2 // one RX pending: trivially exhaustible
	tp, _ := topo.New(3, 1, 1, false, false, false)
	m := New(p, tp)
	// Instantiate all three nodes before starting RAS.
	for i := topo.NodeID(0); i < 3; i++ {
		m.Node(i)
	}
	ras := m.StartRAS(20 * sim.Microsecond)

	var victim *App
	victim, _ = m.Spawn(1, "victim", Generic, func(app *App) {
		// Never drains its EQ: held pendings guarantee exhaustion.
		_, _ = recvSetup(t, app, 4096, core.MDOpPut)
		app.Proc.Sleep(10 * sim.Millisecond)
	})
	m.Spawn(0, "attacker", Generic, func(app *App) {
		app.Proc.Sleep(30 * sim.Microsecond)
		src := app.Alloc(16)
		md, _ := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite})
		for i := 0; i < 4; i++ {
			app.API.Put(md, core.NoAck, victim.ID(), testPtl, 7, 0, 0)
			app.Proc.Sleep(2 * sim.Microsecond)
		}
		// Traffic to a healthy node still works after the victim died.
	})
	survived := false
	var peer *App
	peer, _ = m.Spawn(2, "peer-rx", Generic, func(app *App) {
		_, eq := recvSetup(t, app, 4096, core.MDOpPut)
		waitFor(t, app, eq, core.EventPutEnd)
		survived = true
	})
	m.Spawn(0, "peer-tx", Generic, func(app *App) {
		app.Proc.Sleep(500 * sim.Microsecond) // after the victim's death
		src := app.Alloc(16)
		md, _ := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite})
		app.API.Put(md, core.NoAck, peer.ID(), testPtl, 7, 0, 0)
	})
	m.RunUntil(5 * sim.Millisecond)
	ras.Stop()

	fails := m.Failures()
	if len(fails) != 1 || fails[0].Node != 1 {
		t.Fatalf("failures = %v, want node 1", fails)
	}
	dead := ras.Dead()
	if len(dead) != 1 || dead[0].Node != 1 {
		t.Fatalf("RAS detected %v, want node 1", dead)
	}
	if dead[0].At <= fails[0].At {
		t.Error("RAS detection cannot precede the failure")
	}
	if dead[0].At-fails[0].At > 200*sim.Microsecond {
		t.Errorf("RAS took %v to notice; want within a few periods", dead[0].At-fails[0].At)
	}
	if !survived {
		t.Error("healthy nodes stopped working after an unrelated node death")
	}
	if !m.Node(1).NIC.Dead() {
		t.Error("panicked NIC not marked dead")
	}
}
