package machine

import (
	"fmt"
	"sort"

	"portals3/internal/flightrec"
	"portals3/internal/sim"
	"portals3/internal/topo"
)

// This file is the machine's forensics loop: the flight recorder wiring,
// the single failure funnel every detector reports through, the stall
// detector, and the dump snapshotting that turns a failure into a
// post-mortem artifact (rendered by cmd/p3dump).

// FailureKind classifies a FailureReport.
type FailureKind int

// Failure kinds.
const (
	// FailurePanic is a node firmware panic (resource exhaustion under the
	// panic policy, or an explicit OnPanic).
	FailurePanic FailureKind = iota
	// FailureStall is the stall detector firing: a node held open work with
	// no forward progress for a full detection window.
	FailureStall
	// FailureLedger is a fault-ledger imbalance at quiescence: an injected
	// fault was neither recovered nor condemned, so a message vanished.
	FailureLedger
)

func (k FailureKind) String() string {
	switch k {
	case FailurePanic:
		return "panic"
	case FailureStall:
		return "stall"
	case FailureLedger:
		return "ledger"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// FailureReport is the single funnel for machine-detected failures. Node
// panics, stall detections and ledger imbalances all land here; when the
// flight recorder is on, each report carries a dump snapshotted at
// detection time.
type FailureReport struct {
	Kind   FailureKind
	Node   topo.NodeID // -1 for machine-scoped failures (ledger)
	Reason string
	At     sim.Time
	// Dump is the machine snapshot taken at detection; nil when the flight
	// recorder is off.
	Dump *flightrec.Dump
}

func (r FailureReport) String() string {
	if r.Node < 0 {
		return fmt.Sprintf("%s at %v: %s", r.Kind, r.At, r.Reason)
	}
	return fmt.Sprintf("%s on node %d at %v: %s", r.Kind, r.Node, r.At, r.Reason)
}

// Reports returns every failure the machine has detected, in detection
// order.
func (m *Machine) Reports() []FailureReport {
	return append([]FailureReport(nil), m.reports...)
}

// reportFailure funnels a detection that may originate on a lane worker
// mid-window (a node panic): timestamped from the failing node's lane, no
// detection-time dump on a sharded machine — snapshotting other lanes
// mid-window would race. Detectors that run at safe points (barrier ticks,
// post-Run audits) call fileReport directly and do take dumps.
func (m *Machine) reportFailure(kind FailureKind, node topo.NodeID, reason string) {
	at := m.S.Now()
	if m.kern != nil && node >= 0 {
		at = m.laneSim(node).Now()
	}
	m.fileReport(kind, node, reason, at, m.kern == nil)
}

// fileReport is the single failure funnel: record the report and, when the
// flight recorder is running and the caller vouches for dump safety (dump
// is true only on the classic machine, at kernel barrier ticks, or after
// Run — anywhere every lane's state is quiescent and readable), attach a
// full machine dump stamped at the detection time.
func (m *Machine) fileReport(kind FailureKind, node topo.NodeID, reason string, at sim.Time, dump bool) {
	r := FailureReport{Kind: kind, Node: node, Reason: reason, At: at}
	if m.rec != nil && dump {
		r.Dump = m.takeDumpAt(reason, kind.String(), int(node), at)
	}
	m.mu.Lock()
	m.reports = append(m.reports, r)
	m.mu.Unlock()
}

// EnableFlightRecorder starts per-node flight recording, with ringEvents
// events retained per node (flightrec.DefaultRingEvents when <= 0), and
// returns the recorder. Existing and subsequently built nodes are wired.
// Like tracing and telemetry, enable it before spawning processes; a
// machine without it pays one pointer test per record site.
func (m *Machine) EnableFlightRecorder(ringEvents int) *flightrec.Recorder {
	if m.rec == nil {
		m.rec = flightrec.NewRecorder(ringEvents)
		if m.kern != nil {
			// Node-scoped spans at every shard count, so shards=1 and
			// shards=N dumps are byte-comparable (DESIGN.md §11).
			m.rec.UseNodeSpans()
		}
		for _, n := range m.nodes {
			m.wireFlightRec(n)
		}
	}
	return m.rec
}

// FlightRecorder returns the machine's recorder (nil unless enabled).
func (m *Machine) FlightRecorder() *flightrec.Recorder { return m.rec }

// wireFlightRec points one node's components at its ring.
func (m *Machine) wireFlightRec(n *Node) {
	r := m.rec.Ring(int(n.ID))
	n.NIC.FR = r
	n.Generic.FR = r
}

// TakeDump snapshots every instantiated node's flight-recorder ring and
// occupancy watermarks into a dump with the "snapshot" trigger — the
// end-of-run artifact. Returns nil when the recorder is off.
func (m *Machine) TakeDump(reason string) *flightrec.Dump {
	return m.takeDump(reason, "snapshot", -1)
}

func (m *Machine) takeDump(reason, trigger string, node int) *flightrec.Dump {
	return m.takeDumpAt(reason, trigger, node, m.S.Now())
}

// takeDumpAt snapshots with an explicit timestamp — the canonical tick
// time when called from a kernel barrier, where lane clocks sit at the
// previous horizon rather than the tick time itself.
func (m *Machine) takeDumpAt(reason, trigger string, node int, at sim.Time) *flightrec.Dump {
	if m.rec == nil {
		return nil
	}
	d := &flightrec.Dump{Reason: reason, Trigger: trigger, At: at, Node: node}
	ids := make([]topo.NodeID, 0, len(m.nodes))
	for id := range m.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := m.nodes[id]
		occ := n.NIC.Occupancy()
		occ.EvQueueDepth = n.Generic.EvQueueDepth()
		occ.EvQueueHigh = n.Generic.EvQueueHigh()
		ring := m.rec.Ring(int(id))
		d.Nodes = append(d.Nodes, flightrec.NodeDump{
			Node:    int(id),
			Occ:     occ,
			Dropped: ring.Dropped(),
			Events:  ring.Events(),
		})
	}
	return d
}

// checkLedger audits the fault plane at quiescence: every injected fault
// must have been recovered or condemned. An imbalance means a message
// vanished without an owner — it files a (single) FailureLedger report
// rather than panicking, so the run's dumps and telemetry survive for the
// post-mortem.
func (m *Machine) checkLedger() {
	if m.ledgerReported {
		return
	}
	st, ok := m.FaultSnapshot()
	if !ok || st.Open() == 0 {
		return
	}
	m.ledgerReported = true
	// Post-Run, so even a sharded machine is quiescent: dump safely.
	m.fileReport(FailureLedger, -1,
		fmt.Sprintf("fault ledger imbalance at quiescence: %d open (%s)", st.Open(), st),
		m.S.Now(), true)
}

// StallDetector watches every instantiated node for open work with no
// forward progress across a virtual-time window — the failure mode panics
// and ledgers cannot catch: nothing crashed, nothing vanished, the machine
// is simply stuck (a lost flow-control frame with no timer, a requeue that
// never pumps). It fires once per stall episode per node; progress re-arms
// it.
type StallDetector struct {
	m      *Machine
	window sim.Time
	halted bool

	lastProg map[topo.NodeID]uint64   // progress counter at the last tick
	lastMove map[topo.NodeID]sim.Time // when progress last advanced
	tripped  map[topo.NodeID]bool     // already reported this episode

	// Stalls counts detections, for tests and reports.
	Stalls int
}

// Stop halts the detector after the current tick.
func (sd *StallDetector) Stop() { sd.halted = true }

// StartStallDetector begins stall watching with the given detection window:
// a node holding open work (queued transmits, open receive streams, unacked
// go-back-n sends, undrained driver events) whose progress counter does not
// advance for a full window is reported as stalled, with a dump. Ticks run
// every window/4 and self-terminate with the event heap, like the sampler,
// so Machine.Run still returns. On a sharded machine ticks fire at kernel
// barriers (sim.Kernel.Every) — the lane workers have joined there, so the
// cross-node progress reads and the attached dump are race-free, and the
// canonical tick times make detections land at identical virtual times at
// every shard count.
func (m *Machine) StartStallDetector(window sim.Time) *StallDetector {
	if m.stall != nil {
		return m.stall
	}
	sd := &StallDetector{
		m:        m,
		window:   window,
		lastProg: make(map[topo.NodeID]uint64),
		lastMove: make(map[topo.NodeID]sim.Time),
		tripped:  make(map[topo.NodeID]bool),
	}
	m.stall = sd
	period := window / 4
	if period <= 0 {
		period = 1
	}
	if m.kern != nil {
		m.kern.Every(period, func(now sim.Time) {
			if !sd.halted {
				sd.checkAt(now)
			}
		})
		return sd
	}
	var tick func()
	tick = func() {
		if sd.halted {
			return
		}
		sd.checkAt(m.S.Now())
		if m.S.Pending() > 0 {
			m.S.After(period, tick)
		}
	}
	m.S.After(period, tick)
	return sd
}

// checkAt examines every node once at the given canonical time.
func (sd *StallDetector) checkAt(now sim.Time) {
	m := sd.m
	ids := make([]topo.NodeID, 0, len(m.nodes))
	for id := range m.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := m.nodes[id]
		prog := n.NIC.Progress()
		last, seen := sd.lastProg[id]
		if !seen || prog != last {
			sd.lastProg[id] = prog
			sd.lastMove[id] = now
			sd.tripped[id] = false
			continue
		}
		open := n.NIC.OpenWork() + n.Generic.EvQueueDepth()
		if open == 0 || sd.tripped[id] || now-sd.lastMove[id] < sd.window {
			continue
		}
		sd.tripped[id] = true
		sd.Stalls++
		if m.rec != nil {
			m.rec.Ring(int(id)).Record(flightrec.KStall, now, 0, uint32(open), 0)
		}
		// Stall checks run at safe points on every machine kind (classic
		// event, sharded barrier tick), so dumps are always allowed.
		m.fileReport(FailureStall, id, fmt.Sprintf(
			"no forward progress for %v with %d open work items", now-sd.lastMove[id], open),
			now, true)
	}
}
