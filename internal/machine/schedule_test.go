package machine

import (
	"bytes"
	"testing"

	"portals3/internal/core"
	"portals3/internal/fabric"
	"portals3/internal/model"
	"portals3/internal/sim"
	"portals3/internal/topo"
)

// runScheduledStream runs a go-back-n stream of msgs 1 KiB puts from node 0
// to node 3 of a 4-node line under the given fault schedule, on a sharded
// machine, and returns the concatenated received payloads, the fault-ledger
// snapshot, and the receiver's completion time.
func runScheduledStream(t *testing.T, spec string, shards, msgs int) ([]byte, fabric.FaultStats, sim.Time, *Machine) {
	t.Helper()
	sched, err := model.ParseSchedule(spec)
	if err != nil {
		t.Fatalf("ParseSchedule(%q): %v", spec, err)
	}
	p := model.Defaults()
	p.NumGenericPendings = 32
	p.Schedule = sched
	tp, _ := topo.New(4, 1, 1, false, false, false)
	m := NewSharded(p, tp, shards)
	m.EnableGoBackN()

	var got []byte
	var done sim.Time
	var b *App
	b, _ = m.Spawn(3, "rx", Generic, func(app *App) {
		buf, eq := recvSetup(t, app, 4096, core.MDOpPut|core.MDManageRemote)
		for n := 0; n < msgs; n++ {
			ev := waitFor(t, app, eq, core.EventPutEnd)
			if ev.NIFail {
				t.Error("NIFail under recoverable scheduled faults")
			}
			data := make([]byte, ev.MLength)
			buf.ReadAt(0, data)
			got = append(got, data...)
		}
		done = app.Proc.Now()
	})
	m.Spawn(0, "tx", Generic, func(app *App) {
		app.Proc.Sleep(50 * sim.Microsecond)
		eq, _ := app.API.EQAlloc(64)
		for i := 0; i < msgs; i++ {
			src := app.Alloc(1024)
			src.WriteAt(0, bytes.Repeat([]byte{byte(i + 1)}, 1024))
			md, _ := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite, EQ: eq})
			app.API.Put(md, core.NoAck, b.ID(), testPtl, 7, 0, 0)
			waitFor(t, app, eq, core.EventSendEnd)
		}
	})
	m.Run()
	if len(got) != msgs*1024 {
		t.Fatalf("shards=%d: received %d bytes, want %d", shards, len(got), msgs*1024)
	}
	st, ok := m.FaultSnapshot()
	if !ok {
		t.Fatalf("shards=%d: no fault plane despite a schedule", shards)
	}
	return got, st, done, m
}

func TestScheduledFaultsOnShardedMachine(t *testing.T) {
	// The timed-fault path that used to panic via seqOnly: link outages,
	// node stalls and a firmware restart declared in Params.Schedule, run on
	// sharded machines. Go-back-n must recover every scheduled blackout, the
	// ledger must balance at quiescence, and every shard count must agree
	// bit-for-bit on payloads, fault counters and completion time.
	const spec = "linkdown:1:X+:150us:100us,stall:3:400us:80us,restart:2:600us:50us"
	type outcome struct {
		got  []byte
		st   fabric.FaultStats
		done sim.Time
	}
	var ref outcome
	for i, shards := range []int{1, 2, 4} {
		got, st, done, m := runScheduledStream(t, spec, shards, 24)
		if st.Injected() == 0 {
			t.Errorf("shards=%d: schedule injected no faults (windows missed the stream?)", shards)
		}
		if st.Open() != 0 {
			t.Errorf("shards=%d: ledger imbalance at quiescence: %v", shards, st)
		}
		for _, r := range m.Reports() {
			t.Errorf("shards=%d: unexpected failure report: %s", shards, r.Kind)
		}
		if i == 0 {
			ref = outcome{got, st, done}
			continue
		}
		if !bytes.Equal(got, ref.got) {
			t.Errorf("shards=%d: payloads diverge from shards=1", shards)
		}
		if st != ref.st {
			t.Errorf("shards=%d: fault stats diverge: %v vs %v", shards, st, ref.st)
		}
		if done != ref.done {
			t.Errorf("shards=%d: completion time diverges: %v vs %v", shards, done, ref.done)
		}
	}
}

func TestScheduleValidatedAtConstruction(t *testing.T) {
	// A schedule referencing a link the topology does not have must panic at
	// machine construction, before any virtual time has passed.
	defer func() {
		if recover() == nil {
			t.Error("invalid schedule did not panic at construction")
		}
	}()
	p := model.Defaults()
	p.Schedule, _ = model.ParseSchedule("linkdown:0:Y+:100us:50us")
	tp, _ := topo.New(2, 1, 1, false, false, false)
	New(p, tp)
}

func TestLinkMeterFinalWindowWithoutSampler(t *testing.T) {
	// Telemetry enabled but no sampler: the only utilization window is the
	// one Machine.Run flushes at quiescence. It must end when the link went
	// idle (Server.BusyUntil), not at quiesce time, and report the busy
	// fraction undiluted by the drain tail — nonzero for any used link.
	m := NewPair(model.Defaults())
	m.EnableTelemetry()
	onePut(t, m, make([]byte, 256<<10))
	now := m.S.Now()
	found := 0
	for _, s := range m.Telemetry().AllSeries() {
		if s.Name != "fabric_link_utilization" {
			continue
		}
		found++
		if len(s.Samples) == 0 {
			t.Fatalf("series %v has no samples after flush", s.Labels)
		}
		last := s.Samples[len(s.Samples)-1]
		if last.V <= 0 {
			t.Errorf("series %v: final window utilization = %v, want > 0", s.Labels, last.V)
		}
		if last.T >= now {
			t.Errorf("series %v: final window ends at quiesce (%v), want the link-idle instant", s.Labels, last.T)
		}
	}
	if found == 0 {
		t.Fatal("no link utilization series exported (meters not flushed?)")
	}
}

func TestLinkMeterFinalWindowWithSampler(t *testing.T) {
	// With the sampler running, the transfer ends mid-window. On a classic
	// machine the last tick is itself the final event, so the final window
	// closes at quiesce with at most one period of idle tail — before the
	// fix it could cover the entire drain and read near-idle. The first
	// hop's meter must report nonzero utilization in its last window, with
	// strictly increasing window ends and no duplicate point from the
	// post-sample flush (Flush is idempotent against the closing sample).
	m := NewPair(model.Defaults())
	m.StartSampler(20 * sim.Microsecond)
	onePut(t, m, make([]byte, 256<<10))
	want := []struct{ Key, Value string }{{"dir", "X+"}, {"node", "0"}}
	var hop *struct {
		T sim.Time
		V float64
	}
	for _, s := range m.Telemetry().AllSeries() {
		if s.Name != "fabric_link_utilization" || len(s.Labels) != len(want) {
			continue
		}
		match := true
		for i, l := range s.Labels {
			if l.Key != want[i].Key || l.Value != want[i].Value {
				match = false
			}
		}
		if !match {
			continue
		}
		if len(s.Samples) < 2 {
			t.Fatalf("first-hop series has %d samples; want periodic windows plus the flushed final one", len(s.Samples))
		}
		for i := 1; i < len(s.Samples); i++ {
			if s.Samples[i].T <= s.Samples[i-1].T {
				t.Errorf("window ends not strictly increasing: %v then %v", s.Samples[i-1].T, s.Samples[i].T)
			}
		}
		last := s.Samples[len(s.Samples)-1]
		hop = &struct {
			T sim.Time
			V float64
		}{last.T, last.V}
	}
	if hop == nil {
		t.Fatal("no utilization series for the first hop (node 0, X+)")
	}
	if hop.V <= 0 {
		t.Errorf("final window utilization = %v, want > 0 for a transfer ending mid-window", hop.V)
	}
	if hop.T > m.S.Now() {
		t.Errorf("final window ends after quiesce (%v > %v)", hop.T, m.S.Now())
	}
}
