package machine

import (
	"bytes"
	"fmt"
	"testing"

	"portals3/internal/core"
	"portals3/internal/fabric"
	"portals3/internal/model"
	"portals3/internal/sim"
	"portals3/internal/topo"
)

// soakRules is the fault mix the soak and determinism tests run under:
// seeded probabilistic drop of data and both flow-control frame types,
// duplication, and delay — every fault class the go-back-n protocol must
// absorb.
func soakRules() []model.FaultRule {
	return []model.FaultRule{
		model.NewFault(model.FaultDrop, model.FrameData, 0.05),
		model.NewFault(model.FaultDrop, model.FrameFcAck, 0.05),
		model.NewFault(model.FaultDrop, model.FrameFcNack, 0.05),
		model.NewFault(model.FaultDup, model.FrameData, 0.03),
		model.NewFault(model.FaultDelay, model.FrameData, 0.03).WithDelay(5 * sim.Microsecond),
	}
}

// runFaultSoak streams msgs pipelined 1 KiB puts through a go-back-n pair
// whose fabric runs the soak fault mix under the given seed. It returns the
// received payloads (by slot), the virtual completion time, and the plane's
// final counters.
func runFaultSoak(t *testing.T, seed int64, msgs int) ([][]byte, sim.Time, fabric.FaultStats) {
	t.Helper()
	const msgBytes = 1024
	const window = 4 // puts in flight at once

	p := model.Defaults()
	p.NumGenericPendings = 32
	p.Faults = soakRules()
	p.FaultSeed = seed
	m := NewPair(p)
	m.EnableGoBackN()

	got := make([][]byte, msgs)
	var done sim.Time
	var b *App
	b, _ = m.Spawn(1, "rx", Generic, func(app *App) {
		buf, eq := recvSetup(t, app, msgs*msgBytes, core.MDOpPut|core.MDManageRemote)
		for seen := 0; seen < msgs; {
			ev, err := app.API.EQWait(eq)
			if err != nil {
				return
			}
			if ev.Type != core.EventPutEnd {
				continue
			}
			if ev.NIFail {
				t.Error("NIFail under loss: go-back-n must make faults invisible")
			}
			slot := int(ev.Offset) / msgBytes
			data := make([]byte, ev.MLength)
			buf.ReadAt(int(ev.Offset), data)
			got[slot] = data
			seen++
		}
		done = app.Proc.Now()
	})
	m.Spawn(0, "tx", Generic, func(app *App) {
		app.Proc.Sleep(50 * sim.Microsecond)
		eq, _ := app.API.EQAlloc(4 * msgs)
		inflight := 0
		for i := 0; i < msgs; i++ {
			src := app.Alloc(msgBytes)
			src.WriteAt(0, bytes.Repeat([]byte{byte(i + 1)}, msgBytes))
			md, _ := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite,
				Options: core.MDEventStartDisable, EQ: eq})
			app.API.Put(md, core.NoAck, b.ID(), testPtl, 7, i*msgBytes, 0)
			if inflight++; inflight == window {
				waitFor(t, app, eq, core.EventSendEnd)
				inflight--
			}
		}
		for ; inflight > 0; inflight-- {
			waitFor(t, app, eq, core.EventSendEnd)
		}
	})
	m.RunUntil(500 * sim.Millisecond)

	for i := topo.NodeID(0); i < 2; i++ {
		if m.Node(i).NIC.Dead() {
			t.Fatalf("seed %#x: node %d panicked under go-back-n", seed, i)
		}
	}
	return got, done, m.Faults().Snapshot()
}

// TestFaultSoakSeeded hammers the go-back-n pair with the full fault mix
// under several seeds: every message must arrive intact in its slot, no NIC
// may panic, and the plane's ledger must account for every injected fault
// (injected == recovered + condemned).
func TestFaultSoakSeeded(t *testing.T) {
	seeds := []int64{1, 0xfa017, 0x5ea57a7}
	msgs := 40
	if testing.Short() {
		seeds = seeds[:1]
		msgs = 20
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%#x", seed), func(t *testing.T) {
			got, done, fs := runFaultSoak(t, seed, msgs)
			if done == 0 {
				t.Fatalf("receiver did not complete: %v", fs)
			}
			for i, data := range got {
				if len(data) != 1024 {
					t.Fatalf("slot %d: got %d bytes", i, len(data))
				}
				for _, v := range data {
					if v != byte(i+1) {
						t.Fatalf("slot %d corrupted", i)
					}
				}
			}
			if fs.Injected() == 0 {
				t.Error("soak injected no faults; the mix or seed is miscalibrated")
			}
			if fs.Open() != 0 {
				t.Errorf("ledger does not balance: %v", fs)
			}
		})
	}
}

// TestFaultSoakDeterminism: two runs with the same fault seed are
// bit-identical — same completion time, same payloads, same fault counters.
func TestFaultSoakDeterminism(t *testing.T) {
	const seed = 0xfa017
	msgs := 30
	if testing.Short() {
		msgs = 15
	}
	gotA, doneA, fsA := runFaultSoak(t, seed, msgs)
	gotB, doneB, fsB := runFaultSoak(t, seed, msgs)
	if doneA == 0 || doneA != doneB {
		t.Errorf("completion times diverged under one seed: %v vs %v", doneA, doneB)
	}
	if fsA != fsB {
		t.Errorf("fault counters diverged under one seed:\n  %v\n  %v", fsA, fsB)
	}
	for i := range gotA {
		if !bytes.Equal(gotA[i], gotB[i]) {
			t.Fatalf("slot %d payloads diverged under one seed", i)
		}
	}
}

// TestStallNodeForHoldsThenDelivers: a stalled destination buffers arrivals
// in order and releases them at resume — a hung NIC that recovers.
func TestStallNodeForHoldsThenDelivers(t *testing.T) {
	p := model.Defaults()
	m := NewPair(p)
	m.EnableGoBackN()
	// Stall the receiver before the put's frames arrive, resume at 300µs.
	m.StallNodeFor(1, 300*sim.Microsecond)
	payload := bytes.Repeat([]byte{0x77}, 4096)
	_, got, at := onePut(t, m, payload)
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted across a stall window")
	}
	if at < 300*sim.Microsecond {
		t.Errorf("delivery at %v inside the stall window", at)
	}
	fs := m.Faults().Snapshot()
	if fs.Stalls == 0 {
		t.Error("no frames were held by the stall")
	}
	if fs.Open() != 0 {
		t.Errorf("ledger does not balance: %v", fs)
	}
}

// TestLinkDownWindowRecoveredByGoBackN: frames crossing a downed link are
// dropped for the window's duration; go-back-n redelivers once it is back.
func TestLinkDownWindowRecoveredByGoBackN(t *testing.T) {
	p := model.Defaults()
	m := NewPair(p)
	m.EnableGoBackN()
	m.LinkDownFor(0, topo.Dir{Axis: topo.X, Sign: 1}, 200*sim.Microsecond)
	payload := bytes.Repeat([]byte{0x3c}, 4096)
	_, got, at := onePut(t, m, payload)
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted across a link-down window")
	}
	if at < 200*sim.Microsecond {
		t.Errorf("delivery at %v inside the down window", at)
	}
	fs := m.Faults().Snapshot()
	if fs.DropsLink == 0 {
		t.Error("no frames dropped by the downed link")
	}
	if fs.Open() != 0 {
		t.Errorf("ledger does not balance: %v", fs)
	}
}
