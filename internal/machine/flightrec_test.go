package machine

import (
	"bytes"
	"fmt"
	"testing"

	"portals3/internal/core"
	"portals3/internal/flightrec"
	"portals3/internal/model"
	"portals3/internal/sim"
	"portals3/internal/topo"
)

// runStallScenario is the forensics acceptance scenario: a go-back-n pair
// whose outbound link goes down for well past the retransmission timeout,
// with the flight recorder and stall detector on. The sender's flow makes
// no progress for the whole window — the stall detector must fire and
// snapshot a dump — and once the link restores, go-back-n redelivers. It
// returns the machine, the delivered payload, and the end-of-run dump.
func runStallScenario(t *testing.T) (*Machine, []byte, []byte, *flightrec.Dump) {
	t.Helper()
	p := model.Defaults()
	m := NewPair(p)
	m.EnableGoBackN()
	m.EnableFlightRecorder(0)
	m.StartStallDetector(400 * sim.Microsecond) // > GbnTimeout (150us)
	m.LinkDownFor(0, topo.Dir{Axis: topo.X, Sign: 1}, 2*sim.Millisecond)
	payload := bytes.Repeat([]byte{0x5a}, 4096)
	_, got, at := onePut(t, m, payload)
	if at < 2*sim.Millisecond {
		t.Errorf("delivery at %v inside the down window", at)
	}
	return m, payload, got, m.TakeDump("end of run")
}

func TestStallDetectorFiresAndRecovers(t *testing.T) {
	m, payload, got, _ := runStallScenario(t)
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted across the stall")
	}

	var stall *FailureReport
	for i, r := range m.Reports() {
		if r.Kind == FailureStall {
			if stall != nil {
				t.Fatalf("stall reported more than once: %v", m.Reports())
			}
			stall = &m.Reports()[i]
		}
	}
	if stall == nil {
		t.Fatalf("no stall report; reports: %v", m.Reports())
	}
	if stall.Node != 0 {
		t.Errorf("stall on node %d, want 0 (the wedged sender)", stall.Node)
	}
	if stall.Dump == nil {
		t.Fatal("stall report carries no dump")
	}
	if stall.Dump.Trigger != "stall" {
		t.Errorf("dump trigger %q, want stall", stall.Dump.Trigger)
	}

	// The at-detection dump must show the wedged flow: unacked sends held on
	// node 0, a KStall marker, and the gbn retransmission churn.
	var n0 *flightrec.NodeDump
	for i := range stall.Dump.Nodes {
		if stall.Dump.Nodes[i].Node == 0 {
			n0 = &stall.Dump.Nodes[i]
		}
	}
	if n0 == nil {
		t.Fatal("stall dump has no node 0")
	}
	if n0.Occ.Unacked == 0 {
		t.Error("stall dump shows no unacked sends on the wedged node")
	}
	kinds := make(map[flightrec.Kind]int)
	for _, e := range n0.Events {
		kinds[e.Kind]++
	}
	for _, k := range []flightrec.Kind{flightrec.KStall, flightrec.KGbnTimeout, flightrec.KGbnRewind} {
		if kinds[k] == 0 {
			t.Errorf("stall dump node 0 has no %v event", k)
		}
	}
}

// TestStallDumpReconstructsCausalChain checks the tentpole contract: from
// the end-of-run dump alone, one span id reconstructs the faulted message's
// full hop timeline — serialized on the sender, rewound through go-back-n
// while the link was down, then accepted and delivered on the receiver.
func TestStallDumpReconstructsCausalChain(t *testing.T) {
	_, _, _, final := runStallScenario(t)
	spans := final.Spans()
	if len(spans) != 1 {
		t.Fatalf("Spans() = %v, want exactly the one data message", spans)
	}
	tl := final.Span(spans[0])

	// The hop chain must include, in time order: TX serialize (node 0),
	// at least one rewind (node 0), the accepted header (node 1), and the
	// delivery (node 1).
	idx := func(k flightrec.Kind, node int) int {
		for i, e := range tl {
			if e.Kind == k && e.Node == node {
				return i
			}
		}
		return -1
	}
	ser := idx(flightrec.KTxSerialize, 0)
	rew := idx(flightrec.KGbnRewind, 0)
	rxh := idx(flightrec.KRxHeader, 1)
	done := idx(flightrec.KRxDone, 1)
	if ser < 0 || rew < 0 || rxh < 0 || done < 0 {
		t.Fatalf("span %d missing hops: serialize=%d rewind=%d rx-header=%d rx-done=%d\n%v",
			spans[0], ser, rew, rxh, done, tl)
	}
	if !(ser < rew && rew < rxh && rxh < done) {
		t.Fatalf("hop chain out of order: serialize=%d rewind=%d rx-header=%d rx-done=%d",
			ser, rew, rxh, done)
	}
	// The rewound retransmissions carry the same span: more than one
	// KTxHeader for one serialize.
	headers := 0
	for _, e := range tl {
		if e.Kind == flightrec.KTxHeader {
			headers++
		}
	}
	if headers < 2 {
		t.Errorf("span has %d header injections, want >= 2 (original + retransmission)", headers)
	}
}

// TestStallDumpDeterministic: the same seeded scenario twice encodes to
// byte-identical dumps — both the at-detection stall dump and the
// end-of-run snapshot.
func TestStallDumpDeterministic(t *testing.T) {
	ma, _, _, finalA := runStallScenario(t)
	mb, _, _, finalB := runStallScenario(t)
	if !bytes.Equal(finalA.Bytes(), finalB.Bytes()) {
		t.Error("end-of-run dumps differ between same-seed runs")
	}
	ra, rb := ma.Reports(), mb.Reports()
	if len(ra) != len(rb) {
		t.Fatalf("report counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].Dump == nil || rb[i].Dump == nil {
			continue
		}
		if !bytes.Equal(ra[i].Dump.Bytes(), rb[i].Dump.Bytes()) {
			t.Errorf("report %d dumps differ between same-seed runs", i)
		}
	}
}

// TestPanicReportCarriesExhaustDump: an incast that exhausts the receiver
// under the panic policy must file a FailurePanic report through the
// failure funnel, with a dump whose ring shows the exhaustion event.
func TestPanicReportCarriesExhaustDump(t *testing.T) {
	p := model.Defaults()
	p.NumGenericPendings = 16 // starve the receiver
	const senders, msgs, msgBytes = 4, 30, 2048
	tp, err := topo.New(senders+1, 1, 1, false, false, false)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, tp)
	m.EnableFlightRecorder(0)

	recv, err := m.Spawn(0, "incast-recv", Generic, func(app *App) {
		eq, _ := app.API.EQAlloc(8192)
		me, _ := app.API.MEAttach(3, core.ProcessID{Nid: core.NidAny, Pid: core.PidAny}, 1, 0, core.Retain, core.After)
		buf := app.Alloc(msgBytes)
		app.API.MDAttach(me, core.MDesc{Region: buf, Threshold: core.ThresholdInfinite,
			Options: core.MDOpPut | core.MDManageRemote | core.MDEventStartDisable, EQ: eq}, core.Retain)
		for {
			if _, err := app.API.EQWait(eq); err != nil && err != core.ErrEQDropped {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for s := 1; s <= senders; s++ {
		if _, err := m.Spawn(topo.NodeID(s), fmt.Sprintf("incast-tx%d", s), Generic, func(app *App) {
			app.Proc.Sleep(50 * sim.Microsecond)
			eq, _ := app.API.EQAlloc(1024)
			src := app.Alloc(msgBytes)
			md, _ := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite,
				Options: core.MDEventStartDisable, EQ: eq})
			for i := 0; i < msgs; i++ {
				if err := app.API.Put(md, core.NoAck, recv.ID(), 3, 1, 0, 0); err != nil {
					return
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	m.RunUntil(200 * sim.Millisecond)

	var panicReport *FailureReport
	for i, r := range m.Reports() {
		if r.Kind == FailurePanic {
			panicReport = &m.Reports()[i]
			break
		}
	}
	if panicReport == nil {
		t.Fatalf("incast did not file a panic report; reports: %v", m.Reports())
	}
	if panicReport.Node != 0 {
		t.Errorf("panic on node %d, want 0", panicReport.Node)
	}
	if len(m.Failures()) == 0 {
		t.Error("Failures() lost the panic (must stay populated alongside Reports)")
	}
	if panicReport.Dump == nil {
		t.Fatal("panic report carries no dump")
	}
	found := false
	for _, nd := range panicReport.Dump.Nodes {
		if nd.Node != 0 {
			continue
		}
		for _, e := range nd.Events {
			if e.Kind == flightrec.KExhaust {
				found = true
			}
		}
	}
	if !found {
		t.Error("panic dump has no KExhaust event on the panicked node")
	}
}

// TestLedgerImbalanceFilesReport: a run where an injected drop is never
// recovered (no go-back-n) leaves the fault ledger open at quiescence;
// Machine.Run must file a single machine-scoped FailureLedger report with a
// dump, not panic.
func TestLedgerImbalanceFilesReport(t *testing.T) {
	p := model.Defaults()
	p.Faults = []model.FaultRule{model.NewFault(model.FaultDrop, model.FrameData, 1)}
	m := NewPair(p)
	m.EnableFlightRecorder(0)
	var b *App
	b, _ = m.Spawn(1, "rx", Generic, func(app *App) {
		recvSetup(t, app, 4096, core.MDOpPut|core.MDManageRemote)
	})
	m.Spawn(0, "tx", Generic, func(app *App) {
		app.Proc.Sleep(10 * sim.Microsecond)
		eq, _ := app.API.EQAlloc(8)
		src := app.Alloc(8)
		md, _ := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite,
			Options: core.MDEventStartDisable, EQ: eq})
		app.API.Put(md, core.NoAck, b.ID(), testPtl, 7, 0, 0)
	})
	m.Run()
	m.Run() // a second quiescence must not duplicate the report

	var ledgers []FailureReport
	for _, r := range m.Reports() {
		if r.Kind == FailureLedger {
			ledgers = append(ledgers, r)
		}
	}
	if len(ledgers) != 1 {
		t.Fatalf("got %d ledger reports, want 1; reports: %v", len(ledgers), m.Reports())
	}
	if ledgers[0].Node != -1 {
		t.Errorf("ledger report node %d, want -1 (machine scope)", ledgers[0].Node)
	}
	if ledgers[0].Dump == nil {
		t.Error("ledger report carries no dump")
	}
}

// TestOccupancyGaugesExported: the sampler must export the firmware
// occupancy series and watermark gauges per node.
func TestOccupancyGaugesExported(t *testing.T) {
	p := model.Defaults()
	m := NewPair(p)
	m.StartSampler(20 * sim.Microsecond)
	payload := bytes.Repeat([]byte{0x11}, 4096)
	_, got, _ := onePut(t, m, payload)
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted")
	}
	e := m.Telemetry().Snapshot(m.S.Now())
	wantSeries := map[string]bool{
		"node_fw_rx_pendings_free": false, "node_fw_tx_pendings_free": false,
		"node_fw_sources_free": false, "node_evq_depth": false,
	}
	for _, s := range e.Series {
		if _, ok := wantSeries[s.Name]; ok && len(s.Values) > 0 {
			wantSeries[s.Name] = true
		}
	}
	for name, seen := range wantSeries {
		if !seen {
			t.Errorf("series %s missing from export", name)
		}
	}
	wantGauges := map[string]bool{
		"node_fw_rx_pendings_low": false, "node_fw_tx_pendings_low": false,
		"node_fw_sources_low": false, "node_evq_high": false,
	}
	for _, mt := range e.Metrics {
		if _, ok := wantGauges[mt.Name]; ok {
			wantGauges[mt.Name] = true
			if mt.Name == "node_fw_tx_pendings_low" && mt.Labels == `node="0"` && mt.Value >= float64(p.NumGenericPendings/2) {
				t.Errorf("tx pendings low-water %g never moved below the pool total", mt.Value)
			}
		}
	}
	for name, seen := range wantGauges {
		if !seen {
			t.Errorf("gauge %s missing from export", name)
		}
	}
}

// TestFlightRecorderOffIsFree: with the recorder off, nothing is recorded
// and no dump is produced — the off path must stay nil end to end.
func TestFlightRecorderOffIsFree(t *testing.T) {
	p := model.Defaults()
	m := NewPair(p)
	payload := bytes.Repeat([]byte{0x22}, 1024)
	_, got, _ := onePut(t, m, payload)
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted")
	}
	if m.FlightRecorder() != nil {
		t.Fatal("recorder exists without EnableFlightRecorder")
	}
	if d := m.TakeDump("x"); d != nil {
		t.Fatal("TakeDump produced a dump with the recorder off")
	}
}
