package machine

import (
	"portals3/internal/fabric"
	"portals3/internal/model"
	"portals3/internal/sim"
	"portals3/internal/topo"
)

// Declarative fault-schedule application (model.FaultSchedule): the path
// that finally runs timed faults on sharded machines. The runtime scenario
// helpers (StallNodeFor, LinkDownFor) mutate the fault plane from the
// driver goroutine, which only a single-lane machine can tolerate; a
// schedule instead compiles to events planted at machine construction, so
// by the time the kernel runs, every fault activation is an ordinary
// lane-local event.
//
// Sharded machines keep one fault plane per source node (injections are
// filtered where they happen), so link-down and stall state must be
// visible to every plane: each timed entry becomes one event per node, on
// that node's own lane, mutating only that node's plane. Events are
// planted iterating nodes in id order with the schedule in spec order —
// insertion order per (lane, time) is therefore a pure function of the
// schedule and the node→lane map's restriction to that lane, making the
// whole application bit-identical at every shard count. Stall resumes
// flush held injections through the normal hopwise launch path, whose
// first cross-lane post is at least one link occupancy plus HopLatency
// away — beyond the kernel's lookahead horizon, like any injection.
//
// Burst entries never appear here: they compile to windowed fault rules
// installed on the planes at construction (FaultSchedule.Rules).

// applySchedule plants Params.Schedule's timed entries. Called once from
// New/NewSharded; panics on a schedule that does not validate against the
// machine's topology, before any virtual time has passed.
func (m *Machine) applySchedule() {
	if len(m.P.Schedule) == 0 {
		return
	}
	if err := m.P.Schedule.Validate(m.Topo); err != nil {
		panic("machine: " + err.Error())
	}
	timed := m.P.Schedule.Timed()
	if len(timed) == 0 {
		return
	}
	if m.kern == nil {
		m.planScheduleOn(m.S, m.Fab.Faults(), -1, timed)
		return
	}
	for id := 0; id < m.Topo.Nodes(); id++ {
		nid := topo.NodeID(id)
		m.planScheduleOn(m.laneSim(nid), m.cl.Plane(nid), id, timed)
	}
}

// planScheduleOn plants one plane's view of the timed entries on its
// lane's simulator. self is the plane's node id on sharded machines (each
// node owns a plane) and -1 on a classic machine (one plane sees all).
func (m *Machine) planScheduleOn(s *sim.Sim, pl *fabric.FaultPlane, self int, timed []model.ScheduleEntry) {
	for _, e := range timed {
		e := e
		node := topo.NodeID(e.Node)
		switch e.Kind {
		case model.SchedLinkDown:
			s.At(e.At, func() { pl.LinkDown(node, e.Dir) })
			s.At(e.At+e.Dur, func() { pl.LinkUp(node, e.Dir) })
		case model.SchedStall:
			s.At(e.At, func() { pl.StallNode(node) })
			s.At(e.At+e.Dur, func() { pl.ResumeNode(node) })
		case model.SchedRestart:
			// A restarting node neither receives (stall) nor forwards: every
			// link leaving its router goes down, so traffic routed through it
			// is lost and recovered by go-back-n, as on the real machine.
			dirs := nodeDirs(m.Topo, node)
			s.At(e.At, func() {
				pl.StallNode(node)
				for _, d := range dirs {
					pl.LinkDown(node, d)
				}
			})
			s.At(e.At+e.Dur, func() {
				for _, d := range dirs {
					pl.LinkUp(node, d)
				}
				pl.ResumeNode(node)
			})
		case model.SchedCorrupt:
			// Planted ledger corruption lands on the affected node's own
			// plane (the classic machine's single plane sees everything).
			if self == -1 || self == e.Node {
				s.At(e.At, func() { pl.CorruptLedger() })
			}
		}
	}
}

// nodeDirs lists the router ports of node that lead somewhere.
func nodeDirs(tp *topo.Topology, node topo.NodeID) []topo.Dir {
	all := []topo.Dir{
		{Axis: topo.X, Sign: 1}, {Axis: topo.X, Sign: -1},
		{Axis: topo.Y, Sign: 1}, {Axis: topo.Y, Sign: -1},
		{Axis: topo.Z, Sign: 1}, {Axis: topo.Z, Sign: -1},
	}
	out := make([]topo.Dir, 0, 6)
	for _, d := range all {
		if _, ok := tp.Neighbor(node, d); ok {
			out = append(out, d)
		}
	}
	return out
}
