package machine

import (
	"strings"
	"testing"

	"portals3/internal/core"
	"portals3/internal/model"
	"portals3/internal/sim"
	"portals3/internal/topo"
)

// pingLatency measures one-way put latency between two arbitrary nodes of
// an existing machine.
func pingLatency(t *testing.T, m *Machine, na, nb topo.NodeID, size int) sim.Time {
	t.Helper()
	var rtt sim.Time
	var a, b *App
	b, _ = m.Spawn(nb, "pong", Generic, func(app *App) {
		_, eq := recvSetup(t, app, 1<<16, core.MDOpPut)
		seq, _ := app.API.EQAlloc(16)
		src := app.Alloc(size)
		md, _ := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite, EQ: seq})
		for i := 0; i < 4; i++ {
			waitFor(t, app, eq, core.EventPutEnd)
			app.API.PutRegion(md, 0, size, core.NoAck, a.ID(), testPtl, 7, 0, 0)
		}
	})
	a, _ = m.Spawn(na, "ping", Generic, func(app *App) {
		_, eq := recvSetup(t, app, 1<<16, core.MDOpPut)
		app.Proc.Sleep(100 * sim.Microsecond)
		seq, _ := app.API.EQAlloc(16)
		src := app.Alloc(size)
		md, _ := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite, EQ: seq})
		// Warmup round, then three timed rounds.
		app.API.PutRegion(md, 0, size, core.NoAck, b.ID(), testPtl, 7, 0, 0)
		waitFor(t, app, eq, core.EventPutEnd)
		t0 := app.Proc.Now()
		for i := 0; i < 3; i++ {
			app.API.PutRegion(md, 0, size, core.NoAck, b.ID(), testPtl, 7, 0, 0)
			waitFor(t, app, eq, core.EventPutEnd)
		}
		rtt = (app.Proc.Now() - t0) / 3
	})
	m.Run()
	return rtt / 2
}

func TestLatencyGrowsWithDistanceOnRedStorm(t *testing.T) {
	// §1: the requirement was 2 µs nearest-neighbor and 5 µs between the
	// two furthest nodes — a wire-distance delta of about 3 µs. Measure a
	// 1-hop pair against the diameter pair on the full Red Storm topology
	// (lazy node construction keeps this cheap).
	rs := topo.RedStorm()
	near := New(model.Defaults(), rs)
	lNear := pingLatency(t, near, rs.ID(topo.Coord{X: 0, Y: 0, Z: 0}), rs.ID(topo.Coord{X: 1, Y: 0, Z: 0}), 8)

	far := New(model.Defaults(), rs)
	src := rs.ID(topo.Coord{X: 0, Y: 0, Z: 0})
	dst := rs.ID(topo.Coord{X: 26, Y: 15, Z: 12}) // diameter: 26+15+12 = 53 hops
	if got := rs.Hops(src, dst); got != rs.Diameter() {
		t.Fatalf("test pair spans %d hops, diameter is %d", got, rs.Diameter())
	}
	lFar := pingLatency(t, far, src, dst, 8)

	delta := lFar - lNear
	p := model.Defaults()
	wire := sim.Time(rs.Diameter()-1) * (p.HopLatency + sim.BytesAt(64, p.LinkBps))
	if delta != wire {
		t.Errorf("distance delta = %v, want exactly the wire time of %d extra hops = %v",
			delta, rs.Diameter()-1, wire)
	}
	if delta < 2*sim.Microsecond || delta > 5*sim.Microsecond {
		t.Errorf("distance delta %v outside the §1 requirement band", delta)
	}
}

func TestIncastSaturatesSharedResources(t *testing.T) {
	// Three senders stream 4 MB each into one node. The aggregate offered
	// load (3 × 1.1 GB/s of HT reads) exceeds both the receiver's HT write
	// path and the final link, so total goodput must settle at the
	// receiver-side bottleneck, not the offered load.
	p := model.Defaults()
	tp, _ := topo.New(4, 1, 1, false, false, false)
	m := New(p, tp)
	const per = 4 << 20
	var doneAt sim.Time
	var first sim.Time
	received := 0
	recv, _ := m.Spawn(3, "sink", Generic, func(app *App) {
		eq, _ := app.API.EQAlloc(1024)
		me, _ := app.API.MEAttach(testPtl, core.ProcessID{Nid: core.NidAny, Pid: core.PidAny}, 7, 0, core.Retain, core.After)
		app.API.MDAttach(me, core.MDesc{Region: app.Alloc(per), Threshold: core.ThresholdInfinite,
			Options: core.MDOpPut | core.MDManageRemote | core.MDEventStartDisable, EQ: eq}, core.Retain)
		for received < 3 {
			ev, err := app.API.EQWait(eq)
			if err != nil {
				return
			}
			if ev.Type == core.EventPutEnd {
				if received == 0 && first == 0 {
					first = app.Proc.Now()
				}
				received++
				doneAt = app.Proc.Now()
			}
		}
	})
	for s := 0; s < 3; s++ {
		m.Spawn(topo.NodeID(s), "src", Generic, func(app *App) {
			app.Proc.Sleep(50 * sim.Microsecond)
			src := app.Alloc(per)
			md, _ := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite})
			app.API.Put(md, core.NoAck, recv.ID(), testPtl, 7, 0, 0)
		})
	}
	m.Run()
	if received != 3 {
		t.Fatalf("received %d of 3", received)
	}
	elapsed := (doneAt - 50*sim.Microsecond).Seconds()
	aggGBs := float64(3*per) / elapsed / 1e9
	// Receiver bottleneck: min(HT write 2.2, link 2.5) = 2.2 GB/s.
	if aggGBs > 2.3 || aggGBs < 1.7 {
		t.Errorf("incast aggregate %.2f GB/s; want ≈2.2 (receiver HT write bound)", aggGBs)
	}
}

func TestParallelDisjointFlowsDoNotInterfere(t *testing.T) {
	// Flows 0→1 and 2→3 share nothing; each must run at full speed
	// simultaneously (the machine has no hidden global bottleneck).
	p := model.Defaults()
	tp, _ := topo.New(4, 1, 1, false, false, false)
	m := New(p, tp)
	const per = 2 << 20
	var done [2]sim.Time
	for f := 0; f < 2; f++ {
		f := f
		rx, tx := topo.NodeID(2*f+1), topo.NodeID(2*f)
		var dst *App
		dst, _ = m.Spawn(rx, "rx", Generic, func(app *App) {
			_, eq := recvSetup(t, app, per, core.MDOpPut)
			waitFor(t, app, eq, core.EventPutEnd)
			done[f] = app.Proc.Now()
		})
		m.Spawn(tx, "tx", Generic, func(app *App) {
			app.Proc.Sleep(50 * sim.Microsecond)
			src := app.Alloc(per)
			md, _ := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite})
			app.API.Put(md, core.NoAck, dst.ID(), testPtl, 7, 0, 0)
		})
	}
	m.Run()
	if done[0] != done[1] {
		t.Errorf("disjoint flows finished at %v and %v; they share nothing and must tie", done[0], done[1])
	}
	single := sim.BytesAt(per, p.HTReadBps)
	if done[0]-50*sim.Microsecond > single+single/10 {
		t.Errorf("flow took %v, far above the solo transfer time %v", done[0]-50*sim.Microsecond, single)
	}
}

func TestStatsSnapshot(t *testing.T) {
	m := NewPair(model.Defaults())
	var b *App
	b, _ = m.Spawn(1, "rx", Generic, func(app *App) {
		_, eq := recvSetup(t, app, 4096, core.MDOpPut)
		waitFor(t, app, eq, core.EventPutEnd)
	})
	m.Spawn(0, "tx", Generic, func(app *App) {
		app.Proc.Sleep(20 * sim.Microsecond)
		src := app.Alloc(2048)
		md, _ := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite})
		app.API.Put(md, core.NoAck, b.ID(), testPtl, 7, 0, 0)
	})
	m.Run()
	st := m.Stats()
	if len(st.Nodes) != 2 {
		t.Fatalf("stats cover %d nodes", len(st.Nodes))
	}
	if st.Nodes[1].Interrupts == 0 || st.Nodes[1].Firmware.HeadersRx == 0 {
		t.Error("receiver-side counters empty")
	}
	if st.Nodes[0].Firmware.MsgsTx == 0 {
		t.Error("sender-side counters empty")
	}
	if st.Fabric.Delivered == 0 {
		t.Error("fabric counters empty")
	}
	if st.Nodes[0].SRAMUsed <= 0 || st.Nodes[0].SRAMFree <= 0 {
		t.Error("SRAM accounting missing")
	}
	out := st.String()
	for _, want := range []string{"node", "catamount", "fabric:"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered stats missing %q:\n%s", want, out)
		}
	}
}

func TestTracingCapturesFullMessageLifecycle(t *testing.T) {
	m := NewPair(model.Defaults())
	tr := m.EnableTracing()
	var b *App
	b, _ = m.Spawn(1, "rx", Generic, func(app *App) {
		_, eq := recvSetup(t, app, 8192, core.MDOpPut)
		waitFor(t, app, eq, core.EventPutEnd)
	})
	m.Spawn(0, "tx", Generic, func(app *App) {
		app.Proc.Sleep(20 * sim.Microsecond)
		src := app.Alloc(4096)
		eq, _ := app.API.EQAlloc(16)
		md, _ := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite, EQ: eq})
		app.API.Put(md, core.NoAck, b.ID(), testPtl, 7, 0, 0)
		waitFor(t, app, eq, core.EventSendEnd)
	})
	m.Run()
	// Every layer must appear: wire, firmware, interrupts, Portals events.
	seen := map[string]bool{}
	for _, r := range tr.Records() {
		seen[r.Cat+"/"+r.Name] = true
	}
	for _, want := range []string{
		"net/tx PUT", "net/rx hdr PUT", "net/rx last chunk",
		"fw/rx-header", "fw/tx-program", "fw/tx-done", "fw/rx-done",
		"os/interrupt", "os/portals-processing",
		"portals/PUT_END", "portals/SEND_END",
	} {
		if !seen[want] {
			t.Errorf("trace missing %q; captured kinds: %d", want, len(seen))
		}
	}
	// Timestamps must be monotone nonnegative and spans well-formed.
	for _, r := range tr.Records() {
		if r.TS < 0 || r.Dur < 0 {
			t.Fatalf("negative time in record %+v", r)
		}
	}
}
