package machine

import (
	"bytes"
	"strings"
	"testing"

	"portals3/internal/core"
	"portals3/internal/fabric"
	"portals3/internal/fw"
	"portals3/internal/model"
	"portals3/internal/sim"
	"portals3/internal/telemetry"
	"portals3/internal/topo"
)

// pingPongWithTelemetry runs k put rounds of size bytes on a fresh pair
// with telemetry enabled and returns the machine.
func pingPongWithTelemetry(t *testing.T, size, k int, sample sim.Time) *Machine {
	t.Helper()
	m := NewPair(model.Defaults())
	m.EnableTelemetry()
	if sample > 0 {
		m.StartSampler(sample)
	}

	// The receive descriptor's locally managed offset advances with every
	// arriving put, so the buffer must hold the whole block.
	if size*k > 1<<20 {
		t.Fatalf("test block %d bytes exceeds the receive buffer", size*k)
	}
	var a, b *App
	b, _ = m.Spawn(1, "pong", Generic, func(app *App) {
		buf, eq := recvSetup(t, app, 1<<20, core.MDOpPut)
		_ = buf
		src := app.Alloc(size)
		md, err := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite, EQ: eq})
		if err != nil {
			t.Errorf("MDBind: %v", err)
			return
		}
		for i := 0; i < k; i++ {
			waitFor(t, app, eq, core.EventPutEnd)
			if err := app.API.Put(md, core.NoAck, a.ID(), testPtl, 7, 0, 0); err != nil {
				t.Errorf("Put: %v", err)
				return
			}
		}
	})
	a, _ = m.Spawn(0, "ping", Generic, func(app *App) {
		buf, eq := recvSetup(t, app, 1<<20, core.MDOpPut)
		_ = buf
		app.Proc.Sleep(50 * sim.Microsecond) // let the peer post its ME
		src := app.Alloc(size)
		md, err := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite, EQ: eq})
		if err != nil {
			t.Errorf("MDBind: %v", err)
			return
		}
		for i := 0; i < k; i++ {
			if err := app.API.Put(md, core.NoAck, b.ID(), testPtl, 7, 0, 0); err != nil {
				t.Errorf("Put: %v", err)
				return
			}
			waitFor(t, app, eq, core.EventPutEnd)
		}
	})
	m.Run()
	return m
}

// TestTelemetryAttributionEndToEnd is the PR's acceptance check: a real
// exchange produces per-segment latency that partitions the end-to-end
// time (well within the 1% budget — exactly, by construction), and the
// decomposition survives both export formats.
func TestTelemetryAttributionEndToEnd(t *testing.T) {
	const rounds = 20
	m := pingPongWithTelemetry(t, 4096, rounds, 0)
	tel := m.Telemetry()
	if tel == nil {
		t.Fatal("telemetry not enabled")
	}

	e2e := tel.E2EHist()
	if e2e.Count() == 0 {
		t.Fatal("no completed message records")
	}
	// Both directions of every round are tracked.
	if e2e.Count() != 2*rounds {
		t.Errorf("completed records = %d, want %d", e2e.Count(), 2*rounds)
	}
	var segSum int64
	for s := telemetry.Seg(0); s < telemetry.NumSegs; s++ {
		h := tel.SegmentHist(s)
		if h.Count() != e2e.Count() {
			t.Errorf("segment %v count = %d, want %d", s, h.Count(), e2e.Count())
		}
		if h.Sum() <= 0 {
			t.Errorf("segment %v has zero total time", s)
		}
		segSum += h.Sum()
	}
	if segSum != e2e.Sum() {
		t.Errorf("segment sum %d != e2e sum %d", segSum, e2e.Sum())
	}

	// The decomposition must survive the JSON export round trip and the
	// Breakdown view must agree within the acceptance tolerance.
	var js bytes.Buffer
	if err := tel.WriteJSON(&js, m.S.Now()); err != nil {
		t.Fatal(err)
	}
	exp, err := telemetry.ReadJSON(&js)
	if err != nil {
		t.Fatal(err)
	}
	bd, ok := exp.Breakdown()
	if !ok {
		t.Fatal("exported snapshot has no breakdown")
	}
	if bd.Messages != e2e.Count() {
		t.Errorf("breakdown messages = %d, want %d", bd.Messages, e2e.Count())
	}
	if bd.DriftPct > 1.0 {
		t.Errorf("segment sum drifts %.4f%% from e2e, budget is 1%%", bd.DriftPct)
	}

	// And the Prometheus rendering carries every stage.
	var prom bytes.Buffer
	if err := tel.WritePrometheus(&prom, m.S.Now()); err != nil {
		t.Fatal(err)
	}
	for s := telemetry.Seg(0); s < telemetry.NumSegs; s++ {
		want := `portals_msg_segment_ps_count{stage="` + s.String() + `"}`
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prometheus export missing %s", want)
		}
	}
}

// TestTelemetryDeterministic: two identical runs export byte-identical
// telemetry — the simulator's determinism contract extends to the
// observability layer.
func TestTelemetryDeterministic(t *testing.T) {
	run := func() (string, string) {
		m := pingPongWithTelemetry(t, 1024, 8, 100*sim.Microsecond)
		var prom, js bytes.Buffer
		if err := m.Telemetry().WritePrometheus(&prom, m.S.Now()); err != nil {
			t.Fatal(err)
		}
		if err := m.Telemetry().WriteJSON(&js, m.S.Now()); err != nil {
			t.Fatal(err)
		}
		return prom.String(), js.String()
	}
	p1, j1 := run()
	p2, j2 := run()
	if p1 != p2 {
		t.Error("prometheus export differs between identical runs")
	}
	if j1 != j2 {
		t.Error("JSON export differs between identical runs")
	}
}

// TestSamplerTicksAndSelfTerminates: the RAS sampler takes periodic
// snapshots in virtual time, its counter series are monotone, and — unlike
// the heartbeat monitor — it does not keep the event loop alive (Run
// returning at all proves that).
func TestSamplerTicksAndSelfTerminates(t *testing.T) {
	m := pingPongWithTelemetry(t, 16384, 10, 50*sim.Microsecond)
	sp := m.sampler
	if sp == nil {
		t.Fatal("sampler not installed")
	}
	if sp.Samples < 2 {
		t.Fatalf("sampler took %d samples, want several", sp.Samples)
	}
	tel := m.Telemetry()
	for _, name := range []string{
		"fabric_messages_total", "fabric_delivered_total", "sim_events_fired_total",
	} {
		s := tel.SeriesFor(name)
		if len(s.Samples) != sp.Samples {
			t.Errorf("series %s has %d samples, want %d", name, len(s.Samples), sp.Samples)
		}
		for i := 1; i < len(s.Samples); i++ {
			if s.Samples[i].V < s.Samples[i-1].V {
				t.Errorf("series %s not monotone at %d: %v -> %v",
					name, i, s.Samples[i-1].V, s.Samples[i].V)
			}
			if s.Samples[i].T <= s.Samples[i-1].T {
				t.Errorf("series %s time not increasing at %d", name, i)
			}
		}
	}
	// Per-node series exist for both nodes.
	for node := 0; node < 2; node++ {
		s := tel.SeriesFor("node_fw_heartbeat_total", telemetry.NodeLabel(node))
		if len(s.Samples) == 0 {
			t.Errorf("node %d heartbeat series empty", node)
		}
	}
	// The per-node interrupt dispatch histogram is live in generic mode.
	h := tel.Reg.Histogram("host_irq_dispatch_ps", telemetry.NodeLabel(0))
	if h.Count() == 0 {
		t.Error("interrupt dispatch histogram empty on node 0")
	}
	if min := h.Min(); min < int64(m.P.InterruptOverhead) {
		t.Errorf("irq dispatch min %d below the %d ps interrupt overhead floor",
			min, int64(m.P.InterruptOverhead))
	}
}

// TestStatsStringGolden pins the RAS table rendering.
func TestStatsStringGolden(t *testing.T) {
	s := Stats{
		Nodes: []NodeStats{
			{
				Node: 0, OS: "catamount", Interrupts: 42, Coalesced: 7,
				Firmware: fw.Stats{HeadersRx: 120, MsgsTx: 118, EventsPosted: 240},
				PPCBusy:  0.25, HTReadBusy: 0.031, HTWrBusy: 0.125,
			},
			{
				Node: 1, OS: "linux", Interrupts: 9, Coalesced: 0,
				Firmware: fw.Stats{HeadersRx: 5, MsgsTx: 6, EventsPosted: 11},
			},
		},
		Fabric: fabric.Stats{Messages: 124, Chunks: 1000, LinkRetries: 2, Delivered: 123},
	}
	want := "" +
		"  node os            irq   coal  hdrs-rx  msgs-tx   events    ppc%   htrd%   htwr%\n" +
		"     0 catamount      42      7      120      118      240   25.0%    3.1%   12.5%\n" +
		"     1 linux           9      0        5        6       11    0.0%    0.0%    0.0%\n" +
		"fabric: 124 messages, 1000 chunks, 2 link retries, 123 delivered\n"
	if got := s.String(); got != want {
		t.Errorf("Stats.String() mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestCounterConsistencyMultiNode exchanges messages around a four-node
// line and checks the cross-layer counter invariants the RAS view relies
// on: fabric delivery never exceeds injection, coalesced raises never
// exceed raise requests, inline deliveries never exceed headers, and
// firmware TX counts account for every fabric message.
func TestCounterConsistencyMultiNode(t *testing.T) {
	tp, err := topo.New(4, 1, 1, false, false, false)
	if err != nil {
		t.Fatal(err)
	}
	m := New(model.Defaults(), tp)
	m.EnableTelemetry()

	const nodes = 4
	sizes := []int{8, 4096, 70000} // inline, single-chunk, multi-chunk
	apps := make([]*App, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		apps[i], err = m.Spawn(topo.NodeID(i), "xchg", Generic, func(app *App) {
			buf, eq := recvSetup(t, app, 1<<20, core.MDOpPut)
			_ = buf
			app.Proc.Sleep(50 * sim.Microsecond)
			src := app.Alloc(1 << 20)
			md, err := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite, EQ: eq})
			if err != nil {
				t.Errorf("MDBind: %v", err)
				return
			}
			dst := apps[(i+1)%nodes].ID()
			for _, sz := range sizes {
				if err := app.API.PutRegion(md, 0, sz, core.NoAck, dst, testPtl, 7, 0, 0); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				waitFor(t, app, eq, core.EventPutEnd) // my inbound message
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	m.Run()

	st := m.Stats()
	if st.Fabric.Delivered > st.Fabric.Messages {
		t.Errorf("delivered %d > messages %d", st.Fabric.Delivered, st.Fabric.Messages)
	}
	if st.Fabric.Messages == 0 {
		t.Fatal("no fabric traffic")
	}
	var sumTx, sumHdr uint64
	for _, n := range st.Nodes {
		raises := n.Interrupts + n.Coalesced
		if n.Coalesced > raises {
			t.Errorf("node %d: coalesced %d > raises %d", n.Node, n.Coalesced, raises)
		}
		if n.Interrupts == 0 {
			t.Errorf("node %d: generic-mode exchange took no interrupts", n.Node)
		}
		if n.Firmware.InlineRx > n.Firmware.HeadersRx {
			t.Errorf("node %d: inline-rx %d > headers-rx %d",
				n.Node, n.Firmware.InlineRx, n.Firmware.HeadersRx)
		}
		sumTx += n.Firmware.MsgsTx
		sumHdr += n.Firmware.HeadersRx
	}
	if sumTx != st.Fabric.Messages {
		t.Errorf("sum of firmware msgs-tx %d != fabric messages %d", sumTx, st.Fabric.Messages)
	}
	if sumHdr > st.Fabric.Messages {
		t.Errorf("sum of headers-rx %d > fabric messages %d", sumHdr, st.Fabric.Messages)
	}
	// Attribution should have closed the books on this quiesced machine:
	// every record either completed or was reclaimed, and the completed
	// count cannot exceed fabric deliveries.
	exp := m.Telemetry().Snapshot(m.S.Now())
	comp := exp.Metric("portals_msg_records_completed", "")
	if comp == nil || comp.Value == 0 {
		t.Fatal("no completed attribution records")
	}
	if uint64(comp.Value) > st.Fabric.Delivered {
		t.Errorf("completed records %v > delivered %d", comp.Value, st.Fabric.Delivered)
	}
}
