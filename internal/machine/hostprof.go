// Host-execution profiling on a machine: the machine-level surface over
// the kernel profiler (sim/hostprof.go). A HostProfile is the
// JSON-exportable artifact netpipe writes with -hostprof and p3stat
// renders as the host-execution table. It measures the host running the
// simulation — wall-clock, lane skew, heap watermarks — so it is
// nondeterministic by nature and is deliberately excluded from every
// differential digest (TorusResult.Digest, soak Summary).
package machine

import (
	"encoding/json"
	"time"

	"portals3/internal/sim"
)

// HostProfileKind is the JSON "kind" discriminator p3stat sniffs to route
// a file to the host-execution renderer.
const HostProfileKind = "host_profile"

// HostLane is one lane's host-execution accounting in the exported
// artifact (sim.LaneProfile with stable JSON keys).
type HostLane struct {
	Lane             int    `json:"lane"`
	BusyNs           int64  `json:"busy_ns"`
	WaitNs           int64  `json:"wait_ns"`
	Events           uint64 `json:"events"`
	StragglerWindows uint64 `json:"straggler_windows"`
}

// HostProfile is the exported host-execution artifact. Runs is 1 for a
// single run and counts merged arms after Merge (a sweep writes one
// profile covering every load arm).
type HostProfile struct {
	Kind   string `json:"kind"`
	Runs   int    `json:"runs"`
	Shards int    `json:"shards"`

	Windows uint64 `json:"windows"`
	Events  uint64 `json:"events"`

	// WallNs is the kernel-accounted wall-clock (drain + window execution +
	// coordinator tails); RunWallNs is the machine-measured wall of the
	// kernel run calls, the external reference the accounting is checked
	// against. For every lane, busy+wait+drain sums to WallNs within clock
	// granularity.
	WallNs    int64 `json:"wall_ns"`
	RunWallNs int64 `json:"run_wall_ns"`
	ExecNs    int64 `json:"exec_ns"`
	DrainNs   int64 `json:"drain_ns"`

	MeanImbalancePct float64 `json:"mean_imbalance_pct"`
	MaxImbalancePct  float64 `json:"max_imbalance_pct"`

	MemSamples    int    `json:"mem_samples"`
	HeapInuseHigh uint64 `json:"heap_inuse_high"`
	HeapAllocHigh uint64 `json:"heap_alloc_high"`
	SysHigh       uint64 `json:"sys_high"`
	NumGC         uint32 `json:"num_gc"`

	Lanes []HostLane `json:"lanes"`
}

// EnableHostProfile arms the host-execution profiler on a sharded
// machine's kernel. Classic machines have no lanes to account; profiling
// them is a pprof job, not a lane-skew one.
func (m *Machine) EnableHostProfile() {
	if m.kern == nil {
		panic("machine: host-execution profiling needs a sharded machine (NewSharded)")
	}
	m.kern.EnableHostProfile()
	m.hostprofOn = true
}

// SetProgress registers fn for live host-execution snapshots about every
// `every` of wall-clock (see sim.Kernel.SetProgress for the delivery
// contract). Implies EnableHostProfile.
func (m *Machine) SetProgress(every time.Duration, fn func(sim.HostProgress)) {
	if m.kern == nil {
		panic("machine: host-execution profiling needs a sharded machine (NewSharded)")
	}
	m.kern.SetProgress(every, fn)
	m.hostprofOn = true
}

// HostProfile snapshots the host-execution profile, nil when profiling was
// never enabled. Call it after Run, from the driver goroutine.
func (m *Machine) HostProfile() *HostProfile {
	if !m.hostprofOn {
		return nil
	}
	kp := m.kern.Profile()
	if kp == nil {
		return nil
	}
	hp := &HostProfile{
		Kind:             HostProfileKind,
		Runs:             1,
		Shards:           kp.Shards,
		Windows:          kp.Windows,
		Events:           kp.Events,
		WallNs:           kp.WallNs,
		RunWallNs:        int64(m.runWall),
		ExecNs:           kp.ExecNs,
		DrainNs:          kp.DrainNs,
		MeanImbalancePct: kp.MeanImbalancePct,
		MaxImbalancePct:  kp.MaxImbalancePct,
		MemSamples:       kp.MemSamples,
		HeapInuseHigh:    kp.HeapInuseHigh,
		HeapAllocHigh:    kp.HeapAllocHigh,
		SysHigh:          kp.SysHigh,
		NumGC:            kp.NumGC,
	}
	for _, l := range kp.Lanes {
		hp.Lanes = append(hp.Lanes, HostLane{
			Lane:             l.Lane,
			BusyNs:           l.BusyNs,
			WaitNs:           l.WaitNs,
			Events:           l.Events,
			StragglerWindows: l.StragglerWindows,
		})
	}
	return hp
}

// Merge folds another run's profile into this one — how a sweep's per-arm
// profiles become a single artifact. Times, events, windows and straggler
// counts add; watermarks and max imbalance take the max; the mean
// imbalance averages weighted by window count. Lane lists align by index
// (arms of one sweep share a shard count; a differing count merges the
// common prefix and appends the rest).
func (hp *HostProfile) Merge(o *HostProfile) {
	if o == nil {
		return
	}
	hp.Runs += o.Runs
	if o.Shards > hp.Shards {
		hp.Shards = o.Shards
	}
	if tw := hp.Windows + o.Windows; tw > 0 {
		hp.MeanImbalancePct = (hp.MeanImbalancePct*float64(hp.Windows) +
			o.MeanImbalancePct*float64(o.Windows)) / float64(tw)
	}
	hp.Windows += o.Windows
	hp.Events += o.Events
	hp.WallNs += o.WallNs
	hp.RunWallNs += o.RunWallNs
	hp.ExecNs += o.ExecNs
	hp.DrainNs += o.DrainNs
	if o.MaxImbalancePct > hp.MaxImbalancePct {
		hp.MaxImbalancePct = o.MaxImbalancePct
	}
	hp.MemSamples += o.MemSamples
	if o.HeapInuseHigh > hp.HeapInuseHigh {
		hp.HeapInuseHigh = o.HeapInuseHigh
	}
	if o.HeapAllocHigh > hp.HeapAllocHigh {
		hp.HeapAllocHigh = o.HeapAllocHigh
	}
	if o.SysHigh > hp.SysHigh {
		hp.SysHigh = o.SysHigh
	}
	if o.NumGC > hp.NumGC {
		hp.NumGC = o.NumGC
	}
	for i, l := range o.Lanes {
		if i < len(hp.Lanes) {
			hp.Lanes[i].BusyNs += l.BusyNs
			hp.Lanes[i].WaitNs += l.WaitNs
			hp.Lanes[i].Events += l.Events
			hp.Lanes[i].StragglerWindows += l.StragglerWindows
		} else {
			hp.Lanes = append(hp.Lanes, l)
		}
	}
}

// JSON renders the profile as indented JSON, trailing newline included —
// the on-disk format netpipe/soak write and p3stat reads.
func (hp *HostProfile) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(hp, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
