package machine

import (
	"fmt"
	"sort"

	"portals3/internal/sim"
	"portals3/internal/topo"
)

// This file is the machine's reliability/availability/serviceability loop:
// the SeaStar carries "all of the support functions necessary to provide
// reliability, availability, and serviceability (RAS) and boot services"
// (paper §2), and the firmware keeps a "heartbeat for RAS" in its control
// block (§4.2, Figure 3). Node panics (§4.3's exhaustion behavior) stop the
// heartbeat; the RAS monitor notices.

// NodeFailure records one panicked node.
type NodeFailure struct {
	Node   topo.NodeID
	Reason string
	At     sim.Time
}

// Failures returns the nodes that have panicked, in node order. The
// machine installs a panic handler on every node that records the failure
// and kills the firmware (blackholing its traffic) instead of crashing the
// process; set Node(n).NIC.OnPanic yourself to restore the crash-hard
// behavior.
func (m *Machine) Failures() []NodeFailure {
	out := append([]NodeFailure(nil), m.failures...)
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// installFailureHandler is called at node construction. Panics route
// through the machine's failure funnel (flightrec.go), so a panic with the
// flight recorder on also snapshots a dump.
func (m *Machine) installFailureHandler(n *Node) {
	nic := n.NIC
	id := n.ID
	nic.OnPanic = func(reason string) {
		// nic.S is the node's own lane, so the timestamp is race-free on a
		// sharded machine too; the funnel itself serializes internally.
		at := nic.S.Now()
		m.mu.Lock()
		m.failures = append(m.failures, NodeFailure{Node: id, Reason: reason, At: at})
		m.mu.Unlock()
		m.reportFailure(FailurePanic, id, reason)
		nic.Kill()
	}
}

// RAS is a running heartbeat monitor.
type RAS struct {
	m      *Machine
	period sim.Time
	last   map[topo.NodeID]uint64
	missed map[topo.NodeID]int
	dead   map[topo.NodeID]sim.Time
	halted bool
}

// Dead returns the nodes the monitor has declared failed, with detection
// times, in node order.
func (r *RAS) Dead() []NodeFailure {
	var out []NodeFailure
	for id, at := range r.dead {
		out = append(out, NodeFailure{Node: id, Reason: "heartbeat lost", At: at})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Stop halts the monitor (and lets the event heap drain).
func (r *RAS) Stop() { r.halted = true }

// StartRAS begins firmware heartbeats on every instantiated node and a
// monitor that samples them every period, declaring a node dead after
// three silent samples.
//
// On a classic machine heartbeats are firmware self-ticks
// (NIC.StartHeartbeat) and the monitor reschedules itself forever, so
// drive the simulation with RunUntil (and Stop the monitor before a final
// Run). On a sharded machine both halves run as kernel barrier ticks
// (sim.Kernel.Every) instead: heartbeat ticks at period/4 increment every
// live NIC's counter, and the monitor samples at period — registered in
// that order, so at a coinciding tick time the increment precedes the
// read. Barrier ticks stop at kernel quiescence, so a sharded RAS does not
// keep the machine alive and Machine.Run returns normally. The classic
// RunUntil idiom works sharded too: Machine.RunUntil fires the barrier
// ticks due through its horizon even once the lanes are quiescent, so a
// RunUntil-driven loop keeps the monitor sampling at the same virtual
// times at every shard count. A node that
// panics mid-run stops accruing heartbeats (NIC.Kill also halts the
// firmware's own per-handler increments) and is declared dead three
// monitor samples later, at the same virtual time at every shard count.
func (m *Machine) StartRAS(period sim.Time) *RAS {
	if m.ras != nil {
		return m.ras
	}
	r := &RAS{
		m:      m,
		period: period,
		last:   make(map[topo.NodeID]uint64),
		missed: make(map[topo.NodeID]int),
		dead:   make(map[topo.NodeID]sim.Time),
	}
	m.ras = r
	ids := make([]topo.NodeID, 0, len(m.nodes))
	for id := range m.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if m.kern != nil {
		hb := period / 4
		if hb <= 0 {
			hb = 1
		}
		m.kern.Every(hb, func(now sim.Time) {
			if r.halted {
				return
			}
			for _, id := range ids {
				if n := m.nodes[id]; !n.NIC.Dead() {
					n.NIC.Heartbeat++
				}
			}
		})
		m.kern.Every(period, func(now sim.Time) {
			if !r.halted {
				r.check(now)
			}
		})
		return r
	}
	for _, id := range ids {
		m.nodes[id].NIC.StartHeartbeat(period / 4)
	}
	var sample func()
	sample = func() {
		if r.halted {
			return
		}
		r.check(m.S.Now())
		m.S.After(period, sample)
	}
	m.S.After(period, sample)
	return r
}

// check samples every watched node's heartbeat once at time now.
func (r *RAS) check(now sim.Time) {
	m := r.m
	ids := make([]topo.NodeID, 0, len(m.nodes))
	for id := range m.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := m.nodes[id]
		hb := n.NIC.Heartbeat
		if _, gone := r.dead[id]; gone {
			continue
		}
		if hb == r.last[id] {
			r.missed[id]++
			if r.missed[id] >= 3 {
				r.dead[id] = now
			}
		} else {
			r.missed[id] = 0
		}
		r.last[id] = hb
	}
}

func (f NodeFailure) String() string {
	return fmt.Sprintf("node %d failed at %v: %s", f.Node, f.At, f.Reason)
}
