package machine

import (
	"portals3/internal/fabric"
	"portals3/internal/model"
	"portals3/internal/oskernel"
	"portals3/internal/sim"
	"portals3/internal/telemetry"
	"portals3/internal/topo"
	"portals3/internal/trace"
)

// This file assembles sharded machines: the same node components as the
// classic single-lane machine, but each node built on its lane's simulator
// against its NodePort, run by the parallel kernel (sim.Kernel) under the
// fabric's conservative lookahead. A sharded machine with shards=1 is the
// bit-identical reference for any shard count (DESIGN.md §11); the classic
// machine remains the reference for the whole-path wire model.
//
// Observers — tracing, the RAS sampler, the heartbeat monitor, the stall
// detector — run lane-local on a sharded machine: each lane records into
// its own tracer/telemetry instance, liveness checks fire at the kernel's
// canonical barrier ticks (sim.Kernel.Every), and the per-lane artifacts
// merge deterministically at snapshot time (DESIGN.md §12). RunUntil works
// on both kernels (the sharded horizon rounds up to the next window
// barrier, DESIGN.md §14); only runtime fault injection — the
// Faults/InjectFault/StallNodeFor/LinkDownFor mutators, superseded by
// Params.Schedule — still panics via seqOnly.

// NewSharded builds a machine over the given topology whose nodes are
// partitioned into `shards` parallel event lanes. Nodes are assigned to
// lanes in contiguous blocks of the topology's Z-major id order, a pure
// function of (node, shards, total nodes).
//
// shards clamps to [1, nodes]: more lanes than nodes would leave the
// surplus lanes permanently empty (the block map id*shards/total then
// skips lane indices, and fabric.NewCluster rejects the out-of-range
// assignments), and the simulated results are bit-identical at every
// shard count anyway, so the clamp only removes degenerate partitions.
func NewSharded(p model.Params, tp *topo.Topology, shards int) *Machine {
	if shards < 1 {
		shards = 1
	}
	if n := tp.Nodes(); shards > n {
		shards = n
	}
	kern := sim.NewKernel(shards, fabric.MinHandoffLatency(&p))
	total := int64(tp.Nodes())
	laneOf := func(id topo.NodeID) int { return int(int64(id) * int64(shards) / total) }
	m := &Machine{
		S:      kern.Lane(0),
		P:      p,
		Topo:   tp,
		OSKind: func(topo.NodeID) oskernel.Kind { return oskernel.Catamount },
		nodes:  make(map[topo.NodeID]*Node),
		kern:   kern,
	}
	m.cl = fabric.NewCluster(kern, tp, &m.P, laneOf)
	m.applySchedule()
	return m
}

// Sharded reports whether this machine runs on the parallel kernel.
func (m *Machine) Sharded() bool { return m.kern != nil }

// ShardKernel returns the parallel kernel (nil on a classic machine), for
// diagnostics such as the window count.
func (m *Machine) ShardKernel() *sim.Kernel { return m.kern }

// laneSim returns the simulator a node's components live on.
func (m *Machine) laneSim(id topo.NodeID) *sim.Sim {
	if m.kern == nil {
		return m.S
	}
	return m.kern.Lane(m.cl.Lane(id))
}

// nodePort returns the fabric interface a node's NIC holds.
func (m *Machine) nodePort(id topo.NodeID) fabric.Port {
	if m.kern == nil {
		return m.Fab
	}
	return m.cl.Port(id)
}

// seqOnly panics when a sequential-only feature is used on a sharded
// machine.
func (m *Machine) seqOnly(feature string) {
	if m.kern != nil {
		panic("machine: " + feature + " is not supported on a sharded machine (use the classic machine.New)")
	}
}

// FaultSnapshot returns the machine's fault-ledger counters: the classic
// fabric's plane, or the sum of a sharded cluster's per-node planes.
func (m *Machine) FaultSnapshot() (fabric.FaultStats, bool) {
	if m.kern != nil {
		return m.cl.FaultSnapshot()
	}
	return m.Fab.FaultSnapshot()
}

// nodeTel returns the telemetry handle a node's components wire to: the
// machine-wide instance on a classic machine, the node's lane instance on
// a sharded one.
func (m *Machine) nodeTel(id topo.NodeID) *telemetry.Telemetry {
	if m.tels != nil {
		return m.tels[m.cl.Lane(id)]
	}
	return m.tel
}

// nodeTrace returns the tracer a node's components record into: the
// machine-wide instance on a classic machine, the node's lane instance on
// a sharded one (nil until tracing is enabled).
func (m *Machine) nodeTrace(id topo.NodeID) *trace.Tracer {
	if m.trs != nil {
		return m.trs[m.cl.Lane(id)]
	}
	return m.tracer
}
