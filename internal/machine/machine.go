// Package machine assembles complete simulated XT3 systems: nodes (Opteron
// host + OS kernel + SeaStar + firmware + generic driver) wired into the
// 3D interconnect, and application processes running against the Portals
// API through the appropriate bridge.
//
// Nodes are built lazily, so a Red Storm-sized topology (10,368 nodes) can
// be declared while only the nodes a test touches are instantiated.
package machine

import (
	"fmt"
	"sync"
	"time"

	"portals3/internal/core"
	"portals3/internal/fabric"
	"portals3/internal/flightrec"
	"portals3/internal/fw"
	"portals3/internal/model"
	"portals3/internal/nal"
	"portals3/internal/oskernel"
	"portals3/internal/seastar"
	"portals3/internal/sim"
	"portals3/internal/telemetry"
	"portals3/internal/topo"
	"portals3/internal/trace"
)

// Mode selects how a process reaches Portals (paper §3.1's four system
// configurations).
type Mode int

// Process modes.
const (
	// Generic forwards every Portals call to the OS kernel; matching runs
	// on the host, driven by interrupts.
	Generic Mode = iota
	// Accelerated posts commands directly to a dedicated firmware mailbox;
	// matching runs on the NIC and the data path is interrupt-free.
	// Catamount only (§3.3: accelerated mode does not support paged
	// buffers).
	Accelerated
	// KernelService is a kernel-resident client (the Lustre case) reaching
	// the library through kbridge: no trap cost, still generic mode.
	KernelService
)

func (m Mode) String() string {
	return [...]string{"generic", "accelerated", "kernel-service"}[m]
}

// Machine is one simulated system.
type Machine struct {
	S    *sim.Sim
	P    model.Params
	Topo *topo.Topology
	Fab  *fabric.Fabric

	// OSKind selects each node's operating system; the default is
	// Catamount everywhere (a compute partition).
	OSKind func(topo.NodeID) oskernel.Kind

	nodes    map[topo.NodeID]*Node
	gbn      bool
	tracer   *trace.Tracer
	tel      *telemetry.Telemetry
	sampler  *Sampler
	ras      *RAS
	failures []NodeFailure

	// Sharded-machine state (NewSharded; nil on a classic machine): the
	// parallel kernel, the per-lane fabric cluster, per-lane telemetry and
	// trace instances, and the mutex serializing the failure funnel across
	// lanes.
	kern *sim.Kernel
	cl   *fabric.Cluster
	tels []*telemetry.Telemetry
	trs  []*trace.Tracer
	mu   sync.Mutex

	// Host-execution profiling (hostprof.go): whether the kernel profiler
	// is armed, and the measured wall-clock of the kernel run calls — the
	// external reference the profiler's accounting is validated against.
	hostprofOn bool
	runWall    time.Duration

	rec            *flightrec.Recorder
	stall          *StallDetector
	reports        []FailureReport
	ledgerReported bool
}

// Node is one XT3 node.
type Node struct {
	ID      topo.NodeID
	Kernel  *oskernel.Kernel
	Chip    *seastar.Chip
	NIC     *fw.NIC
	Generic *nal.GenericDriver
}

// New builds a machine over the given topology.
func New(p model.Params, tp *topo.Topology) *Machine {
	s := sim.New()
	m := &Machine{
		S:      s,
		P:      p,
		Topo:   tp,
		OSKind: func(topo.NodeID) oskernel.Kind { return oskernel.Catamount },
		nodes:  make(map[topo.NodeID]*Node),
	}
	m.Fab = fabric.New(s, tp, &m.P)
	m.applySchedule()
	return m
}

// NewPair is the two-node micro-benchmark machine (the NetPIPE setup):
// two adjacent Catamount nodes.
func NewPair(p model.Params) *Machine {
	tp, err := topo.New(2, 1, 1, false, false, false)
	if err != nil {
		panic(err)
	}
	return New(p, tp)
}

// Node returns (building on first use) the node with the given id.
func (m *Machine) Node(id topo.NodeID) *Node {
	if n, ok := m.nodes[id]; ok {
		return n
	}
	if !m.Topo.Valid(id) {
		panic(fmt.Sprintf("machine: invalid node %d", id))
	}
	ls := m.laneSim(id)
	kern := oskernel.New(ls, &m.P, m.OSKind(id), id)
	chip := seastar.New(ls, &m.P, id)
	nic, err := fw.New(ls, &m.P, chip, m.nodePort(id), id)
	if err != nil {
		panic(err)
	}
	if m.gbn {
		nic.Policy = fw.ExhaustGoBackN
	}
	nic.Trace = m.nodeTrace(id)
	kern.Trace = nic.Trace
	drv, err := nal.NewGeneric(kern, nic, m.Topo, &m.P)
	if err != nil {
		panic(err)
	}
	n := &Node{ID: id, Kernel: kern, Chip: chip, NIC: nic, Generic: drv}
	if m.tel != nil || m.tels != nil {
		m.wireTelemetry(n)
	}
	if m.rec != nil {
		m.wireFlightRec(n)
	}
	m.installFailureHandler(n)
	m.nodes[id] = n
	return n
}

// EnableTracing starts recording a machine-wide timeline (wire, firmware,
// interrupt and Portals-event activity) and returns the tracer. Call it
// before spawning processes; write the result with Tracer.WriteChrome.
//
// On a sharded machine each lane records into its own tracer (every node
// lives on exactly one lane, so a node's records stay in one instance and
// in lane-local time order); read the merged timeline through
// Machine.Trace after the run. The merge sorts by (timestamp, node), which
// preserves each lane's relative order, so the written trace is
// byte-identical at every shard count.
func (m *Machine) EnableTracing() *trace.Tracer {
	if m.kern != nil {
		if m.trs == nil {
			m.trs = make([]*trace.Tracer, m.kern.Shards())
			for i := range m.trs {
				m.trs[i] = trace.New()
				m.cl.SetTrace(i, m.trs[i])
			}
			for _, n := range m.nodes {
				n.NIC.Trace = m.nodeTrace(n.ID)
				n.Kernel.Trace = n.NIC.Trace
			}
		}
		// The per-lane instances are live; read the merged timeline through
		// Machine.Trace after the run.
		return m.trs[0]
	}
	if m.tracer == nil {
		m.tracer = trace.New()
		m.Fab.Trace = m.tracer
		for _, n := range m.nodes {
			n.NIC.Trace = m.tracer
			n.Kernel.Trace = m.tracer
		}
	}
	return m.tracer
}

// Trace returns the machine's tracer (nil unless tracing is enabled). On a
// sharded machine it merges the per-lane tracers into a fresh one — call
// it after Run, from the driver goroutine.
func (m *Machine) Trace() *trace.Tracer {
	if m.trs != nil {
		return trace.Merged(m.trs...)
	}
	return m.tracer
}

// EnableTelemetry attaches a telemetry handle to the machine — existing and
// subsequently built nodes — and returns it: per-message latency
// attribution through the generic driver, per-node interrupt dispatch
// histograms, and the registry the RAS sampler and exporters use. Like
// tracing, enable it before spawning processes; a machine without it pays
// one pointer test per site and allocates nothing.
func (m *Machine) EnableTelemetry() *telemetry.Telemetry {
	if m.kern != nil {
		if m.tels == nil {
			m.tels = make([]*telemetry.Telemetry, m.kern.Shards())
			for i := range m.tels {
				m.tels[i] = telemetry.New()
				m.cl.SetTelemetry(i, m.tels[i])
			}
			for _, n := range m.nodes {
				m.wireTelemetry(n)
			}
		}
		// The per-lane instances are live; read the merged view through
		// Machine.Telemetry after the run.
		return m.tels[0]
	}
	if m.tel == nil {
		m.tel = telemetry.New()
		m.Fab.Tel = m.tel
		for _, n := range m.nodes {
			m.wireTelemetry(n)
		}
	}
	return m.tel
}

// Telemetry returns the machine's telemetry handle (nil unless enabled).
// On a sharded machine it merges the per-lane instances into a fresh one —
// call it after Run, from the driver goroutine.
func (m *Machine) Telemetry() *telemetry.Telemetry {
	if m.tels != nil {
		return telemetry.Merged(m.tels...)
	}
	return m.tel
}

// wireTelemetry points one node's components at its telemetry handle.
func (m *Machine) wireTelemetry(n *Node) {
	tel := m.nodeTel(n.ID)
	n.Generic.Tel = tel
	n.Kernel.IrqHist = tel.Reg.Histogram("host_irq_dispatch_ps", telemetry.NodeLabel(int(n.ID)))
}

// EnableGoBackN switches every node — existing and subsequently built — to
// the go-back-n exhaustion recovery protocol.
func (m *Machine) EnableGoBackN() {
	m.gbn = true
	for _, n := range m.nodes {
		n.NIC.Policy = fw.ExhaustGoBackN
	}
}

// Faults returns the fabric's fault-injection plane, creating it on first
// use. Scenarios configure rules either up front via Params.Faults or at
// runtime through the plane (AddRule, LinkDownFor, StallNodeFor, ...);
// either way the plane's seeded PRNG keeps the run reproducible. Sharded
// machines keep one plane per source node, so there is no single plane to
// hand out — declare faults via Params.Faults or Params.Schedule instead.
func (m *Machine) Faults() *fabric.FaultPlane {
	m.seqOnly("runtime fault-plane access (declare Params.Faults or Params.Schedule up front)")
	return m.Fab.Faults()
}

// InjectFault appends one fault rule at runtime.
func (m *Machine) InjectFault(r model.FaultRule) {
	m.seqOnly("runtime fault injection (declare Params.Faults or a Params.Schedule burst up front)")
	m.Fab.Faults().AddRule(r)
}

// StallNodeFor holds all traffic destined to a node for dur, releasing it
// in arrival order — a hung NIC that later resumes. On sharded machines
// use a Params.Schedule stall entry, which plants the same window as
// lane-local events before the kernel starts.
func (m *Machine) StallNodeFor(node topo.NodeID, dur sim.Time) {
	m.seqOnly("StallNodeFor (put a stall entry in Params.Schedule)")
	m.Fab.Faults().StallNodeFor(node, dur)
}

// LinkDownFor takes the directed link leaving node in direction d out of
// service for dur; messages routed across it are dropped meanwhile. On
// sharded machines use a Params.Schedule linkdown entry.
func (m *Machine) LinkDownFor(node topo.NodeID, d topo.Dir, dur sim.Time) {
	m.seqOnly("LinkDownFor (put a linkdown entry in Params.Schedule)")
	m.Fab.Faults().LinkDownFor(node, d, dur)
}

// App is one running application process.
type App struct {
	M    *Machine
	Node *Node
	Pid  uint32
	Mode Mode
	// API is the process's Portals interface; valid once main runs.
	API *nal.API
	// Proc is the application coroutine.
	Proc *sim.Proc
}

// Alloc obtains application memory from the node's OS: contiguous on
// Catamount, paged on Linux.
func (a *App) Alloc(n int) core.Region { return a.Node.Kernel.NewRegion(n) }

// ID returns the process's Portals id without an API crossing.
func (a *App) ID() core.ProcessID {
	return core.ProcessID{Nid: uint32(a.Node.ID), Pid: a.Pid}
}

// Spawn starts an application process on a node in the given mode; main
// runs as a simulator coroutine with a ready Portals API. Spawn returns the
// App immediately (the process starts at the current virtual time).
func (m *Machine) Spawn(node topo.NodeID, name string, mode Mode, main func(app *App)) (*App, error) {
	n := m.Node(node)
	pid := n.Kernel.AllocPid()
	uid := 1000 + pid
	app := &App{M: m, Node: n, Pid: pid, Mode: mode}

	var lib *core.Lib
	var bridge nal.Bridge
	switch mode {
	case Generic:
		lib = n.Generic.AttachProcess(pid, uid, core.Limits{})
		if n.Kernel.Kind == oskernel.Catamount {
			bridge = nal.QKBridge{K: n.Kernel}
		} else {
			bridge = nal.UKBridge{K: n.Kernel}
		}
	case KernelService:
		lib = n.Generic.AttachProcess(pid, uid, core.Limits{})
		bridge = nal.KBridge{}
	case Accelerated:
		if n.Kernel.Kind != oskernel.Catamount {
			return nil, fmt.Errorf("machine: accelerated mode requires Catamount (paper §3.3); node %d runs %v", node, n.Kernel.Kind)
		}
		drv, err := nal.NewAccel(n.NIC, m.Topo, &m.P, pid, uid, core.Limits{}, accelPendings)
		if err != nil {
			return nil, err
		}
		lib = drv.Lib()
		bridge = nal.AccelBridge{}
	default:
		return nil, fmt.Errorf("machine: unknown mode %d", mode)
	}

	lib.Trace = m.nodeTrace(n.ID)
	n.NIC.S.Go(name, func(p *sim.Proc) {
		app.Proc = p
		app.API = nal.NewAPI(p, lib, bridge, &m.P)
		main(app)
	})
	return app, nil
}

// accelPendings sizes an accelerated process's pending pool; small, per the
// paper's limited-NIC-resources constraint.
const accelPendings = 256

// Run executes the simulation to completion, takes the sampler's
// documented final sample at quiesce time (the sampler self-terminates
// with the event heap, so the quiesce point itself has no tick of its
// own), then audits the fault plane's ledger: at quiescence every injected
// fault must be recovered or condemned, and an imbalance files a
// FailureLedger report (with a dump when the flight recorder is on)
// instead of panicking.
func (m *Machine) Run() {
	if m.kern != nil {
		if m.hostprofOn {
			t0 := time.Now()
			m.kern.Run()
			m.runWall += time.Since(t0)
		} else {
			m.kern.Run()
		}
	} else {
		m.S.Run()
	}
	if m.sampler != nil && !m.sampler.halted {
		// On a sharded machine every lane's clock reads the final horizon
		// here (RunUntil sets it), which is shard-invariant, so the closing
		// sample lands at the same timestamp at every shard count. The
		// closing sample flushes link meters instead of sampling them, so
		// the final utilization window ends when each link went idle rather
		// than being diluted across the drain to quiescence.
		m.sampler.closing = true
		m.sampler.sampleAt(m.S.Now())
	}
	m.flushMeters()
	m.checkLedger()
}

// flushMeters closes every link meter's final utilization window at
// quiesce time — covering machines that enabled telemetry without ever
// starting the sampler (whose meters would otherwise never be exported)
// and meters the closing sample already flushed (Flush is idempotent).
func (m *Machine) flushMeters() {
	now := m.S.Now()
	if m.kern != nil {
		for i, tel := range m.tels {
			for _, mt := range m.cl.LaneFabric(i).Meters() {
				mt.Flush(tel, now)
			}
		}
		return
	}
	if m.tel != nil {
		for _, mt := range m.Fab.Meters() {
			mt.Flush(m.tel, now)
		}
	}
}

// RunUntil executes the simulation up to a virtual-time horizon, then
// advances the clock to (at least) t — the idiom RAS monitors and staged
// scenario drivers use between final Run calls. On a sharded machine the
// horizon rounds up to the kernel's next window barrier, so events within
// lookahead−1 past t may run with their window; the rounding depends only
// on the workload's event times, never on the partition, so a
// RunUntil-driven run remains bit-identical at every shard count
// (sim.Kernel.RunUntil documents the argument).
func (m *Machine) RunUntil(t sim.Time) {
	if m.kern != nil {
		if m.hostprofOn {
			t0 := time.Now()
			m.kern.RunUntil(t)
			m.runWall += time.Since(t0)
		} else {
			m.kern.RunUntil(t)
		}
		return
	}
	m.S.RunUntil(t)
}
