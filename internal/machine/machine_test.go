package machine

import (
	"bytes"
	"testing"

	"portals3/internal/core"
	"portals3/internal/model"
	"portals3/internal/oskernel"
	"portals3/internal/sim"
	"portals3/internal/topo"
)

const testPtl = 4

// recvSetup posts a match-anything receive on testPtl over a fresh buffer
// and returns the pieces.
func recvSetup(t *testing.T, app *App, size int, opts core.MDOptions) (core.Region, core.EQHandle) {
	t.Helper()
	eq, err := app.API.EQAlloc(128)
	if err != nil {
		t.Fatal(err)
	}
	me, err := app.API.MEAttach(testPtl, core.ProcessID{Nid: core.NidAny, Pid: core.PidAny}, 7, 0, core.Retain, core.After)
	if err != nil {
		t.Fatal(err)
	}
	buf := app.Alloc(size)
	if _, err := app.API.MDAttach(me, core.MDesc{
		Region: buf, Threshold: core.ThresholdInfinite,
		Options: opts, EQ: eq,
	}, core.Retain); err != nil {
		t.Fatal(err)
	}
	return buf, eq
}

// waitFor blocks until an event of the wanted type arrives on eq.
func waitFor(t *testing.T, app *App, eq core.EQHandle, want core.EventType) core.Event {
	t.Helper()
	for {
		ev, err := app.API.EQWait(eq)
		if err != nil && err != core.ErrEQDropped {
			t.Fatalf("EQWait: %v", err)
		}
		if ev.Type == want {
			return ev
		}
	}
}

func TestPutDeliversEndToEnd(t *testing.T) {
	m := NewPair(model.Defaults())
	payload := make([]byte, 70000)
	for i := range payload {
		payload[i] = byte(i * 13)
	}

	var got []byte
	var putEnd core.Event
	recvID := make(chan core.ProcessID, 1)
	_ = recvID
	var receiver *App
	var err error
	receiver, err = m.Spawn(1, "receiver", Generic, func(app *App) {
		buf, eq := recvSetup(t, app, len(payload), core.MDOpPut)
		putEnd = waitFor(t, app, eq, core.EventPutEnd)
		got = make([]byte, putEnd.MLength)
		buf.ReadAt(0, got)
	})
	if err != nil {
		t.Fatal(err)
	}
	var sendEnd bool
	if _, err := m.Spawn(0, "sender", Generic, func(app *App) {
		app.Proc.Sleep(50 * sim.Microsecond) // let the receiver post its ME
		eq, _ := app.API.EQAlloc(16)
		src := app.Alloc(len(payload))
		src.WriteAt(0, payload)
		md, err := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite, EQ: eq})
		if err != nil {
			t.Errorf("MDBind: %v", err)
			return
		}
		if err := app.API.Put(md, core.NoAck, receiver.ID(), testPtl, 7, 0, 0xABCD); err != nil {
			t.Errorf("Put: %v", err)
			return
		}
		waitFor(t, app, eq, core.EventSendEnd)
		sendEnd = true
	}); err != nil {
		t.Fatal(err)
	}
	m.Run()

	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: got %d bytes", len(got))
	}
	if putEnd.HdrData != 0xABCD {
		t.Errorf("hdr data = %#x", putEnd.HdrData)
	}
	if putEnd.Initiator.Nid != 0 {
		t.Errorf("initiator = %v", putEnd.Initiator)
	}
	if !sendEnd {
		t.Error("sender never saw SEND_END")
	}
}

// onewayLatency measures a single ping-pong round trip of size bytes and
// returns RTT/2, NetPIPE-style.
func onewayLatency(t *testing.T, mode Mode, size int) sim.Time {
	t.Helper()
	m := NewPair(model.Defaults())
	var rtt sim.Time

	var a, b *App
	b, _ = m.Spawn(1, "pong", mode, func(app *App) {
		buf, eq := recvSetup(t, app, 1<<20, core.MDOpPut)
		_ = buf
		waitFor(t, app, eq, core.EventPutEnd)
		// Reply with the same size.
		seq, _ := app.API.EQAlloc(16)
		src := app.Alloc(size)
		md, _ := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite, EQ: seq})
		if err := app.API.Put(md, core.NoAck, a.ID(), testPtl, 7, 0, 0); err != nil {
			t.Errorf("pong put: %v", err)
		}
		waitFor(t, app, seq, core.EventSendEnd)
	})
	a, _ = m.Spawn(0, "ping", mode, func(app *App) {
		_, eq := recvSetup(t, app, 1<<20, core.MDOpPut)
		app.Proc.Sleep(100 * sim.Microsecond) // both sides ready
		start := app.Proc.Now()
		seq, _ := app.API.EQAlloc(16)
		src := app.Alloc(size)
		md, _ := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite, EQ: seq})
		if err := app.API.Put(md, core.NoAck, b.ID(), testPtl, 7, 0, 0); err != nil {
			t.Errorf("ping put: %v", err)
		}
		waitFor(t, app, eq, core.EventPutEnd)
		rtt = app.Proc.Now() - start
	})
	m.Run()
	return rtt / 2
}

func TestSmallMessageLatencyBallpark(t *testing.T) {
	lat := onewayLatency(t, Generic, 8)
	// The paper's one-byte put latency is 5.39 µs; the model must land in
	// that neighborhood (exact calibration is asserted by the NetPIPE
	// harness).
	if lat < 4*sim.Microsecond || lat > 7*sim.Microsecond {
		t.Errorf("8-byte one-way latency = %v, want ≈5.4µs", lat)
	}
}

func TestTwelveByteStep(t *testing.T) {
	at12 := onewayLatency(t, Generic, 12)
	at16 := onewayLatency(t, Generic, 16)
	gap := at16 - at12
	// Crossing the inline threshold adds a second interrupt plus a
	// command round trip (§6): expect a step of roughly 2-4 µs.
	if gap < 1500*sim.Nanosecond {
		t.Errorf("12→16 byte latency step = %v, want ≥1.5µs (the saved interrupt)", gap)
	}
	if gap > 5*sim.Microsecond {
		t.Errorf("12→16 byte latency step = %v suspiciously large", gap)
	}
}

func TestInterruptCounts(t *testing.T) {
	// Inline put: one interrupt at the receiver. Chunked put: two (§6).
	count := func(size int) uint64 {
		m := NewPair(model.Defaults())
		var b *App
		done := false
		b, _ = m.Spawn(1, "rx", Generic, func(app *App) {
			_, eq := recvSetup(t, app, 1<<20, core.MDOpPut)
			waitFor(t, app, eq, core.EventPutEnd)
			done = true
		})
		m.Spawn(0, "tx", Generic, func(app *App) {
			app.Proc.Sleep(50 * sim.Microsecond)
			src := app.Alloc(size)
			md, _ := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite})
			app.API.Put(md, core.NoAck, b.ID(), testPtl, 7, 0, 0)
		})
		m.Run()
		if !done {
			t.Fatalf("size %d never delivered", size)
		}
		return m.Node(1).Kernel.Interrupts
	}
	inline := count(8)
	chunked := count(4096)
	if inline != 1 {
		t.Errorf("inline put took %d interrupts at the receiver, want 1 (§6)", inline)
	}
	if chunked != 2 {
		t.Errorf("chunked put took %d interrupts at the receiver, want 2 (§6)", chunked)
	}
}

func TestGetEndToEnd(t *testing.T) {
	m := NewPair(model.Defaults())
	secret := []byte("data owned by the target process")
	var fetched []byte
	var b *App
	b, _ = m.Spawn(1, "target", Generic, func(app *App) {
		eq, _ := app.API.EQAlloc(16)
		me, _ := app.API.MEAttach(testPtl, core.ProcessID{Nid: core.NidAny, Pid: core.PidAny}, 9, 0, core.Retain, core.After)
		buf := app.Alloc(len(secret))
		buf.WriteAt(0, secret)
		app.API.MDAttach(me, core.MDesc{Region: buf, Threshold: core.ThresholdInfinite, Options: core.MDOpGet, EQ: eq}, core.Retain)
		waitFor(t, app, eq, core.EventGetEnd)
	})
	m.Spawn(0, "initiator", Generic, func(app *App) {
		app.Proc.Sleep(50 * sim.Microsecond)
		eq, _ := app.API.EQAlloc(16)
		dst := app.Alloc(len(secret))
		md, _ := app.API.MDBind(core.MDesc{Region: dst, Threshold: core.ThresholdInfinite, EQ: eq})
		if err := app.API.Get(md, b.ID(), testPtl, 9, 0); err != nil {
			t.Errorf("Get: %v", err)
			return
		}
		ev := waitFor(t, app, eq, core.EventReplyEnd)
		fetched = make([]byte, ev.MLength)
		dst.ReadAt(0, fetched)
	})
	m.Run()
	if !bytes.Equal(fetched, secret) {
		t.Errorf("get fetched %q", fetched)
	}
}

func TestAcceleratedModeNoInterrupts(t *testing.T) {
	m := NewPair(model.Defaults())
	payload := []byte("accelerated payload bytes")
	var got []byte
	var b *App
	b, _ = m.Spawn(1, "rx", Accelerated, func(app *App) {
		buf, eq := recvSetup(t, app, 4096, core.MDOpPut)
		ev := waitFor(t, app, eq, core.EventPutEnd)
		got = make([]byte, ev.MLength)
		buf.ReadAt(0, got)
	})
	m.Spawn(0, "tx", Accelerated, func(app *App) {
		app.Proc.Sleep(50 * sim.Microsecond)
		eq, _ := app.API.EQAlloc(16)
		src := app.Alloc(len(payload))
		src.WriteAt(0, payload)
		md, _ := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite, EQ: eq})
		app.API.Put(md, core.NoAck, b.ID(), testPtl, 7, 0, 0)
		waitFor(t, app, eq, core.EventSendEnd)
	})
	m.Run()
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q", got)
	}
	if irq := m.Node(0).Kernel.Interrupts + m.Node(1).Kernel.Interrupts; irq != 0 {
		t.Errorf("accelerated data path took %d interrupts, want 0 (§3.3)", irq)
	}
}

func TestAcceleratedBeatsGenericLatency(t *testing.T) {
	// Inline messages: offload saves the interrupt (2 µs) but pays for
	// matching on the 4×-slower PowerPC, so the net gain is moderate.
	gen := onewayLatency(t, Generic, 8)
	acc := onewayLatency(t, Accelerated, 8)
	if acc >= gen {
		t.Errorf("accelerated inline latency %v not better than generic %v", acc, gen)
	}
	if gen-acc < sim.Microsecond {
		t.Errorf("accelerated saves only %v on inline messages", gen-acc)
	}
	// Past the inline threshold generic mode pays two interrupts plus a
	// command round trip; the offloaded gain must grow accordingly (§3.3:
	// "it will be necessary to eliminate all interrupts from the data
	// path").
	gen16 := onewayLatency(t, Generic, 1024)
	acc16 := onewayLatency(t, Accelerated, 1024)
	if gen16-acc16 < 3*sim.Microsecond {
		t.Errorf("accelerated saves only %v on chunked messages, want >3µs (two interrupts + rx command)", gen16-acc16)
	}
}

func TestLinuxNodePagedBuffers(t *testing.T) {
	p := model.Defaults()
	tp, _ := topo.New(2, 1, 1, false, false, false)
	m := New(p, tp)
	m.OSKind = func(topo.NodeID) oskernel.Kind { return oskernel.Linux }
	payload := make([]byte, 100000)
	for i := range payload {
		payload[i] = byte(i)
	}
	var got []byte
	var b *App
	b, _ = m.Spawn(1, "rx", Generic, func(app *App) {
		buf, eq := recvSetup(t, app, len(payload), core.MDOpPut)
		ev := waitFor(t, app, eq, core.EventPutEnd)
		got = make([]byte, ev.MLength)
		buf.ReadAt(0, got)
	})
	m.Spawn(0, "tx", Generic, func(app *App) {
		app.Proc.Sleep(50 * sim.Microsecond)
		src := app.Alloc(len(payload))
		if src.Segments() < 2 {
			t.Error("Linux buffer should be paged")
		}
		src.WriteAt(0, payload)
		md, _ := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite})
		app.API.Put(md, core.NoAck, b.ID(), testPtl, 7, 0, 0)
	})
	m.Run()
	if !bytes.Equal(got, payload) {
		t.Error("paged transfer corrupted data")
	}
}

func TestUkbridgeAndKbridgeCoexist(t *testing.T) {
	// A Linux node runs a kernel-level service (kbridge) and a user
	// application (ukbridge) sharing the network interface (§3.2).
	p := model.Defaults()
	tp, _ := topo.New(2, 1, 1, false, false, false)
	m := New(p, tp)
	m.OSKind = func(topo.NodeID) oskernel.Kind { return oskernel.Linux }

	gotUser, gotKernel := false, false
	var userApp, kernApp *App
	userApp, _ = m.Spawn(1, "user-app", Generic, func(app *App) {
		_, eq := recvSetup(t, app, 4096, core.MDOpPut)
		waitFor(t, app, eq, core.EventPutEnd)
		gotUser = true
	})
	kernApp, _ = m.Spawn(1, "lustre-service", KernelService, func(app *App) {
		_, eq := recvSetup(t, app, 4096, core.MDOpPut)
		waitFor(t, app, eq, core.EventPutEnd)
		gotKernel = true
	})
	if userApp.Pid == kernApp.Pid {
		t.Fatal("pid collision")
	}
	m.Spawn(0, "client", Generic, func(app *App) {
		app.Proc.Sleep(50 * sim.Microsecond)
		src := app.Alloc(64)
		for _, dst := range []core.ProcessID{userApp.ID(), kernApp.ID()} {
			md, _ := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite})
			if err := app.API.Put(md, core.NoAck, dst, testPtl, 7, 0, 0); err != nil {
				t.Errorf("put to %v: %v", dst, err)
			}
		}
	})
	m.Run()
	if !gotUser || !gotKernel {
		t.Errorf("user=%v kernel=%v: bridges did not share the interface", gotUser, gotKernel)
	}
}

func TestPutWithAckEndToEnd(t *testing.T) {
	m := NewPair(model.Defaults())
	var b *App
	b, _ = m.Spawn(1, "rx", Generic, func(app *App) {
		recvSetup(t, app, 4096, core.MDOpPut)
		app.Proc.Sleep(sim.Millisecond)
	})
	sawAck := false
	m.Spawn(0, "tx", Generic, func(app *App) {
		app.Proc.Sleep(50 * sim.Microsecond)
		eq, _ := app.API.EQAlloc(16)
		src := app.Alloc(256)
		md, _ := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite, EQ: eq})
		app.API.Put(md, core.Ack, b.ID(), testPtl, 7, 0, 0)
		waitFor(t, app, eq, core.EventAck)
		sawAck = true
	})
	m.Run()
	if !sawAck {
		t.Error("ACK never arrived")
	}
}

func TestNIDistMatchesTopology(t *testing.T) {
	p := model.Defaults()
	tp, _ := topo.New(4, 1, 1, false, false, false)
	m := New(p, tp)
	var d0, d3 int
	m.Spawn(0, "app", Generic, func(app *App) {
		d0 = app.API.NIDist(0)
		d3 = app.API.NIDist(3)
	})
	m.Run()
	if d0 != 0 || d3 != 3 {
		t.Errorf("NIDist = %d,%d want 0,3", d0, d3)
	}
}

func TestGenericAndAcceleratedCoexistOnOneNode(t *testing.T) {
	// §4.1: "The existing [generic] implementation ... will continue to be
	// necessary and will run side-by-side with the accelerated
	// implementation." One Catamount node hosts both kinds; a remote
	// sender reaches each through the same SeaStar.
	m := NewPair(model.Defaults())
	gotGeneric, gotAccel := false, false
	var gen, acc *App
	gen, _ = m.Spawn(1, "generic-app", Generic, func(app *App) {
		_, eq := recvSetup(t, app, 4096, core.MDOpPut)
		waitFor(t, app, eq, core.EventPutEnd)
		gotGeneric = true
	})
	var err error
	acc, err = m.Spawn(1, "accel-app", Accelerated, func(app *App) {
		_, eq := recvSetup(t, app, 4096, core.MDOpPut)
		waitFor(t, app, eq, core.EventPutEnd)
		gotAccel = true
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Spawn(0, "client", Generic, func(app *App) {
		app.Proc.Sleep(50 * sim.Microsecond)
		src := app.Alloc(64)
		for _, dst := range []core.ProcessID{gen.ID(), acc.ID()} {
			md, _ := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite})
			if err := app.API.Put(md, core.NoAck, dst, testPtl, 7, 0, 0); err != nil {
				t.Errorf("put to %v: %v", dst, err)
			}
		}
	})
	m.Run()
	if !gotGeneric || !gotAccel {
		t.Fatalf("generic=%v accel=%v: modes did not coexist", gotGeneric, gotAccel)
	}
	// The generic delivery took interrupts; the accelerated one did not
	// add any (only the generic message's interrupts appear).
	if irq := m.Node(1).Kernel.Interrupts; irq == 0 {
		t.Error("generic app on the shared node should have used interrupts")
	}
}
