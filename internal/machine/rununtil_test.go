package machine

import (
	"bytes"
	"fmt"
	"testing"

	"portals3/internal/core"
	"portals3/internal/model"
	"portals3/internal/sim"
	"portals3/internal/topo"
)

// runHorizonDriven drives a sharded 4-node line machine with a stepped
// RunUntil loop — the RAS-monitor idiom — instead of a single Run: a
// go-back-n-free put stream 0→1 supplies traffic, node 3 sits idle with
// only its firmware heartbeat, and at a fixed horizon the driver kills
// node 3's NIC so the RAS monitor (sampling at kernel barrier ticks)
// declares it dead mid-loop. Returns a digest covering payloads, finish
// time, stats, RAS verdicts and the kernel window count.
func runHorizonDriven(t *testing.T, shards int) string {
	t.Helper()
	const msgs = 8
	p := model.Defaults()
	tp, _ := topo.New(4, 1, 1, false, false, false)
	m := NewSharded(p, tp, shards)

	var got []byte
	var done sim.Time
	var b *App
	b, _ = m.Spawn(1, "rx", Generic, func(app *App) {
		buf, eq := recvSetup(t, app, 4096, core.MDOpPut|core.MDManageRemote)
		for n := 0; n < msgs; n++ {
			ev := waitFor(t, app, eq, core.EventPutEnd)
			data := make([]byte, ev.MLength)
			buf.ReadAt(0, data)
			got = append(got, data...)
		}
		done = app.Proc.Now()
	})
	m.Spawn(0, "tx", Generic, func(app *App) {
		app.Proc.Sleep(50 * sim.Microsecond)
		eq, _ := app.API.EQAlloc(64)
		for i := 0; i < msgs; i++ {
			src := app.Alloc(1024)
			src.WriteAt(0, bytes.Repeat([]byte{byte(i + 1)}, 1024))
			md, _ := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite, EQ: eq})
			app.API.Put(md, core.NoAck, b.ID(), testPtl, 7, 0, 0)
			waitFor(t, app, eq, core.EventSendEnd)
			app.Proc.Sleep(60 * sim.Microsecond)
		}
	})
	m.Node(3) // instantiate the bystander so RAS watches it
	ras := m.StartRAS(20 * sim.Microsecond)

	// Stepped horizons well past the stream's natural finish: the monitor
	// must keep sampling (barrier ticks fire through each horizon even once
	// the lanes are quiescent) and must notice the kill three samples later.
	const killAt = 300 * sim.Microsecond
	for h := 50 * sim.Microsecond; h <= 900*sim.Microsecond; h += 50 * sim.Microsecond {
		m.RunUntil(h)
		if now := m.S.Now(); now < h {
			t.Fatalf("shards=%d: lane 0 at %v after RunUntil(%v)", shards, now, h)
		}
		if h == killAt {
			// At a RunUntil return the lanes are joined, so a coordinator-side
			// mutation of node state is race-free at any shard count.
			m.Node(3).NIC.Kill()
		}
	}
	m.Run()

	if len(got) != msgs*1024 {
		t.Fatalf("shards=%d: received %d bytes, want %d", shards, len(got), msgs*1024)
	}
	var sb bytes.Buffer
	fmt.Fprintf(&sb, "rx_done_ps=%d finish_ps=%d windows=%d\n", done, m.S.Now(), m.ShardKernel().Windows)
	fmt.Fprintf(&sb, "payload=%x\n", got[:64])
	for _, d := range ras.Dead() {
		fmt.Fprintf(&sb, "dead: %s\n", d)
	}
	sb.WriteString(m.Stats().String())
	return sb.String()
}

// TestRunUntilShardedBitIdentity: a horizon-driven sharded run — RunUntil
// steps with a mid-loop NIC kill observed by the RAS monitor — produces a
// byte-identical digest at every shard count. This is the idiom seqOnly
// used to reject; it now runs on the parallel kernel with the horizon
// rounded up to the next window barrier.
func TestRunUntilShardedBitIdentity(t *testing.T) {
	ref := runHorizonDriven(t, 1)
	if len(ref) == 0 {
		t.Fatal("empty reference digest")
	}
	for _, d := range []string{"dead: node 3"} {
		if !bytes.Contains([]byte(ref), []byte(d)) {
			t.Fatalf("reference digest missing %q:\n%s", d, ref)
		}
	}
	for _, shards := range []int{2, 4} {
		if got := runHorizonDriven(t, shards); got != ref {
			t.Errorf("shards=%d digest diverges from shards=1:\n--- ref\n%s\n--- got\n%s", shards, ref, got)
		}
	}
}

// TestNewShardedClampsLaneCount: asking for more lanes than nodes (or a
// non-positive count) must not build degenerate partitions — the lane map
// would skip indices and leave permanently empty lanes. The clamp keeps
// results identical anyway, checked via the horizon-driven digest.
func TestNewShardedClampsLaneCount(t *testing.T) {
	tp, _ := topo.New(4, 1, 1, false, false, false)
	for _, tc := range []struct{ ask, want int }{{0, 1}, {-3, 1}, {4, 4}, {9, 4}} {
		m := NewSharded(model.Defaults(), tp, tc.ask)
		if got := m.ShardKernel().Shards(); got != tc.want {
			t.Errorf("NewSharded(4 nodes, shards=%d): %d lanes, want %d", tc.ask, got, tc.want)
		}
	}
	if ref, got := runHorizonDriven(t, 1), runHorizonDriven(t, 16); got != ref {
		t.Errorf("clamped shards=16 digest diverges from shards=1:\n--- ref\n%s\n--- got\n%s", ref, got)
	}
}
