package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// Tests for the two-lane event kernel: the 4-ary heap plus the
// same-timestamp FIFO fast lane must dispatch in exactly the
// (time, insertion order) sequence the original single-heap kernel did.

// TestDispatchOrderMatchesSpec is a differential test: a randomized,
// self-rescheduling workload mixing zero delays (ring lane), small delays
// and large delays (heap lane) must fire in exactly the order given by a
// stable sort of the schedule requests on timestamp — which is the kernel's
// documented (time, insertion order) contract.
func TestDispatchOrderMatchesSpec(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New()
	type rec struct {
		at  Time
		idx int
	}
	var scheduled []rec
	var fired []int
	var schedule func(depth int)
	n := 0
	schedule = func(depth int) {
		k := rng.Intn(4) + 1
		for i := 0; i < k; i++ {
			var d Time
			switch rng.Intn(3) {
			case 0:
				d = 0 // ring lane
			case 1:
				d = Time(rng.Intn(3)) * Nanosecond // collides with ring entries
			default:
				d = Time(rng.Intn(50)) * Nanosecond
			}
			idx := n
			n++
			scheduled = append(scheduled, rec{at: s.Now() + d, idx: idx})
			s.After(d, func() {
				fired = append(fired, idx)
				if depth < 5 && rng.Intn(2) == 0 {
					schedule(depth + 1)
				}
			})
		}
	}
	for root := 0; root < 25; root++ {
		schedule(0)
	}
	s.Run()

	expect := append([]rec(nil), scheduled...)
	sort.SliceStable(expect, func(i, j int) bool { return expect[i].at < expect[j].at })
	if len(fired) != len(expect) {
		t.Fatalf("fired %d of %d scheduled events", len(fired), len(expect))
	}
	for i := range expect {
		if fired[i] != expect[i].idx {
			t.Fatalf("dispatch %d: fired event %d, spec says %d", i, fired[i], expect[i].idx)
		}
	}
	if n < 100 {
		t.Fatalf("workload too small to be meaningful: %d events", n)
	}
}

// TestZeroDelayRunsAfterSameTimeHeapEntries pins the subtle ordering case:
// events already in the heap for time T were scheduled before the clock
// reached T, so they must run before any zero-delay event scheduled from
// within T's first handler.
func TestZeroDelayRunsAfterSameTimeHeapEntries(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		s.After(5*Nanosecond, func() {
			if i == 0 {
				// Scheduled mid-timestamp: both forms take the fast lane and
				// must still run after the two remaining heap entries.
				s.After(0, func() { order = append(order, 10) })
				s.At(s.Now(), func() { order = append(order, 11) })
			}
			order = append(order, i)
		})
	}
	s.Run()
	want := []int{0, 1, 2, 10, 11}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestZeroDelayChainStaysAtNow: a long chain of zero-delay handlers must
// not advance the clock, and every link must fire.
func TestZeroDelayChainStaysAtNow(t *testing.T) {
	s := New()
	s.After(3*Nanosecond, func() {})
	s.Run() // put the clock at a non-zero time first
	const depth = 10_000
	n := 0
	var link func()
	link = func() {
		if s.Now() != 3*Nanosecond {
			t.Fatalf("clock moved to %v inside zero-delay chain", s.Now())
		}
		n++
		if n < depth {
			s.After(0, link)
		}
	}
	s.After(0, link)
	s.Run()
	if n != depth {
		t.Fatalf("chain fired %d of %d links", n, depth)
	}
}

// TestRunUntilWithZeroDelayCascade: zero-delay work spawned by an event
// exactly at the horizon still belongs to the horizon and must run; later
// heap events must not.
func TestRunUntilWithZeroDelayCascade(t *testing.T) {
	s := New()
	var ran []string
	s.After(10*Nanosecond, func() {
		s.After(0, func() { ran = append(ran, "cascade") })
		ran = append(ran, "edge")
	})
	s.After(20*Nanosecond, func() { ran = append(ran, "late") })
	s.RunUntil(10 * Nanosecond)
	if len(ran) != 2 || ran[0] != "edge" || ran[1] != "cascade" {
		t.Fatalf("ran = %v, want [edge cascade]", ran)
	}
	if s.Now() != 10*Nanosecond {
		t.Fatalf("now = %v", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	s.RunUntil(30 * Nanosecond)
	if len(ran) != 3 || ran[2] != "late" {
		t.Fatalf("ran = %v", ran)
	}
	if s.Now() != 30*Nanosecond {
		t.Fatalf("now = %v, want 30ns", s.Now())
	}
}

// TestStopInsideZeroDelayLane: Stop from a ring-lane handler halts the loop
// with the rest of the ring still pending, and a later Run resumes it at
// the same timestamp.
func TestStopInsideZeroDelayLane(t *testing.T) {
	s := New()
	var order []int
	s.After(0, func() { order = append(order, 1); s.Stop() })
	s.After(0, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 1 || order[0] != 1 {
		t.Fatalf("order = %v, want [1]", order)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	s.Run()
	if len(order) != 2 || order[1] != 2 {
		t.Fatalf("order = %v, want [1 2]", order)
	}
	if s.Now() != 0 {
		t.Fatalf("zero-delay events moved the clock to %v", s.Now())
	}
}

// TestPastSchedulingPanicsAfterAdvance: the past-scheduling guard must hold
// for both lanes once the clock has moved.
func TestPastSchedulingPanicsAfterAdvance(t *testing.T) {
	s := New()
	s.After(10*Nanosecond, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Error("expected panic scheduling At() in the past")
		}
	}()
	s.At(5*Nanosecond, func() {})
}

// TestNegativeAfterClampsToNow: After with a negative delay is a zero-delay
// schedule, never a past schedule.
func TestNegativeAfterClampsToNow(t *testing.T) {
	s := New()
	ran := false
	s.After(4*Nanosecond, func() {
		s.After(-3*Nanosecond, func() { ran = true })
	})
	s.Run()
	if !ran {
		t.Fatal("negative-delay event never ran")
	}
	if s.Now() != 4*Nanosecond {
		t.Fatalf("now = %v", s.Now())
	}
}

// TestRingGrowthPreservesFIFO: pushing far past the ring's initial capacity
// from inside a single timestamp must keep strict FIFO order across the
// unwrap-and-copy growth path.
func TestRingGrowthPreservesFIFO(t *testing.T) {
	s := New()
	const n = 1000
	var order []int
	s.After(Nanosecond, func() {
		for i := 0; i < n; i++ {
			i := i
			s.After(0, func() { order = append(order, i) })
		}
	})
	s.Run()
	if len(order) != n {
		t.Fatalf("fired %d of %d", len(order), n)
	}
	if !sort.IntsAreSorted(order) {
		t.Fatal("ring growth broke FIFO order")
	}
}

// TestHeapStressManyPending keeps a deep heap live and checks the 4-ary
// sift paths by firing thousands of events in nondecreasing time order.
func TestHeapStressManyPending(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := New()
	var last Time = -1
	fired := 0
	for i := 0; i < 5000; i++ {
		s.After(Time(rng.Intn(10_000))*Nanosecond, func() {
			if s.Now() < last {
				t.Fatalf("time went backwards: %v after %v", s.Now(), last)
			}
			last = s.Now()
			fired++
		})
	}
	s.Run()
	if fired != 5000 {
		t.Fatalf("fired %d of 5000", fired)
	}
}

// TestMaxEventsGuardCoversRingLane: the runaway guard must also trip on a
// zero-delay livelock, which never advances the clock.
func TestMaxEventsGuardCoversRingLane(t *testing.T) {
	s := New()
	s.MaxEvents = 100
	var loop func()
	loop = func() { s.After(0, loop) }
	s.After(0, loop)
	defer func() {
		if recover() == nil {
			t.Error("expected runaway panic from zero-delay livelock")
		}
	}()
	s.Run()
}
