package sim

import (
	"fmt"
	"math/rand"
)

// event is one scheduled callback. Events are stored inline (by value) in
// the kernel's queues: pushing one costs no heap allocation and popping one
// touches no pointer indirection. The queue backing arrays are the free
// list — popped slots are cleared and their storage reused by later pushes.
type event struct {
	at  Time
	seq uint64 // insertion order, breaks ties deterministically
	fn  func()
}

// less is the global dispatch order: time first, insertion order second.
func (e event) less(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Sim is a discrete-event simulator: a virtual clock and a two-lane event
// queue. It is not safe for concurrent use; all model code runs on the
// simulator's goroutine (coroutine processes hand control back and forth,
// never run in parallel).
//
// The queue has two lanes:
//
//   - a hand-rolled 4-ary min-heap of inline event records, keyed on
//     (time, insertion order), for events in the future, and
//   - a FIFO ring holding events scheduled for the current instant — the
//     zero-delay lane. After(0) and At(now) are the common case in the
//     firmware and fabric models (handler chaining, credit grants, posted
//     writes), and appending to a ring is much cheaper than a heap sift.
//
// The two lanes together dispatch in exactly the (time, insertion order)
// sequence a single heap would: ring entries all carry the current time, so
// the ring drains before the clock may advance, and a ring head only runs
// once no heap entry at the same time with a smaller sequence remains.
type Sim struct {
	now     Time
	heap    []event // 4-ary min-heap: future events
	ring    []event // power-of-two circular buffer: events at time now
	ringHd  int
	ringLen int
	seq     uint64
	stopped bool
	rng     *rand.Rand

	// Fired counts events executed, for diagnostics and runaway detection.
	Fired uint64
	// MaxEvents aborts the run (panic) when exceeded; 0 means no limit.
	MaxEvents uint64

	procs int // live coroutine processes, for deadlock diagnostics
}

// New returns a simulator with its clock at zero and a deterministic RNG.
func New() *Sim {
	return &Sim{rng: rand.New(rand.NewSource(0x5ea57a7))}
}

// NewSeeded returns a simulator whose RNG is seeded with seed.
func NewSeeded(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulator's deterministic random source. Model code must
// use this generator and no other so runs stay reproducible.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// ringPush appends an event at the tail of the zero-delay lane.
func (s *Sim) ringPush(ev event) {
	if s.ringLen == len(s.ring) {
		s.ringGrow()
	}
	s.ring[(s.ringHd+s.ringLen)&(len(s.ring)-1)] = ev
	s.ringLen++
}

// ringGrow doubles the ring, unwrapping it to the front of the new buffer.
func (s *Sim) ringGrow() {
	n := len(s.ring) * 2
	if n == 0 {
		n = 16
	}
	buf := make([]event, n)
	for i := 0; i < s.ringLen; i++ {
		buf[i] = s.ring[(s.ringHd+i)&(len(s.ring)-1)]
	}
	s.ring = buf
	s.ringHd = 0
}

// ringPop removes and returns the head of the zero-delay lane. The slot is
// cleared so the closure is released; the storage stays pooled in the ring.
func (s *Sim) ringPop() event {
	ev := s.ring[s.ringHd]
	s.ring[s.ringHd] = event{}
	s.ringHd = (s.ringHd + 1) & (len(s.ring) - 1)
	s.ringLen--
	return ev
}

// heapPush inserts ev into the 4-ary min-heap.
func (s *Sim) heapPush(ev event) {
	h := append(s.heap, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !ev.less(h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = ev
	s.heap = h
}

// heapPop removes and returns the minimum event. The vacated tail slot is
// cleared (releasing its closure) and its storage reused by later pushes.
func (s *Sim) heapPop() event {
	h := s.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{}
	h = h[:n]
	s.heap = h
	if n == 0 {
		return top
	}
	// Sift last down from the root. With 4 children per node the tree is
	// half as deep as a binary heap, and the whole hot prefix stays in a
	// couple of cache lines.
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		min := c
		for j := c + 1; j < end; j++ {
			if h[j].less(h[min]) {
				min = j
			}
		}
		if !h[min].less(last) {
			break
		}
		h[i] = h[min]
		i = min
	}
	h[i] = last
	return top
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a model bug.
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	s.seq++
	ev := event{at: t, seq: s.seq, fn: fn}
	if t == s.now {
		s.ringPush(ev)
		return
	}
	s.heapPush(ev)
}

// After schedules fn to run d from now. A non-positive d runs fn on the next
// dispatch at the current time (still after all work already queued for now).
func (s *Sim) After(d Time, fn func()) {
	s.seq++
	if d <= 0 {
		s.ringPush(event{at: s.now, seq: s.seq, fn: fn})
		return
	}
	s.heapPush(event{at: s.now + d, seq: s.seq, fn: fn})
}

// Stop makes Run return after the currently executing event.
func (s *Sim) Stop() { s.stopped = true }

// step executes the next event. It reports false when no events remain.
func (s *Sim) step() bool {
	var ev event
	if s.ringLen > 0 {
		// Ring entries are all at time now. A heap entry at the same time
		// with a smaller sequence was scheduled before the clock reached
		// now and must run first.
		if len(s.heap) > 0 && s.heap[0].at == s.now && s.heap[0].seq < s.ring[s.ringHd].seq {
			ev = s.heapPop()
		} else {
			ev = s.ringPop()
		}
	} else {
		if len(s.heap) == 0 {
			return false
		}
		ev = s.heapPop()
		if ev.at < s.now {
			panic("sim: time went backwards")
		}
		s.now = ev.at
	}
	s.Fired++
	if s.MaxEvents != 0 && s.Fired > s.MaxEvents {
		panic(fmt.Sprintf("sim: exceeded MaxEvents=%d at %v", s.MaxEvents, s.now))
	}
	ev.fn()
	return true
}

// Run executes events until the queue is empty or Stop is called.
// If coroutine processes are still alive when the queue drains, they are
// deadlocked (waiting on a signal nobody will raise); Run panics with a
// diagnostic rather than silently returning.
func (s *Sim) Run() {
	s.stopped = false
	for !s.stopped && s.step() {
	}
	if !s.stopped && s.procs > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) still blocked with no pending events at %v", s.procs, s.now))
	}
}

// nextAt reports the timestamp of the next event to dispatch, if any.
func (s *Sim) nextAt() (Time, bool) {
	if s.ringLen > 0 {
		return s.now, true
	}
	if len(s.heap) > 0 {
		return s.heap[0].at, true
	}
	return 0, false
}

// RunUntil executes events with timestamps ≤ t, then sets the clock to t.
// Processes blocked past the horizon are left blocked; this is not a
// deadlock.
func (s *Sim) RunUntil(t Time) {
	s.stopped = false
	for !s.stopped {
		at, ok := s.nextAt()
		if !ok || at > t {
			break
		}
		s.step()
	}
	if !s.stopped && s.now < t {
		s.now = t
	}
}

// Pending reports how many events are queued across both lanes.
func (s *Sim) Pending() int { return len(s.heap) + s.ringLen }
