package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// event is one scheduled callback.
type event struct {
	at  Time
	seq uint64 // insertion order, breaks ties deterministically
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Sim is a discrete-event simulator: a virtual clock and an event heap.
// It is not safe for concurrent use; all model code runs on the simulator's
// goroutine (coroutine processes hand control back and forth, never run in
// parallel).
type Sim struct {
	now     Time
	events  eventHeap
	seq     uint64
	stopped bool
	rng     *rand.Rand

	// Fired counts events executed, for diagnostics and runaway detection.
	Fired uint64
	// MaxEvents aborts the run (panic) when exceeded; 0 means no limit.
	MaxEvents uint64

	procs int // live coroutine processes, for deadlock diagnostics
}

// New returns a simulator with its clock at zero and a deterministic RNG.
func New() *Sim {
	return &Sim{rng: rand.New(rand.NewSource(0x5ea57a7))}
}

// NewSeeded returns a simulator whose RNG is seeded with seed.
func NewSeeded(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulator's deterministic random source. Model code must
// use this generator and no other so runs stay reproducible.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a model bug.
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.events, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d from now. A non-positive d runs fn on the next
// dispatch at the current time (still after all work already queued for now).
func (s *Sim) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now+d, fn)
}

// Stop makes Run return after the currently executing event.
func (s *Sim) Stop() { s.stopped = true }

// step executes the next event. It reports false when no events remain.
func (s *Sim) step() bool {
	if len(s.events) == 0 {
		return false
	}
	ev := heap.Pop(&s.events).(*event)
	if ev.at < s.now {
		panic("sim: time went backwards")
	}
	s.now = ev.at
	s.Fired++
	if s.MaxEvents != 0 && s.Fired > s.MaxEvents {
		panic(fmt.Sprintf("sim: exceeded MaxEvents=%d at %v", s.MaxEvents, s.now))
	}
	ev.fn()
	return true
}

// Run executes events until the heap is empty or Stop is called.
// If coroutine processes are still alive when the heap drains, they are
// deadlocked (waiting on a signal nobody will raise); Run panics with a
// diagnostic rather than silently returning.
func (s *Sim) Run() {
	s.stopped = false
	for !s.stopped && s.step() {
	}
	if !s.stopped && s.procs > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) still blocked with no pending events at %v", s.procs, s.now))
	}
}

// RunUntil executes events with timestamps ≤ t, then sets the clock to t.
// Processes blocked past the horizon are left blocked; this is not a
// deadlock.
func (s *Sim) RunUntil(t Time) {
	s.stopped = false
	for !s.stopped && len(s.events) > 0 && s.events[0].at <= t {
		s.step()
	}
	if !s.stopped && s.now < t {
		s.now = t
	}
}

// Pending reports how many events are queued.
func (s *Sim) Pending() int { return len(s.events) }
