// Host-execution profiler for the sharded kernel: per-lane wall-clock
// accounting of where the *simulator's own* time goes — the host-side
// mirror of the virtual-time observers. Every observer built before this
// one watches the simulated machine; this plane watches the machine
// running the simulation, which is what lane-count and lookahead tuning
// at 10k-node scale needs.
//
// The accounting decomposes each synchronization window's wall-clock into
// three segments, timestamped so consecutive segments share a boundary
// reading (no unattributed gaps):
//
//   - drain: the coordinator's serial work between windows — mailbox
//     drain, the minimum-event scan, barrier ticks, and loop bookkeeping.
//     Every lane is idle during this segment, so it is charged globally.
//   - busy (per lane): the lane's own RunUntil(h) execution, measured by
//     the goroutine that ran it.
//   - wait (per lane): the window's fork-to-join wall minus the lane's
//     busy time — the time the lane sat at the barrier waiting for the
//     window's straggler.
//
// By construction busy(i) + wait(i) + drain == profiled wall for every
// lane i, up to clock-read granularity; TestKernelHostProfileAccounting
// pins the identity to within 5%.
//
// Everything here reads host clocks and host memory statistics only — it
// never feeds back into lane state or event ordering, so enabling the
// profiler cannot perturb the simulated results
// (TestTorusDifferentialHostProfiler pins digests byte-identical with it
// on and off). Its artifacts are wall-clock and therefore nondeterministic:
// they must never enter a differential digest.
package sim

import (
	"runtime"
	"time"
)

// memSampleStride is how many window barriers pass between ReadMemStats
// watermark samples. ReadMemStats briefly stops the world, and long runs
// execute hundreds of thousands of windows; sampling every stride-th
// barrier (plus every progress report and one final sample at snapshot
// time) keeps the watermarks honest at a negligible cost.
const memSampleStride = 32

// LaneProfile is one lane's share of the host-execution accounting.
type LaneProfile struct {
	Lane   int
	BusyNs int64 // wall-clock spent executing this lane's events
	WaitNs int64 // wall-clock spent at window barriers waiting for stragglers
	Events uint64
	// StragglerWindows counts windows in which this lane had the longest
	// busy time — the window's critical path, the lane everyone else
	// waited for.
	StragglerWindows uint64
}

// KernelProfile is a snapshot of the kernel's host-execution profile.
type KernelProfile struct {
	Shards  int
	Windows uint64
	WallNs  int64 // total profiled wall-clock (drain + window execution)
	ExecNs  int64 // fork-to-join window execution
	DrainNs int64 // coordinator drain/scan/tick segments (all lanes idle)
	Events  uint64

	// Lane load-imbalance per window: skew = (max busy − mean busy) / mean
	// busy, in percent, over windows with nonzero mean busy time.
	MeanImbalancePct float64
	MaxImbalancePct  float64

	// Host memory watermarks, sampled at window barriers.
	MemSamples    int
	HeapInuseHigh uint64
	HeapAllocHigh uint64
	SysHigh       uint64
	NumGC         uint32

	Lanes []LaneProfile
}

// HostProgress is one live progress snapshot, delivered to the function
// registered with SetProgress from the coordinator goroutine at a window
// barrier. The callback must not touch lane state; it exists to print a
// line and return.
type HostProgress struct {
	SimNow  Time // current window horizon (virtual time)
	Horizon Time // RunUntil target when one is active, else 0
	WallNs  int64
	Windows uint64
	Events  uint64

	SimRate      float64 // virtual microseconds per wall second, last interval
	EventRate    float64 // events per wall second, last interval
	ImbalancePct float64 // mean lane imbalance over the last interval
	HeapInuse    uint64

	// ETANs estimates the wall-clock nanoseconds until SimNow reaches
	// Horizon at the last interval's rate; negative when no horizon is
	// active or the rate is zero.
	ETANs int64
}

// hostProf is the kernel's live profiler state. All fields are owned by
// the coordinator goroutine; lane busy times cross over through
// Kernel.laneBusy, whose slots are written by each lane's runner during a
// window and read by the coordinator after the join (the join channel
// provides the happens-before edge).
type hostProf struct {
	start   time.Time
	wallNs  int64
	execNs  int64
	drainNs int64
	windows uint64

	lanes     []LaneProfile
	prevFired []uint64

	imbSum     float64
	imbMax     float64
	imbWindows uint64

	memSamples    int
	heapInuseHigh uint64
	heapAllocHigh uint64
	sysHigh       uint64
	numGC         uint32

	// Live progress reporting.
	every      time.Duration
	progressFn func(HostProgress)
	lastReport time.Time
	lastEvents uint64
	lastSim    Time
	intSum     float64 // interval imbalance accumulator
	intWindows uint64
	horizon    Time // active RunUntil target, 0 otherwise
}

// EnableHostProfile arms the host-execution profiler. Call it before Run;
// with it off the kernel takes one nil check per window and measures
// nothing.
func (k *Kernel) EnableHostProfile() {
	if k.prof != nil {
		return
	}
	n := len(k.lanes)
	p := &hostProf{
		start:     time.Now(),
		lanes:     make([]LaneProfile, n),
		prevFired: make([]uint64, n),
	}
	for i := range p.lanes {
		p.lanes[i].Lane = i
	}
	p.lastReport = p.start
	k.prof = p
	if k.laneBusy == nil {
		k.laneBusy = make([]int64, n)
	}
}

// SetProgress registers fn to receive live host-execution snapshots about
// every `every` of wall-clock, checked at window barriers (a window that
// outlasts the period delays the report to its barrier). Implies
// EnableHostProfile. fn runs on the coordinator goroutine between
// windows; it must not schedule events, post mail, or touch lane state.
func (k *Kernel) SetProgress(every time.Duration, fn func(HostProgress)) {
	if every <= 0 {
		every = time.Second
	}
	k.EnableHostProfile()
	k.prof.every = every
	k.prof.progressFn = fn
}

// Profile returns a snapshot of the host-execution profile (nil when the
// profiler was never enabled), taking a final memory watermark sample.
// Call it after Run from the driver goroutine.
func (k *Kernel) Profile() *KernelProfile {
	p := k.prof
	if p == nil {
		return nil
	}
	p.sampleMem()
	kp := &KernelProfile{
		Shards:  len(k.lanes),
		Windows: p.windows,
		WallNs:  p.wallNs,
		ExecNs:  p.execNs,
		DrainNs: p.drainNs,

		MaxImbalancePct: p.imbMax,
		MemSamples:      p.memSamples,
		HeapInuseHigh:   p.heapInuseHigh,
		HeapAllocHigh:   p.heapAllocHigh,
		SysHigh:         p.sysHigh,
		NumGC:           p.numGC,
		Lanes:           append([]LaneProfile(nil), p.lanes...),
	}
	for i := range kp.Lanes {
		kp.Events += kp.Lanes[i].Events
	}
	if p.imbWindows > 0 {
		kp.MeanImbalancePct = p.imbSum / float64(p.imbWindows)
	}
	return kp
}

// window absorbs one executed window: per-lane busy/wait, straggler
// attribution, imbalance skew, event counts, and the strided memory
// sample, then fires a progress report if one is due.
func (p *hostProf) window(k *Kernel, exec time.Duration) {
	p.execNs += int64(exec)
	p.windows++
	var maxBusy int64 = -1
	var sumBusy int64
	straggler := 0
	for i := range k.lanes {
		b := k.laneBusy[i]
		l := &p.lanes[i]
		l.BusyNs += b
		if w := int64(exec) - b; w > 0 {
			l.WaitNs += w
		}
		f := k.lanes[i].Fired
		l.Events += f - p.prevFired[i]
		p.prevFired[i] = f
		sumBusy += b
		if b > maxBusy {
			maxBusy, straggler = b, i
		}
	}
	p.lanes[straggler].StragglerWindows++
	if n := len(k.lanes); n > 1 && sumBusy > 0 {
		mean := float64(sumBusy) / float64(n)
		skew := (float64(maxBusy) - mean) / mean * 100
		p.imbSum += skew
		p.imbWindows++
		p.intSum += skew
		p.intWindows++
		if skew > p.imbMax {
			p.imbMax = skew
		}
	}
	if p.windows%memSampleStride == 0 {
		p.sampleMem()
	}
	if p.progressFn != nil {
		p.maybeProgress(k)
	}
}

// tail charges wall-clock spent outside the window loop — the RunUntil
// clock lift, final tick firing, and Run's deadlock scan — to the drain
// (coordinator bookkeeping) bucket.
func (p *hostProf) tail(d time.Duration) {
	p.wallNs += int64(d)
	p.drainNs += int64(d)
}

// sampleMem takes one ReadMemStats watermark sample.
func (p *hostProf) sampleMem() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.memSamples++
	if ms.HeapInuse > p.heapInuseHigh {
		p.heapInuseHigh = ms.HeapInuse
	}
	if ms.HeapAlloc > p.heapAllocHigh {
		p.heapAllocHigh = ms.HeapAlloc
	}
	if ms.Sys > p.sysHigh {
		p.sysHigh = ms.Sys
	}
	p.numGC = ms.NumGC
}

// maybeProgress delivers a progress snapshot when the report period has
// elapsed, computing interval rates against the previous report.
func (p *hostProf) maybeProgress(k *Kernel) {
	now := time.Now()
	elapsed := now.Sub(p.lastReport)
	if elapsed < p.every {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.memSamples++
	if ms.HeapInuse > p.heapInuseHigh {
		p.heapInuseHigh = ms.HeapInuse
	}
	if ms.HeapAlloc > p.heapAllocHigh {
		p.heapAllocHigh = ms.HeapAlloc
	}
	if ms.Sys > p.sysHigh {
		p.sysHigh = ms.Sys
	}
	p.numGC = ms.NumGC

	simNow := k.horizon
	var events uint64
	for i := range p.lanes {
		events += p.lanes[i].Events
	}
	secs := elapsed.Seconds()
	hp := HostProgress{
		SimNow:    simNow,
		Horizon:   p.horizon,
		WallNs:    int64(now.Sub(p.start)),
		Windows:   p.windows,
		Events:    events,
		SimRate:   float64(simNow-p.lastSim) / float64(Microsecond) / secs,
		EventRate: float64(events-p.lastEvents) / secs,
		HeapInuse: ms.HeapInuse,
		ETANs:     -1,
	}
	if p.intWindows > 0 {
		hp.ImbalancePct = p.intSum / float64(p.intWindows)
	}
	if p.horizon > simNow && p.horizon != Never && simNow > p.lastSim {
		wallPerPs := float64(elapsed.Nanoseconds()) / float64(simNow-p.lastSim)
		hp.ETANs = int64(float64(p.horizon-simNow) * wallPerPs)
	}
	p.lastReport = now
	p.lastEvents = events
	p.lastSim = simNow
	p.intSum, p.intWindows = 0, 0
	p.progressFn(hp)
}
