package sim

import (
	"fmt"
	"strings"
	"testing"
)

// shardTrace runs a small token-passing model — N logical nodes passing
// counters around with cross-node latency ≥ lookahead — over the given
// shard count and returns each node's event log concatenated in node
// order. The log must be invariant under resharding.
func shardTrace(t *testing.T, nodes, shards int, hops int) string {
	return shardTraceDriven(t, nodes, shards, hops, func(k *Kernel) { k.Run() })
}

func shardTraceDriven(t *testing.T, nodes, shards int, hops int, drive func(*Kernel)) string {
	t.Helper()
	const L = Time(100)
	k := NewKernel(shards, L)
	laneOf := func(n int) int { return n * shards / nodes }
	logs := make([][]string, nodes)
	seqs := make([]uint64, nodes)

	// step executes at node n: log, then hand the token to two other nodes
	// (fan-out of 2 exercises same-timestamp ties through the mailbox).
	var step func(n, remaining int, tok int)
	step = func(n, remaining, tok int) {
		now := k.Lane(laneOf(n)).Now()
		logs[n] = append(logs[n], fmt.Sprintf("n%d t%d tok%d", n, now, tok))
		if remaining == 0 {
			return
		}
		for i, dst := range []int{(n + 3) % nodes, (n + 5) % nodes} {
			dst := dst
			at := now + L + Time(tok%3)
			tok2 := tok*2 + i
			seqs[n]++
			k.Post(laneOf(n), laneOf(dst), at, int32(n), seqs[n], func() {
				step(dst, remaining-1, tok2)
			})
		}
	}
	for n := 0; n < nodes; n++ {
		n := n
		k.Lane(laneOf(n)).At(Time(10+n%2), func() { step(n, hops, n) })
	}
	drive(k)
	var sb strings.Builder
	for n := 0; n < nodes; n++ {
		for _, l := range logs[n] {
			sb.WriteString(l)
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// TestKernelReshardingInvariance is the kernel-level bit-identity check:
// the same model produces the same per-node event logs at any shard count.
func TestKernelReshardingInvariance(t *testing.T) {
	const nodes, hops = 8, 6
	ref := shardTrace(t, nodes, 1, hops)
	if !strings.Contains(ref, "tok") || len(ref) == 0 {
		t.Fatalf("reference trace empty")
	}
	for _, shards := range []int{2, 3, 4, 8} {
		got := shardTrace(t, nodes, shards, hops)
		if got != ref {
			t.Errorf("shards=%d trace diverges from shards=1:\nref:\n%s\ngot:\n%s", shards, ref, got)
		}
	}
}

// TestKernelLookaheadViolationPanics: a cross-lane post inside the current
// window is a broken model contract and must be caught, not silently
// misordered.
func TestKernelLookaheadViolationPanics(t *testing.T) {
	k := NewKernel(2, 100)
	k.Lane(0).At(10, func() {
		// at == now is far inside the horizon (10+100-1).
		k.Post(0, 1, 10, 0, 1, func() {})
	})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected lookahead-violation panic")
		} else if !strings.Contains(fmt.Sprint(r), "lookahead") {
			t.Fatalf("wrong panic: %v", r)
		}
	}()
	k.Run()
}

// TestKernelDeadlockPanics: a coroutine still parked when every lane and
// mailbox is empty is a deadlock, reported like Sim.Run does.
func TestKernelDeadlockPanics(t *testing.T) {
	k := NewKernel(2, 100)
	s := k.Lane(1)
	sig := NewSignal(s)
	s.Go("stuck", func(p *Proc) { sig.Wait(p) })
	k.Lane(0).At(5, func() {})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected deadlock panic")
		} else if !strings.Contains(fmt.Sprint(r), "deadlock") {
			t.Fatalf("wrong panic: %v", r)
		}
	}()
	k.Run()
}

// TestKernelQuiescentTimes: after Run, every lane sits at the same final
// horizon, so the machine clock is well-defined and shard-invariant.
func TestKernelQuiescentTimes(t *testing.T) {
	var finish []Time
	for _, shards := range []int{1, 2, 4} {
		k := NewKernel(shards, 55)
		for i := 0; i < shards; i++ {
			k.Lane(i).At(Time(40+i), func() {})
		}
		k.Run()
		for i := 1; i < shards; i++ {
			if k.Lane(i).Now() != k.Lane(0).Now() {
				t.Errorf("shards=%d: lane %d at %v, lane 0 at %v", shards, i, k.Lane(i).Now(), k.Lane(0).Now())
			}
		}
		finish = append(finish, k.Now())
	}
	// Note the *absolute* finish time is allowed to differ across these
	// three kernels (the lanes hold different initial events); what matters
	// is intra-kernel agreement, checked above.
	_ = finish
}

// TestKernelRunUntilPrefixInvariance: a run driven by RunUntil horizons
// then finished with Run produces exactly the per-node event logs of a
// plain Run, at every shard count — the window prefix executed by RunUntil
// is what Run would have executed, and the resumed run continues it.
func TestKernelRunUntilPrefixInvariance(t *testing.T) {
	const nodes, hops = 8, 6
	ref := shardTrace(t, nodes, 1, hops)
	stepped := func(k *Kernel) {
		for h := Time(50); h <= 900; h += 50 {
			k.RunUntil(h)
			if now := k.Lane(0).Now(); now < h {
				t.Fatalf("after RunUntil(%d) lane 0 sits at %d", h, now)
			}
		}
		k.Run()
	}
	for _, shards := range []int{1, 2, 4} {
		if got := shardTraceDriven(t, nodes, shards, hops, stepped); got != ref {
			t.Errorf("shards=%d: RunUntil-driven trace diverges from plain Run:\nref:\n%s\ngot:\n%s", shards, ref, got)
		}
	}
}

// TestKernelRunUntilHorizonRounding pins the documented semantics: the
// window containing the limit runs to its full barrier (events within
// lookahead−1 beyond t execute with it), later events wait, and the lane
// clocks never read below t afterwards.
func TestKernelRunUntilHorizonRounding(t *testing.T) {
	k := NewKernel(2, 100)
	var fired []Time
	for _, at := range []Time{200, 250, 320, 700} {
		at := at
		k.Lane(1).At(at, func() { fired = append(fired, at) })
	}
	// Window m=200, horizon 299: 200 and 250 run, 320 (beyond the barrier)
	// and 700 do not — even though 320 > t was never requested.
	k.RunUntil(210)
	if want := []Time{200, 250}; fmt.Sprint(fired) != fmt.Sprint(want) {
		t.Fatalf("RunUntil(210) executed %v, want %v", fired, want)
	}
	for i := 0; i < 2; i++ {
		if now := k.Lane(i).Now(); now < 210 {
			t.Fatalf("lane %d at %v after RunUntil(210)", i, now)
		}
	}
	k.RunUntil(320)
	if want := []Time{200, 250, 320}; fmt.Sprint(fired) != fmt.Sprint(want) {
		t.Fatalf("RunUntil(320) executed %v, want %v", fired, want)
	}
	k.Run()
	if want := []Time{200, 250, 320, 700}; fmt.Sprint(fired) != fmt.Sprint(want) {
		t.Fatalf("final Run executed %v, want %v", fired, want)
	}
}

// TestKernelRunUntilTicksPastQuiescence: barrier ticks due at or before the
// horizon fire even after the lanes run dry — the property that lets a
// sharded RAS monitor keep sampling under a RunUntil-driven loop, exactly
// like a classic Sim's self-rescheduling monitor.
func TestKernelRunUntilTicksPastQuiescence(t *testing.T) {
	k := NewKernel(2, 100)
	var ticks []Time
	k.Every(100, func(at Time) { ticks = append(ticks, at) })
	k.Lane(0).At(10, func() {})
	k.RunUntil(550)
	if want := []Time{100, 200, 300, 400, 500}; fmt.Sprint(ticks) != fmt.Sprint(want) {
		t.Fatalf("ticks after RunUntil(550) = %v, want %v", ticks, want)
	}
	// A second horizon keeps the cadence without refiring anything.
	k.RunUntil(800)
	if want := []Time{100, 200, 300, 400, 500, 600, 700, 800}; fmt.Sprint(ticks) != fmt.Sprint(want) {
		t.Fatalf("ticks after RunUntil(800) = %v, want %v", ticks, want)
	}
	k.Run() // quiescent already; must not panic or fire more ticks
	if len(ticks) != 8 {
		t.Fatalf("Run after RunUntil fired extra ticks: %v", ticks)
	}
}

// TestKernelWindowCountInvariance: the window sequence depends only on the
// model, never on the partition.
func TestKernelWindowCountInvariance(t *testing.T) {
	var ref uint64
	for i, shards := range []int{1, 2, 4} {
		k := NewKernel(shards, 100)
		laneOf := func(n int) int { return n * shards / 4 }
		var seq uint64
		var ping func(n, depth int)
		ping = func(n, depth int) {
			if depth == 0 {
				return
			}
			now := k.Lane(laneOf(n)).Now()
			seq++
			dst := (n + 1) % 4
			k.Post(laneOf(n), laneOf(dst), now+150, int32(n), seq, func() { ping(dst, depth-1) })
		}
		k.Lane(0).At(1, func() { ping(0, 10) })
		k.Run()
		if i == 0 {
			ref = k.Windows
		} else if k.Windows != ref {
			t.Errorf("shards=%d: %d windows, want %d", shards, k.Windows, ref)
		}
	}
}
