package sim

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestKernelHostProfileAccounting pins the profiler's accounting identity:
// the per-lane busy + wait + global drain decomposition must sum back to
// the profiled wall-clock within 5% for every lane, and the global split
// WallNs == DrainNs + ExecNs (+ tails) must hold exactly by construction.
func TestKernelHostProfileAccounting(t *testing.T) {
	trace := shardTraceDriven(t, 8, 4, 8, func(k *Kernel) {
		k.EnableHostProfile()
		k.Run()
	})
	if !strings.Contains(trace, "tok") {
		t.Fatal("empty trace")
	}
	// The kernel in shardTraceDriven is local to the driver; rebuild one
	// here so the profile is inspectable.
	k := NewKernel(4, 100)
	k.EnableHostProfile()
	runTokens(k, 8, 8)
	k.Run()
	p := k.Profile()
	if p == nil {
		t.Fatal("Profile returned nil with profiler enabled")
	}
	if p.Shards != 4 || p.Windows == 0 || p.Windows != k.Windows {
		t.Fatalf("profile shape: shards=%d windows=%d (kernel %d)", p.Shards, p.Windows, k.Windows)
	}
	if p.WallNs <= 0 {
		t.Fatalf("WallNs = %d, want > 0", p.WallNs)
	}
	if got := p.DrainNs + p.ExecNs; got != p.WallNs {
		t.Fatalf("WallNs %d != DrainNs %d + ExecNs %d", p.WallNs, p.DrainNs, p.ExecNs)
	}
	if len(p.Lanes) != 4 {
		t.Fatalf("lanes = %d, want 4", len(p.Lanes))
	}
	var events, stragglers uint64
	for _, l := range p.Lanes {
		sum := l.BusyNs + l.WaitNs + p.DrainNs
		diff := sum - p.WallNs
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > 0.05*float64(p.WallNs) {
			t.Errorf("lane %d: busy %d + wait %d + drain %d = %d, wall %d (off by %.1f%%)",
				l.Lane, l.BusyNs, l.WaitNs, p.DrainNs, sum, p.WallNs,
				100*float64(diff)/float64(p.WallNs))
		}
		events += l.Events
		stragglers += l.StragglerWindows
	}
	if events != p.Events || events == 0 {
		t.Fatalf("lane events sum %d, profile total %d", events, p.Events)
	}
	var fired uint64
	for i := 0; i < 4; i++ {
		fired += k.Lane(i).Fired
	}
	if events != fired {
		t.Fatalf("profile events %d != lanes fired %d", events, fired)
	}
	if stragglers != p.Windows {
		t.Fatalf("straggler windows sum %d, want one per window (%d)", stragglers, p.Windows)
	}
	if p.MemSamples == 0 || p.HeapInuseHigh == 0 || p.SysHigh == 0 {
		t.Fatalf("memory watermarks never sampled: samples=%d heap=%d sys=%d",
			p.MemSamples, p.HeapInuseHigh, p.SysHigh)
	}
	if p.MaxImbalancePct < p.MeanImbalancePct {
		t.Fatalf("max imbalance %.2f%% < mean %.2f%%", p.MaxImbalancePct, p.MeanImbalancePct)
	}
}

// runTokens schedules the same token-passing model shardTraceDriven uses,
// without the log plumbing — profiler tests need a kernel they can hold.
func runTokens(k *Kernel, nodes, hops int) {
	const L = Time(100)
	shards := k.Shards()
	laneOf := func(n int) int { return n * shards / nodes }
	seqs := make([]uint64, nodes)
	var step func(n, remaining, tok int)
	step = func(n, remaining, tok int) {
		if remaining == 0 {
			return
		}
		now := k.Lane(laneOf(n)).Now()
		for i, dst := range []int{(n + 3) % nodes, (n + 5) % nodes} {
			dst := dst
			at := now + L + Time(tok%3)
			tok2 := tok*2 + i
			seqs[n]++
			k.Post(laneOf(n), laneOf(dst), at, int32(n), seqs[n], func() {
				step(dst, remaining-1, tok2)
			})
		}
	}
	for n := 0; n < nodes; n++ {
		n := n
		k.Lane(laneOf(n)).At(Time(10+n%2), func() { step(n, hops, n) })
	}
}

// TestKernelHostProfileProgress: with a zero-ish period every barrier fires
// a progress snapshot, snapshots carry the RunUntil horizon, and the final
// snapshot's cumulative counters agree with the profile.
func TestKernelHostProfileProgress(t *testing.T) {
	k := NewKernel(2, 100)
	runTokens(k, 8, 8)
	var snaps []HostProgress
	k.SetProgress(time.Nanosecond, func(hp HostProgress) { snaps = append(snaps, hp) })
	const horizon = Time(5000)
	k.RunUntil(horizon)
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots delivered")
	}
	for _, s := range snaps {
		if s.Horizon != horizon {
			t.Fatalf("snapshot horizon %d, want %d", s.Horizon, horizon)
		}
		if s.SimNow <= 0 || s.WallNs <= 0 {
			t.Fatalf("snapshot missing basics: %+v", s)
		}
	}
	last := snaps[len(snaps)-1]
	p := k.Profile()
	if last.Windows > p.Windows || last.Events > p.Events {
		t.Fatalf("last snapshot (windows %d, events %d) exceeds profile (windows %d, events %d)",
			last.Windows, last.Events, p.Windows, p.Events)
	}
	if last.HeapInuse == 0 {
		t.Fatal("snapshot heap-in-use never sampled")
	}
	// At least one mid-run snapshot should have a live ETA estimate.
	eta := false
	for _, s := range snaps {
		if s.ETANs >= 0 {
			eta = true
		}
	}
	if !eta && len(snaps) > 1 {
		t.Error("no snapshot carried an ETA despite an active horizon")
	}
}

// TestKernelProfileNilWhenDisabled: the profiler is strictly opt-in.
func TestKernelProfileNilWhenDisabled(t *testing.T) {
	k := NewKernel(2, 100)
	runTokens(k, 4, 2)
	k.Run()
	if k.Profile() != nil {
		t.Fatal("Profile() non-nil without EnableHostProfile")
	}
}

// TestKernelInlineFallbackTrace pins the GOMAXPROCS=1 inline path — until
// now only reachable implicitly on single-core hosts — against the parallel
// workers: same model, same per-node event logs, for both Run and stepped
// RunUntil driving, with and without the profiler.
func TestKernelInlineFallbackTrace(t *testing.T) {
	const nodes, hops = 8, 6
	ref := shardTrace(t, nodes, 4, hops)
	if !strings.Contains(ref, "tok") {
		t.Fatal("reference trace empty")
	}
	inline := func(drive func(*Kernel)) string {
		prev := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(prev)
		return shardTraceDriven(t, nodes, 4, hops, drive)
	}
	if got := inline(func(k *Kernel) { k.Run() }); got != ref {
		t.Errorf("GOMAXPROCS=1 inline Run diverges from parallel:\nref:\n%s\ngot:\n%s", ref, got)
	}
	if got := inline(func(k *Kernel) {
		k.EnableHostProfile()
		k.Run()
	}); got != ref {
		t.Errorf("GOMAXPROCS=1 inline Run with profiler diverges:\nref:\n%s\ngot:\n%s", ref, got)
	}
	if got := inline(func(k *Kernel) {
		for at := Time(500); k.Now() < 4000; at += 500 {
			k.RunUntil(at)
		}
		k.Run()
	}); got != ref {
		t.Errorf("GOMAXPROCS=1 stepped RunUntil diverges:\nref:\n%s\ngot:\n%s", ref, got)
	}
}

// TestKernelInlineProfileAccounting: the inline fallback keeps the same
// accounting identity — the profiler must not assume fork/join exists.
func TestKernelInlineProfileAccounting(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	k := NewKernel(3, 100)
	k.EnableHostProfile()
	runTokens(k, 9, 6)
	k.Run()
	p := k.Profile()
	if p == nil || p.Windows == 0 {
		t.Fatalf("no profile from inline run: %+v", p)
	}
	for _, l := range p.Lanes {
		sum := l.BusyNs + l.WaitNs + p.DrainNs
		diff := sum - p.WallNs
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > 0.05*float64(p.WallNs) {
			t.Errorf("inline lane %d: busy+wait+drain = %d, wall %d", l.Lane, sum, p.WallNs)
		}
	}
}
