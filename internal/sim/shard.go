// Sharded parallel event kernel: N per-shard event lanes (each a complete
// Sim with its 4-ary heap and zero-delay ring) advanced in lock-step
// windows under conservative lookahead — the classic Chandy–Misra/null-
// message discipline, specialized to a fabric whose minimum cross-shard
// handoff latency is a known constant.
//
// The synchronization protocol, per window:
//
//  1. The coordinator drains every cross-lane mailbox, sorts the posts by
//     (time, source node, source sequence) — keys that depend only on the
//     simulated workload, never on the shard count — and applies them to
//     their destination lanes in that order, so each lane's tie-breaking
//     insertion sequence is identical at any shard count.
//  2. It computes m, the minimum next-event time across all lanes, and the
//     window horizon h = m + lookahead − 1.
//  3. Every lane runs RunUntil(h) in parallel (fork/join over persistent
//     workers). Within the window a lane may freely schedule more local
//     events; anything destined for another node goes through Post.
//  4. Repeat until every lane is empty and no mail is pending.
//
// Safety argument: a model registered with lookahead L promises that every
// cross-node handoff posted while executing an event at time t targets a
// time strictly greater than t + L − 1 ≥ h (in this repository the fabric's
// per-hop wire latency plus a non-zero link occupancy provides L =
// Params.HopLatency). Posts therefore always land beyond the current
// horizon, no lane ever receives mail in its past, and At's monotonicity
// panic doubles as the runtime check. Post additionally asserts it.
//
// Determinism argument (why shards=1 and shards=N produce bit-identical
// simulated results): the window sequence depends only on global minimum
// event times, which the partition does not change; within a window each
// lane executes only its own nodes' events in (time, insertion-seq) order;
// and every inter-node handoff — including between nodes that share a lane
// — travels through the mailbox with shard-invariant sort keys. Induction
// over windows gives identical per-node event sequences at any shard
// count. See DESIGN.md §11.
package sim

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"time"
)

// post is one cross-lane mailbox entry.
type post struct {
	at      Time
	srcNode int32  // simulated node that posted (sort key, shard-invariant)
	srcSeq  uint64 // that node's post sequence (sort key, shard-invariant)
	dst     int    // destination lane
	fn      func()
}

// Kernel is a sharded parallel event kernel. Build one with NewKernel,
// schedule initial work on its lanes (Lane), then call Run. Lanes must not
// be touched by other goroutines while Run executes, except through Post
// from within lane event handlers.
type Kernel struct {
	lanes     []*Sim
	lookahead Time

	// outbox[src*shards+dst] is the SPSC mailbox from lane src to lane
	// dst: only lane src's worker appends during a window, only the
	// coordinator drains at the barrier. Slices are reused — steady-state
	// posting allocates nothing.
	outbox  [][]post
	horizon Time // current window horizon, for the Post safety assert

	batch []post // coordinator scratch for the sorted drain

	// Persistent workers (lanes 1..n-1; lane 0 runs on the coordinator).
	work []chan Time
	join chan struct{}

	// ticks are the registered barrier ticks (Every), the hook shard-aware
	// observers hang off.
	ticks []*ktick

	// Windows counts synchronization windows executed, for diagnostics.
	Windows uint64

	// Host-execution profiler (hostprof.go); nil unless EnableHostProfile.
	// laneBusy[i] is lane i's busy time for the current window, written
	// only by the goroutine that ran the lane and read by the coordinator
	// after the join (the join channel is the happens-before edge).
	prof     *hostProf
	laneBusy []int64
}

// ktick is one registered periodic barrier tick.
type ktick struct {
	next   Time
	period Time
	fn     func(Time)
}

// Every registers fn to run at window barriers, once for each multiple of
// period (the first at t = period). At each barrier the coordinator fires —
// in (tick time, registration) order — every pending tick whose time lies
// strictly below the next window's minimum event time m, passing the tick
// time as the canonical timestamp.
//
// Why this is the observer hook: at a barrier the lane workers are joined
// (happens-before through the work/join channels), every lane's clock sits
// at the previous horizon, and the set of executed events — everything at
// or before that horizon — is shard-invariant (see the determinism argument
// above). A tick may therefore read, and at barrier time even write, any
// lane's model state without races, and whatever it records is byte-
// identical at every shard count. The observation can lag the tick time by
// at most lookahead−1: events in (tick, horizon] of the window containing
// the tick have already executed. That smear is bounded by one hop latency
// and is itself shard-invariant.
//
// Ticks are not lane events: they occupy no heap, never extend the run, and
// stop firing at quiescence (a tick due beyond the last event never fires —
// callers wanting an end-of-run snapshot take it after Run returns). fn
// must not schedule lane events or post mail; it runs on the coordinator,
// outside any window.
func (k *Kernel) Every(period Time, fn func(Time)) {
	if period <= 0 {
		panic("sim: kernel tick period must be positive")
	}
	k.ticks = append(k.ticks, &ktick{next: period, period: period, fn: fn})
}

// fireTicks runs every registered tick due strictly before m, in (time,
// registration) order. The strict < keeps ties on registration order and
// guarantees every event at or before a tick's time has executed when it
// fires.
func (k *Kernel) fireTicks(m Time) {
	for {
		var due *ktick
		for _, t := range k.ticks {
			if t.next < m && (due == nil || t.next < due.next) {
				due = t
			}
		}
		if due == nil {
			return
		}
		at := due.next
		due.next += due.period
		due.fn(at)
	}
}

// NewKernel returns a kernel with the given number of lanes. lookahead is
// the conservative synchronization bound: the minimum virtual-time distance
// of any cross-node handoff, as registered by the fabric model. It must be
// positive.
func NewKernel(shards int, lookahead Time) *Kernel {
	if shards < 1 {
		panic("sim: kernel needs at least one shard")
	}
	if lookahead <= 0 {
		panic("sim: kernel lookahead must be positive")
	}
	k := &Kernel{
		lanes:     make([]*Sim, shards),
		lookahead: lookahead,
		outbox:    make([][]post, shards*shards),
		horizon:   -1,
	}
	for i := range k.lanes {
		k.lanes[i] = New()
	}
	return k
}

// Shards returns the lane count.
func (k *Kernel) Shards() int { return len(k.lanes) }

// Lookahead returns the synchronization bound.
func (k *Kernel) Lookahead() Time { return k.lookahead }

// Lane returns lane i's simulator. Model components of a node are built
// entirely on the node's lane.
func (k *Kernel) Lane(i int) *Sim { return k.lanes[i] }

// Post schedules fn at absolute time at on lane dst's node state. It must
// be called from lane src's executing event (or before Run), with srcNode
// and srcSeq forming a shard-invariant total order over the posting node's
// handoffs (a per-node counter). The target time must lie beyond the
// current window horizon — the lookahead contract.
func (k *Kernel) Post(src, dst int, at Time, srcNode int32, srcSeq uint64, fn func()) {
	if at <= k.horizon {
		panic(fmt.Sprintf("sim: cross-shard post at %v violates lookahead window ending %v", at, k.horizon))
	}
	i := src*len(k.lanes) + dst
	k.outbox[i] = append(k.outbox[i], post{at: at, srcNode: srcNode, srcSeq: srcSeq, dst: dst, fn: fn})
}

// drain applies all pending mailbox posts to their destination lanes in
// the deterministic (time, source node, source sequence) order.
func (k *Kernel) drain() int {
	k.batch = k.batch[:0]
	for i := range k.outbox {
		if len(k.outbox[i]) == 0 {
			continue
		}
		k.batch = append(k.batch, k.outbox[i]...)
		// Clear the closure slots so drained posts are released, keeping
		// the backing array pooled for the next window.
		for j := range k.outbox[i] {
			k.outbox[i][j] = post{}
		}
		k.outbox[i] = k.outbox[i][:0]
	}
	b := k.batch
	sort.Slice(b, func(i, j int) bool {
		if b[i].at != b[j].at {
			return b[i].at < b[j].at
		}
		if b[i].srcNode != b[j].srcNode {
			return b[i].srcNode < b[j].srcNode
		}
		return b[i].srcSeq < b[j].srcSeq
	})
	for i := range b {
		k.lanes[b[i].dst].At(b[i].at, b[i].fn)
		b[i].fn = nil
	}
	return len(b)
}

// Run executes the sharded simulation to completion: windows advance until
// every lane is drained and no mail is pending. Like Sim.Run, coroutine
// processes still blocked at global quiescence are deadlocked and Run
// panics with a diagnostic.
func (k *Kernel) Run() {
	hp := k.prof
	if hp != nil {
		hp.horizon = 0 // no target: progress reports show an unknown ETA
	}
	k.runWindows(Never)
	var t0 time.Time
	if hp != nil {
		t0 = time.Now()
	}
	k.horizon = -1
	if p := k.blockedProcs(); p > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) still blocked across %d lanes with no pending events or mail", p, len(k.lanes)))
	}
	if hp != nil {
		hp.tail(time.Since(t0))
	}
}

// RunUntil executes whole synchronization windows until every event at or
// before t has run, then advances each lane's clock to at least t and fires
// the barrier ticks due through t.
//
// The effective horizon rounds UP to the next window barrier: the window
// whose minimum event time m lies at or before t runs to its full horizon
// m+lookahead−1, so events within lookahead−1 beyond t may execute with it.
// That smear is bounded by one hop latency and — like the window sequence
// itself — depends only on global minimum event times, never on the
// partition, so a horizon-driven run is bit-identical at every shard count
// and its window prefix is exactly what a plain Run would have executed.
//
// Unlike Run, barrier ticks due at or before t fire even when the lanes are
// already quiescent (events exhausted): a periodic monitor registered with
// Every keeps observing under a RunUntil-driven loop exactly as a classic
// Sim's self-rescheduling monitor does, without keeping the machine alive.
// Processes still blocked past the horizon are legal here — only Run's
// final quiescence performs the deadlock check.
func (k *Kernel) RunUntil(t Time) {
	hp := k.prof
	if hp != nil {
		hp.horizon = t
	}
	k.runWindows(t)
	var t0 time.Time
	if hp != nil {
		t0 = time.Now()
	}
	// The last window may have stopped short of t (next event beyond t, or
	// none at all); lift the remaining lane clocks so Now() reads t, exactly
	// like Sim.RunUntil. Lanes the last horizon already carried past t keep
	// their (shard-invariant) later clock.
	for _, l := range k.lanes {
		if l.Now() < t {
			l.RunUntil(t)
		}
	}
	k.horizon = -1
	if len(k.ticks) > 0 {
		k.fireTicks(t + 1)
	}
	if hp != nil {
		hp.tail(time.Since(t0))
		hp.horizon = 0
	}
}

// runWindows advances the window protocol while the minimum next-event time
// lies at or before limit. On return all mail is drained into lanes (the
// drain precedes the limit check) and the next pending event, if any, lies
// beyond limit. The coordinator runs under a lane=0 pprof label (it executes
// lane 0's events itself), so CPU profiles attribute every sample to a lane.
func (k *Kernel) runWindows(limit Time) {
	pprof.Do(context.Background(), pprof.Labels("lane", "0"), func(context.Context) {
		k.windowLoop(limit)
	})
}

func (k *Kernel) windowLoop(limit Time) {
	n := len(k.lanes)
	// With a single scheduling core there is no parallelism to win, only
	// per-window handoff cost to pay; run the lanes inline. The window
	// protocol — and therefore every simulated result — is identical.
	parallel := n > 1 && runtime.GOMAXPROCS(0) > 1
	hp := k.prof
	if parallel && k.work == nil {
		k.work = make([]chan Time, n)
		k.join = make(chan struct{}, n)
		// Lane busy times are profiler state, but workers capture the slice
		// at creation: EnableHostProfile is documented to precede Run.
		var busy []int64
		if hp != nil {
			busy = k.laneBusy
		}
		for i := 1; i < n; i++ {
			ch := make(chan Time)
			k.work[i] = ch
			lane := k.lanes[i]
			id := i
			go pprof.Do(context.Background(), pprof.Labels("lane", strconv.Itoa(id)), func(context.Context) {
				for h := range ch {
					if busy != nil {
						t0 := time.Now()
						lane.RunUntil(h)
						busy[id] = int64(time.Since(t0))
					} else {
						lane.RunUntil(h)
					}
					k.join <- struct{}{}
				}
			})
		}
		defer func() {
			for i := 1; i < n; i++ {
				close(k.work[i])
			}
			k.work = nil
		}()
	}
	// mark is the running segment boundary: the profiled wall-clock is an
	// unbroken chain of drain segments (coordinator bookkeeping, lanes idle)
	// and window-execution segments (fork to join), each ending where the
	// next begins, so WallNs == DrainNs + ExecNs with no unattributed gaps.
	var mark time.Time
	if hp != nil {
		mark = time.Now()
	}
	for {
		k.drain()
		m := Never
		any := false
		for _, l := range k.lanes {
			if at, ok := l.nextAt(); ok {
				any = true
				if at < m {
					m = at
				}
			}
		}
		if !any || m > limit {
			if hp != nil {
				d := time.Since(mark)
				hp.drainNs += int64(d)
				hp.wallNs += int64(d)
			}
			return
		}
		if len(k.ticks) > 0 {
			k.fireTicks(m)
		}
		h := m + k.lookahead - 1
		k.horizon = h
		k.Windows++
		var forkAt time.Time
		if hp != nil {
			forkAt = time.Now()
			d := forkAt.Sub(mark)
			hp.drainNs += int64(d)
			hp.wallNs += int64(d)
		}
		if parallel {
			for i := 1; i < n; i++ {
				k.work[i] <- h
			}
			if hp != nil {
				t0 := time.Now()
				k.lanes[0].RunUntil(h)
				k.laneBusy[0] = int64(time.Since(t0))
			} else {
				k.lanes[0].RunUntil(h)
			}
			for i := 1; i < n; i++ {
				<-k.join
			}
		} else if hp != nil {
			for i, l := range k.lanes {
				t0 := time.Now()
				l.RunUntil(h)
				k.laneBusy[i] = int64(time.Since(t0))
			}
		} else {
			for _, l := range k.lanes {
				l.RunUntil(h)
			}
		}
		if hp != nil {
			mark = time.Now()
			exec := mark.Sub(forkAt)
			hp.wallNs += int64(exec)
			hp.window(k, exec)
		}
	}
}

// blockedProcs sums live coroutine processes across lanes at quiescence.
func (k *Kernel) blockedProcs() int {
	total := 0
	for _, l := range k.lanes {
		total += l.procs
	}
	return total
}

// Now returns the kernel's clock: every lane shares the same window
// horizon, so lane 0's time stands for the machine's.
func (k *Kernel) Now() Time { return k.lanes[0].Now() }
