package sim

// Server models a serial resource — something that does one piece of work
// at a time, in submission order: a network link, one direction of the
// HyperTransport bus, the single-threaded firmware CPU. Work submitted while
// the server is busy queues behind the in-flight work (the queue is implicit
// in the busyUntil horizon, which is exact for FIFO service).
type Server struct {
	s         *Sim
	name      string
	busyUntil Time

	// Busy accumulates total occupied time, for utilization reporting.
	Busy Time
	// Jobs counts submissions.
	Jobs uint64
}

// NewServer returns a serial resource named for diagnostics.
func NewServer(s *Sim, name string) *Server {
	return &Server{s: s, name: name}
}

// Name returns the server's diagnostic name.
func (sv *Server) Name() string { return sv.name }

// Submit enqueues work lasting d and schedules fn (which may be nil) at its
// completion time, which is returned. Service is FIFO.
func (sv *Server) Submit(d Time, fn func()) Time {
	if d < 0 {
		d = 0
	}
	start := sv.busyUntil
	if start < sv.s.now {
		start = sv.s.now
	}
	done := start + d
	sv.busyUntil = done
	sv.Busy += d
	sv.Jobs++
	if fn != nil {
		sv.s.At(done, fn)
	}
	return done
}

// SubmitAfter is Submit for work that cannot start before time t (for
// example, a downstream pipeline stage that must wait for data to arrive).
// It returns the completion time.
func (sv *Server) SubmitAfter(t Time, d Time, fn func()) Time {
	if d < 0 {
		d = 0
	}
	start := sv.busyUntil
	if start < t {
		start = t
	}
	if start < sv.s.now {
		start = sv.s.now
	}
	done := start + d
	sv.busyUntil = done
	sv.Busy += d
	sv.Jobs++
	if fn != nil {
		sv.s.At(done, fn)
	}
	return done
}

// BusyUntil reports the completion time of the last accepted work — the
// instant the server's backlog drains (zero if never used). Unlike FreeAt
// it is not clamped to the current time, so observers closing a
// measurement window after quiescence can see when the resource actually
// went idle.
func (sv *Server) BusyUntil() Time { return sv.busyUntil }

// FreeAt reports when the server next becomes idle (now if it already is).
func (sv *Server) FreeAt() Time {
	if sv.busyUntil < sv.s.now {
		return sv.s.now
	}
	return sv.busyUntil
}

// BusyBy returns the virtual time the server has spent occupied up to time
// t: accepted work (Busy) minus the backlog still outstanding after t. FIFO
// service drains the backlog back-to-back, so the subtraction is exact
// whenever the server has been continuously busy since t, and overstates
// the outstanding backlog by at most the idle gap otherwise. Windowed
// utilization — BusyBy deltas over a sample window — therefore stays in
// [0, 1] instead of spiking when a burst is accepted at submission time.
func (sv *Server) BusyBy(t Time) Time {
	rem := sv.busyUntil - t
	if rem < 0 {
		rem = 0
	}
	b := sv.Busy - rem
	if b < 0 {
		b = 0
	}
	return b
}

// Utilization returns Busy divided by the elapsed virtual time.
func (sv *Server) Utilization() float64 {
	if sv.s.now == 0 {
		return 0
	}
	return float64(sv.Busy) / float64(sv.s.now)
}

// Credits is a counting semaphore with FIFO grant order, used for bounded
// buffers with backpressure: the SeaStar RX FIFO grants space credits to the
// incoming link, and the drain side returns them as the DMA engine moves
// data to host memory. Grants are callbacks so hardware pipeline stages
// (which are not coroutines) can block on space without a goroutine.
type Credits struct {
	s     *Sim
	name  string
	avail int64
	cap   int64
	queue []creditWaiter

	// Waits counts grants that had to queue (a backpressure indicator).
	Waits uint64
}

type creditWaiter struct {
	n  int64
	fn func()
}

// NewCredits returns a credit pool holding capacity credits.
func NewCredits(s *Sim, name string, capacity int64) *Credits {
	return &Credits{s: s, name: name, avail: capacity, cap: capacity}
}

// Take requests n credits and calls fn once they are granted (immediately,
// at the current time, if available). Requests are granted strictly in FIFO
// order: a large request at the head blocks smaller ones behind it, which is
// exactly how a FIFO of DMA descriptors behaves.
func (c *Credits) Take(n int64, fn func()) {
	if n < 0 {
		panic("sim: negative credit request")
	}
	if n > c.cap {
		panic("sim: credit request exceeds capacity on " + c.name)
	}
	if len(c.queue) == 0 && c.avail >= n {
		c.avail -= n
		c.s.After(0, fn)
		return
	}
	c.Waits++
	c.queue = append(c.queue, creditWaiter{n: n, fn: fn})
}

// Put returns n credits and grants queued requests that now fit.
func (c *Credits) Put(n int64) {
	if n < 0 {
		panic("sim: negative credit return")
	}
	c.avail += n
	if c.avail > c.cap {
		panic("sim: credit overflow on " + c.name)
	}
	for len(c.queue) > 0 && c.avail >= c.queue[0].n {
		w := c.queue[0]
		c.queue = c.queue[1:]
		c.avail -= w.n
		c.s.After(0, w.fn)
	}
}

// Available reports the free credits.
func (c *Credits) Available() int64 { return c.avail }

// Capacity reports the pool size.
func (c *Credits) Capacity() int64 { return c.cap }
