// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the foundation every hardware and software model in this
// repository is built on: the SeaStar ASIC, its firmware, the host operating
// systems and the benchmark processes all advance a single virtual clock by
// scheduling events on one heap. Determinism is a hard requirement — the
// same program must produce bit-identical virtual-time results on every run
// — so ties are broken by insertion order and the only randomness available
// is the seeded generator owned by the simulator.
package sim

import "fmt"

// Time is a point in virtual time, in integer picoseconds.
//
// Picoseconds keep every rate in the modeled system exact in integer
// arithmetic: a 2.5 GB/s SeaStar link moves one byte in exactly 400 ps, an
// 800 MHz HyperTransport clock tick is 1250 ps, and a 500 MHz PowerPC cycle
// is 2000 ps. An int64 of picoseconds covers about 106 days of virtual time,
// far beyond any benchmark horizon.
//
// Time doubles as a duration; differences and sums of Time values are
// meaningful in the obvious way.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Never is a sentinel meaning "no deadline". It is far enough in the future
// that no simulation reaches it.
const Never Time = 1<<63 - 1

// Nanos returns t as floating-point nanoseconds.
func (t Time) Nanos() float64 { return float64(t) / float64(Nanosecond) }

// Micros returns t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats t with a unit chosen by magnitude, e.g. "5.39us".
func (t Time) String() string {
	switch {
	case t == Never:
		return "never"
	case t < 0:
		return "-" + (-t).String()
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.2fns", t.Nanos())
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4fs", t.Seconds())
	}
}

// BytesAt returns the time needed to move n bytes at the given rate in
// bytes per second. It rounds up so that a transfer never finishes early.
func BytesAt(n int64, bytesPerSecond int64) Time {
	if n <= 0 || bytesPerSecond <= 0 {
		return 0
	}
	if n <= 9_000_000 {
		// n * Second fits in int64: one ceiling division, identical to the
		// overflow-safe split below. Covers every packet- and chunk-sized
		// call on the hot path.
		return Time((n*int64(Second) + bytesPerSecond - 1) / bytesPerSecond)
	}
	// n bytes / (B/s) = n/bps seconds = n * 1e12 / bps picoseconds.
	// Compute in a way that avoids overflow for n up to tens of GB:
	// split into whole seconds and remainder.
	whole := n / bytesPerSecond
	rem := n % bytesPerSecond
	t := Time(whole) * Second
	// rem * 1e12 can overflow for bps > ~9.2e6 with rem near bps; use
	// 128-bit-ish split: rem*Second/bps with rem < bps <= ~1e10 means
	// rem*1e12 < 1e22 which overflows int64. Do it in two steps.
	const half = 1_000_000 // 1e6 * 1e6 = 1e12
	hi := (rem * half) / bytesPerSecond
	lo := ((rem*half)%bytesPerSecond)*half + bytesPerSecond - 1
	t += Time(hi*half + lo/bytesPerSecond)
	return t
}

// Cycles returns the duration of n cycles of a clock running at hz.
func Cycles(n int64, hz int64) Time {
	if n <= 0 || hz <= 0 {
		return 0
	}
	return BytesAt(n, hz) // same math: n ticks at hz ticks/second
}
