package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0ps"},
		{500 * Picosecond, "500ps"},
		{75 * Nanosecond, "75.00ns"},
		{5390 * Nanosecond, "5.39us"},
		{2 * Microsecond, "2.00us"},
		{3*Millisecond + 500*Microsecond, "3.500ms"},
		{2 * Second, "2.0000s"},
		{Never, "never"},
		{-75 * Nanosecond, "-75.00ns"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestBytesAtExactRates(t *testing.T) {
	// One byte at 2.5 GB/s is exactly 400 ps (SeaStar link payload rate).
	if got := BytesAt(1, 2_500_000_000); got != 400*Picosecond {
		t.Errorf("1B @ 2.5GB/s = %v, want 400ps", got)
	}
	// 64-byte packet on the same link: 25.6 ns, rounded up to 25600 ps.
	if got := BytesAt(64, 2_500_000_000); got != 25600*Picosecond {
		t.Errorf("64B @ 2.5GB/s = %v, want 25.6ns", got)
	}
	// 8 MB at 1 GB/s is exactly 8388.608 us.
	if got := BytesAt(8<<20, 1_000_000_000); got != 8388608*Nanosecond {
		t.Errorf("8MB @ 1GB/s = %v", got)
	}
	if got := BytesAt(0, 1000); got != 0 {
		t.Errorf("0 bytes took %v", got)
	}
	if got := BytesAt(100, 0); got != 0 {
		t.Errorf("zero rate gave %v", got)
	}
}

func TestBytesAtRoundsUp(t *testing.T) {
	// 1 byte at 3 GB/s = 333.33 ps, must round up to 334.
	if got := BytesAt(1, 3_000_000_000); got != 334*Picosecond {
		t.Errorf("1B @ 3GB/s = %v, want 334ps", got)
	}
}

func TestBytesAtProperties(t *testing.T) {
	// Property: splitting a transfer in two never makes it faster, and the
	// result always covers the exact rational duration.
	f := func(n uint32, k uint16, rate uint32) bool {
		nn := int64(n%(1<<24)) + 1
		rr := int64(rate%3_000_000_000) + 1
		split := int64(k)%nn + 1
		whole := BytesAt(nn, rr)
		parts := BytesAt(split, rr) + BytesAt(nn-split, rr)
		if parts < whole {
			return false
		}
		// Exactness: whole must be >= true duration and < true + 2ps.
		truePs := float64(nn) * 1e12 / float64(rr)
		return float64(whole) >= truePs-0.5 && float64(whole) < truePs+2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCycles(t *testing.T) {
	// One 500 MHz PowerPC cycle is exactly 2 ns.
	if got := Cycles(1, 500_000_000); got != 2*Nanosecond {
		t.Errorf("1 cycle @ 500MHz = %v, want 2ns", got)
	}
	// 1000 cycles at 2 GHz Opteron: 500 ns.
	if got := Cycles(1000, 2_000_000_000); got != 500*Nanosecond {
		t.Errorf("1000 cycles @ 2GHz = %v, want 500ns", got)
	}
}

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.After(30*Nanosecond, func() { order = append(order, 3) })
	s.After(10*Nanosecond, func() { order = append(order, 1) })
	s.After(20*Nanosecond, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 30*Nanosecond {
		t.Errorf("final time %v", s.Now())
	}
}

func TestEventTieBreakIsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(5*Nanosecond, func() { order = append(order, i) })
	}
	s.Run()
	if !sort.IntsAreSorted(order) {
		t.Errorf("same-time events ran out of submission order: %v", order)
	}
}

func TestEventOrderingRandomized(t *testing.T) {
	// Property: events always fire in nondecreasing time order no matter the
	// submission order, including events scheduled from within events.
	rng := rand.New(rand.NewSource(42))
	s := New()
	var last Time = -1
	var schedule func(depth int)
	n := 0
	schedule = func(depth int) {
		if depth > 3 {
			return
		}
		for i := 0; i < 5; i++ {
			d := Time(rng.Intn(1000)) * Nanosecond
			n++
			s.After(d, func() {
				if s.Now() < last {
					t.Fatalf("time went backwards: %v after %v", s.Now(), last)
				}
				last = s.Now()
				schedule(depth + 1)
			})
		}
	}
	schedule(0)
	s.Run()
	if s.Fired == 0 {
		t.Fatal("nothing ran")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.After(10*Nanosecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		s.At(5*Nanosecond, func() {})
	})
	s.Run()
}

func TestRunUntil(t *testing.T) {
	s := New()
	ran := 0
	s.After(10*Nanosecond, func() { ran++ })
	s.After(20*Nanosecond, func() { ran++ })
	s.RunUntil(15 * Nanosecond)
	if ran != 1 {
		t.Errorf("ran = %d, want 1", ran)
	}
	if s.Now() != 15*Nanosecond {
		t.Errorf("now = %v, want 15ns", s.Now())
	}
	s.RunUntil(25 * Nanosecond)
	if ran != 2 {
		t.Errorf("ran = %d, want 2", ran)
	}
}

func TestStop(t *testing.T) {
	s := New()
	ran := 0
	s.After(1*Nanosecond, func() { ran++; s.Stop() })
	s.After(2*Nanosecond, func() { ran++ })
	s.Run()
	if ran != 1 {
		t.Errorf("ran = %d, want 1 (Stop should halt the loop)", ran)
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d, want 1", s.Pending())
	}
}

func TestProcSleep(t *testing.T) {
	s := New()
	var marks []Time
	s.Go("sleeper", func(p *Proc) {
		marks = append(marks, p.Now())
		p.Sleep(5 * Microsecond)
		marks = append(marks, p.Now())
		p.Sleep(3 * Microsecond)
		marks = append(marks, p.Now())
	})
	s.Run()
	want := []Time{0, 5 * Microsecond, 8 * Microsecond}
	if len(marks) != 3 || marks[0] != want[0] || marks[1] != want[1] || marks[2] != want[2] {
		t.Errorf("marks = %v, want %v", marks, want)
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		s := New()
		var log []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			s.Go(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					log = append(log, name)
					p.Sleep(10 * Nanosecond)
				}
			})
		}
		s.Run()
		return log
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		again := run()
		if len(again) != len(first) {
			t.Fatalf("nondeterministic length: %v vs %v", again, first)
		}
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("nondeterministic interleaving at %d: %v vs %v", i, again, first)
			}
		}
	}
}

func TestSignalWakesWaitersInOrder(t *testing.T) {
	s := New()
	sig := NewSignal(s)
	var order []string
	s.Go("w1", func(p *Proc) {
		sig.Wait(p)
		order = append(order, "w1")
	})
	s.Go("w2", func(p *Proc) {
		sig.Wait(p)
		order = append(order, "w2")
	})
	s.Go("raiser", func(p *Proc) {
		p.Sleep(1 * Microsecond)
		sig.Raise()
		order = append(order, "raiser")
	})
	s.Run()
	if len(order) != 3 || order[0] != "w1" || order[1] != "w2" {
		t.Errorf("order = %v", order)
	}
}

func TestSignalNotifyCallback(t *testing.T) {
	s := New()
	sig := NewSignal(s)
	fired := 0
	sig.Notify(func() { fired++ })
	s.After(1*Nanosecond, func() { sig.Raise() })
	s.After(2*Nanosecond, func() { sig.Raise() }) // no waiter: lost, by design
	s.Run()
	if fired != 1 {
		t.Errorf("callback fired %d times, want 1", fired)
	}
}

func TestSignalWaitTimeout(t *testing.T) {
	s := New()
	sig := NewSignal(s)
	var gotRaise, gotTimeout bool
	var raiseAt, timeoutAt Time
	s.Go("lucky", func(p *Proc) {
		gotRaise = sig.WaitTimeout(p, 10*Microsecond)
		raiseAt = p.Now()
	})
	s.Go("unlucky", func(p *Proc) {
		p.Sleep(2 * Microsecond) // wait after the raise below has no raiser left
		gotTimeout = sig.WaitTimeout(p, 3*Microsecond)
		timeoutAt = p.Now()
	})
	s.After(1*Microsecond, func() { sig.Raise() })
	s.Run()
	if !gotRaise || raiseAt != 1*Microsecond {
		t.Errorf("lucky: raised=%v at %v", gotRaise, raiseAt)
	}
	if gotTimeout || timeoutAt != 5*Microsecond {
		t.Errorf("unlucky: raised=%v at %v, want timeout at 5us", gotTimeout, timeoutAt)
	}
}

func TestDeadlockDetection(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected deadlock panic")
		}
	}()
	s := New()
	sig := NewSignal(s)
	s.Go("stuck", func(p *Proc) { sig.Wait(p) })
	s.Run()
}

func TestServerFIFO(t *testing.T) {
	s := New()
	sv := NewServer(s, "link")
	var done []Time
	// Three 10 ns jobs submitted together serialize back to back.
	for i := 0; i < 3; i++ {
		sv.Submit(10*Nanosecond, func() { done = append(done, s.Now()) })
	}
	s.Run()
	want := []Time{10 * Nanosecond, 20 * Nanosecond, 30 * Nanosecond}
	for i := range want {
		if done[i] != want[i] {
			t.Errorf("job %d done at %v, want %v", i, done[i], want[i])
		}
	}
	if sv.Busy != 30*Nanosecond {
		t.Errorf("busy = %v", sv.Busy)
	}
	if sv.Jobs != 3 {
		t.Errorf("jobs = %d", sv.Jobs)
	}
}

func TestServerIdleGap(t *testing.T) {
	s := New()
	sv := NewServer(s, "link")
	var second Time
	sv.Submit(10*Nanosecond, nil)
	s.After(50*Nanosecond, func() {
		sv.Submit(10*Nanosecond, func() { second = s.Now() })
	})
	s.Run()
	if second != 60*Nanosecond {
		t.Errorf("second job done at %v, want 60ns (starts when submitted, not queued behind idle time)", second)
	}
}

func TestServerSubmitAfter(t *testing.T) {
	s := New()
	sv := NewServer(s, "stage")
	var done Time
	// Data not ready until t=100ns even though the server is free.
	sv.SubmitAfter(100*Nanosecond, 10*Nanosecond, func() { done = s.Now() })
	s.Run()
	if done != 110*Nanosecond {
		t.Errorf("done at %v, want 110ns", done)
	}
}

func TestServerProperties(t *testing.T) {
	// Property: with FIFO service, completion times are nondecreasing and
	// total busy time equals the sum of durations.
	f := func(durs []uint16) bool {
		s := New()
		sv := NewServer(s, "x")
		var sum Time
		var last Time = -1
		ok := true
		for _, d := range durs {
			dt := Time(d) * Nanosecond
			sum += dt
			sv.Submit(dt, func() {
				if s.Now() < last {
					ok = false
				}
				last = s.Now()
			})
		}
		s.Run()
		return ok && sv.Busy == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCreditsImmediateGrant(t *testing.T) {
	s := New()
	c := NewCredits(s, "fifo", 100)
	granted := false
	c.Take(40, func() { granted = true })
	s.Run()
	if !granted {
		t.Error("grant never happened")
	}
	if c.Available() != 60 {
		t.Errorf("available = %d, want 60", c.Available())
	}
}

func TestCreditsBackpressure(t *testing.T) {
	s := New()
	c := NewCredits(s, "fifo", 100)
	var order []int
	c.Take(80, func() { order = append(order, 1) })
	c.Take(80, func() { order = append(order, 2) }) // must wait
	c.Take(10, func() { order = append(order, 3) }) // fits, but FIFO: waits behind 2
	s.After(10*Nanosecond, func() { c.Put(80) })
	s.After(20*Nanosecond, func() { c.Put(80) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3] (strict FIFO)", order)
	}
	if c.Waits != 2 {
		t.Errorf("waits = %d, want 2", c.Waits)
	}
}

func TestCreditsOverflowPanics(t *testing.T) {
	s := New()
	c := NewCredits(s, "fifo", 10)
	defer func() {
		if recover() == nil {
			t.Error("expected overflow panic")
		}
	}()
	c.Put(1)
}

func TestCreditsConservation(t *testing.T) {
	// Property: after any balanced sequence of Take/Put, available returns
	// to capacity and every grant fired exactly once.
	f := func(reqs []uint8) bool {
		s := New()
		c := NewCredits(s, "p", 256)
		grants := 0
		taken := make([]int64, 0, len(reqs))
		for _, r := range reqs {
			n := int64(r)
			taken = append(taken, n)
			c.Take(n, func() { grants++ })
		}
		// Return credits gradually.
		for i, n := range taken {
			n := n
			s.After(Time(i)*Nanosecond+Nanosecond, func() { c.Put(n) })
		}
		s.Run()
		return grants == len(reqs) && c.Available() == 256
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := New(), New()
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("two fresh simulators disagree on random streams")
		}
	}
}

func TestMaxEventsGuard(t *testing.T) {
	s := New()
	s.MaxEvents = 10
	var loop func()
	loop = func() { s.After(Nanosecond, loop) }
	s.After(Nanosecond, loop)
	defer func() {
		if recover() == nil {
			t.Error("expected runaway panic")
		}
	}()
	s.Run()
}
