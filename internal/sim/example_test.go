package sim_test

import (
	"fmt"

	"portals3/internal/sim"
)

// Example shows the three building blocks every hardware model in this
// repository uses: scheduled callbacks, coroutine processes, and serial
// resources.
func Example() {
	s := sim.New()

	// A serial resource: one job at a time, FIFO (a link, a bus, a CPU).
	link := sim.NewServer(s, "link")

	// A coroutine process: thread-like model code that sleeps in virtual
	// time and can block on signals.
	s.Go("producer", func(p *sim.Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(10 * sim.Microsecond)
			n := i
			link.Submit(sim.BytesAt(2048, 2_500_000_000), func() {
				fmt.Printf("%v: packet %d crossed the link\n", s.Now(), n)
			})
		}
	})

	// A plain callback.
	s.After(50*sim.Microsecond, func() {
		fmt.Printf("%v: timer fired\n", s.Now())
	})

	s.Run()
	// Output:
	// 10.82us: packet 1 crossed the link
	// 20.82us: packet 2 crossed the link
	// 30.82us: packet 3 crossed the link
	// 50.00us: timer fired
}
