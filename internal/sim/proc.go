package sim

import "fmt"

// Proc is a coroutine process: model code that needs a thread-like control
// flow (the NetPIPE driver, an MPI rank, the firmware bring-up sequence)
// runs as a Proc. Under the hood each Proc is a goroutine, but exactly one
// goroutine — either the simulator loop or one process — is ever runnable,
// so execution is strictly sequential and deterministic.
//
// A Proc may only interact with the simulator through its own methods
// (Sleep, Yield, ...) and through Signal.Wait; calling them from any other
// goroutine corrupts the handshake.
type Proc struct {
	s    *Sim
	name string

	resume chan struct{} // simulator -> process: you may run
	parked chan struct{} // process -> simulator: I am blocked again
	wakeFn func()        // p.wake bound once; Sleep runs hot, a fresh method value per call is measurable
	dead   bool
}

// Go spawns fn as a coroutine process starting at the current virtual time.
// fn begins executing when the start event fires.
func (s *Sim) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		s:      s,
		name:   name,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
	}
	p.wakeFn = p.wake
	s.procs++
	go func() {
		<-p.resume // wait for the start event
		fn(p)
		p.dead = true
		p.s.procs--
		p.parked <- struct{}{}
	}()
	s.After(0, p.wakeFn)
	return p
}

// wake transfers control to the process and blocks the simulator until the
// process parks again (by sleeping, waiting, or finishing).
func (p *Proc) wake() {
	if p.dead {
		panic("sim: waking dead process " + p.name)
	}
	p.resume <- struct{}{}
	<-p.parked
}

// park returns control to the simulator and blocks until woken.
func (p *Proc) park() {
	p.parked <- struct{}{}
	<-p.resume
}

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Sim returns the owning simulator.
func (p *Proc) Sim() *Sim { return p.s }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.s.now }

// Sleep advances virtual time by d for this process. Other events run in
// the meantime.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.s.After(d, p.wakeFn)
	p.park()
}

// Yield lets every other event scheduled for the current time run, then
// resumes.
func (p *Proc) Yield() { p.Sleep(0) }

// String identifies the process in diagnostics.
func (p *Proc) String() string { return fmt.Sprintf("proc(%s)", p.name) }

// Signal is a broadcast condition variable for coroutine processes and
// callback waiters. A typical use: a Portals event queue raises its signal
// when the firmware posts an event, waking a process blocked in PtlEQWait.
//
// Signal has no memory: a Raise with no waiters is lost. Users must re-check
// their predicate after waking (standard condition-variable discipline).
type Signal struct {
	s       *Sim
	procs   []*Proc
	callbks []func()

	// Drained waiter arrays from the last Raise, handed back to the live
	// slices so steady-state Wait/Notify never reallocates.
	procsSpare   []*Proc
	callbksSpare []func()
}

// NewSignal returns a signal bound to s.
func NewSignal(s *Sim) *Signal { return &Signal{s: s} }

// Wait blocks the calling process until the next Raise.
func (g *Signal) Wait(p *Proc) {
	g.procs = append(g.procs, p)
	p.park()
}

// WaitTimeout blocks the calling process until the next Raise or until d has
// elapsed, whichever comes first. It reports whether the signal was raised
// (false means timeout). Pass Never for no timeout.
func (g *Signal) WaitTimeout(p *Proc, d Time) bool {
	if d == Never {
		g.Wait(p)
		return true
	}
	raised := false
	fired := false
	// The timer and the raise race; whichever runs first wakes the process
	// and disarms the other.
	wakeOnce := func(byRaise bool) {
		if fired {
			return
		}
		fired = true
		raised = byRaise
		p.wake()
	}
	g.callbks = append(g.callbks, func() { wakeOnce(true) })
	g.s.After(d, func() { wakeOnce(false) })
	p.park()
	return raised
}

// Notify registers fn to be called (once, at Raise time) on the next Raise.
// It is the callback analogue of Wait.
func (g *Signal) Notify(fn func()) {
	g.callbks = append(g.callbks, fn)
}

// Raise wakes every current waiter. Processes are woken in the order they
// waited, at the current virtual time; callbacks run immediately.
// Waiters that arrive during Raise are not woken (they wait for the next
// Raise).
func (g *Signal) Raise() {
	procs := g.procs
	cbs := g.callbks
	// New waiters go into the spare arrays (ping-pong buffering). The spares
	// are nilled while we iterate so a nested Raise from a woken process
	// falls back to fresh slices instead of scribbling over this iteration.
	g.procs = g.procsSpare[:0]
	g.callbks = g.callbksSpare[:0]
	g.procsSpare = nil
	g.callbksSpare = nil
	for _, fn := range cbs {
		fn()
	}
	for _, p := range procs {
		p.wake()
	}
	for i := range procs {
		procs[i] = nil
	}
	for i := range cbs {
		cbs[i] = nil
	}
	g.procsSpare = procs[:0]
	g.callbksSpare = cbs[:0]
}

// HasWaiters reports whether any process or callback is currently waiting.
func (g *Signal) HasWaiters() bool { return len(g.procs) > 0 || len(g.callbks) > 0 }
