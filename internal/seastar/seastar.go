// Package seastar models the Cray SeaStar ASIC of paper §2: the embedded
// 500 MHz PowerPC 440 that runs the firmware, the independent transmit and
// receive DMA engines, the HyperTransport cave connecting the chip to the
// Opteron, the 384 KB of local scratch SRAM, and the bounded FIFOs between
// the DMA engines and the router.
//
// The chip is pure hardware: resources with occupancy and latency. All
// protocol behavior lives in package fw (the firmware) and above.
package seastar

import (
	"fmt"

	"portals3/internal/model"
	"portals3/internal/sim"
	"portals3/internal/topo"
)

// Chip is one SeaStar instance, attached to one node.
type Chip struct {
	S    *sim.Sim
	P    *model.Params
	Node topo.NodeID

	// CPU is the PowerPC 440. The firmware is a single-threaded
	// run-to-completion event loop (§4.3), so all handler work serializes
	// through this one server.
	CPU *sim.Server

	// HTRead models host-memory reads issued by the chip (TX payload
	// fetches). Reads are transactions across the HyperTransport bus:
	// high latency (the reason the firmware never reads the upper pending,
	// §4.2), and a practical bandwidth well below the 2.8 GB/s peak.
	HTRead *sim.Server

	// HTWrite models posted writes to host memory (RX payload deposits,
	// upper pending updates, event posts). Writes stream better than
	// reads.
	HTWrite *sim.Server

	// RxFIFO bounds payload buffered on the chip ahead of the RX DMA
	// engine; it is the credit pool the fabric takes from, so filling it
	// backpressures the sending node.
	RxFIFO *sim.Credits

	// TxFIFO bounds data staged between the HT read engine and the router
	// ("If the message does not fit into the TX FIFO, the transmit state
	// machine will yield", §4.3).
	TxFIFO *sim.Credits

	// SRAM accounts for the 384 KB of local scratch memory.
	SRAM *SRAM
}

// New builds a chip for node n.
func New(s *sim.Sim, p *model.Params, n topo.NodeID) *Chip {
	c := &Chip{
		S:       s,
		P:       p,
		Node:    n,
		CPU:     sim.NewServer(s, fmt.Sprintf("ppc[%d]", n)),
		HTRead:  sim.NewServer(s, fmt.Sprintf("htrd[%d]", n)),
		HTWrite: sim.NewServer(s, fmt.Sprintf("htwr[%d]", n)),
		RxFIFO:  sim.NewCredits(s, fmt.Sprintf("rxfifo[%d]", n), p.RxFIFOBytes),
		TxFIFO:  sim.NewCredits(s, fmt.Sprintf("txfifo[%d]", n), p.TxFIFOBytes),
		SRAM:    NewSRAM(p.SRAMBytes),
	}
	// The firmware image occupies SRAM before anything else (§4: 22 KB).
	if err := c.SRAM.Alloc("firmware-image", p.FwImageBytes); err != nil {
		panic(err)
	}
	return c
}

// Exec schedules firmware work of the given PowerPC cycle count; fn runs
// when the (serialized) processor reaches and finishes it. Every handler
// pays the dispatch overhead of the polling loop.
func (c *Chip) Exec(cycles int64, fn func()) {
	c.CPU.Submit(c.P.PPCCycles(c.P.FwDispatchCycles+cycles), fn)
}

// ReadHost performs one DMA read of n bytes from host memory split across
// segs physically contiguous segments; fn runs at completion. Each segment
// is a separate HT transaction and pays the read latency.
func (c *Chip) ReadHost(n int64, segs int, fn func()) {
	if segs < 1 {
		segs = 1
	}
	d := sim.Time(segs)*c.P.HTReadLatency + sim.BytesAt(n, c.P.HTReadBps)
	c.HTRead.Submit(d, fn)
}

// ReadHostStream performs one burst of a pipelined bulk DMA read: the
// engine keeps multiple transactions outstanding, so a burst costs
// bandwidth plus a small per-segment descriptor overhead, not the full HT
// round-trip latency (which only control reads pay).
func (c *Chip) ReadHostStream(n int64, segs int, fn func()) {
	if segs < 1 {
		segs = 1
	}
	d := sim.Time(segs)*c.P.DMASegOverhead + sim.BytesAt(n, c.P.HTReadBps)
	c.HTRead.Submit(d, fn)
}

// WriteHost performs one posted DMA write of n bytes to host memory; fn
// runs when the write is globally visible.
func (c *Chip) WriteHost(n int64, fn func()) {
	d := c.P.HTWriteLatency + sim.BytesAt(n, c.P.HTWriteBps)
	c.HTWrite.Submit(d, fn)
}

// WriteHostStream performs one burst of a pipelined bulk DMA write (RX
// payload deposit): bandwidth plus per-segment descriptor overhead.
func (c *Chip) WriteHostStream(n int64, segs int, fn func()) {
	if segs < 1 {
		segs = 1
	}
	d := sim.Time(segs)*c.P.DMASegOverhead + sim.BytesAt(n, c.P.HTWriteBps)
	c.HTWrite.Submit(d, fn)
}

// SRAM is a named-allocation accountant for the chip's scratch memory.
// There is no free: the firmware pre-allocates every structure at
// initialization time and never allocates dynamically (§4.2).
type SRAM struct {
	capacity int64
	used     int64
	allocs   map[string]int64
}

// NewSRAM returns an accountant over capacity bytes.
func NewSRAM(capacity int64) *SRAM {
	return &SRAM{capacity: capacity, allocs: make(map[string]int64)}
}

// Alloc reserves n bytes under name; it fails when the budget is exceeded,
// which is a firmware configuration error (the pools must fit in 384 KB).
func (m *SRAM) Alloc(name string, n int64) error {
	if n < 0 {
		return fmt.Errorf("seastar: negative SRAM allocation %q", name)
	}
	if m.used+n > m.capacity {
		return fmt.Errorf("seastar: SRAM exhausted: %q wants %d, %d of %d used",
			name, n, m.used, m.capacity)
	}
	m.used += n
	m.allocs[name] += n
	return nil
}

// Used reports total reserved bytes.
func (m *SRAM) Used() int64 { return m.used }

// Free reports remaining bytes.
func (m *SRAM) Free() int64 { return m.capacity - m.used }

// Allocs returns a copy of the allocation map for reporting.
func (m *SRAM) Allocs() map[string]int64 {
	out := make(map[string]int64, len(m.allocs))
	for k, v := range m.allocs {
		out[k] = v
	}
	return out
}
