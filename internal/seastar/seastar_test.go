package seastar

import (
	"testing"

	"portals3/internal/model"
	"portals3/internal/sim"
)

func newChip(t *testing.T) (*sim.Sim, *Chip, model.Params) {
	t.Helper()
	s := sim.New()
	p := model.Defaults()
	return s, New(s, &p, 0), p
}

func TestFirmwareImageChargedToSRAM(t *testing.T) {
	_, c, p := newChip(t)
	if c.SRAM.Used() != p.FwImageBytes {
		t.Errorf("SRAM used = %d, want the 22 KB firmware image", c.SRAM.Used())
	}
}

func TestSRAMExhaustion(t *testing.T) {
	m := NewSRAM(100)
	if err := m.Alloc("a", 60); err != nil {
		t.Fatal(err)
	}
	if err := m.Alloc("b", 60); err == nil {
		t.Error("over-allocation accepted")
	}
	if err := m.Alloc("c", 40); err != nil {
		t.Errorf("exact fit rejected: %v", err)
	}
	if m.Free() != 0 {
		t.Errorf("free = %d", m.Free())
	}
	if m.Allocs()["a"] != 60 {
		t.Error("allocation map wrong")
	}
	if err := m.Alloc("neg", -1); err == nil {
		t.Error("negative allocation accepted")
	}
}

func TestExecSerializesThroughCPU(t *testing.T) {
	s, c, p := newChip(t)
	var done []sim.Time
	c.Exec(500, func() { done = append(done, s.Now()) }) // 500+40 cycles @500MHz
	c.Exec(500, func() { done = append(done, s.Now()) })
	s.Run()
	per := p.PPCCycles(540)
	if done[0] != per || done[1] != 2*per {
		t.Errorf("handler completions %v, want %v and %v (single-threaded firmware)", done, per, 2*per)
	}
}

func TestReadHostPaysPerSegmentLatency(t *testing.T) {
	s, c, p := newChip(t)
	var one, four sim.Time
	c.ReadHost(4096, 1, func() { one = s.Now() })
	s.Run()
	s2 := sim.New()
	c2 := New(s2, &p, 0)
	c2.ReadHost(4096, 4, func() { four = s2.Now() })
	s2.Run()
	if four-one != 3*p.HTReadLatency {
		t.Errorf("4-segment read should cost 3 extra latencies: %v vs %v", four, one)
	}
}

func TestStreamTransfersSkipHTLatency(t *testing.T) {
	s, c, p := newChip(t)
	var ctrl, stream sim.Time
	c.WriteHost(2048, func() { ctrl = s.Now() - 0 })
	s.Run()
	s2 := sim.New()
	c2 := New(s2, &p, 0)
	c2.WriteHostStream(2048, 1, func() { stream = s2.Now() })
	s2.Run()
	// A pipelined bulk write pays the segment overhead, not the full
	// posted-write latency.
	if stream >= ctrl {
		t.Errorf("stream write (%v) should be cheaper than control write (%v)", stream, ctrl)
	}
	want := p.DMASegOverhead + sim.BytesAt(2048, p.HTWriteBps)
	if stream != want {
		t.Errorf("stream write = %v, want %v", stream, want)
	}
	var rd sim.Time
	s3 := sim.New()
	c3 := New(s3, &p, 0)
	c3.ReadHostStream(4096, 2, func() { rd = s3.Now() })
	s3.Run()
	wantRd := 2*p.DMASegOverhead + sim.BytesAt(4096, p.HTReadBps)
	if rd != wantRd {
		t.Errorf("stream read = %v, want %v", rd, wantRd)
	}
}
