package nal

import (
	"portals3/internal/core"
	"portals3/internal/model"
	"portals3/internal/sim"
)

// API is the user-level Portals 3.3 interface bound to one application
// process: every method is one Ptl* call, paying the bridge crossing and
// the library processing costs before the (pure) library state machine in
// package core runs. Applications receive an API from the machine layer
// when they are spawned.
type API struct {
	// Proc is the owning application coroutine; API calls may only be made
	// from it.
	Proc *sim.Proc

	lib     *core.Lib
	br      Bridge
	p       *model.Params
	regions map[core.MDHandle]core.Region
}

// NewAPI binds an API front end to a library instance through a bridge.
// The machine layer calls this; tests may too.
func NewAPI(proc *sim.Proc, lib *core.Lib, br Bridge, p *model.Params) *API {
	return &API{Proc: proc, lib: lib, br: br, p: p, regions: make(map[core.MDHandle]core.Region)}
}

// call charges one API crossing and serializes against in-progress driver
// processing of the same library (the kernel-lock semantics the receive
// protocols depend on).
func (a *API) call() {
	a.br.Cross(a.Proc)
	a.lib.AwaitUnlocked(a.Proc)
	a.Proc.Sleep(a.p.HostCycles(a.p.HostAPICycles))
}

// ID returns this process's Portals id (PtlGetId).
func (a *API) ID() core.ProcessID { a.call(); return a.lib.ID() }

// UID returns this process's user id (PtlGetUid).
func (a *API) UID() uint32 { a.call(); return a.lib.UID() }

// NIStatus reads a status register (PtlNIStatus).
func (a *API) NIStatus(r core.StatusRegister) uint64 { a.call(); return a.lib.Status(r) }

// NIDist returns the network distance to nid in hops (PtlNIDist).
func (a *API) NIDist(nid uint32) int { a.call(); return a.lib.Distance(nid) }

// MEAttach creates a match entry on a portal index (PtlMEAttach).
func (a *API) MEAttach(ptl int, matchID core.ProcessID, matchBits, ignoreBits uint64,
	unlink core.Unlink, pos core.Position) (core.MEHandle, error) {
	a.call()
	return a.lib.MEAttach(ptl, matchID, matchBits, ignoreBits, unlink, pos)
}

// MEAttachAny claims the first unused portal index (PtlMEAttachAny).
func (a *API) MEAttachAny(matchID core.ProcessID, matchBits, ignoreBits uint64,
	unlink core.Unlink, pos core.Position) (int, core.MEHandle, error) {
	a.call()
	return a.lib.MEAttachAny(matchID, matchBits, ignoreBits, unlink, pos)
}

// MEInsert creates a match entry adjacent to an existing one (PtlMEInsert).
func (a *API) MEInsert(base core.MEHandle, matchID core.ProcessID, matchBits, ignoreBits uint64,
	unlink core.Unlink, pos core.Position) (core.MEHandle, error) {
	a.call()
	return a.lib.MEInsert(base, matchID, matchBits, ignoreBits, unlink, pos)
}

// MEUnlink removes a match entry (PtlMEUnlink).
func (a *API) MEUnlink(h core.MEHandle) error { a.call(); return a.lib.MEUnlink(h) }

// MDAttach attaches a memory descriptor to a match entry (PtlMDAttach).
func (a *API) MDAttach(me core.MEHandle, d core.MDesc, unlink core.Unlink) (core.MDHandle, error) {
	a.call()
	h, err := a.lib.MDAttach(me, d, unlink)
	if err == nil {
		a.regions[h] = d.Region
	}
	return h, err
}

// MDBind creates a free-floating memory descriptor (PtlMDBind).
func (a *API) MDBind(d core.MDesc) (core.MDHandle, error) {
	a.call()
	h, err := a.lib.MDBind(d)
	if err == nil {
		a.regions[h] = d.Region
	}
	return h, err
}

// MDUnlink destroys a memory descriptor (PtlMDUnlink).
func (a *API) MDUnlink(h core.MDHandle) error {
	a.call()
	err := a.lib.MDUnlink(h)
	if err == nil {
		delete(a.regions, h)
	}
	return err
}

// MDUpdate conditionally replaces a descriptor (PtlMDUpdate). The
// re-acquire immediately before the operation makes the test-and-update
// atomic with respect to driver message processing — the property the
// race-free receive protocol needs.
func (a *API) MDUpdate(h core.MDHandle, old, newDesc *core.MDesc, testEQ core.EQHandle) error {
	a.call()
	a.lib.AwaitUnlocked(a.Proc)
	err := a.lib.MDUpdate(h, old, newDesc, testEQ)
	if err == nil && newDesc != nil {
		a.regions[h] = newDesc.Region
	}
	return err
}

// EQAlloc creates an event queue (PtlEQAlloc).
func (a *API) EQAlloc(count int) (core.EQHandle, error) { a.call(); return a.lib.EQAlloc(count) }

// EQFree destroys an event queue (PtlEQFree).
func (a *API) EQFree(h core.EQHandle) error { a.call(); return a.lib.EQFree(h) }

// EQGet polls one event without blocking (PtlEQGet).
func (a *API) EQGet(h core.EQHandle) (core.Event, error) { a.call(); return a.lib.EQGet(h) }

// EQWait blocks until an event is available (PtlEQWait). In generic mode
// the process sleeps in the kernel and the interrupt path wakes it; in
// accelerated mode the user-level library polls — either way the wait is
// a Signal on the queue, with the crossing cost per check.
func (a *API) EQWait(h core.EQHandle) (core.Event, error) {
	for {
		a.call()
		ev, err := a.lib.EQGet(h)
		if err != core.ErrEQEmpty {
			return ev, err
		}
		q, ok := a.lib.EQ(h)
		if !ok {
			return core.Event{}, core.ErrInvalidHandle
		}
		q.Signal().Wait(a.Proc)
	}
}

// EQPoll waits on several queues with a timeout (PtlEQPoll). It returns
// the queue index alongside the event; ErrEQEmpty signals timeout. Pass
// sim.Never for no timeout.
func (a *API) EQPoll(hs []core.EQHandle, timeout sim.Time) (core.Event, int, error) {
	deadline := sim.Never
	if timeout != sim.Never {
		deadline = a.Proc.Now() + timeout
	}
	for {
		a.call()
		for i, h := range hs {
			ev, err := a.lib.EQGet(h)
			if err != core.ErrEQEmpty {
				return ev, i, err
			}
		}
		if len(hs) == 0 {
			return core.Event{}, -1, core.ErrInvalidHandle
		}
		// Sleep until any of the polled queues delivers: an aggregate
		// signal fans in every queue's wakeup. Stale registrations from
		// earlier rounds raise the aggregate with no waiter, which is
		// harmless — the loop re-polls every queue after each wake.
		agg := sim.NewSignal(a.Proc.Sim())
		registered := false
		for _, h := range hs {
			if q, ok := a.lib.EQ(h); ok {
				q.Signal().Notify(func() { agg.Raise() })
				registered = true
			}
		}
		if !registered {
			return core.Event{}, -1, core.ErrInvalidHandle
		}
		if deadline == sim.Never {
			agg.Wait(a.Proc)
			continue
		}
		remaining := deadline - a.Proc.Now()
		if remaining <= 0 {
			return core.Event{}, -1, core.ErrEQEmpty
		}
		if !agg.WaitTimeout(a.Proc, remaining) && a.Proc.Now() >= deadline {
			return core.Event{}, -1, core.ErrEQEmpty
		}
	}
}

// ACEntry installs an access control entry (PtlACEntry).
func (a *API) ACEntry(index int, uid uint32, matchID core.ProcessID, ptl int) error {
	a.call()
	return a.lib.ACEntry(index, uid, matchID, ptl)
}

// sendSetup charges the host-side transmit preparation: header build,
// pending allocation, command push, and — for non-contiguous buffers — the
// per-page DMA command pre-computation of §3.3.
func (a *API) sendSetup(h core.MDHandle, off, length int) {
	cycles := a.p.HostTxSetupCycles
	if r, ok := a.regions[h]; ok && r != nil && r.Segments() > 1 && length > 0 {
		page := int(a.p.PageBytes)
		segs := (off+length-1)/page - off/page + 1
		cycles += int64(segs) * a.p.HostPerPageCycles
	}
	a.Proc.Sleep(a.p.HostCycles(cycles))
}

// Put transmits the descriptor's memory to the target (PtlPut).
func (a *API) Put(md core.MDHandle, ack core.AckReq, target core.ProcessID, ptl int,
	matchBits uint64, remoteOffset int, hdrData uint64) error {
	a.call()
	length := 0
	if r, ok := a.regions[md]; ok && r != nil {
		length = r.Len()
	}
	a.sendSetup(md, 0, length)
	return a.lib.Put(md, ack, target, ptl, matchBits, remoteOffset, hdrData)
}

// PutRegion transmits part of the descriptor's memory (PtlPutRegion).
func (a *API) PutRegion(md core.MDHandle, localOffset, length int, ack core.AckReq,
	target core.ProcessID, ptl int, matchBits uint64, remoteOffset int, hdrData uint64) error {
	a.call()
	a.sendSetup(md, localOffset, length)
	return a.lib.PutRegion(md, localOffset, length, ack, target, ptl, matchBits, remoteOffset, hdrData)
}

// Get requests the target's matched memory (PtlGet).
func (a *API) Get(md core.MDHandle, target core.ProcessID, ptl int, matchBits uint64, remoteOffset int) error {
	a.call()
	a.Proc.Sleep(a.p.HostCycles(a.p.HostTxSetupCycles))
	return a.lib.Get(md, target, ptl, matchBits, remoteOffset)
}

// GetRegion requests part of the target's matched memory (PtlGetRegion).
func (a *API) GetRegion(md core.MDHandle, localOffset, length int, target core.ProcessID,
	ptl int, matchBits uint64, remoteOffset int) error {
	a.call()
	a.Proc.Sleep(a.p.HostCycles(a.p.HostTxSetupCycles))
	return a.lib.GetRegion(md, localOffset, length, target, ptl, matchBits, remoteOffset)
}

// Lib exposes the underlying library for white-box tests and tools.
func (a *API) Lib() *core.Lib { return a.lib }

// Bridge reports which bridge this API crosses.
func (a *API) Bridge() string { return a.br.Name() }
