// Package nal_test exercises the bridges and the API cost model through
// the machine layer (an external test package, since machine imports nal).
package nal_test

import (
	"testing"

	"portals3/internal/core"
	"portals3/internal/machine"
	"portals3/internal/model"
	"portals3/internal/nal"
	"portals3/internal/oskernel"
	"portals3/internal/sim"
	"portals3/internal/topo"
)

func TestBridgeCrossingCosts(t *testing.T) {
	s := sim.New()
	p := model.Defaults()
	cat := oskernel.New(s, &p, oskernel.Catamount, 0)
	lin := oskernel.New(s, &p, oskernel.Linux, 1)

	cases := []struct {
		br   nal.Bridge
		want sim.Time
	}{
		{nal.QKBridge{K: cat}, p.TrapOverhead},
		{nal.UKBridge{K: lin}, p.LinuxSyscallOverhead},
		{nal.KBridge{}, 0},
		{nal.AccelBridge{}, 0},
	}
	for _, c := range cases {
		c := c
		var took sim.Time
		s.Go(c.br.Name(), func(proc *sim.Proc) {
			t0 := proc.Now()
			c.br.Cross(proc)
			took = proc.Now() - t0
		})
		s.Run()
		if took != c.want {
			t.Errorf("%s crossing cost %v, want %v", c.br.Name(), took, c.want)
		}
	}
}

func TestBridgeNames(t *testing.T) {
	names := map[string]nal.Bridge{
		"qkbridge": nal.QKBridge{},
		"ukbridge": nal.UKBridge{},
		"kbridge":  nal.KBridge{},
		"accel":    nal.AccelBridge{},
	}
	for want, br := range names {
		if br.Name() != want {
			t.Errorf("bridge name %q, want %q", br.Name(), want)
		}
	}
}

// apiCallCost measures a no-op API call (NIStatus) in a given mode/OS.
func apiCallCost(t *testing.T, kind oskernel.Kind, mode machine.Mode) sim.Time {
	t.Helper()
	p := model.Defaults()
	tp, _ := topo.New(2, 1, 1, false, false, false)
	m := machine.New(p, tp)
	m.OSKind = func(topo.NodeID) oskernel.Kind { return kind }
	var took sim.Time
	if _, err := m.Spawn(0, "probe", mode, func(app *machine.App) {
		t0 := app.Proc.Now()
		app.API.NIStatus(core.SRDropCount)
		took = app.Proc.Now() - t0
	}); err != nil {
		t.Fatal(err)
	}
	m.Run()
	return took
}

func TestAPICallCostsByBridge(t *testing.T) {
	p := model.Defaults()
	api := p.HostCycles(p.HostAPICycles)
	if got := apiCallCost(t, oskernel.Catamount, machine.Generic); got != p.TrapOverhead+api {
		t.Errorf("Catamount generic call = %v, want trap+api = %v", got, p.TrapOverhead+api)
	}
	if got := apiCallCost(t, oskernel.Linux, machine.Generic); got != p.LinuxSyscallOverhead+api {
		t.Errorf("Linux generic call = %v, want syscall+api = %v", got, p.LinuxSyscallOverhead+api)
	}
	if got := apiCallCost(t, oskernel.Catamount, machine.Accelerated); got != api {
		t.Errorf("accelerated call = %v, want api only = %v (no system calls, §3.3)", got, api)
	}
}

func TestPagedBufferPutChargesPerPage(t *testing.T) {
	// A Linux sender putting from a paged buffer pays per-page DMA command
	// pre-computation (§3.3): the Put call itself takes measurably longer
	// than from a 1-segment buffer of the same size.
	cost := func(pages int) sim.Time {
		p := model.Defaults()
		tp, _ := topo.New(2, 1, 1, false, false, false)
		m := machine.New(p, tp)
		m.OSKind = func(topo.NodeID) oskernel.Kind { return oskernel.Linux }
		var took sim.Time
		var dst *machine.App
		dst, _ = m.Spawn(1, "rx", machine.Generic, func(app *machine.App) {
			eq, _ := app.API.EQAlloc(16)
			me, _ := app.API.MEAttach(4, core.ProcessID{Nid: core.NidAny, Pid: core.PidAny}, 1, 0, core.Retain, core.After)
			app.API.MDAttach(me, core.MDesc{Region: app.Alloc(1 << 20), Threshold: core.ThresholdInfinite,
				Options: core.MDOpPut, EQ: eq}, core.Retain)
			app.API.EQWait(eq)
		})
		m.Spawn(0, "tx", machine.Generic, func(app *machine.App) {
			app.Proc.Sleep(50 * sim.Microsecond)
			n := pages * 4096
			src := app.Alloc(n)
			md, _ := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite})
			t0 := app.Proc.Now()
			app.API.Put(md, core.NoAck, dst.ID(), 4, 1, 0, 0)
			took = app.Proc.Now() - t0
		})
		m.RunUntil(10 * sim.Millisecond)
		return took
	}
	p := model.Defaults()
	one, many := cost(1), cost(64)
	// The single-page buffer is one segment and charges nothing extra; the
	// 64-page buffer charges all 64 segments.
	wantDelta := p.HostCycles(64 * p.HostPerPageCycles)
	if many-one != wantDelta {
		t.Errorf("64-page put costs %v more than 1-page, want %v", many-one, wantDelta)
	}
}

func TestEQPollTimesOut(t *testing.T) {
	p := model.Defaults()
	tp, _ := topo.New(1, 1, 1, false, false, false)
	m := machine.New(p, tp)
	var err error
	var waited sim.Time
	m.Spawn(0, "poller", machine.Generic, func(app *machine.App) {
		eq, _ := app.API.EQAlloc(4)
		t0 := app.Proc.Now()
		_, _, err = app.API.EQPoll([]core.EQHandle{eq}, 10*sim.Microsecond)
		waited = app.Proc.Now() - t0
	})
	m.Run()
	if err != core.ErrEQEmpty {
		t.Errorf("EQPoll timeout returned %v, want ErrEQEmpty", err)
	}
	if waited < 10*sim.Microsecond {
		t.Errorf("EQPoll returned after %v, before the timeout", waited)
	}
}

func TestLockSerializesAPIAgainstDriver(t *testing.T) {
	// While the driver processes a header (lib locked), API calls from the
	// application must wait for the handler to finish.
	p := model.Defaults()
	tp, _ := topo.New(2, 1, 1, false, false, false)
	m := machine.New(p, tp)
	var dst *machine.App
	blocked := false
	dst, _ = m.Spawn(1, "rx", machine.Generic, func(app *machine.App) {
		eq, _ := app.API.EQAlloc(16)
		me, _ := app.API.MEAttach(4, core.ProcessID{Nid: core.NidAny, Pid: core.PidAny}, 1, 0, core.Retain, core.After)
		app.API.MDAttach(me, core.MDesc{Region: app.Alloc(4096), Threshold: core.ThresholdInfinite,
			Options: core.MDOpPut, EQ: eq}, core.Retain)
		// Hammer a cheap API call; if any invocation takes much longer
		// than trap+api, it waited on the lock.
		base := p.TrapOverhead + p.HostCycles(p.HostAPICycles)
		for app.Proc.Now() < 200*sim.Microsecond {
			t0 := app.Proc.Now()
			app.API.NIStatus(core.SRDropCount)
			if app.Proc.Now()-t0 > base {
				blocked = true
			}
			app.Proc.Sleep(200 * sim.Nanosecond)
		}
	})
	m.Spawn(0, "tx", machine.Generic, func(app *machine.App) {
		app.Proc.Sleep(30 * sim.Microsecond)
		src := app.Alloc(16)
		md, _ := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite})
		for i := 0; i < 20; i++ {
			app.API.Put(md, core.NoAck, dst.ID(), 4, 1, 0, 0)
			app.Proc.Sleep(3 * sim.Microsecond)
		}
	})
	m.RunUntil(300 * sim.Microsecond)
	if !blocked {
		t.Error("no API call ever waited on the kernel lock despite concurrent receives")
	}
}

func TestSendBacklogDrainsWhenPendingsFree(t *testing.T) {
	// More concurrent sends than TX pendings: the driver backlogs and all
	// messages still arrive.
	p := model.Defaults()
	p.NumGenericPendings = 8 // 4 TX pendings
	tp, _ := topo.New(2, 1, 1, false, false, false)
	m := machine.New(p, tp)
	// The receiver's RX pool is equally tiny; go-back-n keeps the incast
	// recoverable so the test can focus on the sender-side backlog.
	m.EnableGoBackN()
	const msgs = 24
	got := 0
	var dst *machine.App
	dst, _ = m.Spawn(1, "rx", machine.Generic, func(app *machine.App) {
		eq, _ := app.API.EQAlloc(256)
		me, _ := app.API.MEAttach(4, core.ProcessID{Nid: core.NidAny, Pid: core.PidAny}, 1, 0, core.Retain, core.After)
		app.API.MDAttach(me, core.MDesc{Region: app.Alloc(1 << 16), Threshold: core.ThresholdInfinite,
			Options: core.MDOpPut | core.MDManageRemote | core.MDEventStartDisable, EQ: eq}, core.Retain)
		for got < msgs {
			ev, err := app.API.EQWait(eq)
			if err != nil {
				return
			}
			if ev.Type == core.EventPutEnd {
				got++
			}
		}
	})
	m.Spawn(0, "tx", machine.Generic, func(app *machine.App) {
		app.Proc.Sleep(30 * sim.Microsecond)
		src := app.Alloc(1024)
		md, _ := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite})
		for i := 0; i < msgs; i++ {
			if err := app.API.Put(md, core.NoAck, dst.ID(), 4, 1, 0, 0); err != nil {
				t.Errorf("put %d: %v", i, err)
			}
		}
	})
	m.RunUntil(20 * sim.Millisecond)
	if got != msgs {
		t.Errorf("delivered %d of %d with a starved TX pool", got, msgs)
	}
}

func TestRefNALRunsPortalsSemantics(t *testing.T) {
	// The same library semantics over the reference NAL (§3.1/§3.2's
	// portability claim): no SeaStar, a plain latency/bandwidth transport.
	s := sim.New()
	n := nal.NewRefNAL(s, 10*sim.Microsecond, 100_000_000)
	a := n.AddProcess(core.ProcessID{Nid: 0, Pid: 1}, 1, core.Limits{})
	b := n.AddProcess(core.ProcessID{Nid: 1, Pid: 1}, 2, core.Limits{})

	// Receive side on b.
	eq, _ := b.EQAlloc(16)
	me, _ := b.MEAttach(4, core.ProcessID{Nid: core.NidAny, Pid: core.PidAny}, 9, 0, core.Retain, core.After)
	inbox := make(core.SliceRegion, 64)
	b.MDAttach(me, core.MDesc{Region: inbox, Threshold: core.ThresholdInfinite,
		Options: core.MDOpPut | core.MDOpGet | core.MDManageRemote | core.MDEventStartDisable, EQ: eq}, core.Retain)

	// Put from a.
	msg := core.SliceRegion("over the reference NAL")
	aeq, _ := a.EQAlloc(16)
	md, _ := a.MDBind(core.MDesc{Region: msg, Threshold: core.ThresholdInfinite,
		Options: core.MDEventStartDisable, EQ: aeq})
	var putEndAt sim.Time
	if err := a.Put(md, core.NoAck, b.ID(), 4, 9, 0, 0); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if string(inbox[:len(msg)]) != string(msg) {
		t.Fatalf("inbox = %q", inbox[:len(msg)])
	}
	ev, err := b.EQGet(eq)
	if err != nil || ev.Type != core.EventPutEnd {
		t.Fatalf("target event %v err %v", ev.Type, err)
	}
	putEndAt = ev.At
	// Delivery time = latency + size/bandwidth.
	want := 10*sim.Microsecond + sim.BytesAt(int64(len(msg)), 100_000_000)
	if putEndAt != want {
		t.Errorf("delivered at %v, want %v", putEndAt, want)
	}

	// Get back from b.
	dst := make(core.SliceRegion, len(msg))
	gmd, _ := a.MDBind(core.MDesc{Region: dst, Threshold: core.ThresholdInfinite,
		Options: core.MDEventStartDisable, EQ: aeq})
	if err := a.GetRegion(gmd, 0, len(msg), b.ID(), 4, 9, 0); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if string(dst) != string(msg) {
		t.Errorf("get returned %q", dst)
	}
}

func TestEQPollResolvesQueueIndex(t *testing.T) {
	p := model.Defaults()
	tp, _ := topo.New(2, 1, 1, false, false, false)
	m := machine.New(p, tp)
	var b *machine.App
	gotIdx := -1
	b, _ = m.Spawn(1, "rx", machine.Generic, func(app *machine.App) {
		// Two queues; the message arrives on the second one.
		eq1, _ := app.API.EQAlloc(8)
		eq2, _ := app.API.EQAlloc(8)
		me, _ := app.API.MEAttach(4, core.ProcessID{Nid: core.NidAny, Pid: core.PidAny}, 1, 0, core.Retain, core.After)
		app.API.MDAttach(me, core.MDesc{Region: app.Alloc(64), Threshold: core.ThresholdInfinite,
			Options: core.MDOpPut | core.MDEventStartDisable, EQ: eq2}, core.Retain)
		_, idx, err := app.API.EQPoll([]core.EQHandle{eq1, eq2}, sim.Never)
		if err != nil {
			t.Errorf("EQPoll: %v", err)
		}
		gotIdx = idx
	})
	m.Spawn(0, "tx", machine.Generic, func(app *machine.App) {
		app.Proc.Sleep(30 * sim.Microsecond)
		md, _ := app.API.MDBind(core.MDesc{Region: app.Alloc(8), Threshold: core.ThresholdInfinite})
		app.API.Put(md, core.NoAck, b.ID(), 4, 1, 0, 0)
	})
	m.Run()
	if gotIdx != 1 {
		t.Errorf("EQPoll resolved index %d, want 1", gotIdx)
	}
}
