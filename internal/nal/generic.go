package nal

import (
	"portals3/internal/core"
	"portals3/internal/flightrec"
	"portals3/internal/fw"
	"portals3/internal/model"
	"portals3/internal/oskernel"
	"portals3/internal/sim"
	"portals3/internal/telemetry"
	"portals3/internal/topo"
	"portals3/internal/wire"
)

// GenericDriver is the generic-mode SSNAL: the kernel-resident Portals
// implementation of paper §3.3/§4. The firmware interrupts the host with
// new headers; this driver performs the Portals matching, answers with
// receive commands, posts completion events to the applications, and pushes
// transmit commands for every generic process on the node.
//
// One driver serves all generic processes on a node — Catamount
// applications through qkbridge, Linux user applications through ukbridge
// and kernel services through kbridge all multiplex onto its single
// firmware mailbox, exactly as in the paper.
type GenericDriver struct {
	S    *sim.Sim
	P    *model.Params
	K    *oskernel.Kernel
	NIC  *fw.NIC
	Topo *topo.Topology

	// Tel, when non-nil, attaches a latency-attribution record to every
	// send and finishes it at app delivery (machine.EnableTelemetry).
	Tel *telemetry.Telemetry

	// FR is this node's flight-recorder ring; nil (disabled) is valid.
	FR *flightrec.Ring

	libs map[uint32]*core.Lib

	evq     []fw.Event // pending firmware events; evqHead indexes the next one
	evqHead int
	evqHigh int         // deepest driver event-queue backlog (occupancy high-water)
	backlog []*fw.TxReq // transmit requests awaiting a free TX pending

	// drainFn and doneFn are drain's continuations, bound once — the drain
	// loop runs per event and a fresh method value per pass is measurable.
	drainFn func()
	doneFn  func()
	evjFree []*evJob
	rcbFree []*rxCb
	scbFree []*sendCb

	// Stats for tests and reports.
	EventsHandled uint64
	Drops         uint64
}

// NewGeneric builds the driver, registers it as the NIC's generic process
// (with the paper's pending pool size) and installs the interrupt handler.
func NewGeneric(k *oskernel.Kernel, nic *fw.NIC, tp *topo.Topology, p *model.Params) (*GenericDriver, error) {
	d := &GenericDriver{S: k.S, P: p, K: k, NIC: nic, Topo: tp, libs: make(map[uint32]*core.Lib)}
	d.drainFn = d.drain
	d.doneFn = func() { d.K.InterruptDone() }
	if _, err := nic.RegisterGeneric(p.NumGenericPendings, d.fwEvent); err != nil {
		return nil, err
	}
	k.SetInterruptHandler(d.drainFn)
	return d, nil
}

// AttachProcess creates the kernel-resident library state for one generic
// process and returns it. The machine layer pairs it with an API through
// the appropriate bridge.
func (d *GenericDriver) AttachProcess(pid, uid uint32, limits core.Limits) *core.Lib {
	lib := core.NewLib(d.S, core.ProcessID{Nid: uint32(d.NIC.Node), Pid: pid}, uid, limits, &procBackend{d: d, pid: pid})
	d.libs[pid] = lib
	return lib
}

// DetachProcess removes a process's library (process exit).
func (d *GenericDriver) DetachProcess(pid uint32) { delete(d.libs, pid) }

// Lib returns the kernel-resident library of one generic process, for
// diagnostics and tests.
func (d *GenericDriver) Lib(pid uint32) *core.Lib { return d.libs[pid] }

// procBackend adapts the driver into a core.Backend for one process.
type procBackend struct {
	d   *GenericDriver
	pid uint32
}

// Send implements core.Backend: forward the library's send to the firmware
// as a transmit command.
func (b *procBackend) Send(req *core.SendReq) { b.d.send(b.pid, req) }

// Distance implements core.Backend via the routing tables.
func (b *procBackend) Distance(nid uint32) int {
	return b.d.Topo.Hops(b.d.NIC.Node, topo.NodeID(nid))
}

// send builds the firmware transmit request for a library send and submits
// it, holding it in a backlog when the host-managed pending pool is empty.
func (d *GenericDriver) send(pid uint32, req *core.SendReq) {
	lib := d.libs[pid]
	tx := d.NIC.AllocTxReq()
	tx.Pid = pid
	tx.Hdr = req.Hdr
	tx.Off = req.Off
	tx.Len = req.Len
	if d.Tel != nil {
		// The host has trapped, marshaled and built the command: the
		// message's life (and its host segment) starts here.
		rec := d.Tel.NewMsgRec(req.Len)
		rec.Stamp(telemetry.StampSubmit, d.S.Now())
		tx.Rec = rec
	}
	if req.Region != nil {
		tx.Buf = req.Region
	}
	switch {
	case req.RxOp != nil, req.Hdr.Type == wire.TypePut:
		// A get reply completes the target side of the get at TX done; a
		// put posts SEND_END. Gets and acks carry no local completion
		// semantics and leave Done nil.
		c := d.getSendCb()
		c.lib = lib
		c.req = req
		tx.Done = c.fn
		d.submit(tx)
		return
	}
	d.submit(tx)
	// No completion callback: the transmit command carries everything the
	// firmware needs, so the request is done.
	lib.FreeSendReq(req)
}

// sendCb carries a send's TX-done completion (the lib and the originating
// request) with the callback bound once, replacing a per-send closure.
type sendCb struct {
	d   *GenericDriver
	lib *core.Lib
	req *core.SendReq
	fn  func(ok bool)
}

func (d *GenericDriver) getSendCb() *sendCb {
	if k := len(d.scbFree); k > 0 {
		c := d.scbFree[k-1]
		d.scbFree = d.scbFree[:k-1]
		return c
	}
	c := &sendCb{d: d}
	c.fn = c.run
	return c
}

func (c *sendCb) run(ok bool) {
	d, lib, req := c.d, c.lib, c.req
	c.lib, c.req = nil, nil
	d.scbFree = append(d.scbFree, c)
	if req.RxOp != nil {
		// A get reply: completing the transmission completes the target
		// side of the get.
		lib.ReplySent(req.RxOp)
		lib.FreeSendReq(req)
		return
	}
	lib.SendDone(req, ok)
}

func (d *GenericDriver) submit(tx *fw.TxReq) {
	if err := d.NIC.SubmitTx(tx); err != nil {
		d.backlog = append(d.backlog, tx)
	}
}

// fwEvent receives firmware events host-side (after the event's HT write)
// and requests the interrupt that will process them. Multiple events
// coalesce into one interrupt (§4.1).
func (d *GenericDriver) fwEvent(ev fw.Event) {
	d.evq = append(d.evq, ev)
	depth := len(d.evq) - d.evqHead
	if depth > d.evqHigh {
		d.evqHigh = depth
	}
	if d.FR != nil {
		d.FR.Record(flightrec.KIrqRaise, d.S.Now(), ev.Span(), uint32(depth), 0)
	}
	d.K.RaiseInterrupt()
}

// EvQueueDepth reports the driver event-queue backlog right now.
func (d *GenericDriver) EvQueueDepth() int { return len(d.evq) - d.evqHead }

// EvQueueHigh reports the deepest backlog the event queue ever reached.
func (d *GenericDriver) EvQueueHigh() int { return d.evqHigh }

// drain is the interrupt handler: it processes every queued firmware event,
// charging host cycles per event, and re-checks for events that arrived
// while it ran before re-arming interrupts ("the Portals interrupt handler
// processes all of the new events in the generic EQ each time it is
// invoked", §4.1).
func (d *GenericDriver) drain() {
	if d.evqHead == len(d.evq) {
		d.evq = d.evq[:0] // drained: rewind so the buffer's capacity is reused
		d.evqHead = 0
		d.K.InterruptDone()
		return
	}
	ev := d.evq[d.evqHead]
	d.evqHead++
	if d.evqHead == len(d.evq) {
		// Last pending event taken: rewind now so the buffer never grows
		// without bound (under NoCoalesce the empty-queue entry path above
		// may never run).
		d.evq = d.evq[:0]
		d.evqHead = 0
	}
	d.EventsHandled++
	next := d.drainFn
	if d.K.NoCoalesce {
		// Ablation: one event per interrupt — finish after this event and
		// let the pending raises take fresh interrupts.
		next = d.doneFn
	}
	if ev.Kind == fw.EvNewHeader {
		// Header processing charges in two stages: the fixed matching cost
		// runs before the library walk (whose events first become visible
		// to applications), then the walk-dependent and command-building
		// cost before the firmware command goes out.
		j := d.getEvJob()
		j.ev = ev
		j.next = next
		d.K.KernelWork(d.P.HostMatchBaseCycles, j.matchFn)
		return
	}
	j := d.getEvJob()
	j.ev = ev
	j.next = next
	cycles := d.process(j, ev)
	d.K.KernelWork(cycles, j.applyFn)
}

// evAction names the state change an evJob applies once its kernel cycles
// have been charged; with the carrier's fields (lib, op) it replaces a
// per-event apply closure.
type evAction int

const (
	evActNone      evAction = iota
	evActRxDone             // completion callback + release
	evActTxDone             // Done callback + backlog retry + request recycle
	evActDropNoLib          // no process for the pid: discard, no lock held
	evActRelease            // ack (library already posted): release
	evActDrop               // matching dropped the message: discard
	evActReply              // get request: transmit the reply
	evActInline             // payload arrived inline: deposit and finish
	evActRxCmd              // payload follows: issue the receive command
)

// evJob carries one firmware event through drain's staged kernel-work
// charges; the stage callbacks are bound once and the carrier recycled, so
// the per-event path allocates nothing.
type evJob struct {
	d       *GenericDriver
	ev      fw.Event
	next    func()
	action  evAction
	lib     *core.Lib // locked library, for actions that must unlock it
	op      *core.RxOp
	matchFn func() // fixed matching cost charged; run the library walk
	applyFn func() // walk-dependent cost charged; apply and continue
}

func (d *GenericDriver) getEvJob() *evJob {
	if k := len(d.evjFree); k > 0 {
		j := d.evjFree[k-1]
		d.evjFree = d.evjFree[:k-1]
		return j
	}
	j := &evJob{d: d}
	j.matchFn = j.match
	j.applyFn = j.applyNext
	return j
}

func (j *evJob) match() {
	cycles := j.d.processHeader(j, j.ev)
	j.d.K.KernelWork(cycles, j.applyFn)
}

func (j *evJob) applyNext() {
	d, ev, next := j.d, j.ev, j.next
	action, lib, op := j.action, j.lib, j.op
	j.ev = fw.Event{}
	j.next = nil
	j.action = evActNone
	j.lib, j.op = nil, nil
	d.evjFree = append(d.evjFree, j)
	d.apply(action, ev, lib, op)
	next()
}

// apply performs the state change for one processed event. It runs after
// the event's kernel cycles were charged, so downstream effects (commands,
// application events) happen at the right time. Actions below evActDropNoLib
// never hold the library lock; the rest entered through processHeader, which
// locked and deferred the library, and unlock it here.
func (d *GenericDriver) apply(action evAction, ev fw.Event, lib *core.Lib, op *core.RxOp) {
	switch action {
	case evActRxDone:
		if done := ev.Pending.Done(); done != nil {
			done(ev.OK)
		}
		d.finishRec(ev.Pending)
		ev.Pending.Release()
		return
	case evActTxDone:
		tx := ev.Tx
		if tx.Done != nil {
			tx.Done(ev.OK)
		}
		// A pending returned to the pool: retry backlogged sends.
		for len(d.backlog) > 0 {
			btx := d.backlog[0]
			if err := d.NIC.SubmitTx(btx); err != nil {
				break
			}
			d.backlog = d.backlog[1:]
		}
		d.NIC.RecycleTxReq(tx)
		return
	case evActDropNoLib:
		p := ev.Pending
		if !p.Complete() {
			p.Discard()
		}
		p.Release()
		return
	case evActNone:
		return
	}
	p := ev.Pending
	switch action {
	case evActRelease:
		d.finishRec(p)
		p.Release()
	case evActDrop:
		if !p.Complete() {
			p.Discard()
		}
		p.Release()
	case evActReply:
		// Get request: transmit the reply before the GET_START event
		// becomes visible — one pass through the handler.
		d.finishRec(p)
		d.send(p.Hdr.DstPid, op.Reply)
		p.Release()
	case evActInline:
		// Whole payload arrived with the header (≤12 B inline): deposit
		// from the upper pending and finish — one interrupt total.
		mlen := op.MLen
		if mlen > len(p.Inline) {
			mlen = len(p.Inline)
		}
		if mlen > 0 {
			op.Region.WriteAt(op.Off, p.Inline[:mlen])
		}
		if ack := lib.Delivered(op, ev.OK); ack != nil {
			d.send(p.Hdr.DstPid, ack)
		}
		d.finishRec(p)
		p.Release()
	case evActRxCmd:
		// Payload follows: answer with the receive command.
		c := d.getRxCb()
		c.lib = lib
		c.op = op
		c.pid = p.Hdr.DstPid
		p.SubmitRx(op.Region, op.Off, op.MLen, c.fn)
	}
	lib.EndDefer()
	lib.Unlock()
}

// finishRec completes a message's latency attribution at app delivery: the
// last boundary is stamped and the record's segments feed the telemetry
// histograms. One pointer test when telemetry is off.
func (d *GenericDriver) finishRec(p *fw.Pending) {
	if d.Tel == nil {
		return
	}
	if rec := p.TakeRec(); rec != nil {
		rec.Stamp(telemetry.StampDeliver, d.S.Now())
		d.Tel.FinishMsg(rec)
	}
}

// rxCb carries a long message's delivery completion (invoked at RX_DONE)
// with the callback bound once, replacing a per-message closure.
type rxCb struct {
	d   *GenericDriver
	lib *core.Lib
	op  *core.RxOp
	pid uint32
	fn  func(ok bool)
}

func (d *GenericDriver) getRxCb() *rxCb {
	if k := len(d.rcbFree); k > 0 {
		c := d.rcbFree[k-1]
		d.rcbFree = d.rcbFree[:k-1]
		return c
	}
	c := &rxCb{d: d}
	c.fn = c.run
	return c
}

func (c *rxCb) run(ok bool) {
	d, lib, op, pid := c.d, c.lib, c.op, c.pid
	c.lib, c.op = nil, nil
	d.rcbFree = append(d.rcbFree, c)
	if ack := lib.Delivered(op, ok); ack != nil {
		d.send(pid, ack)
	}
}

// process maps one non-header firmware event to its host cost, recording
// the resulting action on the carrier.
func (d *GenericDriver) process(j *evJob, ev fw.Event) int64 {
	switch ev.Kind {
	case fw.EvRxDone:
		j.action = evActRxDone
		return d.P.HostEventCycles
	case fw.EvTxDone:
		j.action = evActTxDone
		return d.P.HostEventCycles
	}
	j.action = evActNone
	return 0
}

// processHeader performs the Portals processing for a new message header:
// matching on the host (this is generic mode), recording the follow-up
// action (receive command, inline completion, reply transmission, discard)
// on the carrier. The fixed matching cost was charged by the caller before
// this runs; the returned cycles cover the walk-dependent and
// command-building work.
//
// Events the library posts during this message's processing wake their
// waiters only once the apply phase completes, and the library is locked
// against API calls meanwhile (the kernel-lock serialization the receive
// protocols depend on); apply unlocks it.
func (d *GenericDriver) processHeader(j *evJob, ev fw.Event) int64 {
	p := ev.Pending
	hdr := p.Hdr
	lib := d.libs[hdr.DstPid]
	if lib == nil {
		d.Drops++
		j.action = evActDropNoLib
		return 0
	}
	lib.Lock()
	lib.BeginDefer()
	j.lib = lib
	op := lib.Receive(&hdr)
	if op == nil {
		// An acknowledgment: the library posted the ACK event already.
		j.action = evActRelease
		return d.P.HostEventCycles
	}
	j.op = op
	cycles := int64(op.Walked) * d.P.HostMatchPerME
	switch {
	case op.Drop:
		d.Drops++
		j.action = evActDrop
		return cycles
	case op.Reply != nil:
		j.action = evActReply
		return cycles + d.P.HostTxSetupCycles + d.P.HostGetReplyCycles + d.segCycles(op.Region, op.Off, op.MLen)
	case p.Complete():
		j.action = evActInline
		return cycles + d.P.HostEventCycles
	default:
		// The host pre-computes per-page DMA commands for paged buffers
		// (§3.3).
		j.action = evActRxCmd
		return cycles + d.P.HostRxCmdCycles + d.segCycles(op.Region, op.Off, op.MLen)
	}
}

// segCycles is the per-page DMA pre-computation cost for a buffer range.
func (d *GenericDriver) segCycles(r core.Region, off, n int) int64 {
	if r == nil || n == 0 || r.Segments() <= 1 {
		return 0
	}
	page := int(d.P.PageBytes)
	segs := (off+n-1)/page - off/page + 1
	return int64(segs) * d.P.HostPerPageCycles
}
