package nal

import (
	"portals3/internal/core"
	"portals3/internal/fw"
	"portals3/internal/model"
	"portals3/internal/oskernel"
	"portals3/internal/sim"
	"portals3/internal/topo"
	"portals3/internal/wire"
)

// GenericDriver is the generic-mode SSNAL: the kernel-resident Portals
// implementation of paper §3.3/§4. The firmware interrupts the host with
// new headers; this driver performs the Portals matching, answers with
// receive commands, posts completion events to the applications, and pushes
// transmit commands for every generic process on the node.
//
// One driver serves all generic processes on a node — Catamount
// applications through qkbridge, Linux user applications through ukbridge
// and kernel services through kbridge all multiplex onto its single
// firmware mailbox, exactly as in the paper.
type GenericDriver struct {
	S    *sim.Sim
	P    *model.Params
	K    *oskernel.Kernel
	NIC  *fw.NIC
	Topo *topo.Topology

	libs map[uint32]*core.Lib

	evq     []fw.Event
	backlog []*fw.TxReq // transmit requests awaiting a free TX pending

	// Stats for tests and reports.
	EventsHandled uint64
	Drops         uint64
}

// NewGeneric builds the driver, registers it as the NIC's generic process
// (with the paper's pending pool size) and installs the interrupt handler.
func NewGeneric(k *oskernel.Kernel, nic *fw.NIC, tp *topo.Topology, p *model.Params) (*GenericDriver, error) {
	d := &GenericDriver{S: k.S, P: p, K: k, NIC: nic, Topo: tp, libs: make(map[uint32]*core.Lib)}
	if _, err := nic.RegisterGeneric(p.NumGenericPendings, d.fwEvent); err != nil {
		return nil, err
	}
	k.SetInterruptHandler(d.drain)
	return d, nil
}

// AttachProcess creates the kernel-resident library state for one generic
// process and returns it. The machine layer pairs it with an API through
// the appropriate bridge.
func (d *GenericDriver) AttachProcess(pid, uid uint32, limits core.Limits) *core.Lib {
	lib := core.NewLib(d.S, core.ProcessID{Nid: uint32(d.NIC.Node), Pid: pid}, uid, limits, &procBackend{d: d, pid: pid})
	d.libs[pid] = lib
	return lib
}

// DetachProcess removes a process's library (process exit).
func (d *GenericDriver) DetachProcess(pid uint32) { delete(d.libs, pid) }

// Lib returns the kernel-resident library of one generic process, for
// diagnostics and tests.
func (d *GenericDriver) Lib(pid uint32) *core.Lib { return d.libs[pid] }

// procBackend adapts the driver into a core.Backend for one process.
type procBackend struct {
	d   *GenericDriver
	pid uint32
}

// Send implements core.Backend: forward the library's send to the firmware
// as a transmit command.
func (b *procBackend) Send(req *core.SendReq) { b.d.send(b.pid, req) }

// Distance implements core.Backend via the routing tables.
func (b *procBackend) Distance(nid uint32) int {
	return b.d.Topo.Hops(b.d.NIC.Node, topo.NodeID(nid))
}

// send builds the firmware transmit request for a library send and submits
// it, holding it in a backlog when the host-managed pending pool is empty.
func (d *GenericDriver) send(pid uint32, req *core.SendReq) {
	lib := d.libs[pid]
	tx := &fw.TxReq{
		Pid: pid,
		Hdr: req.Hdr,
		Off: req.Off,
		Len: req.Len,
	}
	if req.Region != nil {
		tx.Buf = req.Region
	}
	creq := req
	switch {
	case req.RxOp != nil:
		// A get reply: completing the transmission completes the target
		// side of the get.
		tx.Done = func(ok bool) { lib.ReplySent(creq.RxOp) }
	case req.Hdr.Type == wire.TypePut:
		tx.Done = func(ok bool) { lib.SendDone(creq, ok) }
	default:
		// Gets and acks carry no local completion semantics.
		tx.Done = nil
	}
	d.submit(tx)
}

func (d *GenericDriver) submit(tx *fw.TxReq) {
	if err := d.NIC.SubmitTx(tx); err != nil {
		d.backlog = append(d.backlog, tx)
	}
}

// fwEvent receives firmware events host-side (after the event's HT write)
// and requests the interrupt that will process them. Multiple events
// coalesce into one interrupt (§4.1).
func (d *GenericDriver) fwEvent(ev fw.Event) {
	d.evq = append(d.evq, ev)
	d.K.RaiseInterrupt()
}

// drain is the interrupt handler: it processes every queued firmware event,
// charging host cycles per event, and re-checks for events that arrived
// while it ran before re-arming interrupts ("the Portals interrupt handler
// processes all of the new events in the generic EQ each time it is
// invoked", §4.1).
func (d *GenericDriver) drain() {
	if len(d.evq) == 0 {
		d.K.InterruptDone()
		return
	}
	ev := d.evq[0]
	d.evq = d.evq[1:]
	d.EventsHandled++
	next := d.drain
	if d.K.NoCoalesce {
		// Ablation: one event per interrupt — finish after this event and
		// let the pending raises take fresh interrupts.
		next = func() { d.K.InterruptDone() }
	}
	if ev.Kind == fw.EvNewHeader {
		// Header processing charges in two stages: the fixed matching cost
		// runs before the library walk (whose events first become visible
		// to applications), then the walk-dependent and command-building
		// cost before the firmware command goes out.
		d.K.KernelWork(d.P.HostMatchBaseCycles, func() {
			cycles, apply := d.processHeader(ev)
			d.K.KernelWork(cycles, func() {
				apply()
				next()
			})
		})
		return
	}
	cycles, apply := d.process(ev)
	d.K.KernelWork(cycles, func() {
		apply()
		next()
	})
}

// process maps one firmware event to its host cost and its state change.
// The cost is charged before apply runs, so downstream effects (commands,
// application events) happen at the right time.
func (d *GenericDriver) process(ev fw.Event) (cycles int64, apply func()) {
	switch ev.Kind {
	case fw.EvRxDone:
		return d.P.HostEventCycles, func() {
			if done := ev.Pending.Done(); done != nil {
				done(ev.OK)
			}
			ev.Pending.Release()
		}
	case fw.EvTxDone:
		return d.P.HostEventCycles, func() {
			if ev.Tx.Done != nil {
				ev.Tx.Done(ev.OK)
			}
			// A pending returned to the pool: retry backlogged sends.
			for len(d.backlog) > 0 {
				tx := d.backlog[0]
				if err := d.NIC.SubmitTx(tx); err != nil {
					break
				}
				d.backlog = d.backlog[1:]
			}
		}
	}
	return 0, func() {}
}

// processHeader performs the Portals processing for a new message header:
// matching on the host (this is generic mode), then the receive command,
// inline completion, reply transmission or discard. The fixed matching
// cost was charged by the caller before this runs; the returned cycles
// cover the walk-dependent and command-building work.
func (d *GenericDriver) processHeader(ev fw.Event) (int64, func()) {
	p := ev.Pending
	hdr := p.Hdr
	lib := d.libs[hdr.DstPid]
	if lib == nil {
		d.Drops++
		return 0, func() {
			if !p.Complete() {
				p.Discard()
			}
			p.Release()
		}
	}
	// Events the library posts during this message's processing wake
	// their waiters only once the handler's apply phase completes, and the
	// library is locked against API calls meanwhile (the kernel-lock
	// serialization the receive protocols depend on).
	lib.Lock()
	lib.BeginDefer()
	done := func(cycles int64, apply func()) (int64, func()) {
		return cycles, func() {
			apply()
			lib.EndDefer()
			lib.Unlock()
		}
	}
	op := lib.Receive(&hdr)
	if op == nil {
		// An acknowledgment: the library posted the ACK event already.
		return done(d.P.HostEventCycles, func() { p.Release() })
	}
	cycles := int64(op.Walked) * d.P.HostMatchPerME
	if op.Drop {
		d.Drops++
		return done(cycles, func() {
			if !p.Complete() {
				p.Discard()
			}
			p.Release()
		})
	}
	switch {
	case op.Reply != nil:
		// Get request: build and transmit the reply before the GET_START
		// event becomes visible — one pass through the handler.
		cycles += d.P.HostTxSetupCycles + d.P.HostGetReplyCycles + d.segCycles(op.Region, op.Off, op.MLen)
		return done(cycles, func() {
			d.send(hdr.DstPid, op.Reply)
			p.Release()
		})
	case p.Complete():
		// Whole payload arrived with the header (≤12 B inline): deposit
		// from the upper pending and finish — one interrupt total.
		cycles += d.P.HostEventCycles
		return done(cycles, func() {
			mlen := op.MLen
			if mlen > len(p.Inline) {
				mlen = len(p.Inline)
			}
			if mlen > 0 {
				op.Region.WriteAt(op.Off, p.Inline[:mlen])
			}
			if ack := lib.Delivered(op, ev.OK); ack != nil {
				d.send(hdr.DstPid, ack)
			}
			p.Release()
		})
	default:
		// Payload follows: answer with the receive command. The host
		// pre-computes per-page DMA commands for paged buffers (§3.3).
		cycles += d.P.HostRxCmdCycles + d.segCycles(op.Region, op.Off, op.MLen)
		return done(cycles, func() {
			pid := hdr.DstPid
			p.SubmitRx(op.Region, op.Off, op.MLen, func(ok bool) {
				if ack := lib.Delivered(op, ok); ack != nil {
					d.send(pid, ack)
				}
			})
		})
	}
}

// segCycles is the per-page DMA pre-computation cost for a buffer range.
func (d *GenericDriver) segCycles(r core.Region, off, n int) int64 {
	if r == nil || n == 0 || r.Segments() <= 1 {
		return 0
	}
	page := int(d.P.PageBytes)
	segs := (off+n-1)/page - off/page + 1
	return int64(segs) * d.P.HostPerPageCycles
}
