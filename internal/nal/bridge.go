// Package nal is the network abstraction layer of the reference Portals
// implementation plus Cray's bridge layer on top of it (paper §3.2): the
// pieces that connect the user-level API to the library and the library to
// the SeaStar firmware (the SSNAL, §3.3).
//
// Three bridges exist, as on the XT3:
//
//   - qkbridge — Catamount compute node applications (a ~75 ns trap per
//     API call into the lightweight kernel);
//   - ukbridge — Linux user-level applications (a full syscall per call);
//   - kbridge — Linux kernel-level clients such as Lustre (direct calls).
//
// A fourth crossing, the accelerated-mode path of §3.3, posts commands from
// user space directly to a dedicated firmware mailbox with no system call
// at all. ukbridge and kbridge clients share one node's generic driver, as
// the paper notes they share the network interface cleanly.
package nal

import (
	"portals3/internal/oskernel"
	"portals3/internal/sim"
)

// Bridge charges the API-to-library crossing cost of one Portals call.
type Bridge interface {
	// Cross blocks the calling process for the crossing cost.
	Cross(p *sim.Proc)
	// Name identifies the bridge in diagnostics.
	Name() string
}

// QKBridge is the Catamount user-to-kernel bridge.
type QKBridge struct{ K *oskernel.Kernel }

// Cross pays one Catamount trap (§3.3: ~75 ns).
func (b QKBridge) Cross(p *sim.Proc) { p.Sleep(b.K.TrapCost()) }

// Name returns "qkbridge".
func (b QKBridge) Name() string { return "qkbridge" }

// UKBridge is the Linux user-to-kernel bridge.
type UKBridge struct{ K *oskernel.Kernel }

// Cross pays one Linux system call.
func (b UKBridge) Cross(p *sim.Proc) { p.Sleep(b.K.TrapCost()) }

// Name returns "ukbridge".
func (b UKBridge) Name() string { return "ukbridge" }

// KBridge is the Linux kernel-level client bridge (Lustre services): the
// client already runs in kernel space, so the crossing is a function call.
type KBridge struct{}

// Cross costs nothing.
func (KBridge) Cross(*sim.Proc) {}

// Name returns "kbridge".
func (KBridge) Name() string { return "kbridge" }

// AccelBridge is the accelerated-mode crossing: commands go straight from
// user space to the process's dedicated firmware mailbox, "without
// performing any system calls" (§3.3).
type AccelBridge struct{}

// Cross costs nothing.
func (AccelBridge) Cross(*sim.Proc) {}

// Name returns "accel".
func (AccelBridge) Name() string { return "accel" }
