package nal

import (
	"portals3/internal/core"
	"portals3/internal/sim"
	"portals3/internal/wire"
)

// RefNAL is the reference network abstraction layer: Portals with no
// SeaStar underneath, the analogue of the reference implementation's
// software NALs (§3.1: implementations existed for "nearly all possible
// permutations of address spaces"). The paper closes §3.2 hoping the
// bridge-style interface abstraction "will allow Portals to become more
// widely used on different platforms" — this NAL is that claim made
// concrete: the identical core.Lib semantics run over a simple
// latency/bandwidth delay network with library processing in the caller's
// address space.
//
// It is also the fastest way to run Portals programs when only semantics
// matter: no firmware, no interrupts, no DMA model.
type RefNAL struct {
	S *sim.Sim
	// Latency is the one-way message latency of the underlying transport.
	Latency sim.Time
	// Bps is the transport bandwidth in bytes/second.
	Bps int64

	libs map[core.ProcessID]*core.Lib
}

// NewRefNAL creates a reference network with the given delay model.
func NewRefNAL(s *sim.Sim, latency sim.Time, bps int64) *RefNAL {
	return &RefNAL{S: s, Latency: latency, Bps: bps, libs: make(map[core.ProcessID]*core.Lib)}
}

// AddProcess creates a Portals library attached to this NAL.
func (n *RefNAL) AddProcess(id core.ProcessID, uid uint32, limits core.Limits) *core.Lib {
	be := &refBackend{nal: n}
	lib := core.NewLib(n.S, id, uid, limits, be)
	be.lib = lib
	n.libs[id] = lib
	return lib
}

// refBackend implements core.Backend over the delay network.
type refBackend struct {
	nal *RefNAL
	lib *core.Lib
}

// Distance reports 1 for every peer: the reference transport has no
// topology.
func (b *refBackend) Distance(uint32) int { return 1 }

// Send delivers after latency + size/bandwidth, performing the remote
// library's matching and data movement at arrival time — the reference
// implementation's single-address-space shortcut.
func (b *refBackend) Send(req *core.SendReq) {
	n := b.nal
	src := b.lib
	delay := n.Latency + sim.BytesAt(int64(req.Len), n.Bps)
	// Capture payload at send time (the reference NAL copies through an
	// intermediate buffer rather than doing zero-copy DMA).
	var payload []byte
	if req.Region != nil && req.Len > 0 {
		payload = make([]byte, req.Len)
		req.Region.ReadAt(req.Off, payload)
	}
	creq := req
	n.S.After(delay, func() {
		dst, ok := n.libs[core.ProcessID{Nid: creq.Hdr.DstNid, Pid: creq.Hdr.DstPid}]
		if !ok {
			return // undeliverable
		}
		switch creq.Hdr.Type {
		case wire.TypePut:
			op := dst.ReceivePut(&creq.Hdr)
			if !op.Drop {
				op.Region.WriteAt(op.Off, payload[:op.MLen])
				if ack := dst.Delivered(op, true); ack != nil {
					(&refBackend{nal: n, lib: dst}).Send(ack)
				}
			}
			src.SendDone(creq, true)
		case wire.TypeGet:
			op := dst.ReceiveGet(&creq.Hdr)
			if !op.Drop {
				(&refBackend{nal: n, lib: dst}).Send(op.Reply)
				dst.ReplySent(op)
			}
		case wire.TypeReply:
			op := dst.ReceiveReply(&creq.Hdr)
			if !op.Drop {
				op.Region.WriteAt(op.Off, payload[:op.MLen])
				dst.Delivered(op, true)
			}
		case wire.TypeAck:
			dst.ReceiveAck(&creq.Hdr)
		}
	})
}
