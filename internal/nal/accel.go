package nal

import (
	"portals3/internal/core"
	"portals3/internal/fw"
	"portals3/internal/model"
	"portals3/internal/sim"
	"portals3/internal/topo"
	"portals3/internal/wire"
)

// AccelDriver is the accelerated-mode implementation of §3.3: the Portals
// library functionality — including matching — runs on the SeaStar's
// PowerPC. Arriving messages are processed immediately instead of waiting
// for the host, commands are posted from user space without system calls,
// and no interrupts are raised anywhere on the data path; completion events
// are written directly into process space and discovered by polling.
//
// The same core.Lib state machine runs here as in the generic driver — the
// paper's shared-library design — but its costs are charged to the 500 MHz
// embedded processor instead of the 2 GHz Opteron.
type AccelDriver struct {
	S    *sim.Sim
	P    *model.Params
	NIC  *fw.NIC
	Topo *topo.Topology
	Pid  uint32

	lib     *core.Lib
	backlog []*fw.TxReq
}

// NewAccel registers an accelerated mailbox for pid (subject to the NIC's
// accelerated-client limit) and builds its NIC-resident library.
func NewAccel(nic *fw.NIC, tp *topo.Topology, p *model.Params, pid, uid uint32,
	limits core.Limits, pendings int) (*AccelDriver, error) {
	d := &AccelDriver{S: nic.S, P: p, NIC: nic, Topo: tp, Pid: pid}
	if _, err := nic.RegisterAccel(pid, pendings, d.fwEvent); err != nil {
		return nil, err
	}
	d.lib = core.NewLib(nic.S, core.ProcessID{Nid: uint32(nic.Node), Pid: pid}, uid, limits, d)
	return d, nil
}

// Lib returns the process's library (lives on the NIC in this mode).
func (d *AccelDriver) Lib() *core.Lib { return d.lib }

// Send implements core.Backend: post the transmit command directly to the
// dedicated firmware mailbox.
func (d *AccelDriver) Send(req *core.SendReq) {
	tx := &fw.TxReq{Pid: d.Pid, Hdr: req.Hdr, Off: req.Off, Len: req.Len}
	if req.Region != nil {
		tx.Buf = req.Region
	}
	creq := req
	switch {
	case req.RxOp != nil:
		tx.Done = func(ok bool) { d.lib.ReplySent(creq.RxOp) }
	case req.Hdr.Type == wire.TypePut:
		tx.Done = func(ok bool) { d.lib.SendDone(creq, ok) }
	}
	if err := d.NIC.SubmitTx(tx); err != nil {
		d.backlog = append(d.backlog, tx)
	}
}

// Distance implements core.Backend.
func (d *AccelDriver) Distance(nid uint32) int {
	return d.Topo.Hops(d.NIC.Node, topo.NodeID(nid))
}

// fwEvent handles firmware events in NIC context. Matching runs here, on
// the PowerPC; Portals completion events become visible to the application
// after one HT write, with no interrupt.
func (d *AccelDriver) fwEvent(ev fw.Event) {
	switch ev.Kind {
	case fw.EvNewHeader:
		d.handleHeader(ev)
	case fw.EvRxDone:
		if done := ev.Pending.Done(); done != nil {
			done(ev.OK)
		}
		ev.Pending.ReleaseLocal()
	case fw.EvTxDone:
		if done := ev.Tx.Done; done != nil {
			d.visible(func() { done(ev.OK) })
		}
		for len(d.backlog) > 0 {
			tx := d.backlog[0]
			if err := d.NIC.SubmitTx(tx); err != nil {
				break
			}
			d.backlog = d.backlog[1:]
		}
	}
}

// handleHeader performs the offloaded Portals matching: charge the match
// walk to the PowerPC, then program the RX DMA engine (or the reply)
// without any host involvement. The library is locked across the match —
// the same serialization the kernel provides in generic mode, here
// mirroring the firmware mailbox ordering that makes user-level commands
// and NIC-side matching mutually exclusive.
func (d *AccelDriver) handleHeader(ev fw.Event) {
	p := ev.Pending
	hdr := p.Hdr
	d.lib.Lock()
	op := d.lib.Receive(&hdr)
	if op == nil { // acknowledgment
		d.lib.Unlock()
		d.visible(func() {})
		p.ReleaseLocal()
		return
	}
	matchCycles := d.P.HostMatchBaseCycles + int64(op.Walked)*d.P.HostMatchPerME
	d.NIC.Chip.Exec(matchCycles, func() {
		defer d.lib.Unlock()
		switch {
		case op.Drop:
			if !p.Complete() {
				p.DiscardLocal()
			}
			p.ReleaseLocal()
		case op.Reply != nil:
			d.Send(op.Reply)
			p.ReleaseLocal()
		case p.Complete():
			mlen := op.MLen
			if mlen > len(p.Inline) {
				mlen = len(p.Inline)
			}
			if mlen > 0 {
				op.Region.WriteAt(op.Off, p.Inline[:mlen])
			}
			d.visible(func() {
				if ack := d.lib.Delivered(op, ev.OK); ack != nil {
					d.Send(ack)
				}
			})
			p.ReleaseLocal()
		default:
			p.ProgramRx(op.Region, op.Off, op.MLen, func(ok bool) {
				d.visible(func() {
					if ack := d.lib.Delivered(op, ok); ack != nil {
						d.Send(ack)
					}
				})
			})
		}
	})
}

// visible defers fn by one HT event write: Portals events the firmware
// generates become observable to the polling application only once they
// land in host memory.
func (d *AccelDriver) visible(fn func()) {
	d.NIC.Chip.WriteHost(32, fn)
}
