// Package trace records simulation activity as a Chrome trace-event file
// (the chrome://tracing / Perfetto JSON format), giving the simulated
// machine the kind of timeline observability the real Red Storm team got
// from their RAS and firmware counters — per-node tracks for interrupts,
// firmware handlers and message lifecycles, on a virtual-time axis.
//
// Tracing is off by default and enabled per machine
// (machine.EnableTracing); components carry an optional *Tracer and emit
// through nil-safe methods, so the disabled path costs one pointer test.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"portals3/internal/sim"
)

// Record is one trace event. Fields map onto the Chrome trace-event
// format: Ph is the phase ("X" complete with duration, "i" instant).
type Record struct {
	Name string
	Cat  string
	Ph   string
	TS   sim.Time // event start
	Dur  sim.Time // for "X" records
	PID  int      // node id (one Chrome "process" per node)
	TID  int      // track within the node
	Args map[string]interface{}
}

// Well-known track ids within a node's group.
const (
	TrackHost   = iota // host CPU: interrupts, driver work
	TrackPPC           // firmware handlers
	TrackWire          // message arrivals/injections
	TrackApp           // application-visible events
	TrackFlight        // flight-recorder events and causal spans (p3dump)
)

// trackNames names the well-known tracks, indexed by track id.
var trackNames = [...]string{"host-cpu", "seastar-ppc", "wire", "app", "flightrec"}

// TrackName returns the display name of a well-known track id ("track N"
// for ids outside the table).
func TrackName(tid int) string {
	if tid >= 0 && tid < len(trackNames) {
		return trackNames[tid]
	}
	return fmt.Sprintf("track %d", tid)
}

// Tracer accumulates records. The zero value is valid and enabled; a nil
// *Tracer is valid and disabled — every method is nil-safe.
type Tracer struct {
	records []Record
}

// New returns an empty tracer.
func New() *Tracer { return &Tracer{} }

// Enabled reports whether events will be recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Instant records a point event.
func (t *Tracer) Instant(node int, track int, cat, name string, ts sim.Time, args map[string]interface{}) {
	if t == nil {
		return
	}
	t.records = append(t.records, Record{
		Name: name, Cat: cat, Ph: "i", TS: ts, PID: node, TID: track, Args: args,
	})
}

// Span records a duration event.
func (t *Tracer) Span(node int, track int, cat, name string, ts, dur sim.Time, args map[string]interface{}) {
	if t == nil {
		return
	}
	t.records = append(t.records, Record{
		Name: name, Cat: cat, Ph: "X", TS: ts, Dur: dur, PID: node, TID: track, Args: args,
	})
}

// Len reports how many records were captured.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.records)
}

// Records returns a copy of the captured records (tests and analyzers).
func (t *Tracer) Records() []Record {
	if t == nil {
		return nil
	}
	return append([]Record(nil), t.records...)
}

// Merged folds per-lane tracers into one canonical timeline: records are
// concatenated in lane order and stable-sorted by (timestamp, node). On a
// sharded machine every node's events execute on exactly one lane, so all
// records sharing a (timestamp, node) pair come from the same input tracer
// and the stable sort preserves their in-lane relative order — which is
// itself shard-invariant (DESIGN.md §11). The merged record sequence, and
// therefore WriteChrome's output, is byte-identical at every shard count.
func Merged(parts ...*Tracer) *Tracer {
	out := &Tracer{}
	for _, p := range parts {
		if p != nil {
			out.records = append(out.records, p.records...)
		}
	}
	sort.SliceStable(out.records, func(i, j int) bool {
		if out.records[i].TS != out.records[j].TS {
			return out.records[i].TS < out.records[j].TS
		}
		return out.records[i].PID < out.records[j].PID
	})
	return out
}

// chromeEvent is the on-disk JSON shape.
type chromeEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat"`
	Ph   string                 `json:"ph"`
	TS   float64                `json:"ts"`            // microseconds
	Dur  float64                `json:"dur,omitempty"` // microseconds
	PID  int                    `json:"pid"`
	TID  int                    `json:"tid"`
	S    string                 `json:"s,omitempty"` // instant scope
	Args map[string]interface{} `json:"args,omitempty"`
}

// WriteChrome emits the trace as a Chrome trace-event JSON array, with
// metadata naming each node's process and tracks.
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]")
		return err
	}
	var out []interface{}
	seen := map[int]bool{}
	for _, r := range t.records {
		if !seen[r.PID] {
			seen[r.PID] = true
			out = append(out, map[string]interface{}{
				"name": "process_name", "ph": "M", "pid": r.PID,
				"args": map[string]string{"name": fmt.Sprintf("node %d", r.PID)},
			})
			// Emit thread names in fixed track order so the output is
			// byte-identical across runs (a map range here would not be).
			for tid, tn := range trackNames {
				out = append(out, map[string]interface{}{
					"name": "thread_name", "ph": "M", "pid": r.PID, "tid": tid,
					"args": map[string]string{"name": tn},
				})
			}
		}
		ev := chromeEvent{
			Name: r.Name, Cat: r.Cat, Ph: r.Ph,
			TS: r.TS.Micros(), Dur: r.Dur.Micros(),
			PID: r.PID, TID: r.TID, Args: r.Args,
		}
		if r.Ph == "i" {
			ev.S = "t"
		}
		out = append(out, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadChrome parses a WriteChrome file back into records, dropping the
// metadata ("M") entries — the inverse used by offline analyzers
// (cmd/p3stat) so a saved timeline can be summarized without re-running
// the simulation. Timestamps survive the microsecond round trip exactly:
// Micros divides the picosecond value by 1e6 and float64 holds any sim
// horizon's microsecond count with sub-picosecond slack.
func ReadChrome(r io.Reader) ([]Record, error) {
	var raw []chromeEvent
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, err
	}
	var out []Record
	for _, ev := range raw {
		if ev.Ph == "M" || ev.Ph == "" {
			continue
		}
		out = append(out, Record{
			Name: ev.Name, Cat: ev.Cat, Ph: ev.Ph,
			TS:  sim.Time(ev.TS * 1e6),
			Dur: sim.Time(ev.Dur * 1e6),
			PID: ev.PID, TID: ev.TID, Args: ev.Args,
		})
	}
	return out, nil
}
