package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"portals3/internal/sim"
)

func TestNilTracerIsSafeAndDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer claims enabled")
	}
	tr.Instant(0, TrackHost, "x", "y", 0, nil) // must not panic
	tr.Span(0, TrackPPC, "x", "y", 0, sim.Microsecond, nil)
	if tr.Len() != 0 || tr.Records() != nil {
		t.Error("nil tracer recorded something")
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "[]" {
		t.Errorf("nil trace file = %q", buf.String())
	}
}

func TestRecordsAndChromeFormat(t *testing.T) {
	tr := New()
	tr.Instant(3, TrackWire, "net", "rx hdr", 5390*sim.Nanosecond, map[string]interface{}{"msg": 1})
	tr.Span(3, TrackPPC, "fw", "rx-header", 6*sim.Microsecond, 600*sim.Nanosecond, nil)
	if tr.Len() != 2 {
		t.Fatalf("len = %d", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	var foundInstant, foundSpan, foundMeta bool
	for _, ev := range out {
		switch ev["ph"] {
		case "i":
			foundInstant = true
			if ev["ts"].(float64) != 5.39 {
				t.Errorf("instant ts = %v, want 5.39 us", ev["ts"])
			}
		case "X":
			foundSpan = true
			if ev["dur"].(float64) != 0.6 {
				t.Errorf("span dur = %v, want 0.6 us", ev["dur"])
			}
		case "M":
			foundMeta = true
		}
	}
	if !foundInstant || !foundSpan || !foundMeta {
		t.Errorf("missing record kinds: i=%v X=%v M=%v", foundInstant, foundSpan, foundMeta)
	}
}

// TestWriteChromeDeterministic pins the exact serialized form: thread-name
// metadata must come out in track order (a map range here once made the
// file differ between runs), and repeated writes must be byte-identical.
func TestWriteChromeDeterministic(t *testing.T) {
	build := func() *Tracer {
		tr := New()
		tr.Span(1, TrackHost, "os", "interrupt", 2*sim.Microsecond, 2*sim.Microsecond, nil)
		tr.Span(0, TrackPPC, "fw", "tx-start", 0, 900*sim.Nanosecond, nil)
		tr.Instant(0, TrackWire, "net", "inject", sim.Microsecond, nil)
		return tr
	}
	var a, b bytes.Buffer
	if err := build().WriteChrome(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("WriteChrome not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
	const want = `[{"args":{"name":"node 1"},"name":"process_name","ph":"M","pid":1},` +
		`{"args":{"name":"host-cpu"},"name":"thread_name","ph":"M","pid":1,"tid":0},` +
		`{"args":{"name":"seastar-ppc"},"name":"thread_name","ph":"M","pid":1,"tid":1},` +
		`{"args":{"name":"wire"},"name":"thread_name","ph":"M","pid":1,"tid":2},` +
		`{"args":{"name":"app"},"name":"thread_name","ph":"M","pid":1,"tid":3},` +
		`{"args":{"name":"flightrec"},"name":"thread_name","ph":"M","pid":1,"tid":4},` +
		`{"name":"interrupt","cat":"os","ph":"X","ts":2,"dur":2,"pid":1,"tid":0},` +
		`{"args":{"name":"node 0"},"name":"process_name","ph":"M","pid":0},` +
		`{"args":{"name":"host-cpu"},"name":"thread_name","ph":"M","pid":0,"tid":0},` +
		`{"args":{"name":"seastar-ppc"},"name":"thread_name","ph":"M","pid":0,"tid":1},` +
		`{"args":{"name":"wire"},"name":"thread_name","ph":"M","pid":0,"tid":2},` +
		`{"args":{"name":"app"},"name":"thread_name","ph":"M","pid":0,"tid":3},` +
		`{"args":{"name":"flightrec"},"name":"thread_name","ph":"M","pid":0,"tid":4},` +
		`{"name":"tx-start","cat":"fw","ph":"X","ts":0,"dur":0.9,"pid":0,"tid":1},` +
		`{"name":"inject","cat":"net","ph":"i","ts":1,"pid":0,"tid":2,"s":"t"}]` + "\n"
	if a.String() != want {
		t.Errorf("golden mismatch:\ngot  %s\nwant %s", a.String(), want)
	}
}

func TestReadChromeRoundTrip(t *testing.T) {
	tr := New()
	tr.Span(2, TrackPPC, "fw", "rx-header", 6*sim.Microsecond, 600*sim.Nanosecond, nil)
	tr.Instant(2, TrackApp, "ev", "put-end", 9*sim.Microsecond, nil)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2 (metadata must be dropped)", len(recs))
	}
	want := tr.Records()
	for i, r := range recs {
		w := want[i]
		if r.Name != w.Name || r.Cat != w.Cat || r.Ph != w.Ph ||
			r.TS != w.TS || r.Dur != w.Dur || r.PID != w.PID || r.TID != w.TID {
			t.Errorf("record %d = %+v, want %+v", i, r, w)
		}
	}
}

func TestTrackName(t *testing.T) {
	for tid, want := range map[int]string{
		TrackHost: "host-cpu", TrackPPC: "seastar-ppc",
		TrackWire: "wire", TrackApp: "app",
		TrackFlight: "flightrec", 9: "track 9",
	} {
		if got := TrackName(tid); got != want {
			t.Errorf("TrackName(%d) = %q, want %q", tid, got, want)
		}
	}
}

func TestRecordsReturnsCopy(t *testing.T) {
	tr := New()
	tr.Instant(0, TrackApp, "a", "b", 0, nil)
	recs := tr.Records()
	recs[0].Name = "mutated"
	if tr.Records()[0].Name != "b" {
		t.Error("Records exposed internal storage")
	}
}
