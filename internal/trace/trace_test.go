package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"portals3/internal/sim"
)

func TestNilTracerIsSafeAndDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer claims enabled")
	}
	tr.Instant(0, TrackHost, "x", "y", 0, nil) // must not panic
	tr.Span(0, TrackPPC, "x", "y", 0, sim.Microsecond, nil)
	if tr.Len() != 0 || tr.Records() != nil {
		t.Error("nil tracer recorded something")
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "[]" {
		t.Errorf("nil trace file = %q", buf.String())
	}
}

func TestRecordsAndChromeFormat(t *testing.T) {
	tr := New()
	tr.Instant(3, TrackWire, "net", "rx hdr", 5390*sim.Nanosecond, map[string]interface{}{"msg": 1})
	tr.Span(3, TrackPPC, "fw", "rx-header", 6*sim.Microsecond, 600*sim.Nanosecond, nil)
	if tr.Len() != 2 {
		t.Fatalf("len = %d", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	var foundInstant, foundSpan, foundMeta bool
	for _, ev := range out {
		switch ev["ph"] {
		case "i":
			foundInstant = true
			if ev["ts"].(float64) != 5.39 {
				t.Errorf("instant ts = %v, want 5.39 us", ev["ts"])
			}
		case "X":
			foundSpan = true
			if ev["dur"].(float64) != 0.6 {
				t.Errorf("span dur = %v, want 0.6 us", ev["dur"])
			}
		case "M":
			foundMeta = true
		}
	}
	if !foundInstant || !foundSpan || !foundMeta {
		t.Errorf("missing record kinds: i=%v X=%v M=%v", foundInstant, foundSpan, foundMeta)
	}
}

func TestRecordsReturnsCopy(t *testing.T) {
	tr := New()
	tr.Instant(0, TrackApp, "a", "b", 0, nil)
	recs := tr.Records()
	recs[0].Name = "mutated"
	if tr.Records()[0].Name != "b" {
		t.Error("Records exposed internal storage")
	}
}
