// Package mpi implements MPI point-to-point messaging over the Portals 3.3
// API, reproducing the two implementations the paper measures (§5.1): the
// Sandia port of MPICH 1.2.6 and Cray's MPICH2. Both share one protocol
// engine — eager puts for short messages, rendezvous
// (request-to-send + get) for long ones — and differ in their per-message
// library overheads and eager thresholds, which is exactly how they differ
// in the paper's figures.
//
// The receive side uses the classic Portals-MPI structure: a fence match
// entry separates the posted-receive section of the match list from a set
// of unexpected-message sink buffers with locally managed offsets. Posted
// receives are armed race-free with the threshold-0 + conditional-MDUpdate
// protocol the Portals 3.3 specification provides for precisely this
// purpose.
package mpi

import (
	"fmt"

	"portals3/internal/core"
	"portals3/internal/model"
	"portals3/internal/nal"
	"portals3/internal/sim"
)

// Impl selects the MPI implementation profile.
type Impl int

// The two MPI implementations measured in the paper.
const (
	// MPICH1 is the Sandia port of MPICH 1.2.6.
	MPICH1 Impl = iota
	// MPICH2 is the Cray-supported MPICH2.
	MPICH2
)

func (i Impl) String() string {
	if i == MPICH1 {
		return "mpich-1.2.6"
	}
	return "mpich2"
}

// Config is an implementation profile.
type Config struct {
	Impl       Impl
	EagerMax   int   // bytes; larger messages use rendezvous
	SendCycles int64 // per-send library overhead (host cycles)
	RecvCycles int64 // per-receive library overhead

	// Receive-side resource sizing. Zero means the package default —
	// the generous interactive-job shape (4 × 512 KiB sinks, 8192-deep
	// EQ). Machine-scale workloads that run a rank on every node of a
	// 1k–10k-node torus shrink these: at the defaults a 1000-rank job
	// pins 2 GiB of sink memory on the host running the simulation.
	NumSinks  int // unexpected-message buffers after the fence
	SinkBytes int // bytes per sink buffer
	EQDepth   int // MPI event queue depth
}

// normalize fills zero-valued resource fields with the package defaults.
func (c Config) normalize() Config {
	if c.NumSinks <= 0 {
		c.NumSinks = numSinks
	}
	if c.SinkBytes <= 0 {
		c.SinkBytes = sinkBytes
	}
	if c.EQDepth <= 0 {
		c.EQDepth = eqDepth
	}
	return c
}

// ConfigFor derives the profile from the machine parameters.
func ConfigFor(p *model.Params, impl Impl) Config {
	if impl == MPICH1 {
		return Config{Impl: impl, EagerMax: p.MPICH1EagerMax,
			SendCycles: p.MPICH1SendCycles, RecvCycles: p.MPICH1RecvCycles}
	}
	return Config{Impl: impl, EagerMax: p.MPICH2EagerMax,
		SendCycles: p.MPICH2SendCycles, RecvCycles: p.MPICH2RecvCycles}
}

// Portal table indices used by the MPI layer.
const (
	ptlMPI = 1 // receives (posted section + fence + sinks)
	ptlRdv = 2 // rendezvous source buffers, fetched by PtlGet
)

// Wildcards.
const (
	AnySource = -1
	AnyTag    = -1
)

// Envelope encoding in Portals match bits:
// [63:48] context id, [47:32] source rank, [31:0] tag.
const (
	srcShift  = 32
	ctxShift  = 48
	tagMask   = 0xFFFFFFFF
	srcIgnore = uint64(0xFFFF) << srcShift
	tagIgnore = uint64(tagMask)
)

func envBits(ctx, srcRank, tag int) uint64 {
	return uint64(ctx)<<ctxShift | uint64(uint16(srcRank))<<srcShift | uint64(uint32(tag))
}

func envDecode(bits uint64) (ctx, srcRank, tag int) {
	return int(bits >> ctxShift), int(uint16(bits >> srcShift)), int(uint32(bits))
}

// Protocol encoding in the put header data (the 64-bit hdr_data of the
// wire header): [63:60] protocol, [59:32] rendezvous sequence, [31:0]
// payload length. The length rides here because a locally-managed target
// offset means the wire offset field is not delivered to the receiver.
const (
	protoEager = 1
	protoRTS   = 2
)

func hdrData(proto int, rdvSeq uint64, length int) uint64 {
	return uint64(proto)<<60 | (rdvSeq&(1<<28-1))<<32 | uint64(uint32(length))
}

func hdrDecode(hd uint64) (proto int, rdvSeq uint64, length int) {
	return int(hd >> 60), hd >> 32 & (1<<28 - 1), int(uint32(hd))
}

// Sink pool shape: how unexpected eager messages are absorbed. These are
// the Config defaults; machine-scale jobs override them per rank.
const (
	numSinks  = 4
	sinkBytes = 512 << 10
	eqDepth   = 8192
	// memcpyBytesPerCycle models host memcpy throughput for the
	// unexpected-path copy (16 B/cycle ≈ 32 GB/s at 2 GHz).
	memcpyBytesPerCycle = 16
	// barrierTag is a tag value reserved for Barrier traffic.
	barrierTag = 0x7FFF0001
)

// Rank is one MPI process.
type Rank struct {
	api   *nal.API
	proc  *sim.Proc
	alloc func(int) core.Region
	p     *model.Params
	cfg   Config

	rank  int
	size  int
	ctx   int
	peers []core.ProcessID

	eq    core.EQHandle
	fence core.MEHandle

	unexpected []*unexpMsg
	// reqFree recycles Requests whose lifetime the blocking wrappers fully
	// own (Send/Recv/Sendrecv); Isend/Irecv handles returned to callers are
	// never pooled.
	reqFree []*Request
	// sinkInflight counts messages that have started arriving into sinks
	// (PUT_START seen) but not yet completed (PUT_END pending); the arming
	// protocol refuses to arm a posted receive while any are outstanding,
	// because one of them might match it.
	sinkInflight int
	rdvSeq       uint64

	// Stats for tests.
	EagerSends  uint64
	RdvSends    uint64
	Unexpected  uint64
	SinkRespawn uint64
}

// unexpMsg is one message that arrived before its receive was posted.
type unexpMsg struct {
	ctx, src, tag int
	proto         int
	rdvSeq        uint64
	sender        core.ProcessID
	data          []byte // eager payload, copied out of the sink
	rlen          int    // full requested length (rendezvous: data to get)
	nifail        bool
}

// reqTag links a descriptor's events back to its request.
type reqTag struct{ req *Request }

// NewRank initializes the MPI library for one process. rank and peers come
// from the launcher; ctx is the communicator context id (one communicator
// in this implementation — COMM_WORLD).
func NewRank(api *nal.API, proc *sim.Proc, alloc func(int) core.Region,
	p *model.Params, cfg Config, rank int, peers []core.ProcessID) (*Rank, error) {
	r := &Rank{
		api: api, proc: proc, alloc: alloc, p: p, cfg: cfg.normalize(),
		rank: rank, size: len(peers), ctx: 1, peers: peers,
	}
	eq, err := api.EQAlloc(r.cfg.EQDepth)
	if err != nil {
		return nil, err
	}
	r.eq = eq
	// The fence: a match entry that can never match (no sender has this
	// process id), separating posted receives from the sinks forever.
	fence, err := api.MEAttach(ptlMPI, core.ProcessID{Nid: 0xFFFFFFFE, Pid: 0xFFFFFFFE}, 0, 0, core.Retain, core.After)
	if err != nil {
		return nil, err
	}
	r.fence = fence
	for i := 0; i < r.cfg.NumSinks; i++ {
		if err := r.addSink(); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Rank returns this process's rank.
func (r *Rank) Rank() int { return r.rank }

// Size returns the communicator size.
func (r *Rank) Size() int { return r.size }

// Proc exposes the owning coroutine (benchmarks read the clock off it).
func (r *Rank) Proc() *sim.Proc { return r.proc }

// Alloc obtains DMA-able memory from the node's OS.
func (r *Rank) Alloc(n int) core.Region { return r.alloc(n) }

// Config returns the active implementation profile.
func (r *Rank) Config() Config { return r.cfg }

// addSink appends one unexpected-message buffer after the fence.
func (r *Rank) addSink() error {
	me, err := r.api.MEAttach(ptlMPI, core.ProcessID{Nid: core.NidAny, Pid: core.PidAny},
		0, ^uint64(0), core.UnlinkAuto, core.After)
	if err != nil {
		return err
	}
	buf := r.alloc(r.cfg.SinkBytes)
	// START events stay enabled on sinks: the moment a message begins
	// arriving into overflow space the event queue goes non-empty, which
	// is what lets the conditional-MDUpdate arming protocol detect a
	// message racing with a receive posting.
	_, err = r.api.MDAttach(me, core.MDesc{
		Region:    buf,
		Threshold: core.ThresholdInfinite,
		MaxSize:   r.cfg.EagerMax,
		Options:   core.MDOpPut | core.MDMaxSize,
		EQ:        r.eq,
		User:      &sinkEntry{r: r, buf: buf},
	}, core.UnlinkAuto)
	return err
}

type sinkEntry struct {
	r   *Rank
	buf core.Region
}

// fatal aborts the job — MPI semantics for unrecoverable library errors.
func (r *Rank) fatal(format string, args ...interface{}) {
	panic("mpi: rank " + fmt.Sprintf("%d: ", r.rank) + fmt.Sprintf(format, args...))
}

// charge burns MPI library cycles on the host.
func (r *Rank) charge(cycles int64) { r.proc.Sleep(r.p.HostCycles(cycles)) }
