package mpi

import (
	"encoding/binary"

	"portals3/internal/core"
)

// Collective operations over the point-to-point engine. The paper's MPI
// implementations shipped the full MPICH collective stacks; this file
// provides the subset scientific kernels lean on — broadcast, reduce,
// allreduce, gather — using the classic binomial-tree algorithms MPICH
// used at these scales, so collective cost grows as O(log P) messages on
// the latency-bound small sizes the trees are chosen for.

// Reserved tags for collective traffic (above any sane application tag).
const (
	bcastTag  = 0x7FFF0002
	reduceTag = 0x7FFF0003
	gatherTag = 0x7FFF0004
)

// vrank maps a rank into the tree rooted at root.
func vrank(rank, root, size int) int { return (rank - root + size) % size }

// rrank maps back.
func rrank(v, root, size int) int { return (v + root) % size }

// Bcast distributes buf[off:off+n] from root to every rank via a binomial
// tree: receive from the parent, then forward to each subtree child.
func (r *Rank) Bcast(root int, buf core.Region, off, n int) {
	v := vrank(r.rank, root, r.size)
	// Receive from the parent: our virtual rank with its lowest set bit
	// cleared. Scan mask bits low to high until that bit is found.
	mask := 1
	for mask < r.size {
		if v&mask != 0 {
			parent := rrank(v&^mask, root, r.size)
			r.Recv(parent, bcastTag, buf, off, n)
			break
		}
		mask <<= 1
	}
	// Forward to children: all set bits above our lowest set bit.
	mask >>= 1
	for mask > 0 {
		child := v | mask
		if child < r.size && child != v {
			r.Send(rrank(child, root, r.size), bcastTag, buf, off, n)
		}
		mask >>= 1
	}
}

// ReduceOp combines two equal-length operand slices into dst.
type ReduceOp func(dst, src []byte)

// SumUint64 is elementwise addition of little-endian uint64 vectors, the
// workhorse reduction of iterative solvers.
func SumUint64(dst, src []byte) {
	for i := 0; i+8 <= len(dst) && i+8 <= len(src); i += 8 {
		v := binary.LittleEndian.Uint64(dst[i:]) + binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], v)
	}
}

// MaxUint64 is elementwise maximum.
func MaxUint64(dst, src []byte) {
	for i := 0; i+8 <= len(dst) && i+8 <= len(src); i += 8 {
		a := binary.LittleEndian.Uint64(dst[i:])
		b := binary.LittleEndian.Uint64(src[i:])
		if b > a {
			binary.LittleEndian.PutUint64(dst[i:], b)
		}
	}
}

// Reduce combines every rank's buf[off:off+n] with op; the result lands in
// root's buffer (other ranks' buffers hold partial results afterwards,
// like MPI_Reduce's undefined non-root buffers). Binomial tree: each node
// absorbs its children before reporting to its parent.
func (r *Rank) Reduce(root int, op ReduceOp, buf core.Region, off, n int) {
	v := vrank(r.rank, root, r.size)
	scratch := r.alloc(n)
	local := make([]byte, n)
	incoming := make([]byte, n)
	mask := 1
	for mask < r.size {
		if v&mask != 0 {
			parent := rrank(v&^mask, root, r.size)
			r.Send(parent, reduceTag, buf, off, n)
			return
		}
		child := v | mask
		if child < r.size {
			r.Recv(rrank(child, root, r.size), reduceTag, scratch, 0, n)
			buf.ReadAt(off, local)
			scratch.ReadAt(0, incoming)
			op(local, incoming)
			buf.WriteAt(off, local)
		}
		mask <<= 1
	}
}

// Allreduce is Reduce to rank 0 followed by Bcast — the rendezvous-free
// composition MPICH used at small scale.
func (r *Rank) Allreduce(op ReduceOp, buf core.Region, off, n int) {
	r.Reduce(0, op, buf, off, n)
	r.Bcast(0, buf, off, n)
}

// Gather collects each rank's buf[off:off+n] into root's dst at rank*n.
// Linear algorithm: adequate for the configuration-exchange patterns it
// serves here.
func (r *Rank) Gather(root int, buf core.Region, off, n int, dst core.Region) {
	if r.rank == root {
		chunk := make([]byte, n)
		buf.ReadAt(off, chunk)
		dst.WriteAt(root*n, chunk)
		scratch := r.alloc(n)
		for i := 0; i < r.size-1; i++ {
			req := r.Irecv(AnySource, gatherTag, scratch, 0, n)
			req.Wait()
			scratch.ReadAt(0, chunk)
			dst.WriteAt(req.Source*n, chunk)
		}
		return
	}
	r.Send(root, gatherTag, buf, off, n)
}

// Scatter distributes root's src (rank i's slice at i*n) into each rank's
// buf[off:off+n]. Linear, like Gather.
func (r *Rank) Scatter(root int, src core.Region, buf core.Region, off, n int) {
	if r.rank == root {
		chunk := make([]byte, n)
		for i := 0; i < r.size; i++ {
			if i == root {
				src.ReadAt(root*n, chunk)
				buf.WriteAt(off, chunk)
				continue
			}
			r.Send(i, gatherTag, src, i*n, n)
		}
		return
	}
	r.Recv(root, gatherTag, buf, off, n)
}
