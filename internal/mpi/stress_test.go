package mpi

import (
	"testing"

	"portals3/internal/machine"
	"portals3/internal/model"
	"portals3/internal/oskernel"
	"portals3/internal/sim"
	"portals3/internal/topo"
)

func TestIsendIrecvOutOfOrderTags(t *testing.T) {
	// Post receives for tags 3,2,1 (in that order), send tags 1,2,3: MPI
	// matching is by envelope, not posting order across different tags.
	const n = 256
	runJob(t, MPICH1, func(r *Rank) {
		if r.Rank() == 0 {
			for tag := 1; tag <= 3; tag++ {
				buf := r.Alloc(n)
				fill(buf, n, byte(tag*20))
				r.Send(1, tag, buf, 0, n)
			}
		} else {
			var reqs []*Request
			var bufs []interface {
				ReadAt(int, []byte)
			}
			for tag := 3; tag >= 1; tag-- {
				buf := r.Alloc(n)
				bufs = append(bufs, buf)
				reqs = append(reqs, r.Irecv(0, tag, buf, 0, n))
			}
			for i, rq := range reqs {
				rq.Wait()
				tag := 3 - i
				got := make([]byte, n)
				bufs[i].ReadAt(0, got)
				for j := range got {
					if got[j] != byte(tag*20)+byte(j*7) {
						t.Fatalf("tag %d byte %d = %#x", tag, j, got[j])
					}
				}
			}
		}
	})
}

func TestManyOutstandingIrecvsSameTag(t *testing.T) {
	// 16 pre-posted receives with one signature drain a burst in order.
	const msgs, n = 16, 512
	runJob(t, MPICH2, func(r *Rank) {
		if r.Rank() == 0 {
			buf := r.Alloc(n)
			for i := 0; i < msgs; i++ {
				fill(buf, n, byte(i))
				r.Send(1, 5, buf, 0, n)
			}
		} else {
			var reqs []*Request
			var bufs []interface{ ReadAt(int, []byte) }
			for i := 0; i < msgs; i++ {
				buf := r.Alloc(n)
				bufs = append(bufs, buf)
				reqs = append(reqs, r.Irecv(0, 5, buf, 0, n))
			}
			for i, rq := range reqs {
				rq.Wait()
				got := make([]byte, n)
				bufs[i].ReadAt(0, got)
				if got[0] != byte(i) {
					t.Fatalf("posted receive %d got message %d: non-overtaking violated", i, got[0])
				}
			}
		}
	})
}

func TestRendezvousFromPagedLinuxBuffers(t *testing.T) {
	// Linux nodes: the rendezvous get pulls from a paged (multi-segment)
	// buffer into a paged buffer — the per-page DMA command path of §3.3.
	p := model.Defaults()
	tp, _ := topo.New(2, 1, 1, false, false, false)
	m := machine.New(p, tp)
	m.OSKind = func(topo.NodeID) oskernel.Kind { return oskernel.Linux }
	const n = 512 << 10
	err := Launch(m, []topo.NodeID{0, 1}, MPICH2, machine.Generic, func(r *Rank) {
		if r.Rank() == 0 {
			buf := r.Alloc(n)
			if buf.Segments() < 2 {
				t.Error("Linux buffer should be paged")
			}
			fill(buf, n, 21)
			r.Send(1, 9, buf, 0, n)
			if r.RdvSends != 1 {
				t.Errorf("expected rendezvous, got eager=%d rdv=%d", r.EagerSends, r.RdvSends)
			}
		} else {
			buf := r.Alloc(n)
			if got := r.Recv(0, 9, buf, 0, n); got != n {
				t.Fatalf("got %d", got)
			}
			check(t, buf, n, 21)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
}

func TestMPIOverAcceleratedMode(t *testing.T) {
	// The full MPI stack on the offloaded path: matching on the NIC, no
	// data-path interrupts. Exercises eager, rendezvous, unexpected
	// messages and the race-free posting protocol under the accelerated
	// driver's locking.
	m := machine.NewPair(model.Defaults())
	const small, big = 1024, 256 << 10
	err := Launch(m, []topo.NodeID{0, 1}, MPICH1, machine.Accelerated, func(r *Rank) {
		if r.Rank() == 0 {
			buf := r.Alloc(big)
			fill(buf, small, 3)
			r.Send(1, 1, buf, 0, small) // eager, lands unexpected
			fill(buf, big, 9)
			r.Send(1, 2, buf, 0, big) // rendezvous
			ack := r.Alloc(8)
			r.Recv(1, 3, ack, 0, 8)
		} else {
			r.Proc().Sleep(100 * sim.Microsecond) // force the unexpected path
			buf := r.Alloc(big)
			if got := r.Recv(0, 1, buf, 0, small); got != small {
				t.Errorf("eager got %d", got)
			}
			check(t, buf, small, 3)
			if got := r.Recv(0, 2, buf, 0, big); got != big {
				t.Errorf("rdv got %d", got)
			}
			check(t, buf, big, 9)
			r.Send(0, 3, buf, 0, 8)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	if irq := m.Node(0).Kernel.Interrupts + m.Node(1).Kernel.Interrupts; irq != 0 {
		t.Errorf("accelerated MPI took %d interrupts, want 0", irq)
	}
}

func TestBidirectionalSaturation(t *testing.T) {
	// Simultaneous large sends in both directions complete without
	// deadlock and in about the one-direction time (full duplex).
	const n = 2 << 20
	var done [2]sim.Time
	runJob(t, MPICH2, func(r *Rank) {
		other := 1 - r.Rank()
		out := r.Alloc(n)
		in := r.Alloc(n)
		r.Barrier()
		start := r.Proc().Now()
		rq := r.Irecv(other, 1, in, 0, n)
		sq := r.Isend(other, 1, out, 0, n)
		sq.Wait()
		rq.Wait()
		done[r.Rank()] = r.Proc().Now() - start
	})
	solo := sim.BytesAt(n, model.Defaults().HTReadBps)
	for rank, d := range done {
		if d > solo+solo/4 {
			t.Errorf("rank %d bidirectional exchange took %v, solo transfer is %v: not full duplex", rank, d, solo)
		}
	}
}
