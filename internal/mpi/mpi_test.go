package mpi

import (
	"testing"

	"portals3/internal/core"
	"portals3/internal/machine"
	"portals3/internal/model"
	"portals3/internal/sim"
	"portals3/internal/topo"
)

// runJob launches a two-rank job and runs the simulation to completion.
func runJob(t *testing.T, impl Impl, main func(r *Rank)) *machine.Machine {
	t.Helper()
	m := machine.NewPair(model.Defaults())
	if err := Launch(m, []topo.NodeID{0, 1}, impl, machine.Generic, main); err != nil {
		t.Fatal(err)
	}
	m.Run()
	return m
}

// fill writes a recognizable pattern.
func fill(r core.Region, n int, seed byte) {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i*7)
	}
	r.WriteAt(0, b)
}

func check(t *testing.T, r core.Region, n int, seed byte) {
	t.Helper()
	b := make([]byte, n)
	r.ReadAt(0, b)
	for i := range b {
		if b[i] != seed+byte(i*7) {
			t.Fatalf("byte %d = %#x, want %#x", i, b[i], seed+byte(i*7))
		}
	}
}

func TestEagerSendRecv(t *testing.T) {
	const n = 1024
	runJob(t, MPICH1, func(r *Rank) {
		if r.Rank() == 0 {
			buf := r.Alloc(n)
			fill(buf, n, 3)
			r.Send(1, 42, buf, 0, n)
		} else {
			buf := r.Alloc(n)
			got := r.Recv(0, 42, buf, 0, n)
			if got != n {
				t.Errorf("received %d bytes, want %d", got, n)
			}
			check(t, buf, n, 3)
			if r.EagerSends != 0 { // receiver sent nothing
				t.Errorf("receiver eager sends = %d", r.EagerSends)
			}
		}
	})
}

func TestRendezvousLargeMessage(t *testing.T) {
	const n = 1 << 20 // above both eager thresholds
	runJob(t, MPICH2, func(r *Rank) {
		if r.Rank() == 0 {
			buf := r.Alloc(n)
			fill(buf, n, 9)
			r.Send(1, 7, buf, 0, n)
			if r.RdvSends != 1 {
				t.Errorf("rdv sends = %d, want 1", r.RdvSends)
			}
		} else {
			buf := r.Alloc(n)
			got := r.Recv(0, 7, buf, 0, n)
			if got != n {
				t.Errorf("received %d, want %d", got, n)
			}
			check(t, buf, n, 9)
		}
	})
}

func TestEagerThresholdDiffersByImpl(t *testing.T) {
	p := model.Defaults()
	c1, c2 := ConfigFor(&p, MPICH1), ConfigFor(&p, MPICH2)
	if c1.EagerMax == c2.EagerMax {
		t.Error("the two implementations should switch protocols at different sizes")
	}
	size := (c1.EagerMax + c2.EagerMax) / 2 // eager for one, rendezvous for the other
	for _, impl := range []Impl{MPICH1, MPICH2} {
		impl := impl
		runJob(t, impl, func(r *Rank) {
			if r.Rank() == 0 {
				buf := r.Alloc(size)
				fill(buf, size, 1)
				r.Send(1, 1, buf, 0, size)
				wantEager := uint64(0)
				if size <= r.Config().EagerMax {
					wantEager = 1
				}
				if r.EagerSends != wantEager {
					t.Errorf("%v: eager=%d rdv=%d for %d bytes", impl, r.EagerSends, r.RdvSends, size)
				}
			} else {
				buf := r.Alloc(size)
				r.Recv(0, 1, buf, 0, size)
				check(t, buf, size, 1)
			}
		})
	}
}

func TestUnexpectedEagerMessage(t *testing.T) {
	const n = 512
	runJob(t, MPICH1, func(r *Rank) {
		if r.Rank() == 0 {
			buf := r.Alloc(n)
			fill(buf, n, 5)
			r.Send(1, 99, buf, 0, n)
		} else {
			// Post long after the message arrived.
			r.Proc().Sleep(500 * sim.Microsecond)
			buf := r.Alloc(n)
			got := r.Recv(0, 99, buf, 0, n)
			if got != n {
				t.Errorf("got %d", got)
			}
			check(t, buf, n, 5)
			if r.Unexpected == 0 {
				t.Error("message should have landed in a sink")
			}
		}
	})
}

func TestUnexpectedRendezvous(t *testing.T) {
	const n = 256 << 10
	runJob(t, MPICH2, func(r *Rank) {
		if r.Rank() == 0 {
			buf := r.Alloc(n)
			fill(buf, n, 8)
			r.Send(1, 5, buf, 0, n)
		} else {
			r.Proc().Sleep(500 * sim.Microsecond)
			buf := r.Alloc(n)
			if got := r.Recv(0, 5, buf, 0, n); got != n {
				t.Errorf("got %d", got)
			}
			check(t, buf, n, 8)
			if r.Unexpected == 0 {
				t.Error("RTS should have landed in a sink")
			}
		}
	})
}

func TestAnySourceAnyTagResolution(t *testing.T) {
	runJob(t, MPICH1, func(r *Rank) {
		if r.Rank() == 0 {
			buf := r.Alloc(64)
			r.Send(1, 1234, buf, 0, 64)
		} else {
			buf := r.Alloc(64)
			req := r.Irecv(AnySource, AnyTag, buf, 0, 64)
			req.Wait()
			if req.Source != 0 || req.Tag != 1234 {
				t.Errorf("resolved src=%d tag=%d", req.Source, req.Tag)
			}
		}
	})
}

func TestMessageOrderingSameSignature(t *testing.T) {
	const msgs = 20
	runJob(t, MPICH1, func(r *Rank) {
		if r.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				buf := r.Alloc(16)
				fill(buf, 16, byte(i))
				r.Send(1, 7, buf, 0, 16)
			}
		} else {
			// Let several arrive unexpected, then drain in order.
			r.Proc().Sleep(200 * sim.Microsecond)
			for i := 0; i < msgs; i++ {
				buf := r.Alloc(16)
				r.Recv(0, 7, buf, 0, 16)
				check(t, buf, 16, byte(i))
			}
		}
	})
}

func TestSendrecvExchange(t *testing.T) {
	const n = 4096
	runJob(t, MPICH2, func(r *Rank) {
		me, other := r.Rank(), 1-r.Rank()
		out := r.Alloc(n)
		in := r.Alloc(n)
		fill(out, n, byte(10+me))
		got := r.Sendrecv(other, 3, out, 0, n, other, 3, in, 0, n)
		if got != n {
			t.Errorf("rank %d got %d", me, got)
		}
		check(t, in, n, byte(10+other))
	})
}

func TestTruncatedReceive(t *testing.T) {
	runJob(t, MPICH1, func(r *Rank) {
		if r.Rank() == 0 {
			buf := r.Alloc(1000)
			r.Send(1, 2, buf, 0, 1000)
		} else {
			buf := r.Alloc(100)
			if got := r.Recv(0, 2, buf, 0, 100); got != 100 {
				t.Errorf("truncated recv returned %d, want 100", got)
			}
		}
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	p := model.Defaults()
	tp, err := topo.New(4, 1, 1, false, false, false)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(p, tp)
	before := make([]sim.Time, 4)
	after := make([]sim.Time, 4)
	err = Launch(m, []topo.NodeID{0, 1, 2, 3}, MPICH1, machine.Generic, func(r *Rank) {
		// Stagger arrivals.
		r.Proc().Sleep(sim.Time(r.Rank()) * 100 * sim.Microsecond)
		before[r.Rank()] = r.Proc().Now()
		r.Barrier()
		after[r.Rank()] = r.Proc().Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	var latest sim.Time
	for _, b := range before {
		if b > latest {
			latest = b
		}
	}
	for rank, a := range after {
		if a < latest {
			t.Errorf("rank %d left the barrier at %v before rank 3 arrived at %v", rank, a, latest)
		}
	}
}

func TestSinkRespawnUnderUnexpectedFlood(t *testing.T) {
	// Enough unexpected eager traffic to unlink sinks (MaxSize rule) and
	// force respawns once the receiver drains. Kept within the total sink
	// capacity (numSinks × sinkBytes): an application that does no MPI
	// progress cannot respawn sinks, so exceeding the capacity drops
	// messages — the classic Portals-MPI unexpected-flood hazard, which
	// the real implementations also sized around.
	const msgs = 24
	const n = 60 << 10 // below eager max, large enough to chew sink space
	runJob(t, MPICH1, func(r *Rank) {
		if r.Rank() == 0 {
			buf := r.Alloc(n)
			for i := 0; i < msgs; i++ {
				r.Send(1, 4, buf, 0, n)
			}
		} else {
			r.Proc().Sleep(20 * sim.Millisecond) // all arrive unexpected
			buf := r.Alloc(n)
			for i := 0; i < msgs; i++ {
				if got := r.Recv(0, 4, buf, 0, n); got != n {
					t.Fatalf("msg %d: got %d", i, got)
				}
			}
			if r.SinkRespawn == 0 {
				t.Error("40×60KB of unexpected data never recycled a 512KB sink")
			}
		}
	})
}

// mpiLatency measures a single ping-pong RTT/2 at the MPI level.
func mpiLatency(t *testing.T, impl Impl, n int) sim.Time {
	t.Helper()
	m := machine.NewPair(model.Defaults())
	var lat sim.Time
	err := Launch(m, []topo.NodeID{0, 1}, impl, machine.Generic, func(r *Rank) {
		buf := r.Alloc(maxInt(n, 1))
		r.Barrier()
		if r.Rank() == 0 {
			start := r.Proc().Now()
			r.Send(1, 1, buf, 0, n)
			r.Recv(1, 2, buf, 0, n)
			lat = (r.Proc().Now() - start) / 2
		} else {
			r.Recv(0, 1, buf, 0, n)
			r.Send(0, 2, buf, 0, n)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	return lat
}

func TestMPIOverheadOrdering(t *testing.T) {
	m1 := mpiLatency(t, MPICH1, 1)
	m2 := mpiLatency(t, MPICH2, 1)
	if m1 >= m2 {
		t.Errorf("MPICH1 (%v) should beat MPICH2 (%v) at 1 byte (paper §6: 7.97 vs 8.40 µs)", m1, m2)
	}
	// Both sit within the paper's ballpark.
	if m1 < 6*sim.Microsecond || m2 > 12*sim.Microsecond {
		t.Errorf("MPI latencies out of range: %v / %v", m1, m2)
	}
}
