package mpi

import (
	"fmt"

	"portals3/internal/core"
	"portals3/internal/machine"
	"portals3/internal/sim"
	"portals3/internal/topo"
)

// Launch spawns an MPI job: one rank per listed node, running main. It
// mirrors yod/mpirun on the real machine — the job launcher distributes the
// rank-to-node map and synchronizes startup before user code runs.
func Launch(m *machine.Machine, nodes []topo.NodeID, impl Impl, mode machine.Mode, main func(r *Rank)) error {
	peers := make([]core.ProcessID, len(nodes))
	bar := &launchBarrier{need: len(nodes), sig: sim.NewSignal(m.S)}
	for i, node := range nodes {
		i := i
		app, err := m.Spawn(node, fmt.Sprintf("rank%d", i), mode, func(app *machine.App) {
			r, err := NewRank(app.API, app.Proc, app.Alloc, &m.P, ConfigFor(&m.P, impl), i, peers)
			if err != nil {
				panic(fmt.Sprintf("mpi: rank %d init: %v", i, err))
			}
			bar.wait(app.Proc)
			main(r)
		})
		if err != nil {
			return err
		}
		peers[i] = app.ID()
	}
	return nil
}

// launchBarrier is the out-of-band job-launch synchronization: every rank
// must have its sinks posted before any rank may send. (The real launcher
// does this over the RAS network, outside the Portals data path.)
type launchBarrier struct {
	need int
	have int
	sig  *sim.Signal
}

func (b *launchBarrier) wait(p *sim.Proc) {
	b.have++
	if b.have == b.need {
		b.sig.Raise()
		return
	}
	b.sig.Wait(p)
}
