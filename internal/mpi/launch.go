package mpi

import (
	"fmt"

	"portals3/internal/core"
	"portals3/internal/machine"
	"portals3/internal/sim"
	"portals3/internal/topo"
)

// DefaultStart is the virtual-time start barrier LaunchAt uses on behalf
// of Launch: rank initialization runs at t=0 in parallel across nodes and
// takes well under this regardless of job size, so every rank's library is
// armed before any rank's main begins.
const DefaultStart = 500 * sim.Microsecond

// Launch spawns an MPI job: one rank per listed node, running main. It
// mirrors yod/mpirun on the real machine — the job launcher distributes the
// rank-to-node map and synchronizes startup before user code runs.
//
// On a classic machine startup uses an out-of-band signal barrier. On a
// sharded machine the barrier's shared counter would be touched from every
// lane at once, so Launch delegates to LaunchAt's virtual-time barrier
// instead — same guarantee (no rank sends before every rank's sinks are
// posted), no cross-lane state.
func Launch(m *machine.Machine, nodes []topo.NodeID, impl Impl, mode machine.Mode, main func(r *Rank)) error {
	if m.Sharded() {
		return LaunchAt(m, nodes, ConfigFor(&m.P, impl), mode, DefaultStart, main)
	}
	peers := make([]core.ProcessID, len(nodes))
	bar := &launchBarrier{need: len(nodes), sig: sim.NewSignal(m.S)}
	for i, node := range nodes {
		i := i
		app, err := m.Spawn(node, fmt.Sprintf("rank%d", i), mode, func(app *machine.App) {
			r, err := NewRank(app.API, app.Proc, app.Alloc, &m.P, ConfigFor(&m.P, impl), i, peers)
			if err != nil {
				panic(fmt.Sprintf("mpi: rank %d init: %v", i, err))
			}
			bar.wait(app.Proc)
			main(r)
		})
		if err != nil {
			return err
		}
		peers[i] = app.ID()
	}
	return nil
}

// LaunchAt spawns an MPI job with an explicit profile and a virtual-time
// start barrier: each rank initializes its library at t=0 on its own node,
// sleeps to start, and runs main from exactly that instant. The barrier
// needs no shared state — each rank consults only its own clock — so it is
// safe on sharded machines where every rank lives on its node's lane, and
// it is the launch path for machine-scale jobs that also need to shrink
// the per-rank resource profile (Config.NumSinks/SinkBytes/EQDepth). A
// rank whose initialization overruns start panics: the barrier would
// otherwise silently reorder startup against ranks already sending.
func LaunchAt(m *machine.Machine, nodes []topo.NodeID, cfg Config, mode machine.Mode, start sim.Time, main func(r *Rank)) error {
	peers := make([]core.ProcessID, len(nodes))
	for i, node := range nodes {
		i := i
		app, err := m.Spawn(node, fmt.Sprintf("rank%d", i), mode, func(app *machine.App) {
			r, err := NewRank(app.API, app.Proc, app.Alloc, &m.P, cfg, i, peers)
			if err != nil {
				panic(fmt.Sprintf("mpi: rank %d init: %v", i, err))
			}
			if now := app.Proc.Now(); now > start {
				panic(fmt.Sprintf("mpi: rank %d init overran the start barrier (%v > %v)", i, now, start))
			} else {
				app.Proc.Sleep(start - now)
			}
			main(r)
		})
		if err != nil {
			return err
		}
		peers[i] = app.ID()
	}
	return nil
}

// launchBarrier is the out-of-band job-launch synchronization: every rank
// must have its sinks posted before any rank may send. (The real launcher
// does this over the RAS network, outside the Portals data path.)
type launchBarrier struct {
	need int
	have int
	sig  *sim.Signal
}

func (b *launchBarrier) wait(p *sim.Proc) {
	b.have++
	if b.have == b.need {
		b.sig.Raise()
		return
	}
	b.sig.Wait(p)
}
