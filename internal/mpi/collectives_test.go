package mpi

import (
	"encoding/binary"
	"testing"

	"portals3/internal/core"
	"portals3/internal/machine"
	"portals3/internal/model"
	"portals3/internal/sim"
	"portals3/internal/topo"
)

// launchN runs an MPI job over n nodes in a line.
func launchN(t *testing.T, n int, main func(r *Rank)) {
	t.Helper()
	tp, err := topo.New(n, 1, 1, false, false, false)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(model.Defaults(), tp)
	nodes := make([]topo.NodeID, n)
	for i := range nodes {
		nodes[i] = topo.NodeID(i)
	}
	if err := Launch(m, nodes, MPICH1, machine.Generic, main); err != nil {
		t.Fatal(err)
	}
	m.Run()
}

func putU64s(r core.Region, vals ...uint64) {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], v)
	}
	r.WriteAt(0, b)
}

func getU64(t *testing.T, r core.Region, idx int) uint64 {
	t.Helper()
	b := make([]byte, 8)
	r.ReadAt(8*idx, b)
	return binary.LittleEndian.Uint64(b)
}

func TestBcastFromEveryRoot(t *testing.T) {
	const ranks = 7 // non-power-of-two exercises the tree edges
	for root := 0; root < ranks; root++ {
		root := root
		launchN(t, ranks, func(r *Rank) {
			buf := r.Alloc(64)
			if r.Rank() == root {
				fill(buf, 64, byte(40+root))
			}
			r.Bcast(root, buf, 0, 64)
			check(t, buf, 64, byte(40+root))
		})
	}
}

func TestReduceSum(t *testing.T) {
	const ranks = 6
	launchN(t, ranks, func(r *Rank) {
		buf := r.Alloc(24)
		putU64s(buf, uint64(r.Rank()), uint64(r.Rank()*10), 1)
		r.Reduce(0, SumUint64, buf, 0, 24)
		if r.Rank() == 0 {
			// sum 0..5 = 15; *10 = 150; count = 6.
			if getU64(t, buf, 0) != 15 || getU64(t, buf, 1) != 150 || getU64(t, buf, 2) != 6 {
				t.Errorf("reduce got %d %d %d", getU64(t, buf, 0), getU64(t, buf, 1), getU64(t, buf, 2))
			}
		}
	})
}

func TestAllreduceMax(t *testing.T) {
	const ranks = 5
	launchN(t, ranks, func(r *Rank) {
		buf := r.Alloc(8)
		putU64s(buf, uint64(100+r.Rank()*r.Rank()))
		r.Allreduce(MaxUint64, buf, 0, 8)
		if got := getU64(t, buf, 0); got != 116 { // 100+4*4
			t.Errorf("rank %d: allreduce max = %d, want 116", r.Rank(), got)
		}
	})
}

func TestGatherCollectsInRankOrder(t *testing.T) {
	const ranks = 5
	launchN(t, ranks, func(r *Rank) {
		buf := r.Alloc(8)
		putU64s(buf, uint64(1000+r.Rank()))
		dst := r.Alloc(8 * ranks)
		r.Gather(2, buf, 0, 8, dst)
		if r.Rank() == 2 {
			for i := 0; i < ranks; i++ {
				if got := getU64(t, dst, i); got != uint64(1000+i) {
					t.Errorf("slot %d = %d", i, got)
				}
			}
		}
	})
}

func TestBcastScalesLogarithmically(t *testing.T) {
	// A binomial tree's critical path grows with log2(P), not P: the
	// 16-rank broadcast must take far less than 15/3 of the 4-rank one.
	timeFor := func(ranks int) sim.Time {
		tp, _ := topo.New(ranks, 1, 1, false, false, false)
		m := machine.New(model.Defaults(), tp)
		nodes := make([]topo.NodeID, ranks)
		for i := range nodes {
			nodes[i] = topo.NodeID(i)
		}
		// The broadcast's cost is when the last rank finishes, measured
		// from the synchronized start.
		var start sim.Time
		done := make([]sim.Time, ranks)
		Launch(m, nodes, MPICH1, machine.Generic, func(r *Rank) {
			buf := r.Alloc(8)
			r.Barrier()
			if r.Rank() == 0 {
				start = r.Proc().Now()
			}
			r.Bcast(0, buf, 0, 8)
			done[r.Rank()] = r.Proc().Now()
		})
		m.Run()
		var last sim.Time
		for _, d := range done {
			if d > last {
				last = d
			}
		}
		return last - start
	}
	t4, t16 := timeFor(4), timeFor(16)
	if t16 > 3*t4 {
		t.Errorf("bcast(16)=%v vs bcast(4)=%v: not logarithmic", t16, t4)
	}
}

func TestAllreduceConvergesAcrossImpls(t *testing.T) {
	for _, impl := range []Impl{MPICH1, MPICH2} {
		impl := impl
		tp, _ := topo.New(4, 1, 1, false, false, false)
		m := machine.New(model.Defaults(), tp)
		if err := Launch(m, []topo.NodeID{0, 1, 2, 3}, impl, machine.Generic, func(r *Rank) {
			buf := r.Alloc(8)
			putU64s(buf, uint64(r.Rank()+1))
			r.Allreduce(SumUint64, buf, 0, 8)
			if got := getU64(t, buf, 0); got != 10 {
				t.Errorf("%v rank %d: sum = %d, want 10", impl, r.Rank(), got)
			}
		}); err != nil {
			t.Fatal(err)
		}
		m.Run()
	}
}

func TestScatterDistributesSlices(t *testing.T) {
	const ranks, n = 5, 8
	launchN(t, ranks, func(r *Rank) {
		var src core.Region
		if r.Rank() == 1 {
			src = r.Alloc(n * ranks)
			for i := 0; i < ranks; i++ {
				b := make([]byte, 8)
				for j := range b {
					b[j] = byte(i*16 + j)
				}
				src.WriteAt(i*n, b)
			}
		} else {
			src = r.Alloc(1)
		}
		dst := r.Alloc(n)
		r.Scatter(1, src, dst, 0, n)
		got := make([]byte, n)
		dst.ReadAt(0, got)
		for j := range got {
			if got[j] != byte(r.Rank()*16+j) {
				t.Fatalf("rank %d byte %d = %#x", r.Rank(), j, got[j])
			}
		}
	})
}

func TestWaitall(t *testing.T) {
	const n = 128
	runJob(t, MPICH1, func(r *Rank) {
		other := 1 - r.Rank()
		out, in1, in2 := r.Alloc(n), r.Alloc(n), r.Alloc(n)
		fill(out, n, byte(50+r.Rank()))
		rq1 := r.Irecv(other, 1, in1, 0, n)
		rq2 := r.Irecv(other, 2, in2, 0, n)
		s1 := r.Isend(other, 1, out, 0, n)
		s2 := r.Isend(other, 2, out, 0, n)
		Waitall(rq1, rq2, s1, s2)
		check(t, in1, n, byte(50+other))
		check(t, in2, n, byte(50+other))
	})
}
