package mpi_test

import (
	"fmt"

	"portals3/internal/machine"
	"portals3/internal/model"
	"portals3/internal/mpi"
	"portals3/internal/topo"
)

// Example_pingpong runs a two-rank MPI job on a simulated XT3 pair: the
// MPICH-1.2.6 profile over the full Portals/SeaStar stack.
func Example_pingpong() {
	m := machine.NewPair(model.Defaults())
	err := mpi.Launch(m, []topo.NodeID{0, 1}, mpi.MPICH1, machine.Generic, func(r *mpi.Rank) {
		const n = 16
		buf := r.Alloc(n)
		if r.Rank() == 0 {
			msg := []byte("hello from rank0")
			buf.WriteAt(0, msg)
			r.Send(1, 42, buf, 0, n)
			r.Recv(1, 43, buf, 0, n)
			got := make([]byte, n)
			buf.ReadAt(0, got)
			fmt.Printf("rank 0 got back: %s\n", got)
		} else {
			got := r.Recv(0, 42, buf, 0, n)
			data := make([]byte, got)
			buf.ReadAt(0, data)
			fmt.Printf("rank 1 received %d bytes: %s\n", got, data)
			buf.WriteAt(0, []byte("hello from rank1"))
			r.Send(0, 43, buf, 0, n)
		}
	})
	if err != nil {
		panic(err)
	}
	m.Run()
	// Output:
	// rank 1 received 16 bytes: hello from rank0
	// rank 0 got back: hello from rank1
}

// Example_allreduce shows the binomial-tree collectives on four ranks.
func Example_allreduce() {
	tp, _ := topo.New(4, 1, 1, false, false, false)
	m := machine.New(model.Defaults(), tp)
	err := mpi.Launch(m, []topo.NodeID{0, 1, 2, 3}, mpi.MPICH2, machine.Generic, func(r *mpi.Rank) {
		buf := r.Alloc(8)
		buf.WriteAt(0, []byte{byte(r.Rank() + 1), 0, 0, 0, 0, 0, 0, 0})
		r.Allreduce(mpi.SumUint64, buf, 0, 8)
		if r.Rank() == 0 {
			got := make([]byte, 8)
			buf.ReadAt(0, got)
			fmt.Printf("sum of ranks 1..4 = %d\n", got[0])
		}
	})
	if err != nil {
		panic(err)
	}
	m.Run()
	// Output:
	// sum of ranks 1..4 = 10
}
