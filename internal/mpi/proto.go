package mpi

import "portals3/internal/core"

// Request is a nonblocking operation handle.
type Request struct {
	r    *Rank
	done bool

	// Receive results.
	N      int // bytes delivered
	Source int // resolved source rank
	Tag    int // resolved tag
	Err    error

	// internals
	isRecv  bool
	buf     core.Region
	off     int
	maxLen  int
	wantSrc int
	wantTag int
	me      core.MEHandle // posted receive entry
	md      core.MDHandle // posted receive descriptor / send descriptor
	rdvMD   core.MDHandle // rendezvous: exposed send buffer or get descriptor

	// tag and win are embedded so building a request needs no satellite
	// allocations: tag is the descriptor user pointer, win the narrowed
	// receive/expose window.
	tag reqTag
	win regionWindow
}

// newRequest builds a request with its event tag pointing back at it.
func (r *Rank) newRequest() *Request {
	if n := len(r.reqFree); n > 0 {
		req := r.reqFree[n-1]
		r.reqFree[n-1] = nil
		r.reqFree = r.reqFree[:n-1]
		*req = Request{r: r}
		req.tag.req = req
		return req
	}
	req := &Request{r: r}
	req.tag.req = req
	return req
}

// freeRequest recycles a completed request. Only the blocking wrappers call
// it: they own the request end to end, its descriptors are unlinked by the
// time Wait returns, and the handle never escapes to the application.
func (r *Rank) freeRequest(req *Request) {
	*req = Request{}
	r.reqFree = append(r.reqFree, req)
}

// Done reports completion without progressing the engine.
func (q *Request) Done() bool { return q.done }

// Wait progresses the engine until the request completes and returns the
// received byte count (0 for sends).
func (q *Request) Wait() int {
	for !q.done {
		q.r.progressOne(true)
	}
	if q.Err != nil {
		q.r.fatal("request failed: %v", q.Err)
	}
	return q.N
}

// ---- Send ----

// Isend starts a nonblocking send of n bytes at off within buf.
func (r *Rank) Isend(dst, tag int, buf core.Region, off, n int) *Request {
	if dst < 0 || dst >= r.size {
		r.fatal("Isend to bad rank %d", dst)
	}
	r.charge(r.cfg.SendCycles)
	req := r.newRequest()
	bits := envBits(r.ctx, r.rank, tag)
	if n <= r.cfg.EagerMax {
		r.EagerSends++
		md, err := r.api.MDBind(core.MDesc{
			Region:    buf,
			Threshold: core.ThresholdInfinite,
			Options:   core.MDEventStartDisable,
			EQ:        r.eq,
			User:      &req.tag,
		})
		if err != nil {
			r.fatal("eager MDBind: %v", err)
		}
		req.md = md
		if err := r.api.PutRegion(md, off, n, core.NoAck, r.peers[dst], ptlMPI,
			bits, 0, hdrData(protoEager, 0, n)); err != nil {
			r.fatal("eager put: %v", err)
		}
		return req
	}

	// Rendezvous: expose the payload for the receiver's get, then send the
	// zero-byte request-to-send.
	r.RdvSends++
	r.rdvSeq++
	seq := r.rdvSeq
	rme, err := r.api.MEAttach(ptlRdv, r.peers[dst], seq, 0, core.UnlinkAuto, core.After)
	if err != nil {
		r.fatal("rdv MEAttach: %v", err)
	}
	req.win = regionWindow{buf, off, n}
	rmd, err := r.api.MDAttach(rme, core.MDesc{
		Region:    &req.win,
		Threshold: 1,
		Options:   core.MDOpGet | core.MDManageRemote | core.MDEventStartDisable,
		EQ:        r.eq,
		User:      &req.tag,
	}, core.UnlinkAuto)
	if err != nil {
		r.fatal("rdv MDAttach: %v", err)
	}
	req.rdvMD = rmd
	req.off = off
	req.maxLen = n
	rtsMD, err := r.api.MDBind(core.MDesc{
		Region:    core.SliceRegion{},
		Threshold: core.ThresholdInfinite,
		Options:   core.MDEventStartDisable | core.MDEventEndDisable,
		EQ:        core.NoEQ,
		User:      nil,
	})
	if err != nil {
		r.fatal("rts MDBind: %v", err)
	}
	// The RTS is a zero-byte put whose header data carries the protocol
	// marker, the rendezvous sequence, and the payload length.
	if err := r.api.PutRegion(rtsMD, 0, 0, core.NoAck, r.peers[dst], ptlMPI,
		bits, 0, hdrData(protoRTS, seq, n)); err != nil {
		r.fatal("rts put: %v", err)
	}
	r.api.MDUnlink(rtsMD)
	return req
}

// Send is the blocking send: it returns when the buffer is reusable.
func (r *Rank) Send(dst, tag int, buf core.Region, off, n int) {
	req := r.Isend(dst, tag, buf, off, n)
	req.Wait()
	r.freeRequest(req)
}

// ---- Receive ----

// Irecv starts a nonblocking receive into buf[off:off+n]. src and tag may
// be AnySource / AnyTag.
func (r *Rank) Irecv(src, tag int, buf core.Region, off, n int) *Request {
	r.charge(r.cfg.RecvCycles)
	req := r.newRequest()
	req.isRecv = true
	req.buf = buf
	req.off = off
	req.maxLen = n
	req.wantSrc = src
	req.wantTag = tag
	// The race-free posted-receive protocol: create the entry with an
	// inactive (threshold 0) descriptor, search the unexpected queue, then
	// activate with a conditional MDUpdate that fails if any event snuck
	// in while we searched.
	matchID := core.ProcessID{Nid: core.NidAny, Pid: core.PidAny}
	if src != AnySource {
		matchID = r.peers[src]
	}
	bits := envBits(r.ctx, maxInt(src, 0), tag&tagMask)
	var ignore uint64
	if src == AnySource {
		ignore |= srcIgnore
	}
	if tag == AnyTag {
		ignore |= tagIgnore
		bits &^= tagIgnore
	}
	me, err := r.api.MEInsert(r.fence, matchID, bits, ignore, core.UnlinkAuto, core.Before)
	if err != nil {
		r.fatal("posted MEInsert: %v", err)
	}
	req.win = regionWindow{buf, off, n}
	desc := core.MDesc{
		Region:    &req.win,
		Threshold: 0,
		Options:   core.MDOpPut | core.MDTruncate | core.MDEventStartDisable,
		EQ:        r.eq,
		User:      &req.tag,
	}
	md, err := r.api.MDAttach(me, desc, core.UnlinkAuto)
	if err != nil {
		r.fatal("posted MDAttach: %v", err)
	}
	req.me = me
	req.md = md

	armed := desc
	armed.Threshold = 1
	for {
		if u := r.takeUnexpected(src, tag); u != nil {
			if err := r.api.MEUnlink(me); err != nil {
				r.fatal("unlink posted ME: %v", err)
			}
			r.consumeUnexpected(req, u)
			return req
		}
		if r.sinkInflight > 0 {
			// A message is mid-arrival into overflow space and might be
			// the one we want: wait for its completion before arming.
			r.progressOne(true)
			continue
		}
		err := r.api.MDUpdate(md, nil, &armed, r.eq)
		if err == nil {
			return req // armed; events will complete it
		}
		if err != core.ErrMDNoUpdate {
			r.fatal("MDUpdate: %v", err)
		}
		// Events arrived while we searched: drain them and re-search.
		r.progressOne(false)
	}
}

// Recv is the blocking receive; it returns the delivered byte count.
func (r *Rank) Recv(src, tag int, buf core.Region, off, n int) int {
	req := r.Irecv(src, tag, buf, off, n)
	n = req.Wait()
	r.freeRequest(req)
	return n
}

// Sendrecv performs the classic simultaneous exchange.
func (r *Rank) Sendrecv(dst, sendTag int, sendBuf core.Region, sendOff, sendN int,
	src, recvTag int, recvBuf core.Region, recvOff, recvN int) int {
	rq := r.Irecv(src, recvTag, recvBuf, recvOff, recvN)
	sq := r.Isend(dst, sendTag, sendBuf, sendOff, sendN)
	sq.Wait()
	n := rq.Wait()
	r.freeRequest(sq)
	r.freeRequest(rq)
	return n
}

// consumeUnexpected completes a receive from an already-arrived message.
func (r *Rank) consumeUnexpected(req *Request, u *unexpMsg) {
	req.Source = u.src
	req.Tag = u.tag
	if u.proto == protoEager {
		n := len(u.data)
		if n > req.maxLen {
			n = req.maxLen // MPI truncation
		}
		if n > 0 {
			req.buf.WriteAt(req.off+0, u.data[:n])
			r.charge(int64(n / memcpyBytesPerCycle))
		}
		req.N = n
		if u.nifail {
			r.fatal("unexpected eager message failed CRC")
		}
		req.done = true
		return
	}
	// Rendezvous: fetch the payload from the sender's exposed buffer.
	r.startGet(req, u.sender, u.rdvSeq, u.rlen)
}

// startGet issues the rendezvous get into the receive buffer.
func (r *Rank) startGet(req *Request, sender core.ProcessID, seq uint64, rlen int) {
	n := rlen
	if n > req.maxLen {
		n = req.maxLen
	}
	md, err := r.api.MDBind(core.MDesc{
		Region:    req.buf,
		Threshold: core.ThresholdInfinite,
		Options:   core.MDEventStartDisable,
		EQ:        r.eq,
		User:      &req.tag,
	})
	if err != nil {
		r.fatal("rdv get MDBind: %v", err)
	}
	req.rdvMD = md
	if err := r.api.GetRegion(md, req.off, n, sender, ptlRdv, seq, 0); err != nil {
		r.fatal("rdv get: %v", err)
	}
}

// ---- Progress engine ----

// progressOne handles one library event; with block=false it drains
// whatever is available and returns.
func (r *Rank) progressOne(block bool) {
	for {
		var ev core.Event
		var err error
		if block {
			ev, err = r.api.EQWait(r.eq)
		} else {
			ev, err = r.api.EQGet(r.eq)
		}
		if err == core.ErrEQEmpty {
			return
		}
		if err == core.ErrEQDropped {
			r.fatal("event queue overflowed: deepen eqDepth")
		}
		if err != nil {
			r.fatal("EQ read: %v", err)
		}
		r.handleEvent(ev)
		if block {
			return
		}
	}
}

// handleEvent dispatches one Portals event by the descriptor's user tag.
func (r *Rank) handleEvent(ev core.Event) {
	switch u := ev.User.(type) {
	case *sinkEntry:
		r.sinkEvent(ev, u)
	case *reqTag:
		r.requestEvent(ev, u.req)
	default:
		// Events from descriptors the engine no longer tracks (late
		// SEND_ENDs after completion) are ignorable.
	}
}

// sinkEvent records an unexpected message. PUT_START marks a message in
// flight into overflow space; PUT_END completes it and queues the
// envelope (and eager payload) for later matching.
func (r *Rank) sinkEvent(ev core.Event, sink *sinkEntry) {
	if ev.Type == core.EventPutStart {
		r.sinkInflight++
		return
	}
	if ev.Type != core.EventPutEnd {
		return
	}
	if r.sinkInflight > 0 {
		r.sinkInflight--
	}
	r.Unexpected++
	ctx, src, tag := envDecode(ev.MatchBits)
	proto, seq, rlen := hdrDecode(ev.HdrData)
	u := &unexpMsg{
		ctx: ctx, src: src, tag: tag,
		proto: proto, rdvSeq: seq,
		sender: ev.Initiator,
		rlen:   rlen,
		nifail: ev.NIFail,
	}
	if proto == protoEager && ev.MLength > 0 {
		u.data = make([]byte, ev.MLength)
		sink.buf.ReadAt(ev.Offset, u.data)
		r.charge(int64(ev.MLength / memcpyBytesPerCycle))
	}
	r.unexpected = append(r.unexpected, u)
	if ev.Unlinked {
		r.SinkRespawn++
		if err := r.addSink(); err != nil {
			r.fatal("sink respawn: %v", err)
		}
	}
}

// requestEvent advances a send or receive request.
func (r *Rank) requestEvent(ev core.Event, req *Request) {
	switch ev.Type {
	case core.EventSendEnd:
		// Eager send complete: the buffer is reusable.
		if !req.isRecv {
			if ev.NIFail {
				req.Err = core.ErrSegv
			}
			req.done = true
			if req.md != 0 && req.md != core.NoMD {
				r.api.MDUnlink(req.md)
				req.md = core.NoMD
			}
		}
	case core.EventGetEnd:
		// Rendezvous send complete: the receiver fetched the payload.
		req.done = true
	case core.EventPutEnd:
		// A posted receive matched.
		proto, seq, rlen := hdrDecode(ev.HdrData)
		_, src, tag := envDecode(ev.MatchBits)
		req.Source = src
		req.Tag = tag
		if proto == protoRTS {
			r.startGet(req, ev.Initiator, seq, rlen)
			return
		}
		req.N = ev.MLength
		if ev.NIFail {
			req.Err = core.ErrSegv
		}
		req.done = true
	case core.EventReplyEnd:
		// Rendezvous get complete.
		req.N = ev.MLength
		if ev.NIFail {
			req.Err = core.ErrSegv
		}
		req.done = true
		if req.rdvMD != 0 && req.rdvMD != core.NoMD {
			r.api.MDUnlink(req.rdvMD)
			req.rdvMD = core.NoMD
		}
	}
}

// takeUnexpected removes and returns the oldest matching unexpected
// message, or nil.
func (r *Rank) takeUnexpected(src, tag int) *unexpMsg {
	for i, u := range r.unexpected {
		if u.ctx != r.ctx {
			continue
		}
		if src != AnySource && u.src != src {
			continue
		}
		if tag != AnyTag && u.tag != tag {
			continue
		}
		r.unexpected = append(r.unexpected[:i], r.unexpected[i+1:]...)
		return u
	}
	return nil
}

// ---- Collectives ----

// Barrier blocks until every rank arrives. Linear algorithm: everyone
// reports to rank 0, rank 0 releases everyone — adequate for the job sizes
// simulated here.
func (r *Rank) Barrier() {
	empty := r.alloc(0)
	if r.rank == 0 {
		for i := 1; i < r.size; i++ {
			r.Recv(AnySource, barrierTag, empty, 0, 0)
		}
		for i := 1; i < r.size; i++ {
			r.Send(i, barrierTag, empty, 0, 0)
		}
		return
	}
	r.Send(0, barrierTag, empty, 0, 0)
	r.Recv(0, barrierTag, empty, 0, 0)
}

// regionWindow narrows a region to [off, off+n) so a posted receive's MD
// covers exactly the receive buffer slice.
type regionWindow struct {
	r   core.Region
	off int
	n   int
}

func (w regionWindow) Len() int                  { return w.n }
func (w regionWindow) ReadAt(off int, p []byte)  { w.r.ReadAt(w.off+off, p) }
func (w regionWindow) WriteAt(off int, p []byte) { w.r.WriteAt(w.off+off, p) }
func (w regionWindow) Segments() int             { return w.r.Segments() }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Waitall completes every request.
func Waitall(reqs ...*Request) {
	for _, q := range reqs {
		q.Wait()
	}
}
