// Schedule auto-bisection: when a campaign fails, shrink its fault
// schedule to a minimal still-failing reproduction. The algorithm is
// ddmin (Zeller's delta debugging): first try halves, then complements of
// progressively finer chunkings, keeping any subset that still fails —
// which both "halve" and "delta-debug" phases of classic bisection fall
// out of. Every trial run is a full campaign at the same shards and seed,
// memoized by the canonical schedule string; because campaign outcomes
// are shard-invariant and deterministic, the same failing seed bisects to
// a byte-identical minimal schedule on every run at every shard count.
package soak

import (
	"fmt"

	"portals3/internal/model"
	"portals3/internal/topo"
)

// BisectOutcome is the result of minimizing one failing campaign.
type BisectOutcome struct {
	// Full is the campaign's resolved schedule; Failed reports whether it
	// failed at all (when false, nothing was bisected).
	Full   model.FaultSchedule
	Failed bool

	// Minimal is the smallest still-failing schedule found; Verified is the
	// standalone re-run confirmation that it fails on its own, and Result
	// is that re-run's outcome (with flight-recorder artifacts).
	Minimal  model.FaultSchedule
	Verified bool
	Result   Result

	// Trials counts distinct schedules executed (memoized repeats excluded).
	Trials int
}

// Repro renders the ready-to-paste reproduction command for the minimal
// schedule.
func (o BisectOutcome) Repro(c Campaign) string {
	return ReproCommand(c, o.Minimal)
}

// Bisect resolves the campaign's schedule, confirms it fails, minimizes it
// with ddmin, and re-verifies the minimal schedule standalone (with the
// flight recorder on, so the outcome carries p3dump artifacts).
func Bisect(c Campaign) (BisectOutcome, error) {
	full, err := Resolve(c)
	if err != nil {
		return BisectOutcome{}, err
	}
	out := BisectOutcome{Full: full}
	memo := make(map[string]bool)
	fails := func(s model.FaultSchedule) bool {
		key := s.String()
		if v, ok := memo[key]; ok {
			return v
		}
		cc := c
		cc.Schedule = s
		if len(s) == 0 {
			// Resolve treats an empty schedule as "generate from seed";
			// an empty trial means "no faults at all", which by the soak
			// invariants cannot fail.
			memo[key] = false
			return false
		}
		r := Run(cc)
		memo[key] = r.Failed()
		out.Trials++
		return r.Failed()
	}
	if !fails(full) {
		return out, nil
	}
	out.Failed = true
	out.Minimal = ddmin(full, fails)

	// Re-verify: the minimal schedule must fail standalone, not only as a
	// memoized verdict inside the search.
	cc := c
	cc.Schedule = out.Minimal
	cc.FlightRec = true
	out.Result = Run(cc)
	out.Verified = out.Result.Failed()
	out.Trials++
	return out, nil
}

// ddmin minimizes s under the fails predicate: the returned schedule fails,
// and removing any single chunk the final granularity tried no longer does.
func ddmin(s model.FaultSchedule, fails func(model.FaultSchedule) bool) model.FaultSchedule {
	cur := append(model.FaultSchedule(nil), s...)
	n := 2
	for len(cur) >= 2 {
		chunks := split(cur, n)
		reduced := false
		// Try each chunk alone (the "halve" phase when n == 2).
		for _, ch := range chunks {
			if fails(ch) {
				cur, n, reduced = ch, 2, true
				break
			}
		}
		// Then each chunk's complement.
		if !reduced {
			for i := range chunks {
				comp := complement(chunks, i)
				if fails(comp) {
					cur, reduced = comp, true
					if n = n - 1; n < 2 {
						n = 2
					}
					break
				}
			}
		}
		if !reduced {
			if n >= len(cur) {
				break // 1-minimal at single-entry granularity
			}
			n *= 2
			if n > len(cur) {
				n = len(cur)
			}
		}
	}
	return cur
}

// split partitions s into n nearly equal contiguous chunks.
func split(s model.FaultSchedule, n int) []model.FaultSchedule {
	out := make([]model.FaultSchedule, 0, n)
	for i := 0; i < n; i++ {
		from, to := i*len(s)/n, (i+1)*len(s)/n
		if from < to {
			out = append(out, s[from:to:to])
		}
	}
	return out
}

// complement concatenates every chunk except chunks[skip].
func complement(chunks []model.FaultSchedule, skip int) model.FaultSchedule {
	var out model.FaultSchedule
	for i, ch := range chunks {
		if i != skip {
			out = append(out, ch...)
		}
	}
	return out
}

// ReproCommand renders the soak CLI invocation that replays sched under
// the campaign's workload and shard count, verbatim paste-able.
func ReproCommand(c Campaign, sched model.FaultSchedule) string {
	shards := c.Shards
	if shards <= 0 {
		shards = 1
	}
	return fmt.Sprintf("go run ./cmd/soak -workload %s -shards %d -schedule '%s'",
		c.Workload, shards, sched)
}

// NetpipeRepro renders a netpipe replay command when the schedule fits the
// two-node netpipe machine (nodes 0-1, X links only) — the quickest rig
// for staring at a minimal schedule under -trace or -flightrec.
func NetpipeRepro(sched model.FaultSchedule) (string, bool) {
	tp, err := topo.New(2, 1, 1, false, false, false)
	if err != nil || len(sched) == 0 || sched.Validate(tp) != nil {
		return "", false
	}
	return fmt.Sprintf("go run ./cmd/netpipe -series put -pattern stream -gbn -schedule '%s'", sched), true
}
