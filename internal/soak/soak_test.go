package soak

import (
	"strings"
	"testing"

	"portals3/internal/model"
	"portals3/internal/sim"
)

// campaignSeed picks a seed per workload whose generated schedule provably
// overlaps traffic (injects at least one fault) — pinned so the assertions
// below stay meaningful.
func campaignSeed(workload string) int64 {
	if workload == TorusHalo {
		return 3
	}
	return 1
}

func TestCampaignsPassAndReshardIdentically(t *testing.T) {
	// The core soak contract: every workload survives its seeded fault
	// campaign with a balanced ledger and no failure reports, the schedule
	// actually injected faults, and the summary is byte-identical at
	// shards=1 and shards=4.
	for _, w := range Workloads {
		seed := campaignSeed(w)
		var ref string
		for _, shards := range []int{1, 4} {
			r := Run(Campaign{Workload: w, Seed: seed, Shards: shards})
			if r.Failed() {
				t.Fatalf("%s shards=%d failed:\n%s", w, shards, r.Summary())
			}
			if r.Ledger.Injected() == 0 {
				t.Errorf("%s shards=%d: schedule injected no faults", w, shards)
			}
			if r.Ledger.Open() != 0 {
				t.Errorf("%s shards=%d: ledger open = %d", w, shards, r.Ledger.Open())
			}
			if shards == 1 {
				ref = r.Summary()
			} else if got := r.Summary(); got != ref {
				t.Errorf("%s: summary diverges between shard counts:\n--- shards=1\n%s--- shards=%d\n%s", w, ref, shards, got)
			}
		}
	}
}

func TestSameSeedSameSummary(t *testing.T) {
	// Same seed, same campaign, two independent runs: bit-identical.
	c := Campaign{Workload: GbnStream, Seed: 7, Shards: 2}
	a, b := Run(c), Run(c)
	if a.Summary() != b.Summary() {
		t.Errorf("same-seed reruns diverged:\n%s\nvs\n%s", a.Summary(), b.Summary())
	}
}

// plantedCampaign is a campaign whose schedule carries an explicit corrupt
// entry — planted silent data loss the ledger audit must catch — on top of
// seed-generated noise entries.
func plantedCampaign(shards int) Campaign {
	c := Campaign{Workload: GbnStream, Seed: 5, Shards: shards}
	sched, err := Resolve(c)
	if err != nil {
		panic(err)
	}
	c.Schedule = append(sched, model.ScheduleEntry{
		Kind: model.SchedCorrupt, Node: 2, At: 300 * sim.Microsecond,
	})
	return c
}

func TestPlantedCorruptionFailsTheCampaign(t *testing.T) {
	r := Run(plantedCampaign(1))
	if !r.Failed() {
		t.Fatalf("planted ledger corruption not detected:\n%s", r.Summary())
	}
	if r.Ledger.Open() == 0 {
		t.Error("planted corruption left no open ledger entry")
	}
}

func TestBisectionDeterministicAndMinimal(t *testing.T) {
	// The planted failure must auto-bisect to the same minimal schedule —
	// byte-identical — across independent runs and across shard counts,
	// and the minimal schedule must re-verify as failing standalone.
	var ref string
	for _, shards := range []int{1, 2, 4} {
		for rerun := 0; rerun < 2; rerun++ {
			c := plantedCampaign(shards)
			out, err := Bisect(c)
			if err != nil {
				t.Fatal(err)
			}
			if !out.Failed {
				t.Fatalf("shards=%d: planted campaign did not fail", shards)
			}
			if !out.Verified {
				t.Fatalf("shards=%d: minimal schedule did not fail standalone:\n%s", shards, out.Result.Summary())
			}
			min := out.Minimal.String()
			if ref == "" {
				ref = min
			} else if min != ref {
				t.Fatalf("shards=%d rerun=%d: minimal schedule diverged: %q vs %q", shards, rerun, min, ref)
			}
			if len(out.Minimal) != 1 || out.Minimal[0].Kind != model.SchedCorrupt {
				t.Errorf("minimal schedule is not the planted corrupt entry alone: %q", min)
			}
			if out.Trials > 16 {
				t.Errorf("bisection took %d trials for a 1-minimal cause in a %d-entry schedule", out.Trials, len(c.Schedule))
			}
		}
	}
	if !strings.Contains(ref, "corrupt:2:") {
		t.Errorf("minimal schedule %q does not pin the planted corruption", ref)
	}
}

func TestBisectOnPassingCampaignIsANoop(t *testing.T) {
	out, err := Bisect(Campaign{Workload: GbnStream, Seed: campaignSeed(GbnStream), Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Failed || out.Verified || len(out.Minimal) != 0 {
		t.Errorf("passing campaign produced a bisection: %+v", out)
	}
}

func TestReproCommands(t *testing.T) {
	c := Campaign{Workload: GbnStream, Shards: 2}
	sched, _ := model.ParseSchedule("corrupt:1:300us")
	cmd := ReproCommand(c, sched)
	want := "go run ./cmd/soak -workload gbn-stream -shards 2 -schedule 'corrupt:1:300us'"
	if cmd != want {
		t.Errorf("ReproCommand = %q, want %q", cmd, want)
	}
	// A schedule confined to nodes 0-1 on X links replays on the two-node
	// netpipe machine; one touching node 3 does not.
	np, ok := NetpipeRepro(sched)
	if !ok || !strings.Contains(np, "-schedule 'corrupt:1:300us'") {
		t.Errorf("NetpipeRepro = %q, %v", np, ok)
	}
	far, _ := model.ParseSchedule("stall:3:100us:50us")
	if _, ok := NetpipeRepro(far); ok {
		t.Error("NetpipeRepro accepted a schedule outside the pair topology")
	}
}

func TestResolveRejectsBadCampaigns(t *testing.T) {
	if _, err := Resolve(Campaign{Workload: "no-such-workload"}); err == nil {
		t.Error("unknown workload not rejected")
	}
	bad, _ := model.ParseSchedule("linkdown:0:Y+:100us:50us") // no Y links on a line
	if _, err := Resolve(Campaign{Workload: GbnStream, Schedule: bad}); err == nil {
		t.Error("schedule invalid for the workload topology not rejected")
	}
}

func TestFlightRecorderArtifactsOnFailure(t *testing.T) {
	c := plantedCampaign(1)
	c.FlightRec = true
	r := Run(c)
	if !r.Failed() {
		t.Fatal("planted campaign passed")
	}
	if len(r.Dumps) == 0 {
		t.Fatal("failing campaign with FlightRec produced no dumps")
	}
	if _, ok := r.Dumps["end-of-run"]; !ok {
		t.Error("no end-of-run dump captured")
	}
}
