// Package soak is the chaos soak campaign driver: seeded virtual-time
// fault campaigns — scheduled link flaps, node stalls, correlated burst
// loss and rolling firmware restarts — run over the repository's standard
// workloads (torus halo exchange, lossy incast, go-back-n stream), on the
// sequential reference kernel and the sharded parallel kernel alike.
//
// A campaign is reproducible by construction: the seed derives the fault
// schedule (model.GenSchedule), the schedule applies deterministically at
// any shard count (machine/schedule.go), and a Result's Summary excludes
// everything that may legitimately vary between arms — so the same seed
// must produce byte-identical summaries at shards=1 and shards=N, and any
// divergence is itself a failure.
//
// At quiescence every campaign asserts the soak invariants:
//
//   - the fault ledger balances: injected == recovered + condemned;
//   - zero failure reports — no stalls, panics or ledger imbalances;
//   - the workload's own delivery checks (sequence, integrity, counts).
//
// When a campaign fails, Bisect (bisect.go) minimizes the schedule to a
// smallest still-failing reproduction and renders a ready-to-paste repro
// command. DESIGN.md §13 describes the architecture.
package soak

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"portals3/internal/core"
	"portals3/internal/experiments"
	"portals3/internal/fabric"
	"portals3/internal/machine"
	"portals3/internal/model"
	"portals3/internal/sim"
	"portals3/internal/topo"
)

// Workload names.
const (
	// TorusHalo is the machine-scale halo exchange on a 3x3x3 torus.
	TorusHalo = "torus-halo"
	// TorusCollective is the MPI allreduce/broadcast-tree workload on a
	// 3x3x3 torus — one rank per node, binomial trees over the routed
	// fabric.
	TorusCollective = "torus-collective"
	// RandTraffic is the uniform-random point-to-point generator on a
	// 3x3x3 torus.
	RandTraffic = "rand-traffic"
	// HotSpot is the hot-spot point-to-point generator on a 3x3x3 torus:
	// a fraction of every sender's messages converge on one victim node.
	HotSpot = "hot-spot"
	// LossyIncast is three senders converging on one receiver over a
	// 4-node line, under a small receive pool.
	LossyIncast = "lossy-incast"
	// GbnStream is an ordered pipelined stream across a 4-node line.
	GbnStream = "gbn-stream"
)

// Workloads lists every workload name, in campaign order.
var Workloads = []string{TorusHalo, TorusCollective, RandTraffic, HotSpot, LossyIncast, GbnStream}

// soakPtl/soakMatch are the portal index and match bits the line workloads
// attach on, as in the machine tests.
const (
	soakPtl   = 4
	soakMatch = 7
)

// Campaign describes one soak run.
type Campaign struct {
	Workload string
	Seed     int64
	Entries  int // generated schedule length; 0 means 4
	Shards   int // event lanes; 0 means 1

	// Schedule, when non-empty, overrides seed generation — the bisector
	// and explicit repro runs set it.
	Schedule model.FaultSchedule

	// FlightRec enables the per-node flight recorder so a failing run
	// carries p3dump-renderable artifacts.
	FlightRec bool

	// Progress, when set, receives live host-execution snapshots during
	// the run (about one per second of wall-clock) — cmd/soak's -progress.
	Progress func(sim.HostProgress)
}

// Result is one campaign's outcome.
type Result struct {
	Workload string
	Seed     int64
	Shards   int
	Schedule model.FaultSchedule

	FinishPs int64 // virtual completion time
	Msgs     int   // workload messages delivered (halo faces for torus)
	Ledger   fabric.FaultStats

	// Errors lists every violated invariant; empty on a passing run.
	Errors []string

	// Dumps holds flight-recorder artifacts (FlightRec on): "end-of-run"
	// plus one entry per failure report that carried a detection dump.
	Dumps map[string][]byte

	// Host-execution measurements. Wall-clock and heap are host-side and
	// nondeterministic, so Summary deliberately never reads them — they
	// feed the trend JSON (soak-time regression tracking), not the
	// shard-invariance comparison.
	WallNs        int64
	PeakHeapBytes uint64
	HostProfile   *machine.HostProfile
}

// Failed reports whether any soak invariant was violated.
func (r *Result) Failed() bool { return len(r.Errors) > 0 }

// Summary renders the shard-invariant outcome: everything the campaign
// asserts, nothing that may differ between arms (no shard count, no
// wall-clock). Same seed, same workload => byte-identical summaries at
// every shard count.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload=%s seed=%d\n", r.Workload, r.Seed)
	fmt.Fprintf(&b, "schedule=%s\n", r.Schedule)
	fmt.Fprintf(&b, "finish_ps=%d msgs=%d\n", r.FinishPs, r.Msgs)
	fmt.Fprintf(&b, "ledger=%v\n", r.Ledger)
	if len(r.Errors) == 0 {
		b.WriteString("status=PASS\n")
		return b.String()
	}
	fmt.Fprintf(&b, "status=FAIL errors=%d\n", len(r.Errors))
	for _, e := range r.Errors {
		b.WriteString("  " + e + "\n")
	}
	return b.String()
}

// Topology returns the workload's fixed topology — the validation target
// for schedules and the node-id space for generated ones.
func Topology(workload string) (*topo.Topology, error) {
	switch workload {
	case TorusHalo, TorusCollective, RandTraffic, HotSpot:
		return topo.XT3Torus(3, 3, 3)
	case LossyIncast, GbnStream:
		return topo.New(4, 1, 1, false, false, false)
	default:
		return nil, fmt.Errorf("soak: unknown workload %q (want %s)", workload, strings.Join(Workloads, ", "))
	}
}

// span is the virtual-time window generated schedules target. The line
// workloads stream until the schedule's last window closes, so any span
// overlaps traffic; the torus workloads run fixed iteration counts, so
// each span must sit inside that workload's natural finish time.
func span(workload string) sim.Time {
	switch workload {
	case TorusHalo:
		return 400 * sim.Microsecond
	case TorusCollective:
		// Ranks hold at the mpi.DefaultStart barrier (500us) before any
		// traffic flows, so the span must reach well past it.
		return 1000 * sim.Microsecond
	case RandTraffic, HotSpot:
		return 150 * sim.Microsecond
	default:
		return 700 * sim.Microsecond
	}
}

// Resolve returns the campaign's effective schedule: the explicit one
// validated, or the seed-generated one.
func Resolve(c Campaign) (model.FaultSchedule, error) {
	tp, err := Topology(c.Workload)
	if err != nil {
		return nil, err
	}
	if len(c.Schedule) > 0 {
		if err := c.Schedule.Validate(tp); err != nil {
			return nil, fmt.Errorf("soak: %v", err)
		}
		return c.Schedule, nil
	}
	n := c.Entries
	if n <= 0 {
		n = 4
	}
	return model.GenSchedule(c.Seed, tp, n, span(c.Workload)), nil
}

// Run executes one campaign and audits the soak invariants. Every
// campaign runs with the host-execution profiler armed, so the result
// carries wall-clock, peak heap, and the lane profile alongside the
// deterministic outcome.
func Run(c Campaign) Result {
	start := time.Now()
	if c.Shards <= 0 {
		c.Shards = 1
	}
	res := Result{Workload: c.Workload, Seed: c.Seed, Shards: c.Shards}
	sched, err := Resolve(c)
	if err != nil {
		res.Errors = append(res.Errors, err.Error())
		res.WallNs = int64(time.Since(start))
		return res
	}
	res.Schedule = sched
	switch c.Workload {
	case TorusHalo:
		runTorus(c, sched, &res)
	case TorusCollective:
		runCollective(c, sched, &res)
	case RandTraffic:
		runTraffic(c, sched, &res, false)
	case HotSpot:
		runTraffic(c, sched, &res, true)
	case LossyIncast:
		runLine(c, sched, &res, true)
	case GbnStream:
		runLine(c, sched, &res, false)
	}
	res.WallNs = int64(time.Since(start))
	if res.HostProfile != nil {
		res.PeakHeapBytes = res.HostProfile.HeapInuseHigh
	}
	return res
}

// stallWindow sizes the stall detector safely above every scheduled
// blackout: a window shorter than a scheduled outage would report the
// fault plan itself as a hang.
func stallWindow(sched model.FaultSchedule) sim.Time {
	return 2*sched.MaxDur() + 1500*sim.Microsecond
}

// audit applies the machine-level soak invariants to a finished run.
func audit(m *machine.Machine, res *Result) {
	res.FinishPs = int64(m.S.Now())
	if st, ok := m.FaultSnapshot(); ok {
		res.Ledger = st
		if st.Open() != 0 {
			res.Errors = append(res.Errors, fmt.Sprintf("ledger imbalance: %d fault(s) neither recovered nor condemned", st.Open()))
		}
	}
	for _, r := range m.Reports() {
		res.Errors = append(res.Errors, "failure report: "+r.String())
		if r.Dump != nil {
			if res.Dumps == nil {
				res.Dumps = make(map[string][]byte)
			}
			res.Dumps[fmt.Sprintf("report-%d-%s", len(res.Dumps), r.Kind)] = r.Dump.Bytes()
		}
	}
	if m.FlightRecorder() != nil {
		if res.Dumps == nil {
			res.Dumps = make(map[string][]byte)
		}
		res.Dumps["end-of-run"] = m.TakeDump("end of soak campaign").Bytes()
	}
}

// runTorus drives the halo-exchange workload through the experiments
// package, which carries its own delivery verification.
func runTorus(c Campaign, sched model.FaultSchedule, res *Result) {
	cfg := experiments.TorusConfig{
		Dim: 3, Bytes: 512, Steps: 4, Radius: 1,
		Shards:      c.Shards,
		GoBackN:     true,
		Schedule:    sched,
		FlightRec:   c.FlightRec,
		StallWindow: stallWindow(sched),
		HostProf:    true,
		Progress:    c.Progress,
	}
	r := experiments.TorusHalo(cfg)
	absorb(res, &r, r.Nodes*6*cfg.Steps, c.FlightRec)
}

// absorb copies an experiments-run outcome into the campaign result and
// applies the ledger invariant — the shared tail of every torus workload,
// which runs its own machine inside the experiments package.
func absorb(res *Result, r *experiments.TorusResult, msgs int, flightRec bool) {
	res.FinishPs = r.FinishPs
	res.Msgs = msgs
	res.Ledger = r.FaultStats
	if r.FaultStats.Open() != 0 {
		res.Errors = append(res.Errors, fmt.Sprintf("ledger imbalance: %d fault(s) neither recovered nor condemned", r.FaultStats.Open()))
	}
	res.Errors = append(res.Errors, r.Errors...)
	if flightRec && len(r.DumpBytes) > 0 {
		res.Dumps = map[string][]byte{"end-of-run": r.DumpBytes}
	}
	res.HostProfile = r.HostProfile
}

// runCollective drives the MPI allreduce/broadcast-tree workload: every
// campaign exercises the full MPI stack (sinks, eager protocol, binomial
// trees) under the scheduled faults, with go-back-n carrying recovery.
func runCollective(c Campaign, sched model.FaultSchedule, res *Result) {
	cfg := experiments.TorusConfig{
		Dim: 3, Bytes: 128, Steps: 3,
		Shards:      c.Shards,
		GoBackN:     true,
		Schedule:    sched,
		FlightRec:   c.FlightRec,
		StallWindow: stallWindow(sched),
		HostProf:    true,
		Progress:    c.Progress,
	}
	r := experiments.TorusCollective(cfg)
	absorb(res, &r, experiments.CollectiveMsgs(r.Nodes, cfg.Steps), c.FlightRec)
}

// runTraffic drives one traffic generator — uniform-random or the 30%
// hot-spot aimed at the torus center — throttled to a quarter of line rate
// so the injection window stays open across the schedule's fault windows.
func runTraffic(c Campaign, sched model.FaultSchedule, res *Result, hot bool) {
	cfg := experiments.TrafficConfig{
		TorusConfig: experiments.TorusConfig{
			Dim: 3, Bytes: 512,
			Shards:      c.Shards,
			GoBackN:     true,
			Schedule:    sched,
			FlightRec:   c.FlightRec,
			StallWindow: stallWindow(sched),
			HostProf:    true,
			Progress:    c.Progress,
		},
		Msgs: 24,
		Load: 0.25,
		Seed: uint64(c.Seed)*0x9E3779B9 + 0xd1ce,
	}
	if hot {
		cfg.HotFrac = 0.3
		cfg.HotNode = 13 // center of the 3x3x3 torus
	}
	r := experiments.TorusTraffic(cfg)
	absorb(res, &r, experiments.TrafficMsgs(cfg), c.FlightRec)
}

// runLine drives the two line workloads: incast (senders 1..3 converge on
// node 0) or an ordered stream (node 0 to node 3). Senders stream
// fixed-fill 1 KiB messages until every scheduled fault window has closed,
// then send a 1-byte sentinel; the receiver verifies per-sender sequence
// numbers from the put header data and message integrity from the fill.
func runLine(c Campaign, sched model.FaultSchedule, res *Result, incast bool) {
	p := model.Defaults()
	p.NumGenericPendings = 32
	p.Schedule = sched
	tp, err := Topology(c.Workload)
	if err != nil {
		res.Errors = append(res.Errors, err.Error())
		return
	}
	m := machine.NewSharded(p, tp, c.Shards)
	m.EnableGoBackN()
	m.EnableHostProfile()
	if c.Progress != nil {
		m.SetProgress(0, c.Progress)
	}
	if c.FlightRec {
		m.EnableFlightRecorder(0)
	}

	const B = 1024
	// Senders stream until the last fault window has closed (plus margin),
	// so the schedule always overlaps live traffic.
	until := sched.End() + 100*sim.Microsecond
	if until < 300*sim.Microsecond {
		until = 300 * sim.Microsecond
	}

	var rxNode topo.NodeID
	var senders []topo.NodeID
	if incast {
		rxNode, senders = 0, []topo.NodeID{1, 2, 3}
	} else {
		rxNode, senders = 3, []topo.NodeID{0}
	}

	type flow struct {
		sent int
		next uint64 // next expected sequence at the receiver
	}
	flows := make(map[uint32]*flow)
	for _, s := range senders {
		flows[uint32(s)] = &flow{}
	}
	var mu []string // verification errors, collected in event order
	received := 0

	var rx *machine.App
	rx, _ = m.Spawn(rxNode, "soak-rx", machine.Generic, func(app *machine.App) {
		eq, err := app.API.EQAlloc(8192)
		if err != nil {
			panic(err)
		}
		me, err := app.API.MEAttach(soakPtl, core.ProcessID{Nid: core.NidAny, Pid: core.PidAny},
			soakMatch, 0, core.Retain, core.After)
		if err != nil {
			panic(err)
		}
		buf := app.Alloc(len(senders) * B)
		if _, err := app.API.MDAttach(me, core.MDesc{
			Region: buf, Threshold: core.ThresholdInfinite,
			Options: core.MDOpPut | core.MDManageRemote | core.MDEventStartDisable,
			EQ:      eq,
		}, core.Retain); err != nil {
			panic(err)
		}
		sentinels := 0
		for sentinels < len(senders) {
			ev, err := app.API.EQWait(eq)
			if err != nil && err != core.ErrEQDropped {
				panic(err)
			}
			if ev.Type != core.EventPutEnd {
				continue
			}
			if ev.NIFail {
				mu = append(mu, fmt.Sprintf("rx: NIFail from nid %d seq %d", ev.Initiator.Nid, ev.HdrData))
				continue
			}
			fl := flows[ev.Initiator.Nid]
			if fl == nil {
				mu = append(mu, fmt.Sprintf("rx: message from unexpected nid %d", ev.Initiator.Nid))
				continue
			}
			if ev.MLength == 1 {
				sentinels++
				continue
			}
			if ev.HdrData != fl.next {
				mu = append(mu, fmt.Sprintf("rx: nid %d out of order: got seq %d want %d", ev.Initiator.Nid, ev.HdrData, fl.next))
			}
			fl.next = ev.HdrData + 1
			data := make([]byte, ev.MLength)
			buf.ReadAt(ev.Offset, data)
			wantFill := fillByte(ev.Initiator.Nid, ev.HdrData)
			for _, v := range data {
				if v != wantFill {
					mu = append(mu, fmt.Sprintf("rx: nid %d seq %d corrupted: byte %#x want %#x", ev.Initiator.Nid, ev.HdrData, v, wantFill))
					break
				}
			}
			received++
		}
	})
	for i, s := range senders {
		s := s
		slot := i
		fl := flows[uint32(s)]
		m.Spawn(s, fmt.Sprintf("soak-tx-%d", s), machine.Generic, func(app *machine.App) {
			app.Proc.Sleep(50 * sim.Microsecond)
			eq, err := app.API.EQAlloc(8192)
			if err != nil {
				panic(err)
			}
			src := app.Alloc(B)
			md, err := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite,
				Options: core.MDEventStartDisable, EQ: eq})
			if err != nil {
				panic(err)
			}
			for seq := uint64(0); app.Proc.Now() < until; seq++ {
				src.WriteAt(0, fill(B, fillByte(uint32(s), seq)))
				if err := app.API.PutRegion(md, 0, B, core.NoAck, rx.ID(),
					soakPtl, soakMatch, slot*B, seq); err != nil {
					panic(err)
				}
				waitSendEnd(app, eq)
				fl.sent++
			}
			src.WriteAt(0, []byte{0xff})
			if err := app.API.PutRegion(md, 0, 1, core.NoAck, rx.ID(),
				soakPtl, soakMatch, slot*B, ^uint64(0)); err != nil {
				panic(err)
			}
			waitSendEnd(app, eq)
		})
	}
	if w := stallWindow(sched); w > 0 {
		m.StartStallDetector(w)
	}
	m.Run()

	res.Msgs = received
	sent := 0
	ids := make([]uint32, 0, len(flows))
	for nid := range flows {
		ids = append(ids, nid)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, nid := range ids {
		fl := flows[nid]
		sent += fl.sent
		if int(fl.next) != fl.sent {
			mu = append(mu, fmt.Sprintf("nid %d: sent %d messages, receiver saw %d", nid, fl.sent, fl.next))
		}
	}
	if received != sent {
		mu = append(mu, fmt.Sprintf("delivered %d of %d messages", received, sent))
	}
	res.Errors = append(res.Errors, mu...)
	audit(m, res)
	res.HostProfile = m.HostProfile()
}

// fillByte is the uniform fill of message seq from sender nid — a pure
// function any observer can recompute.
func fillByte(nid uint32, seq uint64) byte {
	return byte(nid<<4) | byte(seq%13+1)
}

func fill(n int, v byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = v
	}
	return b
}

// waitSendEnd consumes events until the put's SEND_END arrives.
func waitSendEnd(app *machine.App, eq core.EQHandle) {
	for {
		ev, err := app.API.EQWait(eq)
		if err != nil && err != core.ErrEQDropped {
			panic(err)
		}
		if ev.Type == core.EventSendEnd {
			return
		}
	}
}
