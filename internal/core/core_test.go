package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"portals3/internal/sim"
	"portals3/internal/wire"
)

// loopNet is a zero-latency NAL stand-in: it delivers every SendReq
// synchronously to the destination library, moving real bytes. It lets the
// Portals semantics be tested in isolation from the hardware model.
type loopNet struct {
	s    *sim.Sim
	libs map[ProcessID]*Lib
	// failNext marks the next delivery as a CRC failure.
	failNext bool
	// sent records every request for inspection.
	sent []*SendReq
}

func newLoopNet() *loopNet {
	return &loopNet{s: sim.New(), libs: make(map[ProcessID]*Lib)}
}

type loopBackend struct {
	net *loopNet
	lib *Lib // set after NewLib
}

func (b *loopBackend) Distance(nid uint32) int { return 1 }

func (b *loopBackend) Send(req *SendReq) {
	b.net.sent = append(b.net.sent, req)
	b.net.deliver(b.lib, req)
}

func (n *loopNet) addLib(id ProcessID) *Lib {
	be := &loopBackend{net: n}
	l := NewLib(n.s, id, 1000+id.Pid, Limits{}, be)
	be.lib = l
	n.libs[id] = l
	return l
}

// deliver plays the NAL driver role for one message.
func (n *loopNet) deliver(src *Lib, req *SendReq) {
	dst, ok := n.libs[ProcessID{req.Hdr.DstNid, req.Hdr.DstPid}]
	if !ok {
		return // undeliverable: vanish, like a real network drop
	}
	failed := n.failNext
	n.failNext = false
	switch req.Hdr.Type {
	case wire.TypePut:
		op := dst.ReceivePut(&req.Hdr)
		if !op.Drop {
			buf := make([]byte, op.MLen)
			req.Region.ReadAt(req.Off, buf)
			if failed {
				buf[0] ^= 0xFF
			}
			op.Region.WriteAt(op.Off, buf)
			if ack := dst.Delivered(op, !failed); ack != nil {
				n.deliver(dst, ack)
			}
		}
		src.SendDone(req, true)
	case wire.TypeGet:
		op := dst.ReceiveGet(&req.Hdr)
		if !op.Drop {
			n.deliver(dst, op.Reply)
			dst.ReplySent(op)
		}
	case wire.TypeReply:
		op := dst.ReceiveReply(&req.Hdr)
		if !op.Drop {
			buf := make([]byte, op.MLen)
			req.Region.ReadAt(req.Off, buf)
			op.Region.WriteAt(op.Off, buf)
			dst.Delivered(op, !failed)
		}
	case wire.TypeAck:
		dst.ReceiveAck(&req.Hdr)
	}
}

// pair builds two processes on nodes 0 and 1.
func pair(t *testing.T) (*loopNet, *Lib, *Lib) {
	t.Helper()
	n := newLoopNet()
	a := n.addLib(ProcessID{0, 1})
	b := n.addLib(ProcessID{1, 1})
	return n, a, b
}

// postedTypes drains an EQ into a list of event types.
func postedTypes(t *testing.T, l *Lib, eq EQHandle) []EventType {
	t.Helper()
	var out []EventType
	for {
		ev, err := l.EQGet(eq)
		if err == ErrEQEmpty {
			return out
		}
		if err != nil && err != ErrEQDropped {
			t.Fatalf("EQGet: %v", err)
		}
		out = append(out, ev.Type)
		if err == ErrEQDropped && ev.Type == 0 && ev.Sequence == 0 {
			return out
		}
	}
}

// target sets up the standard receive side: an ME matching bits on ptl 4
// with an MD over a fresh buffer. Returns the buffer, eq and md handle.
func target(t *testing.T, l *Lib, size int, bits uint64, opts MDOptions) ([]byte, EQHandle, MDHandle) {
	t.Helper()
	eq, err := l.EQAlloc(64)
	if err != nil {
		t.Fatal(err)
	}
	meh, err := l.MEAttach(4, ProcessID{NidAny, PidAny}, bits, 0, Retain, After)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, size)
	mdh, err := l.MDAttach(meh, MDesc{Region: SliceRegion(buf), Threshold: ThresholdInfinite, Options: opts, EQ: eq}, Retain)
	if err != nil {
		t.Fatal(err)
	}
	return buf, eq, mdh
}

// sender binds a free-floating MD over data with an EQ.
func sender(t *testing.T, l *Lib, data []byte) (EQHandle, MDHandle) {
	t.Helper()
	eq, err := l.EQAlloc(64)
	if err != nil {
		t.Fatal(err)
	}
	mdh, err := l.MDBind(MDesc{Region: SliceRegion(data), Threshold: ThresholdInfinite, EQ: eq})
	if err != nil {
		t.Fatal(err)
	}
	return eq, mdh
}

func TestPutMovesBytesAndPostsEvents(t *testing.T) {
	_, a, b := pair(t)
	dst, beq, _ := target(t, b, 64, 0x42, MDOpPut)
	src := []byte("the portals message body")
	aeq, amd := sender(t, a, src)

	if err := a.Put(amd, NoAck, b.ID(), 4, 0x42, 0, 0xfeed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst[:len(src)], src) {
		t.Errorf("payload mismatch: %q", dst[:len(src)])
	}
	got := postedTypes(t, a, aeq)
	if len(got) != 2 || got[0] != EventSendStart || got[1] != EventSendEnd {
		t.Errorf("initiator events = %v, want [SEND_START SEND_END]", got)
	}
	ev, err := b.EQGet(beq)
	if err != nil || ev.Type != EventPutStart {
		t.Fatalf("first target event %v err %v", ev.Type, err)
	}
	ev, err = b.EQGet(beq)
	if err != nil || ev.Type != EventPutEnd {
		t.Fatalf("second target event %v err %v", ev.Type, err)
	}
	if ev.MLength != len(src) || ev.RLength != len(src) || ev.HdrData != 0xfeed {
		t.Errorf("PUT_END fields: mlen=%d rlen=%d hdr=%#x", ev.MLength, ev.RLength, ev.HdrData)
	}
	if ev.Initiator != a.ID() {
		t.Errorf("initiator = %v", ev.Initiator)
	}
	if a.Status(SRSendCount) != 1 || b.Status(SRRecvCount) != 1 {
		t.Error("status registers not updated")
	}
	if b.Status(SRRecvLength) != uint64(len(src)) {
		t.Errorf("SRRecvLength = %d", b.Status(SRRecvLength))
	}
}

func TestPutWithAck(t *testing.T) {
	_, a, b := pair(t)
	target(t, b, 64, 7, MDOpPut)
	aeq, amd := sender(t, a, make([]byte, 16))
	if err := a.Put(amd, Ack, b.ID(), 4, 7, 0, 0); err != nil {
		t.Fatal(err)
	}
	got := postedTypes(t, a, aeq)
	want := map[EventType]bool{EventSendStart: false, EventSendEnd: false, EventAck: false}
	for _, g := range got {
		want[g] = true
	}
	for ty, seen := range want {
		if !seen {
			t.Errorf("missing initiator event %v (got %v)", ty, got)
		}
	}
}

func TestAckDisableSuppressesAck(t *testing.T) {
	_, a, b := pair(t)
	target(t, b, 64, 7, MDOpPut|MDAckDisable)
	aeq, amd := sender(t, a, make([]byte, 16))
	if err := a.Put(amd, Ack, b.ID(), 4, 7, 0, 0); err != nil {
		t.Fatal(err)
	}
	for _, g := range postedTypes(t, a, aeq) {
		if g == EventAck {
			t.Error("ACK event posted despite MDAckDisable")
		}
	}
}

func TestMatchingFirstEntryWins(t *testing.T) {
	_, a, b := pair(t)
	eq, _ := b.EQAlloc(16)
	buf1, buf2 := make([]byte, 32), make([]byte, 32)
	me1, _ := b.MEAttach(4, ProcessID{NidAny, PidAny}, 5, 0, Retain, After)
	b.MDAttach(me1, MDesc{Region: SliceRegion(buf1), Threshold: ThresholdInfinite, Options: MDOpPut, EQ: eq}, Retain)
	me2, _ := b.MEAttach(4, ProcessID{NidAny, PidAny}, 5, 0, Retain, After)
	b.MDAttach(me2, MDesc{Region: SliceRegion(buf2), Threshold: ThresholdInfinite, Options: MDOpPut, EQ: eq}, Retain)

	_, amd := sender(t, a, []byte{9, 9, 9})
	a.Put(amd, NoAck, b.ID(), 4, 5, 0, 0)
	if buf1[0] != 9 {
		t.Error("first matching entry did not receive the message")
	}
	if buf2[0] == 9 {
		t.Error("second entry stole the message")
	}
}

func TestIgnoreBits(t *testing.T) {
	_, a, b := pair(t)
	buf, _, _ := func() ([]byte, EQHandle, MDHandle) {
		eq, _ := b.EQAlloc(16)
		meh, _ := b.MEAttach(4, ProcessID{NidAny, PidAny}, 0xAB00, 0x00FF, Retain, After)
		buf := make([]byte, 32)
		mdh, _ := b.MDAttach(meh, MDesc{Region: SliceRegion(buf), Threshold: ThresholdInfinite, Options: MDOpPut, EQ: eq}, Retain)
		return buf, eq, mdh
	}()
	_, amd := sender(t, a, []byte{1})
	// Low byte is ignored: 0xAB37 matches 0xAB00/ignore 0x00FF.
	a.Put(amd, NoAck, b.ID(), 4, 0xAB37, 0, 0)
	if buf[0] != 1 {
		t.Error("ignore bits not honored")
	}
	// High bits differ: no match.
	before := b.DropCounts[DropNoMatch]
	a.Put(amd, NoAck, b.ID(), 4, 0xAC37, 0, 0)
	if b.DropCounts[DropNoMatch] != before+1 {
		t.Error("mismatching bits were accepted")
	}
}

func TestSourceMatching(t *testing.T) {
	n := newLoopNet()
	a := n.addLib(ProcessID{0, 1})
	b := n.addLib(ProcessID{1, 1})
	c := n.addLib(ProcessID{2, 1})
	eq, _ := b.EQAlloc(16)
	// Only process a (node 0 pid 1) may match.
	meh, _ := b.MEAttach(4, a.ID(), 1, 0, Retain, After)
	buf := make([]byte, 8)
	b.MDAttach(meh, MDesc{Region: SliceRegion(buf), Threshold: ThresholdInfinite, Options: MDOpPut, EQ: eq}, Retain)

	_, cmd := sender(t, c, []byte{5})
	c.Put(cmd, NoAck, b.ID(), 4, 1, 0, 0)
	if b.DropCounts[DropNoMatch] != 1 {
		t.Error("foreign sender was not rejected by source matching")
	}
	_, amd := sender(t, a, []byte{6})
	a.Put(amd, NoAck, b.ID(), 4, 1, 0, 0)
	if buf[0] != 6 {
		t.Error("authorized sender was rejected")
	}
}

func TestACLDenies(t *testing.T) {
	_, a, b := pair(t)
	target(t, b, 32, 1, MDOpPut)
	// Replace the permissive default with an entry for a different uid.
	if err := b.ACEntry(0, 424242, ProcessID{NidAny, PidAny}, PtlIndexAny); err != nil {
		t.Fatal(err)
	}
	_, amd := sender(t, a, []byte{1})
	a.Put(amd, NoAck, b.ID(), 4, 1, 0, 0)
	if b.DropCounts[DropACDenied] != 1 {
		t.Error("ACL did not deny the mismatched uid")
	}
	// Restore a permissive entry scoped to portal 4 only.
	b.ACEntry(0, UIDAny, ProcessID{NidAny, PidAny}, 4)
	a.Put(amd, NoAck, b.ID(), 4, 1, 0, 0)
	if b.Status(SRRecvCount) != 1 {
		t.Error("scoped ACL entry did not permit")
	}
}

func TestACLBadIndex(t *testing.T) {
	_, _, b := pair(t)
	if err := b.ACEntry(-1, UIDAny, ProcessID{NidAny, PidAny}, PtlIndexAny); err != ErrAcIndexInvalid {
		t.Errorf("got %v", err)
	}
	if err := b.ACEntry(9999, UIDAny, ProcessID{NidAny, PidAny}, PtlIndexAny); err != ErrAcIndexInvalid {
		t.Errorf("got %v", err)
	}
	if err := b.ACEntry(0, UIDAny, ProcessID{NidAny, PidAny}, 9999); err != ErrPtIndexInvalid {
		t.Errorf("got %v", err)
	}
}

func TestTruncation(t *testing.T) {
	_, a, b := pair(t)
	// 8-byte target, no truncate: 16-byte put drops.
	target(t, b, 8, 1, MDOpPut)
	_, amd := sender(t, a, make([]byte, 16))
	a.Put(amd, NoAck, b.ID(), 4, 1, 0, 0)
	if b.DropCounts[DropNoFit] != 1 {
		t.Error("oversized put without truncate was not dropped")
	}
	// With truncate: delivered, mlength == 8.
	buf, eq, _ := target(t, b, 8, 2, MDOpPut|MDTruncate)
	src := []byte("0123456789abcdef")
	_, amd2 := sender(t, a, src)
	a.Put(amd2, NoAck, b.ID(), 4, 2, 0, 0)
	if !bytes.Equal(buf, src[:8]) {
		t.Errorf("truncated payload wrong: %q", buf)
	}
	var end Event
	for {
		ev, err := b.EQGet(eq)
		if err != nil {
			t.Fatal("no PUT_END")
		}
		if ev.Type == EventPutEnd {
			end = ev
			break
		}
	}
	if end.MLength != 8 || end.RLength != 16 {
		t.Errorf("mlen=%d rlen=%d, want 8/16", end.MLength, end.RLength)
	}
}

func TestLocallyManagedOffsetAdvances(t *testing.T) {
	_, a, b := pair(t)
	buf, _, _ := target(t, b, 32, 1, MDOpPut)
	_, amd := sender(t, a, []byte("AAAA"))
	a.Put(amd, NoAck, b.ID(), 4, 1, 0, 0)
	_, amd2 := sender(t, a, []byte("BBBB"))
	a.Put(amd2, NoAck, b.ID(), 4, 1, 0, 0)
	if string(buf[:8]) != "AAAABBBB" {
		t.Errorf("local offset did not advance: %q", buf[:8])
	}
}

func TestRemoteManagedOffset(t *testing.T) {
	_, a, b := pair(t)
	buf, _, _ := target(t, b, 32, 1, MDOpPut|MDManageRemote)
	_, amd := sender(t, a, []byte("XY"))
	a.Put(amd, NoAck, b.ID(), 4, 1, 16, 0)
	if string(buf[16:18]) != "XY" {
		t.Errorf("remote offset ignored: %q", buf[14:20])
	}
	// Same offset again: overwrites, does not advance.
	_, amd2 := sender(t, a, []byte("ZW"))
	a.Put(amd2, NoAck, b.ID(), 4, 1, 16, 0)
	if string(buf[16:18]) != "ZW" {
		t.Errorf("remote offset rewrite failed: %q", buf[16:18])
	}
}

func TestThresholdExhaustionDrops(t *testing.T) {
	_, a, b := pair(t)
	eq, _ := b.EQAlloc(16)
	meh, _ := b.MEAttach(4, ProcessID{NidAny, PidAny}, 1, 0, Retain, After)
	buf := make([]byte, 32)
	b.MDAttach(meh, MDesc{Region: SliceRegion(buf), Threshold: 1, Options: MDOpPut, EQ: eq}, Retain)

	_, amd := sender(t, a, []byte{1})
	a.Put(amd, NoAck, b.ID(), 4, 1, 0, 0)
	_, amd2 := sender(t, a, []byte{2})
	a.Put(amd2, NoAck, b.ID(), 4, 1, 0, 0)
	if b.DropCounts[DropThreshold] != 1 {
		t.Errorf("threshold drops = %d, want 1", b.DropCounts[DropThreshold])
	}
}

func TestAutoUnlinkOnThreshold(t *testing.T) {
	_, a, b := pair(t)
	eq, _ := b.EQAlloc(16)
	meh, _ := b.MEAttach(4, ProcessID{NidAny, PidAny}, 1, 0, UnlinkAuto, After)
	buf := make([]byte, 32)
	b.MDAttach(meh, MDesc{Region: SliceRegion(buf), Threshold: 1, Options: MDOpPut, EQ: eq}, UnlinkAuto)

	_, amd := sender(t, a, []byte{1})
	a.Put(amd, NoAck, b.ID(), 4, 1, 0, 0)
	list, _ := b.MEList(4)
	if len(list) != 0 {
		t.Errorf("match list should be empty after auto unlink, has %d", len(list))
	}
	// The PUT_END event must carry the Unlinked flag.
	var sawUnlinkedEnd bool
	for {
		ev, err := b.EQGet(eq)
		if err != nil {
			break
		}
		if ev.Type == EventPutEnd && ev.Unlinked {
			sawUnlinkedEnd = true
		}
	}
	if !sawUnlinkedEnd {
		t.Error("PUT_END did not carry Unlinked")
	}
}

func TestRetainKeepsEntryLinked(t *testing.T) {
	_, a, b := pair(t)
	eq, _ := b.EQAlloc(16)
	meh, _ := b.MEAttach(4, ProcessID{NidAny, PidAny}, 1, 0, Retain, After)
	buf := make([]byte, 32)
	b.MDAttach(meh, MDesc{Region: SliceRegion(buf), Threshold: 1, Options: MDOpPut, EQ: eq}, Retain)
	_, amd := sender(t, a, []byte{1})
	a.Put(amd, NoAck, b.ID(), 4, 1, 0, 0)
	list, _ := b.MEList(4)
	if len(list) != 1 {
		t.Errorf("Retain descriptor should stay linked, list=%d", len(list))
	}
}

func TestMaxSizeUnlinkRule(t *testing.T) {
	_, a, b := pair(t)
	eq, _ := b.EQAlloc(16)
	meh, _ := b.MEAttach(4, ProcessID{NidAny, PidAny}, 1, 0, UnlinkAuto, After)
	buf := make([]byte, 10)
	b.MDAttach(meh, MDesc{Region: SliceRegion(buf), Threshold: ThresholdInfinite,
		MaxSize: 8, Options: MDOpPut | MDMaxSize, EQ: eq}, UnlinkAuto)
	// A 4-byte put leaves 6 < MaxSize=8: the descriptor must unlink.
	_, amd := sender(t, a, make([]byte, 4))
	a.Put(amd, NoAck, b.ID(), 4, 1, 0, 0)
	list, _ := b.MEList(4)
	if len(list) != 0 {
		t.Error("max_size rule did not unlink the descriptor")
	}
}

func TestGetMovesBytesBothSidesEvents(t *testing.T) {
	_, a, b := pair(t)
	src := []byte("target-resident data.")
	eqB, _ := b.EQAlloc(16)
	meh, _ := b.MEAttach(4, ProcessID{NidAny, PidAny}, 3, 0, Retain, After)
	b.MDAttach(meh, MDesc{Region: SliceRegion(src), Threshold: ThresholdInfinite, Options: MDOpGet, EQ: eqB}, Retain)

	dst := make([]byte, len(src))
	eqA, amd := sender(t, a, dst)
	if err := a.Get(amd, b.ID(), 4, 3, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, src) {
		t.Errorf("get returned %q", dst)
	}
	gotA := postedTypes(t, a, eqA)
	if len(gotA) != 2 || gotA[0] != EventReplyStart || gotA[1] != EventReplyEnd {
		t.Errorf("initiator events = %v", gotA)
	}
	gotB := postedTypes(t, b, eqB)
	if len(gotB) != 2 || gotB[0] != EventGetStart || gotB[1] != EventGetEnd {
		t.Errorf("target events = %v", gotB)
	}
}

func TestGetRegionDepositsAtLocalOffset(t *testing.T) {
	_, a, b := pair(t)
	src := []byte("ABCDEFGH")
	meh, _ := b.MEAttach(4, ProcessID{NidAny, PidAny}, 3, 0, Retain, After)
	b.MDAttach(meh, MDesc{Region: SliceRegion(src), Threshold: ThresholdInfinite, Options: MDOpGet | MDManageRemote}, Retain)

	dst := make([]byte, 16)
	_, amd := sender(t, a, dst)
	// Fetch 4 bytes from remote offset 2 into local offset 10.
	if err := a.GetRegion(amd, 10, 4, b.ID(), 4, 3, 2); err != nil {
		t.Fatal(err)
	}
	if string(dst[10:14]) != "CDEF" {
		t.Errorf("GetRegion deposit wrong: %q", dst)
	}
}

func TestGetOnPutOnlyMDDropsWrongOp(t *testing.T) {
	_, a, b := pair(t)
	target(t, b, 16, 3, MDOpPut)
	dst := make([]byte, 8)
	_, amd := sender(t, a, dst)
	a.Get(amd, b.ID(), 4, 3, 0)
	if b.DropCounts[DropWrongOp] != 1 {
		t.Error("get against put-only MD was not rejected")
	}
}

func TestReplyToDeadMDDropped(t *testing.T) {
	_, a, b := pair(t)
	// Forge a reply naming a bogus MD handle.
	hdr := wire.Header{Type: wire.TypeReply, SrcNid: b.ID().Nid, SrcPid: b.ID().Pid,
		DstNid: a.ID().Nid, DstPid: a.ID().Pid, MDHandle: InvalidHandle, Length: 4}
	op := a.ReceiveReply(&hdr)
	if !op.Drop || op.Reason != DropBadHandle {
		t.Errorf("reply to dead MD: drop=%v reason=%v", op.Drop, op.Reason)
	}
}

func TestEQOverflowDropsAndPoisons(t *testing.T) {
	_, a, b := pair(t)
	eq, _ := b.EQAlloc(2)
	meh, _ := b.MEAttach(4, ProcessID{NidAny, PidAny}, 1, 0, Retain, After)
	buf := make([]byte, 64)
	b.MDAttach(meh, MDesc{Region: SliceRegion(buf), Threshold: ThresholdInfinite,
		Options: MDOpPut | MDEventStartDisable, EQ: eq}, Retain)
	for i := 0; i < 4; i++ {
		_, amd := sender(t, a, []byte{byte(i)})
		a.Put(amd, NoAck, b.ID(), 4, 1, 0, 0)
	}
	// Two events fit; two were dropped. First get succeeds, and the
	// dropped state must surface as ErrEQDropped exactly once.
	sawDropped := false
	got := 0
	for {
		_, err := b.EQGet(eq)
		if err == ErrEQEmpty {
			break
		}
		if err == ErrEQDropped {
			sawDropped = true
		} else if err != nil {
			t.Fatal(err)
		}
		got++
	}
	if got != 2 || !sawDropped {
		t.Errorf("got %d events, dropped=%v; want 2 events and a dropped flag", got, sawDropped)
	}
}

func TestEventStartEndDisable(t *testing.T) {
	_, a, b := pair(t)
	_, eq, _ := target(t, b, 16, 1, MDOpPut|MDEventStartDisable)
	_, amd := sender(t, a, []byte{1})
	a.Put(amd, NoAck, b.ID(), 4, 1, 0, 0)
	got := postedTypes(t, b, eq)
	if len(got) != 1 || got[0] != EventPutEnd {
		t.Errorf("events with START disabled: %v", got)
	}
	_, eq2, _ := target(t, b, 16, 2, MDOpPut|MDEventEndDisable)
	a.Put(amd, NoAck, b.ID(), 4, 2, 0, 0)
	got2 := postedTypes(t, b, eq2)
	if len(got2) != 1 || got2[0] != EventPutStart {
		t.Errorf("events with END disabled: %v", got2)
	}
}

func TestMEInsertOrdering(t *testing.T) {
	_, _, b := pair(t)
	m1, _ := b.MEAttach(4, ProcessID{NidAny, PidAny}, 1, 0, Retain, After)
	m2, _ := b.MEInsert(m1, ProcessID{NidAny, PidAny}, 2, 0, Retain, Before)
	m3, _ := b.MEInsert(m1, ProcessID{NidAny, PidAny}, 3, 0, Retain, After)
	m4, _ := b.MEAttach(4, ProcessID{NidAny, PidAny}, 4, 0, Retain, Before)
	list, _ := b.MEList(4)
	want := []MEHandle{m4, m2, m1, m3}
	if len(list) != 4 {
		t.Fatalf("list len %d", len(list))
	}
	for i := range want {
		if list[i] != want[i] {
			t.Fatalf("order %v, want %v", list, want)
		}
	}
}

func TestMEUnlinkCascadesToMD(t *testing.T) {
	_, _, b := pair(t)
	meh, _ := b.MEAttach(4, ProcessID{NidAny, PidAny}, 1, 0, Retain, After)
	mdh, _ := b.MDAttach(meh, MDesc{Region: SliceRegion(make([]byte, 8)), Threshold: ThresholdInfinite, Options: MDOpPut}, Retain)
	if err := b.MEUnlink(meh); err != nil {
		t.Fatal(err)
	}
	if err := b.MDUnlink(mdh); err != ErrInvalidHandle {
		t.Errorf("MD should have been destroyed with its ME, got %v", err)
	}
	if err := b.MEUnlink(meh); err != ErrInvalidHandle {
		t.Errorf("double unlink should fail, got %v", err)
	}
}

func TestMDAttachRefusesSecond(t *testing.T) {
	_, _, b := pair(t)
	meh, _ := b.MEAttach(4, ProcessID{NidAny, PidAny}, 1, 0, Retain, After)
	b.MDAttach(meh, MDesc{Region: SliceRegion(make([]byte, 8)), Threshold: ThresholdInfinite}, Retain)
	_, err := b.MDAttach(meh, MDesc{Region: SliceRegion(make([]byte, 8)), Threshold: ThresholdInfinite}, Retain)
	if err != ErrMEInUse {
		t.Errorf("second MDAttach: %v", err)
	}
}

func TestMDUpdateConditional(t *testing.T) {
	_, a, b := pair(t)
	_, eq, mdh := target(t, b, 16, 1, MDOpPut)
	// Non-empty EQ: conditional update must fail.
	_, amd := sender(t, a, []byte{1})
	a.Put(amd, NoAck, b.ID(), 4, 1, 0, 0)
	newDesc := MDesc{Region: SliceRegion(make([]byte, 32)), Threshold: ThresholdInfinite, Options: MDOpPut, EQ: eq}
	if err := b.MDUpdate(mdh, nil, &newDesc, eq); err != ErrMDNoUpdate {
		t.Errorf("conditional update on busy EQ: %v", err)
	}
	// Drain and retry.
	postedTypes(t, b, eq)
	var old MDesc
	if err := b.MDUpdate(mdh, &old, &newDesc, eq); err != nil {
		t.Errorf("conditional update on empty EQ: %v", err)
	}
	if old.Region.Len() != 16 {
		t.Errorf("old desc not returned, len=%d", old.Region.Len())
	}
}

func TestMDIllegalDescriptors(t *testing.T) {
	_, _, b := pair(t)
	if _, err := b.MDBind(MDesc{Threshold: ThresholdInfinite}); err != ErrMDIllegal {
		t.Errorf("nil region: %v", err)
	}
	if _, err := b.MDBind(MDesc{Region: SliceRegion(nil), Threshold: -5}); err != ErrMDIllegal {
		t.Errorf("bad threshold: %v", err)
	}
	if _, err := b.MDBind(MDesc{Region: SliceRegion(nil), Threshold: 1, Options: MDMaxSize}); err != ErrMDIllegal {
		t.Errorf("max_size without value: %v", err)
	}
	if _, err := b.MDBind(MDesc{Region: SliceRegion(nil), Threshold: 1, EQ: EQHandle(12345)}); err != ErrInvalidHandle {
		t.Errorf("bogus EQ: %v", err)
	}
}

func TestStaleHandlesRejected(t *testing.T) {
	_, _, b := pair(t)
	eq, _ := b.EQAlloc(4)
	if err := b.EQFree(eq); err != nil {
		t.Fatal(err)
	}
	if _, err := b.EQGet(eq); err != ErrInvalidHandle {
		t.Errorf("freed EQ: %v", err)
	}
	mdh, _ := b.MDBind(MDesc{Region: SliceRegion(make([]byte, 4)), Threshold: 1})
	b.MDUnlink(mdh)
	if err := b.MDUnlink(mdh); err != ErrInvalidHandle {
		t.Errorf("double MDUnlink: %v", err)
	}
}

func TestPutRegionBounds(t *testing.T) {
	_, a, b := pair(t)
	_, amd := sender(t, a, make([]byte, 8))
	if err := a.PutRegion(amd, 4, 8, NoAck, b.ID(), 4, 1, 0, 0); err != ErrSegv {
		t.Errorf("out of range PutRegion: %v", err)
	}
	if err := a.PutRegion(amd, -1, 2, NoAck, b.ID(), 4, 1, 0, 0); err != ErrSegv {
		t.Errorf("negative offset: %v", err)
	}
	if err := a.Put(amd, NoAck, ProcessID{NidAny, 0}, 4, 1, 0, 0); err != ErrProcessInvalid {
		t.Errorf("wildcard target: %v", err)
	}
}

func TestBadPortalIndexDrops(t *testing.T) {
	_, a, b := pair(t)
	_, amd := sender(t, a, []byte{1})
	hdr := wire.Header{Type: wire.TypePut, SrcNid: a.ID().Nid, SrcPid: a.ID().Pid,
		DstNid: b.ID().Nid, DstPid: b.ID().Pid, PtlIndex: 255, Length: 1, MDHandle: uint32(amd)}
	op := b.ReceivePut(&hdr)
	if !op.Drop || op.Reason != DropNoPtlEntry {
		t.Errorf("bad portal index: drop=%v reason=%v", op.Drop, op.Reason)
	}
}

func TestCRCFailureSurfacesAsNIFail(t *testing.T) {
	n, a, b := pair(t)
	_, eq, _ := target(t, b, 16, 1, MDOpPut|MDEventStartDisable)
	_, amd := sender(t, a, []byte("good"))
	n.failNext = true
	a.Put(amd, NoAck, b.ID(), 4, 1, 0, 0)
	ev, err := b.EQGet(eq)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.NIFail {
		t.Error("PUT_END after CRC failure must carry NIFail")
	}
	if b.Status(SRCrcErrors) != 1 {
		t.Errorf("SRCrcErrors = %d", b.Status(SRCrcErrors))
	}
}

func TestWalkedCountsEntries(t *testing.T) {
	_, a, b := pair(t)
	for i := 0; i < 5; i++ {
		b.MEAttach(4, ProcessID{NidAny, PidAny}, uint64(100+i), 0, Retain, After)
	}
	buf, _, _ := target(t, b, 8, 999, MDOpPut)
	_ = buf
	hdr := wire.Header{Type: wire.TypePut, SrcNid: a.ID().Nid, SrcPid: a.ID().Pid,
		DstNid: b.ID().Nid, DstPid: b.ID().Pid, PtlIndex: 4, MatchBits: 999, Length: 0}
	op := b.ReceivePut(&hdr)
	if op.Drop {
		t.Fatalf("dropped: %v", op.Reason)
	}
	if op.Walked != 6 {
		t.Errorf("walked %d entries, want 6", op.Walked)
	}
	b.Delivered(op, true)
}

func TestMatchRuleProperty(t *testing.T) {
	// The matching rule must equal the reference predicate:
	// every bit position either ignored or equal.
	f := func(mbits, ibits, hbits uint64) bool {
		e := &me{matchBits: mbits, ignoreBits: ibits, matchID: ProcessID{NidAny, PidAny}}
		got := e.matches(hbits, ProcessID{1, 2})
		want := true
		for bit := 0; bit < 64; bit++ {
			mask := uint64(1) << bit
			if ibits&mask != 0 {
				continue
			}
			if mbits&mask != hbits&mask {
				want = false
				break
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestLocalOffsetStreamProperty(t *testing.T) {
	// Property: any sequence of accepted locally-managed puts deposits
	// back-to-back with no gaps or overlaps, exactly like a stream.
	f := func(sizes []uint8) bool {
		_, a, b := pair(t)
		total := 0
		for _, s := range sizes {
			total += int(s)
		}
		if total == 0 {
			return true
		}
		buf, _, _ := target(t, b, total, 1, MDOpPut)
		expect := make([]byte, 0, total)
		seq := byte(1)
		for _, s := range sizes {
			n := int(s)
			if n == 0 {
				continue
			}
			chunk := bytes.Repeat([]byte{seq}, n)
			expect = append(expect, chunk...)
			seq++
			_, amd := sender(t, a, chunk)
			if err := a.Put(amd, NoAck, b.ID(), 4, 1, 0, 0); err != nil {
				return false
			}
		}
		return bytes.Equal(buf[:len(expect)], expect)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDistanceDelegates(t *testing.T) {
	_, a, _ := pair(t)
	if a.Distance(5) != 1 {
		t.Error("NIDist should delegate to the backend")
	}
}

func TestEQFreeWakesWaiters(t *testing.T) {
	n, _, b := pair(t)
	eq, _ := b.EQAlloc(4)
	q, _ := b.EQ(eq)
	woke := false
	q.Signal().Notify(func() { woke = true })
	b.EQFree(eq)
	n.s.Run()
	if !woke {
		t.Error("EQFree must wake blocked waiters")
	}
}

func TestLimitsEnforced(t *testing.T) {
	s := sim.New()
	be := &loopBackend{net: newLoopNet()}
	l := NewLib(s, ProcessID{0, 1}, 0, Limits{MaxEQs: 1, MaxMEs: 2, MaxMDs: 1, MaxMEList: 2}, be)
	be.lib = l
	if _, err := l.EQAlloc(4); err != nil {
		t.Fatal(err)
	}
	if _, err := l.EQAlloc(4); err != ErrNoSpace {
		t.Errorf("EQ limit: %v", err)
	}
	m1, _ := l.MEAttach(0, ProcessID{NidAny, PidAny}, 0, 0, Retain, After)
	if _, err := l.MEAttach(0, ProcessID{NidAny, PidAny}, 0, 0, Retain, After); err != nil {
		t.Fatal(err)
	}
	if _, err := l.MEAttach(0, ProcessID{NidAny, PidAny}, 0, 0, Retain, After); err != ErrMEListTooLong {
		t.Errorf("ME list limit: %v", err)
	}
	if _, err := l.MDAttach(m1, MDesc{Region: SliceRegion(make([]byte, 1)), Threshold: 1}, Retain); err != nil {
		t.Fatal(err)
	}
	if _, err := l.MDBind(MDesc{Region: SliceRegion(make([]byte, 1)), Threshold: 1}); err != ErrNoSpace {
		t.Errorf("MD limit: %v", err)
	}
}

func TestHandleTableChurnProperty(t *testing.T) {
	// Property: allocate/release churn never confuses handles — a released
	// handle is always invalid, a live one always resolves to its value.
	f := func(ops []bool) bool {
		tab := newTable[int](64)
		live := make(map[uint32]*int)
		var order []uint32
		for i, alloc := range ops {
			if alloc || len(order) == 0 {
				v := new(int)
				*v = i
				h, err := tab.alloc(v)
				if err != nil {
					continue
				}
				live[h] = v
				order = append(order, h)
			} else {
				h := order[0]
				order = order[1:]
				if !tab.release(h) {
					return false
				}
				delete(live, h)
				if _, ok := tab.get(h); ok {
					return false // stale handle resolved
				}
			}
		}
		for h, v := range live {
			got, ok := tab.get(h)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
