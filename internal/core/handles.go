package core

// Handles are compact 32-bit names for library objects, exactly like the
// ptl_handle_*_t types: they travel in wire headers (a reply carries the
// initiator's MD handle) and across the API/library boundary. A handle packs
// a table index and a generation counter so stale handles are detected, the
// way the reference implementation validates handles crossing from user to
// kernel space.

// MEHandle names a match entry.
type MEHandle uint32

// MDHandle names a memory descriptor.
type MDHandle uint32

// EQHandle names an event queue.
type EQHandle uint32

// InvalidHandle is the PTL_INVALID_HANDLE value for any handle type.
const InvalidHandle = 0xFFFFFFFF

// NoEQ marks a memory descriptor with no event queue (PTL_EQ_NONE).
const NoEQ EQHandle = InvalidHandle

// NoMD is the invalid MD handle constant (PTL_MD_NONE).
const NoMD MDHandle = InvalidHandle

const handleGenShift = 20
const handleIdxMask = 1<<handleGenShift - 1

// Slot indices are stored +1 inside handles so that 0 is never a valid
// handle: the zero value of MDesc.EQ then safely means "no event queue".

// table is a slot table with generation counting; the zero value is unusable,
// create with newTable.
type table[T any] struct {
	vals []*T
	gens []uint32
	free []int
	live int
	max  int
}

func newTable[T any](max int) table[T] {
	return table[T]{max: max}
}

// alloc stores v and returns its packed handle. ErrNoSpace when the pool
// limit is reached.
func (t *table[T]) alloc(v *T) (uint32, error) {
	if t.live >= t.max {
		return InvalidHandle, ErrNoSpace
	}
	var idx int
	if n := len(t.free); n > 0 {
		idx = t.free[n-1]
		t.free = t.free[:n-1]
		t.vals[idx] = v
	} else {
		idx = len(t.vals)
		if idx+1 >= handleIdxMask {
			return InvalidHandle, ErrNoSpace
		}
		t.vals = append(t.vals, v)
		t.gens = append(t.gens, 0)
	}
	t.live++
	return uint32(idx+1) | t.gens[idx]<<handleGenShift, nil
}

// get resolves a handle, reporting false for stale or bogus values.
func (t *table[T]) get(h uint32) (*T, bool) {
	if h == InvalidHandle || h == 0 {
		return nil, false
	}
	idx := int(h&handleIdxMask) - 1
	if idx < 0 || idx >= len(t.vals) || t.vals[idx] == nil || t.gens[idx] != h>>handleGenShift {
		return nil, false
	}
	return t.vals[idx], true
}

// release frees the slot; the generation bump invalidates outstanding
// handles. Releasing a stale handle reports false.
func (t *table[T]) release(h uint32) bool {
	idx := int(h&handleIdxMask) - 1
	if _, ok := t.get(h); !ok {
		return false
	}
	t.vals[idx] = nil
	t.gens[idx] = (t.gens[idx] + 1) & (1<<(32-handleGenShift) - 1)
	t.free = append(t.free, idx)
	t.live--
	return true
}
