package core

import "portals3/internal/wire"

// RxOp is one incoming message in flight at this library: the result of
// matching a header, handed to the NAL driver so it can move the payload,
// then handed back (Delivered / ReplySent) so the library can post events
// and apply unlink rules. This split mirrors the real generic-mode flow:
// the host matches the header, tells the firmware where to put the data,
// and finishes the Portals bookkeeping when the firmware reports
// completion (paper §4.3).
type RxOp struct {
	Hdr    wire.Header
	Drop   bool
	Reason DropReason

	// Delivery target (put/reply) or source (get) within the matched MD.
	Region Region
	Off    int
	MLen   int // manipulated length: bytes to actually move
	RLen   int // requested length from the header

	// Walked counts match entries examined, so the driver can charge
	// per-entry matching cost on whichever processor ran the walk.
	Walked int

	// Reply is the response the driver must transmit (get requests only).
	Reply *SendReq

	m         *md
	evEnd     EventType
	ackNeeded bool
}

// initiator extracts the sender's process id from a header.
func initiator(h *wire.Header) ProcessID {
	return ProcessID{Nid: h.SrcNid, Pid: h.SrcPid}
}

// newRxOp takes a receive operation from the free list, reset and primed
// with the header, or allocates one.
func (l *Lib) newRxOp(hdr *wire.Header) *RxOp {
	if n := len(l.opFree); n > 0 {
		op := l.opFree[n-1]
		l.opFree[n-1] = nil
		l.opFree = l.opFree[:n-1]
		*op = RxOp{Hdr: *hdr, RLen: int(hdr.Length)}
		return op
	}
	return &RxOp{Hdr: *hdr, RLen: int(hdr.Length)}
}

// freeRxOp recycles an operation after its terminal call. The struct is
// reset on reuse, not here, so callers may still read fields they extracted.
func (l *Lib) freeRxOp(op *RxOp) {
	l.opFree = append(l.opFree, op)
}

// newSendReq takes a zeroed send request from the free list or allocates
// one.
func (l *Lib) newSendReq() *SendReq {
	if n := len(l.reqFree); n > 0 {
		r := l.reqFree[n-1]
		l.reqFree[n-1] = nil
		l.reqFree = l.reqFree[:n-1]
		return r
	}
	return &SendReq{}
}

// FreeSendReq returns a send request to the pool. Drivers call it for
// requests with no library completion (gets, acks, and replies after
// ReplySent) once the transmit command has been built; requests that end in
// SendDone are recycled there. Backends that keep requests alive past those
// points (the reference NAL's deferred delivery) simply never call it.
func (l *Lib) FreeSendReq(r *SendReq) {
	*r = SendReq{}
	l.reqFree = append(l.reqFree, r)
}

// ---- Initiator-side operations ----

// Put transmits the descriptor's entire memory to the target (PtlPut).
func (l *Lib) Put(mdh MDHandle, ack AckReq, target ProcessID, ptl int,
	matchBits uint64, remoteOffset int, hdrData uint64) error {
	m, ok := l.mds.get(uint32(mdh))
	if !ok || m.dead {
		return ErrInvalidHandle
	}
	return l.PutRegion(mdh, 0, m.desc.Region.Len(), ack, target, ptl, matchBits, remoteOffset, hdrData)
}

// PutRegion transmits length bytes starting at localOffset (PtlPutRegion).
func (l *Lib) PutRegion(mdh MDHandle, localOffset, length int, ack AckReq,
	target ProcessID, ptl int, matchBits uint64, remoteOffset int, hdrData uint64) error {
	m, ok := l.mds.get(uint32(mdh))
	if !ok || m.dead {
		return ErrInvalidHandle
	}
	if !m.active() {
		return ErrMDInUse
	}
	if localOffset < 0 || length < 0 || localOffset+length > m.desc.Region.Len() {
		return ErrSegv
	}
	if target.Nid == NidAny || target.Pid == PidAny {
		return ErrProcessInvalid
	}
	if remoteOffset < 0 {
		return ErrInvalidArg
	}
	m.consume()
	m.inflight++
	ackReq := uint8(0)
	if ack == Ack {
		ackReq = 1
	}
	hdr := wire.Header{
		Type:      wire.TypePut,
		PtlIndex:  uint8(ptl),
		AckReq:    ackReq,
		SrcNid:    l.id.Nid,
		SrcPid:    l.id.Pid,
		DstNid:    target.Nid,
		DstPid:    target.Pid,
		MatchBits: matchBits,
		Length:    uint32(length),
		Offset:    uint32(remoteOffset),
		MDHandle:  uint32(mdh),
		UID:       l.uid,
		HdrData:   hdrData,
	}
	if q := l.eqFor(m.desc.EQ); q != nil && m.desc.Options&MDEventStartDisable == 0 {
		q.post(Event{Type: EventSendStart, Initiator: l.id, UID: l.uid, PtlIndex: ptl,
			MatchBits: matchBits, RLength: length, MLength: length, Offset: localOffset,
			MD: mdh, User: m.desc.User, HdrData: hdrData})
	}
	l.status[SRSendCount]++
	l.status[SRSendLength] += uint64(length)
	r := l.newSendReq()
	r.Hdr = hdr
	r.Region = m.desc.Region
	r.Off = localOffset
	r.Len = length
	r.MD = mdh
	l.backend.Send(r)
	return nil
}

// Get requests the target's matched memory into this descriptor (PtlGet).
func (l *Lib) Get(mdh MDHandle, target ProcessID, ptl int, matchBits uint64, remoteOffset int) error {
	m, ok := l.mds.get(uint32(mdh))
	if !ok || m.dead {
		return ErrInvalidHandle
	}
	return l.GetRegion(mdh, 0, m.desc.Region.Len(), target, ptl, matchBits, remoteOffset)
}

// GetRegion requests length bytes into the descriptor at localOffset
// (PtlGetRegion). The requested local offset rides the wire in the header's
// HdrData field — gets carry no user header data in Portals 3.3, so the
// field is free — and is echoed back in the reply so the initiator-side
// delivery lands at the right place.
func (l *Lib) GetRegion(mdh MDHandle, localOffset, length int, target ProcessID,
	ptl int, matchBits uint64, remoteOffset int) error {
	m, ok := l.mds.get(uint32(mdh))
	if !ok || m.dead {
		return ErrInvalidHandle
	}
	if !m.active() {
		return ErrMDInUse
	}
	if localOffset < 0 || length < 0 || localOffset+length > m.desc.Region.Len() {
		return ErrSegv
	}
	if target.Nid == NidAny || target.Pid == PidAny {
		return ErrProcessInvalid
	}
	m.consume()
	m.inflight++
	hdr := wire.Header{
		Type:      wire.TypeGet,
		PtlIndex:  uint8(ptl),
		SrcNid:    l.id.Nid,
		SrcPid:    l.id.Pid,
		DstNid:    target.Nid,
		DstPid:    target.Pid,
		MatchBits: matchBits,
		Length:    uint32(length),
		Offset:    uint32(remoteOffset),
		MDHandle:  uint32(mdh),
		UID:       l.uid,
		HdrData:   uint64(localOffset),
	}
	r := l.newSendReq()
	r.Hdr = hdr
	r.MD = mdh
	l.backend.Send(r)
	return nil
}

// SendDone completes the transmit side of a put: the NAL driver calls it
// when the firmware posts the "message transmit complete" event. It posts
// SEND_END, meaning the local buffer is reusable.
func (l *Lib) SendDone(req *SendReq, ok bool) {
	m, alive := l.mds.get(uint32(req.MD))
	if !alive || m.dead {
		return
	}
	m.inflight--
	unlinked := l.maybeAutoUnlink(m)
	if q := l.eqFor(m.desc.EQ); q != nil {
		if m.desc.Options&MDEventEndDisable == 0 {
			q.post(Event{Type: EventSendEnd, Initiator: l.id, UID: l.uid,
				PtlIndex: int(req.Hdr.PtlIndex), MatchBits: req.Hdr.MatchBits,
				RLength: req.Len, MLength: req.Len, Offset: req.Off,
				MD: req.MD, User: m.desc.User, HdrData: req.Hdr.HdrData, NIFail: !ok, Unlinked: unlinked})
		} else if unlinked {
			q.post(Event{Type: EventUnlink, Initiator: l.id, MD: req.MD, User: m.desc.User})
		}
	}
	l.FreeSendReq(req)
}

// ---- Target-side operations ----

// matchWalk finds the first match entry on ptl accepting (bits, src) whose
// memory descriptor can participate. Entries with no descriptor or an
// inactive one (threshold exhausted or zero) are skipped, as the
// specification requires — upper layers depend on this: MPI's race-free
// posted-receive protocol arms a threshold-0 descriptor and activates it
// with a conditional MDUpdate, relying on inactive entries being invisible
// to matching. skipped reports the drop reason of the last skipped
// candidate so diagnostics can distinguish "nothing matched" from
// "matched something exhausted".
func (l *Lib) matchWalk(ptl int, bits uint64, src ProcessID) (e *me, walked int, skipped DropReason) {
	skipped = DropNoMatch
	for e := l.ptable[ptl].head; e != nil; e = e.next {
		walked++
		if !e.matches(bits, src) {
			continue
		}
		if e.md == nil {
			skipped = DropNoMD
			continue
		}
		if !e.md.active() {
			skipped = DropThreshold
			continue
		}
		return e, walked, skipped
	}
	return nil, walked, skipped
}

// receiveTarget performs the target-side checks shared by puts and gets.
func (l *Lib) receiveTarget(hdr *wire.Header, needOp MDOptions) *RxOp {
	op := l.newRxOp(hdr)
	src := initiator(hdr)
	ptl := int(hdr.PtlIndex)
	reject := func(r DropReason) *RxOp {
		op.Drop = true
		op.Reason = r
		l.drop(r)
		return op
	}
	if ptl < 0 || ptl >= len(l.ptable) {
		return reject(DropNoPtlEntry)
	}
	if !l.aclPermits(hdr.UID, src, ptl) {
		return reject(DropACDenied)
	}
	e, walked, skipped := l.matchWalk(ptl, hdr.MatchBits, src)
	op.Walked = walked
	if e == nil {
		return reject(skipped)
	}
	m := e.md
	if m.desc.Options&needOp == 0 {
		return reject(DropWrongOp)
	}
	offset := m.localOffset
	if m.desc.Options&MDManageRemote != 0 {
		offset = int(hdr.Offset)
	}
	avail := m.avail(offset)
	mlen := op.RLen
	if mlen > avail {
		if m.desc.Options&MDTruncate == 0 {
			return reject(DropNoFit)
		}
		mlen = avail
	}
	m.consume()
	m.inflight++
	if m.desc.Options&MDManageRemote == 0 {
		m.localOffset += mlen
	}
	op.Region = m.desc.Region
	op.Off = offset
	op.MLen = mlen
	op.m = m
	return op
}

// postStart posts the *_START event for an accepted incoming operation.
func (l *Lib) postStart(op *RxOp, t EventType) {
	m := op.m
	if q := l.eqFor(m.desc.EQ); q != nil && m.desc.Options&MDEventStartDisable == 0 {
		q.post(Event{Type: t, Initiator: initiator(&op.Hdr), UID: op.Hdr.UID,
			PtlIndex: int(op.Hdr.PtlIndex), MatchBits: op.Hdr.MatchBits,
			RLength: op.RLen, MLength: op.MLen, Offset: op.Off,
			MD: m.handle, User: m.desc.User, HdrData: op.Hdr.HdrData})
	}
}

// ReceivePut processes an incoming put header: ACL check, match walk,
// descriptor checks, offset and truncation management. On acceptance the
// driver deposits op.MLen bytes at op.Region/op.Off and calls Delivered; on
// op.Drop it discards the payload and calls nothing.
func (l *Lib) ReceivePut(hdr *wire.Header) *RxOp {
	op := l.receiveTarget(hdr, MDOpPut)
	if op.Drop {
		return op
	}
	op.evEnd = EventPutEnd
	op.ackNeeded = hdr.AckReq != 0 && op.m.desc.Options&MDAckDisable == 0
	l.postStart(op, EventPutStart)
	return op
}

// ReceiveGet processes an incoming get request. On acceptance, op.Reply
// describes the reply message the driver must transmit (reading op.MLen
// bytes from op.Region at op.Off); the driver calls ReplySent when the
// reply transmission completes.
func (l *Lib) ReceiveGet(hdr *wire.Header) *RxOp {
	op := l.receiveTarget(hdr, MDOpGet)
	if op.Drop {
		return op
	}
	op.evEnd = EventGetEnd
	l.postStart(op, EventGetStart)
	r := l.newSendReq()
	r.Hdr = wire.Header{
		Type:      wire.TypeReply,
		SrcNid:    l.id.Nid,
		SrcPid:    l.id.Pid,
		DstNid:    hdr.SrcNid,
		DstPid:    hdr.SrcPid,
		PtlIndex:  hdr.PtlIndex,
		MatchBits: hdr.MatchBits,
		Length:    uint32(op.MLen),
		Offset:    uint32(op.Off),
		MDHandle:  hdr.MDHandle,
		UID:       l.uid,
		HdrData:   hdr.HdrData, // echoes the initiator's local offset
	}
	r.Region = op.Region
	r.Off = op.Off
	r.Len = op.MLen
	r.MD = NoMD
	r.RxOp = op
	op.Reply = r
	l.status[SRSendCount]++
	l.status[SRSendLength] += uint64(op.MLen)
	return op
}

// ReceiveReply processes the reply to one of our gets at the initiator.
// The reply is steered by the MD handle echoed in the header, not by
// matching.
func (l *Lib) ReceiveReply(hdr *wire.Header) *RxOp {
	op := l.newRxOp(hdr)
	m, ok := l.mds.get(uint32(hdr.MDHandle))
	if !ok || m.dead {
		op.Drop = true
		op.Reason = DropBadHandle
		l.drop(DropBadHandle)
		return op
	}
	offset := int(hdr.HdrData) // local offset requested at GetRegion time
	avail := m.avail(offset)
	mlen := op.RLen
	if mlen > avail {
		if m.desc.Options&MDTruncate == 0 {
			op.Drop = true
			op.Reason = DropNoFit
			l.drop(DropNoFit)
			// The get is still outstanding from the md's perspective;
			// release it so the descriptor does not leak inflight count.
			m.inflight--
			return op
		}
		mlen = avail
	}
	op.Region = m.desc.Region
	op.Off = offset
	op.MLen = mlen
	op.m = m
	op.evEnd = EventReplyEnd
	if q := l.eqFor(m.desc.EQ); q != nil && m.desc.Options&MDEventStartDisable == 0 {
		q.post(Event{Type: EventReplyStart, Initiator: initiator(hdr), UID: hdr.UID,
			RLength: op.RLen, MLength: mlen, Offset: offset, MD: m.handle, User: m.desc.User})
	}
	return op
}

// ReceiveAck processes an acknowledgment at the initiator: it posts the ACK
// event to the put descriptor's queue.
func (l *Lib) ReceiveAck(hdr *wire.Header) {
	m, ok := l.mds.get(uint32(hdr.MDHandle))
	if !ok || m.dead {
		l.drop(DropBadHandle)
		return
	}
	if q := l.eqFor(m.desc.EQ); q != nil {
		q.post(Event{Type: EventAck, Initiator: initiator(hdr), UID: hdr.UID,
			PtlIndex: int(hdr.PtlIndex), MatchBits: hdr.MatchBits,
			RLength: int(hdr.Length), MLength: int(hdr.Length), Offset: int(hdr.Offset),
			MD: m.handle, User: m.desc.User})
	}
}

// Delivered completes an accepted put or reply after the driver has moved
// the data. ok=false marks an end-to-end CRC failure: the event carries
// NIFail and the bytes are suspect. For puts that requested one, the
// returned SendReq is the acknowledgment the driver must transmit.
func (l *Lib) Delivered(op *RxOp, ok bool) *SendReq {
	if op.Drop {
		return nil
	}
	m := op.m
	m.inflight--
	unlinked := l.maybeAutoUnlink(m)
	l.status[SRRecvCount]++
	l.status[SRRecvLength] += uint64(op.MLen)
	if !ok {
		l.status[SRCrcErrors]++
	}
	if q := l.eqFor(m.desc.EQ); q != nil {
		if m.desc.Options&MDEventEndDisable == 0 {
			q.post(Event{Type: op.evEnd, Initiator: initiator(&op.Hdr), UID: op.Hdr.UID,
				PtlIndex: int(op.Hdr.PtlIndex), MatchBits: op.Hdr.MatchBits,
				RLength: op.RLen, MLength: op.MLen, Offset: op.Off,
				MD: m.handle, User: m.desc.User, HdrData: op.Hdr.HdrData, NIFail: !ok, Unlinked: unlinked})
		} else if unlinked {
			q.post(Event{Type: EventUnlink, Initiator: initiator(&op.Hdr), MD: m.handle, User: m.desc.User})
		}
	}
	var ack *SendReq
	if op.ackNeeded && ok {
		ack = l.newSendReq()
		ack.Hdr = wire.Header{
			Type:      wire.TypeAck,
			SrcNid:    l.id.Nid,
			SrcPid:    l.id.Pid,
			DstNid:    op.Hdr.SrcNid,
			DstPid:    op.Hdr.SrcPid,
			PtlIndex:  op.Hdr.PtlIndex,
			MatchBits: op.Hdr.MatchBits,
			Length:    uint32(op.MLen),
			Offset:    uint32(op.Off),
			MDHandle:  op.Hdr.MDHandle,
			UID:       l.uid,
		}
		ack.MD = NoMD
	}
	l.freeRxOp(op)
	return ack
}

// ReplySent completes the target side of a get once the reply transmission
// finishes: it posts GET_END and applies unlink rules.
func (l *Lib) ReplySent(op *RxOp) {
	if op.Drop {
		return
	}
	m := op.m
	m.inflight--
	unlinked := l.maybeAutoUnlink(m)
	l.status[SRRecvCount]++
	if q := l.eqFor(m.desc.EQ); q != nil {
		if m.desc.Options&MDEventEndDisable == 0 {
			q.post(Event{Type: EventGetEnd, Initiator: initiator(&op.Hdr), UID: op.Hdr.UID,
				PtlIndex: int(op.Hdr.PtlIndex), MatchBits: op.Hdr.MatchBits,
				RLength: op.RLen, MLength: op.MLen, Offset: op.Off,
				MD: m.handle, User: m.desc.User, Unlinked: unlinked})
		} else if unlinked {
			q.post(Event{Type: EventUnlink, Initiator: initiator(&op.Hdr), MD: m.handle, User: m.desc.User})
		}
	}
	l.freeRxOp(op)
}

// Receive dispatches an incoming header to the appropriate handler; it is
// the single entry point NAL drivers use.
func (l *Lib) Receive(hdr *wire.Header) *RxOp {
	switch hdr.Type {
	case wire.TypePut:
		return l.ReceivePut(hdr)
	case wire.TypeGet:
		return l.ReceiveGet(hdr)
	case wire.TypeReply:
		return l.ReceiveReply(hdr)
	case wire.TypeAck:
		l.ReceiveAck(hdr)
		return nil
	}
	op := &RxOp{Hdr: *hdr, Drop: true, Reason: DropNoMatch}
	l.drop(DropNoMatch)
	return op
}
