package core

import (
	"fmt"

	"portals3/internal/sim"
	"portals3/internal/trace"
	"portals3/internal/wire"
)

// Backend is what the library requires from the layer below it — in the
// paper's architecture, the library-to-network half of the NAL (the SSNAL).
// The generic-mode backend pushes commands to the firmware through the OS
// kernel; the accelerated-mode backend posts them to a dedicated mailbox.
type Backend interface {
	// Send queues one outgoing message. The backend owns pacing and must
	// eventually call Lib.SendDone (puts), Lib.ReplySent (get replies at
	// the target) or nothing (acks) as transmission completes.
	Send(req *SendReq)
	// Distance returns the network hop count to nid (PtlNIDist).
	Distance(nid uint32) int
}

// SendReq is one message the library asks the backend to transmit. The
// library composes the wire header; the backend only moves it.
type SendReq struct {
	Hdr    wire.Header
	Region Region // payload source; nil when the message carries none
	Off    int    // payload offset within Region
	Len    int    // payload length
	MD     MDHandle
	RxOp   *RxOp // for get replies: the target-side op to complete at TX done
}

// acEntry is one access control list slot (PtlACEntry).
type acEntry struct {
	valid   bool
	uid     uint32
	matchID ProcessID
	ptl     int // portal index or PtlIndexAny
}

// PtlIndexAny is the ACL wildcard portal index (PTL_PT_INDEX_ANY).
const PtlIndexAny = -1

// ptlEntry is one portal table slot: a match list.
type ptlEntry struct {
	head, tail *me
	count      int
}

// Lib is the Portals library state for one process on one network
// interface: the portal table, the match entries, memory descriptors, event
// queues and access control list. It is pure bookkeeping — all crossing and
// processing costs are charged by the NAL layer that invokes it, so the same
// instance can be driven from the host kernel (generic mode) or the NIC
// firmware (accelerated mode), as on the real machine.
type Lib struct {
	// Trace, when non-nil, records application-visible event deliveries.
	Trace *trace.Tracer

	sim     *sim.Sim
	id      ProcessID
	uid     uint32
	limits  Limits
	backend Backend

	ptable []ptlEntry
	mes    table[me]
	mds    table[md]
	eqs    table[EQ]
	acl    []acEntry

	status   [srCount]uint64
	counters struct {
		eqDrops uint64
	}
	deferWake bool
	deferred  []deferredEvent
	locked    bool
	lockSig   *sim.Signal
	// Free lists for the per-message bookkeeping structures. Receive
	// operations are recycled at their terminal calls (Delivered,
	// ReplySent); send requests when transmission completes (SendDone) or
	// when the driver hands one back (FreeSendReq). Dropped operations are
	// simply left to the garbage collector.
	opFree  []*RxOp
	reqFree []*SendReq
	meFree  []*me
	mdFree  []*md
	// DropCounts tallies drops by reason, for tests and diagnostics.
	DropCounts [DropCRC + 1]uint64
}

// NewLib creates the library state for process id with the given resource
// limits. A permissive ACL entry is installed at index 0, as the reference
// implementation does, so simple programs work before touching the ACL.
func NewLib(s *sim.Sim, id ProcessID, uid uint32, limits Limits, backend Backend) *Lib {
	limits = limits.withDefaults()
	l := &Lib{
		sim:     s,
		id:      id,
		uid:     uid,
		limits:  limits,
		backend: backend,
		ptable:  make([]ptlEntry, limits.MaxPtIndices),
		mes:     newTable[me](limits.MaxMEs),
		mds:     newTable[md](limits.MaxMDs),
		eqs:     newTable[EQ](limits.MaxEQs),
		acl:     make([]acEntry, limits.MaxACEntries),
	}
	l.acl[0] = acEntry{valid: true, uid: UIDAny, matchID: ProcessID{NidAny, PidAny}, ptl: PtlIndexAny}
	l.lockSig = sim.NewSignal(s)
	return l
}

// Lock marks the library busy with driver-side message processing. API
// calls arriving meanwhile wait in AwaitUnlocked — the analogue of the
// kernel lock that serializes user API calls against the interrupt
// handler in the real implementation. Without it, the MDUpdate-conditional
// receive protocol has a race: a message could be matched to an overflow
// buffer while an application observes an empty event queue and arms a
// descriptor the message will never see.
func (l *Lib) Lock() { l.locked = true }

// Unlock releases the processing lock and wakes waiting API callers.
func (l *Lib) Unlock() {
	l.locked = false
	l.lockSig.Raise()
}

// AwaitUnlocked blocks the calling process while the library is locked.
func (l *Lib) AwaitUnlocked(p *sim.Proc) {
	for l.locked {
		l.lockSig.Wait(p)
	}
}

// ID returns the process identifier (PtlGetId).
func (l *Lib) ID() ProcessID { return l.id }

// UID returns the user identifier (PtlGetUid).
func (l *Lib) UID() uint32 { return l.uid }

// Limits returns the active resource limits.
func (l *Lib) Limits() Limits { return l.limits }

// Status reads an NI status register (PtlNIStatus).
func (l *Lib) Status(r StatusRegister) uint64 {
	if r < 0 || r >= srCount {
		return 0
	}
	return l.status[r]
}

// Distance returns the hop count to nid (PtlNIDist).
func (l *Lib) Distance(nid uint32) int { return l.backend.Distance(nid) }

// ACEntry installs an access control entry (PtlACEntry): messages from
// processes matching matchID with user id uid may target portal index ptl
// (or any index, with PtlIndexAny).
func (l *Lib) ACEntry(index int, uid uint32, matchID ProcessID, ptl int) error {
	if index < 0 || index >= len(l.acl) {
		return ErrAcIndexInvalid
	}
	if ptl != PtlIndexAny && (ptl < 0 || ptl >= len(l.ptable)) {
		return ErrPtIndexInvalid
	}
	l.acl[index] = acEntry{valid: true, uid: uid, matchID: matchID, ptl: ptl}
	return nil
}

// ACClear removes an access control entry.
func (l *Lib) ACClear(index int) error {
	if index < 0 || index >= len(l.acl) {
		return ErrAcIndexInvalid
	}
	l.acl[index] = acEntry{}
	return nil
}

// aclPermits checks the sender against the ACL.
func (l *Lib) aclPermits(uid uint32, src ProcessID, ptl int) bool {
	for _, e := range l.acl {
		if !e.valid {
			continue
		}
		if (e.uid == UIDAny || e.uid == uid) && e.matchID.Matches(src) &&
			(e.ptl == PtlIndexAny || e.ptl == ptl) {
			return true
		}
	}
	return false
}

// ---- Event queues ----

// EQAlloc creates an event queue holding count events (PtlEQAlloc).
func (l *Lib) EQAlloc(count int) (EQHandle, error) {
	if count <= 0 {
		return EQHandle(InvalidHandle), ErrInvalidArg
	}
	q := &EQ{}
	h, err := l.eqs.alloc(q)
	if err != nil {
		return EQHandle(InvalidHandle), err
	}
	*q = *newEQ(l, EQHandle(h), count)
	return EQHandle(h), nil
}

// EQFree destroys an event queue (PtlEQFree). Memory descriptors still
// referencing it keep a dangling handle, as in C; their event posts are
// silently discarded (the freed flag).
func (l *Lib) EQFree(h EQHandle) error {
	q, ok := l.eqs.get(uint32(h))
	if !ok {
		return ErrInvalidHandle
	}
	q.freed = true
	q.signal.Raise()
	l.eqs.release(uint32(h))
	return nil
}

// EQGet returns the next event without blocking (PtlEQGet). ErrEQEmpty when
// none is pending; ErrEQDropped (possibly with a valid event) after
// overflow.
func (l *Lib) EQGet(h EQHandle) (Event, error) {
	q, ok := l.eqs.get(uint32(h))
	if !ok {
		return Event{}, ErrInvalidHandle
	}
	return q.get()
}

// EQ resolves an event queue handle for NAL-level blocking support.
func (l *Lib) EQ(h EQHandle) (*EQ, bool) {
	return l.eqs.get(uint32(h))
}

// eqFor resolves an MD's event queue, nil when absent or freed. Both NoEQ
// and the zero value mean "no queue".
func (l *Lib) eqFor(h EQHandle) *EQ {
	if h == NoEQ || h == 0 {
		return nil
	}
	q, ok := l.eqs.get(uint32(h))
	if !ok || q.freed {
		return nil
	}
	return q
}

// deferredEvent is an event generated mid-handler, delivered at EndDefer.
type deferredEvent struct {
	q  *EQ
	ev Event
}

// BeginDefer suspends event delivery: the library's state changes apply
// immediately, but event records reach their (application-visible) queues
// only at EndDefer. NAL drivers bracket their per-message processing with
// this pair so applications observe events when the kernel handler
// completes, not mid-handler — the real driver writes the user-space event
// queue as its final act.
func (l *Lib) BeginDefer() { l.deferWake = true }

// EndDefer delivers every deferred event and re-enables direct delivery.
func (l *Lib) EndDefer() {
	l.deferWake = false
	evs := l.deferred
	for _, d := range evs {
		d.q.insert(d.ev)
	}
	// Delivery runs with deferWake off, so nothing appended meanwhile:
	// rewind in place and keep the buffer's capacity for the next message.
	l.deferred = evs[:0]
}

// drop records a dropped incoming message.
func (l *Lib) drop(reason DropReason) {
	l.status[SRDropCount]++
	l.DropCounts[reason]++
}

func (l *Lib) String() string {
	return fmt.Sprintf("lib(%v)", l.id)
}
