package core

// me is a match entry: one node of a portal index's match list. Incoming
// message headers are compared against entries in list order; the first
// entry whose match bits and source id accept the header receives the
// operation (paper §3: "the ultimate destination of a message is determined
// at the receiving process by comparing contents of the incoming message
// header with the contents of Portals structures at the destination").
type me struct {
	handle     MEHandle
	ptl        int
	matchID    ProcessID
	matchBits  uint64
	ignoreBits uint64
	unlink     Unlink

	md *md // attached descriptor, nil when bare

	prev, next *me
	entry      *ptlEntry
	unlinked   bool
}

// newME takes an entry from the free list, reset and initialized, or
// allocates one. Entries return to the list in removeME; handles are
// generation-checked by the slot table, so a recycled entry's old handles
// resolve to nothing.
func (l *Lib) newME(ptl int, matchID ProcessID, matchBits, ignoreBits uint64, unlink Unlink) *me {
	if n := len(l.meFree); n > 0 {
		e := l.meFree[n-1]
		l.meFree[n-1] = nil
		l.meFree = l.meFree[:n-1]
		*e = me{ptl: ptl, matchID: matchID, matchBits: matchBits, ignoreBits: ignoreBits, unlink: unlink}
		return e
	}
	return &me{ptl: ptl, matchID: matchID, matchBits: matchBits, ignoreBits: ignoreBits, unlink: unlink}
}

// matches implements the Portals matching rule: all header match bits not
// masked by ignoreBits must equal the entry's matchBits, and the sender must
// satisfy the (possibly wildcarded) source id.
func (e *me) matches(bits uint64, src ProcessID) bool {
	return (bits^e.matchBits)&^e.ignoreBits == 0 && e.matchID.Matches(src)
}

// MEAttach creates a match entry at the tail (After) or head (Before) of
// portal index ptl's match list (PtlMEAttach).
func (l *Lib) MEAttach(ptl int, matchID ProcessID, matchBits, ignoreBits uint64,
	unlink Unlink, pos Position) (MEHandle, error) {
	if ptl < 0 || ptl >= len(l.ptable) {
		return MEHandle(InvalidHandle), ErrPtIndexInvalid
	}
	entry := &l.ptable[ptl]
	if entry.count >= l.limits.MaxMEList {
		return MEHandle(InvalidHandle), ErrMEListTooLong
	}
	e := l.newME(ptl, matchID, matchBits, ignoreBits, unlink)
	h, err := l.mes.alloc(e)
	if err != nil {
		return MEHandle(InvalidHandle), err
	}
	e.handle = MEHandle(h)
	e.entry = entry
	if pos == Before {
		e.next = entry.head
		if entry.head != nil {
			entry.head.prev = e
		}
		entry.head = e
		if entry.tail == nil {
			entry.tail = e
		}
	} else {
		e.prev = entry.tail
		if entry.tail != nil {
			entry.tail.next = e
		}
		entry.tail = e
		if entry.head == nil {
			entry.head = e
		}
	}
	entry.count++
	return e.handle, nil
}

// MEAttachAny creates a match entry on the first unused portal index and
// returns the index with the handle (PtlMEAttachAny) — how upper layers
// claim a private portal without coordinating index assignments.
func (l *Lib) MEAttachAny(matchID ProcessID, matchBits, ignoreBits uint64,
	unlink Unlink, pos Position) (int, MEHandle, error) {
	for ptl := range l.ptable {
		if l.ptable[ptl].count != 0 {
			continue
		}
		h, err := l.MEAttach(ptl, matchID, matchBits, ignoreBits, unlink, pos)
		return ptl, h, err
	}
	return -1, MEHandle(InvalidHandle), ErrPtIndexInvalid
}

// MEInsert creates a match entry adjacent to an existing one (PtlMEInsert):
// pos Before places it ahead of base in match order, After places it behind.
func (l *Lib) MEInsert(base MEHandle, matchID ProcessID, matchBits, ignoreBits uint64,
	unlink Unlink, pos Position) (MEHandle, error) {
	b, ok := l.mes.get(uint32(base))
	if !ok || b.unlinked {
		return MEHandle(InvalidHandle), ErrInvalidHandle
	}
	entry := b.entry
	if entry.count >= l.limits.MaxMEList {
		return MEHandle(InvalidHandle), ErrMEListTooLong
	}
	e := l.newME(b.ptl, matchID, matchBits, ignoreBits, unlink)
	h, err := l.mes.alloc(e)
	if err != nil {
		return MEHandle(InvalidHandle), err
	}
	e.handle = MEHandle(h)
	e.entry = entry
	if pos == Before {
		e.prev = b.prev
		e.next = b
		if b.prev != nil {
			b.prev.next = e
		} else {
			entry.head = e
		}
		b.prev = e
	} else {
		e.next = b.next
		e.prev = b
		if b.next != nil {
			b.next.prev = e
		} else {
			entry.tail = e
		}
		b.next = e
	}
	entry.count++
	return e.handle, nil
}

// MEUnlink removes a match entry from its list (PtlMEUnlink). An attached
// memory descriptor is unlinked with it, per the specification, unless it
// has operations in flight (ErrMEInUse).
func (l *Lib) MEUnlink(h MEHandle) error {
	e, ok := l.mes.get(uint32(h))
	if !ok || e.unlinked {
		return ErrInvalidHandle
	}
	if e.md != nil && e.md.inflight > 0 {
		return ErrMEInUse
	}
	if e.md != nil {
		l.destroyMD(e.md)
	}
	l.removeME(e)
	return nil
}

// removeME unlinks the entry from its list and releases its handle.
func (l *Lib) removeME(e *me) {
	if e.unlinked {
		return
	}
	entry := e.entry
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		entry.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		entry.tail = e.prev
	}
	entry.count--
	e.unlinked = true
	e.md = nil
	l.mes.release(uint32(e.handle))
	l.meFree = append(l.meFree, e)
}

// MEList returns the handles on portal index ptl in match order, a
// diagnostic used by tests and tools.
func (l *Lib) MEList(ptl int) ([]MEHandle, error) {
	if ptl < 0 || ptl >= len(l.ptable) {
		return nil, ErrPtIndexInvalid
	}
	var out []MEHandle
	for e := l.ptable[ptl].head; e != nil; e = e.next {
		out = append(out, e.handle)
	}
	return out, nil
}
