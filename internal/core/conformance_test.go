package core

// Conformance scenarios walking Portals 3.3 specification behaviors that
// the main test file does not already pin down: portal index allocation,
// exhausted-entry fall-through, event field and ordering guarantees,
// loopback operation, reply truncation, and randomized structural
// invariants of the match list.

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"portals3/internal/wire"
)

func TestMEAttachAnyClaimsFreshIndices(t *testing.T) {
	_, _, b := pair(t)
	seen := map[int]bool{}
	for i := 0; i < 5; i++ {
		ptl, meh, err := b.MEAttachAny(ProcessID{NidAny, PidAny}, uint64(i), 0, Retain, After)
		if err != nil {
			t.Fatal(err)
		}
		if seen[ptl] {
			t.Errorf("index %d handed out twice", ptl)
		}
		seen[ptl] = true
		if meh == MEHandle(InvalidHandle) {
			t.Error("invalid handle returned")
		}
		list, _ := b.MEList(ptl)
		if len(list) != 1 {
			t.Errorf("claimed index %d has %d entries", ptl, len(list))
		}
	}
}

func TestMEAttachAnyExhaustsIndices(t *testing.T) {
	s := newLoopNet()
	l := s.addLib(ProcessID{0, 1})
	for {
		_, _, err := l.MEAttachAny(ProcessID{NidAny, PidAny}, 0, 0, Retain, After)
		if err == ErrPtIndexInvalid {
			return // exhausted cleanly
		}
		if err != nil {
			t.Fatalf("unexpected error %v", err)
		}
	}
}

func TestExhaustedEntrySkipsToNext(t *testing.T) {
	// Two entries match the same bits; the first has threshold 1. The
	// second message must fall through to the second entry (inactive
	// descriptors are invisible to matching), not drop.
	_, a, b := pair(t)
	eq, _ := b.EQAlloc(16)
	buf1, buf2 := make([]byte, 32), make([]byte, 32)
	me1, _ := b.MEAttach(4, ProcessID{NidAny, PidAny}, 5, 0, Retain, After)
	b.MDAttach(me1, MDesc{Region: SliceRegion(buf1), Threshold: 1, Options: MDOpPut, EQ: eq}, Retain)
	me2, _ := b.MEAttach(4, ProcessID{NidAny, PidAny}, 5, 0, Retain, After)
	b.MDAttach(me2, MDesc{Region: SliceRegion(buf2), Threshold: ThresholdInfinite, Options: MDOpPut, EQ: eq}, Retain)

	for i, want := range []byte{101, 102} {
		_, amd := sender(t, a, []byte{want})
		a.Put(amd, NoAck, b.ID(), 4, 5, 0, 0)
		_ = i
	}
	if buf1[0] != 101 {
		t.Errorf("first message landed at %d, want first entry", buf1[0])
	}
	if buf2[0] != 102 {
		t.Errorf("second message must fall through to the second entry, got %d", buf2[0])
	}
	if b.Status(SRDropCount) != 0 {
		t.Errorf("drops = %d, want 0", b.Status(SRDropCount))
	}
}

func TestLoopbackPutAndGet(t *testing.T) {
	// A process can put to and get from itself; the loopback traverses the
	// full stack (header matching included).
	n := newLoopNet()
	a := n.addLib(ProcessID{0, 1})
	// Remote-managed offsets so the put and the get both address offset 0
	// (a locally managed offset would advance past the put's bytes).
	buf, eq, _ := target(t, a, 32, 9, MDOpPut|MDOpGet|MDManageRemote)
	src := []byte("loopback")
	_, amd := sender(t, a, src)
	if err := a.Put(amd, NoAck, a.ID(), 4, 9, 0, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:len(src)], src) {
		t.Errorf("loopback put: %q", buf[:len(src)])
	}
	types := postedTypes(t, a, eq)
	if len(types) == 0 {
		t.Error("no events from loopback")
	}
	dst := make([]byte, len(src))
	_, gmd := sender(t, a, dst)
	if err := a.Get(gmd, a.ID(), 4, 9, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, src) {
		t.Errorf("loopback get: %q", dst)
	}
}

func TestEventSequenceAndTimestampsMonotonic(t *testing.T) {
	_, a, b := pair(t)
	_, eq, _ := target(t, b, 1024, 1, MDOpPut|MDManageRemote)
	for i := 0; i < 6; i++ {
		_, amd := sender(t, a, []byte{byte(i)})
		a.Put(amd, NoAck, b.ID(), 4, 1, 0, 0)
	}
	var lastSeq uint64
	for {
		ev, err := b.EQGet(eq)
		if err == ErrEQEmpty {
			break
		}
		if ev.Sequence <= lastSeq {
			t.Fatalf("sequence went backwards: %d after %d", ev.Sequence, lastSeq)
		}
		lastSeq = ev.Sequence
	}
	if lastSeq == 0 {
		t.Fatal("no events")
	}
}

func TestUIDTravelsInEvents(t *testing.T) {
	_, a, b := pair(t)
	_, eq, _ := target(t, b, 64, 1, MDOpPut|MDEventStartDisable)
	_, amd := sender(t, a, []byte{1})
	a.Put(amd, NoAck, b.ID(), 4, 1, 0, 0)
	ev, err := b.EQGet(eq)
	if err != nil {
		t.Fatal(err)
	}
	if ev.UID != a.UID() {
		t.Errorf("event uid = %d, want the initiator's %d", ev.UID, a.UID())
	}
}

func TestReplyTruncationAtInitiator(t *testing.T) {
	_, a, b := pair(t)
	// Target exposes 64 bytes for gets.
	src := make([]byte, 64)
	for i := range src {
		src[i] = byte(i)
	}
	meh, _ := b.MEAttach(4, ProcessID{NidAny, PidAny}, 3, 0, Retain, After)
	b.MDAttach(meh, MDesc{Region: SliceRegion(src), Threshold: ThresholdInfinite,
		Options: MDOpGet | MDManageRemote}, Retain)

	// Initiator requests more than its descriptor holds, with truncate.
	dst := make([]byte, 16)
	eq, _ := a.EQAlloc(16)
	gmd, _ := a.MDBind(MDesc{Region: SliceRegion(dst), Threshold: ThresholdInfinite,
		Options: MDTruncate | MDEventStartDisable, EQ: eq})
	// Forge the wire-level interaction: request 64 into a 16-byte md.
	hdr := wire.Header{Type: wire.TypeReply, SrcNid: b.ID().Nid, SrcPid: b.ID().Pid,
		DstNid: a.ID().Nid, DstPid: a.ID().Pid, MDHandle: uint32(gmd), Length: 64}
	op := a.ReceiveReply(&hdr)
	if op.Drop {
		t.Fatalf("reply dropped: %v", op.Reason)
	}
	if op.MLen != 16 {
		t.Errorf("reply mlen = %d, want truncated 16", op.MLen)
	}
	// Without truncate: dropped with NoFit.
	gmd2, _ := a.MDBind(MDesc{Region: SliceRegion(make([]byte, 16)), Threshold: ThresholdInfinite, EQ: eq})
	hdr.MDHandle = uint32(gmd2)
	op2 := a.ReceiveReply(&hdr)
	if !op2.Drop || op2.Reason != DropNoFit {
		t.Errorf("oversized reply without truncate: drop=%v reason=%v", op2.Drop, op2.Reason)
	}
}

func TestUnlinkEventWhenEndEventsDisabled(t *testing.T) {
	_, a, b := pair(t)
	eq, _ := b.EQAlloc(16)
	meh, _ := b.MEAttach(4, ProcessID{NidAny, PidAny}, 1, 0, UnlinkAuto, After)
	b.MDAttach(meh, MDesc{Region: SliceRegion(make([]byte, 8)), Threshold: 1,
		Options: MDOpPut | MDEventStartDisable | MDEventEndDisable, EQ: eq}, UnlinkAuto)
	_, amd := sender(t, a, []byte{1})
	a.Put(amd, NoAck, b.ID(), 4, 1, 0, 0)
	ev, err := b.EQGet(eq)
	if err != nil {
		t.Fatalf("no event: %v", err)
	}
	if ev.Type != EventUnlink {
		t.Errorf("got %v, want UNLINK (the only signal with END events disabled)", ev.Type)
	}
}

func TestSendThresholdLimitsInitiator(t *testing.T) {
	_, a, b := pair(t)
	target(t, b, 64, 1, MDOpPut|MDManageRemote)
	amd, err := a.MDBind(MDesc{Region: SliceRegion(make([]byte, 4)), Threshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put(amd, NoAck, b.ID(), 4, 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Put(amd, NoAck, b.ID(), 4, 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Put(amd, NoAck, b.ID(), 4, 1, 0, 0); err != ErrMDInUse {
		t.Errorf("third send on a threshold-2 descriptor: %v, want ErrMDInUse", err)
	}
}

// TestMatchListStructureProperty drives random attach/insert/unlink
// sequences and checks the doubly linked list against a reference slice.
func TestMatchListStructureProperty(t *testing.T) {
	f := func(seed int64, opsRaw []byte) bool {
		rng := rand.New(rand.NewSource(seed))
		n := newLoopNet()
		l := n.addLib(ProcessID{0, 1})
		var ref []MEHandle // expected order
		for _, op := range opsRaw {
			switch {
			case op%4 == 0 || len(ref) == 0: // attach at an end
				pos := Position(op / 4 % 2)
				h, err := l.MEAttach(0, ProcessID{NidAny, PidAny}, uint64(op), 0, Retain, pos)
				if err != nil {
					return false
				}
				if pos == Before {
					ref = append([]MEHandle{h}, ref...)
				} else {
					ref = append(ref, h)
				}
			case op%4 == 1: // insert relative to a random live entry
				i := rng.Intn(len(ref))
				pos := Position(op / 4 % 2)
				h, err := l.MEInsert(ref[i], ProcessID{NidAny, PidAny}, uint64(op), 0, Retain, pos)
				if err != nil {
					return false
				}
				if pos == Before {
					ref = append(ref[:i], append([]MEHandle{h}, ref[i:]...)...)
				} else {
					ref = append(ref[:i+1], append([]MEHandle{h}, ref[i+1:]...)...)
				}
			default: // unlink a random entry
				i := rng.Intn(len(ref))
				if err := l.MEUnlink(ref[i]); err != nil {
					return false
				}
				ref = append(ref[:i], ref[i+1:]...)
			}
			got, _ := l.MEList(0)
			if len(got) != len(ref) {
				return false
			}
			for i := range ref {
				if got[i] != ref[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestRandomTrafficInvariants fires random puts/gets at random descriptors
// and checks global invariants: no event is ever lost silently (sum of
// deliveries + drops equals sends), and every delivered byte matches.
func TestRandomTrafficInvariants(t *testing.T) {
	f := func(seed int64, msgsRaw []byte) bool {
		rng := rand.New(rand.NewSource(seed))
		n := newLoopNet()
		a := n.addLib(ProcessID{0, 1})
		b := n.addLib(ProcessID{1, 1})
		eq, _ := b.EQAlloc(4096)
		// Three targets with different bits/sizes/options.
		type tgt struct {
			bits uint64
			buf  []byte
		}
		var tgts []tgt
		for i, size := range []int{16, 64, 256} {
			buf := make([]byte, size)
			meh, _ := b.MEAttach(4, ProcessID{NidAny, PidAny}, uint64(i+1), 0, Retain, After)
			b.MDAttach(meh, MDesc{Region: SliceRegion(buf), Threshold: ThresholdInfinite,
				Options: MDOpPut | MDManageRemote | MDTruncate | MDEventStartDisable, EQ: eq}, Retain)
			tgts = append(tgts, tgt{bits: uint64(i + 1), buf: buf})
		}
		sends := 0
		for _, m := range msgsRaw {
			size := rng.Intn(300) + 1
			bits := uint64(rng.Intn(4)) // bits 0 never matches: a drop case
			data := bytes.Repeat([]byte{m}, size)
			_, amd := sender(t, a, data)
			if a.Put(amd, NoAck, b.ID(), 4, bits, 0, 0) != nil {
				return false
			}
			sends++
		}
		delivered := 0
		for {
			_, err := b.EQGet(eq)
			if err == ErrEQEmpty {
				break
			}
			delivered++
		}
		return uint64(delivered)+b.Status(SRDropCount) == uint64(sends)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestACClearRemovesEntry(t *testing.T) {
	_, a, b := pair(t)
	target(t, b, 16, 1, MDOpPut)
	if err := b.ACClear(0); err != nil {
		t.Fatal(err)
	}
	_, amd := sender(t, a, []byte{1})
	a.Put(amd, NoAck, b.ID(), 4, 1, 0, 0)
	if b.DropCounts[DropACDenied] != 1 {
		t.Error("cleared ACL still permits")
	}
	if err := b.ACClear(-1); err != ErrAcIndexInvalid {
		t.Errorf("bad index: %v", err)
	}
}

func TestMDUserRoundTrip(t *testing.T) {
	_, _, b := pair(t)
	type tag struct{ v int }
	want := &tag{v: 42}
	mdh, _ := b.MDBind(MDesc{Region: SliceRegion(make([]byte, 4)), Threshold: 1, User: want})
	got, ok := b.MDUser(mdh)
	if !ok || got.(*tag) != want {
		t.Error("user pointer lost")
	}
	b.MDUnlink(mdh)
	if _, ok := b.MDUser(mdh); ok {
		t.Error("dead descriptor resolved")
	}
}

func TestLimitsAndEQPending(t *testing.T) {
	_, a, b := pair(t)
	if b.Limits().MaxPtIndices != DefaultLimits().MaxPtIndices {
		t.Error("limits accessor wrong")
	}
	_, eq, _ := target(t, b, 16, 1, MDOpPut|MDEventStartDisable)
	q, ok := b.EQ(eq)
	if !ok || q.Pending() != 0 {
		t.Fatal("fresh queue not empty")
	}
	_, amd := sender(t, a, []byte{1})
	a.Put(amd, NoAck, b.ID(), 4, 1, 0, 0)
	if q.Pending() != 1 {
		t.Errorf("pending = %d after one delivery", q.Pending())
	}
}

func TestDropReasonStrings(t *testing.T) {
	for r := DropNone; r <= DropCRC; r++ {
		if r.String() == "unknown" {
			t.Errorf("reason %d has no name", r)
		}
	}
	if DropReason(99).String() != "unknown" {
		t.Error("out of range reason should be unknown")
	}
}
