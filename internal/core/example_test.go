package core_test

// Runnable documentation examples for the Portals 3.3 API, built over the
// zero-latency loopback harness (semantics only — timing lives in the
// machine layer; see examples/ for full-stack programs).

import (
	"fmt"

	"portals3/internal/core"
	"portals3/internal/sim"
	"portals3/internal/wire"
)

// exampleNet is a tiny synchronous NAL used by the documentation examples.
type exampleNet struct {
	s    *sim.Sim
	libs map[core.ProcessID]*core.Lib
}

type exampleBackend struct {
	net *exampleNet
	lib *core.Lib
}

func (b *exampleBackend) Distance(uint32) int { return 1 }

func (b *exampleBackend) Send(req *core.SendReq) {
	dst := b.net.libs[core.ProcessID{Nid: req.Hdr.DstNid, Pid: req.Hdr.DstPid}]
	switch req.Hdr.Type {
	case wire.TypePut:
		op := dst.ReceivePut(&req.Hdr)
		if !op.Drop {
			buf := make([]byte, op.MLen)
			req.Region.ReadAt(req.Off, buf)
			op.Region.WriteAt(op.Off, buf)
			if ack := dst.Delivered(op, true); ack != nil {
				b.Send(ack)
			}
		}
		b.lib.SendDone(req, true)
	case wire.TypeGet:
		op := dst.ReceiveGet(&req.Hdr)
		if !op.Drop {
			reply := op.Reply
			init := b.net.libs[core.ProcessID{Nid: reply.Hdr.DstNid, Pid: reply.Hdr.DstPid}]
			rop := init.ReceiveReply(&reply.Hdr)
			if !rop.Drop {
				buf := make([]byte, rop.MLen)
				reply.Region.ReadAt(reply.Off, buf)
				rop.Region.WriteAt(rop.Off, buf)
				init.Delivered(rop, true)
			}
			dst.ReplySent(op)
		}
	case wire.TypeAck:
		dst.ReceiveAck(&req.Hdr)
	}
}

func newExampleNet() (*exampleNet, func(nid, pid uint32) *core.Lib) {
	net := &exampleNet{s: sim.New(), libs: map[core.ProcessID]*core.Lib{}}
	return net, func(nid, pid uint32) *core.Lib {
		be := &exampleBackend{net: net}
		l := core.NewLib(net.s, core.ProcessID{Nid: nid, Pid: pid}, pid, core.Limits{}, be)
		be.lib = l
		net.libs[l.ID()] = l
		return l
	}
}

// Example_put shows the canonical receive-side setup (event queue, match
// entry, memory descriptor) and a one-sided put into it.
func Example_put() {
	_, newLib := newExampleNet()
	receiver := newLib(1, 1)
	sender := newLib(0, 1)

	// Receiver: EQ + ME on portal 4 matching bits 0xC0FFEE + MD.
	eq, _ := receiver.EQAlloc(8)
	me, _ := receiver.MEAttach(4, core.ProcessID{Nid: core.NidAny, Pid: core.PidAny},
		0xC0FFEE, 0, core.Retain, core.After)
	inbox := make(core.SliceRegion, 64)
	receiver.MDAttach(me, core.MDesc{
		Region:    inbox,
		Threshold: core.ThresholdInfinite,
		Options:   core.MDOpPut,
		EQ:        eq,
	}, core.Retain)

	// Sender: bind a descriptor over the message and put it.
	msg := core.SliceRegion("greetings via one-sided put")
	md, _ := sender.MDBind(core.MDesc{Region: msg, Threshold: core.ThresholdInfinite})
	sender.Put(md, core.NoAck, receiver.ID(), 4, 0xC0FFEE, 0, 0)

	for {
		ev, err := receiver.EQGet(eq)
		if err != nil {
			break
		}
		fmt.Printf("%v from %v, %d bytes\n", ev.Type, ev.Initiator, ev.MLength)
	}
	fmt.Printf("inbox: %s\n", inbox[:27])
	// Output:
	// PUT_START from 0:1, 27 bytes
	// PUT_END from 0:1, 27 bytes
	// inbox: greetings via one-sided put
}

// Example_get shows the pull side: the target exposes memory with MDOpGet
// and the initiator fetches it.
func Example_get() {
	_, newLib := newExampleNet()
	owner := newLib(1, 1)
	reader := newLib(0, 1)

	exposed := core.SliceRegion("data owned by node 1")
	me, _ := owner.MEAttach(2, core.ProcessID{Nid: core.NidAny, Pid: core.PidAny},
		0xDA7A, 0, core.Retain, core.After)
	owner.MDAttach(me, core.MDesc{
		Region:    exposed,
		Threshold: core.ThresholdInfinite,
		Options:   core.MDOpGet | core.MDManageRemote,
	}, core.Retain)

	dst := make(core.SliceRegion, exposed.Len())
	eq, _ := reader.EQAlloc(8)
	md, _ := reader.MDBind(core.MDesc{Region: dst, Threshold: core.ThresholdInfinite, EQ: eq})
	reader.Get(md, owner.ID(), 2, 0xDA7A, 0)

	ev, _ := reader.EQGet(eq)
	fmt.Printf("%v: %s\n", ev.Type, dst)
	// Output:
	// REPLY_START: data owned by node 1
}

// Example_matching demonstrates match bits with an ignore mask: one entry
// serves a whole tag range.
func Example_matching() {
	_, newLib := newExampleNet()
	rx := newLib(1, 1)
	tx := newLib(0, 1)

	// Accept any message whose high 32 bits equal 0xAB; ignore the low 32.
	me, _ := rx.MEAttach(0, core.ProcessID{Nid: core.NidAny, Pid: core.PidAny},
		0xAB<<32, 0xFFFFFFFF, core.Retain, core.After)
	inbox := make(core.SliceRegion, 64)
	eq, _ := rx.EQAlloc(8)
	rx.MDAttach(me, core.MDesc{Region: inbox, Threshold: core.ThresholdInfinite,
		Options: core.MDOpPut | core.MDEventStartDisable, EQ: eq}, core.Retain)

	for _, tag := range []uint64{7, 99, 12345} {
		md, _ := tx.MDBind(core.MDesc{Region: core.SliceRegion{byte(tag)}, Threshold: core.ThresholdInfinite})
		tx.Put(md, core.NoAck, rx.ID(), 0, 0xAB<<32|tag, 0, 0)
	}
	// A different high word does not match and is dropped.
	md, _ := tx.MDBind(core.MDesc{Region: core.SliceRegion{0}, Threshold: core.ThresholdInfinite})
	tx.Put(md, core.NoAck, rx.ID(), 0, 0xAC<<32, 0, 0)

	n := 0
	for {
		ev, err := rx.EQGet(eq)
		if err != nil {
			break
		}
		fmt.Printf("matched tag %d\n", ev.MatchBits&0xFFFFFFFF)
		n++
	}
	fmt.Printf("delivered %d, dropped %d\n", n, rx.Status(core.SRDropCount))
	// Output:
	// matched tag 7
	// matched tag 99
	// matched tag 12345
	// delivered 3, dropped 1
}
