package core

import (
	"fmt"

	"portals3/internal/sim"
	"portals3/internal/trace"
)

// EventType enumerates Portals event kinds (ptl_event_kind_t).
type EventType int

// Event kinds. START events fire when the library begins processing an
// operation (the header has been matched); END events fire when the data
// movement has completed.
const (
	// EventGetStart/End: an incoming get began/finished at the target.
	EventGetStart EventType = iota
	EventGetEnd
	// EventPutStart/End: an incoming put began/finished at the target.
	EventPutStart
	EventPutEnd
	// EventReplyStart/End: the reply to our get began/finished arriving.
	EventReplyStart
	EventReplyEnd
	// EventSendStart/End: our outgoing put began/finished transmission
	// (END means the local buffer may be reused).
	EventSendStart
	EventSendEnd
	// EventAck: the acknowledgment for our put arrived.
	EventAck
	// EventUnlink: a match entry or memory descriptor was automatically
	// unlinked (threshold or max_size exhaustion).
	EventUnlink
)

func (t EventType) String() string {
	names := [...]string{"GET_START", "GET_END", "PUT_START", "PUT_END",
		"REPLY_START", "REPLY_END", "SEND_START", "SEND_END", "ACK", "UNLINK"}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("EventType(%d)", int(t))
}

// Event is one entry in an event queue (ptl_event_t).
type Event struct {
	Type      EventType
	Initiator ProcessID // who caused the event
	UID       uint32
	PtlIndex  int
	MatchBits uint64
	RLength   int // requested length
	MLength   int // manipulated (actually moved) length
	Offset    int // offset the operation used in the descriptor
	MD        MDHandle
	User      interface{} // the descriptor's user pointer (ptl_event_t md.user_ptr)
	HdrData   uint64
	Unlinked  bool // the operation auto-unlinked the descriptor
	NIFail    bool // delivery failed (end-to-end CRC error)
	Sequence  uint64
	At        sim.Time // virtual time the event was posted (diagnostic)
}

// EQ is an event queue: a fixed-size ring written by the library and read
// by the application. Overflow drops the newest events and poisons the
// queue with ErrEQDropped, as the specification requires.
type EQ struct {
	lib     *Lib
	handle  EQHandle
	ring    []Event
	head    int // next slot to read
	count   int // occupied slots
	dropped bool
	seq     uint64
	freed   bool

	// signal wakes processes blocked in EQWait; the NAL arranges the
	// delivery costs, the queue only does bookkeeping.
	signal *sim.Signal
}

func newEQ(lib *Lib, h EQHandle, size int) *EQ {
	return &EQ{lib: lib, handle: h, ring: make([]Event, size), signal: sim.NewSignal(lib.sim)}
}

// post appends an event, dropping it (and poisoning the queue) on overflow.
// The wakeup signal may be deferred by the NAL driver (Lib.BeginDefer) so
// blocked processes resume only when the kernel finishes processing the
// triggering message, as on the real machine.
func (q *EQ) post(ev Event) {
	if q.lib.deferWake {
		q.lib.deferred = append(q.lib.deferred, deferredEvent{q: q, ev: ev})
		return
	}
	q.insert(ev)
}

// insert writes the event record into the (host-memory) ring and wakes
// waiters.
func (q *EQ) insert(ev Event) {
	if q.freed {
		return
	}
	q.seq++
	ev.Sequence = q.seq
	ev.At = q.lib.sim.Now()
	if q.count == len(q.ring) {
		q.dropped = true
		q.lib.counters.eqDrops++
	} else {
		q.ring[(q.head+q.count)%len(q.ring)] = ev
		q.count++
	}
	if q.lib.Trace.Enabled() {
		q.lib.Trace.Instant(int(q.lib.id.Nid), trace.TrackApp, "portals", ev.Type.String(), q.lib.sim.Now(),
			map[string]interface{}{"pid": q.lib.id.Pid, "mlen": ev.MLength, "seq": ev.Sequence})
	}
	q.signal.Raise()
}

// get removes the oldest event. It returns ErrEQDropped (with a valid
// event, if one is available) when overflow has lost events, clearing the
// poisoned state; ErrEQEmpty when nothing is pending.
func (q *EQ) get() (Event, error) {
	if q.count == 0 {
		if q.dropped {
			q.dropped = false
			return Event{}, ErrEQDropped
		}
		return Event{}, ErrEQEmpty
	}
	ev := q.ring[q.head]
	q.head = (q.head + 1) % len(q.ring)
	q.count--
	if q.dropped {
		q.dropped = false
		return ev, ErrEQDropped
	}
	return ev, nil
}

// Pending reports queued events.
func (q *EQ) Pending() int { return q.count }

// Signal exposes the wakeup used by blocking waits. NAL bridges use it to
// implement PtlEQWait; tests use it to observe wakeups.
func (q *EQ) Signal() *sim.Signal { return q.signal }
