package core

// MDesc is the user-visible memory descriptor definition (ptl_md_t): the
// memory it exposes, what operations it accepts, and how it is consumed.
type MDesc struct {
	// Region is the exposed memory.
	Region Region
	// Threshold is the number of operations the descriptor accepts before
	// becoming inactive; ThresholdInfinite disables counting.
	Threshold int
	// MaxSize participates in the MDMaxSize unlink rule.
	MaxSize int
	// Options is the MDOptions bitmask.
	Options MDOptions
	// EQ receives the descriptor's events; NoEQ for none.
	EQ EQHandle
	// User is an opaque pointer carried through for the application
	// (ptl_md_t user_ptr); upper layers like MPI hang request state on it.
	User interface{}
}

// md is the library-internal memory descriptor state.
type md struct {
	handle MDHandle
	desc   MDesc

	threshold   int // remaining operations; -1 = infinite
	localOffset int // advances per op unless MDManageRemote
	inflight    int // operations started but not yet completed
	exhausted   bool
	dead        bool

	me     *me // attached match entry, nil for a free-floating descriptor
	unlink Unlink
}

// validateMDesc rejects malformed descriptors.
func (l *Lib) validateMDesc(d *MDesc) error {
	if d.Region == nil {
		return ErrMDIllegal
	}
	if d.Threshold < ThresholdInfinite {
		return ErrMDIllegal
	}
	if d.Options&MDMaxSize != 0 && d.MaxSize <= 0 {
		return ErrMDIllegal
	}
	if d.EQ != NoEQ && d.EQ != 0 {
		if _, ok := l.eqs.get(uint32(d.EQ)); !ok {
			return ErrInvalidHandle
		}
	}
	return nil
}

func (l *Lib) newMD(d MDesc, unlink Unlink) (*md, error) {
	if err := l.validateMDesc(&d); err != nil {
		return nil, err
	}
	var m *md
	if n := len(l.mdFree); n > 0 {
		m = l.mdFree[n-1]
		l.mdFree[n-1] = nil
		l.mdFree = l.mdFree[:n-1]
		*m = md{desc: d, threshold: d.Threshold, unlink: unlink}
	} else {
		m = &md{desc: d, threshold: d.Threshold, unlink: unlink}
	}
	// A zero threshold means the descriptor starts inactive.
	m.exhausted = d.Threshold == 0
	h, err := l.mds.alloc(m)
	if err != nil {
		return nil, err
	}
	m.handle = MDHandle(h)
	return m, nil
}

// MDAttach attaches a memory descriptor to a match entry (PtlMDAttach).
// The entry must not already have one.
func (l *Lib) MDAttach(meh MEHandle, d MDesc, unlink Unlink) (MDHandle, error) {
	e, ok := l.mes.get(uint32(meh))
	if !ok || e.unlinked {
		return NoMD, ErrInvalidHandle
	}
	if e.md != nil {
		return NoMD, ErrMEInUse
	}
	m, err := l.newMD(d, unlink)
	if err != nil {
		return NoMD, err
	}
	m.me = e
	e.md = m
	return m.handle, nil
}

// MDBind creates a free-floating memory descriptor (PtlMDBind), the kind
// initiators use with Put and Get. Free-floating descriptors are always
// explicitly unlinked (PTL_UNLINK is illegal for them in 3.3; we accept
// Retain only).
func (l *Lib) MDBind(d MDesc) (MDHandle, error) {
	m, err := l.newMD(d, Retain)
	if err != nil {
		return NoMD, err
	}
	return m.handle, nil
}

// MDUnlink destroys a memory descriptor (PtlMDUnlink). Fails with
// ErrMDInUse while operations are in flight.
func (l *Lib) MDUnlink(h MDHandle) error {
	m, ok := l.mds.get(uint32(h))
	if !ok || m.dead {
		return ErrInvalidHandle
	}
	if m.inflight > 0 {
		return ErrMDInUse
	}
	l.destroyMD(m)
	return nil
}

// destroyMD detaches and releases the descriptor. The struct joins the free
// list but keeps its fields until reused — completion paths that unlink via
// maybeAutoUnlink still read desc and handle to post their final events, and
// no allocation can intervene before they finish.
func (l *Lib) destroyMD(m *md) {
	if m.dead {
		return
	}
	m.dead = true
	if m.me != nil {
		m.me.md = nil
		m.me = nil
	}
	l.mds.release(uint32(m.handle))
	l.mdFree = append(l.mdFree, m)
}

// MDUpdate atomically replaces a descriptor's definition (PtlMDUpdate).
// old, when non-nil, receives the current definition. new, when non-nil, is
// applied only if testEQ is empty (pass NoEQ for unconditional update); the
// conditional failing returns ErrMDNoUpdate. A descriptor with operations
// in flight cannot be updated.
func (l *Lib) MDUpdate(h MDHandle, old, newDesc *MDesc, testEQ EQHandle) error {
	m, ok := l.mds.get(uint32(h))
	if !ok || m.dead {
		return ErrInvalidHandle
	}
	if old != nil {
		*old = m.desc
	}
	if newDesc == nil {
		return nil
	}
	if m.inflight > 0 {
		return ErrMDInUse
	}
	if testEQ != NoEQ {
		q, ok := l.eqs.get(uint32(testEQ))
		if !ok {
			return ErrInvalidHandle
		}
		if q.count > 0 {
			return ErrMDNoUpdate
		}
	}
	if err := l.validateMDesc(newDesc); err != nil {
		return err
	}
	m.desc = *newDesc
	m.threshold = newDesc.Threshold
	m.localOffset = 0
	m.exhausted = false
	return nil
}

// MDUser returns the opaque user pointer stored in the descriptor, used by
// upper layers to recover per-request state from events.
func (l *Lib) MDUser(h MDHandle) (interface{}, bool) {
	m, ok := l.mds.get(uint32(h))
	if !ok || m.dead {
		return nil, false
	}
	return m.desc.User, true
}

// consume decrements the threshold for one accepted operation and reports
// whether the descriptor is now exhausted.
func (m *md) consume() {
	if m.threshold != ThresholdInfinite {
		m.threshold--
		if m.threshold <= 0 {
			m.exhausted = true
		}
	}
}

// active reports whether the descriptor can accept another operation.
func (m *md) active() bool {
	return !m.dead && !m.exhausted
}

// avail returns the bytes remaining past the given offset.
func (m *md) avail(off int) int {
	n := m.desc.Region.Len() - off
	if n < 0 {
		return 0
	}
	return n
}

// maybeAutoUnlink applies the threshold and max_size unlink rules after an
// operation completes. It returns true (and posts nothing itself) when the
// descriptor was unlinked; the caller posts the unlink event since it knows
// the event context.
func (l *Lib) maybeAutoUnlink(m *md) bool {
	if m.dead || m.inflight > 0 {
		return false
	}
	exhaustedBySize := m.desc.Options&MDMaxSize != 0 && m.avail(m.localOffset) < m.desc.MaxSize
	if !m.exhausted && !exhaustedBySize {
		return false
	}
	if m.unlink != UnlinkAuto {
		return false
	}
	e := m.me
	l.destroyMD(m)
	if e != nil && e.unlink == UnlinkAuto {
		l.removeME(e)
	}
	return true
}
