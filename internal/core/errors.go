// Package core implements the Portals 3.3 message-passing interface — the
// paper's primary contribution. It provides the full API surface of the
// Sandia/UNM specification: network interfaces, portal tables, match entries
// with match/ignore bits, memory descriptors with thresholds and offset
// management, event queues, access control entries, and the one-sided
// Put/Get operations with acknowledgments and replies.
//
// The library is address-space agnostic, exactly like the reference
// implementation the paper describes (§3.1): the same matching and delivery
// code runs in the host kernel for generic mode and on the NIC processor for
// accelerated mode. Crossing costs (traps, interrupts, command pushes) are
// charged by the NAL bridges in package nal, never here, so the semantics
// stay pure and independently testable.
package core

import "errors"

// Portals return codes. Names follow the specification's PTL_* constants,
// Go-ified. Functions return nil on PTL_OK.
var (
	// ErrNoInit: the network interface has not been initialized.
	ErrNoInit = errors.New("PTL_NO_INIT: interface not initialized")
	// ErrInvalidHandle: a handle does not name a live object.
	ErrInvalidHandle = errors.New("PTL_INVALID_HANDLE: stale or bogus handle")
	// ErrPtIndexInvalid: portal table index out of range.
	ErrPtIndexInvalid = errors.New("PTL_PT_INDEX_INVALID: portal index out of range")
	// ErrAcIndexInvalid: access control table index out of range.
	ErrAcIndexInvalid = errors.New("PTL_AC_INDEX_INVALID: ACL index out of range")
	// ErrMDIllegal: a memory descriptor is malformed (bad region, options).
	ErrMDIllegal = errors.New("PTL_MD_ILLEGAL: malformed memory descriptor")
	// ErrMDInUse: unlink/update refused, operations are in flight.
	ErrMDInUse = errors.New("PTL_MD_IN_USE: memory descriptor busy")
	// ErrMDNoUpdate: MDUpdate's conditional failed (event queue not empty).
	ErrMDNoUpdate = errors.New("PTL_MD_NO_UPDATE: conditional update failed")
	// ErrMEInUse: the match entry still has a memory descriptor attached.
	ErrMEInUse = errors.New("PTL_ME_IN_USE: match entry busy")
	// ErrMEListTooLong: match list length limit exceeded.
	ErrMEListTooLong = errors.New("PTL_ME_LIST_TOO_LONG: match list limit exceeded")
	// ErrEQEmpty: no event pending.
	ErrEQEmpty = errors.New("PTL_EQ_EMPTY: no event")
	// ErrEQDropped: events were lost to event-queue overflow.
	ErrEQDropped = errors.New("PTL_EQ_DROPPED: event queue overflowed, events lost")
	// ErrNoSpace: a resource pool (ME, MD, EQ, AC) is exhausted.
	ErrNoSpace = errors.New("PTL_NO_SPACE: resource exhausted")
	// ErrProcessInvalid: the target process identifier is not valid.
	ErrProcessInvalid = errors.New("PTL_PROCESS_INVALID: bad process id")
	// ErrSegv: a memory descriptor references memory outside the region.
	ErrSegv = errors.New("PTL_SEGV: bad memory reference")
	// ErrInvalidArg catches remaining argument validation failures.
	ErrInvalidArg = errors.New("PTL_INVALID_ARG: invalid argument")
)

// DropReason explains why an incoming message was discarded at the target.
// Drops are counted in the SRDropCount status register; the initiator is
// not notified (one-sided semantics).
type DropReason int

// Reasons an incoming operation can be dropped.
const (
	DropNone       DropReason = iota
	DropNoPtlEntry            // portal index out of range or unused
	DropACDenied              // no access control entry permits the sender
	DropNoMatch               // no match entry matched
	DropNoMD                  // matched entry has no memory descriptor
	DropWrongOp               // MD does not allow this operation type
	DropThreshold             // MD threshold exhausted
	DropNoFit                 // message larger than remaining space, no truncate
	DropBadHandle             // reply/ack names a dead MD
	DropCRC                   // end-to-end CRC failure
)

func (r DropReason) String() string {
	names := [...]string{"none", "no-ptl-entry", "acl-denied", "no-match",
		"no-md", "wrong-op", "threshold", "no-fit", "bad-handle", "crc"}
	if int(r) < len(names) {
		return names[r]
	}
	return "unknown"
}
