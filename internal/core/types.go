package core

import "fmt"

// ProcessID identifies a Portals process: a node id and a process id, the
// ptl_process_id_t of the specification.
type ProcessID struct {
	Nid uint32
	Pid uint32
}

// Wildcards for match entry source matching.
const (
	NidAny uint32 = 0xFFFFFFFF
	PidAny uint32 = 0xFFFFFFFF
)

func (p ProcessID) String() string { return fmt.Sprintf("%d:%d", p.Nid, p.Pid) }

// Matches reports whether the concrete sender id satisfies p, honoring
// NidAny/PidAny wildcards in p.
func (p ProcessID) Matches(sender ProcessID) bool {
	return (p.Nid == NidAny || p.Nid == sender.Nid) &&
		(p.Pid == PidAny || p.Pid == sender.Pid)
}

// UIDAny is the access-control wildcard user id.
const UIDAny uint32 = 0xFFFFFFFF

// MDOptions is the memory descriptor option bitmask (ptl_md_t options).
type MDOptions uint32

// Memory descriptor options, mirroring PTL_MD_*.
const (
	// MDOpPut permits incoming put operations on this descriptor.
	MDOpPut MDOptions = 1 << iota
	// MDOpGet permits incoming get operations on this descriptor.
	MDOpGet
	// MDManageRemote: the initiator supplies the offset (remote managed);
	// otherwise the library manages a local offset that advances with each
	// operation.
	MDManageRemote
	// MDTruncate permits incoming operations longer than the remaining
	// space to be truncated rather than dropped.
	MDTruncate
	// MDAckDisable suppresses acknowledgments for puts that request one.
	MDAckDisable
	// MDEventStartDisable suppresses *_START events.
	MDEventStartDisable
	// MDEventEndDisable suppresses *_END events.
	MDEventEndDisable
	// MDMaxSize enables the max_size unlink rule: the descriptor is
	// unlinked when remaining space falls below MaxSize.
	MDMaxSize
)

// ThresholdInfinite disables threshold counting on a memory descriptor.
const ThresholdInfinite = -1

// Unlink selects automatic unlink behavior (ptl_unlink_t).
type Unlink int

// Unlink policies.
const (
	// Retain keeps the object linked when exhausted (PTL_RETAIN).
	Retain Unlink = iota
	// UnlinkAuto removes the object once exhausted (PTL_UNLINK).
	UnlinkAuto
)

// Position selects where MEInsert places a new entry (ptl_ins_pos_t).
type Position int

// Insert positions.
const (
	Before Position = iota // PTL_INS_BEFORE
	After                  // PTL_INS_AFTER
)

// AckReq selects whether a put requests an acknowledgment (ptl_ack_req_t).
type AckReq int

// Acknowledgment requests.
const (
	NoAck AckReq = iota // PTL_NOACK_REQ
	Ack                 // PTL_ACK_REQ
)

// StatusRegister selects an NI status counter (ptl_sr_index_t).
type StatusRegister int

// Status registers readable through NIStatus.
const (
	SRDropCount StatusRegister = iota
	SRRecvCount
	SRSendCount
	SRRecvLength
	SRSendLength
	SRCrcErrors
	srCount
)

// Limits bounds per-interface resource pools (ptl_ni_limits_t). Zero fields
// take DefaultLimits values.
type Limits struct {
	MaxMEs       int
	MaxMDs       int
	MaxEQs       int
	MaxPtIndices int
	MaxACEntries int
	MaxMEList    int // maximum entries on one portal index's match list
}

// DefaultLimits mirrors a comfortably sized Portals 3.3 configuration.
func DefaultLimits() Limits {
	return Limits{
		MaxMEs:       4096,
		MaxMDs:       4096,
		MaxEQs:       64,
		MaxPtIndices: 64,
		MaxACEntries: 16,
		MaxMEList:    4096,
	}
}

func (l Limits) withDefaults() Limits {
	d := DefaultLimits()
	if l.MaxMEs <= 0 {
		l.MaxMEs = d.MaxMEs
	}
	if l.MaxMDs <= 0 {
		l.MaxMDs = d.MaxMDs
	}
	if l.MaxEQs <= 0 {
		l.MaxEQs = d.MaxEQs
	}
	if l.MaxPtIndices <= 0 {
		l.MaxPtIndices = d.MaxPtIndices
	}
	if l.MaxACEntries <= 0 {
		l.MaxACEntries = d.MaxACEntries
	}
	if l.MaxMEList <= 0 {
		l.MaxMEList = d.MaxMEList
	}
	return l
}

// Region is the memory a descriptor exposes to the network. The host OS
// models provide the real implementations: Catamount memory is one
// physically contiguous segment, Linux memory is 4 KB pages that the kernel
// must pin and describe to the DMA engines page by page (paper §3.3).
type Region interface {
	// Len returns the region length in bytes.
	Len() int
	// ReadAt copies region bytes [off, off+len(p)) into p.
	ReadAt(off int, p []byte)
	// WriteAt copies p into region bytes [off, off+len(p)).
	WriteAt(off int, p []byte)
	// Segments returns how many physically contiguous pieces the region
	// spans — 1 on Catamount, the page count on Linux. The host must
	// pre-compute one DMA command per segment (paper §3.3).
	Segments() int
}

// SliceRegion is a trivially contiguous Region backed by a Go slice, used
// by tests and by kernel-space buffers.
type SliceRegion []byte

// Len returns the slice length.
func (r SliceRegion) Len() int { return len(r) }

// ReadAt copies out of the slice; out-of-range access panics (model bug).
func (r SliceRegion) ReadAt(off int, p []byte) { copy(p, r[off:off+len(p)]) }

// WriteAt copies into the slice; out-of-range access panics (model bug).
func (r SliceRegion) WriteAt(off int, p []byte) { copy(r[off:off+len(p)], p) }

// Segments reports one contiguous segment.
func (r SliceRegion) Segments() int { return 1 }
