// Package topo models the XT3 interconnect topology: a 3D mesh/torus of
// SeaStar routers with table-based, dimension-ordered routing.
//
// The paper's Red Storm installation is a 3D network that is a torus only in
// the Z dimension — the classified/unclassified switching cabinets and cable
// lengths prevent wraparound in X and Y — so the package supports per-axis
// wraparound. Routing is deterministic dimension-order (X, then Y, then Z),
// which yields the fixed path between every pair of nodes and therefore the
// in-order packet delivery that Portals relies on.
package topo

import "fmt"

// Axis identifies one of the three torus dimensions.
type Axis int

// The three dimensions of the machine.
const (
	X Axis = iota
	Y
	Z
)

func (a Axis) String() string { return [...]string{"X", "Y", "Z"}[a] }

// Dir is a signed hop direction along an axis: the SeaStar router has six
// network ports, X+, X-, Y+, Y-, Z+, Z-.
type Dir struct {
	Axis Axis
	Sign int // +1 or -1
}

func (d Dir) String() string {
	if d.Sign >= 0 {
		return d.Axis.String() + "+"
	}
	return d.Axis.String() + "-"
}

// Coord is a router/node position in the 3D machine.
type Coord struct{ X, Y, Z int }

func (c Coord) String() string { return fmt.Sprintf("(%d,%d,%d)", c.X, c.Y, c.Z) }

// NodeID is a flat node identifier; the paper's Portals nid. IDs are dense,
// assigned in Z-major order (Z varies fastest), matching a cabinet layout
// where a cage is populated along Z.
type NodeID int32

// Topology describes a 3D mesh/torus.
type Topology struct {
	dims [3]int
	wrap [3]bool
}

// New returns a topology of nx × ny × nz nodes. wrapX/Y/Z select which axes
// are tori; a dimension of size ≤ 2 is never wrapped (wraparound would
// duplicate the single direct link).
func New(nx, ny, nz int, wrapX, wrapY, wrapZ bool) (*Topology, error) {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		return nil, fmt.Errorf("topo: dimensions must be positive, got %d×%d×%d", nx, ny, nz)
	}
	t := &Topology{dims: [3]int{nx, ny, nz}, wrap: [3]bool{wrapX, wrapY, wrapZ}}
	for a := 0; a < 3; a++ {
		if t.dims[a] <= 2 {
			t.wrap[a] = false
		}
	}
	return t, nil
}

// RedStorm returns the paper's Red Storm configuration: 27×16×24 = 10,368
// nodes, torus in Z only.
func RedStorm() *Topology {
	t, err := New(27, 16, 24, false, false, true)
	if err != nil {
		panic(err)
	}
	return t
}

// XT3Torus returns a commercial-XT3-style full torus of the given size.
func XT3Torus(nx, ny, nz int) (*Topology, error) {
	return New(nx, ny, nz, true, true, true)
}

// Nodes returns the node count.
func (t *Topology) Nodes() int { return t.dims[0] * t.dims[1] * t.dims[2] }

// Dims returns the per-axis sizes.
func (t *Topology) Dims() (nx, ny, nz int) { return t.dims[0], t.dims[1], t.dims[2] }

// Wrapped reports whether axis a is a torus.
func (t *Topology) Wrapped(a Axis) bool { return t.wrap[a] }

// Coord returns the position of node id.
func (t *Topology) Coord(id NodeID) Coord {
	n := int(id)
	z := n % t.dims[2]
	n /= t.dims[2]
	y := n % t.dims[1]
	x := n / t.dims[1]
	return Coord{x, y, z}
}

// ID returns the node at position c.
func (t *Topology) ID(c Coord) NodeID {
	return NodeID((c.X*t.dims[1]+c.Y)*t.dims[2] + c.Z)
}

// Valid reports whether id names a node.
func (t *Topology) Valid(id NodeID) bool { return id >= 0 && int(id) < t.Nodes() }

// axisStep computes the dimension-ordered step along axis a from position p
// toward position q: the hop direction and the remaining hop count. A torus
// axis takes the shorter way around, breaking exact ties toward +.
func (t *Topology) axisStep(a Axis, p, q int) (sign, hops int) {
	n := t.dims[a]
	if p == q {
		return 0, 0
	}
	fwd := (q - p + n) % n // hops going +
	bwd := (p - q + n) % n // hops going -
	if !t.wrap[a] {
		if q > p {
			return +1, q - p
		}
		return -1, p - q
	}
	if fwd <= bwd {
		return +1, fwd
	}
	return -1, bwd
}

// Route returns the deterministic dimension-ordered path from src to dst as
// a sequence of hop directions. The path is empty when src == dst. Because
// the path is a pure function of (src, dst), every packet of every message
// between a pair follows the same links — the property that gives the XT3
// in-order delivery.
func (t *Topology) Route(src, dst NodeID) []Dir {
	cs, cd := t.Coord(src), t.Coord(dst)
	var path []Dir
	from := [3]int{cs.X, cs.Y, cs.Z}
	to := [3]int{cd.X, cd.Y, cd.Z}
	for a := 0; a < 3; a++ {
		sign, hops := t.axisStep(Axis(a), from[a], to[a])
		for i := 0; i < hops; i++ {
			path = append(path, Dir{Axis: Axis(a), Sign: sign})
		}
	}
	return path
}

// Hops returns the path length from src to dst without materializing it.
func (t *Topology) Hops(src, dst NodeID) int {
	cs, cd := t.Coord(src), t.Coord(dst)
	from := [3]int{cs.X, cs.Y, cs.Z}
	to := [3]int{cd.X, cd.Y, cd.Z}
	total := 0
	for a := 0; a < 3; a++ {
		_, h := t.axisStep(Axis(a), from[a], to[a])
		total += h
	}
	return total
}

// Neighbor returns the node one hop from id in direction d, and false when
// the hop falls off a non-wrapped edge.
func (t *Topology) Neighbor(id NodeID, d Dir) (NodeID, bool) {
	c := t.Coord(id)
	v := [3]int{c.X, c.Y, c.Z}
	a := int(d.Axis)
	nv := v[a] + d.Sign
	if nv < 0 || nv >= t.dims[a] {
		if !t.wrap[a] {
			return 0, false
		}
		nv = (nv + t.dims[a]) % t.dims[a]
	}
	v[a] = nv
	return t.ID(Coord{v[0], v[1], v[2]}), true
}

// Walk applies the route from src to dst, returning every node visited
// including both endpoints. It is the reference executable specification of
// Route, used by tests.
func (t *Topology) Walk(src, dst NodeID) []NodeID {
	nodes := []NodeID{src}
	cur := src
	for _, d := range t.Route(src, dst) {
		next, ok := t.Neighbor(cur, d)
		if !ok {
			panic(fmt.Sprintf("topo: route from %d to %d fell off the mesh at %d going %v", src, dst, cur, d))
		}
		cur = next
		nodes = append(nodes, cur)
	}
	return nodes
}

// Diameter returns the maximum hop count over all node pairs, computed
// analytically per axis.
func (t *Topology) Diameter() int {
	d := 0
	for a := 0; a < 3; a++ {
		if t.wrap[a] {
			d += t.dims[a] / 2
		} else {
			d += t.dims[a] - 1
		}
	}
	return d
}

// NextHop returns the direction a packet for dst takes when it is at node
// at, and ok=false when at == dst (deliver locally). It is the entry a
// table-based router holds: "The table-based routers provide a fixed path
// between all nodes, resulting in in-order delivery of packets" (paper §2).
func (t *Topology) NextHop(at, dst NodeID) (Dir, bool) {
	ca, cd := t.Coord(at), t.Coord(dst)
	from := [3]int{ca.X, ca.Y, ca.Z}
	to := [3]int{cd.X, cd.Y, cd.Z}
	for a := 0; a < 3; a++ {
		sign, hops := t.axisStep(Axis(a), from[a], to[a])
		if hops > 0 {
			return Dir{Axis: Axis(a), Sign: sign}, true
		}
	}
	return Dir{}, false
}

// RouteTable materializes one node's full routing table: the next-hop
// direction for every destination (the entry for the node itself is
// meaningless and marked invalid). Real SeaStar routers held exactly this;
// the simulator computes hops on demand, and tests verify the two agree.
func (t *Topology) RouteTable(at NodeID) []Dir {
	table := make([]Dir, t.Nodes())
	for dst := NodeID(0); int(dst) < t.Nodes(); dst++ {
		if dst == at {
			continue
		}
		d, ok := t.NextHop(at, dst)
		if !ok {
			panic("topo: no next hop for distinct nodes")
		}
		table[dst] = d
	}
	return table
}
