package topo

import (
	"testing"
	"testing/quick"
)

func TestNewRejectsBadDims(t *testing.T) {
	for _, d := range [][3]int{{0, 1, 1}, {1, -1, 1}, {1, 1, 0}} {
		if _, err := New(d[0], d[1], d[2], false, false, false); err == nil {
			t.Errorf("New(%v) accepted invalid dims", d)
		}
	}
}

func TestRedStormShape(t *testing.T) {
	rs := RedStorm()
	if got := rs.Nodes(); got != 10368 {
		t.Errorf("Red Storm has %d nodes, want 10368 (paper §5.1)", got)
	}
	if rs.Wrapped(X) || rs.Wrapped(Y) || !rs.Wrapped(Z) {
		t.Error("Red Storm must be a torus in Z only (paper §5.1)")
	}
}

func TestTinyDimensionNeverWraps(t *testing.T) {
	tp, _ := New(2, 1, 4, true, true, true)
	if tp.Wrapped(X) || tp.Wrapped(Y) {
		t.Error("axes of size ≤2 must not wrap")
	}
	if !tp.Wrapped(Z) {
		t.Error("Z of size 4 should wrap as requested")
	}
}

func TestCoordIDRoundTrip(t *testing.T) {
	tp, _ := New(5, 7, 3, false, true, true)
	for id := NodeID(0); int(id) < tp.Nodes(); id++ {
		if got := tp.ID(tp.Coord(id)); got != id {
			t.Fatalf("roundtrip failed: %d -> %v -> %d", id, tp.Coord(id), got)
		}
	}
}

func TestRouteEndsAtDestination(t *testing.T) {
	tp, _ := New(4, 3, 5, false, false, true)
	for src := NodeID(0); int(src) < tp.Nodes(); src++ {
		for dst := NodeID(0); int(dst) < tp.Nodes(); dst++ {
			w := tp.Walk(src, dst)
			if w[len(w)-1] != dst {
				t.Fatalf("walk from %d to %d ends at %d", src, dst, w[len(w)-1])
			}
			if len(w)-1 != tp.Hops(src, dst) {
				t.Fatalf("walk length %d != Hops %d for %d->%d", len(w)-1, tp.Hops(src, dst), src, dst)
			}
		}
	}
}

func TestRouteIsDimensionOrdered(t *testing.T) {
	tp := RedStorm()
	src, dst := tp.ID(Coord{1, 2, 3}), tp.ID(Coord{20, 9, 21})
	path := tp.Route(src, dst)
	lastAxis := Axis(-1)
	for _, d := range path {
		if d.Axis < lastAxis {
			t.Fatalf("route not dimension ordered: %v", path)
		}
		lastAxis = d.Axis
	}
}

func TestTorusTakesShortWay(t *testing.T) {
	tp, _ := New(1, 1, 24, false, false, true)
	// 0 -> 23 should be one hop in Z- on a 24-torus.
	if got := tp.Hops(tp.ID(Coord{0, 0, 0}), tp.ID(Coord{0, 0, 23})); got != 1 {
		t.Errorf("torus shortcut: got %d hops, want 1", got)
	}
	// 0 -> 12 is the tie: 12 hops either way.
	if got := tp.Hops(tp.ID(Coord{0, 0, 0}), tp.ID(Coord{0, 0, 12})); got != 12 {
		t.Errorf("torus halfway: got %d hops, want 12", got)
	}
}

func TestMeshDoesNotWrap(t *testing.T) {
	tp, _ := New(27, 1, 1, false, false, false)
	if got := tp.Hops(tp.ID(Coord{0, 0, 0}), tp.ID(Coord{26, 0, 0})); got != 26 {
		t.Errorf("mesh end to end: got %d hops, want 26", got)
	}
	if _, ok := tp.Neighbor(tp.ID(Coord{0, 0, 0}), Dir{X, -1}); ok {
		t.Error("stepped off the edge of a mesh axis")
	}
}

func TestDiameterRedStorm(t *testing.T) {
	// 26 (X mesh) + 15 (Y mesh) + 12 (Z torus) = 53.
	if got := RedStorm().Diameter(); got != 53 {
		t.Errorf("Red Storm diameter = %d, want 53", got)
	}
}

func TestRouteProperties(t *testing.T) {
	tp, _ := New(6, 5, 8, false, true, true)
	n := NodeID(tp.Nodes())
	// Property: routes are fixed (deterministic), end at dst, have length
	// Hops(src,dst), and Hops is symmetric and satisfies identity.
	f := func(a, b uint16) bool {
		src, dst := NodeID(a)%n, NodeID(b)%n
		w := tp.Walk(src, dst)
		if w[len(w)-1] != dst {
			return false
		}
		if tp.Hops(src, dst) != tp.Hops(dst, src) {
			return false
		}
		if (tp.Hops(src, dst) == 0) != (src == dst) {
			return false
		}
		// Fixed path: routing twice gives the identical link sequence.
		r1, r2 := tp.Route(src, dst), tp.Route(src, dst)
		if len(r1) != len(r2) {
			return false
		}
		for i := range r1 {
			if r1[i] != r2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestHopsTriangleInequality(t *testing.T) {
	tp := RedStorm()
	n := NodeID(tp.Nodes())
	f := func(a, b, c uint16) bool {
		x, y, z := NodeID(a)%n, NodeID(b)%n, NodeID(c)%n
		return tp.Hops(x, z) <= tp.Hops(x, y)+tp.Hops(y, z)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDirString(t *testing.T) {
	if (Dir{X, 1}).String() != "X+" || (Dir{Z, -1}).String() != "Z-" {
		t.Error("Dir formatting wrong")
	}
}

func TestTableForwardingEqualsRoute(t *testing.T) {
	// Property: forwarding hop by hop through per-node tables reproduces
	// the precomputed route exactly — the fixed-path guarantee in-order
	// delivery rests on.
	tp, _ := New(5, 4, 6, false, true, true)
	n := NodeID(tp.Nodes())
	f := func(a, b uint16) bool {
		src, dst := NodeID(a)%n, NodeID(b)%n
		want := tp.Route(src, dst)
		cur := src
		var got []Dir
		for cur != dst {
			d, ok := tp.NextHop(cur, dst)
			if !ok {
				return false
			}
			got = append(got, d)
			next, ok := tp.Neighbor(cur, d)
			if !ok {
				return false
			}
			cur = next
			if len(got) > tp.Nodes() {
				return false // routing loop
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRouteTableCoversAllDestinations(t *testing.T) {
	tp := RedStorm()
	at := tp.ID(Coord{X: 13, Y: 8, Z: 11})
	table := tp.RouteTable(at)
	if len(table) != tp.Nodes() {
		t.Fatalf("table size %d", len(table))
	}
	// Spot-check a handful of destinations against NextHop.
	for _, dst := range []NodeID{0, 1, at + 1, NodeID(tp.Nodes() - 1)} {
		if dst == at {
			continue
		}
		d, ok := tp.NextHop(at, dst)
		if !ok || table[dst] != d {
			t.Errorf("table[%d] = %v, NextHop = %v ok=%v", dst, table[dst], d, ok)
		}
	}
	// Every entry must point at a live neighbor.
	for dst, d := range table {
		if NodeID(dst) == at {
			continue
		}
		if _, ok := tp.Neighbor(at, d); !ok {
			t.Fatalf("table[%d] = %v points off the mesh", dst, d)
		}
	}
}
