package fw

// Test hooks for white-box assertions.

// SegsInRange exposes the DMA segment computation.
func (n *NIC) SegsInRange(buf Buffer, off, nbytes int) int { return n.segsInRange(buf, off, nbytes) }

// TxQueueLen exposes the TX pending list depth.
func (n *NIC) TxQueueLen() int { return len(n.txq) - n.txqHead }

// SourceCount exposes the active source table size.
func (n *NIC) SourceCount() int { return len(n.sources) }

// SourcesFree exposes the remaining global source-pool capacity.
func (n *NIC) SourcesFree() int { return n.sourceFree }
