package fw

import (
	"bytes"
	"testing"

	"portals3/internal/fabric"
	"portals3/internal/model"
	"portals3/internal/seastar"
	"portals3/internal/sim"
	"portals3/internal/topo"
	"portals3/internal/wire"
)

// sliceBuf is a contiguous host buffer for tests.
type sliceBuf []byte

func (b sliceBuf) Len() int                  { return len(b) }
func (b sliceBuf) ReadAt(off int, p []byte)  { copy(p, b[off:off+len(p)]) }
func (b sliceBuf) WriteAt(off int, p []byte) { copy(b[off:off+len(p)], p) }
func (b sliceBuf) Segments() int             { return 1 }

// pagedBuf fakes a Linux paged buffer: same storage, many segments.
type pagedBuf []byte

func (b pagedBuf) Len() int                  { return len(b) }
func (b pagedBuf) ReadAt(off int, p []byte)  { copy(p, b[off:off+len(p)]) }
func (b pagedBuf) WriteAt(off int, p []byte) { copy(b[off:off+len(p)], p) }
func (b pagedBuf) Segments() int             { return (len(b) + 4095) / 4096 }

// testHost is a minimal generic-mode host driver: it answers NewHeader
// events with receive commands, collects completions, and releases
// pendings — everything package nal does, minus Portals and interrupts.
type testHost struct {
	s   *sim.Sim
	nic *NIC

	recv         [][]byte // payloads received, in completion order
	rxOK         []bool
	txDone       int
	holdPendings bool     // do not Release (provokes exhaustion)
	releaseAt    sim.Time // when holdPendings, release this much later
	held         []*Pending
	events       []EventKind
}

func (h *testHost) handle(ev Event) {
	h.events = append(h.events, ev.Kind)
	switch ev.Kind {
	case EvNewHeader:
		p := ev.Pending
		if p.Complete() {
			h.recv = append(h.recv, append([]byte(nil), p.Inline...))
			h.rxOK = append(h.rxOK, ev.OK)
			h.finish(p)
			return
		}
		buf := make(sliceBuf, p.PayloadLen())
		self := h
		p.SubmitRx(buf, 0, p.PayloadLen(), func(ok bool) {
			self.recv = append(self.recv, buf)
			self.rxOK = append(self.rxOK, ok)
		})
	case EvRxDone:
		if d := ev.Pending.Done(); d != nil {
			d(ev.OK)
		}
		h.finish(ev.Pending)
	case EvTxDone:
		h.txDone++
		if ev.Tx.Done != nil {
			ev.Tx.Done(ev.OK)
		}
	}
}

func (h *testHost) finish(p *Pending) {
	if h.holdPendings {
		h.held = append(h.held, p)
		h.s.After(h.releaseAt, func() { p.Release() })
		return
	}
	p.Release()
}

type fwPair struct {
	s    *sim.Sim
	p    model.Params
	fab  *fabric.Fabric
	nics [2]*NIC
	host [2]*testHost
}

func newFwPair(t *testing.T, p model.Params, pendings int, policy ExhaustPolicy) *fwPair {
	return newFwPairAsym(t, p, [2]int{pendings, pendings}, policy)
}

// newFwPairAsym builds two connected NICs with per-node pending pool sizes
// (element i for node i) — receiver-side exhaustion tests need a starved
// receiver but a roomy sender.
func newFwPairAsym(t *testing.T, p model.Params, pendings [2]int, policy ExhaustPolicy) *fwPair {
	t.Helper()
	s := sim.New()
	tp, err := topo.New(2, 1, 1, false, false, false)
	if err != nil {
		t.Fatal(err)
	}
	fp := &fwPair{s: s, p: p, fab: fabric.New(s, tp, &p)}
	for i := 0; i < 2; i++ {
		chip := seastar.New(s, &p, topo.NodeID(i))
		nic, err := New(s, &p, chip, fp.fab, topo.NodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		nic.Policy = policy
		host := &testHost{s: s, nic: nic}
		if _, err := nic.RegisterGeneric(pendings[i], host.handle); err != nil {
			t.Fatal(err)
		}
		fp.nics[i] = nic
		fp.host[i] = host
	}
	return fp
}

// put submits a put of payload from node a to node b.
func (fp *fwPair) put(a, b int, payload []byte, done func(ok bool)) error {
	hdr := wire.Header{
		Type:   wire.TypePut,
		SrcNid: uint32(a),
		DstNid: uint32(b),
		Length: uint32(len(payload)),
	}
	return fp.nics[a].SubmitTx(&TxReq{
		Pid:  1,
		Hdr:  hdr,
		Buf:  sliceBuf(payload),
		Len:  len(payload),
		Done: done,
	})
}

func TestInlinePutSingleEventAndData(t *testing.T) {
	fp := newFwPair(t, model.Defaults(), 64, ExhaustPanic)
	payload := []byte("tiny12bytes!")
	if err := fp.put(0, 1, payload, nil); err != nil {
		t.Fatal(err)
	}
	fp.s.Run()
	h := fp.host[1]
	if len(h.recv) != 1 || !bytes.Equal(h.recv[0], payload) {
		t.Fatalf("received %q", h.recv)
	}
	if !h.rxOK[0] {
		t.Error("clean inline message flagged as CRC failure")
	}
	for _, k := range h.events {
		if k == EvRxDone {
			t.Error("inline message should not produce a separate RX_DONE (saves an interrupt, §6)")
		}
	}
	if fp.nics[1].Stats.InlineRx != 1 {
		t.Errorf("InlineRx = %d", fp.nics[1].Stats.InlineRx)
	}
	if fp.host[0].txDone != 1 {
		t.Errorf("sender TX_DONE count = %d", fp.host[0].txDone)
	}
}

func TestChunkedPutDeliversExactBytes(t *testing.T) {
	fp := newFwPair(t, model.Defaults(), 64, ExhaustPanic)
	payload := make([]byte, 70000)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if err := fp.put(0, 1, payload, nil); err != nil {
		t.Fatal(err)
	}
	fp.s.Run()
	h := fp.host[1]
	if len(h.recv) != 1 {
		t.Fatalf("completions = %d", len(h.recv))
	}
	if !bytes.Equal(h.recv[0], payload) {
		t.Error("payload corrupted in flight")
	}
	if !h.rxOK[0] {
		t.Error("CRC flagged a clean transfer")
	}
	// Both events must have fired: header first, completion later.
	if h.events[0] != EvNewHeader || h.events[len(h.events)-1] != EvRxDone {
		t.Errorf("event order: %v", h.events)
	}
}

func TestTransmitsSerializeThroughSingleFIFO(t *testing.T) {
	fp := newFwPair(t, model.Defaults(), 64, ExhaustPanic)
	var order []int
	fp.put(0, 1, make([]byte, 32<<10), func(bool) { order = append(order, 1) })
	fp.put(0, 1, make([]byte, 100), func(bool) { order = append(order, 2) })
	fp.s.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("TX completion order %v: the short message must queue behind the long one (§4.3)", order)
	}
	if len(fp.host[1].recv) != 2 {
		t.Fatalf("received %d messages", len(fp.host[1].recv))
	}
}

func TestEndToEndCRCFailureFlagged(t *testing.T) {
	fp := newFwPair(t, model.Defaults(), 64, ExhaustPanic)
	fp.fab.CorruptNext(1)
	fp.put(0, 1, make([]byte, 8192), nil)
	fp.s.Run()
	h := fp.host[1]
	if len(h.rxOK) != 1 || h.rxOK[0] {
		t.Errorf("rxOK = %v, want one failed delivery", h.rxOK)
	}
	if fp.nics[1].Stats.CrcFails != 1 {
		t.Errorf("CrcFails = %d", fp.nics[1].Stats.CrcFails)
	}
}

func TestExhaustionPanicsUnderDefaultPolicy(t *testing.T) {
	// Pool of 2 pendings → 1 RX pending. Two un-released messages must
	// trip the paper's panic behavior.
	fp := newFwPairAsym(t, model.Defaults(), [2]int{64, 2}, ExhaustPanic)
	panicked := ""
	fp.nics[1].OnPanic = func(reason string) { panicked = reason }
	fp.host[1].holdPendings = true
	fp.host[1].releaseAt = sim.Second // effectively never
	fp.put(0, 1, []byte("a"), nil)
	fp.put(0, 1, []byte("b"), nil)
	fp.s.RunUntil(sim.Millisecond)
	if panicked == "" {
		t.Fatal("resource exhaustion did not panic the node (§4.3 default)")
	}
}

func TestGoBackNRecoversFromExhaustion(t *testing.T) {
	p := model.Defaults()
	fp := newFwPairAsym(t, p, [2]int{64, 2}, ExhaustGoBackN) // 1 RX pending at the receiver
	fp.host[1].holdPendings = true
	fp.host[1].releaseAt = 40 * sim.Microsecond
	sent := 5
	doneCount := 0
	for i := 0; i < sent; i++ {
		payload := bytes.Repeat([]byte{byte('A' + i)}, 8)
		if err := fp.put(0, 1, payload, func(ok bool) {
			if ok {
				doneCount++
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	fp.s.RunUntil(20 * sim.Millisecond)
	h := fp.host[1]
	if len(h.recv) != sent {
		t.Fatalf("delivered %d of %d under go-back-n", len(h.recv), sent)
	}
	for i, b := range h.recv {
		want := byte('A' + i)
		if b[0] != want {
			t.Errorf("message %d out of order: got %q", i, b)
		}
	}
	if doneCount != sent {
		t.Errorf("sender completions = %d, want %d", doneCount, sent)
	}
	st := fp.nics[1].Stats
	if st.Exhaustions == 0 || st.NacksSent == 0 {
		t.Errorf("expected exhaustion+nack activity, got %+v", st)
	}
	if fp.nics[0].Stats.Retransmits == 0 {
		t.Error("sender never retransmitted")
	}
}

func TestGoBackNCRCFailureDeliversFlaggedAndAcks(t *testing.T) {
	// A CRC failure detected at completion cannot be retransmitted — the
	// host has already matched the header — so go-back-n delivers it
	// flagged (Portals NI_FAIL semantics) and acknowledges it so the
	// sender completes and the flow keeps moving.
	p := model.Defaults()
	fp := newFwPair(t, p, 64, ExhaustGoBackN)
	fp.fab.CorruptNext(1)
	done := 0
	fp.put(0, 1, make([]byte, 4096), func(ok bool) { done++ })
	fp.put(0, 1, []byte("after"), func(ok bool) { done++ })
	fp.s.RunUntil(5 * sim.Millisecond)
	h := fp.host[1]
	if len(h.rxOK) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(h.rxOK))
	}
	// Completion order differs from send order (the inline follow-up
	// finishes during header processing, before the chunked message's
	// deposit); identify messages by size.
	for i, data := range h.recv {
		switch len(data) {
		case 4096:
			if h.rxOK[i] {
				t.Error("corrupted message not flagged")
			}
		case 5:
			if !h.rxOK[i] {
				t.Error("follow-up message flagged")
			}
		default:
			t.Errorf("unexpected delivery of %d bytes", len(data))
		}
	}
	if done != 2 {
		t.Errorf("sender completions = %d, want 2 (acks must flow)", done)
	}
	if fp.nics[0].Stats.Retransmits != 0 {
		t.Errorf("CRC failure caused %d retransmits; delivery already happened", fp.nics[0].Stats.Retransmits)
	}
}

func TestDiscardConsumesStreamAndFreesPending(t *testing.T) {
	fp := newFwPair(t, model.Defaults(), 16, ExhaustPanic)
	// Override the host: discard every payload message.
	h := fp.host[1]
	h.nic.generic.Handle = func(ev Event) {
		if ev.Kind == EvNewHeader {
			if ev.Pending.Complete() {
				ev.Pending.Release()
				return
			}
			ev.Pending.Discard()
			ev.Pending.Release()
		}
	}
	fp.put(0, 1, make([]byte, 50000), nil)
	delivered := false
	fp.put(0, 1, make([]byte, 30000), nil)
	// Third message after the discards proves pendings and FIFO credits
	// came back.
	hdr := wire.Header{Type: wire.TypePut, SrcNid: 0, DstNid: 1, Length: 4}
	fp.nics[0].SubmitTx(&TxReq{Pid: 1, Hdr: hdr, Buf: sliceBuf("ping"), Len: 4,
		Done: func(bool) { delivered = true }})
	fp.s.Run()
	if fp.nics[1].Stats.Discards != 2 {
		t.Errorf("Discards = %d", fp.nics[1].Stats.Discards)
	}
	if !delivered {
		t.Error("traffic stalled after discards: credits or pendings leaked")
	}
	if fp.nics[1].Chip.RxFIFO.Available() != fp.nics[1].Chip.RxFIFO.Capacity() {
		t.Errorf("RX FIFO credits leaked: %d of %d",
			fp.nics[1].Chip.RxFIFO.Available(), fp.nics[1].Chip.RxFIFO.Capacity())
	}
}

func TestSegsInRange(t *testing.T) {
	fp := newFwPair(t, model.Defaults(), 4, ExhaustPanic)
	nic := fp.nics[0]
	contig := make(sliceBuf, 1<<20)
	paged := make(pagedBuf, 1<<20)
	if got := nic.SegsInRange(contig, 100, 100000); got != 1 {
		t.Errorf("contiguous segs = %d", got)
	}
	if got := nic.SegsInRange(paged, 0, 4096); got != 1 {
		t.Errorf("one page = %d segs", got)
	}
	if got := nic.SegsInRange(paged, 4000, 200); got != 2 {
		t.Errorf("page-straddling segs = %d", got)
	}
	if got := nic.SegsInRange(paged, 0, 16384); got != 4 {
		t.Errorf("four pages = %d segs", got)
	}
}

func TestSourcePoolSharedAndReused(t *testing.T) {
	fp := newFwPair(t, model.Defaults(), 64, ExhaustPanic)
	fp.put(0, 1, []byte("x"), nil)
	fp.put(0, 1, []byte("y"), nil)
	fp.s.Run()
	if fp.nics[1].SourceCount() != 1 {
		t.Errorf("receiver allocated %d sources for one peer", fp.nics[1].SourceCount())
	}
	if fp.nics[0].SourceCount() != 1 {
		t.Errorf("sender allocated %d sources for one destination", fp.nics[0].SourceCount())
	}
}

func TestAccelRegistrationLimit(t *testing.T) {
	p := model.Defaults() // MaxAccelProcs = 2
	fp := newFwPair(t, p, 16, ExhaustPanic)
	n := fp.nics[0]
	if _, err := n.RegisterAccel(10, 16, func(Event) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.RegisterAccel(11, 16, func(Event) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.RegisterAccel(12, 16, func(Event) {}); err == nil {
		t.Error("third accelerated process accepted; the paper allows only a small number (§4.1)")
	}
	if _, err := n.RegisterAccel(10, 16, func(Event) {}); err == nil {
		t.Error("duplicate pid accepted")
	}
}

func TestSRAMBudgetEnforcedOnRegistration(t *testing.T) {
	s := sim.New()
	p := model.Defaults()
	tp, _ := topo.New(2, 1, 1, false, false, false)
	fab := fabric.New(s, tp, &p)
	chip := seastar.New(s, &p, 0)
	nic, err := New(s, &p, chip, fab, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A pool that cannot fit in 384 KB must be rejected.
	if _, err := nic.RegisterGeneric(1<<20, func(Event) {}); err == nil {
		t.Error("oversized pending pool fit in 384 KB of SRAM?")
	}
	// The paper's configuration must fit.
	if _, err := nic.RegisterGeneric(p.NumGenericPendings, func(Event) {}); err != nil {
		t.Errorf("paper-sized pools rejected: %v", err)
	}
}

func TestHeartbeatAdvances(t *testing.T) {
	fp := newFwPair(t, model.Defaults(), 16, ExhaustPanic)
	fp.put(0, 1, []byte("x"), nil)
	fp.s.Run()
	if fp.nics[0].Heartbeat == 0 || fp.nics[1].Heartbeat == 0 {
		t.Error("RAS heartbeat counters never ticked")
	}
}

func TestQueryStatsSyncCommand(t *testing.T) {
	fp := newFwPair(t, model.Defaults(), 64, ExhaustPanic)
	fp.put(0, 1, []byte("x"), nil)
	var snap Stats
	var took sim.Time
	fp.s.Go("ras-poll", func(proc *sim.Proc) {
		proc.Sleep(100 * sim.Microsecond) // after the message settled
		t0 := proc.Now()
		snap = fp.nics[1].Generic().QueryStats(proc)
		took = proc.Now() - t0
	})
	fp.s.Run()
	if snap.HeadersRx != 1 {
		t.Errorf("snapshot headers = %d, want 1", snap.HeadersRx)
	}
	// The round trip costs at least the command write, the handler and the
	// result write.
	p := fp.p
	min := p.HTWriteLatency + p.PPCCycles(p.FwDispatchCycles) + p.HTWriteLatency
	if took < min {
		t.Errorf("sync command took %v, below the physical floor %v", took, min)
	}
}

func TestAccelRejectsNonContiguousBuffers(t *testing.T) {
	fp := newFwPair(t, model.Defaults(), 64, ExhaustPanic)
	nic := fp.nics[0]
	if _, err := nic.RegisterAccel(7, 16, func(Event) {}); err != nil {
		t.Fatal(err)
	}
	hdr := wire.Header{Type: wire.TypePut, SrcNid: 0, DstNid: 1, Length: 8192}
	err := nic.SubmitTx(&TxReq{Pid: 7, Hdr: hdr, Buf: make(pagedBuf, 8192), Len: 8192})
	if err != ErrAccelNonContiguous {
		t.Errorf("accelerated non-contiguous send: %v, want ErrAccelNonContiguous (§3.3)", err)
	}
	// The same buffer through the generic process is fine.
	if err := nic.SubmitTx(&TxReq{Pid: 1, Hdr: hdr, Buf: make(pagedBuf, 8192), Len: 8192}); err != nil {
		t.Errorf("generic non-contiguous send: %v", err)
	}
	fp.s.Run()
}

func TestTinyTxFIFOYieldsButDelivers(t *testing.T) {
	// §4.3: "If the message does not fit into the TX FIFO, the transmit
	// state machine will yield and return to the main loop until there is
	// more room in the FIFO." With a FIFO of exactly one chunk, a 64 KB
	// message forces a yield per chunk — and because the link drains the
	// FIFO faster than HyperTransport fills it, delivery time is
	// unchanged: the FIFO is pipeline slack, not a bottleneck.
	tiny := model.Defaults()
	tiny.TxFIFOBytes = int64(tiny.ChunkBytes)
	big := model.Defaults()

	run := func(p model.Params) (sim.Time, []byte, uint64) {
		fp := newFwPair(t, p, 64, ExhaustPanic)
		payload := make([]byte, 64<<10)
		for i := range payload {
			payload[i] = byte(i * 3)
		}
		var done sim.Time
		fp.put(0, 1, payload, func(bool) { done = fp.s.Now() })
		fp.s.Run()
		if len(fp.host[1].recv) != 1 {
			t.Fatal("message lost")
		}
		return done, fp.host[1].recv[0], fp.nics[0].Chip.TxFIFO.Waits
	}
	tTiny, dataTiny, waitsTiny := run(tiny)
	tBig, dataBig, waitsBig := run(big)
	if !bytes.Equal(dataTiny, dataBig) {
		t.Fatal("payload differs between FIFO sizes")
	}
	for i, v := range dataTiny {
		if v != byte(i*3) {
			t.Fatalf("byte %d corrupted", i)
		}
	}
	if waitsTiny == 0 {
		t.Error("one-chunk FIFO never made the TX state machine yield")
	}
	if waitsBig != 0 {
		t.Errorf("default FIFO yielded %d times on an uncontended transfer", waitsBig)
	}
	if tTiny != tBig {
		t.Errorf("delivery time changed with FIFO size (%v vs %v); the link outruns HT, so it must not", tTiny, tBig)
	}
}
