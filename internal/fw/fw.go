// Package fw implements the SeaStar firmware of paper §4: the data
// structures (control block, mailboxes with command FIFOs, upper/lower
// pending pairs, source structures in a hash table, pre-sized free lists)
// and the processing (single-threaded run-to-completion handlers on the
// PowerPC, a serialized TX state machine, per-source receive streams, the
// ≤12-byte payload-in-header small message optimization, event posting and
// host interrupt coalescing).
//
// Exactly as on the real machine, the firmware knows nothing about Portals
// semantics in generic mode — it moves headers to the host and data where
// the host says — while accelerated-mode clients get their headers handled
// on the NIC itself (§3.3). Resource exhaustion follows the paper: the
// default policy panics the node ("The current approach is to panic the
// node, which results in application failure", §4.3); the go-back-n
// recovery the authors describe as in-progress work is implemented in
// gobackn.go and enabled per machine.
package fw

import (
	"fmt"

	"portals3/internal/fabric"
	"portals3/internal/flightrec"
	"portals3/internal/model"
	"portals3/internal/seastar"
	"portals3/internal/sim"
	"portals3/internal/telemetry"
	"portals3/internal/topo"
	"portals3/internal/trace"
	"portals3/internal/wire"
)

// Buffer is host memory the DMA engines move data to and from.
// core.Region satisfies it; fw deliberately does not import core.
type Buffer interface {
	Len() int
	ReadAt(off int, p []byte)
	WriteAt(off int, p []byte)
	Segments() int
}

// fwEventBytes is the size of one firmware-to-host event record. Events are
// "small enough that they can be posted atomically by the firmware" (§4.1).
const fwEventBytes = 32

// cmdBytes is the size of one mailbox command record.
const cmdBytes = 64

// mailboxSlots is the command FIFO depth; the host stalls when it is full
// ("the host busy-waits until the firmware posts the result", §4.1 — for
// us, until a slot frees).
const mailboxSlots = 128

// EventKind distinguishes firmware-to-host notifications.
type EventKind int

// Firmware event kinds (§4.1 gives "message transmit complete" and
// "message reception complete" as the examples; NewHeader is the generic
// mode "new message arrived, come do the Portals processing" event).
const (
	EvNewHeader EventKind = iota
	EvTxDone
	EvRxDone
)

func (k EventKind) String() string {
	return [...]string{"NEW_HEADER", "TX_DONE", "RX_DONE"}[k]
}

// Event is one firmware notification delivered to a process's driver.
type Event struct {
	Kind    EventKind
	Pending *Pending // NewHeader, RxDone
	Tx      *TxReq   // TxDone
	OK      bool     // data integrity: end-to-end CRC verdict
}

// Span returns the flight-recorder causal span id of the message behind
// this event (zero when the recorder is off or no message is attached).
func (ev Event) Span() uint64 {
	if ev.Pending != nil && ev.Pending.msg != nil {
		return ev.Pending.msg.Span
	}
	if ev.Tx != nil {
		return ev.Tx.Span
	}
	return 0
}

// Process is one firmware-level process (§4.2): the generic Portals
// implementation in the OS kernel, or one accelerated application. Each has
// its own mailbox and pending pools.
type Process struct {
	nic *NIC
	// ID is the host process id; the generic process serves every pid that
	// has no accelerated mailbox.
	ID uint32
	// Accel marks an accelerated-mode client: headers are handled on the
	// NIC and no interrupts are raised.
	Accel bool
	// Handle receives events. For a generic process it runs host-side,
	// after the event's HT write completes (the driver layers interrupt
	// semantics on top). For an accelerated process it runs in firmware
	// context, with NIC-side costs charged by the driver itself.
	Handle func(ev Event)

	rxFree   []*Pending
	txFree   []*Pending
	rxTotal  int
	txTotal  int
	rxLow    int // fewest rx pendings ever free (occupancy low-water)
	txLow    int // fewest tx pendings ever free
	cmdSlots *sim.Credits
}

// RxPendingsFree reports free receive pendings (diagnostics, exhaustion
// tests).
func (p *Process) RxPendingsFree() int { return len(p.rxFree) }

// TxPendingsFree reports free transmit pendings.
func (p *Process) TxPendingsFree() int { return len(p.txFree) }

// Pending is one upper/lower pending pair (§4.2). The lower half lives in
// SeaStar SRAM and drives the data movement; the upper half lives in host
// memory and carries what the host needs (the Portals header, the inline
// payload, completion info). The firmware writes the upper half over HT and
// never reads it back.
type Pending struct {
	proc *Process
	tx   bool

	// Upper pending contents (host visible after the HT write).
	Hdr    wire.Header
	Inline []byte

	// Lower pending receive state.
	msg        *fabric.Message
	queued     []*fabric.Chunk
	arrived    int // payload bytes arrived into the RX FIFO
	consumed   int // payload bytes deposited or discarded
	crc        uint32
	programmed bool
	discardAll bool
	buf        Buffer
	bufOff     int
	mlen       int
	done       func(ok bool)
	released   bool

	// Host-command callbacks, bound once per pooled structure, and the
	// staged receive-command arguments they apply once the command's cycles
	// have been charged (see Pending.stage).
	progFn  func()
	discFn  func()
	relFn   func()
	stgBuf  Buffer
	stgOff  int
	stgMlen int
	stgDone func(ok bool)

	// Lower pending transmit state.
	req *TxReq
}

// TxReq is one transmit command from the host (§4.3): the pending id, the
// destination, the payload location in main memory, and the length.
type TxReq struct {
	Pid uint32
	Hdr wire.Header
	Buf Buffer
	Off int
	Len int
	// Done runs host-side when the TX_DONE event is delivered; ok reports
	// transmit success.
	Done func(ok bool)

	// Rec is the latency-attribution record set by the submitting driver
	// when telemetry is enabled. It transfers to the fabric message at
	// header injection (txHeaderReady) and travels with the message from
	// there; a retransmission therefore carries no record.
	Rec *telemetry.MsgRec

	// Span is the flight-recorder causal span id, minted at SubmitTx and
	// copied onto every fabric message this request injects — including
	// go-back-n retransmissions, which therefore share the original's span.
	Span uint64

	pending  *Pending
	job      *txJob // per-message stage carrier, recycled at header injection
	ctrl     bool   // NIC-level flow control frame, no pending, no host data
	seq      uint32
	crc      uint32
	msg      *fabric.Message
	finished bool
}

// AllocTxReq returns a zeroed transmit request from the NIC's pool. Drivers
// use it with RecycleTxReq to keep the per-send path allocation-free.
func (n *NIC) AllocTxReq() *TxReq {
	if k := len(n.txrFree); k > 0 {
		req := n.txrFree[k-1]
		n.txrFree = n.txrFree[:k-1]
		return req
	}
	return &TxReq{}
}

// RecycleTxReq returns a finished transmit request to the pool. Callers may
// only recycle after the request's TX_DONE event was delivered — the
// firmware holds no reference past that point (go-back-n releases the
// request from its unacked list before posting the event).
func (n *NIC) RecycleTxReq(req *TxReq) {
	*req = TxReq{}
	n.txrFree = append(n.txrFree, req)
}

// source is the per-peer structure (§4.2): one per node this firmware is
// sending to or receiving from, allocated from a single global pool and
// kept in a hash table.
type source struct {
	nid topo.NodeID
	// Go-back-n state, used only under ExhaustGoBackN: rxSeq is the last
	// in-order sequence successfully received from this peer, txSeq the
	// last sequence assigned toward it, unacked the fully transmitted but
	// not yet acknowledged sends, oldest first.
	rxSeq      uint32
	txSeq      uint32
	unacked    []*TxReq
	timerArmed bool
	lastAck    sim.Time
	// ackedSeq is the peer's cumulative acknowledgment high-water mark. An
	// ack can outrun our own transmit completion — the peer re-acks a
	// duplicate as soon as its header arrives, while our chunk pipeline is
	// still streaming — so the position must survive until the transmit
	// finishes, or the message parks on unacked forever and the timer
	// retransmits it in an endless cycle.
	ackedSeq uint32
}

// Stats counts firmware activity for tests and reports.
type Stats struct {
	HeadersRx    uint64
	MsgsTx       uint64
	EventsPosted uint64
	InlineRx     uint64 // messages fully delivered via the header packet
	Exhaustions  uint64
	CrcFails     uint64
	NacksSent    uint64
	NacksRcvd    uint64
	Retransmits  uint64
	Discards     uint64
	GbnTimeouts  uint64 // go-back-n timer expiries that triggered a resend
	DupAcks      uint64 // duplicate data messages re-acked and discarded
	Completions  uint64 // transmit requests finished (acked or completed)
}

// ExhaustPolicy selects the firmware's response to resource exhaustion.
type ExhaustPolicy int

// Exhaustion policies (§4.3).
const (
	// ExhaustPanic is the paper's current approach: "panic the node, which
	// results in application failure".
	ExhaustPanic ExhaustPolicy = iota
	// ExhaustGoBackN enables the in-progress go-back-n recovery protocol.
	ExhaustGoBackN
)

// NIC is the firmware instance for one SeaStar.
type NIC struct {
	S    *sim.Sim
	P    *model.Params
	Chip *seastar.Chip
	Fab  fabric.Port
	Node topo.NodeID

	// Policy selects exhaustion handling.
	Policy ExhaustPolicy
	// Trace, when non-nil, records firmware handler spans.
	Trace *trace.Tracer
	// FR, when non-nil, is this node's flight-recorder ring; nil-safe like
	// Trace, so record sites pay one pointer test when disabled.
	FR *flightrec.Ring
	// OnPanic is invoked for ExhaustPanic; the default panics the Go
	// process, the machine layer substitutes a node-failure handler.
	OnPanic func(reason string)

	generic *Process
	accel   map[uint32]*Process

	sources    map[topo.NodeID]*source
	sourceFree int
	srcLow     int // fewest sources ever free (occupancy low-water)

	txq     []*TxReq // pending transmits; txqHead indexes the next one
	txqHead int
	txqHigh int // deepest TX queue backlog (occupancy high-water)
	txBusy  bool

	// early holds chunks that arrive before the header handler has
	// allocated a pending (hardware demultiplexes; the PowerPC is still
	// busy), and streams condemned to discard.
	streams     map[uint64]*Pending
	streamsHigh int            // most receive streams ever open
	dead        map[uint64]int // msgID -> payload bytes still expected, discard

	killed bool

	// txcFree and depFree recycle the per-chunk pipeline carriers (see
	// tx.go/rx.go) so the data path allocates nothing per chunk; cmdFree,
	// hdrFree and stubFree do the same for the per-message mailbox-command,
	// header-dispatch and early-chunk-stub paths.
	txcFree  []*txChunk
	txjFree  []*txJob
	tdFree   []*txDone
	depFree  []*rxDeposit
	cmdFree  []*cmdJob
	hdrFree  []*hdrJob
	stubFree []*Pending
	evpFree  []*evPost
	txrFree  []*TxReq

	// hdrScratch is the header-encode buffer for CRC computation; methods
	// use it instead of a stack array because the encode call makes a stack
	// array escape (one allocation per message).
	hdrScratch [wire.HeaderBytes]byte

	// Heartbeat is the control block RAS heartbeat counter (§4.2);
	// incremented as each handler is dispatched to the (FIFO) firmware CPU,
	// so it stalls exactly when the firmware stops making progress.
	Heartbeat uint64

	Stats Stats
}

// New creates the firmware for one chip and charges its static structures
// to SRAM: the global source pool and (as processes register) the pending
// pools. The error is a configuration error — the pools must fit in 384 KB.
func New(s *sim.Sim, p *model.Params, chip *seastar.Chip, fab fabric.Port, node topo.NodeID) (*NIC, error) {
	n := &NIC{
		S:          s,
		P:          p,
		Chip:       chip,
		Fab:        fab,
		Node:       node,
		accel:      make(map[uint32]*Process),
		sources:    make(map[topo.NodeID]*source),
		sourceFree: p.NumSources,
		srcLow:     p.NumSources,
		streams:    make(map[uint64]*Pending),
		dead:       make(map[uint64]int),
	}
	n.OnPanic = func(reason string) {
		panic(fmt.Sprintf("fw[node %d]: %s", node, reason))
	}
	if err := chip.SRAM.Alloc("sources", int64(p.NumSources)*p.SourceBytes); err != nil {
		return nil, err
	}
	if err := chip.SRAM.Alloc("nic-control-block", 256); err != nil {
		return nil, err
	}
	fab.Attach(node, n)
	return n, nil
}

// RegisterGeneric installs the generic firmware-level process — the OS
// kernel's Portals implementation, which serves every host pid without an
// accelerated mailbox. pendings is the pool size (the paper's 1,274),
// split evenly between the host-managed TX pool and the firmware-managed
// RX pool (§4.2).
func (n *NIC) RegisterGeneric(pendings int, handle func(Event)) (*Process, error) {
	if n.generic != nil {
		return nil, fmt.Errorf("fw: generic process already registered")
	}
	p, err := n.newProcess(0, false, pendings, handle)
	if err != nil {
		return nil, err
	}
	n.generic = p
	return p, nil
}

// RegisterAccel installs an accelerated process for host pid. The number of
// accelerated clients is limited (§4.1): registration fails beyond
// Params.MaxAccelProcs.
func (n *NIC) RegisterAccel(pid uint32, pendings int, handle func(Event)) (*Process, error) {
	if len(n.accel) >= n.P.MaxAccelProcs {
		return nil, fmt.Errorf("fw: accelerated mailbox limit (%d) reached", n.P.MaxAccelProcs)
	}
	if _, dup := n.accel[pid]; dup {
		return nil, fmt.Errorf("fw: pid %d already accelerated", pid)
	}
	p, err := n.newProcess(pid, true, pendings, handle)
	if err != nil {
		return nil, err
	}
	n.accel[pid] = p
	return p, nil
}

func (n *NIC) newProcess(pid uint32, accel bool, pendings int, handle func(Event)) (*Process, error) {
	name := fmt.Sprintf("pendings[pid %d]", pid)
	if !accel {
		name = "pendings[generic]"
	}
	if err := n.Chip.SRAM.Alloc(name, int64(pendings)*n.P.PendingBytes); err != nil {
		return nil, err
	}
	if err := n.Chip.SRAM.Alloc(name+".proc+mailbox", 512); err != nil {
		return nil, err
	}
	p := &Process{
		nic:      n,
		ID:       pid,
		Accel:    accel,
		Handle:   handle,
		rxTotal:  pendings / 2,
		txTotal:  pendings - pendings/2,
		rxLow:    pendings / 2,
		txLow:    pendings - pendings/2,
		cmdSlots: sim.NewCredits(n.S, name+".cmdfifo", mailboxSlots),
	}
	for i := 0; i < p.rxTotal; i++ {
		p.rxFree = append(p.rxFree, &Pending{proc: p})
	}
	for i := 0; i < p.txTotal; i++ {
		p.txFree = append(p.txFree, &Pending{proc: p, tx: true})
	}
	return p, nil
}

// procForPid resolves the firmware-level process targeted by a host pid:
// an accelerated mailbox if one exists, the generic process otherwise.
func (n *NIC) procForPid(pid uint32) *Process {
	if p, ok := n.accel[pid]; ok {
		return p
	}
	return n.generic
}

// Generic returns the generic process (nil before RegisterGeneric).
func (n *NIC) Generic() *Process { return n.generic }

// exec runs fn as one firmware handler, charging cycles on the PowerPC and
// ticking the RAS heartbeat. name labels the handler in traces. The span is
// only built when a tracer is attached — this is the hottest dispatch point
// in the model, and tracing-off runs must pay nothing for it.
func (n *NIC) exec(name string, cycles int64, fn func()) {
	n.Heartbeat++
	if n.Trace.Enabled() {
		dur := n.P.PPCCycles(n.P.FwDispatchCycles + cycles)
		n.Chip.Exec(cycles, func() {
			n.Trace.Span(int(n.Node), trace.TrackPPC, "fw", name, n.S.Now()-dur, dur, nil)
			fn()
		})
		return
	}
	// Tracing off: hand fn straight to the CPU — no wrapper closure on the
	// hot path.
	n.Chip.Exec(cycles, fn)
}

// allocSource finds or allocates the source structure for a peer; nil means
// the global pool is exhausted.
func (n *NIC) allocSource(nid topo.NodeID) *source {
	if s, ok := n.sources[nid]; ok {
		n.FR.Record(flightrec.KSrcHit, n.S.Now(), 0, uint32(n.sourceFree), 0)
		return s
	}
	if n.sourceFree == 0 {
		return nil
	}
	n.sourceFree--
	if n.sourceFree < n.srcLow {
		n.srcLow = n.sourceFree
	}
	n.FR.Record(flightrec.KSrcAlloc, n.S.Now(), 0, uint32(n.sourceFree), 0)
	s := &source{nid: nid}
	n.sources[nid] = s
	return s
}

// postEvent writes an event record to the process's host event queue and
// delivers it. For generic processes the delivery runs after the HT write
// completes (the driver adds interrupt semantics); accelerated processes
// also see it after the HT write (their user-level library polls the queue,
// no interrupt involved).
func (n *NIC) postEvent(p *Process, ev Event) {
	n.Stats.EventsPosted++
	if n.FR != nil {
		n.FR.Record(flightrec.KEvPost, n.S.Now(), ev.Span(), uint32(ev.Kind), 0)
	}
	j := n.getEvPost()
	j.p = p
	j.ev = ev
	n.Chip.WriteHost(fwEventBytes, j.fn)
}

// evPost carries one host event delivery; the continuations are bound once
// and the carrier recycled, so posting an event allocates nothing. The
// three entry points cover the three delivery shapes: a plain event queue
// write (fn), a header write that must also return RX FIFO credits (crFn),
// and the rx-done firmware handler that posts the completion (rdFn).
type evPost struct {
	n       *NIC
	p       *Process
	ev      Event
	credits int64
	fn      func()
	crFn    func()
	rdFn    func()
}

func (n *NIC) getEvPost() *evPost {
	if k := len(n.evpFree); k > 0 {
		j := n.evpFree[k-1]
		n.evpFree = n.evpFree[:k-1]
		return j
	}
	j := &evPost{n: n}
	j.fn = j.run
	j.crFn = j.runCredits
	j.rdFn = j.runRxDone
	return j
}

func (j *evPost) recycle() (*NIC, *Process, Event) {
	n, p, ev := j.n, j.p, j.ev
	j.p = nil
	j.ev = Event{}
	n.evpFree = append(n.evpFree, j)
	return n, p, ev
}

func (j *evPost) run() {
	_, p, ev := j.recycle()
	p.Handle(ev)
}

func (j *evPost) runCredits() {
	credits := j.credits
	n, p, ev := j.recycle()
	n.Chip.RxFIFO.Put(credits)
	p.Handle(ev)
}

func (j *evPost) runRxDone() {
	n, p, ev := j.recycle()
	// The rx-done handler has run: the completion event push to the host
	// begins now — the event-post attribution boundary for chunked messages.
	ev.Pending.msg.Rec.Stamp(telemetry.StampEvPost, n.S.Now())
	if p.Accel {
		p.Handle(ev)
		return
	}
	n.postEvent(p, ev)
}

// exhaust applies the exhaustion policy for an unservable incoming message.
// It reports whether the message stream was consumed (true for go-back-n,
// which discards and NACKs; false means the node is gone). code is the
// flight-recorder exhaustion code matching what.
func (n *NIC) exhaust(m *fabric.Message, what string, code uint32) bool {
	n.Stats.Exhaustions++
	if n.FR != nil {
		n.FR.Record(flightrec.KExhaust, n.S.Now(), m.Span, code, 0)
	}
	if n.Policy == ExhaustGoBackN {
		n.nackAndDiscard(m)
		return true
	}
	n.OnPanic("resource exhaustion: " + what)
	return false
}

// noteTxq updates the TX queue's backlog high-water mark; call after any
// append or insert.
func (n *NIC) noteTxq() {
	if d := len(n.txq) - n.txqHead; d > n.txqHigh {
		n.txqHigh = d
	}
}

// noteStreams updates the open-receive-streams high-water mark.
func (n *NIC) noteStreams() {
	if len(n.streams) > n.streamsHigh {
		n.streamsHigh = len(n.streams)
	}
}

// Occupancy snapshots the firmware's resource watermarks — the pool frees,
// low-water marks and queue depths a dump records per node. The event-queue
// fields belong to the host driver; the machine layer fills them in.
func (n *NIC) Occupancy() flightrec.Occupancy {
	o := flightrec.Occupancy{
		SourcesFree:   n.sourceFree,
		SourcesTotal:  n.P.NumSources,
		SourcesLow:    n.srcLow,
		TxQueueDepth:  len(n.txq) - n.txqHead,
		TxQueueHigh:   n.txqHigh,
		RxStreams:     len(n.streams),
		RxStreamsHigh: n.streamsHigh,
		SRAMUsed:      n.Chip.SRAM.Used(),
	}
	if p := n.generic; p != nil {
		o.RxPendFree, o.RxPendTotal, o.RxPendLow = len(p.rxFree), p.rxTotal, p.rxLow
		o.TxPendFree, o.TxPendTotal, o.TxPendLow = len(p.txFree), p.txTotal, p.txLow
	}
	for _, s := range n.sources {
		o.Unacked += len(s.unacked)
	}
	return o
}

// OpenWork counts the node's in-flight obligations: queued transmits, open
// receive streams and unacknowledged go-back-n sends. The stall detector
// pairs it with Progress — open work with no progress is a stalled flow.
func (n *NIC) OpenWork() int {
	open := len(n.txq) - n.txqHead + len(n.streams)
	for _, s := range n.sources {
		open += len(s.unacked)
	}
	return open
}

// Progress is the node's forward-progress counter: completions, accepted
// headers and posted events. Retransmit attempts deliberately do not count —
// a sender spinning on its go-back-n timer is not making progress.
func (n *NIC) Progress() uint64 {
	return n.Stats.Completions + n.Stats.HeadersRx + n.Stats.EventsPosted
}

// RxWindow implements fabric.Endpoint: the chip's bounded receive FIFO.
func (n *NIC) RxWindow() *sim.Credits { return n.Chip.RxFIFO }

// Kill marks the node failed (the §4.3 panic): the firmware stops
// processing — arriving traffic is blackholed and the RAS heartbeat stops,
// which is how the rest of the machine finds out.
func (n *NIC) Kill() { n.killed = true }

// Dead reports whether the node has failed.
func (n *NIC) Dead() bool { return n.killed }

// StartHeartbeat begins periodic RAS heartbeat ticks — the idle polling
// loop's counter increments (§4.2). Because the ticker keeps the event heap
// non-empty, callers drive the simulation with RunUntil; it is started by
// machine.StartRAS, not by default.
func (n *NIC) StartHeartbeat(period sim.Time) {
	var tick func()
	tick = func() {
		if n.killed {
			return
		}
		n.Heartbeat++
		n.S.After(period, tick)
	}
	n.S.After(period, tick)
}
