package fw

import (
	"hash/crc32"

	"portals3/internal/fabric"
	"portals3/internal/flightrec"
	"portals3/internal/sim"
	"portals3/internal/telemetry"
	"portals3/internal/topo"
	"portals3/internal/wire"
)

// headerCRC starts the receive-side end-to-end check: CRC over the encoded
// header plus any inline payload. Payload chunks extend it in arrival
// order, which matches sender order because delivery is in-order.
func (n *NIC) headerCRC(m *fabric.Message) uint32 {
	m.Hdr.Encode(n.hdrScratch[:])
	c := crc32.ChecksumIEEE(n.hdrScratch[:])
	return crc32.Update(c, crc32.IEEETable, m.Inline)
}

// hdrJob defers one arrived header to the firmware CPU without allocating a
// fresh dispatch closure per message.
type hdrJob struct {
	n  *NIC
	m  *fabric.Message
	fn func()
}

func (n *NIC) getHdrJob() *hdrJob {
	if k := len(n.hdrFree); k > 0 {
		j := n.hdrFree[k-1]
		n.hdrFree = n.hdrFree[:k-1]
		return j
	}
	j := &hdrJob{n: n}
	j.fn = j.run
	return j
}

func (j *hdrJob) run() {
	n, m := j.n, j.m
	j.m = nil
	n.hdrFree = append(n.hdrFree, j)
	n.handleHeader(m)
}

// getStub returns a stream stub for chunks racing ahead of the header
// handler; stubs recycle once the real pending adopts their state.
func (n *NIC) getStub(m *fabric.Message) *Pending {
	if k := len(n.stubFree); k > 0 {
		s := n.stubFree[k-1]
		n.stubFree = n.stubFree[:k-1]
		s.msg = m
		return s
	}
	return &Pending{msg: m}
}

func (n *NIC) putStub(s *Pending) {
	s.msg = nil
	s.queued = nil
	s.arrived = 0
	n.stubFree = append(n.stubFree, s)
}

// HeaderArrived implements fabric.Endpoint. It runs at hardware time: the
// RX DMA engine has recognized a new message start (§2); a stub stream is
// registered immediately so payload chunks demultiplex correctly while the
// PowerPC works through its handler queue, then the header handler is
// dispatched.
func (n *NIC) HeaderArrived(m *fabric.Message) {
	if n.killed {
		// A panicked node blackholes arriving traffic: return the FIFO
		// credits and discard the payload so the rest of the machine is
		// not wedged by a dead peer's buffers.
		n.condemn(m)
		n.Chip.RxFIFO.Put(int64(n.P.PacketBytes))
		return
	}
	if m.PayloadLen > 0 {
		n.streams[m.ID] = n.getStub(m)
		n.noteStreams()
	}
	j := n.getHdrJob()
	j.m = m
	n.exec("rx-header", n.P.FwRxHdrCycles, j.fn)
}

// handleHeader is the firmware's new-message handler (§4.3): source lookup
// or allocation, pending allocation from the target process's RX free list,
// header push to the upper pending in host memory, and event delivery.
func (n *NIC) handleHeader(m *fabric.Message) {
	n.Stats.HeadersRx++
	hdrCredits := int64(n.P.PacketBytes)

	// NIC-level flow control frames never touch pendings or the host.
	if m.Hdr.Type == wire.TypeFcAck || m.Hdr.Type == wire.TypeFcNack {
		n.handleFlowControl(m)
		n.Chip.RxFIFO.Put(hdrCredits)
		n.Fab.RecycleMsg(m)
		return
	}

	src := n.allocSource(topo.NodeID(m.Hdr.SrcNid))
	if src == nil {
		if n.exhaust(m, "source pool empty", flightrec.ExhaustSources) {
			n.Chip.RxFIFO.Put(hdrCredits)
		}
		return
	}
	if n.Policy == ExhaustGoBackN && !n.gbnAcceptRx(src, m) {
		// Out-of-sequence under go-back-n: already NACKed, discard.
		n.Chip.RxFIFO.Put(hdrCredits)
		return
	}
	proc := n.procForPid(m.Hdr.DstPid)
	if proc == nil {
		// No process registered for this pid: silently discard, like a
		// message to a dead pid on the real machine.
		n.Stats.Discards++
		n.condemn(m)
		n.Chip.RxFIFO.Put(hdrCredits)
		return
	}
	if len(proc.rxFree) == 0 {
		if n.exhaust(m, "rx pending pool empty", flightrec.ExhaustRxPending) {
			n.Chip.RxFIFO.Put(hdrCredits)
		}
		return
	}
	p := proc.rxFree[len(proc.rxFree)-1]
	proc.rxFree = proc.rxFree[:len(proc.rxFree)-1]
	if len(proc.rxFree) < proc.rxLow {
		proc.rxLow = len(proc.rxFree)
	}
	n.FR.Record(flightrec.KPendAlloc, n.S.Now(), m.Span, uint32(len(proc.rxFree)), 0)
	n.gbnAdvance(src, m)
	n.FR.Record(flightrec.KRxHeader, n.S.Now(), m.Span, m.FwSeq, uint32(m.PayloadLen))
	p.reset()
	p.proc = proc
	p.msg = m
	p.Hdr = m.Hdr
	p.Inline = m.Inline
	p.crc = n.headerCRC(m)
	if stub, ok := n.streams[m.ID]; ok && stub != p {
		// Adopt chunks that raced ahead of this handler.
		p.queued = stub.queued
		p.arrived = stub.arrived
		stub.queued = nil
		n.putStub(stub)
	}
	if m.PayloadLen > 0 {
		n.streams[m.ID] = p
		n.noteStreams()
	}

	if m.PayloadLen == 0 {
		// Whole message fit in the header packet (≤12 B inline, a bare
		// get/ack, or a zero-length put): deliver header and completion
		// together — the small-message optimization that saves an
		// interrupt (§6).
		ok := p.crc == m.CRC
		if !ok {
			n.Stats.CrcFails++
			n.FR.Record(flightrec.KCrcFail, n.S.Now(), m.Span, m.FwSeq, 0)
		}
		if len(m.Inline) > 0 {
			n.Stats.InlineRx++
		}
		n.gbnDataReceived(p, ok)
		if n.FR != nil {
			okA := uint32(0)
			if ok {
				okA = 1
			}
			n.FR.Record(flightrec.KRxDone, n.S.Now(), m.Span, okA, 0)
		}
		ev := Event{Kind: EvNewHeader, Pending: p, OK: ok}
		if proc.Accel {
			n.Chip.RxFIFO.Put(hdrCredits)
			proc.Handle(ev)
			return
		}
		n.Stats.EventsPosted++
		if n.FR != nil {
			n.FR.Record(flightrec.KEvPost, n.S.Now(), m.Span, uint32(EvNewHeader), 0)
		}
		// Header and completion push to the host begins: the event-post
		// attribution boundary for messages that fit the header packet.
		m.Rec.Stamp(telemetry.StampEvPost, n.S.Now())
		j := n.getEvPost()
		j.p = proc
		j.ev = ev
		j.credits = hdrCredits
		n.Chip.WriteHost(int64(wire.HeaderBytes+len(m.Inline)+fwEventBytes), j.crFn)
		return
	}

	// Payload follows: hand the header to the Portals processing (host in
	// generic mode, right here in accelerated mode) and keep streaming
	// chunks into the RX FIFO meanwhile.
	ev := Event{Kind: EvNewHeader, Pending: p, OK: true}
	if proc.Accel {
		n.Chip.RxFIFO.Put(hdrCredits)
		proc.Handle(ev)
		return
	}
	n.Stats.EventsPosted++
	if n.FR != nil {
		n.FR.Record(flightrec.KEvPost, n.S.Now(), m.Span, uint32(EvNewHeader), 0)
	}
	j := n.getEvPost()
	j.p = proc
	j.ev = ev
	j.credits = hdrCredits
	n.Chip.WriteHost(int64(wire.HeaderBytes+fwEventBytes), j.crFn)
}

// condemn marks a message's remaining payload for silent discard.
func (n *NIC) condemn(m *fabric.Message) {
	n.Fab.FaultCondemned(m)
	stub, ok := n.streams[m.ID]
	delete(n.streams, m.ID)
	remaining := m.PayloadLen
	if ok {
		for _, c := range stub.queued {
			remaining -= len(c.Data)
			n.Chip.RxFIFO.Put(int64(len(c.Data)))
			n.Fab.RecycleChunk(c)
		}
		// condemn always runs before a pending was adopted, so the stream
		// entry is a stub from HeaderArrived.
		n.putStub(stub)
	}
	if remaining > 0 {
		n.dead[m.ID] = remaining
	}
}

// ChunkArrived implements fabric.Endpoint: payload bytes land in the RX
// FIFO. The RX DMA engine demultiplexes interleaved streams without PowerPC
// involvement (§4.3), so no handler cycles are charged here.
func (n *NIC) ChunkArrived(c *fabric.Chunk) {
	if left, dead := n.dead[c.Msg.ID]; dead {
		n.Chip.RxFIFO.Put(int64(len(c.Data)))
		left -= len(c.Data)
		if left <= 0 {
			delete(n.dead, c.Msg.ID)
		} else {
			n.dead[c.Msg.ID] = left
		}
		n.Fab.RecycleChunk(c)
		return
	}
	p, ok := n.streams[c.Msg.ID]
	if !ok {
		// A stream can only be unknown if it was condemned and fully
		// drained, which contradicts more chunks arriving.
		panic("fw: chunk for unknown stream")
	}
	p.arrived += len(c.Data)
	if n.FR != nil {
		n.FR.Record(flightrec.KChunkRx, n.S.Now(), c.Msg.Span, uint32(c.Off), uint32(len(c.Data)))
	}
	if p.programmed || p.discardAll {
		n.consumeChunk(p, c)
		return
	}
	p.queued = append(p.queued, c)
}

// rxDeposit is one in-flight host deposit of a received chunk. Like the TX
// side's txChunk, the carrier and its completion callback are bound once
// and recycled, keeping the receive data path allocation-free.
type rxDeposit struct {
	n          *NIC
	p          *Pending
	c          *fabric.Chunk
	depositLen int
	writeFn    func()
}

func (n *NIC) getDeposit() *rxDeposit {
	if k := len(n.depFree); k > 0 {
		d := n.depFree[k-1]
		n.depFree = n.depFree[:k-1]
		return d
	}
	d := &rxDeposit{n: n}
	d.writeFn = d.write
	return d
}

// write runs when the HyperTransport write completes: deposit the bytes,
// return FIFO credits, recycle the chunk and the carrier.
func (d *rxDeposit) write() {
	n, p, c, dl := d.n, d.p, d.c, d.depositLen
	d.p, d.c = nil, nil
	n.depFree = append(n.depFree, d)
	p.buf.WriteAt(p.bufOff+c.Off, c.Data[:dl])
	n.Chip.RxFIFO.Put(int64(len(c.Data)))
	p.consumed += len(c.Data)
	n.Fab.RecycleChunk(c)
	n.checkRxComplete(p)
}

// consumeChunk moves one arrived chunk out of the RX FIFO: the prefix
// within the host's manipulated length crosses HyperTransport into the
// target buffer; the rest (truncation) is discarded on the spot.
func (n *NIC) consumeChunk(p *Pending, c *fabric.Chunk) {
	p.crc = crc32.Update(p.crc, crc32.IEEETable, c.Data)
	depositLen := 0
	if !p.discardAll {
		if c.Off < p.mlen {
			depositLen = p.mlen - c.Off
			if depositLen > len(c.Data) {
				depositLen = len(c.Data)
			}
		}
	}
	if depositLen > 0 {
		d := n.getDeposit()
		d.p = p
		d.c = c
		d.depositLen = depositLen
		segs := n.segsInRange(p.buf, p.bufOff+c.Off, depositLen)
		n.Chip.WriteHostStream(int64(depositLen), segs, d.writeFn)
		return
	}
	n.Chip.RxFIFO.Put(int64(len(c.Data)))
	p.consumed += len(c.Data)
	n.Fab.RecycleChunk(c)
	n.checkRxComplete(p)
}

// checkRxComplete finishes a receive once every payload byte has been
// deposited or discarded: CRC verdict, completion event (generic: one more
// interrupt — the second one the paper counts for long messages, §6), or
// silent release for discards.
func (n *NIC) checkRxComplete(p *Pending) {
	if p.consumed < p.msg.PayloadLen {
		return
	}
	delete(n.streams, p.msg.ID)
	if p.discardAll {
		// No completion event for discards. The host already released the
		// pending (the pool hands out fresh structures, so this one keeps
		// draining safely); nothing further to do.
		n.Stats.Discards++
		return
	}
	ok := p.crc == p.msg.CRC
	if !ok {
		n.Stats.CrcFails++
		n.FR.Record(flightrec.KCrcFail, n.S.Now(), p.msg.Span, p.msg.FwSeq, 0)
	}
	n.gbnDataReceived(p, ok)
	if n.FR != nil {
		okA := uint32(0)
		if ok {
			okA = 1
		}
		n.FR.Record(flightrec.KRxDone, n.S.Now(), p.msg.Span, okA, 0)
	}
	j := n.getEvPost()
	j.p = p.proc
	j.ev = Event{Kind: EvRxDone, Pending: p, OK: ok}
	n.exec("rx-done", n.P.FwRxDoneCycles, j.rdFn)
}

// SubmitRx is the host's receive command (§4.3): after Portals matching,
// the host tells the firmware where the message's payload belongs — the
// pending id, the target buffer, and how many bytes to accept (the rest is
// implicitly discarded). done is recorded on the pending for the driver's
// completion handling.
func (p *Pending) SubmitRx(buf Buffer, bufOff, mlen int, done func(ok bool)) {
	n := p.proc.nic
	p.stage(buf, bufOff, mlen, done)
	p.proc.command(n.P.FwRxCmdCycles+n.P.FwDMAProgramCycles, p.progFn)
}

// stage parks a receive command's arguments on the pending until its
// mailbox/handler cycles have been charged; program applies them. With the
// command callbacks bound once per pooled Pending, the receive command path
// allocates nothing.
func (p *Pending) stage(buf Buffer, bufOff, mlen int, done func(ok bool)) {
	if p.progFn == nil {
		p.progFn = p.program
		p.discFn = p.discard
		p.relFn = p.release
	}
	p.stgBuf = buf
	p.stgOff = bufOff
	p.stgMlen = mlen
	p.stgDone = done
}

func (p *Pending) program() {
	p.buf = p.stgBuf
	p.bufOff = p.stgOff
	p.mlen = p.stgMlen
	p.done = p.stgDone
	p.stgBuf = nil
	p.stgDone = nil
	p.programmed = true
	p.proc.nic.drainQueued(p)
}

func (p *Pending) discard() {
	p.discardAll = true
	p.proc.nic.drainQueued(p)
}

func (p *Pending) release() { p.proc.nic.freeRx(p) }

// bindCmds ensures the command callbacks are bound (for paths that skip
// stage).
func (p *Pending) bindCmds() {
	if p.progFn == nil {
		p.progFn = p.program
		p.discFn = p.discard
		p.relFn = p.release
	}
}

// ProgramRx is the NIC-local equivalent of SubmitRx, used by accelerated
// mode: the firmware matched the header itself, so the receive DMA engine
// can be programmed immediately — no mailbox, no HyperTransport round trip
// ("arriving messages to be immediately processed, rather than waiting for
// the host", §3.3).
func (p *Pending) ProgramRx(buf Buffer, bufOff, mlen int, done func(ok bool)) {
	n := p.proc.nic
	p.stage(buf, bufOff, mlen, done)
	n.exec("rx-program-local", n.P.FwDMAProgramCycles, p.progFn)
}

// DiscardLocal is the NIC-local equivalent of Discard.
func (p *Pending) DiscardLocal() {
	n := p.proc.nic
	p.bindCmds()
	n.exec("rx-discard-local", n.P.FwRxCmdCycles, p.discFn)
}

// ReleaseLocal is the NIC-local equivalent of Release.
func (p *Pending) ReleaseLocal() {
	n := p.proc.nic
	p.bindCmds()
	n.exec("release-local", n.P.FwReleaseCycles, p.relFn)
}

// Discard is the host's "drop this message" command: every payload byte is
// consumed from the FIFO and thrown away, with no completion event. The
// host follows up with Release; the discard stream finishes draining on its
// own.
func (p *Pending) Discard() {
	n := p.proc.nic
	p.bindCmds()
	p.proc.command(n.P.FwRxCmdCycles, p.discFn)
}

// Release is the host's release-pending command (§4.3), returning the
// pending to the firmware's free list once the host is done with the upper
// pending contents.
func (p *Pending) Release() {
	n := p.proc.nic
	p.bindCmds()
	p.proc.command(n.P.FwReleaseCycles, p.relFn)
}

// drainQueued consumes chunks that arrived before the host's command, then
// handles the degenerate already-complete cases.
func (n *NIC) drainQueued(p *Pending) {
	queued := p.queued
	p.queued = nil
	for _, c := range queued {
		n.consumeChunk(p, c)
	}
	if len(queued) == 0 && p.consumed >= p.msg.PayloadLen {
		n.checkRxComplete(p)
	}
}

// freeRx returns a pending to its process pool. The released structure
// itself is reused (adoption resets it) unless its discarded stream is
// still draining, in which case the pool gets a fresh structure and the old
// one keeps consuming safely.
func (n *NIC) freeRx(p *Pending) {
	if p.released {
		panic("fw: double release of rx pending")
	}
	p.released = true
	proc := p.proc
	if n.FR != nil {
		// Both exits below return exactly one pending to the pool.
		var span uint64
		if p.msg != nil {
			span = p.msg.Span
		}
		n.FR.Record(flightrec.KPendFree, n.S.Now(), span, uint32(len(proc.rxFree)+1), 0)
	}
	if p.msg != nil && p.consumed < p.msg.PayloadLen {
		proc.rxFree = append(proc.rxFree, &Pending{proc: proc})
		return
	}
	if p.msg != nil {
		// Fully consumed and released: the message's life is over on both
		// ends of the wire.
		proc.nic.Fab.RecycleMsg(p.msg)
	}
	p.msg = nil
	p.Inline = nil
	proc.rxFree = append(proc.rxFree, p)
}

// reset clears receive state for reuse.
func (p *Pending) reset() {
	p.queued = nil
	p.arrived = 0
	p.consumed = 0
	p.crc = 0
	p.programmed = false
	p.discardAll = false
	p.buf = nil
	p.bufOff = 0
	p.mlen = 0
	p.done = nil
	p.released = false
}

// Complete reports whether the message arrived entirely in its header
// packet (inline data or no payload): header and completion delivered
// together, no receive command needed.
func (p *Pending) Complete() bool { return p.msg.PayloadLen == 0 }

// PayloadLen reports the chunked payload size of the pending's message.
func (p *Pending) PayloadLen() int { return p.msg.PayloadLen }

// Done returns the completion callback stored by SubmitRx.
func (p *Pending) Done() func(ok bool) { return p.done }

// TakeRec detaches and returns the latency-attribution record of the
// pending's message, or nil. The caller (the NAL driver, at app delivery)
// becomes the owner and must finish or drop it; detaching here keeps
// RecycleMsg from reclaiming a record that was already consumed.
func (p *Pending) TakeRec() *telemetry.MsgRec {
	if p.msg == nil || p.msg.Rec == nil {
		return nil
	}
	r := p.msg.Rec
	p.msg.Rec = nil
	return r
}

// cmdJob carries one mailbox command through its stages — FIFO slot grant,
// posted write across HyperTransport, firmware handler — with the stage
// callbacks bound once and the carrier recycled, so a command allocates
// nothing beyond its handler.
type cmdJob struct {
	p       *Process
	cycles  int64
	handler func()
	takeFn  func()
	postFn  func()
	runFn   func()
}

func (n *NIC) getCmdJob() *cmdJob {
	if k := len(n.cmdFree); k > 0 {
		j := n.cmdFree[k-1]
		n.cmdFree = n.cmdFree[:k-1]
		return j
	}
	j := &cmdJob{}
	j.takeFn = j.take
	j.postFn = j.post
	j.runFn = j.run
	return j
}

func (j *cmdJob) take() {
	n := j.p.nic
	n.S.After(n.P.HTWriteLatency, j.postFn)
}

func (j *cmdJob) post() {
	j.p.nic.exec("mailbox-cmd", j.cycles, j.runFn)
}

func (j *cmdJob) run() {
	p, h := j.p, j.handler
	j.p, j.handler = nil, nil
	n := p.nic
	n.cmdFree = append(n.cmdFree, j)
	if n.FR != nil {
		n.FR.Record(flightrec.KCmdDequeue, n.S.Now(), 0, uint32(p.ID), 0)
	}
	p.cmdSlots.Put(1)
	h()
}

// command posts one mailbox command from the host: it takes a command FIFO
// slot (backpressuring the host when full), models the posted-write latency
// across HyperTransport, then runs handler as a firmware handler of the
// given cycle cost. The slot frees when the firmware pops the command.
func (p *Process) command(cycles int64, handler func()) {
	j := p.nic.getCmdJob()
	j.p = p
	j.cycles = cycles
	j.handler = handler
	p.cmdSlots.Take(1, j.takeFn)
}

// QueryStats is a synchronous mailbox command: the host posts it to the
// command FIFO and busy-waits until the firmware writes the answer to the
// result FIFO ("If the command returns a result, the host busy-waits until
// the firmware posts the result", §4.1). It returns a snapshot of the
// firmware counters — what a RAS poll reads from the control block.
func (p *Process) QueryStats(caller *sim.Proc) Stats {
	n := p.nic
	var out Stats
	got := false
	sig := sim.NewSignal(n.S)
	p.command(n.P.FwReleaseCycles, func() {
		out = n.Stats
		out.HeadersRx = n.Stats.HeadersRx // snapshot under the handler
		// The result crosses back to host memory as one posted write.
		n.Chip.WriteHost(fwEventBytes, func() {
			got = true
			sig.Raise()
		})
	})
	for !got {
		sig.Wait(caller)
	}
	return out
}
