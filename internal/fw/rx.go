package fw

import (
	"hash/crc32"

	"portals3/internal/fabric"
	"portals3/internal/sim"
	"portals3/internal/topo"
	"portals3/internal/wire"
)

// headerCRC starts the receive-side end-to-end check: CRC over the encoded
// header plus any inline payload. Payload chunks extend it in arrival
// order, which matches sender order because delivery is in-order.
func headerCRC(m *fabric.Message) uint32 {
	var buf [wire.HeaderBytes]byte
	m.Hdr.Encode(buf[:])
	c := crc32.ChecksumIEEE(buf[:])
	return crc32.Update(c, crc32.IEEETable, m.Inline)
}

// HeaderArrived implements fabric.Endpoint. It runs at hardware time: the
// RX DMA engine has recognized a new message start (§2); a stub stream is
// registered immediately so payload chunks demultiplex correctly while the
// PowerPC works through its handler queue, then the header handler is
// dispatched.
func (n *NIC) HeaderArrived(m *fabric.Message) {
	if n.killed {
		// A panicked node blackholes arriving traffic: return the FIFO
		// credits and discard the payload so the rest of the machine is
		// not wedged by a dead peer's buffers.
		n.condemn(m)
		n.Chip.RxFIFO.Put(int64(n.P.PacketBytes))
		return
	}
	if m.PayloadLen > 0 {
		n.streams[m.ID] = &Pending{msg: m}
	}
	n.exec("rx-header", n.P.FwRxHdrCycles, func() { n.handleHeader(m) })
}

// handleHeader is the firmware's new-message handler (§4.3): source lookup
// or allocation, pending allocation from the target process's RX free list,
// header push to the upper pending in host memory, and event delivery.
func (n *NIC) handleHeader(m *fabric.Message) {
	n.Stats.HeadersRx++
	hdrCredits := int64(n.P.PacketBytes)

	// NIC-level flow control frames never touch pendings or the host.
	if m.Hdr.Type == wire.TypeFcAck || m.Hdr.Type == wire.TypeFcNack {
		n.handleFlowControl(m)
		n.Chip.RxFIFO.Put(hdrCredits)
		return
	}

	src := n.allocSource(topo.NodeID(m.Hdr.SrcNid))
	if src == nil {
		if n.exhaust(m, "source pool empty") {
			n.Chip.RxFIFO.Put(hdrCredits)
		}
		return
	}
	if n.Policy == ExhaustGoBackN && !n.gbnAcceptRx(src, m) {
		// Out-of-sequence under go-back-n: already NACKed, discard.
		n.Chip.RxFIFO.Put(hdrCredits)
		return
	}
	proc := n.procForPid(m.Hdr.DstPid)
	if proc == nil {
		// No process registered for this pid: silently discard, like a
		// message to a dead pid on the real machine.
		n.Stats.Discards++
		n.condemn(m)
		n.Chip.RxFIFO.Put(hdrCredits)
		return
	}
	if len(proc.rxFree) == 0 {
		if n.exhaust(m, "rx pending pool empty") {
			n.Chip.RxFIFO.Put(hdrCredits)
		}
		return
	}
	p := proc.rxFree[len(proc.rxFree)-1]
	proc.rxFree = proc.rxFree[:len(proc.rxFree)-1]
	n.gbnAdvance(src, m)
	p.reset()
	p.proc = proc
	p.msg = m
	p.Hdr = m.Hdr
	p.Inline = m.Inline
	p.crc = headerCRC(m)
	if stub, ok := n.streams[m.ID]; ok && stub != p {
		// Adopt chunks that raced ahead of this handler.
		p.queued = stub.queued
		p.arrived = stub.arrived
	}
	if m.PayloadLen > 0 {
		n.streams[m.ID] = p
	}

	if m.PayloadLen == 0 {
		// Whole message fit in the header packet (≤12 B inline, a bare
		// get/ack, or a zero-length put): deliver header and completion
		// together — the small-message optimization that saves an
		// interrupt (§6).
		ok := p.crc == m.CRC
		if !ok {
			n.Stats.CrcFails++
		}
		if len(m.Inline) > 0 {
			n.Stats.InlineRx++
		}
		n.gbnDataReceived(p, ok)
		ev := Event{Kind: EvNewHeader, Pending: p, OK: ok}
		if proc.Accel {
			n.Chip.RxFIFO.Put(hdrCredits)
			proc.Handle(ev)
			return
		}
		n.Stats.EventsPosted++
		n.Chip.WriteHost(int64(wire.HeaderBytes+len(m.Inline)+fwEventBytes), func() {
			n.Chip.RxFIFO.Put(hdrCredits)
			proc.Handle(ev)
		})
		return
	}

	// Payload follows: hand the header to the Portals processing (host in
	// generic mode, right here in accelerated mode) and keep streaming
	// chunks into the RX FIFO meanwhile.
	ev := Event{Kind: EvNewHeader, Pending: p, OK: true}
	if proc.Accel {
		n.Chip.RxFIFO.Put(hdrCredits)
		proc.Handle(ev)
		return
	}
	n.Stats.EventsPosted++
	n.Chip.WriteHost(int64(wire.HeaderBytes+fwEventBytes), func() {
		n.Chip.RxFIFO.Put(hdrCredits)
		proc.Handle(ev)
	})
}

// condemn marks a message's remaining payload for silent discard.
func (n *NIC) condemn(m *fabric.Message) {
	stub, ok := n.streams[m.ID]
	delete(n.streams, m.ID)
	remaining := m.PayloadLen
	if ok {
		for _, c := range stub.queued {
			remaining -= len(c.Data)
			n.Chip.RxFIFO.Put(int64(len(c.Data)))
		}
	}
	if remaining > 0 {
		n.dead[m.ID] = remaining
	}
}

// ChunkArrived implements fabric.Endpoint: payload bytes land in the RX
// FIFO. The RX DMA engine demultiplexes interleaved streams without PowerPC
// involvement (§4.3), so no handler cycles are charged here.
func (n *NIC) ChunkArrived(c *fabric.Chunk) {
	if left, dead := n.dead[c.Msg.ID]; dead {
		n.Chip.RxFIFO.Put(int64(len(c.Data)))
		left -= len(c.Data)
		if left <= 0 {
			delete(n.dead, c.Msg.ID)
		} else {
			n.dead[c.Msg.ID] = left
		}
		return
	}
	p, ok := n.streams[c.Msg.ID]
	if !ok {
		// A stream can only be unknown if it was condemned and fully
		// drained, which contradicts more chunks arriving.
		panic("fw: chunk for unknown stream")
	}
	p.arrived += len(c.Data)
	if p.programmed || p.discardAll {
		n.consumeChunk(p, c)
		return
	}
	p.queued = append(p.queued, c)
}

// consumeChunk moves one arrived chunk out of the RX FIFO: the prefix
// within the host's manipulated length crosses HyperTransport into the
// target buffer; the rest (truncation) is discarded on the spot.
func (n *NIC) consumeChunk(p *Pending, c *fabric.Chunk) {
	p.crc = crc32.Update(p.crc, crc32.IEEETable, c.Data)
	depositLen := 0
	if !p.discardAll {
		if c.Off < p.mlen {
			depositLen = p.mlen - c.Off
			if depositLen > len(c.Data) {
				depositLen = len(c.Data)
			}
		}
	}
	if depositLen > 0 {
		data := c.Data
		off := c.Off
		segs := n.segsInRange(p.buf, p.bufOff+off, depositLen)
		n.Chip.WriteHostStream(int64(depositLen), segs, func() {
			p.buf.WriteAt(p.bufOff+off, data[:depositLen])
			n.Chip.RxFIFO.Put(int64(len(data)))
			p.consumed += len(data)
			n.checkRxComplete(p)
		})
		return
	}
	n.Chip.RxFIFO.Put(int64(len(c.Data)))
	p.consumed += len(c.Data)
	n.checkRxComplete(p)
}

// checkRxComplete finishes a receive once every payload byte has been
// deposited or discarded: CRC verdict, completion event (generic: one more
// interrupt — the second one the paper counts for long messages, §6), or
// silent release for discards.
func (n *NIC) checkRxComplete(p *Pending) {
	if p.consumed < p.msg.PayloadLen {
		return
	}
	delete(n.streams, p.msg.ID)
	if p.discardAll {
		// No completion event for discards. The host already released the
		// pending (the pool hands out fresh structures, so this one keeps
		// draining safely); nothing further to do.
		n.Stats.Discards++
		return
	}
	ok := p.crc == p.msg.CRC
	if !ok {
		n.Stats.CrcFails++
	}
	n.gbnDataReceived(p, ok)
	n.exec("rx-done", n.P.FwRxDoneCycles, func() {
		ev := Event{Kind: EvRxDone, Pending: p, OK: ok}
		if p.proc.Accel {
			p.proc.Handle(ev)
			return
		}
		n.postEvent(p.proc, ev)
	})
}

// SubmitRx is the host's receive command (§4.3): after Portals matching,
// the host tells the firmware where the message's payload belongs — the
// pending id, the target buffer, and how many bytes to accept (the rest is
// implicitly discarded). done is recorded on the pending for the driver's
// completion handling.
func (p *Pending) SubmitRx(buf Buffer, bufOff, mlen int, done func(ok bool)) {
	n := p.proc.nic
	p.proc.command(n.P.FwRxCmdCycles+n.P.FwDMAProgramCycles, func() {
		p.buf = buf
		p.bufOff = bufOff
		p.mlen = mlen
		p.done = done
		p.programmed = true
		n.drainQueued(p)
	})
}

// ProgramRx is the NIC-local equivalent of SubmitRx, used by accelerated
// mode: the firmware matched the header itself, so the receive DMA engine
// can be programmed immediately — no mailbox, no HyperTransport round trip
// ("arriving messages to be immediately processed, rather than waiting for
// the host", §3.3).
func (p *Pending) ProgramRx(buf Buffer, bufOff, mlen int, done func(ok bool)) {
	n := p.proc.nic
	n.exec("rx-program-local", n.P.FwDMAProgramCycles, func() {
		p.buf = buf
		p.bufOff = bufOff
		p.mlen = mlen
		p.done = done
		p.programmed = true
		n.drainQueued(p)
	})
}

// DiscardLocal is the NIC-local equivalent of Discard.
func (p *Pending) DiscardLocal() {
	n := p.proc.nic
	n.exec("rx-discard-local", n.P.FwRxCmdCycles, func() {
		p.discardAll = true
		n.drainQueued(p)
	})
}

// ReleaseLocal is the NIC-local equivalent of Release.
func (p *Pending) ReleaseLocal() {
	n := p.proc.nic
	n.exec("release-local", n.P.FwReleaseCycles, func() { n.freeRx(p) })
}

// Discard is the host's "drop this message" command: every payload byte is
// consumed from the FIFO and thrown away, with no completion event. The
// host follows up with Release; the discard stream finishes draining on its
// own.
func (p *Pending) Discard() {
	n := p.proc.nic
	p.proc.command(n.P.FwRxCmdCycles, func() {
		p.discardAll = true
		n.drainQueued(p)
	})
}

// Release is the host's release-pending command (§4.3), returning the
// pending to the firmware's free list once the host is done with the upper
// pending contents.
func (p *Pending) Release() {
	n := p.proc.nic
	p.proc.command(n.P.FwReleaseCycles, func() { n.freeRx(p) })
}

// drainQueued consumes chunks that arrived before the host's command, then
// handles the degenerate already-complete cases.
func (n *NIC) drainQueued(p *Pending) {
	queued := p.queued
	p.queued = nil
	for _, c := range queued {
		n.consumeChunk(p, c)
	}
	if len(queued) == 0 && p.consumed >= p.msg.PayloadLen {
		n.checkRxComplete(p)
	}
}

// freeRx returns a pending to its process pool.
func (n *NIC) freeRx(p *Pending) {
	if p.released {
		panic("fw: double release of rx pending")
	}
	p.released = true
	proc := p.proc
	fresh := &Pending{proc: proc}
	proc.rxFree = append(proc.rxFree, fresh)
}

// reset clears receive state for reuse.
func (p *Pending) reset() {
	p.queued = nil
	p.arrived = 0
	p.consumed = 0
	p.crc = 0
	p.programmed = false
	p.discardAll = false
	p.buf = nil
	p.bufOff = 0
	p.mlen = 0
	p.done = nil
	p.released = false
}

// Complete reports whether the message arrived entirely in its header
// packet (inline data or no payload): header and completion delivered
// together, no receive command needed.
func (p *Pending) Complete() bool { return p.msg.PayloadLen == 0 }

// PayloadLen reports the chunked payload size of the pending's message.
func (p *Pending) PayloadLen() int { return p.msg.PayloadLen }

// Done returns the completion callback stored by SubmitRx.
func (p *Pending) Done() func(ok bool) { return p.done }

// command posts one mailbox command from the host: it takes a command FIFO
// slot (backpressuring the host when full), models the posted-write latency
// across HyperTransport, then runs handler as a firmware handler of the
// given cycle cost. The slot frees when the firmware pops the command.
func (p *Process) command(cycles int64, handler func()) {
	n := p.nic
	p.cmdSlots.Take(1, func() {
		n.S.After(n.P.HTWriteLatency, func() {
			n.exec("mailbox-cmd", cycles, func() {
				p.cmdSlots.Put(1)
				handler()
			})
		})
	})
}

// QueryStats is a synchronous mailbox command: the host posts it to the
// command FIFO and busy-waits until the firmware writes the answer to the
// result FIFO ("If the command returns a result, the host busy-waits until
// the firmware posts the result", §4.1). It returns a snapshot of the
// firmware counters — what a RAS poll reads from the control block.
func (p *Process) QueryStats(caller *sim.Proc) Stats {
	n := p.nic
	var out Stats
	got := false
	sig := sim.NewSignal(n.S)
	p.command(n.P.FwReleaseCycles, func() {
		out = n.Stats
		out.HeadersRx = n.Stats.HeadersRx // snapshot under the handler
		// The result crosses back to host memory as one posted write.
		n.Chip.WriteHost(fwEventBytes, func() {
			got = true
			sig.Raise()
		})
	})
	for !got {
		sig.Wait(caller)
	}
	return out
}
