package fw

import (
	"errors"
	"hash/crc32"

	"portals3/internal/flightrec"
	"portals3/internal/telemetry"
	"portals3/internal/topo"
	"portals3/internal/wire"
)

// ErrNoTxPending reports an empty host-managed transmit pending pool; the
// driver must retry after a TX_DONE returns one.
var ErrNoTxPending = errors.New("fw: transmit pending pool empty")

// ErrAccelNonContiguous rejects a non-contiguous buffer on an accelerated
// mailbox (paper §3.3).
var ErrAccelNonContiguous = errors.New("fw: accelerated mode requires physically contiguous buffers")

// SubmitTx is the host's transmit command path (§4.3): allocate a pending
// from the host-managed pool, store the header in the upper pending, and
// push the command (pending id, target node, payload address, length) to
// the firmware mailbox. Non-contiguous buffers arrive with their DMA
// commands pre-computed by the host; the extra host cycles for that are
// charged by the NAL driver, the extra per-segment HT transactions here.
func (n *NIC) SubmitTx(req *TxReq) error {
	proc := n.procForPid(req.Pid)
	if proc == nil {
		return errors.New("fw: no firmware process for pid")
	}
	if len(proc.txFree) == 0 {
		return ErrNoTxPending
	}
	if proc.Accel && req.Buf != nil && req.Buf.Segments() > 1 {
		// "accelerated mode will not support non-contiguous message
		// buffers" (§3.3): the dedicated mailbox has no room for per-page
		// DMA command lists.
		return ErrAccelNonContiguous
	}
	p := proc.txFree[len(proc.txFree)-1]
	proc.txFree = proc.txFree[:len(proc.txFree)-1]
	if len(proc.txFree) < proc.txLow {
		proc.txLow = len(proc.txFree)
	}
	// The causal span is minted here, at the top of the transmit path, and
	// copied onto every fabric message built from this request — including
	// go-back-n retransmissions — so one span traces the message end to end.
	req.Span = n.FR.NewSpan()
	n.FR.Record(flightrec.KPendAlloc, n.S.Now(), req.Span, uint32(len(proc.txFree)), 1)
	p.req = req
	req.pending = p
	j := n.getTxJob()
	j.req = req
	req.job = j
	proc.command(n.P.FwTxCmdCycles, j.submitFn)
	return nil
}

// txJob carries one transmit request through the per-message stages of the
// TX state machine — mailbox command, header fetch, optional inline payload
// fetch — with the stage callbacks bound once and the carrier recycled in
// txHeaderReady, so a message start allocates nothing.
type txJob struct {
	n        *NIC
	req      *TxReq
	submitFn func() // mailbox command handler: enqueue on the TX FIFO
	startFn  func() // tx-program handler: fetch the header
	hdrFn    func() // header fetched from host memory
	inlFn    func() // inline payload fetched from host memory
}

func (n *NIC) getTxJob() *txJob {
	if k := len(n.txjFree); k > 0 {
		j := n.txjFree[k-1]
		n.txjFree = n.txjFree[:k-1]
		return j
	}
	j := &txJob{n: n}
	j.submitFn = j.submit
	j.startFn = j.start
	j.hdrFn = j.hdrRead
	j.inlFn = j.inlRead
	return j
}

func (j *txJob) submit() {
	n, req := j.n, j.req
	req.Rec.Stamp(telemetry.StampFwTx, n.S.Now())
	src := n.allocSource(topo.NodeID(req.Hdr.DstNid))
	if src == nil {
		// TX-side source exhaustion cannot be NACKed away — the
		// pool is local. It is always a sizing failure.
		n.Stats.Exhaustions++
		n.FR.Record(flightrec.KExhaust, n.S.Now(), req.Span, flightrec.ExhaustTxSource, 0)
		n.OnPanic("tx source pool empty")
		return
	}
	n.gbnAssignSeq(src, req)
	n.txq = append(n.txq, req)
	n.noteTxq()
	n.FR.Record(flightrec.KTxSerialize, n.S.Now(), req.Span, req.seq, uint32(req.Len))
	n.pumpTx()
}

func (j *txJob) start() {
	n, req := j.n, j.req
	if req.ctrl {
		n.txHeaderReady(req, nil)
		return
	}
	n.Chip.ReadHost(int64(wire.PacketBytes), 1, j.hdrFn)
}

func (j *txJob) hdrRead() {
	n, req := j.n, j.req
	if req.Len <= n.P.InlineDataMax && req.Len > 0 && req.Hdr.HasPayload() {
		// Small-message optimization: the payload rides in the header
		// packet. One more HT read fetches it from main memory.
		n.Chip.ReadHost(int64(req.Len), n.segsInRange(req.Buf, req.Off, req.Len), j.inlFn)
		return
	}
	n.txHeaderReady(req, nil)
}

func (j *txJob) inlRead() {
	n, req := j.n, j.req
	data := make([]byte, req.Len)
	req.Buf.ReadAt(req.Off, data)
	n.txHeaderReady(req, data)
}

// sendControl transmits a NIC-level flow control frame. Control frames are
// built entirely in firmware — no pending, no host memory reads — but they
// serialize through the same TX queue as everything else (§4.3: "All
// transmits, regardless of destination or process type, are serialized
// through a single TX FIFO").
func (n *NIC) sendControl(dst topo.NodeID, typ wire.MsgType, seq uint32) {
	hdr := wire.Header{
		Type:   typ,
		SrcNid: uint32(n.Node),
		DstNid: uint32(dst),
		Offset: seq,
	}
	n.txq = append(n.txq, &TxReq{Hdr: hdr, ctrl: true})
	n.noteTxq()
	if n.FR != nil {
		k := flightrec.KGbnAckTx
		if typ == wire.TypeFcNack {
			k = flightrec.KGbnNackTx
		}
		n.FR.Record(k, n.S.Now(), 0, seq, 0)
	}
	n.pumpTx()
}

// pumpTx starts the transmit state machine on the head of the TX pending
// list if it is idle. One message transmits at a time. The header fetch
// (one HT read — control frames skip it, their header is SRAM-resident)
// and inline payload fetch run as txJob stages.
func (n *NIC) pumpTx() {
	if n.txBusy || n.txqHead == len(n.txq) {
		return
	}
	n.txBusy = true
	req := n.txq[n.txqHead]
	if req.job == nil {
		// Control frames and go-back-n retransmissions arrive without a
		// carrier (theirs was recycled when the first attempt started).
		req.job = n.getTxJob()
		req.job.req = req
	}
	n.exec("tx-program", n.P.FwDMAProgramCycles, req.job.startFn)
}

// txHeaderReady injects the header packet and, for chunked payloads,
// starts the chunk pipeline. The message's txJob carrier is done once the
// header is on its way, so it recycles here.
func (n *NIC) txHeaderReady(req *TxReq, inline []byte) {
	if req.job != nil {
		req.job.req = nil
		n.txjFree = append(n.txjFree, req.job)
		req.job = nil
	}
	payloadLen := req.Len
	if inline != nil {
		payloadLen = 0
	}
	if !req.Hdr.HasPayload() {
		payloadLen = 0
	}
	m := n.Fab.NewStream(req.Hdr, n.Node, topo.NodeID(req.Hdr.DstNid), payloadLen)
	m.FwSeq = req.seq
	if inline != nil {
		m.SetInline(inline)
	}
	// The attribution record follows the message from here on; moving it
	// (rather than sharing) keeps ownership single even when go-back-n
	// builds a fresh message for a retransmission of the same request.
	m.Rec = req.Rec
	req.Rec = nil
	// The span, by contrast, is copied: a retransmission builds a fresh
	// message from the retained request and must carry the same span.
	m.Span = req.Span
	req.msg = m
	m.Hdr.Encode(n.hdrScratch[:])
	req.crc = crc32.ChecksumIEEE(n.hdrScratch[:])
	req.crc = crc32.Update(req.crc, crc32.IEEETable, m.Inline)
	n.FR.Record(flightrec.KTxHeader, n.S.Now(), req.Span, req.seq, uint32(payloadLen))
	if payloadLen == 0 {
		m.SetCRC(req.crc)
		d := n.getTxDone()
		d.req = req
		m.OnInjected = d.injFn
		n.Fab.SendHeader(m)
		return
	}
	n.Fab.SendHeader(m)
	n.txNextChunk(req, 0)
}

// txDone carries a message's completion through its two deferred steps —
// the wire-entry callback and the tx-done firmware handler — without a
// fresh closure per message.
type txDone struct {
	n      *NIC
	req    *TxReq
	injFn  func() // chunkless message entered the wire
	doneFn func() // tx-done handler body
}

func (n *NIC) getTxDone() *txDone {
	if k := len(n.tdFree); k > 0 {
		d := n.tdFree[k-1]
		n.tdFree = n.tdFree[:k-1]
		return d
	}
	d := &txDone{n: n}
	d.injFn = d.inj
	d.doneFn = d.done
	return d
}

func (d *txDone) inj() {
	n, req := d.n, d.req
	d.req = nil
	n.tdFree = append(n.tdFree, d)
	n.txComplete(req)
}

func (d *txDone) done() {
	n, req := d.n, d.req
	d.req = nil
	n.tdFree = append(n.tdFree, d)
	if n.txqHead == len(n.txq) || n.txq[n.txqHead] != req {
		panic("fw: tx completion out of order")
	}
	n.txq[n.txqHead] = nil
	n.txqHead++
	if n.txqHead == len(n.txq) {
		// Queue drained: rewind so the buffer's capacity is reused.
		n.txq = n.txq[:0]
		n.txqHead = 0
	}
	n.txBusy = false
	n.Stats.MsgsTx++
	if !req.ctrl {
		if n.Policy == ExhaustGoBackN {
			n.gbnHoldCompletion(req)
		} else {
			n.finishTx(req, true)
		}
	}
	n.pumpTx()
}

// txChunk is one in-flight payload chunk of the transmit pipeline. The
// carrier and its stage callbacks are bound once and recycled through the
// NIC's free list, so the per-chunk path allocates nothing.
type txChunk struct {
	n       *NIC
	req     *TxReq
	off, sz int
	last    bool
	takeFn  func() // TX FIFO space granted
	readFn  func() // host DMA read complete
	injFn   func() // chunk entered the wire
}

func (n *NIC) getTxChunk() *txChunk {
	if k := len(n.txcFree); k > 0 {
		t := n.txcFree[k-1]
		n.txcFree = n.txcFree[:k-1]
		return t
	}
	t := &txChunk{n: n}
	t.takeFn = t.take
	t.readFn = t.read
	t.injFn = t.injected
	return t
}

// txNextChunk runs the payload pipeline: reserve TX FIFO space, DMA-read
// the chunk from host memory (zero-copy: bytes are captured at read time),
// fold it into the running CRC, and inject it. When the FIFO is full the
// state machine yields, exactly as §4.3 describes.
func (n *NIC) txNextChunk(req *TxReq, off int) {
	t := n.getTxChunk()
	t.req = req
	t.off = off
	t.sz = n.P.ChunkBytes
	if off+t.sz > req.Len {
		t.sz = req.Len - off
	}
	t.last = off+t.sz == req.Len
	n.Chip.TxFIFO.Take(int64(t.sz), t.takeFn)
}

func (t *txChunk) take() {
	n := t.n
	n.Chip.ReadHostStream(int64(t.sz), n.segsInRange(t.req.Buf, t.req.Off+t.off, t.sz), t.readFn)
}

func (t *txChunk) read() {
	n, req := t.n, t.req
	c := n.Fab.AllocChunk(t.sz)
	req.Buf.ReadAt(req.Off+t.off, c.Data)
	req.crc = crc32.Update(req.crc, crc32.IEEETable, c.Data)
	if t.last {
		req.msg.SetCRC(req.crc)
	}
	c.Msg = req.msg
	c.Off = t.off
	c.Last = t.last
	c.OnInjected = t.injFn
	n.Fab.SendChunk(c)
	if !t.last {
		n.txNextChunk(req, t.off+t.sz)
	}
}

// injected fires when the chunk's bytes have entered the wire: TX FIFO
// space recycles, and the carrier goes back to the pool (the fabric chunk
// itself lives on until the receiver consumes it).
func (t *txChunk) injected() {
	n, req, sz, last := t.n, t.req, t.sz, t.last
	if n.FR != nil {
		n.FR.Record(flightrec.KChunkTx, n.S.Now(), req.Span, uint32(t.off), uint32(sz))
	}
	t.req = nil
	n.txcFree = append(n.txcFree, t)
	n.Chip.TxFIFO.Put(int64(sz))
	if last {
		n.txComplete(req)
	}
}

// txComplete runs when the message's final packet enters the wire: unlink
// from the TX pending list, post the transmit-complete event (unless
// go-back-n holds it for the peer's ack), and pump the next message.
func (n *NIC) txComplete(req *TxReq) {
	d := n.getTxDone()
	d.req = req
	n.exec("tx-done", n.P.FwTxDoneCycles, d.doneFn)
}

// finishTx frees the pending back to the host-managed pool and posts the
// TX_DONE event.
func (n *NIC) finishTx(req *TxReq, ok bool) {
	proc := n.procForPid(req.Pid)
	if req.pending != nil {
		p := req.pending
		p.req = nil
		proc.txFree = append(proc.txFree, p)
		req.pending = nil
		if n.FR != nil {
			n.FR.Record(flightrec.KPendFree, n.S.Now(), req.Span, uint32(len(proc.txFree)), 1)
		}
	}
	n.Stats.Completions++
	ev := Event{Kind: EvTxDone, Tx: req, OK: ok}
	if proc.Accel {
		proc.Handle(ev)
		return
	}
	n.postEvent(proc, ev)
}

// segsInRange counts the physically contiguous segments of buf in
// [off, off+n): 1 for Catamount's contiguous memory, the page span for
// Linux. Each segment is a separate DMA transaction.
func (n *NIC) segsInRange(buf Buffer, off, nbytes int) int {
	if buf == nil || nbytes == 0 || buf.Segments() <= 1 {
		return 1
	}
	page := int(n.P.PageBytes)
	return (off+nbytes-1)/page - off/page + 1
}
