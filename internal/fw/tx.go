package fw

import (
	"errors"
	"hash/crc32"

	"portals3/internal/fabric"
	"portals3/internal/topo"
	"portals3/internal/wire"
)

// ErrNoTxPending reports an empty host-managed transmit pending pool; the
// driver must retry after a TX_DONE returns one.
var ErrNoTxPending = errors.New("fw: transmit pending pool empty")

// ErrAccelNonContiguous rejects a non-contiguous buffer on an accelerated
// mailbox (paper §3.3).
var ErrAccelNonContiguous = errors.New("fw: accelerated mode requires physically contiguous buffers")

// SubmitTx is the host's transmit command path (§4.3): allocate a pending
// from the host-managed pool, store the header in the upper pending, and
// push the command (pending id, target node, payload address, length) to
// the firmware mailbox. Non-contiguous buffers arrive with their DMA
// commands pre-computed by the host; the extra host cycles for that are
// charged by the NAL driver, the extra per-segment HT transactions here.
func (n *NIC) SubmitTx(req *TxReq) error {
	proc := n.procForPid(req.Pid)
	if proc == nil {
		return errors.New("fw: no firmware process for pid")
	}
	if len(proc.txFree) == 0 {
		return ErrNoTxPending
	}
	if proc.Accel && req.Buf != nil && req.Buf.Segments() > 1 {
		// "accelerated mode will not support non-contiguous message
		// buffers" (§3.3): the dedicated mailbox has no room for per-page
		// DMA command lists.
		return ErrAccelNonContiguous
	}
	p := proc.txFree[len(proc.txFree)-1]
	proc.txFree = proc.txFree[:len(proc.txFree)-1]
	p.req = req
	req.pending = p
	proc.command(n.P.FwTxCmdCycles, func() {
		src := n.allocSource(topo.NodeID(req.Hdr.DstNid))
		if src == nil {
			// TX-side source exhaustion cannot be NACKed away — the
			// pool is local. It is always a sizing failure.
			n.Stats.Exhaustions++
			n.OnPanic("tx source pool empty")
			return
		}
		n.gbnAssignSeq(src, req)
		n.txq = append(n.txq, req)
		n.pumpTx()
	})
	return nil
}

// sendControl transmits a NIC-level flow control frame. Control frames are
// built entirely in firmware — no pending, no host memory reads — but they
// serialize through the same TX queue as everything else (§4.3: "All
// transmits, regardless of destination or process type, are serialized
// through a single TX FIFO").
func (n *NIC) sendControl(dst topo.NodeID, typ wire.MsgType, seq uint32) {
	hdr := wire.Header{
		Type:   typ,
		SrcNid: uint32(n.Node),
		DstNid: uint32(dst),
		Offset: seq,
	}
	n.txq = append(n.txq, &TxReq{Hdr: hdr, ctrl: true})
	n.pumpTx()
}

// pumpTx starts the transmit state machine on the head of the TX pending
// list if it is idle. One message transmits at a time.
func (n *NIC) pumpTx() {
	if n.txBusy || len(n.txq) == 0 {
		return
	}
	n.txBusy = true
	req := n.txq[0]
	n.exec("tx-program", n.P.FwDMAProgramCycles, func() { n.txStart(req) })
}

// txStart fetches the header from the upper pending in host memory (one HT
// read — control frames skip it, their header is SRAM-resident) and then
// transmits.
func (n *NIC) txStart(req *TxReq) {
	if req.ctrl {
		n.txHeaderReady(req, nil)
		return
	}
	n.Chip.ReadHost(int64(wire.PacketBytes), 1, func() {
		if req.Len <= n.P.InlineDataMax && req.Len > 0 && req.Hdr.HasPayload() {
			// Small-message optimization: the payload rides in the header
			// packet. One more HT read fetches it from main memory.
			n.Chip.ReadHost(int64(req.Len), n.segsInRange(req.Buf, req.Off, req.Len), func() {
				data := make([]byte, req.Len)
				req.Buf.ReadAt(req.Off, data)
				n.txHeaderReady(req, data)
			})
			return
		}
		n.txHeaderReady(req, nil)
	})
}

// txHeaderReady injects the header packet and, for chunked payloads,
// starts the chunk pipeline.
func (n *NIC) txHeaderReady(req *TxReq, inline []byte) {
	payloadLen := req.Len
	if inline != nil {
		payloadLen = 0
	}
	if !req.Hdr.HasPayload() {
		payloadLen = 0
	}
	m := n.Fab.NewStream(req.Hdr, n.Node, topo.NodeID(req.Hdr.DstNid), payloadLen)
	m.FwSeq = req.seq
	if inline != nil {
		m.SetInline(inline)
	}
	req.msg = m
	var hdrBuf [wire.HeaderBytes]byte
	m.Hdr.Encode(hdrBuf[:])
	req.crc = crc32.ChecksumIEEE(hdrBuf[:])
	req.crc = crc32.Update(req.crc, crc32.IEEETable, m.Inline)
	if payloadLen == 0 {
		m.SetCRC(req.crc)
		m.OnInjected = func() { n.txComplete(req) }
		n.Fab.SendHeader(m)
		return
	}
	n.Fab.SendHeader(m)
	n.txNextChunk(req, 0)
}

// txNextChunk runs the payload pipeline: reserve TX FIFO space, DMA-read
// the chunk from host memory (zero-copy: bytes are captured at read time),
// fold it into the running CRC, and inject it. When the FIFO is full the
// state machine yields, exactly as §4.3 describes.
func (n *NIC) txNextChunk(req *TxReq, off int) {
	sz := n.P.ChunkBytes
	if off+sz > req.Len {
		sz = req.Len - off
	}
	last := off+sz == req.Len
	n.Chip.TxFIFO.Take(int64(sz), func() {
		n.Chip.ReadHostStream(int64(sz), n.segsInRange(req.Buf, req.Off+off, sz), func() {
			data := make([]byte, sz)
			req.Buf.ReadAt(req.Off+off, data)
			req.crc = crc32.Update(req.crc, crc32.IEEETable, data)
			if last {
				req.msg.SetCRC(req.crc)
			}
			chunk := &fabric.Chunk{
				Msg:  req.msg,
				Off:  off,
				Data: data,
				Last: last,
			}
			chunk.OnInjected = func() {
				n.Chip.TxFIFO.Put(int64(sz))
				if last {
					n.txComplete(req)
				}
			}
			n.Fab.SendChunk(chunk)
			if !last {
				n.txNextChunk(req, off+sz)
			}
		})
	})
}

// txComplete runs when the message's final packet enters the wire: unlink
// from the TX pending list, post the transmit-complete event (unless
// go-back-n holds it for the peer's ack), and pump the next message.
func (n *NIC) txComplete(req *TxReq) {
	n.exec("tx-done", n.P.FwTxDoneCycles, func() {
		if len(n.txq) == 0 || n.txq[0] != req {
			panic("fw: tx completion out of order")
		}
		n.txq = n.txq[1:]
		n.txBusy = false
		n.Stats.MsgsTx++
		if !req.ctrl {
			if n.Policy == ExhaustGoBackN {
				n.gbnHoldCompletion(req)
			} else {
				n.finishTx(req, true)
			}
		}
		n.pumpTx()
	})
}

// finishTx frees the pending back to the host-managed pool and posts the
// TX_DONE event.
func (n *NIC) finishTx(req *TxReq, ok bool) {
	proc := n.procForPid(req.Pid)
	if req.pending != nil {
		fresh := &Pending{proc: proc, tx: true}
		proc.txFree = append(proc.txFree, fresh)
		req.pending = nil
	}
	ev := Event{Kind: EvTxDone, Tx: req, OK: ok}
	if proc.Accel {
		proc.Handle(ev)
		return
	}
	n.postEvent(proc, ev)
}

// segsInRange counts the physically contiguous segments of buf in
// [off, off+n): 1 for Catamount's contiguous memory, the page span for
// Linux. Each segment is a separate DMA transaction.
func (n *NIC) segsInRange(buf Buffer, off, nbytes int) int {
	if buf == nil || nbytes == 0 || buf.Segments() <= 1 {
		return 1
	}
	page := int(n.P.PageBytes)
	return (off+nbytes-1)/page - off/page + 1
}
