package fw

import (
	"bytes"
	"testing"

	"portals3/internal/model"
	"portals3/internal/sim"
	"portals3/internal/wire"
)

// These tests drive the go-back-n paths that only real frame loss reaches:
// the retransmission timeout (control frame lost), the sender-side timer
// recovery when the NACK itself is lost, and duplicate suppression. Loss is
// injected through the fabric's fault plane, so every run is seeded and
// replayable.

// TestFlowControlFromUnknownPeerAllocatesNoSource is the regression test
// for the handleFlowControl allocation bug: an inbound FC frame from a peer
// with no established source structure must not consume a source-pool slot
// (control traffic must never be able to cause the exhaustion it exists to
// resolve).
func TestFlowControlFromUnknownPeerAllocatesNoSource(t *testing.T) {
	p := model.Defaults()
	fp := newFwPair(t, p, 64, ExhaustGoBackN)
	// Node 0 has never exchanged data with node 1: node 1 holds no source
	// for it. A stray FC_ACK (e.g. after the receiver rebooted mid-flow)
	// must be ignored without touching the pool.
	fp.nics[0].sendControl(1, wire.TypeFcAck, 3)
	fp.nics[0].sendControl(1, wire.TypeFcNack, 1)
	fp.s.Run()
	if got := fp.nics[1].SourceCount(); got != 0 {
		t.Errorf("inbound FC frames allocated %d source structures", got)
	}
	if free := fp.nics[1].SourcesFree(); free != p.NumSources {
		t.Errorf("source pool drained to %d of %d by pure control traffic", free, p.NumSources)
	}
	// Normal traffic still flows afterwards.
	payload := bytes.Repeat([]byte{0x5a}, 4096)
	if err := fp.put(0, 1, payload, nil); err != nil {
		t.Fatal(err)
	}
	fp.s.Run()
	if h := fp.host[1]; len(h.recv) != 1 || !bytes.Equal(h.recv[0], payload) {
		t.Fatalf("put after stray control frames: received %d messages", len(fp.host[1].recv))
	}
}

// TestGbnAckLostTimeoutRetransmits: the receiver's FC_ACK is dropped, the
// sender's GbnTimeout fires and retransmits, and the receiver accepts the
// retransmission exactly once (the duplicate is re-acked and condemned).
func TestGbnAckLostTimeoutRetransmits(t *testing.T) {
	fp := newFwPair(t, model.Defaults(), 64, ExhaustGoBackN)
	plane := fp.fab.Faults()
	plane.AddRule(model.NewFault(model.FaultDrop, model.FrameFcAck, 1).WithCount(1))

	payload := make([]byte, 8192)
	for i := range payload {
		payload[i] = byte(i * 17)
	}
	if err := fp.put(0, 1, payload, nil); err != nil {
		t.Fatal(err)
	}
	fp.s.Run()

	h := fp.host[1]
	if len(h.recv) != 1 {
		t.Fatalf("delivered %d times, want exactly once", len(h.recv))
	}
	if !bytes.Equal(h.recv[0], payload) {
		t.Error("payload corrupted across the retransmission")
	}
	if fp.host[0].txDone != 1 {
		t.Errorf("sender TX_DONE count = %d", fp.host[0].txDone)
	}
	if fp.nics[0].Stats.GbnTimeouts == 0 {
		t.Error("ack loss did not fire the go-back-n timer")
	}
	if fp.nics[0].Stats.Retransmits != 1 {
		t.Errorf("Retransmits = %d, want 1", fp.nics[0].Stats.Retransmits)
	}
	if fp.nics[1].Stats.DupAcks != 1 {
		t.Errorf("DupAcks = %d: the retransmission must be re-acked as a duplicate", fp.nics[1].Stats.DupAcks)
	}
	fs := plane.Snapshot()
	if fs.DropsFcAck != 1 || fs.Open() != 0 {
		t.Errorf("ledger: %v", fs)
	}
}

// TestGbnNackLostTimerRecovers: a data frame is dropped, and the FC_NACK
// demanding its rewind is dropped too. The sender's timer alone must
// recover the flow, in order.
func TestGbnNackLostTimerRecovers(t *testing.T) {
	fp := newFwPair(t, model.Defaults(), 64, ExhaustGoBackN)
	plane := fp.fab.Faults()
	plane.AddRule(model.NewFault(model.FaultDrop, model.FrameData, 1).WithCount(1))
	plane.AddRule(model.NewFault(model.FaultDrop, model.FrameFcNack, 1).WithCount(1))

	first := bytes.Repeat([]byte{0xa1}, 2048)
	second := bytes.Repeat([]byte{0xb2}, 2048)
	if err := fp.put(0, 1, first, nil); err != nil {
		t.Fatal(err)
	}
	if err := fp.put(0, 1, second, nil); err != nil {
		t.Fatal(err)
	}
	fp.s.Run()

	h := fp.host[1]
	if len(h.recv) != 2 {
		t.Fatalf("delivered %d of 2 with data and NACK both lost", len(h.recv))
	}
	if !bytes.Equal(h.recv[0], first) || !bytes.Equal(h.recv[1], second) {
		t.Error("messages corrupted or reordered across timer recovery")
	}
	if fp.host[0].txDone != 2 {
		t.Errorf("sender TX_DONE count = %d", fp.host[0].txDone)
	}
	if fp.nics[0].Stats.GbnTimeouts == 0 {
		t.Error("lost NACK did not leave recovery to the timer")
	}
	if fp.nics[0].Stats.NacksRcvd != 0 {
		t.Errorf("NacksRcvd = %d, but the only NACK was dropped", fp.nics[0].Stats.NacksRcvd)
	}
	if fp.nics[1].Stats.NacksSent == 0 {
		t.Error("the sequence gap should have produced a NACK (even though it was then dropped)")
	}
	if fp.nics[0].Stats.Retransmits < 2 {
		t.Errorf("Retransmits = %d, want both unacked messages resent", fp.nics[0].Stats.Retransmits)
	}
	fs := plane.Snapshot()
	if fs.DropsData != 1 || fs.DropsFcNack != 1 || fs.Open() != 0 {
		t.Errorf("ledger: %v", fs)
	}
}

// TestGbnDuplicateDataCondemned: a duplicated data frame is re-acked and
// condemned without a second deposit — the receiver's payload bytes and
// completion count are those of a single delivery.
func TestGbnDuplicateDataCondemned(t *testing.T) {
	fp := newFwPair(t, model.Defaults(), 64, ExhaustGoBackN)
	plane := fp.fab.Faults()
	plane.AddRule(model.NewFault(model.FaultDup, model.FrameData, 1).WithCount(1))

	payload := make([]byte, 8192)
	for i := range payload {
		payload[i] = byte(i * 29)
	}
	if err := fp.put(0, 1, payload, nil); err != nil {
		t.Fatal(err)
	}
	fp.s.Run()

	h := fp.host[1]
	if len(h.recv) != 1 {
		t.Fatalf("duplicate deposited %d times, want exactly once", len(h.recv))
	}
	if !bytes.Equal(h.recv[0], payload) {
		t.Error("payload corrupted")
	}
	if fp.host[0].txDone != 1 {
		t.Errorf("sender TX_DONE count = %d", fp.host[0].txDone)
	}
	if fp.nics[1].Stats.DupAcks != 1 {
		t.Errorf("DupAcks = %d, want the copy re-acked", fp.nics[1].Stats.DupAcks)
	}
	fs := plane.Snapshot()
	if fs.Dups != 1 || fs.Condemned != 1 || fs.Open() != 0 {
		t.Errorf("ledger: %v", fs)
	}
}

// TestGbnDelayedMessageRecovered: a delayed message reorders across flows
// but stays in order within its flow; the ledger closes at delivery.
func TestGbnDelayedMessageRecovered(t *testing.T) {
	fp := newFwPair(t, model.Defaults(), 64, ExhaustGoBackN)
	plane := fp.fab.Faults()
	plane.AddRule(model.NewFault(model.FaultDelay, model.FrameData, 1).
		WithCount(1).WithDelay(20 * sim.Microsecond))

	payload := bytes.Repeat([]byte{0xc3}, 4096)
	if err := fp.put(0, 1, payload, nil); err != nil {
		t.Fatal(err)
	}
	fp.s.Run()
	h := fp.host[1]
	if len(h.recv) != 1 || !bytes.Equal(h.recv[0], payload) {
		t.Fatalf("delayed message: delivered %d times", len(h.recv))
	}
	fs := plane.Snapshot()
	if fs.Delays != 1 || fs.Recovered != 1 || fs.Open() != 0 {
		t.Errorf("ledger: %v", fs)
	}
}
