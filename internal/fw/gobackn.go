package fw

import (
	"portals3/internal/fabric"
	"portals3/internal/flightrec"
	"portals3/internal/topo"
	"portals3/internal/wire"
)

// This file implements the go-back-n resource exhaustion recovery protocol
// the paper describes as in-progress work: "We are currently working on a
// simple go-back-n protocol to resolve resource exhaustion gracefully"
// (§4.3). It is enabled by setting NIC.Policy to ExhaustGoBackN and is the
// subject of the A2 ablation in DESIGN.md.
//
// Protocol sketch. Every data message to a peer carries a per-flow sequence
// number (NIC-level framing, invisible to Portals). The receiver accepts
// only the next expected sequence; a successfully received message is
// acknowledged with an FC_ACK frame, and the sender holds its transmit
// pending — and its host's transmit-complete event — until that ack
// arrives, so the host buffer stays valid for retransmission. When the
// receiver must drop a message (pending pool or source pool exhausted, or
// an end-to-end CRC failure), it discards the payload and sends FC_NACK
// with the sequence to resume from; the sender re-enqueues every
// unacknowledged message from that point, in order. A timeout retransmits
// when the ack or nack itself is lost.

// gbnAssignSeq stamps an outgoing data message with the next sequence for
// its destination flow. No-op when the protocol is disabled.
func (n *NIC) gbnAssignSeq(src *source, req *TxReq) {
	if n.Policy != ExhaustGoBackN || req.ctrl {
		return
	}
	src.txSeq++
	req.seq = src.txSeq
}

// gbnAcceptRx filters an incoming data message against the flow's expected
// sequence. It reports whether processing should continue; a rejected
// message has already been NACKed/re-ACKed and condemned.
func (n *NIC) gbnAcceptRx(src *source, m *fabric.Message) bool {
	if m.FwSeq == 0 {
		// Peer runs without the protocol (mixed configuration): accept.
		return true
	}
	// A fresh source structure seeing a mid-flow sequence (rxSeq == 0,
	// FwSeq > 1) is a gap like any other: sources are never evicted, so a
	// never-established source means nothing from this peer was ever
	// accepted — and therefore never acknowledged. The sender still holds
	// every unacked message, and the rewind to 1 is always satisfiable.
	// (Adopting the peer's position instead would silently skip a dropped
	// first message.)
	expected := src.rxSeq + 1
	switch {
	case m.FwSeq == expected:
		// In sequence. The caller advances with gbnAdvance only once the
		// message has a pending — an exhausted message must remain
		// "expected" so its retransmission is accepted.
		return true
	case m.FwSeq < expected:
		// Duplicate of something already delivered: re-ack and discard so
		// the sender releases it.
		n.Stats.NacksSent++ // counted as control traffic
		n.Stats.DupAcks++
		n.sendControl(src.nid, wire.TypeFcAck, src.rxSeq)
		n.condemn(m)
		return false
	default:
		// Gap: an earlier message was dropped. Demand a rewind.
		n.Stats.NacksSent++
		n.sendControl(src.nid, wire.TypeFcNack, expected)
		n.condemn(m)
		return false
	}
}

// gbnAdvance commits an accepted message: the receive sequence advances as
// soon as resources are committed, not at completion — the next header from
// this source can arrive while this message's payload is still in flight,
// and must not read as a gap.
func (n *NIC) gbnAdvance(src *source, m *fabric.Message) {
	if n.Policy != ExhaustGoBackN || m.FwSeq == 0 {
		return
	}
	src.rxSeq = m.FwSeq
	n.Fab.FaultAccepted(m)
}

// nackAndDiscard handles exhaustion under go-back-n: drop the message's
// payload and tell the sender to resume from it.
func (n *NIC) nackAndDiscard(m *fabric.Message) {
	n.Stats.NacksSent++
	n.Stats.Discards++
	seq := m.FwSeq
	if seq == 0 {
		seq = 1
	}
	n.sendControl(topo.NodeID(m.Hdr.SrcNid), wire.TypeFcNack, seq)
	n.condemn(m)
}

// gbnDataReceived runs when a data message has been fully received (per
// source, completions are in order): acknowledge it cumulatively so the
// sender releases its copy. A CRC-failed message is acknowledged too — it
// was delivered to the host flagged NI_FAIL, the Portals semantics for a
// corrupted arrival; retransmitting it is impossible once the host has
// matched the header (the retransmission would match and deposit a second
// time). Go-back-n recovery is for pre-host drops: exhaustion and
// sequence gaps.
func (n *NIC) gbnDataReceived(p *Pending, ok bool) {
	if n.Policy != ExhaustGoBackN || p.msg.FwSeq == 0 {
		return
	}
	src := n.sources[topo.NodeID(p.Hdr.SrcNid)]
	if src == nil {
		return
	}
	n.sendControl(src.nid, wire.TypeFcAck, p.msg.FwSeq)
}

// gbnHoldCompletion parks a fully transmitted message on the flow's
// unacked list instead of completing it; the host's transmit-complete event
// waits for the peer's ack.
func (n *NIC) gbnHoldCompletion(req *TxReq) {
	src := n.sources[topo.NodeID(req.Hdr.DstNid)]
	if src == nil {
		n.finishTx(req, true)
		return
	}
	if req.seq != 0 && req.seq <= src.ackedSeq {
		// The peer's cumulative ack already covers this sequence: its ack
		// crossed our still-running chunk pipeline. Complete immediately —
		// parking it would strand it (nothing further acks an old sequence).
		n.finishTx(req, true)
		return
	}
	src.unacked = append(src.unacked, req)
	n.gbnArmTimer(src)
}

// handleFlowControl processes FC_ACK and FC_NACK frames in firmware. The
// lookup must not allocate: an ack or nack only ever follows our own
// transmission, which already established the source structure. Allocating
// here would let pure control traffic from an unknown peer drain the global
// source pool — control frames causing the very exhaustion the protocol
// exists to resolve.
func (n *NIC) handleFlowControl(m *fabric.Message) {
	if n.FR != nil {
		k := flightrec.KGbnAckRx
		if m.Hdr.Type == wire.TypeFcNack {
			k = flightrec.KGbnNackRx
		}
		n.FR.Record(k, n.S.Now(), 0, m.Hdr.Offset, 0)
	}
	src := n.sources[topo.NodeID(m.Hdr.SrcNid)]
	if src == nil {
		return // no state, nothing to release or rewind
	}
	seq := m.Hdr.Offset
	switch m.Hdr.Type {
	case wire.TypeFcAck:
		src.lastAck = n.S.Now()
		if seq > src.ackedSeq {
			src.ackedSeq = seq
		}
		kept := src.unacked[:0]
		for _, req := range src.unacked {
			if req.seq <= seq {
				n.finishTx(req, true)
			} else {
				kept = append(kept, req)
			}
		}
		src.unacked = kept
	case wire.TypeFcNack:
		n.Stats.NacksRcvd++
		src.lastAck = n.S.Now()
		var resend []*TxReq
		kept := src.unacked[:0]
		for _, req := range src.unacked {
			if req.seq >= seq {
				resend = append(resend, req)
			} else {
				kept = append(kept, req)
			}
		}
		src.unacked = kept
		n.gbnRequeue(resend)
	}
}

// gbnRequeue schedules retransmissions, preserving sequence order and the
// single-TX-FIFO serialization. Requeued messages go behind an in-flight
// transmission but ahead of everything not yet started.
func (n *NIC) gbnRequeue(resend []*TxReq) {
	if len(resend) == 0 {
		return
	}
	n.Stats.Retransmits += uint64(len(resend))
	if n.FR != nil {
		for _, req := range resend {
			n.FR.Record(flightrec.KGbnRewind, n.S.Now(), req.Span, req.seq, 0)
		}
	}
	insert := n.txqHead
	if n.txBusy {
		insert++
	}
	rest := append([]*TxReq(nil), n.txq[insert:]...)
	n.txq = append(n.txq[:insert], append(resend, rest...)...)
	n.noteTxq()
	n.pumpTx()
}

// gbnArmTimer starts (or keeps) the per-flow retransmission timer.
func (n *NIC) gbnArmTimer(src *source) {
	if src.timerArmed {
		return
	}
	src.timerArmed = true
	armedAt := n.S.Now()
	n.S.After(n.P.GbnTimeout, func() {
		src.timerArmed = false
		if len(src.unacked) == 0 {
			return
		}
		if src.lastAck > armedAt {
			// The peer spoke since we armed; give it another period.
			n.gbnArmTimer(src)
			return
		}
		n.Stats.GbnTimeouts++
		resend := append([]*TxReq(nil), src.unacked...)
		src.unacked = src.unacked[:0]
		if n.FR != nil {
			n.FR.Record(flightrec.KGbnTimeout, n.S.Now(), 0, uint32(len(resend)), 0)
		}
		n.gbnRequeue(resend)
		n.gbnArmTimer(src)
	})
}
