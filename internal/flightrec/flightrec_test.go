package flightrec

import (
	"bytes"
	"testing"

	"portals3/internal/sim"
)

func TestNilRingIsDisabled(t *testing.T) {
	var r *Ring
	if r.Enabled() {
		t.Fatal("nil ring reports enabled")
	}
	r.Record(KTxHeader, 1, 2, 3, 4) // must not panic
	if r.NewSpan() != 0 {
		t.Fatal("nil ring minted a span")
	}
	if r.Len() != 0 || r.Dropped() != 0 || r.Events() != nil {
		t.Fatal("nil ring holds events")
	}
}

func TestRingRecordAndSpans(t *testing.T) {
	rec := NewRecorder(8)
	r := rec.Ring(3)
	if s := r.NewSpan(); s != 1 {
		t.Fatalf("first span = %d, want 1", s)
	}
	if s := rec.Ring(5).NewSpan(); s != 2 {
		t.Fatalf("spans not machine-wide: second span = %d, want 2", s)
	}
	r.Record(KCmdDequeue, 10, 0, 7, 0)
	r.Record(KTxHeader, 20, 1, 1, 64)
	if r.Len() != 2 || r.Dropped() != 0 {
		t.Fatalf("Len=%d Dropped=%d, want 2, 0", r.Len(), r.Dropped())
	}
	ev := r.Events()
	if ev[0].Kind != KCmdDequeue || ev[1].Kind != KTxHeader {
		t.Fatalf("events out of order: %v", ev)
	}
	if got := []int{len(rec.Nodes()), rec.Nodes()[0], rec.Nodes()[1]}; got[0] != 2 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("Nodes() = %v", rec.Nodes())
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	rec := NewRecorder(4)
	r := rec.Ring(0)
	for i := 0; i < 10; i++ {
		r.Record(KEvPost, sim.Time(i), 0, uint32(i), 0)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
	ev := r.Events()
	for i, e := range ev {
		if want := uint32(6 + i); e.A != want {
			t.Fatalf("event %d: A = %d, want %d (oldest-first after wrap)", i, e.A, want)
		}
	}
}

func testDump() *Dump {
	return &Dump{
		Reason:  "stall: no forward progress",
		Trigger: "stall",
		At:      12345678,
		Node:    1,
		Nodes: []NodeDump{
			{
				Node: 0,
				Occ: Occupancy{
					RxPendFree: 3, RxPendTotal: 8, RxPendLow: 1,
					TxPendFree: 8, TxPendTotal: 8, TxPendLow: 5,
					SourcesFree: 60, SourcesTotal: 64, SourcesLow: 59,
					TxQueueDepth: 2, TxQueueHigh: 6,
					RxStreams: 1, RxStreamsHigh: 3,
					Unacked: 4, EvQueueDepth: 0, EvQueueHigh: 2,
					SRAMUsed: 1 << 16,
				},
				Dropped: 7,
				Events: []Event{
					{T: 100, Span: 1, A: 1, B: 64, Kind: KTxSerialize},
					{T: 200, Span: 1, A: 1, B: 64, Kind: KTxHeader},
					{T: 900, Span: 1, A: 1, B: 0, Kind: KGbnRewind},
				},
			},
			{
				Node: 1,
				Events: []Event{
					{T: 300, Span: 1, A: 1, B: 64, Kind: KRxHeader},
					{T: 400, Span: 0, A: 2, B: 0, Kind: KGbnAckTx},
					{T: 950, Span: 1, A: 1, B: 0, Kind: KRxDone},
				},
			},
		},
	}
}

func TestDumpRoundTrip(t *testing.T) {
	d := testDump()
	b := d.Bytes()
	got, err := Decode(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Reason != d.Reason || got.Trigger != d.Trigger || got.At != d.At || got.Node != d.Node {
		t.Fatalf("header mismatch: %+v vs %+v", got, d)
	}
	if len(got.Nodes) != len(d.Nodes) {
		t.Fatalf("node count %d, want %d", len(got.Nodes), len(d.Nodes))
	}
	for i := range d.Nodes {
		w, g := d.Nodes[i], got.Nodes[i]
		if g.Node != w.Node || g.Occ != w.Occ || g.Dropped != w.Dropped {
			t.Fatalf("node %d mismatch:\n got %+v\nwant %+v", i, g, w)
		}
		if len(g.Events) != len(w.Events) {
			t.Fatalf("node %d event count %d, want %d", i, len(g.Events), len(w.Events))
		}
		for j := range w.Events {
			if g.Events[j] != w.Events[j] {
				t.Fatalf("node %d event %d: %+v, want %+v", i, j, g.Events[j], w.Events[j])
			}
		}
	}
	// Re-encoding the decoded dump must be byte-identical — the determinism
	// the same-seed-rerun contract builds on.
	if !bytes.Equal(got.Bytes(), b) {
		t.Fatal("re-encoded dump differs from original bytes")
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("NOTADUMP........"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestTimelineMergesAndOrders(t *testing.T) {
	d := testDump()
	tl := d.Timeline()
	if len(tl) != 6 {
		t.Fatalf("timeline has %d events, want 6", len(tl))
	}
	for i := 1; i < len(tl); i++ {
		if tl[i].T < tl[i-1].T {
			t.Fatalf("timeline out of order at %d: %v after %v", i, tl[i].T, tl[i-1].T)
		}
	}
	// The cross-node hop chain of span 1: serialize and header on node 0,
	// rx-header on node 1, then the rewind and the delivery.
	span := d.Span(1)
	wantKinds := []Kind{KTxSerialize, KTxHeader, KRxHeader, KGbnRewind, KRxDone}
	if len(span) != len(wantKinds) {
		t.Fatalf("span 1 has %d events, want %d", len(span), len(wantKinds))
	}
	for i, e := range span {
		if e.Kind != wantKinds[i] {
			t.Fatalf("span 1 event %d = %v, want %v", i, e.Kind, wantKinds[i])
		}
	}
	if sp := d.Spans(); len(sp) != 1 || sp[0] != 1 {
		t.Fatalf("Spans() = %v, want [1]", sp)
	}
}

func TestKindNamesCoverAllKinds(t *testing.T) {
	if len(kindNames) != int(kindCount) {
		t.Fatalf("kindNames has %d entries, want %d", len(kindNames), int(kindCount))
	}
	for k := KNone; k < kindCount; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has empty name", int(k))
		}
	}
}

func TestRenderTextMentionsTrigger(t *testing.T) {
	var buf bytes.Buffer
	testDump().RenderText(&buf)
	out := buf.String()
	for _, want := range []string{"trigger stall", "node 1", "tx-serialize", "rx-done", "7 older events lost"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("RenderText output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteChromeEmitsSpans(t *testing.T) {
	var buf bytes.Buffer
	if err := testDump().WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	for _, want := range []string{`"flightrec"`, `"span 1"`, "tx-serialize"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("chrome trace missing %q:\n%s", want, buf.String())
		}
	}
}

func TestRecordIsAllocationFree(t *testing.T) {
	rec := NewRecorder(64)
	r := rec.Ring(0)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(KChunkTx, 5, 9, 4096, 512)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %v per op, want 0", allocs)
	}
	var nilRing *Ring
	allocs = testing.AllocsPerRun(1000, func() {
		nilRing.Record(KChunkTx, 5, 9, 4096, 512)
	})
	if allocs != 0 {
		t.Fatalf("nil Record allocates %v per op, want 0", allocs)
	}
}
