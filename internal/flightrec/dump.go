package flightrec

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"portals3/internal/sim"
)

// Occupancy is one node's firmware resource watermarks at snapshot time —
// the control-block numbers a RAS poll would read off the real SeaStar.
// Low-water marks start at the pool total and record the worst depletion;
// high-water marks record the deepest queue.
type Occupancy struct {
	RxPendFree    int // rx pendings free now
	RxPendTotal   int
	RxPendLow     int // fewest rx pendings ever free
	TxPendFree    int
	TxPendTotal   int
	TxPendLow     int
	SourcesFree   int
	SourcesTotal  int
	SourcesLow    int
	TxQueueDepth  int // serialized TX queue backlog now
	TxQueueHigh   int
	RxStreams     int // open receive streams now
	RxStreamsHigh int
	Unacked       int // go-back-n sends awaiting acknowledgment
	EvQueueDepth  int // driver event queue backlog now
	EvQueueHigh   int
	SRAMUsed      int64
}

// NodeDump is one node's snapshot: occupancy plus the ring contents.
type NodeDump struct {
	Node    int
	Occ     Occupancy
	Dropped uint64 // ring events lost to wrap-around before the snapshot
	Events  []Event
}

// Dump is one machine snapshot, taken on panic, ledger imbalance, stall
// detection, or explicitly at end of run. Everything in it is derived from
// virtual time and seeded state, so a same-seed rerun encodes to identical
// bytes.
type Dump struct {
	// Reason is the human-readable trigger ("panic: ...", "stall: ...").
	Reason string
	// Trigger is the machine-readable trigger class: "panic", "ledger",
	// "stall" or "snapshot".
	Trigger string
	// At is the virtual time of the snapshot.
	At sim.Time
	// Node is the triggering node, or -1 for machine-scoped triggers.
	Node  int
	Nodes []NodeDump
}

// dumpMagic leads every encoded dump.
var dumpMagic = [8]byte{'P', '3', 'D', 'U', 'M', 'P', '0', '1'}

type binWriter struct {
	w   io.Writer
	b   [8]byte
	err error
}

func (bw *binWriter) u64(v uint64) {
	if bw.err != nil {
		return
	}
	binary.LittleEndian.PutUint64(bw.b[:], v)
	_, bw.err = bw.w.Write(bw.b[:])
}

func (bw *binWriter) i64(v int64) { bw.u64(uint64(v)) }
func (bw *binWriter) str(s string) {
	bw.u64(uint64(len(s)))
	if bw.err == nil {
		_, bw.err = io.WriteString(bw.w, s)
	}
}

type binReader struct {
	r   io.Reader
	b   [8]byte
	err error
}

func (br *binReader) u64() uint64 {
	if br.err != nil {
		return 0
	}
	if _, br.err = io.ReadFull(br.r, br.b[:]); br.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(br.b[:])
}

func (br *binReader) i64() int64 { return int64(br.u64()) }

func (br *binReader) str() string {
	n := br.u64()
	if br.err != nil {
		return ""
	}
	if n > 1<<20 {
		br.err = fmt.Errorf("flightrec: implausible string length %d", n)
		return ""
	}
	buf := make([]byte, n)
	if _, br.err = io.ReadFull(br.r, buf); br.err != nil {
		return ""
	}
	return string(buf)
}

// occEncode writes an occupancy in the canonical field order; occDecode is
// its inverse, field for field.
func occEncode(bw *binWriter, o *Occupancy) {
	for _, v := range []int64{
		int64(o.RxPendFree), int64(o.RxPendTotal), int64(o.RxPendLow),
		int64(o.TxPendFree), int64(o.TxPendTotal), int64(o.TxPendLow),
		int64(o.SourcesFree), int64(o.SourcesTotal), int64(o.SourcesLow),
		int64(o.TxQueueDepth), int64(o.TxQueueHigh),
		int64(o.RxStreams), int64(o.RxStreamsHigh),
		int64(o.Unacked),
		int64(o.EvQueueDepth), int64(o.EvQueueHigh),
		o.SRAMUsed,
	} {
		bw.i64(v)
	}
}

func occDecode(br *binReader, o *Occupancy) {
	ptrs := []*int{
		&o.RxPendFree, &o.RxPendTotal, &o.RxPendLow,
		&o.TxPendFree, &o.TxPendTotal, &o.TxPendLow,
		&o.SourcesFree, &o.SourcesTotal, &o.SourcesLow,
		&o.TxQueueDepth, &o.TxQueueHigh,
		&o.RxStreams, &o.RxStreamsHigh,
		&o.Unacked,
		&o.EvQueueDepth, &o.EvQueueHigh,
	}
	for _, p := range ptrs {
		*p = int(br.i64())
	}
	o.SRAMUsed = br.i64()
}

// Encode writes the dump in the deterministic binary format: fixed-width
// little-endian fields, nodes in ascending id order (TakeDump builds them
// that way), no host-time or pointer content anywhere.
func (d *Dump) Encode(w io.Writer) error {
	bw := &binWriter{w: w}
	if _, err := w.Write(dumpMagic[:]); err != nil {
		return err
	}
	bw.str(d.Reason)
	bw.str(d.Trigger)
	bw.i64(int64(d.At))
	bw.i64(int64(d.Node))
	bw.u64(uint64(len(d.Nodes)))
	for i := range d.Nodes {
		nd := &d.Nodes[i]
		bw.i64(int64(nd.Node))
		occEncode(bw, &nd.Occ)
		bw.u64(nd.Dropped)
		bw.u64(uint64(len(nd.Events)))
		for _, e := range nd.Events {
			bw.i64(int64(e.T))
			bw.u64(e.Span)
			bw.u64(uint64(e.A)<<32 | uint64(e.B))
			bw.u64(uint64(e.Kind))
		}
	}
	return bw.err
}

// Bytes encodes the dump into memory (determinism tests compare these).
func (d *Dump) Bytes() []byte {
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		panic(err) // bytes.Buffer cannot fail
	}
	return buf.Bytes()
}

// Decode reads a dump written by Encode.
func Decode(r io.Reader) (*Dump, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, err
	}
	if magic != dumpMagic {
		return nil, fmt.Errorf("flightrec: not a p3dump file (magic %q)", magic[:])
	}
	br := &binReader{r: r}
	d := &Dump{}
	d.Reason = br.str()
	d.Trigger = br.str()
	d.At = sim.Time(br.i64())
	d.Node = int(br.i64())
	nNodes := br.u64()
	if br.err != nil {
		return nil, br.err
	}
	if nNodes > 1<<20 {
		return nil, fmt.Errorf("flightrec: implausible node count %d", nNodes)
	}
	d.Nodes = make([]NodeDump, nNodes)
	for i := range d.Nodes {
		nd := &d.Nodes[i]
		nd.Node = int(br.i64())
		occDecode(br, &nd.Occ)
		nd.Dropped = br.u64()
		nEv := br.u64()
		if br.err != nil {
			return nil, br.err
		}
		if nEv > 1<<28 {
			return nil, fmt.Errorf("flightrec: implausible event count %d", nEv)
		}
		nd.Events = make([]Event, nEv)
		for j := range nd.Events {
			e := &nd.Events[j]
			e.T = sim.Time(br.i64())
			e.Span = br.u64()
			ab := br.u64()
			e.A = uint32(ab >> 32)
			e.B = uint32(ab)
			e.Kind = Kind(br.u64())
		}
	}
	return d, br.err
}

// TimelineEvent is one dump event tagged with its node.
type TimelineEvent struct {
	Node int
	Event
}

// Timeline merges every node's events into one time-ordered sequence.
// Within a node the ring order is preserved (rings are recorded in
// non-decreasing virtual time); cross-node ties break by node id, so the
// result is deterministic.
func (d *Dump) Timeline() []TimelineEvent {
	var out []TimelineEvent
	for _, nd := range d.Nodes {
		for _, e := range nd.Events {
			out = append(out, TimelineEvent{Node: nd.Node, Event: e})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].T != out[j].T {
			return out[i].T < out[j].T
		}
		return false // stable: keep node-then-ring order for ties
	})
	return out
}

// Span extracts one causal span's hop-by-hop timeline across all nodes.
func (d *Dump) Span(span uint64) []TimelineEvent {
	var out []TimelineEvent
	for _, e := range d.Timeline() {
		if e.Span == span {
			out = append(out, e)
		}
	}
	return out
}

// Spans returns every nonzero span id present in the dump, sorted.
func (d *Dump) Spans() []uint64 {
	seen := make(map[uint64]bool)
	for _, nd := range d.Nodes {
		for _, e := range nd.Events {
			if e.Span != 0 {
				seen[e.Span] = true
			}
		}
	}
	out := make([]uint64, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
