package flightrec

import (
	"fmt"
	"io"

	"portals3/internal/sim"
	"portals3/internal/trace"
)

// RenderText writes the dump as a human-readable report: the trigger, each
// node's occupancy watermarks, and the merged cross-node event timeline.
func (d *Dump) RenderText(w io.Writer) {
	fmt.Fprintf(w, "p3dump: %s at %v (trigger %s", d.Reason, d.At, d.Trigger)
	if d.Node >= 0 {
		fmt.Fprintf(w, ", node %d", d.Node)
	}
	fmt.Fprintf(w, ")\n\n")

	fmt.Fprintf(w, "firmware occupancy (pools: free/total, lo = low-water; queues: depth, hi = high-water)\n")
	fmt.Fprintf(w, "%6s %17s %17s %15s %9s %13s %8s %9s %10s\n",
		"node", "rx-pend", "tx-pend", "sources", "txq", "rx-streams", "unacked", "evq", "sram-used")
	for i := range d.Nodes {
		nd := &d.Nodes[i]
		o := &nd.Occ
		fmt.Fprintf(w, "%6d %17s %17s %15s %9s %13s %8d %9s %10d\n",
			nd.Node,
			fmt.Sprintf("%d/%d lo %d", o.RxPendFree, o.RxPendTotal, o.RxPendLow),
			fmt.Sprintf("%d/%d lo %d", o.TxPendFree, o.TxPendTotal, o.TxPendLow),
			fmt.Sprintf("%d/%d lo %d", o.SourcesFree, o.SourcesTotal, o.SourcesLow),
			fmt.Sprintf("%d hi %d", o.TxQueueDepth, o.TxQueueHigh),
			fmt.Sprintf("%d hi %d", o.RxStreams, o.RxStreamsHigh),
			o.Unacked,
			fmt.Sprintf("%d hi %d", o.EvQueueDepth, o.EvQueueHigh),
			o.SRAMUsed)
	}

	fmt.Fprintf(w, "\ntimeline (%d events", len(d.Timeline()))
	var dropped uint64
	for i := range d.Nodes {
		dropped += d.Nodes[i].Dropped
	}
	if dropped > 0 {
		fmt.Fprintf(w, ", %d older events lost to ring wrap", dropped)
	}
	fmt.Fprintf(w, ")\n")
	d.renderEvents(w, d.Timeline())
}

// RenderSpan writes one causal span's hop-by-hop timeline.
func (d *Dump) RenderSpan(w io.Writer, span uint64) {
	tl := d.Span(span)
	fmt.Fprintf(w, "span %d (%d events)\n", span, len(tl))
	d.renderEvents(w, tl)
}

func (d *Dump) renderEvents(w io.Writer, tl []TimelineEvent) {
	fmt.Fprintf(w, "%14s %5s %6s %-13s %s\n", "time", "node", "span", "event", "args")
	for _, e := range tl {
		span := "-"
		if e.Span != 0 {
			span = fmt.Sprintf("%d", e.Span)
		}
		fmt.Fprintf(w, "%13.3fus %5d %6s %-13s %s\n",
			e.T.Micros(), e.Node, span, e.Kind.String(), e.ArgString())
	}
}

// WriteChrome converts the dump to a Chrome trace-event timeline through
// the machine's trace writer: every ring event becomes an instant on the
// flight-recorder track, and every (span, node) pair a covering span so a
// message's hop path reads as nested bars per node in Perfetto.
func (d *Dump) WriteChrome(w io.Writer) error {
	t := trace.New()
	type key struct {
		span uint64
		node int
	}
	first := make(map[key]sim.Time)
	last := make(map[key]sim.Time)
	tl := d.Timeline()
	for _, e := range tl {
		args := map[string]interface{}{"args": e.ArgString()}
		if e.Span != 0 {
			args["span"] = e.Span
			k := key{e.Span, e.Node}
			if _, ok := first[k]; !ok {
				first[k] = e.T
			}
			last[k] = e.T
		}
		t.Instant(e.Node, trace.TrackFlight, "flightrec", e.Kind.String(), e.T, args)
	}
	// Emit the covering spans in deterministic (span, node) order.
	for _, span := range d.Spans() {
		for i := range d.Nodes {
			k := key{span, d.Nodes[i].Node}
			start, ok := first[k]
			if !ok {
				continue
			}
			t.Span(k.node, trace.TrackFlight, "flightrec",
				fmt.Sprintf("span %d", span), start, last[k]-start,
				map[string]interface{}{"span": span})
		}
	}
	return t.WriteChrome(w)
}
