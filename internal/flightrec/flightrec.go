// Package flightrec is the machine's flight recorder: a per-node,
// fixed-size ring of compact binary events written at every firmware state
// transition, in the spirit of the in-NIC event capture RDMA-era stacks
// lean on for post-mortem debugging. Recording follows the telemetry
// registry's rules — the ring is preallocated, a record is a struct store
// into it, and a nil *Ring is valid and disabled (one pointer test on the
// hot path, zero allocations either way).
//
// Every event carries a causal span id. A span is minted when the host
// submits a transmit request and propagates with the request onto the
// fabric message, its payload chunks, and the receiver's pending — so the
// complete hop-by-hop path of one message (submit, serialize, header tx,
// chunk tx, chunk rx, retransmissions, delivery, event post) can be
// reconstructed across nodes from a dump, even through go-back-n rewinds:
// a retransmission reuses the original request and therefore the original
// span. Span 0 means "node-scoped, no message attached" (control frames,
// pool watermarks observed outside a message's context).
package flightrec

import (
	"fmt"
	"sort"

	"portals3/internal/sim"
)

// Kind identifies one firmware state transition.
type Kind uint8

// Event kinds. A and B are kind-specific arguments; the tables in
// kindNames/ArgString document them.
const (
	KNone        Kind = iota
	KCmdDequeue       // mailbox command popped by the firmware; A=pid
	KPendAlloc        // pending allocated; A=pool free after, B=1 tx / 0 rx
	KPendFree         // pending freed; A=pool free after, B=1 tx / 0 rx
	KSrcHit           // source hash hit; A=pool free
	KSrcAlloc         // source allocated (hash miss); A=pool free after
	KTxSerialize      // request entered the serialized TX queue; A=seq, B=len
	KTxHeader         // header packet injected; A=seq, B=payload len
	KChunkTx          // payload chunk entered the wire; A=offset, B=len
	KChunkRx          // payload chunk landed in the RX FIFO; A=offset, B=len
	KCrcFail          // end-to-end CRC-32 mismatch; A=seq
	KGbnAckTx         // FC_ACK transmitted; A=cumulative acked seq
	KGbnAckRx         // FC_ACK received; A=cumulative acked seq
	KGbnNackTx        // FC_NACK transmitted; A=seq to resume from
	KGbnNackRx        // FC_NACK received; A=seq to resume from
	KGbnRewind        // request re-queued for retransmission; A=seq
	KGbnTimeout       // retransmission timer expired; A=resend count
	KEvPost           // event-queue post; A=event kind, B=queue depth
	KIrqRaise         // host interrupt requested; A=driver event-queue depth
	KRxHeader         // data header accepted; A=seq, B=payload len
	KRxDone           // message fully received; A=1 CRC ok / 0 fail
	KExhaust          // resource exhaustion; A=exhaust code (see ExhaustName)
	KStall            // stall detector fired on this node; A=open work items
	kindCount
)

var kindNames = [...]string{
	"none", "cmd-dequeue", "pend-alloc", "pend-free", "src-hit", "src-alloc",
	"tx-serialize", "tx-header", "chunk-tx", "chunk-rx", "crc-fail",
	"gbn-ack-tx", "gbn-ack-rx", "gbn-nack-tx", "gbn-nack-rx", "gbn-rewind",
	"gbn-timeout", "ev-post", "irq-raise", "rx-header", "rx-done",
	"exhaust", "stall",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Exhaustion codes carried in A of a KExhaust event.
const (
	ExhaustSources   = 1 // global source pool empty (rx)
	ExhaustRxPending = 2 // rx pending pool empty
	ExhaustTxSource  = 3 // tx-side source pool empty (always fatal)
)

// ExhaustName decodes a KExhaust code.
func ExhaustName(code uint32) string {
	switch code {
	case ExhaustSources:
		return "source pool empty"
	case ExhaustRxPending:
		return "rx pending pool empty"
	case ExhaustTxSource:
		return "tx source pool empty"
	}
	return fmt.Sprintf("code %d", code)
}

// Event is one recorded state transition: virtual time, causal span, two
// kind-specific arguments. The struct is fixed-size and inline in the ring
// buffer; recording one is a bounds-checked store.
type Event struct {
	T    sim.Time
	Span uint64
	A, B uint32
	Kind Kind
}

// ArgString renders the kind-specific arguments for timelines.
func (e Event) ArgString() string {
	switch e.Kind {
	case KCmdDequeue:
		return fmt.Sprintf("pid=%d", e.A)
	case KPendAlloc, KPendFree:
		pool := "rx"
		if e.B == 1 {
			pool = "tx"
		}
		return fmt.Sprintf("pool=%s free=%d", pool, e.A)
	case KSrcHit, KSrcAlloc:
		return fmt.Sprintf("free=%d", e.A)
	case KTxSerialize, KTxHeader, KRxHeader:
		return fmt.Sprintf("seq=%d len=%d", e.A, e.B)
	case KChunkTx, KChunkRx:
		return fmt.Sprintf("off=%d len=%d", e.A, e.B)
	case KCrcFail, KGbnRewind:
		return fmt.Sprintf("seq=%d", e.A)
	case KGbnAckTx, KGbnAckRx:
		return fmt.Sprintf("acked=%d", e.A)
	case KGbnNackTx, KGbnNackRx:
		return fmt.Sprintf("resume=%d", e.A)
	case KGbnTimeout:
		return fmt.Sprintf("resend=%d", e.A)
	case KEvPost:
		return fmt.Sprintf("ev=%d depth=%d", e.A, e.B)
	case KIrqRaise:
		return fmt.Sprintf("evq=%d", e.A)
	case KRxDone:
		if e.A == 1 {
			return "crc=ok"
		}
		return "crc=FAIL"
	case KExhaust:
		return ExhaustName(e.A)
	case KStall:
		return fmt.Sprintf("open=%d", e.A)
	}
	return ""
}

// DefaultRingEvents is the per-node ring capacity unless configured.
const DefaultRingEvents = 4096

// Ring is one node's recorder. A nil *Ring is valid and disabled; every
// method is nil-safe, so components hold the pointer unconditionally.
type Ring struct {
	rec     *Recorder
	node    int
	buf     []Event
	head    int    // next write index
	n       uint64 // lifetime events recorded
	spanSeq uint64 // per-node span sequence (node-scoped span mode)
}

// Enabled reports whether records will be kept.
func (r *Ring) Enabled() bool { return r != nil }

// Record stores one event, overwriting the oldest when the ring is full.
func (r *Ring) Record(k Kind, t sim.Time, span uint64, a, b uint32) {
	if r == nil {
		return
	}
	r.buf[r.head] = Event{T: t, Span: span, A: a, B: b, Kind: k}
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n++
}

// NewSpan mints a fresh causal span id. In the default mode the id comes
// from the machine-wide counter; in node-scoped mode (sharded machines)
// each ring numbers its own spans, tagged with the minting node in the
// high half, so span ids never depend on how nodes interleave across
// event lanes. The nil ring returns span 0 ("untracked"), so the submit
// path needs no separate enabled test.
func (r *Ring) NewSpan() uint64 {
	if r == nil {
		return 0
	}
	if r.rec.nodeSpans {
		r.spanSeq++
		return uint64(uint32(r.node)+1)<<32 | r.spanSeq
	}
	r.rec.nextSpan++
	return r.rec.nextSpan
}

// Len reports how many events the ring currently holds.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	if r.n < uint64(len(r.buf)) {
		return int(r.n)
	}
	return len(r.buf)
}

// Dropped reports how many events were overwritten by wrap-around.
func (r *Ring) Dropped() uint64 {
	if r == nil || r.n <= uint64(len(r.buf)) {
		return 0
	}
	return r.n - uint64(len(r.buf))
}

// Events returns the ring contents oldest-first (a copy; snapshots must not
// alias the live buffer).
func (r *Ring) Events() []Event {
	if r == nil || r.n == 0 {
		return nil
	}
	if r.n <= uint64(len(r.buf)) {
		return append([]Event(nil), r.buf[:r.head]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.head:]...)
	return append(out, r.buf[:r.head]...)
}

// Recorder owns the per-node rings and the machine-wide span counter.
type Recorder struct {
	cap       int
	rings     map[int]*Ring
	nextSpan  uint64
	nodeSpans bool
}

// NewRecorder builds a recorder whose rings hold capPerNode events each
// (DefaultRingEvents when capPerNode <= 0).
func NewRecorder(capPerNode int) *Recorder {
	if capPerNode <= 0 {
		capPerNode = DefaultRingEvents
	}
	return &Recorder{cap: capPerNode, rings: make(map[int]*Ring)}
}

// UseNodeSpans switches span minting to the node-scoped scheme: span ids
// become (node+1)<<32 | per-ring sequence. Sharded machines require this —
// a machine-wide counter would order spans by lane interleaving — and
// enable it at every shard count so dumps stay comparable. Must be set
// before any span is minted.
func (rec *Recorder) UseNodeSpans() {
	if rec.nextSpan != 0 {
		panic("flightrec: UseNodeSpans after spans were minted")
	}
	rec.nodeSpans = true
}

// Ring returns (allocating on first use) the ring for one node.
func (rec *Recorder) Ring(node int) *Ring {
	if r, ok := rec.rings[node]; ok {
		return r
	}
	r := &Ring{rec: rec, node: node, buf: make([]Event, rec.cap)}
	rec.rings[node] = r
	return r
}

// Nodes returns the ids of all nodes with a ring, sorted.
func (rec *Recorder) Nodes() []int {
	out := make([]int, 0, len(rec.rings))
	for id := range rec.rings {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
