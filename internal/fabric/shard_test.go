package fabric

import (
	"testing"

	"portals3/internal/model"
	"portals3/internal/sim"
	"portals3/internal/topo"
	"portals3/internal/wire"
)

// The cross-shard pool-handoff audit (PR 1 object pools under the sharded
// kernel): a carrier allocated on lane A and consumed on lane B is freed
// into B's pool — never written back into A's freelist — and B's next
// sender reuses it. A two-node ping-pong over two lanes migrates one chunk
// and one message carrier back and forth; if the ownership rule holds, the
// whole exchange runs on exactly one of each.

// handoffEP is a receiver that consumes and recycles carriers through its
// own node's port, then answers with a message of its own.
type handoffEP struct {
	cl      *Cluster
	node    topo.NodeID
	peer    topo.NodeID
	win     *sim.Credits
	rounds  *int
	seen    map[*Chunk]bool
	seenMsg map[*Message]bool
	deliv   *int
}

func (e *handoffEP) RxWindow() *sim.Credits { return e.win }

func (e *handoffEP) HeaderArrived(m *Message) {
	e.seenMsg[m] = true
	e.win.Put(int64(wire.PacketBytes))
}

func (e *handoffEP) ChunkArrived(c *Chunk) {
	e.seen[c] = true
	e.win.Put(int64(len(c.Data)))
	m, last := c.Msg, c.Last
	pt := e.cl.Port(e.node)
	pt.RecycleChunk(c) // frees into e.node's lane — the rule under test
	if !last {
		return
	}
	pt.RecycleMsg(m)
	*e.deliv++
	if *e.rounds > 0 {
		*e.rounds--
		handoffSend(e.cl, e.node, e.peer)
	}
}

// handoffSend injects one header plus one payload chunk from src to dst,
// drawing both carriers from src's lane pool.
func handoffSend(cl *Cluster, src, dst topo.NodeID) {
	const n = 512
	pt := cl.Port(src)
	m := pt.NewStream(putHeader(uint32(src), uint32(dst), n), src, dst, n)
	pt.SendHeader(m)
	c := pt.AllocChunk(n)
	c.Msg = m
	c.Off = 0
	c.Last = true
	pt.SendChunk(c)
}

func TestClusterPoolHandoff(t *testing.T) {
	p := model.Defaults()
	tp, err := topo.New(2, 1, 1, false, false, false)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel(2, MinHandoffLatency(&p))
	cl := NewCluster(k, tp, &p, func(id topo.NodeID) int { return int(id) })

	rounds, deliv := 8, 0
	seen := map[*Chunk]bool{}
	seenMsg := map[*Message]bool{}
	for id := 0; id < 2; id++ {
		id := topo.NodeID(id)
		lane := cl.Lane(id)
		cl.Port(id).Attach(id, &handoffEP{
			cl: cl, node: id, peer: 1 - id,
			win:    sim.NewCredits(k.Lane(lane), "rxwin", 1<<20),
			rounds: &rounds, seen: seen, seenMsg: seenMsg, deliv: &deliv,
		})
	}
	k.Lane(0).At(0, func() { handoffSend(cl, 0, 1) })
	k.Run()

	if deliv != 9 { // the opening send plus eight replies
		t.Fatalf("deliveries = %d, want 9", deliv)
	}
	// Reuse across shards: every round drew its carriers from the pool the
	// previous receiver freed into, so one of each ever existed.
	if len(seen) != 1 {
		t.Errorf("distinct chunk carriers = %d, want 1 (cross-shard recycled carrier not reused)", len(seen))
	}
	if len(seenMsg) != 1 {
		t.Errorf("distinct message carriers = %d, want 1 (cross-shard recycled carrier not reused)", len(seenMsg))
	}
	// Ownership: the final delivery landed at node 1 (odd count, alternating
	// sides), so its carriers rest in lane 1's freelists and lane 0's — which
	// the final receiver must never have written — stay empty.
	l0, l1 := cl.lanes[0], cl.lanes[1]
	if len(l0.chunkFree) != 0 || len(l0.msgFree) != 0 {
		t.Errorf("lane 0 pools = %d chunks, %d msgs; want empty (carrier freed cross-lane?)",
			len(l0.chunkFree), len(l0.msgFree))
	}
	if len(l1.chunkFree) != 1 || len(l1.msgFree) != 1 {
		t.Errorf("lane 1 pools = %d chunks, %d msgs; want 1 and 1",
			len(l1.chunkFree), len(l1.msgFree))
	}
}
