// Package fabric simulates the XT3's 3D interconnect: the directed links
// between SeaStar routers, dimension-ordered fixed-path routing (in-order
// delivery), 64-byte packetization, per-link CRC-16 retries and the
// receiver-side buffering window that backpressures senders.
//
// The unit of simulated data movement is the chunk — a contiguous span of a
// message's payload (model.Params.ChunkBytes). Chunks carry real bytes.
// A message is one header packet (wire.PacketBytes, containing the encoded
// wire.Header plus up to 12 inline payload bytes) followed by its payload
// chunks, all following the same fixed path, so delivery order matches
// injection order exactly as on the real machine.
package fabric

import (
	"fmt"

	"portals3/internal/model"
	"portals3/internal/sim"
	"portals3/internal/telemetry"
	"portals3/internal/topo"
	"portals3/internal/trace"
	"portals3/internal/wire"
)

// Endpoint is a NIC attached to the fabric. The fabric calls these methods
// at delivery time, in order; the endpoint owns the receive window whose
// credits pace senders (the RX FIFO of paper §4.3).
type Endpoint interface {
	// HeaderArrived delivers the message's header packet.
	HeaderArrived(m *Message)
	// ChunkArrived delivers payload bytes [c.Off, c.Off+len(c.Data)).
	ChunkArrived(c *Chunk)
	// RxWindow returns the credit pool (in bytes) that bounds data buffered
	// at this endpoint ahead of the RX DMA engine.
	RxWindow() *sim.Credits
}

// Message is one Portals wire message in flight.
type Message struct {
	ID     uint64
	Hdr    wire.Header
	Src    topo.NodeID
	Dst    topo.NodeID
	Inline []byte // ≤ wire.InlineMax bytes riding in the header packet
	CRC    uint32 // end-to-end CRC-32 computed by the sender over header+payload

	// PayloadLen is the number of payload bytes that follow in chunks
	// (excludes inline bytes).
	PayloadLen int

	// FwSeq is the NIC-level go-back-n sequence number (firmware framing,
	// outside the Portals header; zero when the protocol is disabled).
	FwSeq uint32

	// Span is the flight-recorder causal span id, copied from the
	// originating TxReq at header injection (zero when the recorder is
	// off). Unlike Rec it is copied, not moved: a go-back-n retransmission
	// builds a fresh message from the retained request and must carry the
	// same span so the rewind reads as one causal chain.
	Span uint64

	// OnInjected, when set, is called once the header packet has been
	// granted receiver credits and enters the wire — the moment the TX
	// state machine considers the packet "sent".
	OnInjected func()

	// Rec is the message's latency-attribution record, carried from the
	// sending NIC to app delivery when telemetry is enabled; nil otherwise.
	// Ownership follows the message: whoever retires the message must
	// finish or reclaim the record.
	Rec *telemetry.MsgRec

	// inlBuf backs Inline so carrying an inline payload never allocates.
	inlBuf [wire.InlineMax]byte
}

func (m *Message) String() string {
	return fmt.Sprintf("msg#%d[%v]", m.ID, &m.Hdr)
}

// Chunk is a span of message payload traversing the network.
type Chunk struct {
	Msg  *Message
	Off  int    // offset within the message payload
	Data []byte // the bytes themselves
	Last bool   // true for the final chunk of the message

	// Corrupt marks end-to-end corruption that slipped past the link CRCs
	// (injected by tests via Fabric.CorruptNext); the receiver's CRC-32
	// check catches it.
	Corrupt bool

	// OnInjected, when set, is called once the chunk has been granted
	// receiver credits and enters the wire; the TX state machine uses it
	// to recycle transmit FIFO space.
	OnInjected func()
}

// Stats aggregates fabric-wide counters.
type Stats struct {
	Messages    uint64 // messages injected
	Chunks      uint64 // payload chunks injected
	LinkRetries uint64 // link-level CRC-16 retransmissions
	Delivered   uint64 // messages whose final byte arrived
}

type linkKey struct {
	node topo.NodeID
	dir  topo.Dir
}

// Fabric wires the endpoints together.
type Fabric struct {
	S    *sim.Sim
	Topo *topo.Topology
	P    *model.Params

	// Trace, when non-nil, records wire-level message events.
	Trace *trace.Tracer

	// Tel, when non-nil, receives wire-boundary latency stamps and reclaims
	// attribution records of messages that die before delivery.
	Tel *telemetry.Telemetry

	links  map[linkKey]*sim.Server
	eps    map[topo.NodeID]Endpoint
	routes map[[2]topo.NodeID][]topo.Dir // routing is fixed-path, so cache per pair
	nextID uint64

	// Link-contention meters (linkstats.go), live only while Tel is set.
	meters    map[linkKey]*LinkMeter
	meterList []*LinkMeter
	holByHops []*telemetry.Histogram

	// chunkFree recycles chunk carriers and their payload buffers between
	// messages. A chunk cycles sender → wire → receiver and comes back via
	// RecycleChunk once the receiver has consumed the bytes; pooling keeps
	// the per-chunk data path allocation-free. sendFree does the same for
	// the injection carriers that walk a header or chunk through credit
	// grant and traversal.
	chunkFree []*Chunk
	// msgFree recycles message carriers; see RecycleMsg for the ownership
	// rule.
	msgFree  []*Message
	sendFree []*sendOp

	// corruptNext counts messages whose payload should be corrupted
	// end-to-end (test fault injection).
	corruptNext int

	// plane, when non-nil, filters every injection through the seeded
	// fault-injection rules (see faults.go). Fault-free fabrics keep it
	// nil and pay one pointer test per injection.
	plane *FaultPlane

	Stats Stats
}

// New returns a fabric over the given topology.
func New(s *sim.Sim, t *topo.Topology, p *model.Params) *Fabric {
	f := &Fabric{
		S:      s,
		Topo:   t,
		P:      p,
		links:  make(map[linkKey]*sim.Server),
		eps:    make(map[topo.NodeID]Endpoint),
		routes: make(map[[2]topo.NodeID][]topo.Dir),
	}
	if len(p.Faults) > 0 || p.FaultSeed != 0 || len(p.Schedule) > 0 {
		f.Faults() // params-configured rules activate the plane immediately
	}
	return f
}

// Attach registers the endpoint for node. Attaching twice panics: it is a
// machine-assembly bug.
func (f *Fabric) Attach(node topo.NodeID, ep Endpoint) {
	if !f.Topo.Valid(node) {
		panic(fmt.Sprintf("fabric: attach to invalid node %d", node))
	}
	if _, dup := f.eps[node]; dup {
		panic(fmt.Sprintf("fabric: node %d attached twice", node))
	}
	f.eps[node] = ep
}

// Endpoint returns the endpoint attached to node, or nil.
func (f *Fabric) Endpoint(node topo.NodeID) Endpoint { return f.eps[node] }

// link returns (creating on first use) the serial resource for the directed
// link leaving node in direction d.
func (f *Fabric) link(node topo.NodeID, d topo.Dir) *sim.Server {
	k := linkKey{node, d}
	if sv, ok := f.links[k]; ok {
		return sv
	}
	sv := sim.NewServer(f.S, fmt.Sprintf("link[%d %v]", node, d))
	f.links[k] = sv
	return sv
}

// AllocChunk returns a chunk carrier with an n-byte data buffer, reusing a
// recycled one when available.
func (f *Fabric) AllocChunk(n int) *Chunk {
	if k := len(f.chunkFree); k > 0 {
		c := f.chunkFree[k-1]
		f.chunkFree = f.chunkFree[:k-1]
		if cap(c.Data) >= n {
			c.Data = c.Data[:n]
		} else {
			c.Data = make([]byte, n)
		}
		return c
	}
	return &Chunk{Data: make([]byte, n)}
}

// RecycleChunk returns a consumed chunk to the pool. The caller must be done
// with Data — the next sender will overwrite it.
func (f *Fabric) RecycleChunk(c *Chunk) {
	c.Msg = nil
	c.Off = 0
	c.Last = false
	c.Corrupt = false
	c.OnInjected = nil
	f.chunkFree = append(f.chunkFree, c)
}

// CorruptNext arranges for the next n injected payload-bearing messages to
// have one payload byte flipped in a way that evades the link-level CRC
// (modeling the rare multi-bit error the end-to-end CRC-32 exists to catch).
func (f *Fabric) CorruptNext(n int) { f.corruptNext += n }

// NewMessage allocates a message with a fresh ID and the end-to-end CRC
// computed over the full payload. The payload slice is only read here (for
// the CRC); the actual bytes travel in chunks read from host memory at DMA
// time by the sending NIC.
func (f *Fabric) NewMessage(hdr wire.Header, src, dst topo.NodeID, payload []byte) *Message {
	f.nextID++
	m := f.getMsg()
	m.ID = f.nextID
	m.Hdr = hdr
	m.Src = src
	m.Dst = dst
	m.CRC = wire.CRC32(&hdr, payload)
	n := len(payload)
	inline := 0
	if n <= f.P.InlineDataMax && hdr.Type != wire.TypeGet && hdr.Type != wire.TypeAck {
		inline = n
		m.Inline = m.inlBuf[:inline]
		copy(m.Inline, payload[:inline])
		m.Hdr.InlineLen = uint8(inline)
		m.CRC = wire.CRC32(&m.Hdr, payload) // InlineLen is part of the header
	}
	m.PayloadLen = n - inline
	return m
}

// NewStream allocates a message whose payload will be produced
// incrementally by a TX DMA engine: no CRC is computed here (the sender
// accumulates it while reading chunks and stores it with SetCRC before the
// final chunk is injected) and inlining is the sender's explicit decision
// via SetInline.
func (f *Fabric) NewStream(hdr wire.Header, src, dst topo.NodeID, payloadLen int) *Message {
	f.nextID++
	m := f.getMsg()
	m.ID = f.nextID
	m.Hdr = hdr
	m.Src = src
	m.Dst = dst
	m.PayloadLen = payloadLen
	return m
}

// getMsg takes a zeroed message from the free list or allocates one.
func (f *Fabric) getMsg() *Message {
	if n := len(f.msgFree); n > 0 {
		m := f.msgFree[n-1]
		f.msgFree[n-1] = nil
		f.msgFree = f.msgFree[:n-1]
		return m
	}
	return &Message{}
}

// RecycleMsg returns a message whose life is over: the receiver calls it
// once every byte is consumed and the receive state released, at which point
// the sender's transmit machinery is long done with it (a go-back-n
// retransmission always builds a fresh message). Messages that die on other
// paths (discards, dead nodes) are simply left to the garbage collector.
func (f *Fabric) RecycleMsg(m *Message) {
	if m.Rec != nil {
		// The message died (or was delivered through a path that does not
		// attribute, e.g. an accelerated receiver) with its record still
		// attached: reclaim it so the pool survives and the incomplete
		// count reflects it.
		f.Tel.DropMsgRec(m.Rec)
	}
	*m = Message{}
	f.msgFree = append(f.msgFree, m)
}

// SetInline moves the (small) payload into the header packet: "these 12
// bytes can be copied to the host along with the header" (paper §6).
// It panics beyond wire.InlineMax — callers must honor the hardware limit.
func (m *Message) SetInline(data []byte) {
	if len(data) > wire.InlineMax {
		panic("fabric: inline payload exceeds header packet space")
	}
	m.Inline = m.inlBuf[:len(data)]
	copy(m.Inline, data)
	m.Hdr.InlineLen = uint8(len(data))
	m.PayloadLen = 0
}

// SetCRC stores the sender-computed end-to-end CRC. It must be called
// before the final chunk (or, for chunkless messages, the header) is
// injected so the receiver's check reads the final value.
func (m *Message) SetCRC(crc uint32) { m.CRC = crc }

// transmissions samples how many times a packet group of nbytes must cross
// one link before the 16-bit CRC passes. With a zero bit-error rate this is
// always 1 and consumes no randomness (keeping fault-free runs identical
// regardless of RNG state).
func (f *Fabric) transmissions(nbytes int) int {
	ber := f.P.LinkBitErrorRate
	if ber <= 0 {
		return 1
	}
	packets := (nbytes + f.P.PacketBytes - 1) / f.P.PacketBytes
	pOK := 1.0
	for i := 0; i < packets; i++ {
		pOK *= 1 - ber
	}
	n := 1
	for f.S.Rand().Float64() > pOK {
		n++
		f.Stats.LinkRetries++
		if n > 64 {
			break // a link this sick would be routed around by RAS; cap it
		}
	}
	return n
}

// traverse reserves the fixed path from src to dst for nbytes and schedules
// deliver at the arrival time. Reservation happens at injection time; since
// every server is FIFO and every message between a pair takes the same
// path, per-flow ordering is exact (cross-flow interleaving is approximated
// at chunk granularity).
func (f *Fabric) traverse(src, dst topo.NodeID, nbytes int, deliver func()) {
	t := f.S.Now() + f.P.InjectLatency
	cur := src
	route := f.route(src, dst)
	for _, d := range route {
		k := f.transmissions(nbytes)
		dur := sim.BytesAt(int64(nbytes), f.P.LinkBps)
		occupancy := sim.Time(k)*dur + sim.Time(k-1)*f.P.LinkRetryDelay
		t = f.linkReserve(cur, d, t, occupancy, len(route)) + f.P.HopLatency
		next, ok := f.Topo.Neighbor(cur, d)
		if !ok {
			panic("fabric: route fell off the mesh")
		}
		cur = next
	}
	if cur != dst {
		panic("fabric: route did not reach destination")
	}
	// Loopback (src == dst) still pays injection+ejection through the NIC.
	f.S.At(t+f.P.InjectLatency, deliver)
}

// route returns (caching) the fixed dimension-ordered path src→dst.
func (f *Fabric) route(src, dst topo.NodeID) []topo.Dir {
	route, ok := f.routes[[2]topo.NodeID{src, dst}]
	if !ok {
		route = f.Topo.Route(src, dst)
		f.routes[[2]topo.NodeID{src, dst}] = route
	}
	return route
}

// sendOp walks one header packet or payload chunk through its two deferred
// steps — credit grant at the receiver window, then traversal and delivery.
// The step callbacks are bound once and the carrier recycled at delivery, so
// injection allocates nothing.
type sendOp struct {
	f       *Fabric
	ep      Endpoint
	m       *Message // header injection when c is nil
	c       *Chunk   // chunk injection otherwise
	hdrTake func()   // header credits granted: inject and traverse
	hdrArr  func()   // header packet arrived
	chTake  func()   // chunk credits granted: inject and traverse
	chArr   func()   // chunk arrived
}

func (f *Fabric) getSendOp() *sendOp {
	if k := len(f.sendFree); k > 0 {
		s := f.sendFree[k-1]
		f.sendFree = f.sendFree[:k-1]
		return s
	}
	s := &sendOp{f: f}
	s.hdrTake = s.headerTaken
	s.hdrArr = s.headerArrived
	s.chTake = s.chunkTaken
	s.chArr = s.chunkArrived
	return s
}

func (s *sendOp) headerTaken() {
	f, m := s.f, s.m
	if m.Rec != nil {
		m.Rec.Stamp(telemetry.StampWire, f.S.Now())
		m.Rec.SetHops(len(f.route(m.Src, m.Dst)))
	}
	if m.OnInjected != nil {
		m.OnInjected()
	}
	// Building the trace labels (the name strings and args maps)
	// allocates; skip it all on the tracing-off hot path.
	if f.Trace.Enabled() {
		f.Trace.Instant(int(m.Src), trace.TrackWire, "net", "tx "+m.Hdr.Type.String(), f.S.Now(),
			map[string]interface{}{"msg": m.ID, "dst": m.Dst, "len": m.PayloadLen + len(m.Inline)})
	}
	f.traverse(m.Src, m.Dst, f.P.PacketBytes, s.hdrArr)
}

func (s *sendOp) headerArrived() {
	f, ep, m := s.f, s.ep, s.m
	s.ep, s.m = nil, nil
	f.sendFree = append(f.sendFree, s)
	m.Rec.Stamp(telemetry.StampRxHdr, f.S.Now())
	if f.plane != nil {
		f.plane.noteDelivered(m)
	}
	if f.Trace.Enabled() {
		f.Trace.Instant(int(m.Dst), trace.TrackWire, "net", "rx hdr "+m.Hdr.Type.String(), f.S.Now(),
			map[string]interface{}{"msg": m.ID, "src": m.Src})
	}
	ep.HeaderArrived(m)
	if m.PayloadLen == 0 {
		f.Stats.Delivered++
	}
}

func (s *sendOp) chunkTaken() {
	f, c := s.f, s.c
	if c.OnInjected != nil {
		c.OnInjected()
	}
	f.traverse(c.Msg.Src, c.Msg.Dst, len(c.Data), s.chArr)
}

func (s *sendOp) chunkArrived() {
	f, ep, c := s.f, s.ep, s.c
	s.ep, s.c = nil, nil
	f.sendFree = append(f.sendFree, s)
	ep.ChunkArrived(c)
	if c.Last {
		f.Stats.Delivered++
		if f.Trace.Enabled() {
			m := c.Msg
			f.Trace.Instant(int(m.Dst), trace.TrackWire, "net", "rx last chunk", f.S.Now(),
				map[string]interface{}{"msg": m.ID, "src": m.Src})
		}
	}
}

// SendHeader injects the message's header packet. It consumes header-packet
// credits from the receiver window (returned by the receiving NIC once the
// header has been pushed to the host) and delivers via HeaderArrived.
func (f *Fabric) SendHeader(m *Message) {
	if f.eps[m.Dst] == nil {
		panic(fmt.Sprintf("fabric: no endpoint at node %d", m.Dst))
	}
	f.Stats.Messages++
	if f.plane != nil && f.plane.filterHeader(m) {
		return
	}
	f.sendHeaderNow(m)
}

// sendHeaderNow is the fault-free injection path; the fault plane calls it
// for duplicated, delayed and resumed headers, bypassing rule evaluation.
func (f *Fabric) sendHeaderNow(m *Message) {
	ep := f.eps[m.Dst]
	s := f.getSendOp()
	s.ep = ep
	s.m = m
	ep.RxWindow().Take(int64(f.P.PacketBytes), s.hdrTake)
}

// SendChunk injects payload bytes. The caller (the TX DMA model) must send
// chunks of a message in order, after its header. Credits for the chunk are
// taken before the wire is used — the receiver's bounded FIFO backpressures
// the sender exactly as link-level flow control does on the real machine.
func (f *Fabric) SendChunk(c *Chunk) {
	m := c.Msg
	if f.eps[m.Dst] == nil {
		panic(fmt.Sprintf("fabric: no endpoint at node %d", m.Dst))
	}
	if f.corruptNext > 0 && c.Last {
		// Flip a bit in the last chunk; recompute nothing — the end-to-end
		// CRC carried in the message no longer matches.
		f.corruptNext--
		c.Corrupt = true
		if len(c.Data) > 0 {
			c.Data[len(c.Data)/2] ^= 0x40
		}
	}
	f.Stats.Chunks++
	if f.plane != nil && f.plane.filterChunk(c) {
		return
	}
	f.sendChunkNow(c)
}

// sendChunkNow is the fault-free chunk injection path (see sendHeaderNow).
func (f *Fabric) sendChunkNow(c *Chunk) {
	ep := f.eps[c.Msg.Dst]
	s := f.getSendOp()
	s.ep = ep
	s.c = c
	ep.RxWindow().Take(int64(len(c.Data)), s.chTake)
}

// LinkUtilization reports the utilization of the directed link leaving node
// in direction d (zero if the link was never used).
func (f *Fabric) LinkUtilization(node topo.NodeID, d topo.Dir) float64 {
	if sv, ok := f.links[linkKey{node, d}]; ok {
		return sv.Utilization()
	}
	return 0
}
