// Link-contention metering: the per-link observability plane over the
// fabric's serial link servers. The paper's performance story is about
// where microseconds go; at machine scale the answer is often "queued
// behind someone else's traffic on a shared link", which the aggregate
// counters cannot show. A LinkMeter tracks, per directed link:
//
//   - head-of-line blocking time — how long each reservation waited behind
//     earlier traffic before its own occupancy began, accumulated on the
//     link and also attributed to the blocked message's hop count
//     (fabric_link_hol_wait_by_hops_ps), connecting contention to the
//     latency-under-load curves per distance;
//   - the queue-depth high-water mark — the most reservations outstanding
//     (queued or in service) behind the link at any admission;
//   - windowed utilization — the busy-time fraction per sample window,
//     generalizing the end-of-run Fabric.LinkUtilization to a time series.
//
// Meters exist only while telemetry is enabled (one pointer test per
// reservation otherwise) and live on the lane that owns the link, so the
// hot path stays single-goroutine and lock-free; the RAS sampler reads them
// at canonical barrier ticks and the per-lane series/gauges merge like
// every other telemetry artifact (each directed link is owned by exactly
// one lane).
package fabric

import (
	"portals3/internal/sim"
	"portals3/internal/telemetry"
	"portals3/internal/topo"
)

// LinkMeter is the contention state of one directed link.
type LinkMeter struct {
	Node topo.NodeID
	Dir  topo.Dir
	sv   *sim.Server

	// WaitPs accumulates head-of-line blocking: virtual time reservations
	// spent waiting behind earlier traffic before their occupancy began.
	WaitPs sim.Time
	// QueueHigh is the high-water mark of reservations outstanding (queued
	// or in service) at any admission.
	QueueHigh int

	// done is a ring of outstanding completion times; entries at or before
	// an arriving reservation's start have drained and pop off. Steady
	// state allocates nothing once the ring has grown to the link's peak
	// backlog.
	done  []sim.Time
	head  int
	count int

	// Sampler state: the busy integral at the previous sample, the
	// instruments bound on first sample, and whether Flush already closed
	// the final window (so the quiesce path is idempotent).
	lastBusy sim.Time
	lastT    sim.Time
	closed   bool
	util     *telemetry.Series
	waitG    *telemetry.Gauge
	depthG   *telemetry.Gauge
}

// note records one reservation: it arrived (was free to start) at arrive,
// found the link free at free, and will complete at done.
func (mt *LinkMeter) note(arrive, free, done sim.Time) {
	if w := free - arrive; w > 0 {
		mt.WaitPs += w
	}
	for mt.count > 0 && mt.done[mt.head] <= arrive {
		mt.head++
		if mt.head == len(mt.done) {
			mt.head = 0
		}
		mt.count--
	}
	if mt.count == len(mt.done) {
		grown := make([]sim.Time, 2*len(mt.done)+4)
		for i := 0; i < mt.count; i++ {
			grown[i] = mt.done[(mt.head+i)%len(mt.done)]
		}
		mt.done = grown
		mt.head = 0
	}
	mt.done[(mt.head+mt.count)%len(mt.done)] = done
	mt.count++
	if mt.count > mt.QueueHigh {
		mt.QueueHigh = mt.count
	}
}

// Sample appends one point to the meter's utilization series and refreshes
// its watermark gauges, binding the instruments on first use. Called by the
// machine's RAS sampler with the canonical sample time; tel is the lane's
// telemetry instance.
func (mt *LinkMeter) Sample(tel *telemetry.Telemetry, now sim.Time) {
	mt.bind(tel)
	mt.closed = false
	mt.appendWindow(now)
	mt.waitG.Set(float64(mt.WaitPs))
	mt.depthG.Set(float64(mt.QueueHigh))
}

// Flush closes the meter's final utilization window at quiescence. A plain
// Sample at quiesce time would divide the last window's busy integral by
// the whole drain — including the idle tail after the link's final
// reservation completed — so a link saturated until shortly before the end
// of the run would read near-idle. Flush instead ends the window at the
// instant the link actually went idle (Server.BusyUntil, clamped to now),
// reporting the active portion undiluted; it also binds and refreshes the
// instruments, so meters are exported even on runs that enabled telemetry
// without ever starting the sampler. Idempotent until the next Sample.
func (mt *LinkMeter) Flush(tel *telemetry.Telemetry, now sim.Time) {
	if mt.closed || now <= mt.lastT {
		return
	}
	mt.bind(tel)
	end := mt.sv.BusyUntil()
	if end <= mt.lastT || end > now {
		end = now
	}
	mt.appendWindow(end)
	mt.waitG.Set(float64(mt.WaitPs))
	mt.depthG.Set(float64(mt.QueueHigh))
	mt.closed = true
}

// bind creates the meter's instruments on first use.
func (mt *LinkMeter) bind(tel *telemetry.Telemetry) {
	if mt.util != nil {
		return
	}
	dl := telemetry.DirLabel(mt.Dir.String())
	nl := telemetry.NodeLabel(int(mt.Node))
	mt.util = tel.SeriesFor("fabric_link_utilization", dl, nl)
	mt.waitG = tel.Reg.Gauge("fabric_link_hol_wait_ps", dl, nl)
	mt.depthG = tel.Reg.Gauge("fabric_link_queue_high", dl, nl)
}

// appendWindow appends the utilization point for the window (lastT, end].
func (mt *LinkMeter) appendWindow(end sim.Time) {
	busy := mt.sv.BusyBy(end)
	var u float64
	if dt := end - mt.lastT; dt > 0 {
		u = float64(busy-mt.lastBusy) / float64(dt)
		if u < 0 {
			u = 0
		} else if u > 1 {
			u = 1
		}
	}
	mt.util.Append(end, u)
	mt.lastBusy = busy
	mt.lastT = end
}

// Utilization returns the link's lifetime busy fraction at time now.
func (mt *LinkMeter) Utilization(now sim.Time) float64 {
	if now <= 0 {
		return 0
	}
	return float64(mt.sv.BusyBy(now)) / float64(now)
}

// meter returns (creating on first use) the contention meter for the
// directed link (node, d) backed by server sv.
func (f *Fabric) meter(node topo.NodeID, d topo.Dir, sv *sim.Server) *LinkMeter {
	k := linkKey{node, d}
	if mt, ok := f.meters[k]; ok {
		return mt
	}
	if f.meters == nil {
		f.meters = make(map[linkKey]*LinkMeter)
	}
	mt := &LinkMeter{Node: node, Dir: d, sv: sv}
	f.meters[k] = mt
	f.meterList = append(f.meterList, mt)
	return mt
}

// Meters returns every live link meter in creation order — first
// reservation order on this fabric's lane, which is deterministic. Empty
// until telemetry is enabled.
func (f *Fabric) Meters() []*LinkMeter { return f.meterList }

// holHist returns (caching) the head-of-line blocking histogram for
// messages routed hops links far.
func (f *Fabric) holHist(hops int) *telemetry.Histogram {
	for hops >= len(f.holByHops) {
		f.holByHops = append(f.holByHops, nil)
	}
	if f.holByHops[hops] == nil {
		f.holByHops[hops] = f.Tel.Reg.Histogram("fabric_link_hol_wait_by_hops_ps", telemetry.HopsLabel(hops))
	}
	return f.holByHops[hops]
}

// linkReserve reserves the directed link leaving node in direction d for
// occupancy starting no earlier than t and returns the completion time.
// With telemetry enabled it also meters contention: every reservation
// observes its head-of-line wait (zero included, so counts equal
// traversals) into the hop-count histogram, accumulates it on the link,
// and updates the queue-depth watermark.
func (f *Fabric) linkReserve(node topo.NodeID, d topo.Dir, t, occupancy sim.Time, hops int) sim.Time {
	sv := f.link(node, d)
	if f.Tel == nil {
		return sv.SubmitAfter(t, occupancy, nil)
	}
	arrive := t
	if now := f.S.Now(); arrive < now {
		arrive = now
	}
	wait := sv.FreeAt() - arrive
	if wait < 0 {
		wait = 0
	}
	done := sv.SubmitAfter(t, occupancy, nil)
	f.meter(node, d, sv).note(arrive, arrive+wait, done)
	f.holHist(hops).Observe(int64(wait))
	return done
}
