package fabric

import (
	"bytes"
	"testing"

	"portals3/internal/model"
	"portals3/internal/sim"
	"portals3/internal/topo"
	"portals3/internal/wire"
)

type arrival struct {
	kind string // "hdr" or "chunk"
	off  int
	n    int
	at   sim.Time
}

// fakeEP records deliveries and reassembles payloads like a NIC would.
type fakeEP struct {
	win      *sim.Credits
	arrivals []arrival
	buf      []byte
	lastMsg  *Message
	autoFree bool // return credits immediately on delivery
}

func newFakeEP(s *sim.Sim, window int64, autoFree bool) *fakeEP {
	return &fakeEP{win: sim.NewCredits(s, "rxwin", window), autoFree: autoFree}
}

func (e *fakeEP) HeaderArrived(m *Message) {
	e.lastMsg = m
	e.arrivals = append(e.arrivals, arrival{kind: "hdr", n: wire.PacketBytes})
	if e.autoFree {
		e.win.Put(int64(wire.PacketBytes))
	}
	e.buf = append(e.buf, m.Inline...)
}

func (e *fakeEP) ChunkArrived(c *Chunk) {
	e.arrivals = append(e.arrivals, arrival{kind: "chunk", off: c.Off, n: len(c.Data)})
	e.buf = append(e.buf, c.Data...)
	if e.autoFree {
		e.win.Put(int64(len(c.Data)))
	}
}

func (e *fakeEP) RxWindow() *sim.Credits { return e.win }

// timedEP wraps fakeEP recording arrival times.
type timedEP struct {
	*fakeEP
	s     *sim.Sim
	times []sim.Time
}

func (e *timedEP) HeaderArrived(m *Message) {
	e.times = append(e.times, e.s.Now())
	e.fakeEP.HeaderArrived(m)
}

func (e *timedEP) ChunkArrived(c *Chunk) {
	e.times = append(e.times, e.s.Now())
	e.fakeEP.ChunkArrived(c)
}

func pairFabric(t *testing.T, p model.Params) (*sim.Sim, *Fabric, *timedEP, *timedEP) {
	t.Helper()
	s := sim.New()
	tp, err := topo.New(2, 1, 1, false, false, false)
	if err != nil {
		t.Fatal(err)
	}
	f := New(s, tp, &p)
	a := &timedEP{fakeEP: newFakeEP(s, 1<<20, true), s: s}
	b := &timedEP{fakeEP: newFakeEP(s, 1<<20, true), s: s}
	f.Attach(0, a)
	f.Attach(1, b)
	return s, f, a, b
}

func putHeader(src, dst uint32, n int) wire.Header {
	return wire.Header{Type: wire.TypePut, SrcNid: src, DstNid: dst, Length: uint32(n)}
}

func TestHeaderTimingSingleHop(t *testing.T) {
	p := model.Defaults()
	s, f, _, b := pairFabric(t, p)
	m := f.NewMessage(putHeader(0, 1, 0), 0, 1, nil)
	f.SendHeader(m)
	s.Run()
	// inject 60ns + 64B@2.5GB/s (25.6ns) + hop 55ns + eject 60ns = 200.6ns
	want := 2*p.InjectLatency + sim.BytesAt(64, p.LinkBps) + p.HopLatency
	if len(b.times) != 1 || b.times[0] != want {
		t.Errorf("header arrived at %v, want %v", b.times, want)
	}
	if f.Stats.Delivered != 1 {
		t.Errorf("delivered = %d", f.Stats.Delivered)
	}
}

func TestPayloadDeliveredInOrderWithRealBytes(t *testing.T) {
	p := model.Defaults()
	s, f, _, b := pairFabric(t, p)
	payload := make([]byte, 5000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	m := f.NewMessage(putHeader(0, 1, len(payload)), 0, 1, payload)
	f.SendHeader(m)
	// Inject chunks in order, as the TX DMA engine would.
	for off := 0; off < len(payload); off += p.ChunkBytes {
		end := off + p.ChunkBytes
		if end > len(payload) {
			end = len(payload)
		}
		f.SendChunk(&Chunk{Msg: m, Off: off, Data: append([]byte(nil), payload[off:end]...), Last: end == len(payload)})
	}
	s.Run()
	if !bytes.Equal(b.buf, payload) {
		t.Fatalf("payload mangled: got %d bytes, want %d", len(b.buf), len(payload))
	}
	if b.arrivals[0].kind != "hdr" {
		t.Error("header must arrive before payload")
	}
	lastOff := -1
	for _, a := range b.arrivals[1:] {
		if a.off <= lastOff {
			t.Fatalf("chunks out of order: %v", b.arrivals)
		}
		lastOff = a.off
	}
	if got := wire.CRC32(&m.Hdr, b.buf); got != m.CRC {
		t.Errorf("end-to-end CRC mismatch on clean transfer: %#x vs %#x", got, m.CRC)
	}
}

func TestInlinePayloadRidesHeaderPacket(t *testing.T) {
	p := model.Defaults()
	s, f, _, b := pairFabric(t, p)
	payload := []byte("hello twelve") // exactly 12 bytes
	m := f.NewMessage(putHeader(0, 1, len(payload)), 0, 1, payload)
	if m.PayloadLen != 0 || m.Hdr.InlineLen != 12 {
		t.Fatalf("12-byte put should be fully inline, got payloadLen=%d inline=%d", m.PayloadLen, m.Hdr.InlineLen)
	}
	f.SendHeader(m)
	s.Run()
	if !bytes.Equal(b.buf, payload) {
		t.Errorf("inline payload mangled: %q", b.buf)
	}
	if f.Stats.Chunks != 0 {
		t.Errorf("inline message used %d chunks, want 0", f.Stats.Chunks)
	}
}

func TestThirteenBytesDoesNotInline(t *testing.T) {
	p := model.Defaults()
	_, f, _, _ := pairFabric(t, p)
	m := f.NewMessage(putHeader(0, 1, 13), 0, 1, make([]byte, 13))
	if m.Hdr.InlineLen != 0 || m.PayloadLen != 13 {
		t.Errorf("13-byte put must not inline (inline=%d payload=%d)", m.Hdr.InlineLen, m.PayloadLen)
	}
}

func TestGetRequestNeverInlines(t *testing.T) {
	p := model.Defaults()
	_, f, _, _ := pairFabric(t, p)
	h := wire.Header{Type: wire.TypeGet, Length: 8}
	m := f.NewMessage(h, 0, 1, nil)
	if m.Hdr.InlineLen != 0 {
		t.Error("get requests carry no inline data")
	}
}

func TestBackpressureStallsSender(t *testing.T) {
	p := model.Defaults()
	s := sim.New()
	tp, _ := topo.New(2, 1, 1, false, false, false)
	f := New(s, tp, &p)
	a := &timedEP{fakeEP: newFakeEP(s, 1<<20, true), s: s}
	// Receiver window: room for the header plus one 100-byte chunk only.
	b := &timedEP{fakeEP: newFakeEP(s, int64(wire.PacketBytes)+100, false), s: s}
	f.Attach(0, a)
	f.Attach(1, b)

	m := f.NewMessage(putHeader(0, 1, 200), 0, 1, make([]byte, 200))
	f.SendHeader(m)
	f.SendChunk(&Chunk{Msg: m, Off: 0, Data: make([]byte, 100)})
	f.SendChunk(&Chunk{Msg: m, Off: 100, Data: make([]byte, 100), Last: true})
	// Drain nothing until 10us; the second chunk must wait for credits.
	s.After(10*sim.Microsecond, func() { b.win.Put(int64(wire.PacketBytes) + 100) })
	s.Run()
	if len(b.times) != 3 {
		t.Fatalf("got %d deliveries, want 3", len(b.times))
	}
	if b.times[1] >= 10*sim.Microsecond {
		t.Errorf("first chunk should arrive before the drain, at %v", b.times[1])
	}
	if b.times[2] < 10*sim.Microsecond {
		t.Errorf("second chunk arrived at %v despite full RX window", b.times[2])
	}
	if b.win.Waits == 0 {
		t.Error("expected a backpressure wait")
	}
}

func TestLinkRetriesSlowTransferAndCount(t *testing.T) {
	clean := model.Defaults()
	dirty := model.Defaults()
	dirty.LinkBitErrorRate = 0.02 // per 64B packet

	run := func(p model.Params) (sim.Time, uint64) {
		s, f, _, b := pairFabric(t, p)
		payload := make([]byte, 64<<10)
		m := f.NewMessage(putHeader(0, 1, len(payload)), 0, 1, payload)
		f.SendHeader(m)
		for off := 0; off < len(payload); off += p.ChunkBytes {
			end := off + p.ChunkBytes
			if end > len(payload) {
				end = len(payload)
			}
			f.SendChunk(&Chunk{Msg: m, Off: off, Data: payload[off:end], Last: end == len(payload)})
		}
		s.Run()
		return b.times[len(b.times)-1], f.Stats.LinkRetries
	}
	tClean, rClean := run(clean)
	tDirty, rDirty := run(dirty)
	if rClean != 0 {
		t.Errorf("clean link retried %d times", rClean)
	}
	if rDirty == 0 {
		t.Error("dirty link never retried")
	}
	if tDirty <= tClean {
		t.Errorf("retries should slow the transfer: %v <= %v", tDirty, tClean)
	}
}

func TestEndToEndCorruptionDetectedByCRC32(t *testing.T) {
	p := model.Defaults()
	s, f, _, b := pairFabric(t, p)
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i)
	}
	m := f.NewMessage(putHeader(0, 1, len(payload)), 0, 1, payload)
	f.CorruptNext(1)
	f.SendHeader(m)
	for off := 0; off < len(payload); off += p.ChunkBytes {
		end := off + p.ChunkBytes
		if end > len(payload) {
			end = len(payload)
		}
		f.SendChunk(&Chunk{Msg: m, Off: off, Data: append([]byte(nil), payload[off:end]...), Last: end == len(payload)})
	}
	s.Run()
	if got := wire.CRC32(&m.Hdr, b.buf); got == m.CRC {
		t.Error("corruption was injected but CRC-32 still matches")
	}
}

func TestMultiHopTiming(t *testing.T) {
	p := model.Defaults()
	s := sim.New()
	tp, _ := topo.New(4, 1, 1, false, false, false)
	f := New(s, tp, &p)
	var eps []*timedEP
	for n := topo.NodeID(0); n < 4; n++ {
		ep := &timedEP{fakeEP: newFakeEP(s, 1<<20, true), s: s}
		eps = append(eps, ep)
		f.Attach(n, ep)
	}
	m := f.NewMessage(putHeader(0, 3, 0), 0, 3, nil)
	f.SendHeader(m)
	s.Run()
	hops := sim.Time(3)
	want := 2*p.InjectLatency + hops*(sim.BytesAt(64, p.LinkBps)+p.HopLatency)
	if eps[3].times[0] != want {
		t.Errorf("3-hop header arrived at %v, want %v", eps[3].times[0], want)
	}
}

func TestAttachTwicePanics(t *testing.T) {
	p := model.Defaults()
	s := sim.New()
	tp, _ := topo.New(2, 1, 1, false, false, false)
	f := New(s, tp, &p)
	f.Attach(0, newFakeEP(s, 1, true))
	defer func() {
		if recover() == nil {
			t.Error("expected panic on double attach")
		}
	}()
	f.Attach(0, newFakeEP(s, 1, true))
}

func TestLinkUtilizationReported(t *testing.T) {
	p := model.Defaults()
	s, f, _, _ := pairFabric(t, p)
	m := f.NewMessage(putHeader(0, 1, 0), 0, 1, nil)
	f.SendHeader(m)
	s.Run()
	if u := f.LinkUtilization(0, topo.Dir{Axis: topo.X, Sign: 1}); u <= 0 {
		t.Errorf("used link reports zero utilization")
	}
	if u := f.LinkUtilization(1, topo.Dir{Axis: topo.X, Sign: 1}); u != 0 {
		t.Errorf("unused link reports nonzero utilization %v", u)
	}
}

func TestRetryRateTracksBitErrorRate(t *testing.T) {
	// The per-packet retry probability should produce retries in rough
	// proportion to packets × BER over a large transfer.
	p := model.Defaults()
	p.LinkBitErrorRate = 0.01
	s, f, _, _ := pairFabric(t, p)
	payload := make([]byte, 1<<20)
	m := f.NewMessage(putHeader(0, 1, len(payload)), 0, 1, payload)
	f.SendHeader(m)
	for off := 0; off < len(payload); off += p.ChunkBytes {
		end := off + p.ChunkBytes
		if end > len(payload) {
			end = len(payload)
		}
		f.SendChunk(&Chunk{Msg: m, Off: off, Data: payload[off:end], Last: end == len(payload)})
	}
	s.Run()
	packets := float64(len(payload)) / 64
	expect := packets * p.LinkBitErrorRate
	got := float64(f.Stats.LinkRetries)
	if got < expect/2 || got > expect*2 {
		t.Errorf("retries = %.0f, expected around %.0f for %0.f packets at BER %v",
			got, expect, packets, p.LinkBitErrorRate)
	}
}
