// The fault-injection plane: a deterministic, seeded layer between message
// injection (SendHeader/SendChunk) and the fabric's normal credit-and-
// traverse path. It implements the loss, duplication, delay/reorder,
// link-down and node-stall scenarios that make the go-back-n recovery
// protocol's timeout and duplicate paths reachable in tests (paper §4.3
// describes the protocol; APEnet+ and MVAPICH validate equivalent NIC-level
// retransmission logic exactly this way).
//
// Determinism contract. The plane owns a private PRNG seeded from
// Params.FaultSeed and consumes randomness only when a rule's probability
// is evaluated, in injection order — which the simulator already makes
// deterministic. It never draws from the simulator's RNG, so enabling
// faults cannot perturb the base timing model, and a given
// (topology, workload, Faults, FaultSeed) tuple replays bit-identically.
//
// Fault granularity is the message: a fate decided at header injection
// (drop, duplicate, delay) applies to the header and every payload chunk,
// preserving the fabric's header-before-chunks invariant that receivers
// rely on to demultiplex streams. Faults apply only at first injection —
// a duplicated copy or a delayed reinjection is never re-evaluated.
//
// Accounting. Every injected fault opens a ledger entry that must close as
// either recovered (the protocol delivered the data anyway) or condemned
// (a redundant or unrecoverable copy was discarded). Stats.Open() is the
// balance; a healthy go-back-n run drives it to zero, while the panic
// policy leaves its losses open — which is precisely the A6 ablation's
// check that injected == recovered + condemned.
package fabric

import (
	"fmt"
	"math/rand"

	"portals3/internal/model"
	"portals3/internal/sim"
	"portals3/internal/telemetry"
	"portals3/internal/topo"
	"portals3/internal/wire"
)

// defaultFaultSeed seeds the plane when Params.FaultSeed is zero.
const defaultFaultSeed = 0xfa017

// FaultStats counts the plane's activity. Injected() and Open() derive the
// ledger totals.
type FaultStats struct {
	DropsData   uint64 // data frames dropped by rule
	DropsFcAck  uint64 // FC_ACK frames dropped by rule
	DropsFcNack uint64 // FC_NACK frames dropped by rule
	DropsLink   uint64 // frames dropped because a link on their path was down
	Dups        uint64 // frames delivered twice
	Delays      uint64 // frames delivered late (delay and reorder rules)
	Stalls      uint64 // frames held at a stalled destination node

	Recovered uint64 // ledger entries closed by delivery or accepted retransmission
	Condemned uint64 // ledger entries closed by discarding a redundant/unrecoverable copy
}

// Injected totals every fault the plane applied.
func (s FaultStats) Injected() uint64 {
	return s.DropsData + s.DropsFcAck + s.DropsFcNack + s.DropsLink +
		s.Dups + s.Delays + s.Stalls
}

// Open is the ledger balance: faults whose outcome is still unresolved. A
// converged go-back-n run reports zero; a panicked node leaves its losses
// open.
func (s FaultStats) Open() uint64 { return s.Injected() - s.Recovered - s.Condemned }

func (s FaultStats) String() string {
	return fmt.Sprintf("injected=%d (drops data=%d fcack=%d fcnack=%d link=%d, dups=%d, delays=%d, stalls=%d) recovered=%d condemned=%d open=%d",
		s.Injected(), s.DropsData, s.DropsFcAck, s.DropsFcNack, s.DropsLink,
		s.Dups, s.Delays, s.Stalls, s.Recovered, s.Condemned, s.Open())
}

// msgFate records the fault a chunked message's header drew, so its payload
// chunks share it. Keyed by message ID; removed at the last chunk.
type msgFate struct {
	doomed bool     // drop: swallow every chunk
	dup    *Message // duplicate: clone every chunk for this copy
	delay  sim.Time // delay/reorder: reinject every chunk this much late
}

// dropKey identifies a dropped go-back-n data frame: the ledger entry
// closes when any copy of that flow sequence reaches the receiver.
type dropKey struct {
	src, dst topo.NodeID
	seq      uint32
}

// FaultPlane applies fault rules to a fabric's injections. Obtain one with
// Fabric.Faults(); all methods must run at simulation time (single
// goroutine), like the rest of the fabric.
type FaultPlane struct {
	f   *Fabric
	rng *rand.Rand

	rules []model.FaultRule
	fired []int // per-rule application count, enforcing FaultRule.Count

	// fates carries a chunked message's header fate to its chunks.
	fates map[uint64]*msgFate

	// stalled queues injections destined to a stalled node, in order;
	// ResumeNode flushes. Presence in the map is the stalled condition.
	stalled map[topo.NodeID][]func()

	// down marks directed links taken down by LinkDown; a message whose
	// fixed path crosses one is dropped at injection.
	down map[linkKey]bool

	// The ledger. dropOpen counts dropped copies per flow sequence (closed
	// by acceptance or a condemned duplicate of that sequence); dupOpen
	// tracks duplicate copies by message ID (closed by acceptance or
	// condemnation); msgOpen counts delay/stall holds by message ID
	// (closed at header delivery).
	dropOpen map[dropKey]int
	dupOpen  map[uint64]bool
	msgOpen  map[uint64]int

	// accepted records each flow's committed go-back-n high-water mark. A
	// dropped data frame at or below it is a redundant retransmission — the
	// receiver already holds the data, and no further copy of that sequence
	// need ever arrive — so its ledger entry closes (condemned) at the drop
	// instead of waiting forever.
	accepted map[flowPair]uint32

	// Injection indirection: where a surviving (or cloned, delayed,
	// resumed) frame re-enters the fabric, and where clone IDs come from.
	// The classic whole-fabric plane binds these to sendHeaderNow/
	// sendChunkNow and the fabric ID counter; the sharded per-source-node
	// planes bind them to the hopwise path and the node's ID space.
	sendHeader func(*Message)
	sendChunk  func(*Chunk)
	newID      func() uint64

	Stats FaultStats
}

// flowPair keys per-flow state (a dropKey without the sequence).
type flowPair struct{ src, dst topo.NodeID }

func newFaultPlane(f *Fabric) *FaultPlane {
	seed := f.P.FaultSeed
	if seed == 0 {
		seed = defaultFaultSeed
	}
	p := newFaultPlaneSeeded(f, seed)
	p.sendHeader = f.sendHeaderNow
	p.sendChunk = f.sendChunkNow
	p.newID = func() uint64 { f.nextID++; return f.nextID }
	for _, r := range f.P.Faults {
		p.AddRule(r)
	}
	for _, r := range f.P.Schedule.Rules() {
		p.AddRule(r)
	}
	return p
}

// newFaultPlaneSeeded builds an empty plane with its own PRNG; the caller
// wires the injection indirection and rules.
func newFaultPlaneSeeded(f *Fabric, seed int64) *FaultPlane {
	return &FaultPlane{
		f:        f,
		rng:      rand.New(rand.NewSource(seed)),
		fates:    make(map[uint64]*msgFate),
		stalled:  make(map[topo.NodeID][]func()),
		down:     make(map[linkKey]bool),
		dropOpen: make(map[dropKey]int),
		dupOpen:  make(map[uint64]bool),
		msgOpen:  make(map[uint64]int),
		accepted: make(map[flowPair]uint32),
	}
}

// Faults returns the fabric's fault plane, creating it on first use.
// Fault-free fabrics never create one and pay only a nil test per
// injection.
func (f *Fabric) Faults() *FaultPlane {
	if f.plane == nil {
		f.plane = newFaultPlane(f)
	}
	return f.plane
}

// FaultSnapshot returns the plane's counters without activating a plane;
// ok is false when no fault was ever configured (the counters are zero).
func (f *Fabric) FaultSnapshot() (FaultStats, bool) {
	if f.plane == nil {
		return FaultStats{}, false
	}
	return f.plane.Stats, true
}

// FaultAccepted tells the plane the receiving firmware accepted a data
// message (its go-back-n sequence committed). No-op without a plane.
func (f *Fabric) FaultAccepted(m *Message) {
	if f.plane != nil {
		f.plane.noteAccepted(m)
	}
}

// FaultCondemned tells the plane the receiving firmware condemned a
// message (duplicate, gap, exhaustion or dead-pid discard). No-op without
// a plane.
func (f *Fabric) FaultCondemned(m *Message) {
	if f.plane != nil {
		f.plane.noteCondemned(m)
	}
}

// AddRule appends one rule at runtime. Rules are evaluated in insertion
// order; the first match wins.
func (p *FaultPlane) AddRule(r model.FaultRule) {
	if (r.Kind == model.FaultDelay || r.Kind == model.FaultReorder) && r.Delay <= 0 {
		panic("fabric: delay/reorder fault rule needs a positive Delay")
	}
	p.rules = append(p.rules, r)
	p.fired = append(p.fired, 0)
}

// Snapshot returns the plane's counters by value.
func (p *FaultPlane) Snapshot() FaultStats { return p.Stats }

// ---- Runtime scenario hooks ----

// LinkDown takes the directed link leaving node in direction d out of
// service: messages whose fixed path crosses it are dropped at injection.
// Messages already launched keep streaming (the wire abstraction commits a
// message at header injection).
func (p *FaultPlane) LinkDown(node topo.NodeID, d topo.Dir) { p.down[linkKey{node, d}] = true }

// LinkUp restores a downed link.
func (p *FaultPlane) LinkUp(node topo.NodeID, d topo.Dir) { delete(p.down, linkKey{node, d}) }

// LinkDownFor takes a link down now and schedules its restoration.
func (p *FaultPlane) LinkDownFor(node topo.NodeID, d topo.Dir, dur sim.Time) {
	p.LinkDown(node, d)
	p.f.S.After(dur, func() { p.LinkUp(node, d) })
}

// StallNode holds every injection destined to node, in order, until
// ResumeNode — a hung NIC whose wire-side buffering absorbs traffic.
func (p *FaultPlane) StallNode(node topo.NodeID) {
	if _, ok := p.stalled[node]; !ok {
		p.stalled[node] = []func(){}
	}
}

// ResumeNode releases a stalled node's held injections in arrival order.
func (p *FaultPlane) ResumeNode(node topo.NodeID) {
	q, ok := p.stalled[node]
	if !ok {
		return
	}
	delete(p.stalled, node)
	for _, inject := range q {
		inject()
	}
}

// StallNodeFor stalls a node now and schedules its resume.
func (p *FaultPlane) StallNodeFor(node topo.NodeID, dur sim.Time) {
	p.StallNode(node)
	p.f.S.After(dur, func() { p.ResumeNode(node) })
}

// CorruptLedger opens one ledger entry that nothing will ever close —
// planted silent data loss. The quiescence audit (injected == recovered +
// condemned) must trip on it; the soak harness plants corrupt entries to
// prove its failure detection and bisection actually fire.
func (p *FaultPlane) CorruptLedger() { p.Stats.DropsData++ }

// ---- Rule evaluation ----

func frameClassOf(m *Message) model.FrameClass {
	switch m.Hdr.Type {
	case wire.TypeFcAck:
		return model.FrameFcAck
	case wire.TypeFcNack:
		return model.FrameFcNack
	default:
		return model.FrameData
	}
}

// decide returns the first rule that matches and fires for this frame, or
// nil. Randomness is consumed only for probability checks of rules whose
// static scope matched, in rule order — part of the determinism contract.
func (p *FaultPlane) decide(class model.FrameClass, src, dst topo.NodeID) *model.FaultRule {
	now := p.f.S.Now()
	for i := range p.rules {
		r := &p.rules[i]
		if r.Count > 0 && p.fired[i] >= r.Count {
			continue
		}
		if now < r.After || (r.Until > 0 && now >= r.Until) {
			continue
		}
		if r.Frame != model.FrameAny && r.Frame != class {
			continue
		}
		if r.Src != model.AnyNode && topo.NodeID(r.Src) != src {
			continue
		}
		if r.Dst != model.AnyNode && topo.NodeID(r.Dst) != dst {
			continue
		}
		if r.Prob < 1 && p.rng.Float64() >= r.Prob {
			continue
		}
		p.fired[i]++
		return r
	}
	return nil
}

// pathDown reports whether the fixed route src→dst crosses a downed link.
func (p *FaultPlane) pathDown(src, dst topo.NodeID) bool {
	if len(p.down) == 0 {
		return false
	}
	cur := src
	for _, d := range p.f.route(src, dst) {
		if p.down[linkKey{cur, d}] {
			return true
		}
		next, ok := p.f.Topo.Neighbor(cur, d)
		if !ok {
			return false
		}
		cur = next
	}
	return false
}

// ---- Injection filters (called from SendHeader/SendChunk) ----

// filterHeader applies the plane to one header injection, reporting true
// when the plane consumed it (the normal path must not run).
func (p *FaultPlane) filterHeader(m *Message) bool {
	class := frameClassOf(m)
	if p.pathDown(m.Src, m.Dst) {
		p.dropMsg(m, class, true)
		return true
	}
	r := p.decide(class, m.Src, m.Dst)
	if r == nil {
		if _, ok := p.stalled[m.Dst]; ok {
			p.injectHeader(m)
			return true
		}
		return false
	}
	switch r.Kind {
	case model.FaultDrop:
		p.dropMsg(m, class, false)
	case model.FaultDup:
		p.Stats.Dups++
		p.count("dup", class)
		m2 := p.cloneMsg(m)
		p.dupOpen[m2.ID] = true
		if m.PayloadLen > 0 {
			p.fates[m.ID] = &msgFate{dup: m2}
		}
		p.injectHeader(m)
		p.injectHeader(m2)
	case model.FaultDelay, model.FaultReorder:
		d := r.Delay
		if r.Kind == model.FaultReorder {
			d = sim.Time(1 + p.rng.Int63n(int64(r.Delay)))
		}
		p.Stats.Delays++
		p.count("delay", class)
		p.msgOpen[m.ID]++
		if m.PayloadLen > 0 {
			p.fates[m.ID] = &msgFate{delay: d}
		}
		p.f.S.After(d, func() { p.injectHeader(m) })
	}
	return true
}

// filterChunk gives a payload chunk its message's fate, reporting true when
// the plane consumed the injection.
func (p *FaultPlane) filterChunk(c *Chunk) bool {
	fate, ok := p.fates[c.Msg.ID]
	if ok {
		if c.Last {
			delete(p.fates, c.Msg.ID)
		}
		switch {
		case fate.doomed:
			p.swallowChunk(c)
		case fate.dup != nil:
			c2 := p.cloneChunk(c, fate.dup)
			p.injectChunk(c)
			p.injectChunk(c2)
		default:
			d := fate.delay
			p.f.S.After(d, func() { p.injectChunk(c) })
		}
		return true
	}
	if _, stalled := p.stalled[c.Msg.Dst]; stalled {
		p.injectChunk(c)
		return true
	}
	return false
}

// injectHeader hands a header to the fabric, holding it if the destination
// is stalled. Delayed and duplicated frames route through here too, so a
// stall window also captures them — in order.
func (p *FaultPlane) injectHeader(m *Message) {
	if q, ok := p.stalled[m.Dst]; ok {
		p.Stats.Stalls++
		p.count("stall", frameClassOf(m))
		p.msgOpen[m.ID]++
		p.stalled[m.Dst] = append(q, func() { p.sendHeader(m) })
		return
	}
	p.sendHeader(m)
}

func (p *FaultPlane) injectChunk(c *Chunk) {
	if q, ok := p.stalled[c.Msg.Dst]; ok {
		p.stalled[c.Msg.Dst] = append(q, func() { p.sendChunk(c) })
		return
	}
	p.sendChunk(c)
}

// dropMsg discards a message at injection. The sender's TX state machine
// still sees it enter the wire (OnInjected fires, so the transmit pipeline
// never wedges); the receiver simply never hears of it. Payload chunks are
// swallowed as the sender streams them.
func (p *FaultPlane) dropMsg(m *Message, class model.FrameClass, viaLink bool) {
	kind := "drop"
	switch {
	case viaLink:
		p.Stats.DropsLink++
		kind = "linkdown"
	case class == model.FrameFcAck:
		p.Stats.DropsFcAck++
	case class == model.FrameFcNack:
		p.Stats.DropsFcNack++
	default:
		p.Stats.DropsData++
	}
	p.count(kind, class)
	switch class {
	case model.FrameFcAck, model.FrameFcNack:
		// Control frames are never retransmitted; the sender's go-back-n
		// timer absorbs the loss. The entry closes as condemned now.
		p.closeCondemned(1)
	default:
		switch {
		case m.FwSeq == 0:
			// No recovery protocol covers this frame. The entry stays open —
			// the ledger honestly reports unrecovered loss for panic-policy
			// machines.
		case m.FwSeq <= p.accepted[flowPair{m.Src, m.Dst}]:
			// A redundant retransmission of a sequence the receiver already
			// committed; no future copy will arrive to close the entry.
			p.closeCondemned(1)
		default:
			p.dropOpen[dropKey{m.Src, m.Dst, m.FwSeq}]++
		}
	}
	if m.OnInjected != nil {
		m.OnInjected()
	}
	if m.Rec != nil {
		p.f.Tel.DropMsgRec(m.Rec)
		m.Rec = nil
	}
	if m.PayloadLen > 0 {
		p.fates[m.ID] = &msgFate{doomed: true}
	}
	// The message carrier itself is left to the GC, like other messages
	// that die before delivery; the sender may still hold a reference.
}

func (p *FaultPlane) swallowChunk(c *Chunk) {
	if c.OnInjected != nil {
		c.OnInjected()
	}
	p.f.RecycleChunk(c)
}

// cloneMsg builds the duplicate copy of a message: a fresh ID (receivers
// demultiplex streams by ID), same wire contents and go-back-n sequence.
func (p *FaultPlane) cloneMsg(m *Message) *Message {
	f := p.f
	m2 := f.getMsg()
	m2.ID = p.newID()
	m2.Hdr = m.Hdr
	m2.Src = m.Src
	m2.Dst = m.Dst
	m2.CRC = m.CRC
	m2.PayloadLen = m.PayloadLen
	m2.FwSeq = m.FwSeq
	m2.Span = m.Span
	if len(m.Inline) > 0 {
		m2.Inline = m2.inlBuf[:len(m.Inline)]
		copy(m2.Inline, m.Inline)
	}
	f.Stats.Messages++
	return m2
}

func (p *FaultPlane) cloneChunk(c *Chunk, m2 *Message) *Chunk {
	c2 := p.f.AllocChunk(len(c.Data))
	copy(c2.Data, c.Data)
	c2.Msg = m2
	c2.Off = c.Off
	c2.Last = c.Last
	c2.Corrupt = c.Corrupt
	if c.Last {
		// Streamed senders finalize the end-to-end CRC just before the last
		// chunk; the copy must carry the final value too.
		m2.CRC = c.Msg.CRC
	}
	p.f.Stats.Chunks++
	return c2
}

// ---- Ledger closing ----

// noteAccepted closes entries when the receiving firmware commits a data
// message: any dropped copies of its flow sequence were recovered by the
// retransmission now accepted, and a duplicate copy that won the race was
// recovered rather than condemned.
func (p *FaultPlane) noteAccepted(m *Message) {
	if m.FwSeq != 0 {
		if fk := (flowPair{m.Src, m.Dst}); m.FwSeq > p.accepted[fk] {
			p.accepted[fk] = m.FwSeq
		}
		k := dropKey{m.Src, m.Dst, m.FwSeq}
		if n := p.dropOpen[k]; n > 0 {
			delete(p.dropOpen, k)
			p.closeRecovered(uint64(n))
		}
	}
	if p.dupOpen[m.ID] {
		delete(p.dupOpen, m.ID)
		p.closeRecovered(1)
	}
}

// noteCondemned closes entries when the receiving firmware discards a
// message copy: a duplicate's entry closes, and open drop entries for the
// same flow sequence close too (a condemned copy of sequence s proves the
// drop hit a redundant transmission — no data was lost).
func (p *FaultPlane) noteCondemned(m *Message) {
	if p.dupOpen[m.ID] {
		delete(p.dupOpen, m.ID)
		p.closeCondemned(1)
	}
	if m.FwSeq != 0 {
		k := dropKey{m.Src, m.Dst, m.FwSeq}
		if n := p.dropOpen[k]; n > 0 {
			delete(p.dropOpen, k)
			p.closeCondemned(uint64(n))
		}
	}
}

// noteDelivered closes delay/stall entries when a header finally arrives.
func (p *FaultPlane) noteDelivered(m *Message) {
	if n := p.msgOpen[m.ID]; n > 0 {
		delete(p.msgOpen, m.ID)
		p.closeRecovered(uint64(n))
	}
}

func (p *FaultPlane) closeRecovered(n uint64) {
	p.Stats.Recovered += n
	if tel := p.f.Tel; tel != nil {
		tel.Reg.Counter("fault_recovered_total").Add(n)
	}
}

func (p *FaultPlane) closeCondemned(n uint64) {
	p.Stats.Condemned += n
	if tel := p.f.Tel; tel != nil {
		tel.Reg.Counter("fault_condemned_total").Add(n)
	}
}

// count mirrors one injected fault into the telemetry registry (fault
// paths are cold; the per-event lookup is acceptable there).
func (p *FaultPlane) count(kind string, class model.FrameClass) {
	if tel := p.f.Tel; tel != nil {
		tel.Reg.Counter("fault_injected_total",
			telemetry.L("kind", kind), telemetry.L("frame", class.String())).Inc()
	}
}
