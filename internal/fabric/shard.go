// Sharded fabric: the hopwise store-and-forward transport that lets one
// simulated machine run across the parallel kernel's event lanes.
//
// The classic Fabric reserves a message's whole fixed path at injection
// time — an optimization that is exact on a single event lane but couples
// every node's state at zero latency. Here each hop is its own event,
// executed on the lane that owns the current router, and every inter-node
// handoff travels through the kernel's cross-shard mailboxes. The minimum
// handoff distance — one link occupancy plus the per-hop wire latency —
// is the conservative lookahead bound the kernel synchronizes on
// (MinHandoffLatency).
//
// Node state is partitioned by lane: each lane owns a Fabric instance
// (object pools, link servers, counters, telemetry handle) and each node a
// NodePort, the per-node injection interface the firmware holds. A NodePort
// recycles carriers into the pools of the lane that frees them, so a chunk
// allocated on shard A and released on shard B simply migrates pools — the
// freelists never see cross-shard writes (see the pool-handoff test).
package fabric

import (
	"fmt"

	"portals3/internal/model"
	"portals3/internal/sim"
	"portals3/internal/telemetry"
	"portals3/internal/topo"
	"portals3/internal/trace"
	"portals3/internal/wire"
)

// Port is the fabric surface a NIC holds: injection, carrier pooling and
// fault-ledger notification. The classic *Fabric implements it directly;
// sharded machines hand each NIC its node's *NodePort.
type Port interface {
	Attach(node topo.NodeID, ep Endpoint)
	NewStream(hdr wire.Header, src, dst topo.NodeID, payloadLen int) *Message
	SendHeader(m *Message)
	SendChunk(c *Chunk)
	AllocChunk(n int) *Chunk
	RecycleChunk(c *Chunk)
	RecycleMsg(m *Message)
	FaultAccepted(m *Message)
	FaultCondemned(m *Message)
}

var (
	_ Port = (*Fabric)(nil)
	_ Port = (*NodePort)(nil)
)

// MinHandoffLatency is the smallest virtual-time distance of any
// inter-node handoff in the hopwise transport: every hop pays at least one
// link occupancy (> 0) plus HopLatency before the next node is touched, so
// HopLatency is a safe conservative lookahead for the sharded kernel.
func MinHandoffLatency(p *model.Params) sim.Time { return p.HopLatency }

// Cluster is the sharded fabric: one Fabric per lane, one NodePort per
// node, and the endpoint directory shared by all lanes (written only
// during machine assembly, read-only while the kernel runs).
type Cluster struct {
	Kern *sim.Kernel
	Topo *topo.Topology
	P    *model.Params

	laneOf []int
	lanes  []*Fabric
	ports  []*NodePort
	eps    []Endpoint
	faulty bool
}

// NewCluster partitions the topology's nodes over the kernel's lanes.
// laneOf must be a pure function mapping every node to a lane in range.
func NewCluster(kern *sim.Kernel, t *topo.Topology, p *model.Params, laneOf func(topo.NodeID) int) *Cluster {
	if p.LinkBitErrorRate > 0 {
		panic("fabric: sharded cluster requires LinkBitErrorRate=0 (link-retry sampling draws lane-local randomness)")
	}
	n := t.Nodes()
	cl := &Cluster{
		Kern:   kern,
		Topo:   t,
		P:      p,
		laneOf: make([]int, n),
		lanes:  make([]*Fabric, kern.Shards()),
		ports:  make([]*NodePort, n),
		eps:    make([]Endpoint, n),
		faulty: len(p.Faults) > 0 || p.FaultSeed != 0 || len(p.Schedule) > 0,
	}
	for i := range cl.lanes {
		cl.lanes[i] = newBareFabric(kern.Lane(i), t, p)
	}
	base := p.FaultSeed
	if base == 0 {
		base = defaultFaultSeed
	}
	for id := 0; id < n; id++ {
		lane := laneOf(topo.NodeID(id))
		if lane < 0 || lane >= kern.Shards() {
			panic(fmt.Sprintf("fabric: node %d mapped to lane %d of %d", id, lane, kern.Shards()))
		}
		cl.laneOf[id] = lane
		pt := &NodePort{cl: cl, node: topo.NodeID(id), lane: lane, f: cl.lanes[lane]}
		if cl.faulty {
			// Per-source-node plane: rules are evaluated where injections
			// happen, with a node-private PRNG stream so decisions do not
			// depend on how nodes interleave within a lane. Rule Count
			// limits consequently apply per source node (documented in
			// DESIGN.md §11).
			pl := newFaultPlaneSeeded(pt.f, base^(int64(id+1)*0x9e3779b97f4a7c1))
			pl.sendHeader = pt.launchHeader
			pl.sendChunk = pt.launchChunk
			pl.newID = pt.allocID
			for _, r := range p.Faults {
				pl.AddRule(r)
			}
			for _, r := range p.Schedule.Rules() {
				pl.AddRule(r)
			}
			pt.plane = pl
		}
		cl.ports[id] = pt
	}
	return cl
}

// newBareFabric builds a Fabric without fault-plane activation — the
// cluster manages per-node planes itself.
func newBareFabric(s *sim.Sim, t *topo.Topology, p *model.Params) *Fabric {
	return &Fabric{
		S:      s,
		Topo:   t,
		P:      p,
		links:  make(map[linkKey]*sim.Server),
		eps:    make(map[topo.NodeID]Endpoint),
		routes: make(map[[2]topo.NodeID][]topo.Dir),
	}
}

// Port returns node id's injection interface.
func (cl *Cluster) Port(id topo.NodeID) *NodePort { return cl.ports[id] }

// Plane returns node id's fault plane (nil on a fault-free cluster). The
// machine's schedule application mutates each plane through lane-local
// events on the owning lane's simulator; plane state must never be touched
// from another lane while the kernel runs.
func (cl *Cluster) Plane(id topo.NodeID) *FaultPlane { return cl.ports[id].plane }

// Lane returns the lane index owning node id.
func (cl *Cluster) Lane(id topo.NodeID) int { return cl.laneOf[id] }

// SetTelemetry attaches one lane's telemetry handle (per-lane instances
// keep the hot path lock-free; the machine merges them at snapshot time).
func (cl *Cluster) SetTelemetry(lane int, tel *telemetry.Telemetry) { cl.lanes[lane].Tel = tel }

// SetTrace attaches one lane's tracer; the hopwise transport records wire
// events through it. Like telemetry, per-lane instances are merged — via
// trace.Merged — at snapshot time.
func (cl *Cluster) SetTrace(lane int, tr *trace.Tracer) { cl.lanes[lane].Trace = tr }

// LaneFabric returns lane i's fabric instance (stats, link meters), for
// the machine's lane-local observers.
func (cl *Cluster) LaneFabric(i int) *Fabric { return cl.lanes[i] }

// StatsSum aggregates the per-lane fabric counters. Injection counts land
// on the sender's lane and deliveries on the receiver's, so the sums are
// independent of the partition.
func (cl *Cluster) StatsSum() Stats {
	var out Stats
	for _, f := range cl.lanes {
		out.Messages += f.Stats.Messages
		out.Chunks += f.Stats.Chunks
		out.LinkRetries += f.Stats.LinkRetries
		out.Delivered += f.Stats.Delivered
	}
	return out
}

// FaultSnapshot sums the per-source-node fault ledgers; ok is false when
// the cluster was built without fault configuration.
func (cl *Cluster) FaultSnapshot() (FaultStats, bool) {
	if !cl.faulty {
		return FaultStats{}, false
	}
	var out FaultStats
	for _, pt := range cl.ports {
		s := pt.plane.Stats
		out.DropsData += s.DropsData
		out.DropsFcAck += s.DropsFcAck
		out.DropsFcNack += s.DropsFcNack
		out.DropsLink += s.DropsLink
		out.Dups += s.Dups
		out.Delays += s.Delays
		out.Stalls += s.Stalls
		out.Recovered += s.Recovered
		out.Condemned += s.Condemned
	}
	return out, true
}

// NodePort is one node's fabric interface on a sharded machine. All its
// methods run on the node's own lane.
type NodePort struct {
	cl   *Cluster
	node topo.NodeID
	lane int
	f    *Fabric // the owning lane's fabric (pools, links, stats, telemetry)

	nextID  uint64 // per-node message ID sequence (IDs are (node+1)<<32 | seq)
	postSeq uint64 // per-node mailbox ordering sequence, shard-invariant

	plane *FaultPlane // per-source-node fault plane, nil when fault-free
}

// Node returns the port's node id.
func (pt *NodePort) Node() topo.NodeID { return pt.node }

// post sends fn through the kernel mailbox to execute on dst's lane at
// time at, ordered by this node's shard-invariant post sequence.
func (pt *NodePort) post(dst *NodePort, at sim.Time, fn func()) {
	pt.postSeq++
	pt.cl.Kern.Post(pt.lane, dst.lane, at, int32(pt.node), pt.postSeq, fn)
}

// allocID mints a node-scoped message ID. Classic fabrics number messages
// globally; a shard-invariant scheme must not depend on cross-node
// injection interleaving, so sharded IDs embed the source node.
func (pt *NodePort) allocID() uint64 {
	pt.nextID++
	return uint64(uint32(pt.node)+1)<<32 | pt.nextID
}

// Attach registers the node's endpoint in the cluster directory.
func (pt *NodePort) Attach(node topo.NodeID, ep Endpoint) {
	if node != pt.node {
		panic(fmt.Sprintf("fabric: port of node %d attached as node %d", pt.node, node))
	}
	if pt.cl.eps[node] != nil {
		panic(fmt.Sprintf("fabric: node %d attached twice", node))
	}
	pt.cl.eps[node] = ep
}

// NewStream is Fabric.NewStream against the lane pool with node-scoped IDs.
func (pt *NodePort) NewStream(hdr wire.Header, src, dst topo.NodeID, payloadLen int) *Message {
	m := pt.f.getMsg()
	m.ID = pt.allocID()
	m.Hdr = hdr
	m.Src = src
	m.Dst = dst
	m.PayloadLen = payloadLen
	return m
}

// AllocChunk takes a carrier from the current lane's pool.
func (pt *NodePort) AllocChunk(n int) *Chunk { return pt.f.AllocChunk(n) }

// RecycleChunk returns a carrier to the current lane's pool — the sharded
// return path: a consumer frees into its own lane, never across shards.
func (pt *NodePort) RecycleChunk(c *Chunk) { pt.f.RecycleChunk(c) }

// RecycleMsg returns a message to the current lane's pool (see
// RecycleChunk for the cross-shard rule).
func (pt *NodePort) RecycleMsg(m *Message) { pt.f.RecycleMsg(m) }

// SendHeader injects a header packet into the hopwise transport.
func (pt *NodePort) SendHeader(m *Message) {
	if pt.cl.eps[m.Dst] == nil {
		panic(fmt.Sprintf("fabric: no endpoint at node %d", m.Dst))
	}
	pt.f.Stats.Messages++
	if pt.plane != nil && pt.plane.filterHeader(m) {
		return
	}
	pt.launchHeader(m)
}

// SendChunk injects payload bytes into the hopwise transport.
func (pt *NodePort) SendChunk(c *Chunk) {
	if pt.cl.eps[c.Msg.Dst] == nil {
		panic(fmt.Sprintf("fabric: no endpoint at node %d", c.Msg.Dst))
	}
	pt.f.Stats.Chunks++
	if pt.plane != nil && pt.plane.filterChunk(c) {
		return
	}
	pt.launchChunk(c)
}

// launchHeader starts a header's hop walk from the source node. The TX
// machine considers the packet sent at injection (stamp + OnInjected);
// receive-window credits are charged on the destination lane at arrival,
// so flow control is destination-side in the hopwise model.
func (pt *NodePort) launchHeader(m *Message) {
	now := pt.f.S.Now()
	if m.Rec != nil {
		m.Rec.Stamp(telemetry.StampWire, now)
		m.Rec.SetHops(pt.f.Topo.Hops(m.Src, m.Dst))
	}
	if m.OnInjected != nil {
		m.OnInjected()
	}
	if pt.f.Trace.Enabled() {
		pt.f.Trace.Instant(int(m.Src), trace.TrackWire, "net", "tx "+m.Hdr.Type.String(), now,
			map[string]interface{}{"msg": m.ID, "dst": m.Dst, "len": m.PayloadLen + len(m.Inline)})
	}
	if m.Src == m.Dst {
		// Loopback still pays NIC injection + ejection, entirely on-lane.
		pt.f.S.At(now+2*pt.f.P.InjectLatency, func() { pt.recvHeader(m) })
		return
	}
	pt.stepHeader(m, now+pt.f.P.InjectLatency)
}

// stepHeader executes the walk at the current node: reserve the outgoing
// link, then hand the walker to the next router through the mailbox.
func (pt *NodePort) stepHeader(m *Message, t sim.Time) {
	next, t2 := pt.hop(m.Dst, t, int64(pt.f.P.PacketBytes), pt.f.Topo.Hops(m.Src, m.Dst))
	np := pt.cl.ports[next]
	if next == m.Dst {
		pt.post(np, t2+pt.f.P.InjectLatency, func() { np.recvHeader(m) })
		return
	}
	pt.post(np, t2, func() { np.stepHeader(m, t2) })
}

// launchChunk starts a payload chunk's hop walk (see launchHeader).
func (pt *NodePort) launchChunk(c *Chunk) {
	if c.OnInjected != nil {
		c.OnInjected()
	}
	now := pt.f.S.Now()
	if c.Msg.Src == c.Msg.Dst {
		pt.f.S.At(now+2*pt.f.P.InjectLatency, func() { pt.recvChunk(c) })
		return
	}
	pt.stepChunk(c, now+pt.f.P.InjectLatency)
}

func (pt *NodePort) stepChunk(c *Chunk, t sim.Time) {
	next, t2 := pt.hop(c.Msg.Dst, t, int64(len(c.Data)), pt.f.Topo.Hops(c.Msg.Src, c.Msg.Dst))
	np := pt.cl.ports[next]
	if next == c.Msg.Dst {
		pt.post(np, t2+pt.f.P.InjectLatency, func() { np.recvChunk(c) })
		return
	}
	pt.post(np, t2, func() { np.stepChunk(c, t2) })
}

// hop reserves this node's outgoing link toward dst for nbytes arriving at
// time t and returns the neighbor plus the arrival time there. Links are
// owned by the lane of the node they leave, so contention is resolved in
// local event order — per-hop, as on the real router.
func (pt *NodePort) hop(dst topo.NodeID, t sim.Time, nbytes int64, hops int) (topo.NodeID, sim.Time) {
	f := pt.f
	d, ok := f.Topo.NextHop(pt.node, dst)
	if !ok {
		panic("fabric: hop walk already at destination")
	}
	occupancy := sim.BytesAt(nbytes, f.P.LinkBps)
	t2 := f.linkReserve(pt.node, d, t, occupancy, hops) + f.P.HopLatency
	next, ok := f.Topo.Neighbor(pt.node, d)
	if !ok {
		panic("fabric: route fell off the mesh")
	}
	return next, t2
}

// recvHeader runs on the destination lane at arrival: charge the receive
// window, then deliver — destination-side admission replaces the classic
// source-side credit take.
func (pt *NodePort) recvHeader(m *Message) {
	f := pt.f
	ep := pt.cl.eps[m.Dst]
	ep.RxWindow().Take(int64(f.P.PacketBytes), func() {
		m.Rec.Stamp(telemetry.StampRxHdr, f.S.Now())
		if pt.cl.faulty {
			pt.noteToSource(m, (*FaultPlane).noteDelivered)
		}
		if f.Trace.Enabled() {
			f.Trace.Instant(int(m.Dst), trace.TrackWire, "net", "rx hdr "+m.Hdr.Type.String(), f.S.Now(),
				map[string]interface{}{"msg": m.ID, "src": m.Src})
		}
		ep.HeaderArrived(m)
		if m.PayloadLen == 0 {
			f.Stats.Delivered++
		}
	})
}

func (pt *NodePort) recvChunk(c *Chunk) {
	f := pt.f
	ep := pt.cl.eps[c.Msg.Dst]
	ep.RxWindow().Take(int64(len(c.Data)), func() {
		ep.ChunkArrived(c)
		if c.Last {
			f.Stats.Delivered++
			if f.Trace.Enabled() {
				m := c.Msg
				f.Trace.Instant(int(m.Dst), trace.TrackWire, "net", "rx last chunk", f.S.Now(),
					map[string]interface{}{"msg": m.ID, "src": m.Src})
			}
		}
	})
}

// FaultAccepted forwards the receiver-side commit to the source node's
// fault plane — one hop of latency away, through the mailbox, so the
// ledger lives entirely on the lane that opened its entries.
func (pt *NodePort) FaultAccepted(m *Message) {
	if pt.cl.faulty {
		pt.noteToSource(m, (*FaultPlane).noteAccepted)
	}
}

// FaultCondemned forwards a receiver-side discard to the source plane.
func (pt *NodePort) FaultCondemned(m *Message) {
	if pt.cl.faulty {
		pt.noteToSource(m, (*FaultPlane).noteCondemned)
	}
}

// noteToSource posts a ledger note to the message's source plane. Only
// identity fields travel; the message object itself stays (and may be
// recycled) on the noting lane.
func (pt *NodePort) noteToSource(m *Message, apply func(*FaultPlane, *Message)) {
	sp := pt.cl.ports[m.Src]
	mm := &Message{ID: m.ID, Hdr: m.Hdr, Src: m.Src, Dst: m.Dst, FwSeq: m.FwSeq}
	at := pt.f.S.Now() + pt.cl.Kern.Lookahead()
	if sp == pt {
		pt.f.S.At(at, func() { apply(sp.plane, mm) })
		return
	}
	pt.post(sp, at, func() { apply(sp.plane, mm) })
}
