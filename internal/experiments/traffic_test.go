package experiments

import (
	"bytes"
	"testing"

	"portals3/internal/model"
	"portals3/internal/sim"
	"portals3/internal/topo"
)

// diffTrafConfig is the traffic differential-test shape: uniform traffic
// on a 4³ torus at full offered load, every observer on.
func diffTrafConfig(shards int, seed int64) TrafficConfig {
	return TrafficConfig{
		TorusConfig: TorusConfig{
			Dim: 4, Bytes: 256, Shards: shards,
			FaultSeed: seed,
			Telemetry: true, FlightRec: true, Trace: true,
			SamplePeriod: 20 * sim.Microsecond,
			StallWindow:  600 * sim.Microsecond,
			RASPeriod:    50 * sim.Microsecond,
		},
		Msgs: 4,
		Load: 1.0,
		Seed: uint64(seed)*0x9E37 + 5,
	}
}

// hotConfig turns the shape into a 30% hot-spot aimed at a mid-torus node.
func hotConfig(shards int, seed int64) TrafficConfig {
	cfg := diffTrafConfig(shards, seed)
	cfg.HotFrac = 0.3
	cfg.HotNode = 21
	return cfg
}

// TestTorusTrafficCompletes sanity-checks both generators at the
// sequential reference: every node gets exactly its expected messages.
func TestTorusTrafficCompletes(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  TrafficConfig
	}{
		{"uniform", diffTrafConfig(1, 0)},
		{"hotspot", hotConfig(1, 0)},
	} {
		res := TorusTraffic(tc.cfg)
		if len(res.Errors) > 0 {
			t.Fatalf("%s run failed: %v", tc.name, res.Errors[:min(len(res.Errors), 5)])
		}
		if res.FinishPs <= 0 {
			t.Fatalf("%s finish = %d", tc.name, res.FinishPs)
		}
	}
}

// TestTrafficDifferential: resharding bit-identity for the hot-spot
// generator — the strongest congestion case, where head-of-line blocking
// on the victim's links reorders arrivals most aggressively.
func TestTrafficDifferential(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		ref := TorusTraffic(hotConfig(1, seed))
		if len(ref.Errors) > 0 {
			t.Fatalf("seed %d: reference run failed: %v", seed, ref.Errors[:min(len(ref.Errors), 5)])
		}
		refDigest := ref.Digest()
		for _, shards := range []int{2, 4} {
			got := TorusTraffic(hotConfig(shards, seed)).Digest()
			if !bytes.Equal(got, refDigest) {
				t.Errorf("seed %d shards %d: hot-spot digest diverges\n%s",
					seed, shards, digestDiff(refDigest, got))
			}
		}
	}
}

// TestTrafficDifferentialFaults reruns the hot-spot differential over a
// lossy fabric with go-back-n recovery.
func TestTrafficDifferentialFaults(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		cfg := hotConfig(1, 0x70af+seed)
		cfg.GoBackN = true
		cfg.Faults = []model.FaultRule{
			model.NewFault(model.FaultDrop, model.FrameData, 0.02).WithCount(2),
		}
		ref := TorusTraffic(cfg)
		if len(ref.Errors) > 0 {
			t.Fatalf("seed %d: faulty reference failed: %v", seed, ref.Errors[:min(len(ref.Errors), 5)])
		}
		if ref.FaultsLine == "" {
			t.Fatalf("seed %d: fault plane never activated", seed)
		}
		refDigest := ref.Digest()
		for _, shards := range []int{2, 4} {
			c := cfg
			c.Shards = shards
			got := TorusTraffic(c).Digest()
			if !bytes.Equal(got, refDigest) {
				t.Errorf("seed %d shards %d (faults): traffic digest diverges\n%s",
					seed, shards, digestDiff(refDigest, got))
			}
		}
	}
}

// TestTrafficBisectionBound: the delivered cross-bisection rate of a
// uniform run must stay within the torus's analytic bisection bandwidth —
// the standard k-ary n-cube bound (cf. the APEnet+ toroidal-mesh
// analysis): cutting a d³ torus into two z-halves severs two planes of d²
// bidirectional links each, so the cut carries at most 4·d²·LinkBps. A
// simulator that routed around the cut, double-delivered, or ran links
// past line rate would break the bound; a run that never crossed it at all
// would mean the uniform generator is not actually uniform.
func TestTrafficBisectionBound(t *testing.T) {
	cfg := diffTrafConfig(1, 1)
	cfg.Telemetry, cfg.FlightRec, cfg.Trace = false, false, false
	cfg.SamplePeriod, cfg.StallWindow, cfg.RASPeriod = 0, 0, 0
	cfg.Msgs = 8
	res := TorusTraffic(cfg)
	if len(res.Errors) > 0 {
		t.Fatalf("run failed: %v", res.Errors[:min(len(res.Errors), 5)])
	}

	d := cfg.Dim
	tp, err := topo.XT3Torus(d, d, d)
	if err != nil {
		t.Fatal(err)
	}
	lower := func(id topo.NodeID) bool { return tp.Coord(id).Z < d/2 }
	var crossBytes int64
	nodes := tp.Nodes()
	for id := 0; id < nodes; id++ {
		for _, dst := range trafficDests(&cfg, nodes, topo.NodeID(id)) {
			path := tp.Walk(topo.NodeID(id), dst)
			for i := 1; i < len(path); i++ {
				if lower(path[i-1]) != lower(path[i]) {
					crossBytes += int64(cfg.Bytes)
				}
			}
		}
	}
	if crossBytes == 0 {
		t.Fatal("uniform traffic never crossed the bisection — generator not uniform")
	}
	// Delivered cross rate over the whole run vs the cut's capacity.
	durPs := res.FinishPs
	rate := float64(crossBytes) * 1e12 / float64(durPs) // bytes/s
	p := model.Defaults()
	capacity := 4 * float64(d*d) * float64(p.LinkBps)
	t.Logf("bisection: %d bytes crossed in %.1f us -> %.3g B/s (capacity %.3g B/s, %.1f%%)",
		crossBytes, float64(durPs)/1e6, rate, capacity, 100*rate/capacity)
	if rate > capacity {
		t.Errorf("cross-bisection rate %.3g B/s exceeds the analytic capacity %.3g B/s", rate, capacity)
	}
}
