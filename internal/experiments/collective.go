// Torus collective workload: every node of a d×d×d torus runs one MPI
// rank, and the job iterates the two tree collectives scientific kernels
// spend their synchronization time in — a vector Allreduce (binomial
// reduce to rank 0 plus binomial broadcast, the MPICH composition) and a
// rotating-root Bcast. Each step's vectors are pure functions of (rank,
// step, slot), so every rank verifies the reduction against the analytic
// sum and the broadcast against the root's pattern without any out-of-band
// state.
//
// The ranks launch through mpi.LaunchAt with a shrunken resource profile:
// at machine scale (1k–10k ranks) the interactive-job defaults — four
// 512 KiB sinks and an 8192-deep event queue per rank — would pin
// gigabytes of host memory for traffic that never exceeds a few KiB.
package experiments

import (
	"encoding/binary"
	"fmt"

	"portals3/internal/machine"
	"portals3/internal/mpi"
	"portals3/internal/topo"
)

// Machine-scale rank resource profile (see package comment).
const (
	collNumSinks  = 2
	collSinkBytes = 32 << 10
	collEQDepth   = 512
)

// collVal is the uint64 a rank contributes at slot j of step s — a pure
// splitmix-style mix, so the reduced sum is analytically recomputable.
func collVal(rank, step, j int) uint64 {
	x := uint64(rank)*0x9E3779B97F4A7C15 + uint64(step)*0xBF58476D1CE4E5B9 + uint64(j)*0x94D049BB133111EB + 1
	x ^= x >> 29
	x *= 0xD6E8FEB86659FD93
	return x ^ x>>32
}

// bcastVal is the root's broadcast pattern at slot j of step s.
func bcastVal(root, step, j int) uint64 {
	return collVal(root, step, j) ^ 0xA5A5A5A5_5A5A5A5A
}

// TorusCollective runs the collective-tree workload described above.
// cfg.Bytes is the vector length in bytes (rounded up to whole uint64
// slots); cfg.Radius is unused — tree edges span whatever torus distance
// the rank numbering induces, which is the point: collectives exercise the
// routed fabric at many hop counts at once.
func TorusCollective(cfg TorusConfig) TorusResult {
	m, tp := buildTorusMachine(&cfg)
	nodes := tp.Nodes()
	n := (cfg.Bytes + 7) &^ 7
	if n < 8 {
		n = 8
	}
	slots := n / 8

	// Analytic reduction results: sums[step][j] = Σ over ranks of collVal.
	sums := make([][]uint64, cfg.Steps)
	for step := range sums {
		sums[step] = make([]uint64, slots)
		for rank := 0; rank < nodes; rank++ {
			for j := 0; j < slots; j++ {
				sums[step][j] += collVal(rank, step, j)
			}
		}
	}

	ranks := make([]topo.NodeID, nodes)
	for id := range ranks {
		ranks[id] = topo.NodeID(id)
	}
	mcfg := mpi.ConfigFor(&m.P, mpi.MPICH1)
	mcfg.NumSinks = collNumSinks
	mcfg.SinkBytes = collSinkBytes
	mcfg.EQDepth = collEQDepth

	rankErrs := make([][]string, nodes)
	res := TorusResult{Nodes: nodes}
	err := mpi.LaunchAt(m, ranks, mcfg, machine.Generic, mpi.DefaultStart, func(r *mpi.Rank) {
		rank := r.Rank()
		fail := func(format string, args ...interface{}) {
			rankErrs[rank] = append(rankErrs[rank], fmt.Sprintf(format, args...))
		}
		buf := r.Alloc(n)
		local := make([]byte, n)
		for step := 0; step < cfg.Steps; step++ {
			// Vector allreduce, verified against the analytic sum.
			for j := 0; j < slots; j++ {
				binary.LittleEndian.PutUint64(local[j*8:], collVal(rank, step, j))
			}
			buf.WriteAt(0, local)
			r.Allreduce(mpi.SumUint64, buf, 0, n)
			buf.ReadAt(0, local)
			for j := 0; j < slots; j++ {
				if got := binary.LittleEndian.Uint64(local[j*8:]); got != sums[step][j] {
					fail("step %d allreduce slot %d: got %#x want %#x", step, j, got, sums[step][j])
					break
				}
			}
			// Rotating-root broadcast, verified against the root's pattern.
			root := step % r.Size()
			if rank == root {
				for j := 0; j < slots; j++ {
					binary.LittleEndian.PutUint64(local[j*8:], bcastVal(root, step, j))
				}
				buf.WriteAt(0, local)
			}
			r.Bcast(root, buf, 0, n)
			buf.ReadAt(0, local)
			for j := 0; j < slots; j++ {
				if got := binary.LittleEndian.Uint64(local[j*8:]); got != bcastVal(root, step, j) {
					fail("step %d bcast slot %d: got %#x want %#x", step, j, got, bcastVal(root, step, j))
					break
				}
			}
		}
	})
	if err != nil {
		res.Errors = append(res.Errors, "launch: "+err.Error())
	}
	ras := startObservers(m, cfg)
	m.Run()
	harvest(m, cfg, ras, &res)
	appendRankErrors(&res, rankErrs)
	return res
}

// CollectiveMsgs is the analytic point-to-point message count of one run —
// per step, a (P−1)-edge reduce tree, a (P−1)-edge broadcast tree closing
// the allreduce, and a (P−1)-edge rotating-root broadcast. Liveness
// monitors (the soak driver's stall budget) size themselves with it.
func CollectiveMsgs(nodes, steps int) int { return steps * 3 * (nodes - 1) }

// DefaultCollectiveConfig is the benchmark shape: 512 ranks, a 32-slot
// (256-byte) vector, 2 steps.
func DefaultCollectiveConfig() TorusConfig {
	return TorusConfig{Dim: 8, Bytes: 256, Steps: 2, Shards: 1}
}
