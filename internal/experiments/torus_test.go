package experiments

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"portals3/internal/model"
	"portals3/internal/sim"
)

// diffConfig is the differential-test shape: small enough to run many
// seeds, big enough to route multi-hop and cross every lane boundary.
// Every observer is on — telemetry, flight recorder, tracing, the RAS
// sampler, the stall detector and the heartbeat monitor — so the digest
// covers every artifact the lane-local observers merge.
func diffConfig(shards int, seed int64) TorusConfig {
	return TorusConfig{
		Dim: 4, Bytes: 256, Steps: 2, Radius: 2, Shards: shards,
		FaultSeed: seed, // seeds the per-node fault PRNGs even with no rules
		Telemetry: true, FlightRec: true, Trace: true,
		SamplePeriod: 20 * sim.Microsecond,
		StallWindow:  400 * sim.Microsecond,
		RASPeriod:    50 * sim.Microsecond,
	}
}

// TestTorusHaloCompletes sanity-checks the workload itself: every face
// verified, no failure reports, at the sequential reference shard count.
func TestTorusHaloCompletes(t *testing.T) {
	res := TorusHalo(diffConfig(1, 0))
	if len(res.Errors) > 0 {
		t.Fatalf("halo run failed: %v", res.Errors[:min(len(res.Errors), 5)])
	}
	if res.Nodes != 64 {
		t.Fatalf("nodes = %d", res.Nodes)
	}
	if res.FinishPs <= 0 {
		t.Fatalf("finish = %d", res.FinishPs)
	}
}

// TestTorusDifferential is the resharding bit-identity gate: for several
// seeds and shard counts, the full artifact digest — finish time, stats,
// telemetry snapshot, flight-recorder dump — must equal the shards=1
// reference byte for byte. Fault-free arms only; see
// TestTorusDifferentialFaults for the A6-style schedule.
func TestTorusDifferential(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	shardCounts := []int{2, 3, 4}
	for _, seed := range seeds {
		ref := TorusHalo(diffConfig(1, seed))
		if len(ref.Errors) > 0 {
			t.Fatalf("seed %d: reference run failed: %v", seed, ref.Errors[:min(len(ref.Errors), 5)])
		}
		refDigest := ref.Digest()
		for _, shards := range shardCounts {
			got := TorusHalo(diffConfig(shards, seed)).Digest()
			if !bytes.Equal(got, refDigest) {
				t.Errorf("seed %d shards %d: digest diverges from sequential reference\n%s",
					seed, shards, digestDiff(refDigest, got))
			}
		}
	}
}

// TestTorusDifferentialFaults reruns the differential under an A6-style
// fault schedule: data drops recovered by go-back-n, with per-seed fault
// PRNG streams. The recovered run must still reshard bit-identically.
func TestTorusDifferentialFaults(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	shardCounts := []int{2, 3, 4}
	for _, seed := range seeds {
		cfg := diffConfig(1, 0x5eed0+seed)
		cfg.GoBackN = true
		cfg.Faults = []model.FaultRule{
			model.NewFault(model.FaultDrop, model.FrameData, 0.02).WithCount(2),
		}
		ref := TorusHalo(cfg)
		if len(ref.Errors) > 0 {
			t.Fatalf("seed %d: faulty reference failed: %v", seed, ref.Errors[:min(len(ref.Errors), 5)])
		}
		if ref.FaultsLine == "" {
			t.Fatalf("seed %d: fault plane never activated", seed)
		}
		refDigest := ref.Digest()
		for _, shards := range shardCounts {
			c := cfg
			c.Shards = shards
			got := TorusHalo(c).Digest()
			if !bytes.Equal(got, refDigest) {
				t.Errorf("seed %d shards %d (faults): digest diverges\n%s",
					seed, shards, digestDiff(refDigest, got))
			}
		}
	}
}

// TestTorusHaloSpeedup is an informational wall-clock probe, skipped in
// -short; the enforced speedup gate lives in scripts/check.sh over
// BenchmarkTorusHalo*.
func TestTorusHaloSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup probe: not in -short")
	}
	cfg := DefaultTorusConfig()
	start := time.Now()
	TorusHalo(cfg)
	seq := time.Since(start)
	c4 := cfg
	c4.Shards = 4
	start = time.Now()
	TorusHalo(c4)
	par := time.Since(start)
	t.Logf("512-node halo: seq %v, 4 shards %v (%.2fx)", seq, par, float64(seq)/float64(par))
}

// digestDiff renders the first divergent line of two digests.
func digestDiff(a, b []byte) string {
	al := bytes.Split(a, []byte("\n"))
	bl := bytes.Split(b, []byte("\n"))
	n := min(len(al), len(bl))
	for i := 0; i < n; i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("line %d:\n  ref: %.200q\n  got: %.200q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("digests differ in length: ref %d lines, got %d lines", len(al), len(bl))
}
