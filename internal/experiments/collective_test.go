package experiments

import (
	"bytes"
	"testing"

	"portals3/internal/model"
	"portals3/internal/sim"
)

// diffCollConfig is the collective differential-test shape: 64 ranks on a
// 4³ torus, a 16-slot vector, every observer on (as diffConfig).
func diffCollConfig(shards int, seed int64) TorusConfig {
	return TorusConfig{
		Dim: 4, Bytes: 128, Steps: 2, Shards: shards,
		FaultSeed: seed,
		Telemetry: true, FlightRec: true, Trace: true,
		SamplePeriod: 20 * sim.Microsecond,
		StallWindow:  600 * sim.Microsecond,
		RASPeriod:    50 * sim.Microsecond,
	}
}

// TestTorusCollectiveCompletes sanity-checks the workload: every rank's
// allreduce matches the analytic sum and every broadcast the root's
// pattern, at the sequential reference.
func TestTorusCollectiveCompletes(t *testing.T) {
	res := TorusCollective(diffCollConfig(1, 0))
	if len(res.Errors) > 0 {
		t.Fatalf("collective run failed: %v", res.Errors[:min(len(res.Errors), 5)])
	}
	if res.Nodes != 64 {
		t.Fatalf("nodes = %d", res.Nodes)
	}
	if res.FinishPs <= 0 {
		t.Fatalf("finish = %d", res.FinishPs)
	}
}

// TestCollectiveDifferential: the resharding bit-identity gate for the
// collective trees — the binomial edges span many hop counts at once, and
// the MPI library (sinks, rendezvous, event queues) rides on top, so this
// exercises reshard invariance through a much deeper stack than the halo.
func TestCollectiveDifferential(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		ref := TorusCollective(diffCollConfig(1, seed))
		if len(ref.Errors) > 0 {
			t.Fatalf("seed %d: reference run failed: %v", seed, ref.Errors[:min(len(ref.Errors), 5)])
		}
		refDigest := ref.Digest()
		for _, shards := range []int{2, 4} {
			got := TorusCollective(diffCollConfig(shards, seed)).Digest()
			if !bytes.Equal(got, refDigest) {
				t.Errorf("seed %d shards %d: collective digest diverges\n%s",
					seed, shards, digestDiff(refDigest, got))
			}
		}
	}
}

// TestCollectiveDifferentialFaults reruns the differential over a lossy
// fabric with go-back-n recovery: a dropped tree edge stalls the whole
// collective until recovered, so the recovery path is fully load-bearing.
func TestCollectiveDifferentialFaults(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		cfg := diffCollConfig(1, 0xc011+seed)
		cfg.GoBackN = true
		cfg.Faults = []model.FaultRule{
			model.NewFault(model.FaultDrop, model.FrameData, 0.02).WithCount(2),
		}
		ref := TorusCollective(cfg)
		if len(ref.Errors) > 0 {
			t.Fatalf("seed %d: faulty reference failed: %v", seed, ref.Errors[:min(len(ref.Errors), 5)])
		}
		if ref.FaultsLine == "" {
			t.Fatalf("seed %d: fault plane never activated", seed)
		}
		refDigest := ref.Digest()
		for _, shards := range []int{2, 4} {
			c := cfg
			c.Shards = shards
			got := TorusCollective(c).Digest()
			if !bytes.Equal(got, refDigest) {
				t.Errorf("seed %d shards %d (faults): collective digest diverges\n%s",
					seed, shards, digestDiff(refDigest, got))
			}
		}
	}
}
