package experiments

import (
	"fmt"

	"portals3/internal/core"
	"portals3/internal/fabric"
	"portals3/internal/machine"
	"portals3/internal/model"
	"portals3/internal/netpipe"
	"portals3/internal/sim"
	"portals3/internal/topo"
)

// This file is the A2 ablation: resource exhaustion under a many-to-one
// incast, comparing the paper's current behavior ("panic the node, which
// results in application failure", §4.3) with the go-back-n recovery
// protocol the authors describe as in-progress work.

// GbnResult is one incast run.
type GbnResult struct {
	Policy      string
	Sent        int
	Completed   int
	Panicked    bool
	Elapsed     sim.Time
	Exhaustions uint64
	NacksSent   uint64
	NacksRcvd   uint64 // FC_NACK frames the senders received
	Retransmits uint64
	// Faults holds the fault plane's final counters when the run injected
	// faults (the A6 lossy ablation); zero otherwise.
	Faults fabric.FaultStats
}

func (r GbnResult) String() string {
	s := fmt.Sprintf("%-9s delivered %d/%d  panicked=%v  elapsed=%v  exhaustions=%d nacks-sent=%d nacks-rcvd=%d retransmits=%d",
		r.Policy, r.Completed, r.Sent, r.Panicked, r.Elapsed,
		r.Exhaustions, r.NacksSent, r.NacksRcvd, r.Retransmits)
	if r.Faults.Injected() > 0 {
		s += "\n          faults: " + r.Faults.String()
	}
	return s
}

// AblationGoBackN runs the incast twice — panic policy and go-back-n, both
// arms concurrently on the experiment driver — with a deliberately small
// receive pending pool so exhaustion actually happens, and reports what
// each policy delivered.
func AblationGoBackN(p model.Params, senders, msgsPerSender, msgBytes int) [2]GbnResult {
	var out [2]GbnResult
	netpipe.ForEach(Parallelism, 2, func(i int) {
		out[i] = runIncast(p, senders, msgsPerSender, msgBytes, i == 1)
	})
	return out
}

func runIncast(p model.Params, senders, msgsPerSender, msgBytes int, gbn bool) GbnResult {
	// Starve the receiver: a tiny pending pool makes the incast exhaust it.
	p.NumGenericPendings = 16
	tp, err := topo.New(senders+1, 1, 1, false, false, false)
	if err != nil {
		panic(err)
	}
	m := machine.New(p, tp)
	if gbn {
		m.EnableGoBackN()
	}
	res := GbnResult{Policy: "panic", Sent: senders * msgsPerSender}
	if gbn {
		res.Policy = "go-back-n"
	}

	recvNode := m.Node(0)
	recvNode.NIC.OnPanic = func(string) { res.Panicked = true }

	completed := 0
	var lastAt sim.Time
	recv, err := m.Spawn(0, "incast-recv", machine.Generic, func(app *machine.App) {
		eq, _ := app.API.EQAlloc(8192)
		me, _ := app.API.MEAttach(3, core.ProcessID{Nid: core.NidAny, Pid: core.PidAny}, 1, 0, core.Retain, core.After)
		buf := app.Alloc(msgBytes)
		app.API.MDAttach(me, core.MDesc{
			Region:    buf,
			Threshold: core.ThresholdInfinite,
			Options:   core.MDOpPut | core.MDManageRemote | core.MDEventStartDisable,
			EQ:        eq,
		}, core.Retain)
		for completed < senders*msgsPerSender {
			ev, err := app.API.EQWait(eq)
			if err != nil && err != core.ErrEQDropped {
				return
			}
			if ev.Type == core.EventPutEnd {
				completed++
				lastAt = app.Proc.Now()
			}
		}
	})
	if err != nil {
		panic(err)
	}
	for s := 1; s <= senders; s++ {
		node := topo.NodeID(s)
		if _, err := m.Spawn(node, fmt.Sprintf("incast-tx%d", s), machine.Generic, func(app *machine.App) {
			app.Proc.Sleep(50 * sim.Microsecond)
			eq, _ := app.API.EQAlloc(1024)
			src := app.Alloc(msgBytes)
			md, _ := app.API.MDBind(core.MDesc{Region: src, Threshold: core.ThresholdInfinite,
				Options: core.MDEventStartDisable, EQ: eq})
			// Burst every message without pacing — the driver backlogs
			// sends past the pending pool — then collect completions. The
			// unthrottled burst is what makes the incast exhaust the
			// receiver.
			for i := 0; i < msgsPerSender; i++ {
				if err := app.API.Put(md, core.NoAck, recv.ID(), 3, 1, 0, 0); err != nil {
					return
				}
			}
			for got := 0; got < msgsPerSender; {
				ev, err := app.API.EQWait(eq)
				if err != nil && err != core.ErrEQDropped {
					return
				}
				if ev.Type == core.EventSendEnd {
					got++
				}
			}
		}); err != nil {
			panic(err)
		}
	}
	// A panicked node wedges its streams (that is the failure mode); run to
	// a horizon rather than to quiescence.
	m.RunUntil(200 * sim.Millisecond)
	res.Completed = completed
	res.Elapsed = lastAt
	res.Exhaustions = recvNode.NIC.Stats.Exhaustions
	res.NacksSent = recvNode.NIC.Stats.NacksSent
	for s := 1; s <= senders; s++ {
		res.Retransmits += m.Node(topo.NodeID(s)).NIC.Stats.Retransmits
		res.NacksRcvd += m.Node(topo.NodeID(s)).NIC.Stats.NacksRcvd
	}
	if len(p.Faults) > 0 {
		res.Faults = m.Faults().Snapshot()
	}
	return res
}

// GbnChecks validates the ablation shape: panic loses the application,
// go-back-n delivers everything.
func GbnChecks(r [2]GbnResult) []Check {
	return []Check{
		{
			Name:     "panic policy fails the application under incast",
			Paper:    "the current approach is to panic the node (§4.3)",
			Measured: fmt.Sprintf("delivered %d/%d, panicked=%v", r[0].Completed, r[0].Sent, r[0].Panicked),
			Pass:     r[0].Panicked && r[0].Completed < r[0].Sent,
		},
		{
			Name:     "go-back-n resolves exhaustion gracefully",
			Paper:    "a simple go-back-n protocol to resolve resource exhaustion (§4.3)",
			Measured: fmt.Sprintf("delivered %d/%d with %d retransmits", r[1].Completed, r[1].Sent, r[1].Retransmits),
			Pass:     !r[1].Panicked && r[1].Completed == r[1].Sent && r[1].Retransmits > 0,
		},
	}
}
