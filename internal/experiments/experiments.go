// Package experiments regenerates every table and figure of the paper's
// evaluation (§6): Figure 4 (latency), Figure 5 (uni-directional
// bandwidth), Figure 6 (streaming bandwidth) and Figure 7 (bi-directional
// bandwidth), each with the paper's four series — Portals put, Portals get,
// MPICH-1.2.6 and MPICH2 — plus the scalar claims of §3.3/§4 and the two
// forward-looking ablations (accelerated mode, go-back-n).
//
// cmd/netpipe renders these for humans; bench_test.go wraps them as Go
// benchmarks; EXPERIMENTS.md records paper-vs-measured numbers produced by
// the Checks functions here.
package experiments

import (
	"fmt"
	"io"
	"math"

	"portals3/internal/machine"
	"portals3/internal/model"
	"portals3/internal/mpi"
	"portals3/internal/netpipe"
	"portals3/internal/sim"
)

// Figure is one reproduced paper figure.
type Figure struct {
	ID     string
	Title  string
	Pat    netpipe.Pattern
	YLabel string
	Series []netpipe.Result
}

// Parallelism bounds the worker pool that runs independent simulation arms
// (figure series and ablation arms). Every arm builds its own isolated Sim
// and machine, so arms are embarrassingly parallel and the simulated
// numbers are identical at any setting; results are always assembled in
// legend order. 0 means GOMAXPROCS; 1 forces fully sequential runs.
// Set it before generating figures (it is read, not written, by the
// generators themselves).
var Parallelism = 0

// fourSeries runs the paper's standard series set for one pattern, fanning
// the four independent machines out across the experiment driver.
func fourSeries(p model.Params, pat netpipe.Pattern, cfg netpipe.Config) []netpipe.Result {
	return netpipe.RunConcurrent(Parallelism, []netpipe.Job{
		func() netpipe.Result { return netpipe.RunPortals(p, netpipe.OpGet, pat, cfg) },
		func() netpipe.Result { return netpipe.RunMPI(p, mpi.MPICH2, pat, cfg) },
		func() netpipe.Result { return netpipe.RunMPI(p, mpi.MPICH1, pat, cfg) },
		func() netpipe.Result { return netpipe.RunPortals(p, netpipe.OpPut, pat, cfg) },
	})
}

// Figure4 reproduces the latency plot: ping-pong, 1 B – 1 KB, RTT/2.
func Figure4(p model.Params) Figure {
	cfg := netpipe.DefaultConfig()
	cfg.MaxBytes = 1 << 10
	return Figure{
		ID:     "figure4",
		Title:  "Latency performance (paper Figure 4)",
		Pat:    netpipe.PingPong,
		YLabel: "latency (us)",
		Series: fourSeries(p, netpipe.PingPong, cfg),
	}
}

// Figure5 reproduces the uni-directional bandwidth plot: ping-pong,
// 1 B – 8 MB.
func Figure5(p model.Params) Figure {
	return Figure{
		ID:     "figure5",
		Title:  "Uni-directional bandwidth (paper Figure 5)",
		Pat:    netpipe.PingPong,
		YLabel: "bandwidth (MB/s)",
		Series: fourSeries(p, netpipe.PingPong, netpipe.DefaultConfig()),
	}
}

// Figure6 reproduces the streaming bandwidth plot.
func Figure6(p model.Params) Figure {
	return Figure{
		ID:     "figure6",
		Title:  "Streaming bandwidth (paper Figure 6)",
		Pat:    netpipe.Stream,
		YLabel: "bandwidth (MB/s)",
		Series: fourSeries(p, netpipe.Stream, netpipe.DefaultConfig()),
	}
}

// Figure7 reproduces the bi-directional bandwidth plot.
func Figure7(p model.Params) Figure {
	return Figure{
		ID:     "figure7",
		Title:  "Bi-directional bandwidth (paper Figure 7)",
		Pat:    netpipe.Bidir,
		YLabel: "bandwidth (MB/s)",
		Series: fourSeries(p, netpipe.Bidir, netpipe.DefaultConfig()),
	}
}

// Render writes the figure as an aligned text table, one series per column
// in the paper's legend order.
func (f Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", f.Title)
	fmt.Fprintf(w, "%10s", "bytes")
	for _, s := range f.Series {
		fmt.Fprintf(w, " %14s", s.Series)
	}
	fmt.Fprintf(w, "   (%s)\n", f.YLabel)
	if len(f.Series) == 0 || len(f.Series[0].Points) == 0 {
		return
	}
	for i := range f.Series[0].Points {
		fmt.Fprintf(w, "%10d", f.Series[0].Points[i].Bytes)
		for _, s := range f.Series {
			pt := s.Points[i]
			if f.Pat == netpipe.PingPong && f.ID == "figure4" {
				fmt.Fprintf(w, " %14.2f", pt.Latency.Micros())
			} else {
				fmt.Fprintf(w, " %14.2f", pt.MBps)
			}
		}
		fmt.Fprintln(w)
	}
}

// seriesPoint finds a series' measurement at an exact size.
func seriesPoint(f Figure, series string, bytes int) (netpipe.Point, bool) {
	for _, s := range f.Series {
		if s.Series != series {
			continue
		}
		for _, pt := range s.Points {
			if pt.Bytes == bytes {
				return pt, true
			}
		}
	}
	return netpipe.Point{}, false
}

// halfBandwidthBytes interpolates the message size at which a series
// reaches half its peak bandwidth.
func halfBandwidthBytes(f Figure, series string) float64 {
	for _, s := range f.Series {
		if s.Series != series {
			continue
		}
		peak := 0.0
		for _, pt := range s.Points {
			if pt.MBps > peak {
				peak = pt.MBps
			}
		}
		half := peak / 2
		for i := 1; i < len(s.Points); i++ {
			a, b := s.Points[i-1], s.Points[i]
			if a.MBps < half && b.MBps >= half {
				// Log-linear interpolation between the straddling sizes.
				fa, fb := math.Log(float64(a.Bytes)), math.Log(float64(b.Bytes))
				t := (half - a.MBps) / (b.MBps - a.MBps)
				return math.Exp(fa + t*(fb-fa))
			}
		}
	}
	return math.NaN()
}

// Check is one paper-vs-measured comparison.
type Check struct {
	Name     string
	Paper    string
	Measured string
	Pass     bool
}

func within(measured, target, tolFrac float64) bool {
	if target == 0 {
		return measured == 0
	}
	return math.Abs(measured-target)/math.Abs(target) <= tolFrac
}

// LatencyChecks compares Figure 4's one-byte latencies and the 12-byte
// step with the paper's §6 numbers.
func LatencyChecks(f4 Figure) []Check {
	targets := []struct {
		series string
		us     float64
	}{
		{"put", 5.39}, {"get", 6.60}, {"mpich-1.2.6", 7.97}, {"mpich2", 8.40},
	}
	var out []Check
	for _, tg := range targets {
		pt, ok := seriesPoint(f4, tg.series, 1)
		us := pt.Latency.Micros()
		out = append(out, Check{
			Name:     fmt.Sprintf("1-byte latency, %s", tg.series),
			Paper:    fmt.Sprintf("%.2f us", tg.us),
			Measured: fmt.Sprintf("%.2f us", us),
			Pass:     ok && within(us, tg.us, 0.05),
		})
	}
	// The 12-byte small message optimization step (§6).
	at11, ok1 := seriesPoint(f4, "put", 11)
	at16, ok2 := seriesPoint(f4, "put", 16)
	step := at16.Latency.Micros() - at11.Latency.Micros()
	out = append(out, Check{
		Name:     "latency step past 12-byte inline payload, put",
		Paper:    "visible step (one extra interrupt, >=2 us)",
		Measured: fmt.Sprintf("+%.2f us", step),
		Pass:     ok1 && ok2 && step >= 2.0,
	})
	// Ordering: put < get < mpich-1.2.6 < mpich2 at one byte.
	var vals [4]float64
	okAll := true
	for i, s := range []string{"put", "get", "mpich-1.2.6", "mpich2"} {
		pt, ok := seriesPoint(f4, s, 1)
		okAll = okAll && ok
		vals[i] = pt.Latency.Micros()
	}
	out = append(out, Check{
		Name:     "latency ordering put < get < MPICH-1.2.6 < MPICH2",
		Paper:    "5.39 < 6.60 < 7.97 < 8.40",
		Measured: fmt.Sprintf("%.2f < %.2f < %.2f < %.2f", vals[0], vals[1], vals[2], vals[3]),
		Pass:     okAll && vals[0] < vals[1] && vals[1] < vals[2] && vals[2] < vals[3],
	})
	return out
}

// BandwidthChecks compares Figures 5–7 with the paper's §6 numbers.
func BandwidthChecks(f5, f6, f7 Figure) []Check {
	var out []Check
	peak5, ok5 := seriesPoint(f5, "put", 8<<20)
	out = append(out, Check{
		Name:     "uni-directional put peak at 8 MB",
		Paper:    "1108.76 MB/s",
		Measured: fmt.Sprintf("%.2f MB/s", peak5.MBps),
		Pass:     ok5 && within(peak5.MBps, 1108.76, 0.02),
	})
	hb5 := halfBandwidthBytes(f5, "put")
	out = append(out, Check{
		Name:     "uni-directional half-bandwidth point, put",
		Paper:    "around 7 KB",
		Measured: fmt.Sprintf("%.0f B", hb5),
		Pass:     hb5 > 4<<10 && hb5 < 10<<10,
	})
	hb6 := halfBandwidthBytes(f6, "put")
	out = append(out, Check{
		Name:     "streaming half-bandwidth point, put",
		Paper:    "around 5 KB",
		Measured: fmt.Sprintf("%.0f B", hb6),
		Pass:     hb6 > 3<<10 && hb6 < 7<<10 && hb6 < hb5,
	})
	// Streaming hurts gets far more than puts (blocking, no pipelining).
	sp, okA := seriesPoint(f6, "put", 4096)
	sg, okB := seriesPoint(f6, "get", 4096)
	out = append(out, Check{
		Name:     "streaming get penalty at 4 KB",
		Paper:    "get well below put (blocking operation)",
		Measured: fmt.Sprintf("put %.0f vs get %.0f MB/s", sp.MBps, sg.MBps),
		Pass:     okA && okB && sg.MBps < 0.7*sp.MBps,
	})
	peak7, ok7 := seriesPoint(f7, "put", 8<<20)
	out = append(out, Check{
		Name:     "bi-directional put peak at 8 MB",
		Paper:    "2203.19 MB/s",
		Measured: fmt.Sprintf("%.2f MB/s", peak7.MBps),
		Pass:     ok7 && within(peak7.MBps, 2203.19, 0.02),
	})
	// MPI tracks slightly below put at the top end in every figure.
	for _, fig := range []Figure{f5, f6, f7} {
		put, okP := seriesPoint(fig, "put", 8<<20)
		m2, okM := seriesPoint(fig, "mpich2", 8<<20)
		out = append(out, Check{
			Name:     fmt.Sprintf("%s: MPI slightly below put at 8 MB", fig.ID),
			Paper:    "MPI achieves slightly less",
			Measured: fmt.Sprintf("put %.1f vs mpich2 %.1f MB/s", put.MBps, m2.MBps),
			Pass:     okP && okM && m2.MBps < put.MBps && m2.MBps > 0.97*put.MBps,
		})
	}
	return out
}

// RenderChecks writes a paper-vs-measured table.
func RenderChecks(w io.Writer, checks []Check) {
	for _, c := range checks {
		status := "OK  "
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(w, "%s  %-55s paper: %-40s measured: %s\n", status, c.Name, c.Paper, c.Measured)
	}
}

// AccelComparison is the A1 ablation: the same workload in generic and
// accelerated mode (§3.3's forward-looking claim).
type AccelComparison struct {
	Generic netpipe.Result
	Accel   netpipe.Result
}

// AblationAccelerated measures put ping-pong in both processing modes far
// enough up the size range to locate both half-bandwidth points. The two
// arms run concurrently on the experiment driver.
func AblationAccelerated(p model.Params) AccelComparison {
	cfgGen := netpipe.DefaultConfig()
	cfgGen.MaxBytes = 1 << 20
	cfgAcc := cfgGen
	cfgAcc.Mode = machine.Accelerated
	rs := netpipe.RunConcurrent(Parallelism, []netpipe.Job{
		func() netpipe.Result { return netpipe.RunPortals(p, netpipe.OpPut, netpipe.PingPong, cfgGen) },
		func() netpipe.Result { return netpipe.RunPortals(p, netpipe.OpPut, netpipe.PingPong, cfgAcc) },
	})
	return AccelComparison{Generic: rs[0], Accel: rs[1]}
}

// AccelChecks validates the ablation's expected shape.
func (a AccelComparison) Checks() []Check {
	find := func(r netpipe.Result, bytes int) netpipe.Point {
		for _, pt := range r.Points {
			if pt.Bytes == bytes {
				return pt
			}
		}
		return netpipe.Point{}
	}
	g1, a1 := find(a.Generic, 1), find(a.Accel, 1)
	gk, ak := find(a.Generic, 1024), find(a.Accel, 1024)
	var out []Check
	out = append(out, Check{
		Name:     "accelerated mode beats generic at 1 byte",
		Paper:    "interrupts eliminated from the data path (§3.3)",
		Measured: fmt.Sprintf("generic %.2f vs accel %.2f us", g1.Latency.Micros(), a1.Latency.Micros()),
		Pass:     a1.Latency < g1.Latency,
	})
	out = append(out, Check{
		Name:     "accelerated gain grows past the inline threshold",
		Paper:    "two interrupts plus a command round trip saved",
		Measured: fmt.Sprintf("1KB: generic %.2f vs accel %.2f us", gk.Latency.Micros(), ak.Latency.Micros()),
		Pass:     gk.Latency-ak.Latency > 3*sim.Microsecond,
	})
	// The paper's direct prediction: "we expect a dramatic decrease in the
	// point at which half bandwidth is achieved as processing is offloaded
	// from the host and the costly interrupt latency is eliminated" (§6).
	ghb := halfBandwidthOfResult(a.Generic)
	ahb := halfBandwidthOfResult(a.Accel)
	out = append(out, Check{
		Name:     "half-bandwidth point drops dramatically when offloaded",
		Paper:    "a dramatic decrease ... as processing is offloaded (§6)",
		Measured: fmt.Sprintf("generic %.0f B vs accelerated %.0f B", ghb, ahb),
		Pass:     ahb < 0.65*ghb,
	})
	return out
}

// halfBandwidthOfResult interpolates one curve's half-bandwidth size.
func halfBandwidthOfResult(r netpipe.Result) float64 {
	peak := 0.0
	for _, pt := range r.Points {
		if pt.MBps > peak {
			peak = pt.MBps
		}
	}
	half := peak / 2
	for i := 1; i < len(r.Points); i++ {
		a, b := r.Points[i-1], r.Points[i]
		if a.MBps < half && b.MBps >= half {
			fa, fb := math.Log(float64(a.Bytes)), math.Log(float64(b.Bytes))
			t := (half - a.MBps) / (b.MBps - a.MBps)
			return math.Exp(fa + t*(fb-fa))
		}
	}
	return math.NaN()
}
