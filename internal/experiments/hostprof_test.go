package experiments

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"portals3/internal/sim"
)

// hostprofConfig is diffConfig with the host profiler armed and a progress
// callback firing at effectively every window barrier — the maximally
// intrusive profiler configuration.
func hostprofConfig(shards int, seed int64) TorusConfig {
	cfg := diffConfig(shards, seed)
	cfg.HostProf = true
	cfg.Progress = func(sim.HostProgress) {}
	cfg.ProgressEvery = time.Nanosecond
	return cfg
}

// TestTorusDifferentialHostProfiler is the profiler-purity gate: digests
// must be byte-identical with the profiler off (the reference), with it
// on, and across shard counts {1, 2, 4} with it on. Wall-clock state must
// never leak into a deterministic artifact.
func TestTorusDifferentialHostProfiler(t *testing.T) {
	const seed = 3
	ref := TorusHalo(diffConfig(1, seed))
	if len(ref.Errors) > 0 {
		t.Fatalf("reference run failed: %v", ref.Errors[:min(len(ref.Errors), 5)])
	}
	refDigest := ref.Digest()
	for _, shards := range []int{1, 2, 4} {
		res := TorusHalo(hostprofConfig(shards, seed))
		if got := res.Digest(); !bytes.Equal(got, refDigest) {
			t.Errorf("shards %d: digest diverges with profiler on\n%s",
				shards, digestDiff(refDigest, got))
		}
		hp := res.HostProfile
		if hp == nil {
			t.Fatalf("shards %d: no host profile harvested", shards)
		}
		if hp.Shards != shards || hp.Windows != res.Windows || hp.WallNs <= 0 {
			t.Errorf("shards %d: profile inconsistent: shards=%d windows=%d (run %d) wall=%d",
				shards, hp.Shards, hp.Windows, res.Windows, hp.WallNs)
		}
		// The acceptance identity, at the exported-artifact level: every
		// lane's busy+wait+drain within 5% of the measured kernel wall.
		for _, l := range hp.Lanes {
			sum := l.BusyNs + l.WaitNs + hp.DrainNs
			diff := sum - hp.RunWallNs
			if diff < 0 {
				diff = -diff
			}
			if float64(diff) > 0.05*float64(hp.RunWallNs) {
				t.Errorf("shards %d lane %d: busy %d + wait %d + drain %d = %d vs measured wall %d (>5%% off)",
					shards, l.Lane, l.BusyNs, l.WaitNs, hp.DrainNs, sum, hp.RunWallNs)
			}
		}
	}
}

// TestTorusDifferentialInline pins the GOMAXPROCS=1 inline-fallback path
// at the workload level: a full halo run (all observers on) on a single
// scheduling core must digest byte-identically to the parallel-worker run
// at the same shard count.
func TestTorusDifferentialInline(t *testing.T) {
	const seed = 2
	ref := TorusHalo(diffConfig(4, seed)).Digest()
	prev := runtime.GOMAXPROCS(1)
	inline := TorusHalo(diffConfig(4, seed)).Digest()
	runtime.GOMAXPROCS(prev)
	if !bytes.Equal(inline, ref) {
		t.Errorf("GOMAXPROCS=1 inline run diverges from parallel workers\n%s",
			digestDiff(ref, inline))
	}
}

// TestHostProfileMerge checks the sweep-arm merge arithmetic the netpipe
// -workload sweep path relies on.
func TestHostProfileMerge(t *testing.T) {
	a := TorusHalo(hostprofConfig(2, 1)).HostProfile
	b := TorusHalo(hostprofConfig(2, 2)).HostProfile
	if a == nil || b == nil {
		t.Fatal("missing host profiles")
	}
	wantWall := a.WallNs + b.WallNs
	wantEvents := a.Events + b.Events
	wantWindows := a.Windows + b.Windows
	wantLane0 := a.Lanes[0].BusyNs + b.Lanes[0].BusyNs
	maxHeap := a.HeapInuseHigh
	if b.HeapInuseHigh > maxHeap {
		maxHeap = b.HeapInuseHigh
	}
	a.Merge(b)
	if a.Runs != 2 || a.WallNs != wantWall || a.Events != wantEvents || a.Windows != wantWindows {
		t.Fatalf("merge totals wrong: %+v", a)
	}
	if a.Lanes[0].BusyNs != wantLane0 {
		t.Fatalf("lane 0 busy %d, want %d", a.Lanes[0].BusyNs, wantLane0)
	}
	if a.HeapInuseHigh != maxHeap {
		t.Fatalf("heap watermark %d, want max %d", a.HeapInuseHigh, maxHeap)
	}
}
