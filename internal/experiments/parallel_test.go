package experiments

import (
	"strings"
	"testing"

	"portals3/internal/model"
)

// renderAll renders a figure to a string for byte comparison.
func renderAll(f Figure) string {
	var sb strings.Builder
	f.Render(&sb)
	return sb.String()
}

// TestFigureTableIdenticalSequentialVsParallel: the experiment driver must
// be invisible in the output — the same seed renders the same bytes at any
// parallelism.
func TestFigureTableIdenticalSequentialVsParallel(t *testing.T) {
	defer func(old int) { Parallelism = old }(Parallelism)
	p := model.Defaults()

	Parallelism = 1
	seq := renderAll(Figure4(p))
	Parallelism = 8
	par := renderAll(Figure4(p))

	if seq != par {
		t.Fatalf("figure 4 table differs between sequential and parallel runs:\n--- sequential ---\n%s--- parallel ---\n%s", seq, par)
	}
}

// TestAblationIdenticalSequentialVsParallel covers the non-figure driver
// paths: ablation arms must also be parallelism-invariant.
func TestAblationIdenticalSequentialVsParallel(t *testing.T) {
	defer func(old int) { Parallelism = old }(Parallelism)
	p := model.Defaults()

	Parallelism = 1
	seq := AblationInline(p)
	Parallelism = 4
	par := AblationInline(p)

	if len(seq.With.Points) != len(par.With.Points) || len(seq.Without.Points) != len(par.Without.Points) {
		t.Fatal("point counts differ")
	}
	for i := range seq.With.Points {
		if seq.With.Points[i] != par.With.Points[i] {
			t.Errorf("with-arm point %d differs: %+v vs %+v", i, seq.With.Points[i], par.With.Points[i])
		}
	}
	for i := range seq.Without.Points {
		if seq.Without.Points[i] != par.Without.Points[i] {
			t.Errorf("without-arm point %d differs: %+v vs %+v", i, seq.Without.Points[i], par.Without.Points[i])
		}
	}
}
