package experiments

import (
	"fmt"
	"io"

	"portals3/internal/machine"
	"portals3/internal/model"
	"portals3/internal/netpipe"
	"portals3/internal/sim"
	"portals3/internal/telemetry"
)

// This file is the experiments-side wiring of the telemetry subsystem: the
// figure sweeps gain percentile views, and a dedicated attribution run
// reproduces the paper's where-does-each-microsecond-go decomposition as a
// table with paper-vs-measured checks.

// RenderPercentiles writes the per-size p50/p99 latency table for a
// ping-pong figure — the tail view the mean-only figures hide. Series
// without percentile data (streaming patterns) render as zeros and are
// skipped.
func (f Figure) RenderPercentiles(w io.Writer) {
	if f.Pat != netpipe.PingPong {
		return
	}
	fmt.Fprintf(w, "# %s — percentiles\n", f.Title)
	fmt.Fprintf(w, "%10s", "bytes")
	for _, s := range f.Series {
		fmt.Fprintf(w, " %10s-p50 %10s-p99", s.Series, s.Series)
	}
	fmt.Fprintln(w, "   (us)")
	if len(f.Series) == 0 || len(f.Series[0].Points) == 0 {
		return
	}
	for i := range f.Series[0].Points {
		fmt.Fprintf(w, "%10d", f.Series[0].Points[i].Bytes)
		for _, s := range f.Series {
			pt := s.Points[i]
			fmt.Fprintf(w, " %14.2f %14.2f", pt.P50.Micros(), pt.P99.Micros())
		}
		fmt.Fprintln(w)
	}
}

// TelemetryBreakdown runs a telemetry-enabled put ping-pong (1 B – 64 KB,
// both message regimes) and returns the exported snapshot and its latency
// breakdown. One machine serves the whole sweep, so the attribution covers
// every message of the run.
func TelemetryBreakdown(p model.Params) (*telemetry.Export, *telemetry.Breakdown) {
	cfg := netpipe.DefaultConfig()
	cfg.MaxBytes = 64 << 10
	var mach *machine.Machine
	cfg.Observe = func(m *machine.Machine) {
		mach = m
		m.EnableTelemetry()
		m.StartSampler(500 * sim.Microsecond)
	}
	netpipe.RunPortals(p, netpipe.OpPut, netpipe.PingPong, cfg)
	exp := mach.Telemetry().Snapshot(mach.S.Now())
	bd, _ := exp.Breakdown()
	return exp, bd
}

// BreakdownChecks validates the attribution against the paper's structural
// claims about generic-mode receive cost.
func BreakdownChecks(bd *telemetry.Breakdown) []Check {
	var out []Check
	if bd == nil {
		return []Check{{Name: "telemetry breakdown present", Paper: "attribution data", Measured: "none", Pass: false}}
	}
	out = append(out, Check{
		Name:     "segment sum equals end-to-end latency",
		Paper:    "segments partition e2e (within 1%)",
		Measured: fmt.Sprintf("drift %.4f%%", bd.DriftPct),
		Pass:     bd.DriftPct <= 1.0,
	})
	share := map[string]float64{}
	var nonzero int
	for _, r := range bd.Rows {
		share[r.Stage] = r.Share
		if r.Mean > 0 {
			nonzero++
		}
	}
	out = append(out, Check{
		Name:     "every segment carries time",
		Paper:    "host, firmware, wire and event costs all nonzero",
		Measured: fmt.Sprintf("%d of %d segments nonzero", nonzero, len(bd.Rows)),
		Pass:     nonzero == len(bd.Rows),
	})
	// Generic mode: the receive side (RX firmware + interrupt-driven event
	// delivery) dominates — the cost §3.3/§4.1 center on.
	rxSide := share["rxfw"] + share["deliver"]
	out = append(out, Check{
		Name:     "receive side dominates in generic mode",
		Paper:    "interrupt-driven delivery is the major cost (§3.3)",
		Measured: fmt.Sprintf("rxfw+deliver = %.1f%% of e2e", rxSide),
		Pass:     rxSide > 50,
	})
	out = append(out, Check{
		Name:     "wire time is a minor component on adjacent nodes",
		Paper:    "one-hop torus transit is sub-microsecond",
		Measured: fmt.Sprintf("wire = %.1f%%", share["wire"]),
		Pass:     share["wire"] < 15,
	})
	return out
}
