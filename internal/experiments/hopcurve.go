// Per-hop-count latency curves: the latency-under-load summary distilled
// from a run's telemetry export. Each row pairs the end-to-end message
// latency at one routing distance with the link-level head-of-line
// blocking its traversals saw — the curve EXPERIMENTS.md's
// latency-under-load methodology sweeps across offered loads.
package experiments

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"

	"portals3/internal/telemetry"
)

// HopRow is one routing distance's latency summary.
type HopRow struct {
	Hops       int
	Msgs       uint64  // delivered messages at this distance
	Traversals uint64  // link traversals by those messages
	E2EMeanPs  float64 // end-to-end latency, mean
	E2EP99Ps   float64 // end-to-end latency, p99
	HolMeanPs  float64 // head-of-line wait per traversal, mean
	HolP99Ps   float64 // head-of-line wait per traversal, p99
}

// HopCurve extracts the per-hop-count rows from a telemetry JSON export
// (the portals_msg_e2e_by_hops_ps and fabric_link_hol_wait_by_hops_ps
// histogram families), sorted by hop count. An export with neither family
// returns an empty slice.
func HopCurve(telemetryJSON []byte) ([]HopRow, error) {
	e, err := telemetry.ReadJSON(bytes.NewReader(telemetryJSON))
	if err != nil {
		return nil, err
	}
	rows := make(map[int]*HopRow)
	row := func(labels string) *HopRow {
		h := hopLabel(labels)
		if h < 0 {
			return nil
		}
		if rows[h] == nil {
			rows[h] = &HopRow{Hops: h}
		}
		return rows[h]
	}
	mean := func(m telemetry.ExportMetric) float64 {
		if m.Count == 0 {
			return 0
		}
		return float64(m.Sum) / float64(m.Count)
	}
	for _, m := range e.Metrics {
		switch m.Name {
		case "portals_msg_e2e_by_hops_ps":
			if r := row(m.Labels); r != nil {
				r.Msgs, r.E2EMeanPs, r.E2EP99Ps = m.Count, mean(m), float64(m.P99)
			}
		case "fabric_link_hol_wait_by_hops_ps":
			if r := row(m.Labels); r != nil {
				r.Traversals, r.HolMeanPs, r.HolP99Ps = m.Count, mean(m), float64(m.P99)
			}
		}
	}
	out := make([]HopRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Hops < out[j].Hops })
	return out, nil
}

// hopLabel extracts the hops="N" label value, -1 if absent or malformed.
func hopLabel(labels string) int {
	const key = `hops="`
	i := strings.Index(labels, key)
	if i < 0 {
		return -1
	}
	rest := labels[i+len(key):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return -1
	}
	n := 0
	for _, c := range rest[:j] {
		if c < '0' || c > '9' {
			return -1
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// RenderHopCurve prints the rows as the netpipe/p3stat table.
func RenderHopCurve(w io.Writer, rows []HopRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "latency under load by hop count:\n")
	fmt.Fprintf(w, "  %4s %8s %12s %12s %12s %12s %12s\n",
		"hops", "msgs", "e2e-mean", "e2e-p99", "traversals", "hol-mean", "hol-p99")
	for _, r := range rows {
		fmt.Fprintf(w, "  %4d %8d %10.3fus %10.3fus %12d %10.3fus %10.3fus\n",
			r.Hops, r.Msgs, r.E2EMeanPs/1e6, r.E2EP99Ps/1e6, r.Traversals, r.HolMeanPs/1e6, r.HolP99Ps/1e6)
	}
}
