package experiments

import (
	"fmt"

	"portals3/internal/model"
	"portals3/internal/netpipe"
	"portals3/internal/sim"
)

// This file is the A6 ablation: the go-back-n incast of A2, but over a
// fabric that actually loses frames. The A2 incast only ever drops messages
// at the receiver (pool exhaustion), so acks and nacks always arrive; here
// the fault plane drops, duplicates, and delays data AND flow-control
// frames with seeded probabilities, exercising the retransmission timer and
// duplicate suppression under realistic loss. The panic arm shows what the
// paper's current policy loses on such a fabric; the go-back-n arm must
// deliver everything, and a same-seed rerun must reproduce it bit-exactly.

// LossyFaults is the A6 fault mix: every class of fault the protocol must
// absorb, at rates high enough to fire many times per run.
func LossyFaults() []model.FaultRule {
	return []model.FaultRule{
		model.NewFault(model.FaultDrop, model.FrameData, 0.03),
		model.NewFault(model.FaultDrop, model.FrameFcAck, 0.05),
		model.NewFault(model.FaultDrop, model.FrameFcNack, 0.05),
		model.NewFault(model.FaultDup, model.FrameData, 0.02),
		model.NewFault(model.FaultDelay, model.FrameData, 0.02).WithDelay(10 * sim.Microsecond),
	}
}

// LossyResult is the A6 ablation outcome.
type LossyResult struct {
	Seed  int64
	Arms  [2]GbnResult // [0] panic policy, [1] go-back-n
	Rerun GbnResult    // go-back-n again under the same seed (determinism probe)
}

// AblationLossyIncast runs the many-to-one incast over the lossy fabric:
// panic arm, go-back-n arm, and a same-seed repeat of the go-back-n arm,
// all concurrently on the experiment driver.
func AblationLossyIncast(p model.Params, senders, msgsPerSender, msgBytes int, seed int64) LossyResult {
	p.Faults = LossyFaults()
	p.FaultSeed = seed
	res := LossyResult{Seed: seed}
	runs := [3]*GbnResult{&res.Arms[0], &res.Arms[1], &res.Rerun}
	netpipe.ForEach(Parallelism, 3, func(i int) {
		*runs[i] = runIncast(p, senders, msgsPerSender, msgBytes, i != 0)
	})
	return res
}

// LossyChecks validates the A6 shape: under real loss the panic policy
// loses the application, go-back-n loses nothing, the fault ledger closes,
// and the seed fully determines the run.
func LossyChecks(r LossyResult) []Check {
	panicArm, gbn := r.Arms[0], r.Arms[1]
	return []Check{
		{
			Name:     "panic policy fails under incast over a lossy fabric",
			Paper:    "the current approach is to panic the node (§4.3)",
			Measured: fmt.Sprintf("delivered %d/%d, panicked=%v", panicArm.Completed, panicArm.Sent, panicArm.Panicked),
			Pass:     panicArm.Panicked && panicArm.Completed < panicArm.Sent,
		},
		{
			Name:  "go-back-n delivers 100% with zero panics under drop/dup/delay",
			Paper: "a simple go-back-n protocol to resolve resource exhaustion (§4.3)",
			Measured: fmt.Sprintf("delivered %d/%d, panicked=%v, %d faults injected",
				gbn.Completed, gbn.Sent, gbn.Panicked, gbn.Faults.Injected()),
			Pass: !gbn.Panicked && gbn.Completed == gbn.Sent && gbn.Faults.Injected() > 0,
		},
		{
			Name:     "fault ledger balances: injected == recovered + condemned",
			Paper:    "telemetry accounts for every injected fault (DESIGN.md §9)",
			Measured: gbn.Faults.String(),
			Pass:     gbn.Faults.Injected() > 0 && gbn.Faults.Open() == 0,
		},
		{
			Name:     "same seed replays bit-identically",
			Paper:    "a given seed produces a bit-identical run (DESIGN.md §9)",
			Measured: fmt.Sprintf("elapsed %v vs %v, counters equal=%v", gbn.Elapsed, r.Rerun.Elapsed, gbn == r.Rerun),
			Pass:     gbn == r.Rerun,
		},
	}
}
