package experiments

import (
	"bytes"
	"strings"
	"testing"

	"portals3/internal/model"
	"portals3/internal/netpipe"
	"portals3/internal/sim"
)

// TestTelemetryBreakdown is the experiments-level acceptance test: a
// telemetry-enabled NetPIPE sweep yields a latency decomposition whose
// structural checks all pass, with sampler series riding along.
func TestTelemetryBreakdown(t *testing.T) {
	exp, bd := TelemetryBreakdown(model.Defaults())
	if bd == nil {
		t.Fatal("no breakdown from telemetry-enabled sweep")
	}
	for _, c := range BreakdownChecks(bd) {
		if !c.Pass {
			t.Errorf("%s: paper %s, measured %s", c.Name, c.Paper, c.Measured)
		}
	}
	if exp.Metric("portals_msg_e2e_ps", "") == nil {
		t.Error("export missing e2e histogram")
	}
	var series bool
	for _, s := range exp.Series {
		if s.Name == "fabric_delivered_total" && len(s.Values) > 0 {
			series = true
		}
	}
	if !series {
		t.Error("export missing sampler series")
	}
	var out bytes.Buffer
	bd.Render(&out)
	for _, want := range []string{"host", "txfw", "wire", "rxfw", "deliver", "e2e", "drift"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("breakdown render missing %q:\n%s", want, out.String())
		}
	}
}

// TestBreakdownChecksNil: a missing breakdown fails loudly, not silently.
func TestBreakdownChecksNil(t *testing.T) {
	checks := BreakdownChecks(nil)
	if len(checks) != 1 || checks[0].Pass {
		t.Errorf("nil breakdown checks = %+v", checks)
	}
}

// TestRenderPercentiles checks the figure-level percentile table on a
// synthetic figure (cheap) and that non-ping-pong figures stay silent.
func TestRenderPercentiles(t *testing.T) {
	f := Figure{
		Title: "synthetic",
		Pat:   netpipe.PingPong,
		Series: []netpipe.Result{{
			Series: "put",
			Points: []netpipe.Point{
				{Bytes: 1, Latency: 5 * sim.Microsecond, P50: 5 * sim.Microsecond, P99: 6 * sim.Microsecond},
				{Bytes: 2, Latency: 5 * sim.Microsecond, P50: 5 * sim.Microsecond, P99: 7 * sim.Microsecond},
			},
		}},
	}
	var out bytes.Buffer
	f.RenderPercentiles(&out)
	for _, want := range []string{"put-p50", "put-p99", "6.00", "7.00"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("percentile table missing %q:\n%s", want, out.String())
		}
	}
	f.Pat = netpipe.Stream
	out.Reset()
	f.RenderPercentiles(&out)
	if out.Len() != 0 {
		t.Errorf("stream figure rendered percentiles:\n%s", out.String())
	}
}
