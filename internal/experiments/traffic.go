// Synthetic point-to-point traffic over the routed torus: every node runs
// a generator that fires fixed-size messages at either uniform-random
// destinations or (with HotFrac > 0) a hot-spot node, paced to a
// configurable fraction of one link's line rate. This is the classic
// network-evaluation pair — uniform traffic measures the fabric's
// distance/contention profile under balanced load, the hot-spot
// concentrates head-of-line blocking on the victim's links — and it is the
// load generator behind the latency-under-load sweeps (EXPERIMENTS.md).
//
// Destinations come from per-sender splitmix64 streams seeded by (Seed,
// sender), a pure function, so the run precomputes every sender's
// destination sequence, derives each receiver's expected message count and
// an order-independent checksum, and verifies delivery without any
// cross-lane bookkeeping during the run.
package experiments

import (
	"fmt"

	"portals3/internal/core"
	"portals3/internal/machine"
	"portals3/internal/sim"
	"portals3/internal/topo"
)

// trafPtl is the portal table index the traffic receivers attach to, and
// trafMatch the match-bits value every message uses.
const (
	trafPtl   = 4
	trafMatch = 0x7a
)

// TrafficConfig describes one traffic-generator run. The embedded
// TorusConfig supplies the torus shape, message size (Bytes), shard count,
// fault plan and observers; Radius and Steps are unused.
type TrafficConfig struct {
	TorusConfig

	Msgs int     // messages each sender fires
	Load float64 // offered load per sender, as a fraction of one link's line rate (0 = 1.0)

	// HotFrac is the probability a message targets HotNode instead of a
	// uniform-random destination; 0 is pure uniform traffic.
	HotFrac float64
	HotNode topo.NodeID

	Seed uint64 // destination-stream seed
}

// DefaultTrafficConfig is the benchmark shape: 512 nodes, 1 KB messages,
// 8 per sender at full offered load, uniform destinations.
func DefaultTrafficConfig() TrafficConfig {
	return TrafficConfig{
		TorusConfig: TorusConfig{Dim: 8, Bytes: 1024, Shards: 1},
		Msgs:        8,
		Load:        1.0,
		Seed:        1,
	}
}

// splitmix64 advances one destination stream.
func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

// msgSum is the order-independent checksum contribution of message k from
// src — receivers accumulate these by addition, so arrival order (which
// contention legitimately reorders) cannot affect the verification.
func msgSum(src topo.NodeID, k uint64) uint64 {
	x := uint64(src)<<32 ^ k
	return splitmix64(&x)
}

// trafficDests precomputes sender src's destination sequence — the same
// pure replay both the sender and the verifier use.
func trafficDests(cfg *TrafficConfig, nodes int, src topo.NodeID) []topo.NodeID {
	state := cfg.Seed<<1 ^ uint64(src)*0xD6E8FEB86659FD93
	splitmix64(&state) // decorrelate adjacent senders' first draws
	out := make([]topo.NodeID, cfg.Msgs)
	for k := range out {
		if cfg.HotFrac > 0 && src != cfg.HotNode {
			if float64(splitmix64(&state)>>11)/(1<<53) < cfg.HotFrac {
				out[k] = cfg.HotNode
				continue
			}
		}
		// Uniform over the other nodes: draw in [0, nodes-1), skip self.
		d := topo.NodeID(splitmix64(&state) % uint64(nodes-1))
		if d >= src {
			d++
		}
		out[k] = d
	}
	return out
}

// TorusTraffic runs one traffic-generator experiment and verifies every
// node received exactly its expected messages (count and checksum).
func TorusTraffic(cfg TrafficConfig) TorusResult {
	m, tp := buildTorusMachine(&cfg.TorusConfig)
	nodes := tp.Nodes()
	if cfg.Msgs < 1 {
		cfg.Msgs = 1
	}
	if cfg.Load <= 0 {
		cfg.Load = 1.0
	}
	if int(cfg.HotNode) >= nodes || cfg.HotNode < 0 {
		panic(fmt.Sprintf("experiments: hot node %d outside the %d-node torus", cfg.HotNode, nodes))
	}
	B := cfg.Bytes

	// Pure precomputation: every sender's destinations, every receiver's
	// expected count and checksum.
	dests := make([][]topo.NodeID, nodes)
	wantCount := make([]int, nodes)
	wantSum := make([]uint64, nodes)
	for id := 0; id < nodes; id++ {
		dests[id] = trafficDests(&cfg, nodes, topo.NodeID(id))
		for k, dst := range dests[id] {
			wantCount[dst]++
			wantSum[dst] += msgSum(topo.NodeID(id), uint64(k))
		}
	}

	// Pacing: one message's serialization time on a link, stretched by the
	// inverse load factor. Integer picoseconds after one float division, so
	// the schedule is deterministic at any shard count.
	interval := sim.Time(float64(sim.BytesAt(int64(B), m.P.LinkBps)) / cfg.Load)
	const start = 100 * sim.Microsecond

	gotCount := make([]int, nodes)
	gotSum := make([]uint64, nodes)
	sendErrs := make([][]string, nodes)
	apps := make([]*machine.App, nodes)
	res := TorusResult{Nodes: nodes}
	for id := 0; id < nodes; id++ {
		id := topo.NodeID(id)
		app, err := m.Spawn(id, fmt.Sprintf("traf-%d", id), machine.Generic, func(app *machine.App) {
			recvEq, err := app.API.EQAlloc(wantCount[id] + 32)
			if err != nil {
				panic(err)
			}
			me, err := app.API.MEAttach(trafPtl, core.ProcessID{Nid: core.NidAny, Pid: core.PidAny},
				trafMatch, 0, core.Retain, core.After)
			if err != nil {
				panic(err)
			}
			recvBuf := app.Alloc(B)
			if _, err := app.API.MDAttach(me, core.MDesc{
				Region: recvBuf, Threshold: core.ThresholdInfinite,
				Options: core.MDOpPut | core.MDManageRemote | core.MDEventStartDisable,
				EQ:      recvEq,
			}, core.Retain); err != nil {
				panic(err)
			}

			sendEq, err := app.API.EQAlloc(cfg.Msgs + 32)
			if err != nil {
				panic(err)
			}
			src := app.Alloc(B)
			payload := make([]byte, B)
			for i := range payload {
				payload[i] = byte(int(id)*167 + i*5 + 3)
			}
			src.WriteAt(0, payload)
			md, err := app.API.MDBind(core.MDesc{
				Region: src, Threshold: core.ThresholdInfinite,
				Options: core.MDEventStartDisable, EQ: sendEq,
			})
			if err != nil {
				panic(err)
			}

			// All receivers armed before traffic.
			if now := app.Proc.Now(); now < start {
				app.Proc.Sleep(start - now)
			}

			// Paced injection: the put is issued at its scheduled instant and
			// the SEND_END waits are deferred, so the offered-load factor —
			// not the NIC's send-completion latency — governs the injection
			// rate, and load > link share genuinely queues.
			sent := 0
			for k, dst := range dests[id] {
				if due := start + sim.Time(k)*interval; app.Proc.Now() < due {
					app.Proc.Sleep(due - app.Proc.Now())
				}
				if err := app.API.PutRegion(md, 0, B, core.NoAck, apps[dst].ID(),
					trafPtl, trafMatch, 0, uint64(k)); err != nil {
					sendErrs[id] = append(sendErrs[id], fmt.Sprintf("msg %d to %d: %v", k, dst, err))
					continue
				}
				sent++
			}
			waitEvents(app, sendEq, core.EventSendEnd, sent)

			// Drain arrivals; each PUT_END carries (initiator, k) for the
			// order-independent checksum.
			for gotCount[id] < wantCount[id] {
				ev, err := app.API.EQWait(recvEq)
				if err != nil && err != core.ErrEQDropped {
					panic(err)
				}
				if ev.Type != core.EventPutEnd {
					continue
				}
				gotCount[id]++
				gotSum[id] += msgSum(topo.NodeID(ev.Initiator.Nid), ev.HdrData)
			}
		})
		if err != nil {
			res.Errors = append(res.Errors, err.Error())
		}
		apps[id] = app
	}
	ras := startObservers(m, cfg.TorusConfig)
	m.Run()
	harvest(m, cfg.TorusConfig, ras, &res)
	appendRankErrors(&res, sendErrs)
	for id := 0; id < nodes; id++ {
		if gotCount[id] != wantCount[id] {
			res.Errors = append(res.Errors, fmt.Sprintf(
				"node %d: received %d messages, want %d", id, gotCount[id], wantCount[id]))
		}
		if gotSum[id] != wantSum[id] {
			res.Errors = append(res.Errors, fmt.Sprintf(
				"node %d: checksum %#x, want %#x", id, gotSum[id], wantSum[id]))
		}
	}
	return res
}

// TrafficMsgs is the run's total message count, for liveness budgets.
func TrafficMsgs(cfg TrafficConfig) int {
	n := cfg.Dim * cfg.Dim * cfg.Dim
	m := cfg.Msgs
	if m < 1 {
		m = 1
	}
	return n * m
}
