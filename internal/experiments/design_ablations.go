package experiments

import (
	"fmt"

	"portals3/internal/machine"
	"portals3/internal/model"
	"portals3/internal/netpipe"
	"portals3/internal/sim"
	"portals3/internal/topo"
)

// Design-choice ablations beyond the paper's figures: each isolates one
// mechanism the paper's text credits for performance and measures the
// system with it removed.

// latAt extracts the latency at an exact size.
func latAt(r netpipe.Result, bytes int) sim.Time {
	for _, pt := range r.Points {
		if pt.Bytes == bytes {
			return pt.Latency
		}
	}
	return 0
}

func bwAt(r netpipe.Result, bytes int) float64 {
	for _, pt := range r.Points {
		if pt.Bytes == bytes {
			return pt.MBps
		}
	}
	return 0
}

// InlineAblation measures the ≤12-byte payload-in-header optimization (§6)
// by disabling it: every message, however small, then needs the full
// two-interrupt receive sequence.
type InlineAblation struct {
	With    netpipe.Result
	Without netpipe.Result
}

// AblationInline runs small-message ping-pong with the optimization on and
// off, both arms concurrently on the experiment driver.
func AblationInline(p model.Params) InlineAblation {
	cfg := netpipe.DefaultConfig()
	cfg.MaxBytes = 64
	p2 := p
	p2.InlineDataMax = 0
	rs := netpipe.RunConcurrent(Parallelism, []netpipe.Job{
		func() netpipe.Result { return netpipe.RunPortals(p, netpipe.OpPut, netpipe.PingPong, cfg) },
		func() netpipe.Result { return netpipe.RunPortals(p2, netpipe.OpPut, netpipe.PingPong, cfg) },
	})
	return InlineAblation{With: rs[0], Without: rs[1]}
}

// Checks validates the expected shape: without inlining, 8-byte latency
// rises by roughly the interrupt + receive-command cost, and the 12-byte
// step disappears.
func (a InlineAblation) Checks() []Check {
	w8, wo8 := latAt(a.With, 8), latAt(a.Without, 8)
	step := latAt(a.Without, 16) - latAt(a.Without, 11)
	return []Check{
		{
			Name:     "disabling the inline path costs small messages the second interrupt",
			Paper:    "12 bytes ride the header packet, saving an interrupt (§6)",
			Measured: fmt.Sprintf("8B latency %.2f -> %.2f us", w8.Micros(), wo8.Micros()),
			Pass:     wo8-w8 > 2*sim.Microsecond,
		},
		{
			Name:     "the 12-byte step vanishes without the optimization",
			Paper:    "the step exists only because of the inline path",
			Measured: fmt.Sprintf("11B->16B step without inlining: %.2f us", step.Micros()),
			Pass:     step < 500*sim.Nanosecond,
		},
	}
}

// CoalesceAblation measures interrupt batching (§4.1: the handler
// "processes all of the new events in the generic EQ each time it is
// invoked").
type CoalesceAblation struct {
	With        netpipe.Result
	Without     netpipe.Result
	IrqWith     uint64
	IrqWithout  uint64
	CoalescedOn uint64
}

// AblationCoalescing streams small messages with and without coalescing,
// both arms concurrently on the experiment driver. Each arm observes its
// own machine, so the interrupt counters are read race-free after the
// driver joins.
func AblationCoalescing(p model.Params) CoalesceAblation {
	var out CoalesceAblation
	cfg1 := netpipe.DefaultConfig()
	cfg1.MaxBytes = 1 << 10
	cfg1.MaxIters = 400

	var m1 *machine.Machine
	cfg1.Observe = func(m *machine.Machine) { m1 = m }

	cfg2 := cfg1
	var m2 *machine.Machine
	cfg2.Observe = func(m *machine.Machine) {
		m2 = m
		for n := topo.NodeID(0); n < 2; n++ {
			m.Node(n).Kernel.NoCoalesce = true
		}
	}

	rs := netpipe.RunConcurrent(Parallelism, []netpipe.Job{
		func() netpipe.Result { return netpipe.RunPortals(p, netpipe.OpPut, netpipe.Stream, cfg1) },
		func() netpipe.Result { return netpipe.RunPortals(p, netpipe.OpPut, netpipe.Stream, cfg2) },
	})
	out.With, out.Without = rs[0], rs[1]
	out.IrqWith = m1.Node(1).Kernel.Interrupts
	out.CoalescedOn = m1.Node(1).Kernel.Coalesced
	out.IrqWithout = m2.Node(1).Kernel.Interrupts
	return out
}

// Checks validates that coalescing absorbs interrupts under streaming load
// without hurting throughput.
func (a CoalesceAblation) Checks() []Check {
	bwW, bwWo := bwAt(a.With, 1024), bwAt(a.Without, 1024)
	return []Check{
		{
			Name:     "coalescing absorbs interrupts under streaming load",
			Paper:    "handler processes all new events per invocation (§4.1)",
			Measured: fmt.Sprintf("receiver interrupts %d (coalesced %d) vs %d without", a.IrqWith, a.CoalescedOn, a.IrqWithout),
			Pass:     a.IrqWithout > a.IrqWith && a.CoalescedOn > 0,
		},
		{
			Name:     "throughput does not improve without coalescing",
			Paper:    "batching exists to amortize the 2 us interrupt",
			Measured: fmt.Sprintf("1KB stream: %.0f MB/s with vs %.0f without", bwW, bwWo),
			Pass:     bwWo <= bwW*1.01,
		},
	}
}

// RxFIFOAblation: shrinking the receive FIFO stalls senders sooner while
// the host decides where data goes, hurting mid-size messages.
type RxFIFOAblation struct {
	Big   netpipe.Result // 16 KB (default)
	Small netpipe.Result // 2 KB
}

// AblationRxFIFO compares ping-pong with the default and a tiny RX FIFO,
// both arms concurrently on the experiment driver.
func AblationRxFIFO(p model.Params) RxFIFOAblation {
	cfg := netpipe.DefaultConfig()
	cfg.MaxBytes = 64 << 10
	p2 := p
	p2.RxFIFOBytes = 2 << 10
	rs := netpipe.RunConcurrent(Parallelism, []netpipe.Job{
		func() netpipe.Result { return netpipe.RunPortals(p, netpipe.OpPut, netpipe.PingPong, cfg) },
		func() netpipe.Result { return netpipe.RunPortals(p2, netpipe.OpPut, netpipe.PingPong, cfg) },
	})
	return RxFIFOAblation{Big: rs[0], Small: rs[1]}
}

// Checks validates the backpressure effect.
func (a RxFIFOAblation) Checks() []Check {
	b8, s8 := latAt(a.Big, 8192), latAt(a.Small, 8192)
	b64, s64 := bwAt(a.Big, 64<<10), bwAt(a.Small, 64<<10)
	return []Check{
		{
			Name:     "a tiny RX FIFO stalls mid-size messages behind the host round trip",
			Paper:    "payload buffers ahead of the RX DMA engine being programmed",
			Measured: fmt.Sprintf("8KB latency %.2f us (16KB FIFO) vs %.2f us (2KB FIFO)", b8.Micros(), s8.Micros()),
			Pass:     s8 > b8,
		},
		{
			Name:     "large transfers recover once the DMA engine is programmed",
			Paper:    "steady state is bandwidth-bound either way",
			Measured: fmt.Sprintf("64KB: %.0f vs %.0f MB/s", b64, s64),
			Pass:     s64 > 0.9*b64,
		},
	}
}

// ChunkRobustness verifies the simulation knob (ChunkBytes) does not drive
// the results: peak bandwidth must be stable across granularities.
func ChunkRobustness(p model.Params) []Check {
	cfg := netpipe.DefaultConfig()
	cfg.MaxBytes = 1 << 20
	sizes := []int{1024, 2048, 8192}
	bws := make([]float64, len(sizes))
	netpipe.ForEach(Parallelism, len(sizes), func(i int) {
		pc := p
		pc.ChunkBytes = sizes[i]
		r := netpipe.RunPortals(pc, netpipe.OpPut, netpipe.PingPong, cfg)
		bws[i] = bwAt(r, 1<<20)
	})
	lo, hi := bws[0], bws[0]
	for _, b := range bws {
		if b < lo {
			lo = b
		}
		if b > hi {
			hi = b
		}
	}
	return []Check{{
		Name:     "results are insensitive to the simulation's chunk granularity",
		Paper:    "(model validity check, not a paper claim)",
		Measured: fmt.Sprintf("1MB bandwidth across chunk sizes %v: %.1f-%.1f MB/s", sizes, lo, hi),
		Pass:     hi-lo < 0.03*hi,
	}}
}
