// Torus halo exchange: the machine-scale workload the sharded kernel is
// measured on. Every node of a d×d×d torus runs a Portals process that
// exchanges fixed-size halo faces with its six axis partners each step —
// the communication pattern of the paper's target applications, and (with
// Radius > 1) a multi-hop routed load where every message crosses
// intermediate routers under per-hop contention.
//
// The same configuration runs at any shard count; TorusResult.Digest is
// the byte string the differential tests compare across shard counts
// (DESIGN.md §11's bit-identical claim, enforced).
package experiments

import (
	"bytes"
	"fmt"
	"time"

	"portals3/internal/core"
	"portals3/internal/fabric"
	"portals3/internal/machine"
	"portals3/internal/model"
	"portals3/internal/sim"
	"portals3/internal/topo"
)

// haloPtl is the portal table index the halo processes attach to, and
// haloMatch the single match-bits value every exchange uses.
const (
	haloPtl   = 4
	haloMatch = 0x51
)

// TorusConfig describes one halo-exchange run.
type TorusConfig struct {
	Dim    int // torus is Dim×Dim×Dim nodes
	Bytes  int // halo face size per direction, bytes
	Steps  int // exchange iterations
	Radius int // axis distance to each partner (hops per message)
	Shards int // event lanes; 1 is the sequential reference

	// GoBackN enables the recovery protocol. Forced on when Faults or a
	// Schedule are configured — a dropped halo face would otherwise
	// deadlock the exchange barrier.
	GoBackN   bool
	Faults    []model.FaultRule
	FaultSeed int64

	// Schedule is the declarative timed-fault plan (link outages, stalls,
	// restarts, bursts), applied deterministically at any shard count.
	Schedule model.FaultSchedule

	Telemetry bool
	FlightRec bool
	Trace     bool // record the wire/firmware timeline (lane-local, merged)

	// Periodic observers, each off when zero: the RAS sampler (counter and
	// link-contention series), the stall detector window, and the heartbeat
	// monitor period. On sharded runs all three fire at the kernel's
	// canonical barrier ticks, so their artifacts reshard bit-identically.
	SamplePeriod sim.Time
	StallWindow  sim.Time
	RASPeriod    sim.Time

	// HostProf arms the host-execution profiler: the run's result carries a
	// machine.HostProfile (wall-clock lane accounting, straggler ranking,
	// memory watermarks). Host-side and nondeterministic — never part of
	// the Digest. Progress additionally registers a live reporter invoked
	// about every ProgressEvery of wall-clock (default 1s) and implies
	// HostProf.
	HostProf      bool
	Progress      func(sim.HostProgress)
	ProgressEvery time.Duration
}

// DefaultTorusConfig is the benchmark shape: 512 nodes, 1 KB faces,
// 2-hop partners.
func DefaultTorusConfig() TorusConfig {
	return TorusConfig{Dim: 8, Bytes: 1024, Steps: 2, Radius: 2, Shards: 1}
}

// TorusResult is one run's outcome plus the artifacts the differential
// tests compare byte-for-byte.
type TorusResult struct {
	Nodes    int
	Shards   int
	FinishPs int64  // virtual completion time
	Windows  uint64 // kernel synchronization windows executed

	StatsText     string // machine counter table
	TelemetryJSON []byte // merged telemetry snapshot (Telemetry on)
	DumpBytes     []byte // end-of-run flight-recorder dump (FlightRec on)
	TraceBytes    []byte // merged Chrome trace (Trace on)
	FaultsLine    string // summed fault-ledger counters (faults configured)

	// FaultStats is the numeric fault-ledger snapshot behind FaultsLine,
	// for callers (the soak driver) that audit the counters directly.
	FaultStats fabric.FaultStats

	// Errors lists halo verification failures; empty on a correct run.
	Errors []string

	// HostProfile is the host-execution profile (HostProf on). Wall-clock
	// is nondeterministic, so Digest deliberately never reads this field —
	// TestTorusDifferentialHostProfiler enforces that exclusion.
	HostProfile *machine.HostProfile
}

// Digest concatenates every simulated artifact of the run — everything
// that must be invariant under resharding, and nothing (wall-clock, host
// scheduling) that may not.
func (r TorusResult) Digest() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "nodes=%d finish_ps=%d windows=%d\n", r.Nodes, r.FinishPs, r.Windows)
	fmt.Fprintf(&b, "errors=%q\n", r.Errors)
	fmt.Fprintf(&b, "faults=%s\n", r.FaultsLine)
	b.WriteString("--- stats\n")
	b.WriteString(r.StatsText)
	b.WriteString("--- telemetry\n")
	b.Write(r.TelemetryJSON)
	b.WriteString("--- dump\n")
	b.Write(r.DumpBytes)
	b.WriteString("--- trace\n")
	b.Write(r.TraceBytes)
	return b.Bytes()
}

// pattern is the byte each node writes at offset i of its face toward
// direction d — a pure function of (node, d, i), so any observer can
// recompute what a slot must hold.
func pattern(node topo.NodeID, d, i int) byte {
	return byte(int(node)*131 + d*31 + i*7 + 11)
}

// haloDirs is the fixed direction order: +X,-X,+Y,-Y,+Z,-Z. opp(d) is d^1.
var haloDirs = [6]topo.Dir{
	{Axis: topo.X, Sign: 1}, {Axis: topo.X, Sign: -1},
	{Axis: topo.Y, Sign: 1}, {Axis: topo.Y, Sign: -1},
	{Axis: topo.Z, Sign: 1}, {Axis: topo.Z, Sign: -1},
}

// TorusHalo runs one halo exchange and verifies every received face.
func TorusHalo(cfg TorusConfig) TorusResult {
	if cfg.Radius < 1 {
		cfg.Radius = 1
	}
	m, tp := buildTorusMachine(&cfg)

	nodes := tp.Nodes()
	B := cfg.Bytes

	// partner[n][d] is the node Radius hops along direction d — the torus
	// is symmetric, so partner(partner(n,d), opp(d)) == n.
	partner := make([][6]topo.NodeID, nodes)
	for id := 0; id < nodes; id++ {
		for d := 0; d < 6; d++ {
			cur := topo.NodeID(id)
			for r := 0; r < cfg.Radius; r++ {
				next, ok := tp.Neighbor(cur, haloDirs[d])
				if !ok {
					panic("experiments: torus neighbor missing")
				}
				cur = next
			}
			partner[id][d] = cur
		}
	}

	recvBufs := make([]core.Region, nodes)
	apps := make([]*machine.App, nodes)
	var spawnErrs []string
	for id := 0; id < nodes; id++ {
		id := topo.NodeID(id)
		app, err := m.Spawn(id, fmt.Sprintf("halo-%d", id), machine.Generic, func(app *machine.App) {
			recvEq, err := app.API.EQAlloc(6*cfg.Steps + 32)
			if err != nil {
				panic(err)
			}
			me, err := app.API.MEAttach(haloPtl, core.ProcessID{Nid: core.NidAny, Pid: core.PidAny},
				haloMatch, 0, core.Retain, core.After)
			if err != nil {
				panic(err)
			}
			recvBuf := app.Alloc(6 * B)
			if _, err := app.API.MDAttach(me, core.MDesc{
				Region: recvBuf, Threshold: core.ThresholdInfinite,
				Options: core.MDOpPut | core.MDManageRemote | core.MDEventStartDisable,
				EQ:      recvEq,
			}, core.Retain); err != nil {
				panic(err)
			}
			recvBufs[id] = recvBuf

			sendEq, err := app.API.EQAlloc(6*cfg.Steps + 32)
			if err != nil {
				panic(err)
			}
			src := app.Alloc(6 * B)
			face := make([]byte, B)
			for d := 0; d < 6; d++ {
				for i := range face {
					face[i] = pattern(id, d, i)
				}
				src.WriteAt(d*B, face)
			}
			md, err := app.API.MDBind(core.MDesc{
				Region: src, Threshold: core.ThresholdInfinite,
				Options: core.MDEventStartDisable, EQ: sendEq,
			})
			if err != nil {
				panic(err)
			}

			// Let every node finish posting its match entry before traffic.
			app.Proc.Sleep(100 * sim.Microsecond)

			for step := 0; step < cfg.Steps; step++ {
				for d := 0; d < 6; d++ {
					tgt := apps[partner[id][d]].ID()
					if err := app.API.PutRegion(md, d*B, B, core.NoAck, tgt,
						haloPtl, haloMatch, (d^1)*B, uint64(step)); err != nil {
						panic(err)
					}
				}
				waitEvents(app, sendEq, core.EventSendEnd, 6)
				waitEvents(app, recvEq, core.EventPutEnd, 6)
			}
		})
		if err != nil {
			spawnErrs = append(spawnErrs, err.Error())
		}
		apps[id] = app
	}
	ras := startObservers(m, cfg)
	m.Run()

	res := TorusResult{Nodes: nodes, Errors: spawnErrs}
	harvest(m, cfg, ras, &res)

	// Verify every received face against the sender's pure pattern.
	got := make([]byte, B)
	for id := 0; id < nodes; id++ {
		for e := 0; e < 6; e++ {
			from := partner[id][e]
			recvBufs[id].ReadAt(e*B, got)
			for i := range got {
				if got[i] != pattern(from, e^1, i) {
					res.Errors = append(res.Errors, fmt.Sprintf(
						"node %d slot %d byte %d: got %#x want %#x (from node %d)",
						id, e, i, got[i], pattern(from, e^1, i), from))
					break
				}
			}
		}
	}
	return res
}

// waitEvents consumes events from eq until n of the wanted type arrived.
func waitEvents(app *machine.App, eq core.EQHandle, want core.EventType, n int) {
	for got := 0; got < n; {
		ev, err := app.API.EQWait(eq)
		if err != nil && err != core.ErrEQDropped {
			panic(err)
		}
		if ev.Type == want {
			got++
		}
	}
}
