package experiments

import (
	"strings"
	"testing"

	"portals3/internal/model"
)

// TestFigure4Calibration is the calibration regression test: the paper's
// headline latencies must reproduce within 5%. It runs the full Figure 4
// (1 B – 1 KB, four series), which is cheap.
func TestFigure4Calibration(t *testing.T) {
	f4 := Figure4(model.Defaults())
	for _, c := range LatencyChecks(f4) {
		if !c.Pass {
			t.Errorf("%s: paper %s, measured %s", c.Name, c.Paper, c.Measured)
		}
	}
}

// TestBandwidthFiguresCalibration validates Figures 5–7 against the
// paper's bandwidth numbers. Skipped with -short: the full 8 MB sweeps of
// twelve curves take a while.
func TestBandwidthFiguresCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("full 8MB sweeps; run without -short")
	}
	p := model.Defaults()
	f5, f6, f7 := Figure5(p), Figure6(p), Figure7(p)
	for _, c := range BandwidthChecks(f5, f6, f7) {
		if !c.Pass {
			t.Errorf("%s: paper %s, measured %s", c.Name, c.Paper, c.Measured)
		}
	}
}

func TestAblationAccelerated(t *testing.T) {
	a := AblationAccelerated(model.Defaults())
	for _, c := range a.Checks() {
		if !c.Pass {
			t.Errorf("%s: %s", c.Name, c.Measured)
		}
	}
}

func TestAblationGoBackN(t *testing.T) {
	r := AblationGoBackN(model.Defaults(), 4, 30, 2048)
	for _, c := range GbnChecks(r) {
		if !c.Pass {
			t.Errorf("%s: %s", c.Name, c.Measured)
		}
	}
}

func TestAblationLossyIncast(t *testing.T) {
	r := AblationLossyIncast(model.Defaults(), 4, 30, 2048, 0xfa017)
	for _, c := range LossyChecks(r) {
		if !c.Pass {
			t.Errorf("%s: %s", c.Name, c.Measured)
		}
	}
}

func TestRenderFigureProducesTable(t *testing.T) {
	f := Figure4(model.Defaults())
	var sb strings.Builder
	f.Render(&sb)
	out := sb.String()
	for _, want := range []string{"put", "get", "mpich2", "mpich-1.2.6", "Figure 4"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered figure missing %q", want)
		}
	}
	if len(strings.Split(out, "\n")) < 10 {
		t.Error("suspiciously short table")
	}
}

func TestAblationInline(t *testing.T) {
	a := AblationInline(model.Defaults())
	for _, c := range a.Checks() {
		if !c.Pass {
			t.Errorf("%s: %s", c.Name, c.Measured)
		}
	}
}

func TestAblationCoalescing(t *testing.T) {
	a := AblationCoalescing(model.Defaults())
	for _, c := range a.Checks() {
		if !c.Pass {
			t.Errorf("%s: %s", c.Name, c.Measured)
		}
	}
}

func TestAblationRxFIFO(t *testing.T) {
	a := AblationRxFIFO(model.Defaults())
	for _, c := range a.Checks() {
		if !c.Pass {
			t.Errorf("%s: %s", c.Name, c.Measured)
		}
	}
}

func TestChunkRobustness(t *testing.T) {
	for _, c := range ChunkRobustness(model.Defaults()) {
		if !c.Pass {
			t.Errorf("%s: %s", c.Name, c.Measured)
		}
	}
}
