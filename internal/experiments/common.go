// Shared scaffolding for the machine-scale torus workloads: every workload
// (halo exchange, collective trees, synthetic traffic) builds the same
// sharded torus machine from its TorusConfig, starts the same periodic
// observers, and harvests the same digest artifacts. Keeping the scaffold
// in one place is what makes the per-workload differential tests — the
// bit-identity claim of DESIGN.md §11 — compare like with like.
package experiments

import (
	"bytes"
	"fmt"

	"portals3/internal/machine"
	"portals3/internal/model"
	"portals3/internal/topo"
)

// buildTorusMachine constructs the sharded d×d×d torus machine one
// workload run executes on, applying the config's fault plan and enabling
// the requested artifact recorders. Shards normalizes in place so the
// result reports the value actually used.
func buildTorusMachine(cfg *TorusConfig) (*machine.Machine, *topo.Topology) {
	if cfg.Dim < 3 {
		panic("experiments: torus workloads need Dim >= 3 (smaller axes have no wraparound)")
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	p := model.Defaults()
	p.Faults = cfg.Faults
	p.FaultSeed = cfg.FaultSeed
	p.Schedule = cfg.Schedule
	tp, err := topo.XT3Torus(cfg.Dim, cfg.Dim, cfg.Dim)
	if err != nil {
		panic(err)
	}
	m := machine.NewSharded(p, tp, cfg.Shards)
	if cfg.GoBackN || len(cfg.Faults) > 0 || len(cfg.Schedule) > 0 {
		m.EnableGoBackN()
	}
	if cfg.Telemetry {
		m.EnableTelemetry()
	}
	if cfg.FlightRec {
		m.EnableFlightRecorder(0)
	}
	if cfg.Trace {
		m.EnableTracing()
	}
	if cfg.HostProf || cfg.Progress != nil {
		m.EnableHostProfile()
		if cfg.Progress != nil {
			m.SetProgress(cfg.ProgressEvery, cfg.Progress)
		}
	}
	return m, tp
}

// startObservers begins the configured periodic observers. Call it after
// every node exists (the heartbeat driver and monitor capture the
// instantiated node set).
func startObservers(m *machine.Machine, cfg TorusConfig) *machine.RAS {
	if cfg.SamplePeriod > 0 {
		m.StartSampler(cfg.SamplePeriod)
	}
	if cfg.StallWindow > 0 {
		m.StartStallDetector(cfg.StallWindow)
	}
	if cfg.RASPeriod > 0 {
		return m.StartRAS(cfg.RASPeriod)
	}
	return nil
}

// harvest collects the post-run artifacts every workload digest carries:
// finish time, window count, counter table, telemetry/dump/trace bytes,
// the fault ledger, failure reports and RAS verdicts.
func harvest(m *machine.Machine, cfg TorusConfig, ras *machine.RAS, res *TorusResult) {
	res.Shards = cfg.Shards
	res.FinishPs = int64(m.S.Now())
	res.Windows = m.ShardKernel().Windows
	res.StatsText = m.Stats().String()
	if cfg.Telemetry {
		var tb bytes.Buffer
		if err := m.Telemetry().WriteJSON(&tb, m.S.Now()); err != nil {
			panic(err)
		}
		res.TelemetryJSON = tb.Bytes()
	}
	if cfg.FlightRec {
		res.DumpBytes = m.TakeDump("end of run").Bytes()
	}
	if cfg.Trace {
		var trb bytes.Buffer
		if err := m.Trace().WriteChrome(&trb); err != nil {
			panic(err)
		}
		res.TraceBytes = trb.Bytes()
	}
	if st, ok := m.FaultSnapshot(); ok {
		res.FaultsLine = st.String()
		res.FaultStats = st
	}
	for _, r := range m.Reports() {
		res.Errors = append(res.Errors, "failure report: "+r.String())
	}
	if ras != nil {
		for _, f := range ras.Dead() {
			res.Errors = append(res.Errors, "ras: "+f.String())
		}
	}
	if cfg.HostProf || cfg.Progress != nil {
		res.HostProfile = m.HostProfile()
	}
}

// appendRankErrors flattens per-rank error slots (each rank appends only
// to its own slot during the run, so the slices are race-free on a sharded
// machine) into the result in rank order.
func appendRankErrors(res *TorusResult, rankErrs [][]string) {
	for rank, errs := range rankErrs {
		for _, e := range errs {
			res.Errors = append(res.Errors, fmt.Sprintf("rank %d: %s", rank, e))
		}
	}
}
