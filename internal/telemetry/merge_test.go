package telemetry

import (
	"bytes"
	"math/rand"
	"testing"

	"portals3/internal/sim"
)

// TestMergedHistogramQuantilesExact is the quantile half of the merge
// contract: a histogram merged from per-lane partials must report the same
// p50/p90/p99/p999 (and count, sum, min, max, mean) as one that saw the
// whole observation stream itself — not merely equal bucket sums. The
// stream is partitioned two ways (round-robin and contiguous blocks) to
// model different node-to-lane assignments of the same run.
func TestMergedHistogramQuantilesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	stream := make([]int64, 20000)
	for i := range stream {
		// Mixed scales, like latency observations: most small, a heavy tail.
		switch i % 7 {
		case 0:
			stream[i] = rng.Int63n(100)
		case 1, 2:
			stream[i] = 1000 + rng.Int63n(10000)
		default:
			stream[i] = rng.Int63n(1 << uint(10+rng.Intn(30)))
		}
	}

	ref := NewHistogram()
	for _, v := range stream {
		ref.Observe(v)
	}

	partitions := map[string]func(i int) int{
		"round-robin": func(i int) int { return i % 4 },
		"blocks":      func(i int) int { return i * 4 / len(stream) },
	}
	for name, laneOf := range partitions {
		lanes := make([]*Histogram, 4)
		for i := range lanes {
			lanes[i] = NewHistogram()
		}
		for i, v := range stream {
			lanes[laneOf(i)].Observe(v)
		}
		merged := NewHistogram()
		for _, h := range lanes {
			merged.Merge(h)
		}
		if merged.Count() != ref.Count() || merged.Sum() != ref.Sum() {
			t.Fatalf("%s: merged count/sum %d/%d != reference %d/%d",
				name, merged.Count(), merged.Sum(), ref.Count(), ref.Sum())
		}
		if merged.Min() != ref.Min() || merged.Max() != ref.Max() {
			t.Fatalf("%s: merged min/max %d/%d != reference %d/%d",
				name, merged.Min(), merged.Max(), ref.Min(), ref.Max())
		}
		if merged.Mean() != ref.Mean() {
			t.Fatalf("%s: merged mean %g != reference %g", name, merged.Mean(), ref.Mean())
		}
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
			if got, want := merged.Quantile(q), ref.Quantile(q); got != want {
				t.Fatalf("%s: merged p%g = %d, reference = %d", name, 100*q, got, want)
			}
		}
	}
}

// TestMergedTelemetryExportMatchesSequential models the sharded-observer
// merge end to end at the telemetry layer: per-lane instances holding (a)
// the same histogram fed disjoint halves of one stream, (b) per-lane
// partial series at identical sample times, and (c) single-owner per-node
// series and gauges — merged, they must export byte-identical JSON to an
// instance that recorded everything itself.
func TestMergedTelemetryExportMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seq := New()
	laneA, laneB := New(), New()

	// (a) Shared histogram, observations split across lanes.
	hSeq := seq.Reg.Histogram("portals_msg_e2e_by_hops_ps", HopsLabel(2))
	hA := laneA.Reg.Histogram("portals_msg_e2e_by_hops_ps", HopsLabel(2))
	hB := laneB.Reg.Histogram("portals_msg_e2e_by_hops_ps", HopsLabel(2))
	for i := 0; i < 5000; i++ {
		v := rng.Int63n(1 << 20)
		hSeq.Observe(v)
		if i%2 == 0 {
			hA.Observe(v)
		} else {
			hB.Observe(v)
		}
	}

	// (b) Fabric-aggregate partials: same timestamps, values sum.
	sSeq := seq.SeriesFor("fabric_messages_total")
	sA := laneA.SeriesFor("fabric_messages_total")
	sB := laneB.SeriesFor("fabric_messages_total")
	for i := 1; i <= 10; i++ {
		at := sim.Time(i) * sim.Microsecond
		a, b := float64(rng.Intn(100)), float64(rng.Intn(100))
		sSeq.Append(at, a+b)
		sA.Append(at, a)
		sB.Append(at, b)
	}

	// (c) Single-owner artifacts: one node per lane.
	for i, tel := range []*Telemetry{laneA, laneB} {
		nl := NodeLabel(i)
		ns := tel.SeriesFor("node_fw_heartbeat_total", nl)
		nsSeq := seq.SeriesFor("node_fw_heartbeat_total", nl)
		for k := 1; k <= 5; k++ {
			at := sim.Time(k) * sim.Microsecond
			v := float64(10*i + k)
			ns.Append(at, v)
			nsSeq.Append(at, v)
		}
		tel.Reg.Gauge("node_evq_high", nl).Set(float64(3 + i))
		seq.Reg.Gauge("node_evq_high", nl).Set(float64(3 + i))
		tel.Reg.Counter("node_msgs_total", nl).Add(uint64(100 + i))
		seq.Reg.Counter("node_msgs_total", nl).Add(uint64(100 + i))
	}

	merged := Merged(laneA, laneB)
	now := 10 * sim.Microsecond
	var wantJSON, gotJSON bytes.Buffer
	if err := seq.WriteJSON(&wantJSON, now); err != nil {
		t.Fatal(err)
	}
	if err := merged.WriteJSON(&gotJSON, now); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON.Bytes(), gotJSON.Bytes()) {
		t.Fatalf("merged JSON export differs from sequential:\nseq: %s\ngot: %s",
			wantJSON.Bytes(), gotJSON.Bytes())
	}

	var wantProm, gotProm bytes.Buffer
	if err := seq.WritePrometheus(&wantProm, now); err != nil {
		t.Fatal(err)
	}
	if err := merged.WritePrometheus(&gotProm, now); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantProm.Bytes(), gotProm.Bytes()) {
		t.Fatalf("merged Prometheus export differs from sequential:\nseq: %s\ngot: %s",
			wantProm.Bytes(), gotProm.Bytes())
	}

	// The merged quantiles are the sequential machine's, not approximations.
	em := merged.Snapshot(now)
	es := seq.Snapshot(now)
	for i := range es.Metrics {
		if es.Metrics[i].Kind != "histogram" {
			continue
		}
		if em.Metrics[i].P50 != es.Metrics[i].P50 || em.Metrics[i].P99 != es.Metrics[i].P99 {
			t.Fatalf("metric %s: merged p50/p99 %d/%d != sequential %d/%d",
				es.Metrics[i].Name, em.Metrics[i].P50, em.Metrics[i].P99,
				es.Metrics[i].P50, es.Metrics[i].P99)
		}
	}
}

// TestMergedSeriesMisaligned pins the defensive path: series whose sample
// times do not line up merge losslessly (appended, not silently dropped or
// mis-summed).
func TestMergedSeriesMisaligned(t *testing.T) {
	a, b := New(), New()
	sa := a.SeriesFor("fabric_messages_total")
	sb := b.SeriesFor("fabric_messages_total")
	sa.Append(1*sim.Microsecond, 5)
	sb.Append(1*sim.Microsecond, 7)
	sb.Append(2*sim.Microsecond, 9) // only lane b sampled at t=2

	m := Merged(a, b)
	s := m.SeriesFor("fabric_messages_total")
	if len(s.Samples) != 2 {
		t.Fatalf("merged samples = %d, want 2", len(s.Samples))
	}
	if s.Samples[0].V != 12 {
		t.Fatalf("aligned sample = %g, want 12", s.Samples[0].V)
	}
	if s.Samples[1].T != 2*sim.Microsecond || s.Samples[1].V != 9 {
		t.Fatalf("trailing sample = (%v, %g), want (2us, 9)", s.Samples[1].T, s.Samples[1].V)
	}
}
