// Package telemetry is the observability layer of the simulated machine:
// a metrics registry (counters, gauges, log-bucketed histograms), per-
// message latency attribution records, virtual-time series filled by the
// machine's RAS sampler, and Prometheus/JSON exporters.
//
// The paper's contribution is explaining where each microsecond of a
// Portals message goes — trap cost, HyperTransport crossings, firmware
// processing on the 500 MHz PowerPC, wire time, and event delivery. This
// package reproduces that decomposition: every message carries a MsgRec
// stamped at each lifecycle boundary, and the deltas between consecutive
// stamps partition the end-to-end latency exactly, so per-segment
// histograms always sum to the end-to-end histogram.
//
// Telemetry follows the repository's observability discipline (see
// trace.Tracer): a nil *Telemetry is valid and disabled, every method is
// nil-safe, and a disabled machine pays one pointer test per site with
// zero allocations.
package telemetry

import (
	"portals3/internal/sim"
)

// Lifecycle stamp indices, in message order. Consecutive deltas form the
// five latency segments; see Seg.
const (
	StampSubmit  = iota // host: driver accepts the send (post-trap, post-marshal)
	StampFwTx           // firmware: TX mailbox command dequeued on the PowerPC
	StampWire           // fabric: header granted credits, injected into the torus
	StampRxHdr          // fabric: header arrived at the destination NIC
	StampEvPost         // firmware: completion event push to host memory begins
	StampDeliver        // host: driver delivers the completion to the library
	NumStamps
)

// Seg identifies one latency segment — the interval between two
// consecutive lifecycle stamps.
type Seg int

// Segments of a message's end-to-end latency, mapping onto the paper's
// measured cost components (DESIGN.md, "Latency attribution").
const (
	SegHost    Seg = iota // submit -> fw-tx: command write, HT crossing, mailbox wait
	SegTxFw               // fw-tx -> wire: TX state machine, header/payload fetch
	SegWire               // wire -> rx-hdr: router traversal and link time
	SegRxFw               // rx-hdr -> ev-post: RX firmware, matching, payload deposit
	SegDeliver            // ev-post -> deliver: event write, interrupt, host dispatch
	NumSegs
)

// segNames are the stage label values used on exported metrics.
var segNames = [NumSegs]string{"host", "txfw", "wire", "rxfw", "deliver"}

// String returns the stage label ("host", "txfw", ...).
func (s Seg) String() string {
	if s < 0 || s >= NumSegs {
		return "unknown"
	}
	return segNames[s]
}

// MsgRec is the lifecycle record riding on one message. Records are pooled
// on the owning Telemetry; they exist only while telemetry is enabled, so
// a nil *MsgRec (the disabled case) makes every stamp a no-op.
type MsgRec struct {
	t     [NumStamps]sim.Time
	bytes int
	hops  int // route length, set at wire injection; 0 until stamped
}

// Stamp records the virtual time of one lifecycle boundary. Only the first
// stamp at each boundary is kept: a retransmitted message keeps its
// original injection time, charging the delay to the segment that caused
// it.
func (r *MsgRec) Stamp(stamp int, t sim.Time) {
	if r == nil || r.t[stamp] >= 0 {
		return
	}
	r.t[stamp] = t
}

// SetHops records the message's route length (hop count), set by the
// fabric at header injection. Like Stamp, only the first value sticks — a
// go-back-n retransmission follows the same fixed path.
func (r *MsgRec) SetHops(hops int) {
	if r == nil || r.hops != 0 {
		return
	}
	r.hops = hops
}

// reset prepares a pooled record for reuse.
func (r *MsgRec) reset(bytes int) {
	for i := range r.t {
		r.t[i] = -1
	}
	r.bytes = bytes
	r.hops = 0
}

// complete reports whether every boundary was stamped.
func (r *MsgRec) complete() bool {
	for _, t := range r.t {
		if t < 0 {
			return false
		}
	}
	return true
}

// Telemetry is the per-machine telemetry handle. A nil *Telemetry is valid
// and disabled. All instruments hang off Reg; the per-segment histograms
// are additionally cached as fields so the completion path does no lookup.
type Telemetry struct {
	Reg *Registry

	seg [NumSegs]*Histogram // segment latency, picoseconds
	e2e *Histogram          // end-to-end latency, picoseconds
	msg *Histogram          // message size, bytes

	completed  *Counter // records finished with all stamps present
	incomplete *Counter // records dropped with stamps missing

	// byHops caches the per-hop-count end-to-end histograms (the latency-
	// under-load decomposition), indexed by route length and registered on
	// first completion at that distance.
	byHops []*Histogram

	series  []*Series
	sindex  map[string]*Series
	recFree []*MsgRec
}

// New returns an enabled telemetry handle with the message-attribution
// instruments pre-registered.
func New() *Telemetry {
	t := &Telemetry{Reg: NewRegistry(), sindex: map[string]*Series{}}
	for s := Seg(0); s < NumSegs; s++ {
		t.seg[s] = t.Reg.Histogram("portals_msg_segment_ps", L("stage", s.String()))
	}
	t.e2e = t.Reg.Histogram("portals_msg_e2e_ps")
	t.msg = t.Reg.Histogram("portals_msg_bytes")
	t.completed = t.Reg.Counter("portals_msg_records_completed")
	t.incomplete = t.Reg.Counter("portals_msg_records_incomplete")
	return t
}

// Enabled reports whether telemetry is live.
func (t *Telemetry) Enabled() bool { return t != nil }

// NewMsgRec returns a fresh lifecycle record for a message of the given
// payload size, or nil when telemetry is disabled.
func (t *Telemetry) NewMsgRec(bytes int) *MsgRec {
	if t == nil {
		return nil
	}
	var r *MsgRec
	if n := len(t.recFree); n > 0 {
		r = t.recFree[n-1]
		t.recFree = t.recFree[:n-1]
	} else {
		r = &MsgRec{}
	}
	r.reset(bytes)
	return r
}

// FinishMsg consumes a record at app delivery: the five segment deltas and
// the end-to-end latency feed their histograms, then the record returns to
// the pool. Records with missing stamps (e.g. a message cut short by a
// killed node) only bump the incomplete counter.
func (t *Telemetry) FinishMsg(r *MsgRec) {
	if t == nil || r == nil {
		return
	}
	if r.complete() {
		for s := Seg(0); s < NumSegs; s++ {
			t.seg[s].Observe(int64(r.t[s+1] - r.t[s]))
		}
		e2e := int64(r.t[StampDeliver] - r.t[StampSubmit])
		t.e2e.Observe(e2e)
		t.HopsHist(r.hops).Observe(e2e)
		t.msg.Observe(int64(r.bytes))
		t.completed.Inc()
	} else {
		t.incomplete.Inc()
	}
	t.recFree = append(t.recFree, r)
}

// DropMsgRec returns a record to the pool without recording it — the
// reclaim path for messages recycled before delivery.
func (t *Telemetry) DropMsgRec(r *MsgRec) {
	if t == nil || r == nil {
		return
	}
	t.incomplete.Inc()
	t.recFree = append(t.recFree, r)
}

// SegmentHist returns the histogram for one latency segment.
func (t *Telemetry) SegmentHist(s Seg) *Histogram {
	if t == nil {
		return nil
	}
	return t.seg[s]
}

// HopsHist returns the end-to-end latency histogram for messages whose
// route is hops links long (`portals_msg_e2e_by_hops_ps{hops="k"}`) — the
// latency-under-load decomposition per distance. The cache is bounded by
// the topology diameter; a nil *Telemetry returns nil.
func (t *Telemetry) HopsHist(hops int) *Histogram {
	if t == nil || hops < 0 {
		return nil
	}
	for hops >= len(t.byHops) {
		t.byHops = append(t.byHops, nil)
	}
	if t.byHops[hops] == nil {
		t.byHops[hops] = t.Reg.Histogram("portals_msg_e2e_by_hops_ps", HopsLabel(hops))
	}
	return t.byHops[hops]
}

// E2EHist returns the end-to-end latency histogram.
func (t *Telemetry) E2EHist() *Histogram {
	if t == nil {
		return nil
	}
	return t.e2e
}

// Sample is one time-series point: a value at a virtual time.
type Sample struct {
	T sim.Time
	V float64
}

// Series is one named virtual-time series, filled by the RAS sampler.
// labelStr caches the rendered label set, like Metric's — the per-link
// utilization series alone number in the thousands at machine scale.
type Series struct {
	Name     string
	Labels   []Label
	labelStr string
	Samples  []Sample
}

// Append adds a sample. A nil *Series ignores it.
func (s *Series) Append(t sim.Time, v float64) {
	if s != nil {
		s.Samples = append(s.Samples, Sample{T: t, V: v})
	}
}

// SeriesFor returns the series for (name, labels), creating it if needed.
// Callers cache the pointer; the map lookup happens once per series.
func (t *Telemetry) SeriesFor(name string, labels ...Label) *Series {
	if t == nil {
		return nil
	}
	ls := append([]Label(nil), labels...)
	lstr := labelString(ls)
	key := name + "{" + lstr + "}"
	if s, ok := t.sindex[key]; ok {
		return s
	}
	s := &Series{Name: name, Labels: ls, labelStr: lstr}
	t.series = append(t.series, s)
	t.sindex[key] = s
	return s
}

// AllSeries returns every series in creation order.
func (t *Telemetry) AllSeries() []*Series {
	if t == nil {
		return nil
	}
	return t.series
}
