// Merging: folding several telemetry instances into one snapshot. Sharded
// machines give every event lane its own Telemetry so the hot path stays
// single-goroutine and lock-free; at export time the lanes are merged in
// lane order into a fresh instance. Counters and histogram buckets are
// sums, so the merged result is independent of how nodes were partitioned
// over lanes — the property the differential tests assert.
package telemetry

// Merge folds another histogram's observations into h. Merging is exact:
// counts, sums and per-bucket tallies add, min/max combine, so a merged
// histogram is indistinguishable from one that saw every observation
// itself.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil || o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.count == 0 || o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i := range o.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// MergeFrom folds another registry into r: counters add, histograms merge,
// gauges take the other registry's value when it is non-zero (each gauge
// is owned by exactly one node, hence one lane, so at most one source has
// a value). Instruments missing from r are created.
func (r *Registry) MergeFrom(o *Registry) {
	for _, m := range o.Metrics() {
		switch m.Kind {
		case KindCounter:
			r.lookup(m.Name, KindCounter, m.Labels).C.Add(m.C.Value())
		case KindGauge:
			g := r.lookup(m.Name, KindGauge, m.Labels).G
			if v := m.G.Value(); v != 0 {
				g.Set(v)
			}
		case KindHistogram:
			r.lookup(m.Name, KindHistogram, m.Labels).H.Merge(m.H)
		}
	}
}

// mergeSeriesFrom folds another telemetry's sampler series into t. Lane-
// local samplers tick at canonical barrier times (sim.Kernel.Every), so two
// lanes holding the same series — the per-lane fabric partials — hold
// samples at identical timestamps, which add pointwise; series owned by a
// single lane (everything per-node, per-link) copy through. The defensive
// append keeps a merge of misaligned series lossless rather than silently
// wrong.
func (t *Telemetry) mergeSeriesFrom(o *Telemetry) {
	for _, s := range o.series {
		dst := t.SeriesFor(s.Name, s.Labels...)
		for i, smp := range s.Samples {
			if i < len(dst.Samples) && dst.Samples[i].T == smp.T {
				dst.Samples[i].V += smp.V
			} else {
				dst.Samples = append(dst.Samples, smp)
			}
		}
	}
}

// Merged builds one telemetry instance from per-lane parts, merged in
// order: registry instruments via MergeFrom, sampler series pointwise (the
// result is independent of the node partition, like every other merged
// artifact).
func Merged(parts ...*Telemetry) *Telemetry {
	out := New()
	for _, p := range parts {
		if p != nil {
			out.Reg.MergeFrom(p.Reg)
			out.mergeSeriesFrom(p)
		}
	}
	return out
}
