// Exporters: Prometheus text exposition format and a JSON document that
// round-trips through ReadJSON for offline rendering (cmd/p3stat). Both
// emit metrics in sorted (name, labels) order and series in creation
// order, so exports of a deterministic run are byte-identical.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"portals3/internal/sim"
)

// promLabels renders a pre-rendered label string for the exposition
// format, with an optional extra label (used for histogram `le` bounds).
func promLabels(s, extraK, extraV string) string {
	if extraK != "" {
		if s != "" {
			s += ","
		}
		s += fmt.Sprintf("%s=%q", extraK, extraV)
	}
	if s == "" {
		return ""
	}
	return "{" + s + "}"
}

// WritePrometheus emits every registered metric in the Prometheus text
// exposition format, plus one gauge per sampler series holding its most
// recent sample. now is the virtual time of the export, emitted as the
// portals_sim_time_ps gauge.
func (t *Telemetry) WritePrometheus(w io.Writer, now sim.Time) error {
	if t == nil {
		return nil
	}
	bw := &errWriter{w: w}
	fmt.Fprintf(bw, "# TYPE portals_sim_time_ps gauge\nportals_sim_time_ps %d\n", int64(now))
	lastType := ""
	for _, m := range t.Reg.Metrics() {
		if m.Name != lastType {
			lastType = m.Name
			kind := "counter"
			switch m.Kind {
			case KindGauge:
				kind = "gauge"
			case KindHistogram:
				kind = "histogram"
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.Name, kind)
		}
		switch m.Kind {
		case KindCounter:
			fmt.Fprintf(bw, "%s%s %d\n", m.Name, promLabels(m.labelStr, "", ""), m.C.Value())
		case KindGauge:
			fmt.Fprintf(bw, "%s%s %g\n", m.Name, promLabels(m.labelStr, "", ""), m.G.Value())
		case KindHistogram:
			var cum uint64
			for _, b := range m.H.Buckets() {
				cum += b.Count
				fmt.Fprintf(bw, "%s_bucket%s %d\n", m.Name,
					promLabels(m.labelStr, "le", fmt.Sprintf("%d", b.Upper)), cum)
			}
			fmt.Fprintf(bw, "%s_bucket%s %d\n", m.Name, promLabels(m.labelStr, "le", "+Inf"), m.H.Count())
			fmt.Fprintf(bw, "%s_sum%s %d\n", m.Name, promLabels(m.labelStr, "", ""), m.H.Sum())
			fmt.Fprintf(bw, "%s_count%s %d\n", m.Name, promLabels(m.labelStr, "", ""), m.H.Count())
		}
	}
	// Sampler series surface as gauges holding their latest sample.
	for _, s := range t.seriesSorted() {
		if len(s.Samples) == 0 {
			continue
		}
		fmt.Fprintf(bw, "# TYPE %s gauge\n", s.Name)
		fmt.Fprintf(bw, "%s%s %g\n", s.Name, promLabels(s.labelStr, "", ""), s.Samples[len(s.Samples)-1].V)
	}
	return bw.err
}

// seriesSorted returns series sorted by (name, labels) for export.
func (t *Telemetry) seriesSorted() []*Series {
	out := append([]*Series(nil), t.series...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].labelStr < out[j].labelStr
	})
	return out
}

// The JSON export schema. Histograms carry their summary statistics and
// non-empty buckets; series carry every sample. ReadJSON inverts it.
type (
	// Export is the top-level JSON document.
	Export struct {
		SimTimePs int64          `json:"sim_time_ps"`
		Metrics   []ExportMetric `json:"metrics"`
		Series    []ExportSeries `json:"series,omitempty"`
	}

	// ExportMetric is one counter, gauge or histogram.
	ExportMetric struct {
		Name    string        `json:"name"`
		Labels  string        `json:"labels,omitempty"`
		Kind    string        `json:"kind"`
		Value   float64       `json:"value,omitempty"`
		Count   uint64        `json:"count,omitempty"`
		Sum     int64         `json:"sum,omitempty"`
		Min     int64         `json:"min,omitempty"`
		Max     int64         `json:"max,omitempty"`
		P50     int64         `json:"p50,omitempty"`
		P90     int64         `json:"p90,omitempty"`
		P99     int64         `json:"p99,omitempty"`
		P999    int64         `json:"p999,omitempty"`
		Buckets []ExportBound `json:"buckets,omitempty"`
	}

	// ExportBound is one non-empty histogram bucket.
	ExportBound struct {
		Le    int64  `json:"le"`
		Count uint64 `json:"count"`
	}

	// ExportSeries is one sampler time series.
	ExportSeries struct {
		Name   string    `json:"name"`
		Labels string    `json:"labels,omitempty"`
		Times  []int64   `json:"t_ps"`
		Values []float64 `json:"v"`
	}
)

// Snapshot builds the JSON export document.
func (t *Telemetry) Snapshot(now sim.Time) *Export {
	if t == nil {
		return &Export{}
	}
	e := &Export{SimTimePs: int64(now)}
	for _, m := range t.Reg.Metrics() {
		em := ExportMetric{Name: m.Name, Labels: m.labelStr}
		switch m.Kind {
		case KindCounter:
			em.Kind = "counter"
			em.Value = float64(m.C.Value())
		case KindGauge:
			em.Kind = "gauge"
			em.Value = m.G.Value()
		case KindHistogram:
			em.Kind = "histogram"
			em.Count = m.H.Count()
			em.Sum = m.H.Sum()
			em.Min = m.H.Min()
			em.Max = m.H.Max()
			em.P50 = m.H.Quantile(0.50)
			em.P90 = m.H.Quantile(0.90)
			em.P99 = m.H.Quantile(0.99)
			em.P999 = m.H.Quantile(0.999)
			for _, b := range m.H.Buckets() {
				em.Buckets = append(em.Buckets, ExportBound{Le: b.Upper, Count: b.Count})
			}
		}
		e.Metrics = append(e.Metrics, em)
	}
	for _, s := range t.seriesSorted() {
		es := ExportSeries{Name: s.Name, Labels: s.labelStr}
		for _, smp := range s.Samples {
			es.Times = append(es.Times, int64(smp.T))
			es.Values = append(es.Values, smp.V)
		}
		e.Series = append(e.Series, es)
	}
	return e
}

// WriteJSON emits the JSON export document, indented for humans.
func (t *Telemetry) WriteJSON(w io.Writer, now sim.Time) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Snapshot(now))
}

// ReadJSON parses a document written by WriteJSON.
func ReadJSON(r io.Reader) (*Export, error) {
	var e Export
	if err := json.NewDecoder(r).Decode(&e); err != nil {
		return nil, err
	}
	return &e, nil
}

// Metric finds an exported metric by name and exact label string, or nil.
func (e *Export) Metric(name, labels string) *ExportMetric {
	for i := range e.Metrics {
		if e.Metrics[i].Name == name && e.Metrics[i].Labels == labels {
			return &e.Metrics[i]
		}
	}
	return nil
}

// errWriter folds write errors so export loops stay readable.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(p)
	ew.err = err
	return n, err
}
