// Log-bucketed histogram: fixed storage, no allocation after construction,
// integer arithmetic only. Designed for picosecond latencies and byte
// counts — anything that fits an int64 and spans many orders of magnitude.
package telemetry

import "math/bits"

// histogram bucket layout: values 0..15 land in exact buckets; larger
// values are split into eight sub-buckets per power-of-two octave, giving
// a worst-case relative error of 12.5% on any reported bound. 16 exact +
// 59 octaves x 8 sub-buckets = 488 buckets covers the full int64 range.
const (
	histExact   = 16
	histSub     = 8
	histBuckets = histExact + (63-5)*histSub + histSub
)

// Histogram accumulates int64 observations into logarithmic buckets and
// answers quantile queries against the recorded distribution. The zero
// value is ready to use; a nil *Histogram ignores observations and reports
// zeros, so call sites need no enabled-check of their own.
//
// A Histogram is not safe for concurrent use; every machine (and every
// parallel experiment arm) owns its own registry, matching the simulator's
// single-goroutine discipline.
type Histogram struct {
	count   uint64
	sum     int64
	min     int64
	max     int64
	buckets [histBuckets]uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < histExact {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) // >= 5 here
	sub := int(v>>(exp-4)) & (histSub - 1)
	return histExact + (exp-5)*histSub + sub
}

// bucketUpper returns the inclusive upper bound of bucket i — the value
// reported for any quantile that lands in the bucket.
func bucketUpper(i int) int64 {
	if i < histExact {
		return int64(i)
	}
	i -= histExact
	exp := i/histSub + 5
	sub := int64(i % histSub)
	lower := (8 + sub) << (exp - 4)
	return lower + (1 << (exp - 4)) - 1
}

// Observe records one value. Negative values are clamped to zero (segment
// math on a well-formed record never produces them, but a histogram must
// not corrupt itself if fed garbage).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketIndex(v)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the arithmetic mean, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest observation, or 0 with none.
func (h *Histogram) Min() int64 {
	if h == nil {
		return 0
	}
	return h.min
}

// Max returns the largest observation, or 0 with none.
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Quantile returns an upper bound on the q-th quantile (0 < q <= 1) of the
// recorded values: the bound of the bucket holding the ceil(q*count)-th
// observation, clamped into [min, max] so degenerate distributions report
// exact values. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil || h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	if float64(target) < q*float64(h.count) {
		target++
	}
	if target < 1 {
		target = 1
	}
	if target > h.count {
		target = h.count
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			v := bucketUpper(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Reset clears the histogram for reuse.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	*h = Histogram{}
}

// Bucket is one non-empty histogram bucket for export: Count observations
// with values <= Upper (cumulative counts are computed by the exporters).
type Bucket struct {
	Upper int64
	Count uint64
}

// Buckets returns the non-empty buckets in ascending order of bound.
func (h *Histogram) Buckets() []Bucket {
	if h == nil {
		return nil
	}
	var out []Bucket
	for i, c := range h.buckets {
		if c != 0 {
			out = append(out, Bucket{Upper: bucketUpper(i), Count: c})
		}
	}
	return out
}
