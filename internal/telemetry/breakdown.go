// Per-segment latency breakdown: the paper's Table-style decomposition of
// where a message's time goes, computed from an exported snapshot so both
// live runs (cmd/netpipe) and saved JSON files (cmd/p3stat) render the
// same view.
package telemetry

import (
	"fmt"
	"io"
	"math"
)

// BreakdownRow is one segment's share of the end-to-end latency.
type BreakdownRow struct {
	Stage string
	Count uint64
	Mean  float64 // picoseconds
	P50   int64
	P99   int64
	Max   int64
	Share float64 // percent of summed segment time
}

// Breakdown is the host/HT/firmware/wire/event decomposition of message
// latency. SegSum and E2ESum are total picoseconds over all completed
// messages; by construction (consecutive stamps) they agree exactly, and
// DriftPct reports any disagreement as a percentage for the exporter
// round-trip check.
type Breakdown struct {
	Rows     []BreakdownRow
	Messages uint64  // completed messages (e2e histogram count)
	E2EMean  float64 // picoseconds
	E2EP50   int64
	E2EP99   int64
	SegSum   int64
	E2ESum   int64
	DriftPct float64
}

// Breakdown computes the decomposition from an exported snapshot. ok is
// false when the snapshot has no completed-message attribution data.
func (e *Export) Breakdown() (*Breakdown, bool) {
	e2e := e.Metric("portals_msg_e2e_ps", "")
	if e2e == nil || e2e.Count == 0 {
		return nil, false
	}
	b := &Breakdown{
		Messages: e2e.Count,
		E2EMean:  float64(e2e.Sum) / float64(e2e.Count),
		E2EP50:   e2e.P50,
		E2EP99:   e2e.P99,
		E2ESum:   e2e.Sum,
	}
	for s := Seg(0); s < NumSegs; s++ {
		m := e.Metric("portals_msg_segment_ps", `stage="`+s.String()+`"`)
		if m == nil {
			return nil, false
		}
		row := BreakdownRow{Stage: s.String(), Count: m.Count, P50: m.P50, P99: m.P99, Max: m.Max}
		if m.Count > 0 {
			row.Mean = float64(m.Sum) / float64(m.Count)
		}
		b.SegSum += m.Sum
		b.Rows = append(b.Rows, row)
	}
	for i := range b.Rows {
		if b.SegSum > 0 {
			b.Rows[i].Share = 100 * b.Rows[i].Mean * float64(b.Rows[i].Count) / float64(b.SegSum)
		}
	}
	if b.E2ESum > 0 {
		b.DriftPct = 100 * math.Abs(float64(b.SegSum-b.E2ESum)) / float64(b.E2ESum)
	}
	return b, true
}

// Render writes the breakdown as an aligned table, times in microseconds.
func (b *Breakdown) Render(w io.Writer) {
	us := func(ps float64) float64 { return ps / 1e6 }
	fmt.Fprintf(w, "latency attribution over %d messages (us):\n", b.Messages)
	fmt.Fprintf(w, "  %-8s %10s %10s %10s %10s %7s\n", "stage", "mean", "p50", "p99", "max", "share")
	for _, r := range b.Rows {
		fmt.Fprintf(w, "  %-8s %10.3f %10.3f %10.3f %10.3f %6.1f%%\n",
			r.Stage, us(r.Mean), us(float64(r.P50)), us(float64(r.P99)), us(float64(r.Max)), r.Share)
	}
	fmt.Fprintf(w, "  %-8s %10.3f %10.3f %10.3f\n", "e2e",
		us(b.E2EMean), us(float64(b.E2EP50)), us(float64(b.E2EP99)))
	fmt.Fprintf(w, "  segment sum vs e2e drift: %.4f%%\n", b.DriftPct)
}
