// Trace analyzer: replays trace.Tracer records into per-handler and
// per-track summaries — which firmware handlers and host activities carry
// the critical path, per node, over the traced horizon.
package telemetry

import (
	"fmt"
	"io"
	"sort"

	"portals3/internal/sim"
	"portals3/internal/trace"
)

// SpanStat aggregates every span with the same (node, track, cat, name).
type SpanStat struct {
	Node  int
	Track int
	Cat   string
	Name  string
	Count uint64
	Total sim.Time // summed span duration
	Max   sim.Time // longest single span
}

// TrackStat aggregates busy time per (node, track) — an occupancy view of
// each modeled execution resource (host CPU, PowerPC, wire, app).
type TrackStat struct {
	Node  int
	Track int
	Busy  sim.Time // summed span durations on the track
	Spans uint64
}

// TraceSummary is the analyzer's result.
type TraceSummary struct {
	Horizon  sim.Time // end of the last span
	Spans    []SpanStat
	Tracks   []TrackStat
	Instants uint64 // point events, counted but not attributed time
}

// trackName names the well-known trace tracks for rendering.
func trackName(tid int) string { return trace.TrackName(tid) }

// Summarize folds trace records into span and track statistics. Spans are
// sorted by total time descending (the critical-path view); tracks by
// (node, track).
func Summarize(recs []trace.Record) *TraceSummary {
	s := &TraceSummary{}
	type key struct {
		node, track int
		cat, name   string
	}
	type tkey struct{ node, track int }
	spans := map[key]*SpanStat{}
	tracks := map[tkey]*TrackStat{}
	for _, r := range recs {
		if end := r.TS + r.Dur; end > s.Horizon {
			s.Horizon = end
		}
		if r.Ph != "X" {
			s.Instants++
			continue
		}
		k := key{r.PID, r.TID, r.Cat, r.Name}
		st := spans[k]
		if st == nil {
			st = &SpanStat{Node: r.PID, Track: r.TID, Cat: r.Cat, Name: r.Name}
			spans[k] = st
		}
		st.Count++
		st.Total += r.Dur
		if r.Dur > st.Max {
			st.Max = r.Dur
		}
		tk := tkey{r.PID, r.TID}
		ts := tracks[tk]
		if ts == nil {
			ts = &TrackStat{Node: r.PID, Track: r.TID}
			tracks[tk] = ts
		}
		ts.Spans++
		ts.Busy += r.Dur
	}
	for _, st := range spans {
		s.Spans = append(s.Spans, *st)
	}
	sort.Slice(s.Spans, func(i, j int) bool {
		a, b := s.Spans[i], s.Spans[j]
		if a.Total != b.Total {
			return a.Total > b.Total
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		return a.Name < b.Name
	})
	for _, ts := range tracks {
		s.Tracks = append(s.Tracks, *ts)
	}
	sort.Slice(s.Tracks, func(i, j int) bool {
		a, b := s.Tracks[i], s.Tracks[j]
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Track < b.Track
	})
	return s
}

// Render writes the summary as aligned text tables.
func (s *TraceSummary) Render(w io.Writer) {
	fmt.Fprintf(w, "trace horizon %v, %d instants\n\n", s.Horizon, s.Instants)
	fmt.Fprintf(w, "%-5s %-12s %10s %12s %12s %7s\n",
		"node", "track", "spans", "busy", "max-span", "occ%")
	for _, t := range s.Tracks {
		occ := 0.0
		if s.Horizon > 0 {
			occ = 100 * float64(t.Busy) / float64(s.Horizon)
		}
		fmt.Fprintf(w, "%-5d %-12s %10d %12v %12s %7.2f\n",
			t.Node, trackName(t.Track), t.Spans, t.Busy, "", occ)
	}
	fmt.Fprintf(w, "\n%-5s %-12s %-24s %8s %12s %12s\n",
		"node", "track", "handler", "count", "total", "max")
	for _, sp := range s.Spans {
		fmt.Fprintf(w, "%-5d %-12s %-24s %8d %12v %12v\n",
			sp.Node, trackName(sp.Track), sp.Cat+"/"+sp.Name, sp.Count, sp.Total, sp.Max)
	}
}
