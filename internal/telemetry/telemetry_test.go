package telemetry

import (
	"math/rand"
	"strings"
	"testing"

	"portals3/internal/sim"
	"portals3/internal/trace"
)

// TestBucketInvariants sweeps values across the range and checks that every
// value lands in a bucket whose bounds contain it, and that bounds are
// within the advertised 12.5% relative error.
func TestBucketInvariants(t *testing.T) {
	check := func(v int64) {
		i := bucketIndex(v)
		up := bucketUpper(i)
		if v > up {
			t.Fatalf("value %d above bucket %d upper %d", v, i, up)
		}
		if i > 0 {
			below := bucketUpper(i - 1)
			if v <= below {
				t.Fatalf("value %d not above previous bucket bound %d", v, below)
			}
		}
		if v >= histExact && float64(up-v) > 0.125*float64(v)+1 {
			t.Fatalf("value %d bucket upper %d exceeds 12.5%% error", v, up)
		}
	}
	for v := int64(0); v < 4096; v++ {
		check(v)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		check(rng.Int63())
	}
	check(1<<63 - 1)
}

// TestBucketBoundsMonotone verifies the bound sequence is strictly
// increasing — required for quantile walks and cumulative export.
func TestBucketBoundsMonotone(t *testing.T) {
	prev := int64(-1)
	for i := 0; i < histBuckets; i++ {
		up := bucketUpper(i)
		if up <= prev {
			t.Fatalf("bucket %d upper %d <= previous %d", i, up, prev)
		}
		prev = up
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 || h.Sum() != 500500 {
		t.Fatalf("count/sum wrong: %d/%d", h.Count(), h.Sum())
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("min/max wrong: %d/%d", h.Min(), h.Max())
	}
	for _, c := range []struct {
		q     float64
		exact int64
	}{{0.5, 500}, {0.9, 900}, {0.99, 990}, {1.0, 1000}} {
		got := h.Quantile(c.q)
		if got < c.exact || float64(got-c.exact) > 0.125*float64(c.exact)+1 {
			t.Errorf("q%.2f = %d, want within 12.5%% above %d", c.q, got, c.exact)
		}
	}
	// A constant distribution reports exact quantiles thanks to clamping.
	h.Reset()
	for i := 0; i < 100; i++ {
		h.Observe(5390)
	}
	if h.Quantile(0.5) != 5390 || h.Quantile(0.999) != 5390 {
		t.Errorf("constant distribution quantiles not exact: p50=%d p999=%d",
			h.Quantile(0.5), h.Quantile(0.999))
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(5)
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Buckets() != nil || h.Max() != 0 {
		t.Fatal("nil histogram must be inert")
	}
	var c *Counter
	c.Inc()
	c.Add(3)
	var g *Gauge
	g.Set(1)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil counter/gauge must be inert")
	}
}

func TestRegistryDedupAndOrder(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("b_total", L("node", "1"))
	c2 := r.Counter("b_total", L("node", "1"))
	if c1 != c2 {
		t.Fatal("same key must return same counter")
	}
	r.Counter("a_total")
	r.Gauge("b_total_gauge")
	r.Histogram("a_hist", L("stage", "wire"), L("node", "0"))
	ms := r.Metrics()
	for i := 1; i < len(ms); i++ {
		a, b := ms[i-1], ms[i]
		if a.Name > b.Name ||
			(a.Name == b.Name && labelString(a.Labels) >= labelString(b.Labels)) {
			t.Fatalf("metrics out of order: %s{%s} before %s{%s}",
				a.Name, labelString(a.Labels), b.Name, labelString(b.Labels))
		}
	}
	// Labels are sorted by key within a metric regardless of call order.
	h := r.Metrics()[0]
	if h.Name != "a_hist" || h.Labels[0].Key != "node" {
		t.Fatalf("label order not canonical: %+v", h.Labels)
	}
}

// TestMsgRecSegmentsSumExactly is the attribution core property: a fully
// stamped record contributes segments that sum exactly to its end-to-end
// latency, by construction.
func TestMsgRecSegmentsSumExactly(t *testing.T) {
	tel := New()
	rng := rand.New(rand.NewSource(7))
	const msgs = 500
	for i := 0; i < msgs; i++ {
		r := tel.NewMsgRec(64)
		now := sim.Time(rng.Intn(1000))
		for s := 0; s < NumStamps; s++ {
			r.Stamp(s, now)
			now += sim.Time(rng.Intn(10000))
		}
		tel.FinishMsg(r)
	}
	var segSum int64
	for s := Seg(0); s < NumSegs; s++ {
		h := tel.SegmentHist(s)
		if h.Count() != msgs {
			t.Fatalf("segment %v count %d, want %d", s, h.Count(), msgs)
		}
		segSum += h.Sum()
	}
	if e2e := tel.E2EHist().Sum(); segSum != e2e {
		t.Fatalf("segment sums %d != e2e sum %d", segSum, e2e)
	}
	if tel.completed.Value() != msgs || tel.incomplete.Value() != 0 {
		t.Fatalf("completed/incomplete = %d/%d", tel.completed.Value(), tel.incomplete.Value())
	}
}

func TestMsgRecIncompleteAndPool(t *testing.T) {
	tel := New()
	r := tel.NewMsgRec(8)
	r.Stamp(StampSubmit, 100)
	tel.FinishMsg(r) // missing stamps: incomplete, not recorded
	if tel.incomplete.Value() != 1 || tel.E2EHist().Count() != 0 {
		t.Fatal("incomplete record must not feed histograms")
	}
	r2 := tel.NewMsgRec(8)
	if r2 != r {
		t.Fatal("record not recycled through the pool")
	}
	if r2.t[StampSubmit] != -1 {
		t.Fatal("recycled record not reset")
	}
	// First stamp wins: a retransmit must not move the boundary.
	r2.Stamp(StampWire, 500)
	r2.Stamp(StampWire, 900)
	if r2.t[StampWire] != 500 {
		t.Fatalf("stamp overwritten: %d", r2.t[StampWire])
	}
	tel.DropMsgRec(r2)
	if tel.incomplete.Value() != 2 {
		t.Fatal("DropMsgRec must count incomplete")
	}

	// Disabled telemetry: everything is a nil-safe no-op.
	var off *Telemetry
	if off.Enabled() || off.NewMsgRec(1) != nil {
		t.Fatal("nil telemetry must be disabled")
	}
	off.FinishMsg(nil)
	off.DropMsgRec(nil)
	var nr *MsgRec
	nr.Stamp(StampSubmit, 1)
}

func TestPrometheusExport(t *testing.T) {
	tel := New()
	tel.Reg.Counter("demo_total", NodeLabel(0)).Add(42)
	tel.Reg.Gauge("demo_gauge").Set(1.5)
	h := tel.Reg.Histogram("demo_ps", L("stage", "wire"))
	h.Observe(100)
	h.Observe(200)
	tel.SeriesFor("demo_series", NodeLabel(0)).Append(1000, 3)

	var sb strings.Builder
	if err := tel.WritePrometheus(&sb, 12345); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"portals_sim_time_ps 12345",
		"# TYPE demo_total counter",
		`demo_total{node="0"} 42`,
		"demo_gauge 1.5",
		"# TYPE demo_ps histogram",
		`demo_ps_bucket{stage="wire",le="+Inf"} 2`,
		`demo_ps_sum{stage="wire"} 300`,
		`demo_ps_count{stage="wire"} 2`,
		`demo_series{node="0"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
	// Deterministic: a second export is byte-identical.
	var sb2 strings.Builder
	tel.WritePrometheus(&sb2, 12345)
	if sb.String() != sb2.String() {
		t.Error("prometheus export not deterministic")
	}
	// Cumulative bucket counts must end at the total count.
	if strings.Count(out, "demo_ps_bucket") < 3 {
		t.Error("expected at least two value buckets plus +Inf")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tel := New()
	tel.Reg.Counter("rt_total").Add(7)
	h := tel.Reg.Histogram("rt_ps")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 1000)
	}
	tel.SeriesFor("rt_series").Append(500, 1.25)
	tel.SeriesFor("rt_series").Append(1500, 2.5)

	var sb strings.Builder
	if err := tel.WriteJSON(&sb, 99999); err != nil {
		t.Fatal(err)
	}
	e, err := ReadJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if e.SimTimePs != 99999 {
		t.Errorf("sim time %d", e.SimTimePs)
	}
	if m := e.Metric("rt_total", ""); m == nil || m.Value != 7 {
		t.Fatalf("counter lost in round trip: %+v", m)
	}
	m := e.Metric("rt_ps", "")
	if m == nil || m.Count != 100 || m.Sum != 5050000 {
		t.Fatalf("histogram lost in round trip: %+v", m)
	}
	if m.P50 <= 0 || m.P99 < m.P50 || m.Max != 100000 {
		t.Fatalf("quantiles wrong: p50=%d p99=%d max=%d", m.P50, m.P99, m.Max)
	}
	var cum uint64
	for _, b := range m.Buckets {
		cum += b.Count
	}
	if cum != m.Count {
		t.Fatalf("bucket counts sum to %d, want %d", cum, m.Count)
	}
	if len(e.Series) != 1 || len(e.Series[0].Times) != 2 || e.Series[0].Values[1] != 2.5 {
		t.Fatalf("series lost in round trip: %+v", e.Series)
	}
}

func TestSummarizeTrace(t *testing.T) {
	tr := trace.New()
	tr.Span(0, trace.TrackPPC, "fw", "tx-start", 0, 400, nil)
	tr.Span(0, trace.TrackPPC, "fw", "tx-start", 1000, 600, nil)
	tr.Span(0, trace.TrackHost, "os", "irq", 500, 2000, nil)
	tr.Span(1, trace.TrackPPC, "fw", "rx-header", 800, 440, nil)
	tr.Instant(1, trace.TrackWire, "fabric", "hdr-arrive", 700, nil)
	s := Summarize(tr.Records())
	if s.Horizon != 2500 {
		t.Errorf("horizon %v", s.Horizon)
	}
	if s.Instants != 1 {
		t.Errorf("instants %d", s.Instants)
	}
	if len(s.Spans) != 3 || s.Spans[0].Name != "irq" || s.Spans[0].Total != 2000 {
		t.Fatalf("span order wrong: %+v", s.Spans)
	}
	if s.Spans[1].Name != "tx-start" || s.Spans[1].Count != 2 || s.Spans[1].Max != 600 {
		t.Fatalf("aggregation wrong: %+v", s.Spans[1])
	}
	if len(s.Tracks) != 3 || s.Tracks[0].Node != 0 || s.Tracks[0].Track != trace.TrackHost {
		t.Fatalf("track order wrong: %+v", s.Tracks)
	}
	var sb strings.Builder
	s.Render(&sb)
	for _, want := range []string{"seastar-ppc", "host-cpu", "fw/tx-start", "occ%"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}
