// Metric registry: named counters, gauges and histograms with label sets,
// looked up once at setup time and held as pointers by the hot path. The
// registry itself is never consulted per event — matching the simulator's
// rule that steady-state work allocates nothing and touches no maps.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// Label is one key=value dimension on a metric, e.g. {"node", "3"} or
// {"stage", "wire"}.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// NodeLabel labels a metric with a node id.
func NodeLabel(node int) Label { return Label{Key: "node", Value: fmt.Sprintf("%d", node)} }

// HopsLabel labels a metric with a route length.
func HopsLabel(hops int) Label { return Label{Key: "hops", Value: fmt.Sprintf("%d", hops)} }

// DirLabel labels a metric with a link direction ("X+", "Z-", ...).
func DirLabel(dir string) Label { return Label{Key: "dir", Value: dir} }

// Counter is a monotonically increasing uint64. A nil *Counter ignores
// updates, so call sites may hold one unconditionally.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-write-wins float64. A nil *Gauge ignores updates.
type Gauge struct{ v float64 }

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the last value set.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// metric kinds, used by the exporters.
const (
	KindCounter = iota
	KindGauge
	KindHistogram
)

// Metric is one registered instrument: a name, an ordered label set, and
// exactly one of the three instrument pointers. labelStr is the rendered
// label set, computed once at registration — exporters sort and emit
// thousands of link-meter metrics, so re-rendering per comparison would
// dominate the export's allocation profile.
type Metric struct {
	Name     string
	Labels   []Label
	labelStr string
	Kind     int
	C        *Counter
	G        *Gauge
	H        *Histogram
}

// labelString renders an ordered label set as `k="v",k2="v2"`.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", l.Key, l.Value)
	}
	return sb.String()
}

// Registry owns a set of metrics. Lookups are by (name, sorted labels);
// re-registering the same key returns the existing instrument, so any
// component may idempotently claim "its" metric.
type Registry struct {
	metrics []*Metric
	index   map[string]*Metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: map[string]*Metric{}}
}

// lookup finds or creates the metric for (name, labels), enforcing kind.
func (r *Registry) lookup(name string, kind int, labels []Label) *Metric {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	lstr := labelString(ls)
	key := name + "{" + lstr + "}"
	if m, ok := r.index[key]; ok {
		if m.Kind != kind {
			panic(fmt.Sprintf("telemetry: %s re-registered with different kind", key))
		}
		return m
	}
	m := &Metric{Name: name, Labels: ls, labelStr: lstr, Kind: kind}
	switch kind {
	case KindCounter:
		m.C = &Counter{}
	case KindGauge:
		m.G = &Gauge{}
	case KindHistogram:
		m.H = NewHistogram()
	}
	r.metrics = append(r.metrics, m)
	r.index[key] = m
	return m
}

// Counter returns the counter for (name, labels), creating it if needed.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.lookup(name, KindCounter, labels).C
}

// Gauge returns the gauge for (name, labels), creating it if needed.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.lookup(name, KindGauge, labels).G
}

// Histogram returns the histogram for (name, labels), creating it if
// needed.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	return r.lookup(name, KindHistogram, labels).H
}

// Metrics returns every registered metric sorted by name then label set —
// the stable order every exporter emits.
func (r *Registry) Metrics() []*Metric {
	out := append([]*Metric(nil), r.metrics...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].labelStr < out[j].labelStr
	})
	return out
}
