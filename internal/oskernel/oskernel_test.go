package oskernel

import (
	"bytes"
	"testing"
	"testing/quick"

	"portals3/internal/model"
	"portals3/internal/sim"
)

func kernels(t *testing.T) (*sim.Sim, *Kernel, *Kernel) {
	t.Helper()
	s := sim.New()
	p := model.Defaults()
	return s, New(s, &p, Catamount, 0), New(s, &p, Linux, 1)
}

func TestTrapCosts(t *testing.T) {
	_, cat, lin := kernels(t)
	if cat.TrapCost() != 75*sim.Nanosecond {
		t.Errorf("Catamount trap = %v, want 75ns (§3.3)", cat.TrapCost())
	}
	if lin.TrapCost() <= cat.TrapCost() {
		t.Error("Linux syscalls must cost more than Catamount traps")
	}
}

func TestMemoryShapes(t *testing.T) {
	_, cat, lin := kernels(t)
	if segs := cat.NewRegion(1 << 20).Segments(); segs != 1 {
		t.Errorf("Catamount 1MB region has %d segments, want 1 (§3.3)", segs)
	}
	if segs := lin.NewRegion(1 << 20).Segments(); segs != 256 {
		t.Errorf("Linux 1MB region has %d segments, want 256 pages", segs)
	}
}

func TestPagedRegionReadWrite(t *testing.T) {
	_, _, lin := kernels(t)
	r := lin.NewRegion(10000)
	// Property: paged memory behaves exactly like flat memory.
	f := func(off uint16, data []byte) bool {
		o := int(off) % 9000
		if len(data) > 1000 {
			data = data[:1000]
		}
		r.WriteAt(o, data)
		got := make([]byte, len(data))
		r.ReadAt(o, got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPagedRegionSpansPages(t *testing.T) {
	_, _, lin := kernels(t)
	r := lin.NewRegion(3 * 4096)
	span := make([]byte, 5000)
	for i := range span {
		span[i] = byte(i)
	}
	r.WriteAt(3000, span) // crosses two page boundaries
	got := make([]byte, 5000)
	r.ReadAt(3000, got)
	if !bytes.Equal(got, span) {
		t.Error("page-spanning write/read mismatch")
	}
}

func TestPagedRegionOutOfRangePanics(t *testing.T) {
	_, _, lin := kernels(t)
	r := lin.NewRegion(100)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	r.ReadAt(90, make([]byte, 20))
}

func TestPinBookkeeping(t *testing.T) {
	_, _, lin := kernels(t)
	r := lin.NewRegion(100).(*pagedRegion)
	if r.Pinned() {
		t.Error("fresh region already pinned")
	}
	r.Pin()
	if !r.Pinned() {
		t.Error("Pin did not stick")
	}
}

func TestInterruptCoalescing(t *testing.T) {
	s, cat, _ := kernels(t)
	handled := 0
	cat.SetInterruptHandler(func() {
		handled++
		// A real handler drains and calls InterruptDone; hold it active
		// for a while to absorb raises.
		s.After(5*sim.Microsecond, cat.InterruptDone)
	})
	cat.RaiseInterrupt()
	cat.RaiseInterrupt() // absorbed: handler scheduled but not yet done
	s.After(20*sim.Microsecond, cat.RaiseInterrupt)
	s.Run()
	if handled != 2 {
		t.Errorf("handler ran %d times, want 2", handled)
	}
	if cat.Interrupts != 2 || cat.Coalesced != 1 {
		t.Errorf("interrupts=%d coalesced=%d, want 2/1", cat.Interrupts, cat.Coalesced)
	}
}

func TestInterruptCostsTwoMicroseconds(t *testing.T) {
	s, cat, _ := kernels(t)
	var at sim.Time
	cat.SetInterruptHandler(func() {
		at = s.Now()
		cat.InterruptDone()
	})
	cat.RaiseInterrupt()
	s.Run()
	if at != 2*sim.Microsecond {
		t.Errorf("handler entered at %v, want 2µs (§3.3)", at)
	}
}

func TestInterruptWithoutHandlerPanics(t *testing.T) {
	_, cat, _ := kernels(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	cat.RaiseInterrupt()
}

func TestAllocPidMonotonic(t *testing.T) {
	_, cat, _ := kernels(t)
	a, b := cat.AllocPid(), cat.AllocPid()
	if a == b || b != a+1 {
		t.Errorf("pids %d, %d", a, b)
	}
}

func TestKernelWorkChargesCycles(t *testing.T) {
	s, cat, _ := kernels(t)
	var at sim.Time
	cat.KernelWork(2000, func() { at = s.Now() }) // 2000 cycles @ 2 GHz = 1µs
	s.Run()
	if at != sim.Microsecond {
		t.Errorf("work completed at %v, want 1µs", at)
	}
}

func TestNoCoalesceTakesOneInterruptPerRaise(t *testing.T) {
	s, cat, _ := kernels(t)
	cat.NoCoalesce = true
	handled := 0
	cat.SetInterruptHandler(func() {
		handled++
		s.After(sim.Microsecond, cat.InterruptDone)
	})
	cat.RaiseInterrupt()
	cat.RaiseInterrupt() // queued, not coalesced
	cat.RaiseInterrupt()
	s.Run()
	if handled != 3 {
		t.Errorf("handler ran %d times, want 3 (no coalescing)", handled)
	}
	if cat.Interrupts != 3 || cat.Coalesced != 0 {
		t.Errorf("interrupts=%d coalesced=%d, want 3/0", cat.Interrupts, cat.Coalesced)
	}
}
