// Package oskernel models the two operating systems of the XT3 (paper
// §3.1): the Catamount lightweight compute-node kernel and Linux. The
// properties the paper makes load-bearing are exactly what is modeled:
//
//   - Catamount maps virtually contiguous pages to physically contiguous
//     pages, so one DMA command describes any buffer; its null trap costs
//     about 75 ns (§3.3).
//   - Linux memory is paged; the host must pin pages and pre-compute one
//     DMA command per page (§3.3); system calls are an order of magnitude
//     more expensive than Catamount traps.
//   - Interrupts cost at least 2 µs on either OS (§3.3), and the Portals
//     interrupt handler processes all pending events per invocation to
//     amortize that cost (§4.1).
package oskernel

import (
	"fmt"

	"portals3/internal/model"
	"portals3/internal/sim"
	"portals3/internal/telemetry"
	"portals3/internal/topo"
	"portals3/internal/trace"
)

// Kind selects the operating system.
type Kind int

// The two operating systems used on XT3 (paper §3.1).
const (
	Catamount Kind = iota
	Linux
)

func (k Kind) String() string {
	if k == Catamount {
		return "catamount"
	}
	return "linux"
}

// Kernel is one node's operating system instance.
type Kernel struct {
	S    *sim.Sim
	P    *model.Params
	Kind Kind
	Node topo.NodeID

	// CPU serializes kernel-context work on the host processor: interrupt
	// handlers and driver processing. Application compute happens on the
	// application's own coroutine (NetPIPE-style benchmarks block while
	// the kernel works, so the contention the model drops is not on any
	// measured path).
	CPU *sim.Server

	irqActive  bool
	irqHandler func()

	// Interrupts counts interrupts actually taken; Coalesced counts raise
	// requests absorbed by an already-active handler (§4.1's batching).
	Interrupts uint64
	Coalesced  uint64

	// Trace, when non-nil, records interrupt and kernel-work spans.
	Trace *trace.Tracer

	// IrqHist, when non-nil, records interrupt dispatch latency — raise to
	// handler entry, i.e. CPU queueing plus the ≥2 µs interrupt overhead
	// (machine.EnableTelemetry installs a per-node histogram).
	IrqHist *telemetry.Histogram

	// irqRaised and irqFn serve the instrumented dispatch path; a single
	// carrier suffices because at most one interrupt is in flight
	// (irqActive gates further raises until InterruptDone).
	irqRaised sim.Time
	irqFn     func()

	// NoCoalesce disables interrupt coalescing for ablation studies: every
	// raise takes its own ≥2 µs interrupt and the driver processes one
	// event per invocation, instead of the paper's batch-drain design
	// (§4.1).
	NoCoalesce bool

	pendingIrqs int

	nextPid uint32
}

// New builds a kernel for node n.
func New(s *sim.Sim, p *model.Params, kind Kind, n topo.NodeID) *Kernel {
	return &Kernel{
		S:       s,
		P:       p,
		Kind:    kind,
		Node:    n,
		CPU:     sim.NewServer(s, fmt.Sprintf("host[%d]", n)),
		nextPid: 1,
	}
}

// AllocPid hands out process ids.
func (k *Kernel) AllocPid() uint32 {
	pid := k.nextPid
	k.nextPid++
	return pid
}

// TrapCost is the price of one system call into this kernel: ~75 ns on
// Catamount (§3.3), several times that on Linux.
func (k *Kernel) TrapCost() sim.Time {
	if k.Kind == Catamount {
		return k.P.TrapOverhead
	}
	return k.P.LinuxSyscallOverhead
}

// SetInterruptHandler installs the device interrupt handler (the SSNAL's,
// §3.3). The handler must call InterruptDone when it finds no more work.
func (k *Kernel) SetInterruptHandler(fn func()) { k.irqHandler = fn }

// RaiseInterrupt requests the handler. A raise while the handler is active
// (or already scheduled) coalesces: the running handler will see the new
// work in its drain loop, which is how the real driver keeps the ≥2 µs
// interrupt cost off every event (§4.1).
func (k *Kernel) RaiseInterrupt() {
	if k.irqHandler == nil {
		panic("oskernel: interrupt with no handler installed")
	}
	if k.irqActive {
		if k.NoCoalesce {
			k.pendingIrqs++
		} else {
			k.Coalesced++
		}
		return
	}
	k.irqActive = true
	k.Interrupts++
	if k.Trace.Enabled() || k.IrqHist != nil {
		if k.irqFn == nil {
			k.irqFn = k.irqDispatched
		}
		k.irqRaised = k.S.Now()
		k.CPU.Submit(k.P.InterruptOverhead, k.irqFn)
		return
	}
	k.CPU.Submit(k.P.InterruptOverhead, k.irqHandler)
}

// irqDispatched is the instrumented interrupt entry: record the span and
// the dispatch latency, then run the real handler.
func (k *Kernel) irqDispatched() {
	if k.Trace.Enabled() {
		k.Trace.Span(int(k.Node), trace.TrackHost, "os", "interrupt",
			k.S.Now()-k.P.InterruptOverhead, k.P.InterruptOverhead, nil)
	}
	k.IrqHist.Observe(int64(k.S.Now() - k.irqRaised))
	k.irqHandler()
}

// InterruptDone re-arms interrupt delivery; the handler calls it after
// draining every pending event. Under NoCoalesce, raises that arrived while
// the handler ran each get their own interrupt now.
func (k *Kernel) InterruptDone() {
	k.irqActive = false
	if k.NoCoalesce && k.pendingIrqs > 0 {
		k.pendingIrqs--
		k.RaiseInterrupt()
	}
}

// KernelWork charges host cycles of kernel-context processing and runs fn
// when they complete.
func (k *Kernel) KernelWork(cycles int64, fn func()) {
	dur := k.P.HostCycles(cycles)
	if dur > 0 && k.Trace.Enabled() {
		k.CPU.Submit(dur, func() {
			k.Trace.Span(int(k.Node), trace.TrackHost, "os", "portals-processing",
				k.S.Now()-dur, dur, nil)
			fn()
		})
		return
	}
	k.CPU.Submit(dur, fn)
}

// NewRegion allocates application memory the way this OS does: one
// physically contiguous block on Catamount, discontiguous 4 KB pages on
// Linux. The region satisfies both core.Region and fw.Buffer.
func (k *Kernel) NewRegion(n int) Region {
	if k.Kind == Catamount {
		return contigRegion(make([]byte, n))
	}
	return newPagedRegion(n, int(k.P.PageBytes))
}

// Region is host memory as the DMA engines and the Portals library see it.
type Region interface {
	Len() int
	ReadAt(off int, p []byte)
	WriteAt(off int, p []byte)
	// Segments is the number of physically contiguous pieces: the number
	// of DMA commands the host must pre-compute for this buffer (§3.3).
	Segments() int
}

// contigRegion is Catamount memory: virtually contiguous pages map to
// physically contiguous pages (§3.3), so the whole buffer is one segment.
type contigRegion []byte

func (r contigRegion) Len() int                  { return len(r) }
func (r contigRegion) ReadAt(off int, p []byte)  { copy(p, r[off:off+len(p)]) }
func (r contigRegion) WriteAt(off int, p []byte) { copy(r[off:off+len(p)], p) }
func (r contigRegion) Segments() int             { return 1 }

// pagedRegion is Linux memory: independently allocated 4 KB pages. Reads
// and writes genuinely walk the page list, and Segments reports the page
// count the host must describe to the NIC.
type pagedRegion struct {
	pages  [][]byte
	page   int
	length int
	pinned bool
}

func newPagedRegion(n, page int) *pagedRegion {
	r := &pagedRegion{page: page, length: n}
	for n > 0 {
		sz := page
		if n < sz {
			sz = n
		}
		r.pages = append(r.pages, make([]byte, sz))
		n -= sz
	}
	return r
}

func (r *pagedRegion) Len() int { return r.length }

func (r *pagedRegion) ReadAt(off int, p []byte) {
	r.walk(off, len(p), func(pg []byte, pgOff, n, done int) {
		copy(p[done:done+n], pg[pgOff:pgOff+n])
	})
}

func (r *pagedRegion) WriteAt(off int, p []byte) {
	r.walk(off, len(p), func(pg []byte, pgOff, n, done int) {
		copy(pg[pgOff:pgOff+n], p[done:done+n])
	})
}

func (r *pagedRegion) walk(off, n int, fn func(pg []byte, pgOff, n, done int)) {
	if off < 0 || off+n > r.length {
		panic("oskernel: paged region access out of range")
	}
	done := 0
	for n > 0 {
		pi := off / r.page
		po := off % r.page
		take := r.page - po
		if take > n {
			take = n
		}
		fn(r.pages[pi], po, take, done)
		off += take
		n -= take
		done += take
	}
}

func (r *pagedRegion) Segments() int { return len(r.pages) }

// Pin marks the region's pages wired for DMA; the Linux bridges call it
// before handing buffers to the NIC. (Catamount memory is always wired.)
func (r *pagedRegion) Pin()         { r.pinned = true }
func (r *pagedRegion) Pinned() bool { return r.pinned }
