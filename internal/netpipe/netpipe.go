// Package netpipe reimplements the NetPIPE 3.6.2 methodology the paper uses
// for every figure (§5.2): a message-size schedule with ±perturbation
// around powers of two, size-dependent iteration counts, and three traffic
// patterns — ping-pong, uni-directional streaming, and bi-directional — run
// by a Portals module (put and get variants, the module the authors wrote
// for the paper) and an MPI module.
//
// Latency is reported NetPIPE-style as round-trip-time divided by two;
// bandwidth in MB/s (10^6 bytes per second), matching the paper's axes.
package netpipe

import (
	"fmt"
	"sort"

	"portals3/internal/machine"
	"portals3/internal/model"
	"portals3/internal/mpi"
	"portals3/internal/sim"
	"portals3/internal/telemetry"
	"portals3/internal/topo"
)

// Pattern is the traffic pattern of a run.
type Pattern int

// The three NetPIPE test patterns used in the paper's figures.
const (
	// PingPong alternates one message each way (Figures 4 and 5).
	PingPong Pattern = iota
	// Stream sends continuously one way (Figure 6).
	Stream
	// Bidir exercises both directions simultaneously (Figure 7).
	Bidir
)

func (p Pattern) String() string {
	return [...]string{"pingpong", "stream", "bidir"}[p]
}

// Op selects the Portals module's operation.
type Op int

// Portals module operations.
const (
	OpPut Op = iota
	OpGet
)

func (o Op) String() string {
	if o == OpPut {
		return "put"
	}
	return "get"
}

// Point is one measurement.
type Point struct {
	Bytes   int
	Iters   int
	Elapsed sim.Time // whole measured block
	// Latency is RTT/2 for ping-pong patterns; zero otherwise.
	Latency sim.Time
	// P50 and P99 are per-round latency percentiles (RTT/2) for ping-pong
	// patterns, from a per-iteration histogram; zero otherwise. In a
	// deterministic simulation the spread comes from real model effects —
	// warm vs cold descriptor state, interrupt coalescing, chunk pacing —
	// not noise.
	P50, P99 sim.Time
	// MBps is bandwidth in 10^6 bytes per second (the paper's MB/s axis).
	MBps float64
}

func (pt Point) String() string {
	if pt.P99 > 0 {
		return fmt.Sprintf("%8d B  %7.2f us  %9.2f MB/s  p50 %7.2f us  p99 %7.2f us",
			pt.Bytes, pt.Latency.Micros(), pt.MBps, pt.P50.Micros(), pt.P99.Micros())
	}
	return fmt.Sprintf("%8d B  %7.2f us  %9.2f MB/s", pt.Bytes, pt.Latency.Micros(), pt.MBps)
}

// Result is one full curve.
type Result struct {
	Series string // legend label, e.g. "put", "get", "mpich2"
	Pat    Pattern
	Points []Point
}

// Config shapes a run.
type Config struct {
	// MaxBytes is the largest message (paper: 8 MB).
	MaxBytes int
	// Perturbation samples 2^k−p and 2^k+p around each power of two
	// (NetPIPE's default 3).
	Perturbation int
	// MinIters/MaxIters clamp the per-size iteration count.
	MinIters, MaxIters int
	// Mode selects generic or accelerated Portals processing.
	Mode machine.Mode
	// Observe, when set, is called with the freshly built machine before
	// the run starts — the hook for tracing and statistics collection.
	Observe func(*machine.Machine)
}

// DefaultConfig mirrors the paper's runs.
func DefaultConfig() Config {
	return Config{
		MaxBytes:     8 << 20,
		Perturbation: 3,
		MinIters:     3,
		MaxIters:     120,
		Mode:         machine.Generic,
	}
}

// Sizes generates the NetPIPE size schedule: 1, 2, 3, then 2^k−p, 2^k,
// 2^k+p for each power of two through max.
func Sizes(max, pert int) []int {
	var out []int
	seen := map[int]bool{}
	add := func(n int) {
		if n >= 1 && n <= max && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	add(1)
	add(2)
	add(3)
	for k := 2; 1<<k <= max; k++ {
		base := 1 << k
		if pert > 0 {
			add(base - pert)
		}
		add(base)
		if pert > 0 && base+pert <= max {
			add(base + pert)
		}
	}
	sort.Ints(out)
	return out
}

// iters is the deterministic size-dependent iteration count; both sides of
// a run compute it identically, which keeps them in lock step without a
// control channel.
func (c Config) iters(size int) int {
	n := 2_000_000 / (size + 2000)
	if n < c.MinIters {
		n = c.MinIters
	}
	if n > c.MaxIters {
		n = c.MaxIters
	}
	return n
}

// startGate synchronizes the two benchmark processes before timing begins.
type startGate struct {
	need, have int
	sig        *sim.Signal
}

func newStartGate(s *sim.Sim, need int) *startGate {
	return &startGate{need: need, sig: sim.NewSignal(s)}
}

func (g *startGate) wait(p *sim.Proc) {
	g.have++
	if g.have == g.need {
		g.sig.Raise()
		return
	}
	g.sig.Wait(p)
}

// fillPercentiles copies a round-latency histogram's p50/p99 into a point.
func fillPercentiles(pt *Point, h *telemetry.Histogram) {
	if h.Count() == 0 {
		return
	}
	pt.P50 = sim.Time(h.Quantile(0.5))
	pt.P99 = sim.Time(h.Quantile(0.99))
}

// finish converts a measured block into a point.
func point(size, iters int, elapsed sim.Time, transfersPerIter int, latHalf bool) Point {
	pt := Point{Bytes: size, Iters: iters, Elapsed: elapsed}
	per := elapsed / sim.Time(iters)
	if latHalf {
		pt.Latency = per / 2
	}
	totalBytes := float64(size) * float64(iters) * float64(transfersPerIter)
	if elapsed > 0 {
		pt.MBps = totalBytes / elapsed.Seconds() / 1e6
	}
	return pt
}

// RunMPI measures one MPI curve over a fresh two-node machine.
func RunMPI(p model.Params, impl mpi.Impl, pat Pattern, cfg Config) Result {
	m := machine.NewPair(p)
	if cfg.Observe != nil {
		cfg.Observe(m)
	}
	sizes := Sizes(cfg.MaxBytes, cfg.Perturbation)
	var points []Point

	err := mpi.Launch(m, []topo.NodeID{0, 1}, impl, cfg.Mode, func(r *mpi.Rank) {
		buf := r.Alloc(cfg.MaxBytes)
		rbuf := r.Alloc(cfg.MaxBytes)
		me, other := r.Rank(), 1-r.Rank()
		lat := telemetry.NewHistogram()
		r.Barrier()
		for _, s := range sizes {
			k := cfg.iters(s)
			switch pat {
			case PingPong:
				if me == 0 {
					// Warmup round.
					r.Send(other, 1, buf, 0, s)
					r.Recv(other, 2, rbuf, 0, s)
					lat.Reset()
					t0 := r.Proc().Now()
					for i := 0; i < k; i++ {
						t1 := r.Proc().Now()
						r.Send(other, 1, buf, 0, s)
						r.Recv(other, 2, rbuf, 0, s)
						lat.Observe(int64((r.Proc().Now() - t1) / 2))
					}
					pt := point(s, k, r.Proc().Now()-t0, 2, true)
					fillPercentiles(&pt, lat)
					points = append(points, pt)
				} else {
					for i := 0; i < k+1; i++ {
						r.Recv(other, 1, rbuf, 0, s)
						r.Send(other, 2, buf, 0, s)
					}
				}
			case Stream:
				if me == 0 {
					r.Send(other, 1, buf, 0, s) // warmup
					r.Recv(other, 3, rbuf, 0, 0)
					t0 := r.Proc().Now()
					for i := 0; i < k; i++ {
						r.Send(other, 1, buf, 0, s)
					}
					r.Recv(other, 3, rbuf, 0, 0) // receiver's "got them all"
					points = append(points, point(s, k, r.Proc().Now()-t0, 1, false))
				} else {
					r.Recv(other, 1, rbuf, 0, s)
					r.Send(other, 3, buf, 0, 0)
					for i := 0; i < k; i++ {
						r.Recv(other, 1, rbuf, 0, s)
					}
					r.Send(other, 3, buf, 0, 0)
				}
			case Bidir:
				r.Sendrecv(other, 1, buf, 0, s, other, 1, rbuf, 0, s) // warmup
				t0 := r.Proc().Now()
				for i := 0; i < k; i++ {
					r.Sendrecv(other, 1, buf, 0, s, other, 1, rbuf, 0, s)
				}
				if me == 0 {
					points = append(points, point(s, k, r.Proc().Now()-t0, 2, true))
				}
			}
		}
	})
	if err != nil {
		panic(err)
	}
	m.Run()
	return Result{Series: impl.String(), Pat: pat, Points: points}
}
