package netpipe

import (
	"fmt"
	"sync/atomic"
	"testing"

	"portals3/internal/machine"
	"portals3/internal/model"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 3, 16} {
		for _, n := range []int{0, 1, 5, 64} {
			hits := make([]int32, n)
			ForEach(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Errorf("workers=%d n=%d: index %d ran %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Errorf("recovered %v, want boom", r)
		}
	}()
	ForEach(4, 8, func(i int) {
		if i == 3 {
			panic("boom")
		}
	})
}

func TestRunConcurrentPreservesInputOrder(t *testing.T) {
	var jobs []Job
	for i := 0; i < 20; i++ {
		i := i
		jobs = append(jobs, func() Result { return Result{Series: fmt.Sprintf("job%d", i)} })
	}
	out := RunConcurrent(4, jobs)
	for i, r := range out {
		if want := fmt.Sprintf("job%d", i); r.Series != want {
			t.Errorf("slot %d holds %q, want %q", i, r.Series, want)
		}
	}
}

// TestParallelRunsMatchSequentialBitForBit: the same (op, pattern, config)
// sweep must produce identical points — and drive the identical number of
// simulator events — whether its machine runs alone on the caller's
// goroutine or interleaved with three other machines on the worker pool.
func TestParallelRunsMatchSequentialBitForBit(t *testing.T) {
	p := model.Defaults()
	cfg := DefaultConfig()
	cfg.MaxBytes = 4 << 10

	run := func(op Op) (Result, uint64) {
		c := cfg
		var m *machine.Machine
		c.Observe = func(mm *machine.Machine) { m = mm }
		r := RunPortals(p, op, PingPong, c)
		return r, m.S.Fired
	}

	seqPut, seqPutFired := run(OpPut)
	seqGet, seqGetFired := run(OpGet)

	results := make([]Result, 4)
	fired := make([]uint64, 4)
	ops := []Op{OpPut, OpGet, OpPut, OpGet}
	ForEach(4, 4, func(i int) {
		results[i], fired[i] = run(ops[i])
	})

	check := func(i int, want Result, wantFired uint64) {
		t.Helper()
		got := results[i]
		if fired[i] != wantFired {
			t.Errorf("arm %d: Sim.Fired = %d parallel vs %d sequential", i, fired[i], wantFired)
		}
		if len(got.Points) != len(want.Points) {
			t.Fatalf("arm %d: %d points vs %d", i, len(got.Points), len(want.Points))
		}
		for j := range want.Points {
			if got.Points[j] != want.Points[j] {
				t.Errorf("arm %d point %d: %+v vs %+v", i, j, got.Points[j], want.Points[j])
			}
		}
	}
	check(0, seqPut, seqPutFired)
	check(1, seqGet, seqGetFired)
	check(2, seqPut, seqPutFired)
	check(3, seqGet, seqGetFired)
}

func TestPayloadPatternMatchesNetPIPEFill(t *testing.T) {
	got := payloadPattern(300)
	if len(got) != 300 {
		t.Fatalf("len = %d", len(got))
	}
	for i, b := range got {
		if b != byte(i*11) {
			t.Fatalf("byte %d = %#x, want %#x", i, b, byte(i*11))
		}
	}
	// Growing must not disturb previously handed-out prefixes.
	big := payloadPattern(5000)
	for i := range got {
		if big[i] != got[i] {
			t.Fatalf("grow rewrote byte %d", i)
		}
	}
}
