package netpipe

import (
	"fmt"
	"sync"

	"portals3/internal/core"
	"portals3/internal/machine"
	"portals3/internal/model"
	"portals3/internal/sim"
	"portals3/internal/telemetry"
)

// The transmit payload pattern is shared by every sweep: one append-only
// buffer, grown under a lock to the largest size any run has asked for,
// instead of building (and garbage-collecting) a fresh 8 MB pattern per
// sweep point. Existing bytes are never rewritten, so a slice handed out
// here stays valid even while another driver worker grows the buffer.
var (
	fillMu  sync.Mutex
	fillPat []byte
)

// payloadPattern returns n deterministic payload bytes (byte i is i*11,
// NetPIPE's fill).
func payloadPattern(n int) []byte {
	fillMu.Lock()
	defer fillMu.Unlock()
	for len(fillPat) < n {
		fillPat = append(fillPat, byte(len(fillPat)*11))
	}
	return fillPat[:n:n]
}

// This file is the NetPIPE Portals module of paper §5.2: it "creates a
// memory descriptor for receiving messages on a Portal with a single match
// entry attached" and measures put and get operations in ping-pong,
// streaming, and bi-directional patterns directly against the Portals API.

const (
	npPtl  = 5
	npBits = 0x4E50 // "NP"
)

// npSide is one process's benchmark state.
type npSide struct {
	app    *machine.App
	eq     core.EQHandle
	rxBuf  core.Region
	txBuf  core.Region
	sendMD core.MDHandle
	getMD  core.MDHandle
	peer   core.ProcessID
	// lat accumulates per-round latencies (RTT/2, in picoseconds) within
	// one ping-pong block; reset per size, so a point's percentiles cover
	// exactly its timed iterations.
	lat *telemetry.Histogram
}

// setup creates the module's Portals objects. The receive descriptor uses
// a remotely managed offset so every message lands at offset zero — each
// round overwrites the previous one, like NetPIPE's fixed receive buffer —
// and allows both put and get so one descriptor serves every test.
func npSetup(app *machine.App, maxBytes int, peer core.ProcessID, op Op) *npSide {
	s := &npSide{app: app, peer: peer, lat: telemetry.NewHistogram()}
	eq, err := app.API.EQAlloc(4096)
	if err != nil {
		panic(err)
	}
	s.eq = eq
	me, err := app.API.MEAttach(npPtl, core.ProcessID{Nid: core.NidAny, Pid: core.PidAny},
		npBits, 0, core.Retain, core.After)
	if err != nil {
		panic(err)
	}
	// The get tests keep START events enabled: GET_START (the header has
	// been matched) is the turnaround trigger for the get ping-pong.
	opts := core.MDOpPut | core.MDOpGet | core.MDManageRemote
	if op == OpPut {
		opts |= core.MDEventStartDisable
	}
	s.rxBuf = app.Alloc(maxBytes)
	if _, err := app.API.MDAttach(me, core.MDesc{
		Region:    s.rxBuf,
		Threshold: core.ThresholdInfinite,
		Options:   opts,
		EQ:        eq,
	}, core.Retain); err != nil {
		panic(err)
	}
	s.txBuf = app.Alloc(maxBytes)
	s.txBuf.WriteAt(0, payloadPattern(maxBytes))
	s.sendMD, err = app.API.MDBind(core.MDesc{
		Region:    s.txBuf,
		Threshold: core.ThresholdInfinite,
		Options:   core.MDEventStartDisable,
		EQ:        eq,
	})
	if err != nil {
		panic(err)
	}
	s.getMD, err = app.API.MDBind(core.MDesc{
		Region:    s.rxBuf,
		Threshold: core.ThresholdInfinite,
		Options:   core.MDEventStartDisable,
		EQ:        eq,
	})
	if err != nil {
		panic(err)
	}
	return s
}

// wait blocks until the next event of type want, discarding others (the
// module's event loop filters SEND_ENDs while waiting for data, exactly as
// the C module's PtlEQWait loop does).
func (s *npSide) wait(want core.EventType) core.Event {
	for {
		ev, err := s.app.API.EQWait(s.eq)
		if err != nil && err != core.ErrEQDropped {
			panic(fmt.Sprintf("netpipe: EQWait: %v", err))
		}
		if ev.Type == want {
			return ev
		}
	}
}

// put sends n bytes to the peer.
func (s *npSide) put(n int) {
	if err := s.app.API.PutRegion(s.sendMD, 0, n, core.NoAck, s.peer, npPtl, npBits, 0, 0); err != nil {
		panic(err)
	}
}

// get pulls n bytes from the peer.
func (s *npSide) get(n int) {
	if err := s.app.API.GetRegion(s.getMD, 0, n, s.peer, npPtl, npBits, 0); err != nil {
		panic(err)
	}
}

// RunPortals measures one Portals-module curve over a fresh two-node
// machine.
func RunPortals(p model.Params, op Op, pat Pattern, cfg Config) Result {
	m := machine.NewPair(p)
	if cfg.Observe != nil {
		cfg.Observe(m)
	}
	sizes := Sizes(cfg.MaxBytes, cfg.Perturbation)
	var points []Point
	gate := newStartGate(m.S, 2)

	// Peer ids are filled in after both Spawn calls return (pids are
	// assigned synchronously); the closures read them at run time.
	var ids [2]core.ProcessID
	run := func(rank int) func(app *machine.App) {
		return func(app *machine.App) {
			side := npSetup(app, cfg.MaxBytes, ids[1-rank], op)
			gate.wait(app.Proc)
			for _, sz := range sizes {
				k := cfg.iters(sz)
				var elapsed sim.Time
				switch {
				case op == OpPut && pat == PingPong:
					elapsed = side.putPingPong(rank, sz, k)
				case op == OpPut && pat == Stream:
					elapsed = side.putStream(rank, sz, k)
				case op == OpPut && pat == Bidir:
					elapsed = side.putBidir(sz, k)
				case op == OpGet && pat == PingPong:
					elapsed = side.getPingPong(rank, sz, k)
				case op == OpGet && pat == Stream:
					elapsed = side.getStream(rank, sz, k)
				case op == OpGet && pat == Bidir:
					elapsed = side.getBidir(sz, k)
				}
				if rank == 0 {
					per := 1
					if pat != Stream {
						per = 2 // ping-pong rounds and bidir exchanges move two messages
					}
					pt := point(sz, k, elapsed, per, pat == PingPong)
					fillPercentiles(&pt, side.lat)
					points = append(points, pt)
				}
			}
		}
	}
	app0, err := m.Spawn(0, "np0", cfg.Mode, run(0))
	if err != nil {
		panic(err)
	}
	app1, err := m.Spawn(1, "np1", cfg.Mode, run(1))
	if err != nil {
		panic(err)
	}
	ids[0], ids[1] = app0.ID(), app1.ID()
	m.Run()
	return Result{Series: op.String(), Pat: pat, Points: points}
}

// putPingPong: the classic alternating exchange; one warmup round, then k
// timed rounds. Latency = elapsed / (2k).
func (s *npSide) putPingPong(rank, sz, k int) sim.Time {
	if rank == 0 {
		s.put(sz)
		s.wait(core.EventPutEnd)
		s.lat.Reset()
		t0 := s.app.Proc.Now()
		for i := 0; i < k; i++ {
			t1 := s.app.Proc.Now()
			s.put(sz)
			s.wait(core.EventPutEnd)
			s.lat.Observe(int64((s.app.Proc.Now() - t1) / 2))
		}
		return s.app.Proc.Now() - t0
	}
	for i := 0; i < k+1; i++ {
		s.wait(core.EventPutEnd)
		s.put(sz)
	}
	return 0
}

// putStream: rank 0 fires k puts back to back, pacing only on local
// SEND_END (buffer reuse); rank 1 acknowledges the full batch with one
// zero-length put.
func (s *npSide) putStream(rank, sz, k int) sim.Time {
	if rank == 0 {
		s.put(sz) // warmup
		s.wait(core.EventSendEnd)
		s.wait(core.EventPutEnd) // peer's ready signal
		t0 := s.app.Proc.Now()
		for i := 0; i < k; i++ {
			s.put(sz)
			s.wait(core.EventSendEnd)
		}
		s.wait(core.EventPutEnd) // batch acknowledgment
		return s.app.Proc.Now() - t0
	}
	s.wait(core.EventPutEnd) // warmup
	s.put(0)                 // ready
	for i := 0; i < k; i++ {
		s.wait(core.EventPutEnd)
	}
	s.put(0)
	s.wait(core.EventSendEnd)
	return 0
}

// putBidir: both sides put and wait for the incoming put each round.
func (s *npSide) putBidir(sz, k int) sim.Time {
	s.put(sz)
	s.wait(core.EventPutEnd)
	t0 := s.app.Proc.Now()
	for i := 0; i < k; i++ {
		s.put(sz)
		s.wait(core.EventPutEnd)
	}
	return s.app.Proc.Now() - t0
}

// getPingPong: alternating pulls. Rank 0 gets from rank 1; rank 1, seeing
// its data taken (GET_END), gets back. The handshakes pipeline, which is
// why the paper's get latency is below a full get round trip.
func (s *npSide) getPingPong(rank, sz, k int) sim.Time {
	if rank == 0 {
		s.get(sz)
		s.wait(core.EventGetStart)
		s.lat.Reset()
		t0 := s.app.Proc.Now()
		for i := 0; i < k; i++ {
			t1 := s.app.Proc.Now()
			s.get(sz)
			s.wait(core.EventGetStart)
			s.lat.Observe(int64((s.app.Proc.Now() - t1) / 2))
		}
		return s.app.Proc.Now() - t0
	}
	for i := 0; i < k+1; i++ {
		s.wait(core.EventGetStart)
		s.get(sz)
	}
	return 0
}

// getStream: rank 0 pulls repeatedly. A get is "a blocking operation (for
// this benchmark) that cannot be pipelined" (§6): every iteration waits for
// its reply.
func (s *npSide) getStream(rank, sz, k int) sim.Time {
	if rank != 0 {
		// Passive data source; its descriptor answers gets by itself.
		// Drain the block's events so the next block starts clean.
		for i := 0; i < k+1; i++ {
			s.wait(core.EventGetEnd)
		}
		return 0
	}
	s.get(sz)
	s.wait(core.EventReplyEnd)
	t0 := s.app.Proc.Now()
	for i := 0; i < k; i++ {
		s.get(sz)
		s.wait(core.EventReplyEnd)
	}
	return s.app.Proc.Now() - t0
}

// getBidir: both sides pull simultaneously.
func (s *npSide) getBidir(sz, k int) sim.Time {
	s.get(sz)
	s.wait(core.EventReplyEnd)
	t0 := s.app.Proc.Now()
	for i := 0; i < k; i++ {
		s.get(sz)
		s.wait(core.EventReplyEnd)
	}
	return s.app.Proc.Now() - t0
}
