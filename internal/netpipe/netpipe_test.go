package netpipe

import (
	"sort"
	"strings"
	"testing"

	"portals3/internal/machine"
	"portals3/internal/model"
	"portals3/internal/mpi"
	"portals3/internal/sim"
)

// smallCfg keeps unit tests fast: sweeps stop at 64 KB.
func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.MaxBytes = 64 << 10
	return cfg
}

func TestSizesSchedule(t *testing.T) {
	s := Sizes(64, 3)
	if !sort.IntsAreSorted(s) {
		t.Errorf("sizes not sorted: %v", s)
	}
	want := map[int]bool{1: true, 2: true, 3: true, 4: true, 7: true, 5: true,
		8: true, 11: true, 13: true, 16: true, 19: true, 29: true, 32: true,
		35: true, 61: true, 64: true}
	for _, v := range s {
		if !want[v] {
			t.Errorf("unexpected size %d in %v", v, s)
		}
	}
	for v := range want {
		found := false
		for _, got := range s {
			if got == v {
				found = true
			}
		}
		if !found {
			t.Errorf("missing size %d in %v", v, s)
		}
	}
	// No duplicates, never exceeding max.
	seen := map[int]bool{}
	for _, v := range s {
		if seen[v] || v > 64 || v < 1 {
			t.Errorf("bad schedule entry %d", v)
		}
		seen[v] = true
	}
	if got := Sizes(16, 0); len(got) != 6 { // 1,2,3,4,8,16
		t.Errorf("perturbation-free schedule: %v", got)
	}
}

func TestItersClampAndMonotonicity(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.iters(1) != cfg.MaxIters {
		t.Errorf("tiny messages should hit MaxIters, got %d", cfg.iters(1))
	}
	if cfg.iters(8<<20) != cfg.MinIters {
		t.Errorf("8MB should hit MinIters, got %d", cfg.iters(8<<20))
	}
	last := cfg.iters(1)
	for s := 2; s <= 1<<20; s *= 2 {
		n := cfg.iters(s)
		if n > last {
			t.Errorf("iters grew with size at %d", s)
		}
		last = n
	}
}

func TestPortalsPingPongShape(t *testing.T) {
	r := RunPortals(model.Defaults(), OpPut, PingPong, smallCfg())
	if len(r.Points) != len(Sizes(64<<10, 3)) {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Latency nondecreasing with size (within this range), bandwidth
	// increasing at the top end.
	if r.Points[0].Latency <= 0 {
		t.Error("no latency measured")
	}
	last := r.Points[len(r.Points)-1]
	first := r.Points[0]
	if last.MBps <= first.MBps {
		t.Error("bandwidth did not grow with message size")
	}
	if last.Latency < first.Latency {
		t.Error("64KB latency below 1B latency")
	}
}

func TestGetSlowerThanPutPingPong(t *testing.T) {
	p := model.Defaults()
	cfg := smallCfg()
	put := RunPortals(p, OpPut, PingPong, cfg)
	get := RunPortals(p, OpGet, PingPong, cfg)
	if get.Points[0].Latency <= put.Points[0].Latency {
		t.Errorf("get (%v) should be slower than put (%v) at 1 byte (§6)",
			get.Points[0].Latency, put.Points[0].Latency)
	}
}

func TestStreamBeatsPingPongBandwidth(t *testing.T) {
	p := model.Defaults()
	cfg := smallCfg()
	pp := RunPortals(p, OpPut, PingPong, cfg)
	st := RunPortals(p, OpPut, Stream, cfg)
	at := func(r Result, bytes int) float64 {
		for _, pt := range r.Points {
			if pt.Bytes == bytes {
				return pt.MBps
			}
		}
		return -1
	}
	// "the graph is steeper for this curve than the ping-pong bandwidth
	// results" (§6): streaming wins at mid sizes.
	if stBW := at(st, 8192); stBW <= at(pp, 8192) {
		t.Errorf("streaming (%0.f) should beat ping-pong (%0.f) at 8KB", stBW, at(pp, 8192))
	}
}

func TestStreamGetCannotPipeline(t *testing.T) {
	p := model.Defaults()
	cfg := smallCfg()
	put := RunPortals(p, OpPut, Stream, cfg)
	get := RunPortals(p, OpGet, Stream, cfg)
	for i := range put.Points {
		if put.Points[i].Bytes == 4096 {
			if get.Points[i].MBps >= put.Points[i].MBps {
				t.Errorf("streaming get (%.0f) should trail put (%.0f) badly at 4KB (§6)",
					get.Points[i].MBps, put.Points[i].MBps)
			}
		}
	}
}

func TestBidirAggregatesBothDirections(t *testing.T) {
	p := model.Defaults()
	cfg := smallCfg()
	uni := RunPortals(p, OpPut, PingPong, cfg)
	bid := RunPortals(p, OpPut, Bidir, cfg)
	last := len(uni.Points) - 1
	if bid.Points[last].MBps < 1.5*uni.Points[last].MBps {
		t.Errorf("bidir at 64KB (%.0f) should approach 2x uni (%.0f)",
			bid.Points[last].MBps, uni.Points[last].MBps)
	}
}

func TestMPIRunsAllPatterns(t *testing.T) {
	p := model.Defaults()
	cfg := smallCfg()
	for _, pat := range []Pattern{PingPong, Stream, Bidir} {
		r := RunMPI(p, mpi.MPICH1, pat, cfg)
		if len(r.Points) == 0 {
			t.Fatalf("%v produced no points", pat)
		}
		for _, pt := range r.Points {
			if pt.MBps <= 0 && pt.Bytes > 0 {
				t.Errorf("%v at %d B: zero bandwidth", pat, pt.Bytes)
			}
		}
	}
}

func TestAcceleratedModeRuns(t *testing.T) {
	cfg := smallCfg()
	cfg.Mode = machine.Accelerated
	r := RunPortals(model.Defaults(), OpPut, PingPong, cfg)
	if r.Points[0].Latency <= 0 {
		t.Fatal("no measurement in accelerated mode")
	}
	cfg2 := smallCfg()
	gen := RunPortals(model.Defaults(), OpPut, PingPong, cfg2)
	if r.Points[0].Latency >= gen.Points[0].Latency {
		t.Error("accelerated mode not faster at 1 byte")
	}
}

func TestPatternAndOpStrings(t *testing.T) {
	if PingPong.String() != "pingpong" || Stream.String() != "stream" || Bidir.String() != "bidir" {
		t.Error("pattern names wrong")
	}
	if OpPut.String() != "put" || OpGet.String() != "get" {
		t.Error("op names wrong")
	}
}

// TestPingPongPercentiles pins the percentile reporting: ping-pong points
// carry p50/p99 from the per-round histogram, the values are internally
// consistent, and — the simulator's determinism contract — two identical
// runs produce identical percentiles.
func TestPingPongPercentiles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxBytes = 4096
	r1 := RunPortals(model.Defaults(), OpPut, PingPong, cfg)
	r2 := RunPortals(model.Defaults(), OpPut, PingPong, cfg)
	if len(r1.Points) != len(r2.Points) {
		t.Fatalf("run lengths differ: %d vs %d", len(r1.Points), len(r2.Points))
	}
	for i, pt := range r1.Points {
		if pt != r2.Points[i] {
			t.Errorf("point %d differs between identical runs: %+v vs %+v", i, pt, r2.Points[i])
		}
		if pt.P50 <= 0 || pt.P99 <= 0 {
			t.Errorf("%d B: missing percentiles: p50=%v p99=%v", pt.Bytes, pt.P50, pt.P99)
		}
		if pt.P50 > pt.P99 {
			t.Errorf("%d B: p50 %v > p99 %v", pt.Bytes, pt.P50, pt.P99)
		}
		if pt.P99 > 2*pt.Latency {
			t.Errorf("%d B: p99 %v implausibly above mean %v", pt.Bytes, pt.P99, pt.Latency)
		}
	}
	// At one byte every round costs the same, so the clamped histogram
	// reports the exact constant: p50 == p99, and both match the mean to
	// within integer-division rounding of the block time.
	one := r1.Points[0]
	if one.Bytes != 1 {
		t.Fatalf("first point is %d B", one.Bytes)
	}
	if one.P50 != one.P99 {
		t.Errorf("1 B rounds not constant: p50 %v != p99 %v", one.P50, one.P99)
	}
	if d := one.P50 - one.Latency; d < -sim.Nanosecond || d > sim.Nanosecond {
		t.Errorf("1 B p50 %v differs from mean %v by more than rounding", one.P50, one.Latency)
	}
	// The string form carries the percentile columns for ping-pong points
	// and omits them when absent.
	if s := one.String(); !strings.Contains(s, "p50") || !strings.Contains(s, "p99") {
		t.Errorf("ping-pong Point.String() missing percentiles: %q", s)
	}
	if s := (Point{Bytes: 1}).String(); strings.Contains(s, "p50") {
		t.Errorf("empty point renders percentiles: %q", s)
	}
}

// TestStreamHasNoPercentiles: streaming measures a pipelined block, not
// rounds, so percentile fields stay zero.
func TestStreamHasNoPercentiles(t *testing.T) {
	cfg := smallCfg()
	cfg.MaxBytes = 1024
	r := RunPortals(model.Defaults(), OpPut, Stream, cfg)
	for _, pt := range r.Points {
		if pt.P50 != 0 || pt.P99 != 0 {
			t.Errorf("%d B stream point has percentiles: %+v", pt.Bytes, pt)
		}
	}
}

// TestMPIPercentiles: the MPI module's ping-pong carries percentiles too.
func TestMPIPercentiles(t *testing.T) {
	cfg := smallCfg()
	cfg.MaxBytes = 1024
	r := RunMPI(model.Defaults(), mpi.MPICH2, PingPong, cfg)
	for _, pt := range r.Points {
		if pt.P50 <= 0 || pt.P99 < pt.P50 {
			t.Errorf("%d B: bad MPI percentiles %+v", pt.Bytes, pt)
		}
	}
}
