package netpipe

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the parallel experiment driver. Every measurement in the
// figure and ablation suite builds, runs and tears down its own isolated
// simulated machine (its own Sim, fabric, nodes and processes), so the
// sweep arms are embarrassingly parallel: the only shared state is the
// read-only model.Params value each job copies. The driver fans jobs out
// across a bounded pool of OS-scheduled workers while keeping the results
// — and therefore every rendered table — in deterministic input order.

// Job is one isolated measurement: it owns everything it touches and may
// run on any worker.
type Job func() Result

// ForEach runs fn(0) … fn(n-1) across a bounded pool of worker goroutines
// and returns once every call has completed. workers ≤ 0 means GOMAXPROCS;
// one worker (or one job) runs inline on the caller's goroutine, so
// sequential runs have zero scheduling overhead and no goroutine churn.
//
// Indices are handed out dynamically (work stealing via a shared counter),
// which keeps long arms — the 8 MB put sweep — from serializing behind
// short ones. Determinism is the caller's job: each index must write only
// its own result slot. A panic in any fn is re-raised on the caller's
// goroutine after all workers finish.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// RunConcurrent executes jobs on the ForEach pool and assembles the
// results in input order, so a parallel run renders byte-identically to a
// sequential one.
func RunConcurrent(workers int, jobs []Job) []Result {
	out := make([]Result, len(jobs))
	ForEach(workers, len(jobs), func(i int) { out[i] = jobs[i]() })
	return out
}
