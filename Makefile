# Stdlib-only Go; these targets just bundle the usual invocations.

.PHONY: all build test race vet bench figures check check-fast soak soak-short

all: build

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

vet:
	go vet ./...

# Substrate microbenchmarks (event kernel + one full put).
bench:
	go test -run xxx -bench 'SimulatorEventThroughput$$|SimulatorZeroDelayLane|SimulatorEventThroughputDeep|SimulatedPut' -benchmem .

# Every paper figure, one iteration each.
figures:
	go test -run xxx -bench 'Figure' -benchtime 1x -benchmem .

# The pre-commit gate: vet + build + race tests + substrate benchmarks
# against the committed BENCH_substrate.json baselines.
check:
	sh scripts/check.sh

check-fast:
	sh scripts/check.sh -fast

# Chaos soak campaigns: seeded virtual-time fault schedules over the
# standard workloads at shards 1 and 4, ledger-balanced and byte-identical
# across shard counts; failures auto-bisect to a minimal schedule under
# soak_artifacts/. Trend history accumulates in SOAK_trend.json next to
# BENCH_substrate.json, and each arm drops a host-execution profile
# (render with p3stat) under soak_artifacts/. soak-short is the ~1 minute
# CI gate.
soak:
	go run ./cmd/soak -seeds 5 -hostprof -out SOAK_trend.json

soak-short:
	go run ./cmd/soak -short -hostprof -out SOAK_trend.json
