# Stdlib-only Go; these targets just bundle the usual invocations.

.PHONY: all build test race vet bench figures check check-fast

all: build

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

vet:
	go vet ./...

# Substrate microbenchmarks (event kernel + one full put).
bench:
	go test -run xxx -bench 'SimulatorEventThroughput$$|SimulatorZeroDelayLane|SimulatorEventThroughputDeep|SimulatedPut' -benchmem .

# Every paper figure, one iteration each.
figures:
	go test -run xxx -bench 'Figure' -benchtime 1x -benchmem .

# The pre-commit gate: vet + build + race tests + substrate benchmarks
# against the committed BENCH_substrate.json baselines.
check:
	sh scripts/check.sh

check-fast:
	sh scripts/check.sh -fast
