// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6), one benchmark per artifact, plus the ablations from DESIGN.md and
// micro-benchmarks of the simulation substrate itself.
//
// Each figure benchmark runs the full experiment per iteration and attaches
// the headline numbers as custom metrics (us = microseconds of simulated
// latency, MB/s = simulated bandwidth), so `go test -bench` output can be
// compared directly against the paper. Run with -v to get the full data
// tables.
package portals3

import (
	"strings"
	"testing"

	"portals3/internal/experiments"
	"portals3/internal/machine"
	"portals3/internal/model"
	"portals3/internal/netpipe"
	"portals3/internal/sim"
)

// logFigure attaches the rendered data table to the benchmark output.
func logFigure(b *testing.B, f experiments.Figure) {
	var sb strings.Builder
	f.Render(&sb)
	b.Log("\n" + sb.String())
}

// latencyAt extracts a series' latency at one size, in microseconds.
func latencyAt(f experiments.Figure, series string, bytes int) float64 {
	for _, s := range f.Series {
		if s.Series != series {
			continue
		}
		for _, pt := range s.Points {
			if pt.Bytes == bytes {
				return pt.Latency.Micros()
			}
		}
	}
	return 0
}

// mbpsAt extracts a series' bandwidth at one size.
func mbpsAt(f experiments.Figure, series string, bytes int) float64 {
	for _, s := range f.Series {
		if s.Series != series {
			continue
		}
		for _, pt := range s.Points {
			if pt.Bytes == bytes {
				return pt.MBps
			}
		}
	}
	return 0
}

// BenchmarkFigure4Latency regenerates paper Figure 4: ping-pong latency,
// 1 B – 1 KB, for put, get, MPICH-1.2.6 and MPICH2. Paper values at one
// byte: 5.39, 6.60, 7.97 and 8.40 µs.
func BenchmarkFigure4Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Figure4(model.Defaults())
		b.ReportMetric(latencyAt(f, "put", 1), "put_us")
		b.ReportMetric(latencyAt(f, "get", 1), "get_us")
		b.ReportMetric(latencyAt(f, "mpich-1.2.6", 1), "mpich1_us")
		b.ReportMetric(latencyAt(f, "mpich2", 1), "mpich2_us")
		if i == 0 {
			logFigure(b, f)
		}
	}
}

// BenchmarkFigure5UniBandwidth regenerates paper Figure 5: uni-directional
// ping-pong bandwidth to 8 MB. Paper peak: put 1108.76 MB/s,
// half-bandwidth around 7 KB.
func BenchmarkFigure5UniBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Figure5(model.Defaults())
		b.ReportMetric(mbpsAt(f, "put", 8<<20), "put_MB/s")
		b.ReportMetric(mbpsAt(f, "get", 8<<20), "get_MB/s")
		b.ReportMetric(mbpsAt(f, "mpich2", 8<<20), "mpich2_MB/s")
		if i == 0 {
			logFigure(b, f)
		}
	}
}

// BenchmarkFigure6StreamBandwidth regenerates paper Figure 6: streaming
// bandwidth. Paper: half-bandwidth around 5 KB; the get curve suffers
// badly (blocking operation, no pipelining).
func BenchmarkFigure6StreamBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Figure6(model.Defaults())
		b.ReportMetric(mbpsAt(f, "put", 8192), "put8K_MB/s")
		b.ReportMetric(mbpsAt(f, "get", 8192), "get8K_MB/s")
		b.ReportMetric(mbpsAt(f, "put", 8<<20), "put_MB/s")
		if i == 0 {
			logFigure(b, f)
		}
	}
}

// BenchmarkFigure7BidirBandwidth regenerates paper Figure 7:
// bi-directional bandwidth. Paper peak: put 2203.19 MB/s at 8 MB.
func BenchmarkFigure7BidirBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Figure7(model.Defaults())
		b.ReportMetric(mbpsAt(f, "put", 8<<20), "put_MB/s")
		b.ReportMetric(mbpsAt(f, "mpich2", 8<<20), "mpich2_MB/s")
		if i == 0 {
			logFigure(b, f)
		}
	}
}

// BenchmarkTrapAndInterruptCosts reproduces the scalar claims of §3.3: a
// null trap costs ~75 ns on Catamount and an interrupt at least 2 µs.
func BenchmarkTrapAndInterruptCosts(b *testing.B) {
	p := model.Defaults()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(p.TrapOverhead.Nanos(), "trap_ns")
		b.ReportMetric(p.InterruptOverhead.Micros(), "interrupt_us")
		// Measured end to end: the difference between a 12-byte put (one
		// interrupt) and a 16-byte put (two interrupts) exposes the
		// interrupt cost on the wire path.
		cfg := netpipe.DefaultConfig()
		cfg.MaxBytes = 16
		r := netpipe.RunPortals(p, netpipe.OpPut, netpipe.PingPong, cfg)
		var at11, at16 sim.Time
		for _, pt := range r.Points {
			if pt.Bytes == 11 {
				at11 = pt.Latency
			}
			if pt.Bytes == 16 {
				at16 = pt.Latency
			}
		}
		b.ReportMetric((at16 - at11).Micros(), "inline_step_us")
	}
}

// BenchmarkAblationAcceleratedMode is ablation A1: generic vs accelerated
// processing for the same workload (§3.3's forward-looking design).
func BenchmarkAblationAcceleratedMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a := experiments.AblationAccelerated(model.Defaults())
		find := func(r netpipe.Result, bytes int) float64 {
			for _, pt := range r.Points {
				if pt.Bytes == bytes {
					return pt.Latency.Micros()
				}
			}
			return 0
		}
		b.ReportMetric(find(a.Generic, 1), "generic_us")
		b.ReportMetric(find(a.Accel, 1), "accel_us")
		b.ReportMetric(find(a.Generic, 1024), "generic1K_us")
		b.ReportMetric(find(a.Accel, 1024), "accel1K_us")
	}
}

// BenchmarkAblationGoBackN is ablation A2: incast resource exhaustion
// under the panic policy vs the go-back-n recovery protocol (§4.3).
func BenchmarkAblationGoBackN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationGoBackN(model.Defaults(), 4, 30, 2048)
		b.ReportMetric(float64(r[0].Completed), "panic_delivered")
		b.ReportMetric(float64(r[1].Completed), "gbn_delivered")
		b.ReportMetric(float64(r[1].Retransmits), "gbn_retransmits")
		if i == 0 {
			b.Logf("\n%v\n%v", r[0], r[1])
		}
	}
}

// BenchmarkSimulatorEventThroughput measures the substrate itself: how
// many simulator events per second of host time the kernel dispatches
// through the timed (heap) lane.
func BenchmarkSimulatorEventThroughput(b *testing.B) {
	b.ReportAllocs()
	s := sim.New()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			s.After(sim.Nanosecond, tick)
		}
	}
	b.ResetTimer()
	s.After(sim.Nanosecond, tick)
	s.Run()
}

// BenchmarkSimulatorZeroDelayLane measures the same-timestamp FIFO fast
// lane: After(0) handler chaining, the dominant scheduling pattern in the
// firmware and fabric models (credit grants, posted writes, pipelines).
func BenchmarkSimulatorZeroDelayLane(b *testing.B) {
	b.ReportAllocs()
	s := sim.New()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			s.After(0, tick)
		}
	}
	b.ResetTimer()
	s.After(0, tick)
	s.Run()
}

// BenchmarkSimulatorEventThroughputDeep dispatches through a heap kept
// 1024 events deep, exercising the 4-ary sift paths a loaded machine sees
// (thousands of in-flight chunks, credits and timers).
func BenchmarkSimulatorEventThroughputDeep(b *testing.B) {
	b.ReportAllocs()
	const depth = 1024
	s := sim.New()
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired >= b.N {
			s.Stop()
			return
		}
		s.After(depth*sim.Nanosecond, tick)
	}
	for i := 0; i < depth; i++ {
		s.After(sim.Time(i+1)*sim.Nanosecond, tick)
	}
	b.ResetTimer()
	s.Run()
}

// BenchmarkFigure4LatencySequential is the parallel-driver baseline: the
// identical Figure 4 workload with the worker pool forced to one worker.
// Comparing it against BenchmarkFigure4Latency (which uses GOMAXPROCS
// workers) isolates the driver's wall-clock gain; the rendered tables are
// byte-identical either way.
func BenchmarkFigure4LatencySequential(b *testing.B) {
	defer func(old int) { experiments.Parallelism = old }(experiments.Parallelism)
	experiments.Parallelism = 1
	for i := 0; i < b.N; i++ {
		f := experiments.Figure4(model.Defaults())
		b.ReportMetric(latencyAt(f, "put", 1), "put_us")
	}
}

// BenchmarkSimulatedPut measures host wall time per fully simulated
// 1-byte put (the cost of one end-to-end message through every layer).
func BenchmarkSimulatedPut(b *testing.B) {
	b.ReportAllocs()
	cfg := netpipe.DefaultConfig()
	cfg.MaxBytes = 1
	cfg.MinIters = b.N
	cfg.MaxIters = b.N
	cfg.Mode = machine.Generic
	b.ResetTimer()
	netpipe.RunPortals(model.Defaults(), netpipe.OpPut, netpipe.PingPong, cfg)
}

// BenchmarkPingPongTelemetryOff is the telemetry-overhead baseline: the
// BenchmarkSimulatedPut workload with telemetry left disabled. Its
// allocs/op must not move when the telemetry subsystem evolves — the
// disabled path is one nil test per site.
func BenchmarkPingPongTelemetryOff(b *testing.B) {
	b.ReportAllocs()
	cfg := netpipe.DefaultConfig()
	cfg.MaxBytes = 1
	cfg.MinIters = b.N
	cfg.MaxIters = b.N
	cfg.Mode = machine.Generic
	b.ResetTimer()
	netpipe.RunPortals(model.Defaults(), netpipe.OpPut, netpipe.PingPong, cfg)
}

// BenchmarkPingPongTelemetryOn is the same workload with full telemetry:
// message attribution records, per-node interrupt histograms, and the RAS
// sampler at a 100 µs simulated period. The delta against ...Off is the
// whole observability tax.
func BenchmarkPingPongTelemetryOn(b *testing.B) {
	b.ReportAllocs()
	cfg := netpipe.DefaultConfig()
	cfg.MaxBytes = 1
	cfg.MinIters = b.N
	cfg.MaxIters = b.N
	cfg.Mode = machine.Generic
	cfg.Observe = func(m *machine.Machine) {
		m.EnableTelemetry()
		m.StartSampler(100 * sim.Microsecond)
	}
	b.ResetTimer()
	netpipe.RunPortals(model.Defaults(), netpipe.OpPut, netpipe.PingPong, cfg)
}

// BenchmarkPingPongFlightRecOn is the same workload with the flight
// recorder and stall detector armed. The recorder's hot path is a nil test
// plus a fixed-slot ring write per firmware transition, so the delta
// against ...TelemetryOff must stay within a few percent and allocs/op
// must not move at all.
func BenchmarkPingPongFlightRecOn(b *testing.B) {
	b.ReportAllocs()
	cfg := netpipe.DefaultConfig()
	cfg.MaxBytes = 1
	cfg.MinIters = b.N
	cfg.MaxIters = b.N
	cfg.Mode = machine.Generic
	cfg.Observe = func(m *machine.Machine) {
		m.EnableFlightRecorder(0)
		m.StartStallDetector(1 * sim.Millisecond)
	}
	b.ResetTimer()
	netpipe.RunPortals(model.Defaults(), netpipe.OpPut, netpipe.PingPong, cfg)
}

// benchTorusHalo runs the full 512-node (8×8×8, radius-2) halo exchange —
// the machine-scale workload of DESIGN.md §11 — once per iteration at the
// given shard count. ns/op is the wall-clock cost of the whole simulated
// run; sim_us and windows are its (shard-invariant) virtual results.
func benchTorusHalo(b *testing.B, shards int) {
	b.ReportAllocs()
	cfg := experiments.DefaultTorusConfig()
	cfg.Shards = shards
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.TorusHalo(cfg)
		if len(r.Errors) > 0 {
			b.Fatalf("halo run failed: %s", r.Errors[0])
		}
		b.ReportMetric(float64(r.FinishPs)/1e6, "sim_us")
		b.ReportMetric(float64(r.Windows), "windows")
	}
}

// BenchmarkTorusHaloSeq is the sequential reference arm (shards=1: the
// single-lane kernel, one event heap). scripts/check.sh compares it against
// BenchmarkTorusHaloShard4 for the sharded kernel's speedup and allocation
// gates (BENCH_substrate.json, torus_halo section).
func BenchmarkTorusHaloSeq(b *testing.B) { benchTorusHalo(b, 1) }

// BenchmarkTorusHaloShard4 is the parallel arm: four event lanes under
// conservative lookahead. Simulated results are bit-identical to the Seq
// arm (enforced by TestTorusDifferential); only wall-clock may differ.
func BenchmarkTorusHaloShard4(b *testing.B) { benchTorusHalo(b, 4) }

// BenchmarkTorusHaloShard4SamplerOn is the observed sharded arm: four
// lanes with every periodic observer armed — telemetry, the RAS sampler
// (counter + link-contention series), the stall detector, the heartbeat
// monitor and the flight recorder. Tracing stays off: it allocates per
// wire record by design and is not a production-on instrument. The delta
// against BenchmarkTorusHaloShard4 is the price of lane-local observation
// on the hot path; scripts/check.sh gates it (BENCH_substrate.json,
// torus_halo section).
func BenchmarkTorusHaloShard4SamplerOn(b *testing.B) {
	b.ReportAllocs()
	cfg := experiments.DefaultTorusConfig()
	cfg.Shards = 4
	cfg.Telemetry = true
	cfg.FlightRec = true
	cfg.SamplePeriod = 20 * sim.Microsecond
	cfg.StallWindow = 400 * sim.Microsecond
	cfg.RASPeriod = 50 * sim.Microsecond
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.TorusHalo(cfg)
		if len(r.Errors) > 0 {
			b.Fatalf("observed halo run failed: %s", r.Errors[0])
		}
		b.ReportMetric(float64(r.FinishPs)/1e6, "sim_us")
		b.ReportMetric(float64(r.Windows), "windows")
	}
}

// BenchmarkTorusCollective runs the 512-rank (8×8×8) MPI
// allreduce/broadcast-tree workload on four event lanes — the
// machine-scale collective arm of the workload suite. ns/op is the
// wall-clock cost of the whole simulated job; sim_us is its
// (shard-invariant) virtual completion time. scripts/check.sh gates it
// against BENCH_substrate.json.
func BenchmarkTorusCollective(b *testing.B) {
	b.ReportAllocs()
	cfg := experiments.DefaultCollectiveConfig()
	cfg.Shards = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.TorusCollective(cfg)
		if len(r.Errors) > 0 {
			b.Fatalf("collective run failed: %s", r.Errors[0])
		}
		b.ReportMetric(float64(r.FinishPs)/1e6, "sim_us")
		b.ReportMetric(float64(r.Windows), "windows")
	}
}

// BenchmarkHotSpot runs the 512-node hot-spot traffic generator on four
// event lanes: 30% of every sender's messages converge on one victim
// node, the maximal head-of-line-blocking case of the generator pair.
// scripts/check.sh gates it against BENCH_substrate.json.
func BenchmarkHotSpot(b *testing.B) {
	b.ReportAllocs()
	cfg := experiments.DefaultTrafficConfig()
	cfg.Shards = 4
	cfg.HotFrac = 0.3
	cfg.HotNode = 219 // center of the 8x8x8 torus
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.TorusTraffic(cfg)
		if len(r.Errors) > 0 {
			b.Fatalf("hot-spot run failed: %s", r.Errors[0])
		}
		b.ReportMetric(float64(r.FinishPs)/1e6, "sim_us")
		b.ReportMetric(float64(r.Windows), "windows")
	}
}

// BenchmarkAblationInlineOptimization removes the ≤12-byte
// payload-in-header path (§6) and reports the small-message cost.
func BenchmarkAblationInlineOptimization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a := experiments.AblationInline(model.Defaults())
		find := func(r netpipe.Result, bytes int) float64 {
			for _, pt := range r.Points {
				if pt.Bytes == bytes {
					return pt.Latency.Micros()
				}
			}
			return 0
		}
		b.ReportMetric(find(a.With, 8), "with_us")
		b.ReportMetric(find(a.Without, 8), "without_us")
	}
}

// BenchmarkAblationInterruptCoalescing removes the batch-drain interrupt
// handler (§4.1) and reports the interrupt inflation under streaming.
func BenchmarkAblationInterruptCoalescing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a := experiments.AblationCoalescing(model.Defaults())
		b.ReportMetric(float64(a.IrqWith), "irq_with")
		b.ReportMetric(float64(a.IrqWithout), "irq_without")
	}
}

// BenchmarkAblationRxFIFOSize shrinks the receive FIFO to 2 KB and reports
// the mid-size latency penalty from early sender stalls.
func BenchmarkAblationRxFIFOSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a := experiments.AblationRxFIFO(model.Defaults())
		find := func(r netpipe.Result, bytes int) float64 {
			for _, pt := range r.Points {
				if pt.Bytes == bytes {
					return pt.Latency.Micros()
				}
			}
			return 0
		}
		b.ReportMetric(find(a.Big, 8192), "fifo16K_us")
		b.ReportMetric(find(a.Small, 8192), "fifo2K_us")
	}
}
