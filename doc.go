// Package portals3 is a Go reproduction of "Implementation and Performance
// of Portals 3.3 on the Cray XT3" (Brightwell, Hudson, Pedretti, Riesen,
// Underwood; IEEE Cluster 2005): the complete Portals 3.3 message-passing
// interface implemented over a deterministic discrete-event simulation of
// the XT3's SeaStar network interface, firmware, operating systems and 3D
// interconnect, plus the MPI layers and the NetPIPE benchmark used in the
// paper's evaluation.
//
// The root package only anchors the module documentation and the benchmark
// harness (bench_test.go); the implementation lives under internal/ — see
// README.md for the architecture tour and DESIGN.md for the system
// inventory and experiment index.
package portals3
