// Command soak drives chaos soak campaigns: seeded virtual-time fault
// schedules (link flaps, node stalls, firmware restarts, burst loss) over
// the standard workloads, on the sequential and sharded kernels, asserting
// the soak invariants — balanced fault ledger, zero stall/panic/ledger
// reports, intact ordered delivery, and byte-identical summaries at every
// shard count.
//
// Suite mode (the default) sweeps every workload over a seed range:
//
//	soak                      # 3 seeds per workload, shards 1 and 4
//	soak -short               # 1 seed per workload (the CI gate)
//	soak -seeds 10 -out SOAK_trend.json
//
// A failing campaign is auto-bisected to a minimal still-failing schedule
// (ddmin over the schedule entries, memoized), re-verified standalone, and
// rendered as a ready-to-paste repro command; flight-recorder dumps and
// the minimal schedule are written under -artifacts.
//
// Replay mode runs one explicit schedule — the bisector's output:
//
//	soak -workload gbn-stream -shards 2 -schedule 'corrupt:2:300us'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"portals3/internal/machine"
	"portals3/internal/model"
	"portals3/internal/sim"
	"portals3/internal/soak"
)

// trendRecord is one campaign's row in the trend JSON. wall_ms and
// peak_heap_bytes are host-side (summed and maxed across the shard arms):
// they track soak-time regressions across runs and take no part in the
// shard-invariance comparison.
type trendRecord struct {
	Workload      string `json:"workload"`
	Seed          int64  `json:"seed"`
	Shards        string `json:"shards"`
	FinishPs      int64  `json:"finish_ps"`
	Msgs          int    `json:"msgs"`
	Injected      uint64 `json:"injected"`
	Recovered     uint64 `json:"recovered"`
	Condemned     uint64 `json:"condemned"`
	Open          uint64 `json:"open"`
	Failed        bool   `json:"failed"`
	WallMs        int64  `json:"wall_ms"`
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
}

// trendFile is the cumulative trend document: one entry appended per soak
// invocation, capped to the most recent 50.
type trendFile struct {
	Runs []struct {
		Run       int           `json:"run"`
		Campaigns []trendRecord `json:"campaigns"`
	} `json:"runs"`
}

func fatalf(code int, format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(code)
}

func parseShards(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	workload := flag.String("workload", "", "single workload: "+strings.Join(soak.Workloads, ", ")+" (default: all)")
	seed := flag.Int64("seed", 1, "first campaign seed")
	seeds := flag.Int("seeds", 3, "seeds per workload in suite mode")
	entries := flag.Int("entries", 4, "generated schedule length per campaign")
	shardsFlag := flag.String("shards", "1,4", "comma-separated shard counts; every count must produce a byte-identical summary")
	schedule := flag.String("schedule", "", "explicit fault schedule (replay mode; requires -workload)")
	short := flag.Bool("short", false, "one seed per workload (the CI gate)")
	plant := flag.Bool("plant", false, "plant a ledger corruption in every campaign — the failure-detection self-check; campaigns must FAIL and bisect to the planted entry")
	bisect := flag.Bool("bisect", true, "auto-bisect failing campaigns to a minimal schedule")
	out := flag.String("out", "", "append the run's campaign records to this trend JSON file")
	artifacts := flag.String("artifacts", "soak_artifacts", "directory for failure artifacts (p3dump files, minimal schedules)")
	progress := flag.Bool("progress", false, "print live host-execution progress lines to stderr during long campaigns")
	hostprof := flag.Bool("hostprof", false, "write each arm's host-execution profile JSON under -artifacts (render with p3stat)")
	flag.Parse()

	shardCounts, err := parseShards(*shardsFlag)
	if err != nil {
		fatalf(2, "soak: %v", err)
	}
	if *short {
		*seeds = 1
	}

	if *schedule != "" {
		if *workload == "" {
			fatalf(2, "soak: -schedule requires -workload")
		}
		sched, err := model.ParseSchedule(*schedule)
		if err != nil {
			fatalf(2, "soak: %v", err)
		}
		c := soak.Campaign{Workload: *workload, Shards: shardCounts[0], Schedule: sched, FlightRec: true}
		if *progress {
			c.Progress = printProgress
		}
		if _, err := soak.Resolve(c); err != nil {
			fatalf(2, "%v", err)
		}
		r := soak.Run(c)
		fmt.Print(r.Summary())
		if *hostprof {
			writeHostProfile(*artifacts, fmt.Sprintf("%s-replay-shards%d", c.Workload, c.Shards), r.HostProfile)
		}
		if r.Failed() {
			writeDumps(*artifacts, fmt.Sprintf("%s-replay", c.Workload), r.Dumps)
			os.Exit(1)
		}
		return
	}

	workloads := soak.Workloads
	if *workload != "" {
		workloads = []string{*workload}
	}

	var records []trendRecord
	failed := false
	for _, w := range workloads {
		for s := *seed; s < *seed+int64(*seeds); s++ {
			c := soak.Campaign{Workload: w, Seed: s, Entries: *entries}
			if *plant {
				sched, err := soak.Resolve(c)
				if err != nil {
					fatalf(2, "%v", err)
				}
				c.Schedule = append(sched, model.ScheduleEntry{
					Kind: model.SchedCorrupt, Node: 2, At: 300 * sim.Microsecond,
				})
			}
			if *progress {
				c.Progress = printProgress
			}
			ok, rec := runArms(c, shardCounts, *bisect, *artifacts, *hostprof)
			records = append(records, rec)
			if !ok {
				failed = true
			}
		}
	}
	if *out != "" {
		if err := appendTrend(*out, records); err != nil {
			fatalf(1, "soak: writing %s: %v", *out, err)
		}
		fmt.Printf("trend appended to %s (%d campaigns)\n", *out, len(records))
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("soak: %d campaigns passed (%s; shards %s)\n",
		len(records), strings.Join(workloads, ", "), *shardsFlag)
}

// runArms runs one (workload, seed) campaign at every shard count,
// requires byte-identical summaries across arms, and triages any failure.
// The trend record's host-side columns aggregate across arms: wall-clock
// sums (total soak time for the campaign), peak heap takes the max.
func runArms(c soak.Campaign, shardCounts []int, bisect bool, artifacts string, hostprof bool) (bool, trendRecord) {
	var ref *soak.Result
	var refSummary string
	ok := true
	var wallNs int64
	var peakHeap uint64
	for _, n := range shardCounts {
		cc := c
		cc.Shards = n
		r := soak.Run(cc)
		wallNs += r.WallNs
		if r.PeakHeapBytes > peakHeap {
			peakHeap = r.PeakHeapBytes
		}
		if hostprof {
			writeHostProfile(artifacts, fmt.Sprintf("%s-seed%d-shards%d", c.Workload, c.Seed, n), r.HostProfile)
		}
		fmt.Printf("campaign %s seed=%d shards=%d: ", c.Workload, c.Seed, n)
		if r.Failed() {
			fmt.Printf("FAIL (%d invariant violations)\n", len(r.Errors))
			ok = false
		} else {
			fmt.Printf("pass (finish=%dus injected=%d)\n", r.FinishPs/1e6, r.Ledger.Injected())
		}
		if ref == nil {
			ref, refSummary = &r, r.Summary()
		} else if got := r.Summary(); got != refSummary {
			ok = false
			fmt.Printf("campaign %s seed=%d: summary DIVERGES between shards=%d and shards=%d:\n--- shards=%d\n%s--- shards=%d\n%s",
				c.Workload, c.Seed, shardCounts[0], n, shardCounts[0], refSummary, n, got)
		}
	}
	rec := trendRecord{
		Workload: c.Workload, Seed: c.Seed,
		Shards:   shardList(shardCounts),
		FinishPs: ref.FinishPs, Msgs: ref.Msgs,
		Injected: ref.Ledger.Injected(), Recovered: ref.Ledger.Recovered,
		Condemned: ref.Ledger.Condemned, Open: ref.Ledger.Open(),
		Failed: !ok,
		WallMs: wallNs / 1e6, PeakHeapBytes: peakHeap,
	}
	if !ok {
		fmt.Print(refSummary)
		if bisect {
			triage(c, shardCounts[0], artifacts)
		}
	}
	return ok, rec
}

// triage bisects a failing campaign and renders the minimal reproduction.
func triage(c soak.Campaign, shards int, artifacts string) {
	cc := c
	cc.Shards = shards
	out, err := soak.Bisect(cc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "soak: bisect: %v\n", err)
		return
	}
	if !out.Failed {
		fmt.Println("bisect: failure did not reproduce under bisection (summary divergence only?)")
		return
	}
	fmt.Printf("bisect: %d trials, %d of %d schedule entries remain", out.Trials, len(out.Minimal), len(out.Full))
	if out.Verified {
		fmt.Printf(" (re-verified failing standalone)\n")
	} else {
		fmt.Printf(" (WARNING: minimal schedule passed on re-verification)\n")
	}
	fmt.Printf("minimal schedule: %s\n", out.Minimal)
	fmt.Printf("repro: %s\n", out.Repro(cc))
	if np, ok := soak.NetpipeRepro(out.Minimal); ok {
		fmt.Printf("repro (netpipe pair): %s\n", np)
	}
	base := fmt.Sprintf("%s-seed%d", c.Workload, c.Seed)
	if err := os.MkdirAll(artifacts, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "soak: %v\n", err)
		return
	}
	schedPath := filepath.Join(artifacts, base+".minimal.schedule")
	if err := os.WriteFile(schedPath, []byte(out.Minimal.String()+"\n"), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "soak: %v\n", err)
	} else {
		fmt.Printf("minimal schedule written to %s\n", schedPath)
	}
	writeDumps(artifacts, base, out.Result.Dumps)
}

// printProgress renders one live host-execution snapshot on stderr,
// mirroring netpipe's -progress line.
func printProgress(hp sim.HostProgress) {
	eta := "?"
	if hp.ETANs >= 0 {
		eta = fmt.Sprintf("%.1fs", float64(hp.ETANs)/1e9)
	}
	fmt.Fprintf(os.Stderr,
		"progress: t=%.1fus wall=%.1fs rate=%.1fus/s events=%d (%.0f/s) windows=%d imb=%.1f%% heap=%.1fMB eta=%s\n",
		float64(hp.SimNow)/1e6, float64(hp.WallNs)/1e9, hp.SimRate,
		hp.Events, hp.EventRate, hp.Windows, hp.ImbalancePct,
		float64(hp.HeapInuse)/(1<<20), eta)
}

// writeHostProfile saves one arm's host-execution profile under the
// artifacts directory.
func writeHostProfile(artifacts, base string, hp *machine.HostProfile) {
	if hp == nil {
		return
	}
	if err := os.MkdirAll(artifacts, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "soak: %v\n", err)
		return
	}
	b, err := hp.JSON()
	if err == nil {
		path := filepath.Join(artifacts, base+".hostprof.json")
		if err = os.WriteFile(path, b, 0o644); err == nil {
			fmt.Printf("host profile written to %s (render with p3stat)\n", path)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "soak: %v\n", err)
	}
}

// writeDumps saves every flight-recorder artifact of a failing run.
func writeDumps(artifacts, base string, dumps map[string][]byte) {
	if len(dumps) == 0 {
		return
	}
	if err := os.MkdirAll(artifacts, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "soak: %v\n", err)
		return
	}
	names := make([]string, 0, len(dumps))
	for name := range dumps {
		names = append(names, name)
	}
	// Deterministic artifact order.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, name := range names {
		path := filepath.Join(artifacts, fmt.Sprintf("%s.%s.p3dump", base, name))
		if err := os.WriteFile(path, dumps[name], 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "soak: %v\n", err)
			continue
		}
		fmt.Printf("dump written to %s (render with p3dump)\n", path)
	}
}

func shardList(counts []int) string {
	parts := make([]string, len(counts))
	for i, n := range counts {
		parts[i] = strconv.Itoa(n)
	}
	return strings.Join(parts, ",")
}

// appendTrend appends this run's records to the trend file, keeping the
// most recent 50 runs.
func appendTrend(path string, records []trendRecord) error {
	var tf trendFile
	if b, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(b, &tf); err != nil {
			return fmt.Errorf("existing trend file unreadable: %v", err)
		}
	}
	run := 1
	if n := len(tf.Runs); n > 0 {
		run = tf.Runs[n-1].Run + 1
	}
	tf.Runs = append(tf.Runs, struct {
		Run       int           `json:"run"`
		Campaigns []trendRecord `json:"campaigns"`
	}{Run: run, Campaigns: records})
	if len(tf.Runs) > 50 {
		tf.Runs = tf.Runs[len(tf.Runs)-50:]
	}
	b, err := json.MarshalIndent(&tf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
