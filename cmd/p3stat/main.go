// Command p3stat renders saved observability artifacts: telemetry JSON
// exports (cmd/netpipe -telemetry) and chrome-trace timelines (cmd/netpipe
// -trace), as aligned text tables — the offline half of the machine's RAS
// view.
//
//	p3stat run.json                # metrics, latency breakdown, series
//	p3stat -trace timeline.json    # per-track / per-handler summary
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"portals3/internal/telemetry"
	"portals3/internal/trace"
)

func main() {
	traceIn := flag.String("trace", "", "summarize a chrome-trace timeline instead of telemetry JSON")
	flag.Parse()

	switch {
	case *traceIn != "":
		if err := summarizeTrace(*traceIn); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case flag.NArg() > 0:
		for _, path := range flag.Args() {
			if err := renderTelemetry(path); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func summarizeTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := trace.ReadChrome(f)
	if err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	telemetry.Summarize(recs).Render(os.Stdout)
	return nil
}

func renderTelemetry(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	e, err := telemetry.ReadJSON(f)
	if err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	render(e, path)
	return nil
}

// ps-valued metric names render in microseconds; everything else raw.
func isPs(name string) bool { return strings.HasSuffix(name, "_ps") }

func render(e *telemetry.Export, path string) {
	fmt.Printf("# %s  (sim time %.3f us)\n", path, float64(e.SimTimePs)/1e6)

	if bd, ok := e.Breakdown(); ok {
		fmt.Println()
		bd.Render(os.Stdout)
	}

	var hists, scalars []telemetry.ExportMetric
	for _, m := range e.Metrics {
		if m.Kind == "histogram" {
			hists = append(hists, m)
		} else {
			scalars = append(scalars, m)
		}
	}

	if len(hists) > 0 {
		fmt.Printf("\nhistograms:\n")
		fmt.Printf("  %-44s %8s %12s %12s %12s %12s %12s\n",
			"name", "count", "mean", "p50", "p99", "p999", "max")
		for _, m := range hists {
			name := m.Name
			if m.Labels != "" {
				name += "{" + m.Labels + "}"
			}
			mean := 0.0
			if m.Count > 0 {
				mean = float64(m.Sum) / float64(m.Count)
			}
			if isPs(m.Name) {
				fmt.Printf("  %-44s %8d %10.3fus %10.3fus %10.3fus %10.3fus %10.3fus\n",
					name, m.Count, mean/1e6, float64(m.P50)/1e6,
					float64(m.P99)/1e6, float64(m.P999)/1e6, float64(m.Max)/1e6)
			} else {
				fmt.Printf("  %-44s %8d %12.1f %12d %12d %12d %12d\n",
					name, m.Count, mean, m.P50, m.P99, m.P999, m.Max)
			}
		}
	}

	if len(scalars) > 0 {
		fmt.Printf("\ncounters and gauges:\n")
		for _, m := range scalars {
			name := m.Name
			if m.Labels != "" {
				name += "{" + m.Labels + "}"
			}
			fmt.Printf("  %-60s %14g\n", name, m.Value)
		}
	}

	if len(e.Series) > 0 {
		fmt.Printf("\nsampler series:\n")
		fmt.Printf("  %-44s %8s %14s %14s\n", "name", "samples", "first", "last")
		for _, s := range e.Series {
			name := s.Name
			if s.Labels != "" {
				name += "{" + s.Labels + "}"
			}
			var first, last float64
			if len(s.Values) > 0 {
				first, last = s.Values[0], s.Values[len(s.Values)-1]
			}
			fmt.Printf("  %-44s %8d %14g %14g\n", name, len(s.Values), first, last)
		}
	}
	fmt.Println()
}
